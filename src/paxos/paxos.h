// Single-decree Paxos acceptor logic, as used by Cassandra's light-weight
// transactions [11] (the paper's locking primitive, §VI).
//
// This header holds only the pure, per-(replica, key) acceptor state
// machine; the 4-round-trip LWT choreography (prepare, read, propose,
// commit) is driven by the data-store coordinator in src/datastore.  Keeping
// the acceptor pure makes the protocol rules independently unit-testable.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

namespace music::paxos {

/// A Paxos ballot.  Encodes (round, proposer) so ballots from different
/// proposers never tie: ballot = round * kMaxProposers + proposer_id.
using Ballot = int64_t;

/// Upper bound on proposer (node) ids used in ballot encoding.
inline constexpr int64_t kMaxProposers = 1024;

/// Builds a ballot from a round counter and proposer id.
constexpr Ballot make_ballot(int64_t round, int proposer_id) {
  return round * kMaxProposers + proposer_id;
}

/// Extracts the round from a ballot (used to jump past a competitor).
constexpr int64_t ballot_round(Ballot b) { return b / kMaxProposers; }

/// A value proposed under a ballot.  V is the replicated payload (the data
/// store instantiates it with its Cell type).
template <typename V>
struct Proposal {
  Ballot ballot = -1;
  V value{};
};

/// Reply to a prepare(ballot).
template <typename V>
struct PrepareReply {
  /// True if the acceptor promised this ballot.
  bool promised = false;
  /// The acceptor's current promise (for ballot adjustment on refusal).
  Ballot promised_ballot = -1;
  /// An accepted-but-not-committed proposal the new coordinator must finish
  /// before doing its own work (Cassandra's "replay in-progress Paxos").
  std::optional<Proposal<V>> in_progress;
};

/// Reply to an accept(proposal).
struct AcceptReply {
  bool accepted = false;
  Ballot promised_ballot = -1;
};

/// Per-(replica, key) Paxos acceptor.
///
/// The commit phase is handled by the storage layer (it applies the value to
/// the data table); on_commit here only clears the in-progress slot so later
/// prepares stop replaying a finished proposal.
template <typename V>
class Acceptor {
 public:
  /// Phase-1 handler.
  PrepareReply<V> on_prepare(Ballot b) {
    PrepareReply<V> r;
    if (b > promised_) {
      promised_ = b;
      r.promised = true;
    }
    r.promised_ballot = promised_;
    r.in_progress = accepted_;
    return r;
  }

  /// Phase-3 handler.
  AcceptReply on_accept(Proposal<V> p) {
    AcceptReply r;
    if (p.ballot >= promised_) {
      promised_ = p.ballot;
      accepted_ = std::move(p);
      r.accepted = true;
    }
    r.promised_ballot = promised_;
    return r;
  }

  /// Phase-4 handler: the proposal decided under `b` has been committed to
  /// the data table; forget it (and anything older).
  void on_commit(Ballot b) {
    if (accepted_ && accepted_->ballot <= b) accepted_.reset();
  }

  /// Highest ballot promised so far (-1 if none).
  Ballot promised() const { return promised_; }

  /// The accepted-but-uncommitted proposal, if any.
  const std::optional<Proposal<V>>& accepted() const { return accepted_; }

 private:
  Ballot promised_ = -1;
  std::optional<Proposal<V>> accepted_;
};

}  // namespace music::paxos
