// Raft-backed lock store: the §X-A1 alternative.
//
// The paper chose Cassandra LWTs (4 RTTs per consensus write) for the lock
// store to avoid operating a second system, and names "integrating new,
// efficient consensus primitives" — basic consensus writes requiring only
// ~1 RTT [50, Raft] — as future work.  RaftLockStore is that alternative:
// the per-key lockRef queues live in a Raft-replicated KV, so
// lsGenerateAndEnqueue/lsDequeue cost one Raft commit (plus the hop to the
// leader) instead of four LWT round trips, while lsPeek reads the site-local
// Raft node's applied state (eventual, like the paper's local peek).
//
// MUSIC runs unchanged over either backend (ls::LockBackend);
// bench_ablation compares the two head-to-head.
#pragma once

#include <cstdint>

#include "lockstore/lockstore.h"
#include "raftkv/raft.h"

namespace music::ls {

/// LockBackend over a raftkv::RaftCluster.
class RaftLockStore : public LockBackend {
 public:
  explicit RaftLockStore(raftkv::RaftCluster& cluster) : cluster_(cluster) {}

  sim::Task<Result<LockRef>> backend_generate(int site, Key key) override;
  sim::Task<Status> backend_dequeue(int site, Key key, LockRef ref) override;
  sim::Task<Result<PeekResult>> backend_peek(int site, Key key) override;

 private:
  /// Read-modify-write of the queue object as a Raft CAS loop.  `mutate`
  /// rewrites the queue and returns false to abort (nothing to do).
  /// Returns the queue value that was committed.
  sim::Task<Result<LockQueue>> rmw(int site, const Key& store_key,
                                   LockRef* chosen, LockRef dequeue_ref,
                                   bool generate);

  /// Proposal routing with leader hints (same discipline as TxClient).
  sim::Task<raftkv::ProposeOutcome> propose(raftkv::Command cmd);
  sim::Task<Result<Value>> leader_read(Key key);

  raftkv::RaftCluster& cluster_;
  int leader_hint_ = 0;
  uint64_t next_op_tag_ = 1;
};

}  // namespace music::ls
