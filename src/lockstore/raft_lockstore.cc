#include "lockstore/raft_lockstore.h"

#include <utility>

#include "sim/span.h"

namespace music::ls {

namespace {

/// The Raft client node used for message accounting: RaftLockStore calls
/// run inside MUSIC replicas, which already paid their hops, so proposals
/// go straight to the Raft nodes (leader forwarding handled here).
constexpr int kMaxAttempts = 64;

}  // namespace

sim::Task<raftkv::ProposeOutcome> RaftLockStore::propose(raftkv::Command cmd) {
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    int target = leader_hint_ >= 0 && leader_hint_ < cluster_.num_nodes()
                     ? leader_hint_
                     : 0;
    raftkv::RaftNode& node = cluster_.node(target);
    if (node.down()) {
      leader_hint_ = (target + 1) % cluster_.num_nodes();
      co_await sim::sleep_for(cluster_.simulation(), sim::ms(50));
      continue;
    }
    auto out = co_await node.propose(cmd);
    if (out.status == OpStatus::Conflict) {
      int hint = node.leader_hint();
      leader_hint_ = hint >= 0 ? hint : (target + 1) % cluster_.num_nodes();
      co_await sim::sleep_for(cluster_.simulation(), sim::ms(10));
      continue;
    }
    if (out.status == OpStatus::Timeout) {
      leader_hint_ = (target + 1) % cluster_.num_nodes();
      co_await sim::sleep_for(cluster_.simulation(), sim::ms(50));
      continue;
    }
    co_return out;
  }
  co_return raftkv::ProposeOutcome(OpStatus::Timeout, false);
}

sim::Task<Result<Value>> RaftLockStore::leader_read(Key key) {
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    int target = leader_hint_ >= 0 && leader_hint_ < cluster_.num_nodes()
                     ? leader_hint_
                     : 0;
    raftkv::RaftNode& node = cluster_.node(target);
    if (node.down()) {
      leader_hint_ = (target + 1) % cluster_.num_nodes();
      co_await sim::sleep_for(cluster_.simulation(), sim::ms(50));
      continue;
    }
    auto r = co_await node.read(key);
    if (!r.ok() && r.status() == OpStatus::Conflict) {
      int hint = node.leader_hint();
      leader_hint_ = hint >= 0 ? hint : (target + 1) % cluster_.num_nodes();
      co_await sim::sleep_for(cluster_.simulation(), sim::ms(10));
      continue;
    }
    co_return r;
  }
  co_return Result<Value>::Err(OpStatus::Timeout);
}

sim::Task<Result<LockQueue>> RaftLockStore::rmw(int /*site*/,
                                                const Key& store_key,
                                                LockRef* chosen,
                                                LockRef dequeue_ref,
                                                bool generate) {
  uint64_t tag = generate ? next_op_tag_++ : 0;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    auto cur = co_await leader_read(store_key);
    if (!cur.ok() && cur.status() != OpStatus::NotFound) {
      // Transient (e.g. an election in progress): back off and retry.
      co_await sim::sleep_for(cluster_.simulation(), sim::ms(100));
      continue;
    }
    std::string old = cur.ok() ? cur.value().data : "";
    LockQueue q = LockQueue::parse(old);
    if (generate) {
      bool already = false;
      for (const auto& e : q.entries) {
        if (e.op_tag == tag) {
          *chosen = e.ref;
          already = true;
        }
      }
      if (!already) {
        q.guard += 1;
        *chosen = q.guard;
        q.entries.emplace_back(q.guard, tag);
      } else {
        co_return Result<LockQueue>::Ok(q);
      }
    } else {
      std::erase_if(q.entries,
                    [dequeue_ref](const LockEntry& e) { return e.ref == dequeue_ref; });
    }
    // One Raft consensus round, conditioned on the queue being unchanged
    // (the lock store's sequential consistency).
    std::vector<std::pair<Key, Value>> writes;
    writes.emplace_back(store_key, Value(q.serialize()));
    auto out = co_await propose(
        raftkv::Command(std::move(writes), store_key, Value(old)));
    if (out.status != OpStatus::Ok) {
      co_await sim::sleep_for(cluster_.simulation(), sim::ms(100));
      continue;
    }
    if (out.applied) co_return Result<LockQueue>::Ok(q);
    // CAS raced another queue update; re-read and retry.
    co_await sim::sleep_for(cluster_.simulation(), sim::ms(2));
  }
  co_return Result<LockQueue>::Err(OpStatus::Conflict);
}

sim::Task<Result<LockRef>> RaftLockStore::backend_generate(int site, Key key) {
  sim::OpSpan span(cluster_.simulation(), "lock.generate", site, -1, key);
  LockRef chosen = kNoLockRef;
  auto r = co_await rmw(site, LockStore::queue_key(key), &chosen, 0, true);
  if (!r.ok()) co_return Result<LockRef>::Err(r.status());
  if (chosen == kNoLockRef) co_return Result<LockRef>::Err(OpStatus::Nack);
  co_return Result<LockRef>::Ok(chosen);
}

sim::Task<Status> RaftLockStore::backend_dequeue(int site, Key key,
                                                 LockRef ref) {
  sim::OpSpan span(cluster_.simulation(), "lock.dequeue", site, -1, key);
  LockRef unused = kNoLockRef;
  auto r = co_await rmw(site, LockStore::queue_key(key), &unused, ref, false);
  co_return r.ok() ? Status::Ok() : Status::Err(r.status());
}

sim::Task<Result<PeekResult>> RaftLockStore::backend_peek(int site, Key key) {
  // lsPeek semantics: the site-local Raft node's applied state, through its
  // service queue (a local hop), possibly stale.
  raftkv::RaftNode& node = cluster_.node_at_site(site);
  Key store_key = LockStore::queue_key(key);
  sim::Promise<Result<PeekResult>> p(cluster_.simulation());
  raftkv::RaftNode* np = &node;
  node.service().submit(key.size() + 64, [np, store_key, p] {
    auto it = np->state().find(store_key);
    if (it == np->state().end()) {
      p.set_value(Result<PeekResult>::Ok(PeekResult{std::nullopt, false}));
      return;
    }
    LockQueue q = LockQueue::parse(it->second.data);
    p.set_value(Result<PeekResult>::Ok(PeekResult{q.head(), true}));
  });
  if (node.down()) co_return Result<PeekResult>::Err(OpStatus::Timeout);
  co_return co_await p.future();
}

}  // namespace music::ls
