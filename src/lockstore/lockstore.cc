#include "lockstore/lockstore.h"

#include <charconv>
#include <utility>

#include "sim/span.h"

namespace music::ls {

std::string LockQueue::serialize() const {
  std::string out = std::to_string(guard);
  out.push_back('|');
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(entries[i].ref);
    out.push_back('@');
    out += std::to_string(entries[i].op_tag);
  }
  return out;
}

LockQueue LockQueue::parse(const std::string& s) {
  LockQueue q;
  size_t bar = s.find('|');
  if (bar == std::string::npos) return q;
  std::from_chars(s.data(), s.data() + bar, q.guard);
  size_t pos = bar + 1;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    size_t at = s.find('@', pos);
    LockRef ref = 0;
    uint64_t tag = 0;
    if (at != std::string::npos && at < comma) {
      std::from_chars(s.data() + pos, s.data() + at, ref);
      std::from_chars(s.data() + at + 1, s.data() + comma, tag);
    } else {
      std::from_chars(s.data() + pos, s.data() + comma, ref);
    }
    if (ref != kNoLockRef) q.entries.emplace_back(ref, tag);
    pos = comma + 1;
  }
  return q;
}

namespace {

LockQueue queue_of(const std::optional<ds::Cell>& cell) {
  if (!cell) return LockQueue{};
  return LockQueue::parse(cell->value.data);
}

}  // namespace

sim::Task<Result<LockRef>> LockStore::generate_and_enqueue(
    ds::StoreReplica& coord, Key key) {
  sim::OpSpan span(store_.simulation(), "lock.generate", coord.site(),
                   coord.node(), key);
  // One LWT: BEGIN BATCH { guard += 1; INSERT (key, guard) } APPLY BATCH.
  // The decision closure carries the chosen lockRef out via shared state
  // (the closure may run on a retry with a different prior queue).  The
  // entry carries a unique op tag so a retry whose first proposal was
  // completed by a competitor's replay adopts the already-enqueued ref
  // instead of enqueueing an orphan duplicate.
  uint64_t tag = (static_cast<uint64_t>(coord.node()) << 40) ^
                 next_op_tag_.fetch_add(1, std::memory_order_relaxed);
  auto chosen = std::make_shared<LockRef>(kNoLockRef);
  ds::LwtUpdate update = [chosen, tag](const std::optional<ds::Cell>& cur) {
    LockQueue q = queue_of(cur);
    for (const auto& e : q.entries) {
      if (e.op_tag == tag) {
        *chosen = e.ref;  // our earlier proposal was replayed and committed
        return ds::LwtDecision{false, Value(), std::nullopt};
      }
    }
    q.guard += 1;
    *chosen = q.guard;
    q.entries.emplace_back(q.guard, tag);
    return ds::LwtDecision{true, Value(q.serialize()), std::nullopt};
  };
  auto r = co_await coord.lwt(queue_key(key), update);
  if (!r.ok()) co_return Result<LockRef>::Err(r.status());
  if (*chosen == kNoLockRef) co_return Result<LockRef>::Err(OpStatus::Nack);
  co_return Result<LockRef>::Ok(*chosen);
}

sim::Task<Status> LockStore::dequeue(ds::StoreReplica& coord, Key key,
                                     LockRef ref) {
  sim::OpSpan span(store_.simulation(), "lock.dequeue", coord.site(),
                   coord.node(), key);
  ds::LwtUpdate update = [ref](const std::optional<ds::Cell>& cur) {
    LockQueue q = queue_of(cur);
    std::erase_if(q.entries, [ref](const LockEntry& e) { return e.ref == ref; });
    return ds::LwtDecision{true, Value(q.serialize()), std::nullopt};
  };
  auto r = co_await coord.lwt(queue_key(key), update);
  if (!r.ok()) co_return r.status();
  co_return Status::Ok();
}

sim::Task<Result<PeekResult>> LockStore::peek(ds::StoreReplica& coord,
                                              Key key) {
  auto r = co_await coord.get(queue_key(key), ds::Consistency::One);
  if (!r.ok()) {
    if (r.status() == OpStatus::NotFound) {
      co_return Result<PeekResult>::Ok(PeekResult{std::nullopt, false});
    }
    co_return Result<PeekResult>::Err(r.status());
  }
  LockQueue q = LockQueue::parse(r.value().value.data);
  co_return Result<PeekResult>::Ok(PeekResult{q.head(), true});
}

sim::Task<Result<PeekResult>> LockStore::peek_quorum(ds::StoreReplica& coord,
                                                     Key key) {
  auto r = co_await coord.get(queue_key(key), ds::Consistency::Quorum);
  if (!r.ok()) {
    if (r.status() == OpStatus::NotFound) {
      co_return Result<PeekResult>::Ok(PeekResult{std::nullopt, false});
    }
    co_return Result<PeekResult>::Err(r.status());
  }
  LockQueue q = LockQueue::parse(r.value().value.data);
  co_return Result<PeekResult>::Ok(PeekResult{q.head(), true});
}

ds::StoreReplica& LockStore::coord_at(int site) {
  int n = store_.num_replicas();
  size_t& rr = coord_rr_[static_cast<size_t>(site) % coord_rr_.size()];
  for (int attempt = 0; attempt < n; ++attempt) {
    auto& r = store_.replica(static_cast<int>(rr++ % static_cast<size_t>(n)));
    if (r.site() == site && !r.down()) return r;
  }
  return store_.replica_at_site(site);
}

sim::Task<Result<LockRef>> LockStore::backend_generate(int site, Key key) {
  co_return co_await generate_and_enqueue(coord_at(site), std::move(key));
}

sim::Task<Status> LockStore::backend_dequeue(int site, Key key, LockRef ref) {
  co_return co_await dequeue(coord_at(site), std::move(key), ref);
}

sim::Task<Result<PeekResult>> LockStore::backend_peek(int site, Key key) {
  co_return co_await peek(coord_at(site), std::move(key));
}

}  // namespace music::ls
