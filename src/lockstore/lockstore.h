// The lock store (§III-B, §VI): a sequentially-consistent, per-key queue of
// lock references, realized on the data store exclusively through
// light-weight transactions, exactly as MUSIC realizes it on Cassandra.
//
// Each MUSIC key has one lock-queue object (the paper's lock-table rows for
// that key, Fig. 2): a 64-bit `guard` counter that generates per-key unique,
// increasing lock references, plus the FIFO queue of outstanding lockRefs.
// The object is updated atomically with one LWT per operation — the paper's
// batched "increment guard + enqueue" (§VI) — which is what gives
// createLockRef/releaseLock their 4-RTT consensus cost (Fig. 5(b)).
// lsPeek reads the local replica's (possibly stale) committed copy, which is
// why polling acquireLock is nearly free.
#pragma once

#include <array>
#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "datastore/store.h"
#include "sim/task.h"

namespace music::ls {

/// One queued lock reference.
/// Non-aggregate on purpose: passed by value through coroutines (see the
/// GCC note on ds::Cell).
struct LockEntry {
  LockRef ref = kNoLockRef;
  /// Unique id of the enqueue operation that created this entry.  Lets a
  /// retried lsGenerateAndEnqueue recognize that its first proposal was
  /// completed by a competitor's Paxos replay and adopt that ref instead of
  /// enqueueing a duplicate (which would orphan a queue slot until the
  /// failure detector collects it).
  uint64_t op_tag = 0;

  LockEntry() = default;
  explicit LockEntry(LockRef r, uint64_t tag = 0) : ref(r), op_tag(tag) {}
  friend bool operator==(const LockEntry&, const LockEntry&) = default;
};

/// The per-key lock-queue object stored (serialized) in the data store.
struct LockQueue {
  /// The guard counter of §VI: constant across rows of a key, incremented
  /// by one LWT per createLockRef; its value is the new lockRef.
  int64_t guard = 0;
  /// Outstanding lock references in FIFO (ascending) order.
  std::vector<LockEntry> entries;

  LockQueue() = default;
  LockQueue(int64_t g, std::vector<LockEntry> e)
      : guard(g), entries(std::move(e)) {}

  /// The head of the queue (the current lockholder's ref), if any.
  std::optional<LockRef> head() const {
    if (entries.empty()) return std::nullopt;
    return entries.front().ref;
  }

  /// Compact text codec ("guard|ref,ref,...").
  std::string serialize() const;
  static LockQueue parse(const std::string& s);
};

/// Result of a peek: the head lockRef at the local replica, if the local
/// replica knows of any queue at all.
struct PeekResult {
  /// Head of the locally-known queue; nullopt if the local replica has no
  /// (or an empty) queue for the key.
  std::optional<LockRef> head;
  /// True if the local replica has ever seen the queue object.
  bool known = false;

  PeekResult() = default;
  PeekResult(std::optional<LockRef> h, bool k) : head(h), known(k) {}
};

/// Abstract lock-store backend.  MUSIC replicas depend only on this
/// interface, so the queue substrate is pluggable: the paper's production
/// choice (Cassandra LWTs, 4 RTTs per consensus write — LockStore below) or
/// the §X-A1 alternative it names as future work (a ~1-RTT consensus
/// engine — RaftLockStore in raft_lockstore.h).  Methods take the calling
/// replica's site; backends pick their own site-local server.
class LockBackend {
 public:
  virtual ~LockBackend() = default;

  /// lsGenerateAndEnqueue from `site`: one consensus write.
  virtual sim::Task<Result<LockRef>> backend_generate(int site, Key key) = 0;
  /// lsDequeue from `site`: one consensus write (no-op if absent).
  virtual sim::Task<Status> backend_dequeue(int site, Key key, LockRef ref) = 0;
  /// lsPeek: the head according to a replica AT `site` (local, maybe stale).
  virtual sim::Task<Result<PeekResult>> backend_peek(int site, Key key) = 0;
};

/// Lock-store operations over Cassandra LWTs, each executed through a
/// data-store coordinator (the node the MUSIC replica is talking to).
class LockStore : public LockBackend {
 public:
  explicit LockStore(ds::StoreCluster& store) : store_(store) {}

  /// lsGenerateAndEnqueue: atomically increments the guard and enqueues the
  /// new lockRef.  One LWT = one consensus write (4 RTTs).
  sim::Task<Result<LockRef>> generate_and_enqueue(ds::StoreReplica& coord,
                                                  Key key);

  /// lsDequeue: removes `ref` from the queue (no-op if absent).  One LWT.
  sim::Task<Status> dequeue(ds::StoreReplica& coord, Key key, LockRef ref);

  /// lsPeek: the head of the queue as known by the coordinator's local
  /// replica (eventual read; may be stale).  Purely local: no WAN hop.
  sim::Task<Result<PeekResult>> peek(ds::StoreReplica& coord, Key key);

  /// A quorum peek (used by the ablation bench to show why the paper made
  /// lsPeek local).
  sim::Task<Result<PeekResult>> peek_quorum(ds::StoreReplica& coord, Key key);

  /// The data-store key under which `key`'s queue object lives.
  static Key queue_key(const Key& key) { return "!lq:" + key; }

  // ---- LockBackend (site-based entry points used by MusicReplica). ----------
  sim::Task<Result<LockRef>> backend_generate(int site, Key key) override;
  sim::Task<Status> backend_dequeue(int site, Key key, LockRef ref) override;
  sim::Task<Result<PeekResult>> backend_peek(int site, Key key) override;

 private:
  /// Site-local coordinator with round-robin over same-site nodes (spreads
  /// lock-table coordination in multi-node-per-site clusters).
  ds::StoreReplica& coord_at(int site);

  ds::StoreCluster& store_;
  /// Relaxed atomic: tags are compared only for equality and carry the
  /// coordinator node in their high bits, so cross-lane increment order is
  /// unobservable — but the counter itself is bumped from every site lane.
  std::atomic<uint64_t> next_op_tag_{1};
  /// Round-robin position per site, not one shared counter: coord_at(s) only
  /// ever runs on site s's lane, so per-site counters stay single-threaded
  /// under PDES and the replica choice is independent of how other sites'
  /// calls interleave.  Fixed-size so no lane ever grows the storage.
  std::array<size_t, 64> coord_rr_{};
};

}  // namespace music::ls
