// Atomic data structures and coordination recipes over MUSIC critical
// sections.
//
// §II of the paper argues that a general critical-section control structure
// subsumes per-structure atomic APIs (Atomix's maps/lists) and standalone
// locking services (Chubby/Curator recipes): "this abstraction can then be
// used to build atomic data structures as needed."  This module is that
// argument as code — every recipe is a thin client of the public
// MusicClient API and inherits ECF's exclusivity + latest-state guarantees
// (so e.g. a counter increment can never be lost to a failed-over worker).
//
// All operations run whole critical sections; for high-rate use amortize by
// taking a MultiKeySection once and operating inside it instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/client_api.h"
#include "core/client.h"
#include "core/session.h"

namespace music::recipes {

/// A geo-replicated atomic counter.
class AtomicCounter {
 public:
  AtomicCounter(api::ClientApi& client, Key key)
      : client_(client), key_(std::move(key)) {}

  /// Atomically adds `delta` and returns the new value.
  sim::Task<Result<int64_t>> add(int64_t delta);
  /// Atomically compares-and-sets; returns whether it applied plus the
  /// value observed.
  sim::Task<Result<std::pair<bool, int64_t>>> compare_and_set(int64_t expect,
                                                              int64_t desired);
  /// Reads the latest committed value (its own critical section, so it is
  /// the true value, not an eventual read).
  sim::Task<Result<int64_t>> get();

 private:
  api::ClientApi& client_;
  Key key_;
};

/// A geo-replicated atomic map (string -> string) stored under one MUSIC
/// key; every mutation is atomic and reads-latest across sites.
class AtomicMap {
 public:
  AtomicMap(api::ClientApi& client, Key key)
      : client_(client), key_(std::move(key)) {}

  sim::Task<Status> put_field(const std::string& field, const std::string& v);
  sim::Task<Result<std::optional<std::string>>> get_field(
      const std::string& field);
  sim::Task<Status> erase_field(const std::string& field);
  /// Atomic read-modify-write of one field: new = f(old).  `f` must be a
  /// named lvalue at the call site (GCC 12; see ds::Cell note).
  template <typename F>
  sim::Task<Status> update_field(const std::string& field, F& f);
  sim::Task<Result<size_t>> size();

  /// Codec (exposed for tests): "k=v\n" lines with %-escaping of '=', '\n'
  /// and '%'.
  static std::string encode(const std::vector<std::pair<std::string, std::string>>& kvs);
  static std::vector<std::pair<std::string, std::string>> decode(
      const std::string& s);

 private:
  api::ClientApi& client_;
  Key key_;
};

/// A geo-replicated FIFO queue under one MUSIC key.
class DistributedQueue {
 public:
  DistributedQueue(api::ClientApi& client, Key key)
      : client_(client), key_(std::move(key)) {}

  sim::Task<Status> push(const std::string& item);
  /// Pops the head; NotFound when empty.
  sim::Task<Result<std::string>> pop();
  sim::Task<Result<size_t>> size();

 private:
  api::ClientApi& client_;
  Key key_;
};

/// Leader election (the coarse-grained use the paper contrasts with
/// fine-grained data locks, §II): the leader is whoever holds the MUSIC
/// lock on the election key; on leader death the failure detector preempts
/// and the next candidate wins.  The elected leader's identity is published
/// under "<key>-leader" for observers (lock-free reads, possibly stale —
/// correctness always comes from the lock itself).
class LeaderElection {
 public:
  LeaderElection(api::ClientApi& client, Key key, std::string me)
      : client_(client), key_(std::move(key)), me_(std::move(me)) {}

  /// Blocks (polls) until this candidate is elected.
  sim::Task<Status> campaign();
  /// Steps down (releases the lock).
  sim::Task<Status> resign();
  /// True while this candidate's lockRef still heads the queue.
  sim::Task<Result<bool>> am_leader();
  /// The advertised current leader (observers; may be stale).
  sim::Task<Result<std::string>> current_leader();

 private:
  api::ClientApi& client_;
  Key key_;
  std::string me_;
  LockRef ref_ = kNoLockRef;
};

// ---- Template definitions ---------------------------------------------------

template <typename F>
sim::Task<Status> AtomicMap::update_field(const std::string& field, F& f) {
  core::CriticalSection cs(client_, key_);
  auto acq = co_await cs.enter();
  if (!acq.ok()) co_return acq;
  auto cur = co_await cs.get();
  auto kvs = decode(cur.ok() ? cur.value().data : "");
  std::optional<std::string> old;
  for (auto& [k, v] : kvs) {
    if (k == field) old = v;
  }
  std::string next = f(old);
  bool replaced = false;
  for (auto& [k, v] : kvs) {
    if (k == field) {
      v = next;
      replaced = true;
    }
  }
  if (!replaced) kvs.emplace_back(field, next);
  auto st = co_await cs.put(Value(encode(kvs)));
  co_await cs.exit();
  co_return st;
}

}  // namespace music::recipes
