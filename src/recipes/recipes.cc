#include "recipes/recipes.h"

#include <charconv>

namespace music::recipes {

namespace {

int64_t parse_i64(const std::string& s, int64_t fallback = 0) {
  int64_t v = fallback;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '%' || c == '=' || c == '\n') {
      static const char* hex = "0123456789ABCDEF";
      out.push_back('%');
      out.push_back(hex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
      out.push_back(hex[static_cast<unsigned char>(c) & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() && hex_val(s[i + 1]) >= 0 &&
        hex_val(s[i + 2]) >= 0) {
      out.push_back(static_cast<char>(hex_val(s[i + 1]) * 16 + hex_val(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

// ---- AtomicCounter ----------------------------------------------------------

sim::Task<Result<int64_t>> AtomicCounter::add(int64_t delta) {
  core::CriticalSection cs(client_, key_);
  auto acq = co_await cs.enter();
  if (!acq.ok()) co_return Result<int64_t>::Err(acq.status());
  auto cur = co_await cs.get();
  int64_t value = cur.ok() ? parse_i64(cur.value().data) : 0;
  value += delta;
  auto st = co_await cs.put(Value(std::to_string(value)));
  co_await cs.exit();
  if (!st.ok()) co_return Result<int64_t>::Err(st.status());
  co_return Result<int64_t>::Ok(value);
}

sim::Task<Result<std::pair<bool, int64_t>>> AtomicCounter::compare_and_set(
    int64_t expect, int64_t desired) {
  core::CriticalSection cs(client_, key_);
  auto acq = co_await cs.enter();
  if (!acq.ok()) {
    co_return Result<std::pair<bool, int64_t>>::Err(acq.status());
  }
  auto cur = co_await cs.get();
  int64_t value = cur.ok() ? parse_i64(cur.value().data) : 0;
  bool applied = value == expect;
  Status st = Status::Ok();
  if (applied) {
    st = co_await cs.put(Value(std::to_string(desired)));
  }
  co_await cs.exit();
  if (!st.ok()) co_return Result<std::pair<bool, int64_t>>::Err(st.status());
  co_return Result<std::pair<bool, int64_t>>::Ok({applied, value});
}

sim::Task<Result<int64_t>> AtomicCounter::get() {
  core::CriticalSection cs(client_, key_);
  auto acq = co_await cs.enter();
  if (!acq.ok()) co_return Result<int64_t>::Err(acq.status());
  auto cur = co_await cs.get();
  int64_t value = cur.ok() ? parse_i64(cur.value().data) : 0;
  co_await cs.exit();
  co_return Result<int64_t>::Ok(value);
}

// ---- AtomicMap --------------------------------------------------------------

std::string AtomicMap::encode(
    const std::vector<std::pair<std::string, std::string>>& kvs) {
  std::string out;
  for (const auto& [k, v] : kvs) {
    out += escape(k);
    out.push_back('=');
    out += escape(v);
    out.push_back('\n');
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> AtomicMap::decode(
    const std::string& s) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t nl = s.find('\n', pos);
    if (nl == std::string::npos) nl = s.size();
    size_t eq = s.find('=', pos);
    if (eq != std::string::npos && eq < nl) {
      out.emplace_back(unescape(s.substr(pos, eq - pos)),
                       unescape(s.substr(eq + 1, nl - eq - 1)));
    }
    pos = nl + 1;
  }
  return out;
}

sim::Task<Status> AtomicMap::put_field(const std::string& field,
                                       const std::string& v) {
  std::string want = v;
  auto setter = [&want](const std::optional<std::string>&) { return want; };
  co_return co_await update_field(field, setter);
}

sim::Task<Result<std::optional<std::string>>> AtomicMap::get_field(
    const std::string& field) {
  core::CriticalSection cs(client_, key_);
  auto acq = co_await cs.enter();
  if (!acq.ok()) {
    co_return Result<std::optional<std::string>>::Err(acq.status());
  }
  auto cur = co_await cs.get();
  co_await cs.exit();
  std::optional<std::string> found;
  for (const auto& [k, val] : decode(cur.ok() ? cur.value().data : "")) {
    if (k == field) found = val;
  }
  co_return Result<std::optional<std::string>>::Ok(std::move(found));
}

sim::Task<Status> AtomicMap::erase_field(const std::string& field) {
  core::CriticalSection cs(client_, key_);
  auto acq = co_await cs.enter();
  if (!acq.ok()) co_return acq;
  auto cur = co_await cs.get();
  auto kvs = decode(cur.ok() ? cur.value().data : "");
  std::erase_if(kvs, [&field](const auto& kv) { return kv.first == field; });
  auto st = co_await cs.put(Value(encode(kvs)));
  co_await cs.exit();
  co_return st;
}

sim::Task<Result<size_t>> AtomicMap::size() {
  core::CriticalSection cs(client_, key_);
  auto acq = co_await cs.enter();
  if (!acq.ok()) co_return Result<size_t>::Err(acq.status());
  auto cur = co_await cs.get();
  co_await cs.exit();
  co_return Result<size_t>::Ok(decode(cur.ok() ? cur.value().data : "").size());
}

// ---- DistributedQueue -------------------------------------------------------

sim::Task<Status> DistributedQueue::push(const std::string& item) {
  core::CriticalSection cs(client_, key_);
  auto acq = co_await cs.enter();
  if (!acq.ok()) co_return acq;
  auto cur = co_await cs.get();
  auto items = AtomicMap::decode(cur.ok() ? cur.value().data : "");
  items.emplace_back("i", item);  // FIFO: append
  auto st = co_await cs.put(Value(AtomicMap::encode(items)));
  co_await cs.exit();
  co_return st;
}

sim::Task<Result<std::string>> DistributedQueue::pop() {
  core::CriticalSection cs(client_, key_);
  auto acq = co_await cs.enter();
  if (!acq.ok()) co_return Result<std::string>::Err(acq.status());
  auto cur = co_await cs.get();
  auto items = AtomicMap::decode(cur.ok() ? cur.value().data : "");
  if (items.empty()) {
    co_await cs.exit();
    co_return Result<std::string>::Err(OpStatus::NotFound);
  }
  std::string head = items.front().second;
  items.erase(items.begin());
  auto st = co_await cs.put(Value(AtomicMap::encode(items)));
  co_await cs.exit();
  if (!st.ok()) co_return Result<std::string>::Err(st.status());
  co_return Result<std::string>::Ok(std::move(head));
}

sim::Task<Result<size_t>> DistributedQueue::size() {
  core::CriticalSection cs(client_, key_);
  auto acq = co_await cs.enter();
  if (!acq.ok()) co_return Result<size_t>::Err(acq.status());
  auto cur = co_await cs.get();
  co_await cs.exit();
  co_return Result<size_t>::Ok(
      AtomicMap::decode(cur.ok() ? cur.value().data : "").size());
}

// ---- LeaderElection ---------------------------------------------------------

sim::Task<Status> LeaderElection::campaign() {
  if (ref_ != kNoLockRef) co_return Status::Ok();  // already leader
  auto ref = co_await client_.create_lock_ref(key_);
  if (!ref.ok()) co_return ref.status();
  auto acq = co_await client_.acquire_lock_blocking(key_, ref.value());
  if (!acq.ok()) {
    co_await client_.remove_lock_ref(key_, ref.value());
    co_return acq;
  }
  ref_ = ref.value();
  // Advertise (lock-free; observers tolerate staleness).
  co_await client_.put(key_ + "-leader", Value(me_));
  co_return Status::Ok();
}

sim::Task<Status> LeaderElection::resign() {
  if (ref_ == kNoLockRef) co_return Status::Ok();
  auto st = co_await client_.release_lock(key_, ref_);
  ref_ = kNoLockRef;
  co_return st;
}

sim::Task<Result<bool>> LeaderElection::am_leader() {
  if (ref_ == kNoLockRef) co_return Result<bool>::Ok(false);
  // A poll with our ref answers the question: Ok = still head.
  auto st = co_await client_.acquire_lock(key_, ref_);
  if (st.ok()) co_return Result<bool>::Ok(true);
  if (st.status() == OpStatus::NotLockHolder ||
      st.status() == OpStatus::NotYetHolder) {
    co_return Result<bool>::Ok(false);
  }
  co_return Result<bool>::Err(st.status());
}

sim::Task<Result<std::string>> LeaderElection::current_leader() {
  auto v = co_await client_.get(key_ + "-leader");
  if (!v.ok()) co_return Result<std::string>::Err(v.status());
  co_return Result<std::string>::Ok(v.value().data);
}

}  // namespace music::recipes
