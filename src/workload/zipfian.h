// Zipfian key selection, as used by YCSB [49] (the paper's §X-B2 workloads
// select tuples "randomly with a Zipfian distribution").
//
// Implements the Gray et al. rejection-inversion-free method YCSB uses
// (precomputed zeta), with the standard YCSB skew constant 0.99.
//
// The zeta normaliser is O(n) to compute, and the cluster bench builds one
// generator per client (10^4 of them, identical (n, theta)).  zeta() is
// therefore memoised process-wide behind a mutex: the table is computed
// once per distinct (n, theta) and every later construction is O(1).
#pragma once

#include <cstdint>

#include "sim/rng.h"

namespace music::wl {

/// Zipfian-distributed generator over [0, n).
class Zipfian {
 public:
  /// `theta` is the YCSB skew parameter (default 0.99).
  explicit Zipfian(uint64_t n, double theta = 0.99);

  /// Draws the next item (0-based rank; rank 0 is the most popular).
  uint64_t next(sim::Rng& rng);

  uint64_t n() const { return n_; }

  /// The generalized harmonic number H_{n,theta}, memoised per (n, theta).
  /// Public so tests can compare the hot-key mass against 1 / zeta(n).
  static double zeta(uint64_t n, double theta);

  /// Distinct (n, theta) entries currently memoised.
  static size_t zeta_cache_size();
  /// O(n) zeta computations actually performed (cache misses).
  static uint64_t zeta_cache_computations();

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace music::wl
