// Zipfian key selection, as used by YCSB [49] (the paper's §X-B2 workloads
// select tuples "randomly with a Zipfian distribution").
//
// Implements the Gray et al. rejection-inversion-free method YCSB uses
// (precomputed zeta), with the standard YCSB skew constant 0.99.
#pragma once

#include <cstdint>

#include "sim/rng.h"

namespace music::wl {

/// Zipfian-distributed generator over [0, n).
class Zipfian {
 public:
  /// `theta` is the YCSB skew parameter (default 0.99).
  explicit Zipfian(uint64_t n, double theta = 0.99);

  /// Draws the next item (0-based rank; rank 0 is the most popular).
  uint64_t next(sim::Rng& rng);

  uint64_t n() const { return n_; }

 private:
  static double zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace music::wl
