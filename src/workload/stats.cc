#include "workload/stats.h"

#include <algorithm>
#include <cmath>

namespace music::wl {

void Samples::ensure_sorted() const {
  if (sorted_) return;
  auto& s = const_cast<std::vector<sim::Duration>&>(samples_);
  std::sort(s.begin(), s.end());
  const_cast<bool&>(sorted_) = true;
}

double Samples::mean_ms() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (auto d : samples_) sum += static_cast<double>(d);
  return sum / static_cast<double>(samples_.size()) / 1000.0;
}

double Samples::stddev_ms() const {
  if (samples_.size() < 2) return 0.0;
  double m = mean_ms() * 1000.0;
  double acc = 0.0;
  for (auto d : samples_) {
    double diff = static_cast<double>(d) - m;
    acc += diff * diff;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1)) / 1000.0;
}

double Samples::percentile_ms(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  auto lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  double v = static_cast<double>(samples_[lo]) * (1.0 - frac) +
             static_cast<double>(samples_[hi]) * frac;
  return v / 1000.0;
}

double Samples::min_ms() const { return percentile_ms(0); }
double Samples::max_ms() const { return percentile_ms(100); }

std::vector<std::pair<double, double>> Samples::cdf(int points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points <= 0) return out;
  out.reserve(static_cast<size_t>(points));
  for (int i = 1; i <= points; ++i) {
    double frac = static_cast<double>(i) / points;
    out.emplace_back(percentile_ms(frac * 100.0), frac);
  }
  return out;
}

void Samples::enable_reservoir(size_t cap, uint64_t seed) {
  cap_ = cap;
  // splitmix64 init: a zero seed must still produce a usable stream.
  rstate_ = seed + 0x9E3779B97F4A7C15ull;
}

uint64_t Samples::next_u64() {
  // splitmix64 — self-contained so reservoir sampling never consumes from
  // (or reorders) the deterministic sim rng streams.
  rstate_ += 0x9E3779B97F4A7C15ull;
  uint64_t z = rstate_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void Samples::merge(const Samples& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  // recorded() stays exact across merges; the retained union may exceed
  // cap_, which only makes the percentile estimate better.
  seen_ += other.seen_;
  sorted_ = false;
}

}  // namespace music::wl
