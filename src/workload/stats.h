// Latency/throughput statistics for the benchmark harness: mean, standard
// deviation, percentiles and CDFs, matching what the paper reports (mean
// plus standard deviation when > 5%, latency CDFs in Fig. 8).
//
// By default every sample is retained exactly.  For very large runs (the
// sharded cluster bench drives 10^4 clients) enable_reservoir() switches to
// Vitter's Algorithm R: a fixed-size uniform reservoir replaces the
// unbounded vector once more than `cap` samples arrive, while recorded()
// keeps the exact arrival count — throughput stays exact, percentiles
// become estimates over an unbiased subsample.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace music::wl {

/// An accumulating sample set of durations (microseconds).
class Samples {
 public:
  void add(sim::Duration d) {
    seen_ += 1;
    if (cap_ == 0 || samples_.size() < cap_) {
      samples_.push_back(d);
      sorted_ = false;
      return;
    }
    // Algorithm R: keep each of the `seen_` arrivals with probability
    // cap/seen.  The rng is private to this object — reservoir decisions
    // must never perturb the sim's seeded streams.
    uint64_t j = next_u64() % seen_;
    if (j < cap_) {
      samples_[static_cast<size_t>(j)] = d;
      sorted_ = false;
    }
  }

  /// Caps retained samples at `cap` (0 = keep everything, the default).
  /// Call before the first add(); enabling mid-stream would bias the
  /// already-full vector.  `seed` decorrelates reservoirs across clients.
  void enable_reservoir(size_t cap, uint64_t seed = 0);

  /// Retained sample count (== recorded() until a reservoir overflows).
  size_t count() const { return samples_.size(); }
  /// Exact number of samples ever added.
  uint64_t recorded() const { return seen_; }
  bool empty() const { return samples_.empty(); }
  size_t reservoir_cap() const { return cap_; }

  /// Mean in milliseconds.
  double mean_ms() const;
  /// Sample standard deviation in milliseconds.
  double stddev_ms() const;
  /// p-th percentile (0..100) in milliseconds.
  double percentile_ms(double p) const;
  double min_ms() const;
  double max_ms() const;

  /// CDF as (latency_ms, cumulative_fraction) pairs at `points` quantiles.
  std::vector<std::pair<double, double>> cdf(int points = 50) const;

  /// Merges another sample set into this one.  Exact when neither side
  /// overflowed a reservoir; otherwise the merged set is the union of the
  /// retained subsamples (and recorded() stays exact).
  void merge(const Samples& other);

 private:
  void ensure_sorted() const;
  uint64_t next_u64();

  std::vector<sim::Duration> samples_;
  mutable bool sorted_ = false;
  size_t cap_ = 0;       // 0 = exact (no reservoir)
  uint64_t seen_ = 0;    // exact arrivals
  uint64_t rstate_ = 0;  // private splitmix64 state (never the sim rng)
};

/// Result of a driver run.
struct RunResult {
  uint64_t completed = 0;
  uint64_t failed = 0;
  sim::Duration measured = 0;  // measurement window length
  Samples latency;

  /// Operations per second over the measurement window.
  double throughput() const {
    return measured > 0
               ? static_cast<double>(completed) / sim::to_sec(measured)
               : 0.0;
  }
};

}  // namespace music::wl
