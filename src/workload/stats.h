// Latency/throughput statistics for the benchmark harness: mean, standard
// deviation, percentiles and CDFs, matching what the paper reports (mean
// plus standard deviation when > 5%, latency CDFs in Fig. 8).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace music::wl {

/// An accumulating sample set of durations (microseconds).
class Samples {
 public:
  void add(sim::Duration d) { samples_.push_back(d); }
  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Mean in milliseconds.
  double mean_ms() const;
  /// Sample standard deviation in milliseconds.
  double stddev_ms() const;
  /// p-th percentile (0..100) in milliseconds.
  double percentile_ms(double p) const;
  double min_ms() const;
  double max_ms() const;

  /// CDF as (latency_ms, cumulative_fraction) pairs at `points` quantiles.
  std::vector<std::pair<double, double>> cdf(int points = 50) const;

  /// Merges another sample set into this one.
  void merge(const Samples& other);

 private:
  void ensure_sorted() const;
  std::vector<sim::Duration> samples_;
  mutable bool sorted_ = false;
};

/// Result of a driver run.
struct RunResult {
  uint64_t completed = 0;
  uint64_t failed = 0;
  sim::Duration measured = 0;  // measurement window length
  Samples latency;

  /// Operations per second over the measurement window.
  double throughput() const {
    return measured > 0
               ? static_cast<double>(completed) / sim::to_sec(measured)
               : 0.0;
  }
};

}  // namespace music::wl
