// Concrete workloads for the paper's experiments: the microbenchmark
// critical section (MUSIC/MSCP), the CassaEV upper bound, Zookeeper write
// batches and the CockroachDB critical-section recipe.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "datastore/store.h"
#include "raftkv/txkv.h"
#include "workload/driver.h"
#include "zab/zab.h"

namespace music::wl {

/// The paper's microbenchmark operation (§VIII-b): one critical section =
/// createLockRef, acquireLock (polling), `batch` criticalPuts of
/// `value_size` bytes, releaseLock.  Whether the puts are quorum writes
/// (MUSIC) or LWTs (MSCP) is the replicas' PutMode.  Each logical client
/// uses its own key ("each thread updates non-overlapping key ranges").
class MusicCsWorkload : public Workload {
 public:
  MusicCsWorkload(std::vector<core::MusicClient*> clients,
                  std::string key_prefix, int batch, size_t value_size);

  sim::Task<bool> run_once(int cid) override;

 private:
  std::vector<core::MusicClient*> clients_;
  std::string prefix_;
  int batch_;
  size_t value_size_;
};

/// The same microbenchmark critical section through the pipelined Session
/// API: the `batch` criticalPuts are enqueued and flushed as ONE Batch
/// request (distinct sub-keys "<key>/<i>", so the replica coalesces the
/// whole batch into a single value-quorum round).  Contrast with
/// MusicCsWorkload, which pays one round trip per put — the delta is the
/// batching win bench_micro_batch measures.
class MusicBatchCsWorkload : public Workload {
 public:
  MusicBatchCsWorkload(std::vector<core::MusicClient*> clients,
                       std::string key_prefix, int batch, size_t value_size);

  sim::Task<bool> run_once(int cid) override;

 private:
  std::vector<core::MusicClient*> clients_;
  std::string prefix_;
  int batch_;
  size_t value_size_;
};

/// CassaEV (§VIII-b): a plain Cassandra eventual write at the local
/// coordinator — the performance upper bound.
class CassaEvWorkload : public Workload {
 public:
  /// `site_of_client(cid)` = cid % num_sites; writes go to that site's
  /// coordinator.
  CassaEvWorkload(ds::StoreCluster& store, std::string key_prefix,
                  size_t value_size);

  sim::Task<bool> run_once(int cid) override;

 private:
  ds::StoreCluster& store_;
  std::string prefix_;
  size_t value_size_;
  int64_t seq_ = 0;
};

/// Zookeeper comparison op (§VIII-c): `batch` sequentially-consistent
/// setData writes of `value_size` bytes (Zookeeper provides no critical
/// sections; this is the baseline's batch of plain SC writes).
class ZkWriteWorkload : public Workload {
 public:
  ZkWriteWorkload(std::vector<zab::ZkClient*> clients, std::string key_prefix,
                  int batch, size_t value_size);

  sim::Task<bool> run_once(int cid) override;

 private:
  std::vector<zab::ZkClient*> clients_;
  std::string prefix_;
  int batch_;
  size_t value_size_;
};

/// CockroachDB comparison op (§VIII-d, §X-B3): a critical section of
/// `batch` updates, each done as lock-txn + update/unlock-txn.
class CdbCsWorkload : public Workload {
 public:
  CdbCsWorkload(std::vector<raftkv::TxClient*> clients, std::string key_prefix,
                int batch, size_t value_size);

  sim::Task<bool> run_once(int cid) override;

 private:
  std::vector<raftkv::TxClient*> clients_;
  std::string prefix_;
  int batch_;
  size_t value_size_;
};

}  // namespace music::wl
