// Closed-loop load driver: the simulator-side equivalent of the paper's
// per-site load generators (§VIII-a).  Peak throughput is measured by
// saturating the servers with many concurrent logical clients; mean latency
// with a single client.
#pragma once

#include <functional>
#include <memory>

#include "sim/rng.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "workload/stats.h"

namespace music::wl {

/// One benchmarkable operation stream.  Implementations own whatever
/// clients/state they need; `run_once(cid)` performs one logical operation
/// for logical client `cid` (e.g. one full critical section).
///
/// An abstract interface (rather than a callable) so no callable ever
/// crosses a coroutine boundary (see the GCC 12 note on ds::Cell).
class Workload {
 public:
  virtual ~Workload() = default;
  virtual sim::Task<bool> run_once(int cid) = 0;
};

struct DriverConfig {
  /// Concurrent closed-loop clients (threads in the paper's terms).
  int clients = 1;
  /// Simulated warmup excluded from the stats.
  sim::Duration warmup = sim::sec(5);
  /// Measurement window.
  sim::Duration measure = sim::sec(30);
  /// Extra time to let in-flight operations finish after the window.
  sim::Duration drain = sim::sec(30);
  /// Client start jitter bound (avoids lockstep artifacts).
  sim::Duration start_jitter = sim::ms(5);
  /// Arrival process: sampled before each operation as think time the
  /// client sleeps through.  The default (no hook) is the classic
  /// closed loop — the next op starts the moment the previous one
  /// finishes.  The hook receives the simulation rng and the current
  /// virtual time, so open-ish arrivals (Poisson inter-arrival gaps) and
  /// time-varying ones (diurnal load) are both expressible.  Think time
  /// is excluded from the recorded op latency.
  std::function<sim::Duration(sim::Rng&, sim::Time)> think;
  /// Per-run cap on retained latency samples (0 = keep every sample).
  /// Above the cap, samples are reservoir-subsampled (wl::Samples); the
  /// completed/failed counts — and so throughput — remain exact.  Set this
  /// for very large worlds (the cluster bench records millions of ops).
  size_t max_latency_samples = 0;
  /// Seed for the reservoir's private rng (decorrelates parallel worlds;
  /// deliberately NOT drawn from the sim rng, which must stay untouched).
  uint64_t latency_sample_seed = 0;
};

/// Runs the workload under `cfg.clients` concurrent clients and returns
/// completed-op throughput and latency over the measurement window.  Runs
/// the simulation internally (warmup + measure + drain of virtual time).
RunResult run_closed_loop(sim::Simulation& sim, std::shared_ptr<Workload> w,
                          DriverConfig cfg);

/// Runs exactly `ops` operations on one client and returns their latencies
/// (the single-thread mean-latency methodology of §VIII-a).
RunResult run_sequential(sim::Simulation& sim, std::shared_ptr<Workload> w,
                         int ops, sim::Duration time_limit = sim::sec(3600));

}  // namespace music::wl
