#include "workload/runners.h"

#include <utility>

#include "core/session.h"

namespace music::wl {

// ---- MusicCsWorkload --------------------------------------------------------

MusicCsWorkload::MusicCsWorkload(std::vector<core::MusicClient*> clients,
                                 std::string key_prefix, int batch,
                                 size_t value_size)
    : clients_(std::move(clients)),
      prefix_(std::move(key_prefix)),
      batch_(batch),
      value_size_(value_size) {}

sim::Task<bool> MusicCsWorkload::run_once(int cid) {
  core::MusicClient& c = *clients_[static_cast<size_t>(cid) % clients_.size()];
  Key key = prefix_ + std::to_string(cid);
  auto ref = co_await c.create_lock_ref(key);
  if (!ref.ok()) co_return false;
  auto acq = co_await c.acquire_lock_blocking(key, ref.value());
  if (!acq.ok()) {
    co_await c.remove_lock_ref(key, ref.value());
    co_return false;
  }
  bool ok = true;
  for (int b = 0; b < batch_ && ok; ++b) {
    Value v(std::string("w") + std::to_string(b), value_size_);
    auto st = co_await c.critical_put(key, ref.value(), v);
    ok = st.ok();
  }
  co_await c.release_lock(key, ref.value());
  co_return ok;
}

// ---- MusicBatchCsWorkload ---------------------------------------------------

MusicBatchCsWorkload::MusicBatchCsWorkload(
    std::vector<core::MusicClient*> clients, std::string key_prefix, int batch,
    size_t value_size)
    : clients_(std::move(clients)),
      prefix_(std::move(key_prefix)),
      batch_(batch),
      value_size_(value_size) {}

sim::Task<bool> MusicBatchCsWorkload::run_once(int cid) {
  core::MusicClient& c = *clients_[static_cast<size_t>(cid) % clients_.size()];
  Key key = prefix_ + std::to_string(cid);
  core::CriticalSection cs(c, key);
  auto acq = co_await cs.enter();
  if (!acq.ok()) co_return false;
  core::Session s = cs.session();
  for (int b = 0; b < batch_; ++b) {
    // Distinct sub-keys: independent writes coalesce into one round.
    s.put(key + "/" + std::to_string(b),
          Value(std::string("w") + std::to_string(b), value_size_));
  }
  auto st = co_await s.flush();
  co_await cs.exit();
  co_return st.ok();
}

// ---- CassaEvWorkload --------------------------------------------------------

CassaEvWorkload::CassaEvWorkload(ds::StoreCluster& store,
                                 std::string key_prefix, size_t value_size)
    : store_(store), prefix_(std::move(key_prefix)), value_size_(value_size) {}

sim::Task<bool> CassaEvWorkload::run_once(int cid) {
  int site = cid % store_.network().num_sites();
  auto& coord = store_.replica_at_site(site);
  Key key = prefix_ + std::to_string(cid);
  // Client-supplied timestamps keep LWW moving forward per key.
  ds::Cell cell(Value("e", value_size_), ++seq_);
  auto st = co_await coord.put(std::move(key), std::move(cell),
                               ds::Consistency::One);
  co_return st.ok();
}

// ---- ZkWriteWorkload --------------------------------------------------------

ZkWriteWorkload::ZkWriteWorkload(std::vector<zab::ZkClient*> clients,
                                 std::string key_prefix, int batch,
                                 size_t value_size)
    : clients_(std::move(clients)),
      prefix_(std::move(key_prefix)),
      batch_(batch),
      value_size_(value_size) {}

sim::Task<bool> ZkWriteWorkload::run_once(int cid) {
  zab::ZkClient& c = *clients_[static_cast<size_t>(cid) % clients_.size()];
  Key path = prefix_ + std::to_string(cid);
  for (int b = 0; b < batch_; ++b) {
    auto st = co_await c.set_data(path, Value(std::string("z"), value_size_));
    if (!st.ok()) co_return false;
  }
  co_return true;
}

// ---- CdbCsWorkload ----------------------------------------------------------

CdbCsWorkload::CdbCsWorkload(std::vector<raftkv::TxClient*> clients,
                             std::string key_prefix, int batch,
                             size_t value_size)
    : clients_(std::move(clients)),
      prefix_(std::move(key_prefix)),
      batch_(batch),
      value_size_(value_size) {}

sim::Task<bool> CdbCsWorkload::run_once(int cid) {
  raftkv::TxClient& c = *clients_[static_cast<size_t>(cid) % clients_.size()];
  Key key = prefix_ + std::to_string(cid);
  Key lock = "lock:" + key;
  auto st = co_await c.critical_section(lock, key,
                                        Value(std::string("c"), value_size_),
                                        batch_);
  co_return st.ok();
}

}  // namespace music::wl
