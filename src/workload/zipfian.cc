#include "workload/zipfian.h"

#include <cmath>

namespace music::wl {

double Zipfian::zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

Zipfian::Zipfian(uint64_t n, double theta)
    : n_(n),
      theta_(theta),
      alpha_(1.0 / (1.0 - theta)),
      zetan_(zeta(n, theta)),
      zeta2_(zeta(2, theta)) {
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t Zipfian::next(sim::Rng& rng) {
  double u = rng.uniform_real(0.0, 1.0);
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace music::wl
