#include "workload/zipfian.h"

#include <bit>
#include <cmath>
#include <map>
#include <mutex>
#include <utility>

namespace music::wl {
namespace {

// Process-wide memo: the par runner constructs generators from worker
// threads, so the table is mutex-guarded.  Keyed on theta's bit pattern —
// exact-same-double semantics, no epsilon surprises.
std::mutex g_zeta_mu;
std::map<std::pair<uint64_t, uint64_t>, double>& zeta_table() {
  static std::map<std::pair<uint64_t, uint64_t>, double> table;
  return table;
}
uint64_t g_zeta_computations = 0;

double zeta_raw(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

double Zipfian::zeta(uint64_t n, double theta) {
  std::pair<uint64_t, uint64_t> key{n, std::bit_cast<uint64_t>(theta)};
  {
    std::lock_guard<std::mutex> lock(g_zeta_mu);
    auto it = zeta_table().find(key);
    if (it != zeta_table().end()) return it->second;
  }
  // Compute outside the lock: a 10^6-term sum must not serialise the
  // parallel world builders behind one mutex.  Duplicate concurrent
  // misses converge to the same value, so last-writer-wins is benign.
  double sum = zeta_raw(n, theta);
  std::lock_guard<std::mutex> lock(g_zeta_mu);
  zeta_table()[key] = sum;
  g_zeta_computations += 1;
  return sum;
}

size_t Zipfian::zeta_cache_size() {
  std::lock_guard<std::mutex> lock(g_zeta_mu);
  return zeta_table().size();
}

uint64_t Zipfian::zeta_cache_computations() {
  std::lock_guard<std::mutex> lock(g_zeta_mu);
  return g_zeta_computations;
}

Zipfian::Zipfian(uint64_t n, double theta)
    : n_(n),
      theta_(theta),
      alpha_(1.0 / (1.0 - theta)),
      zetan_(zeta(n, theta)),
      zeta2_(zeta(2, theta)) {
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t Zipfian::next(sim::Rng& rng) {
  double u = rng.uniform_real(0.0, 1.0);
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace music::wl
