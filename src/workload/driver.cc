#include "workload/driver.h"

#include <atomic>
#include <mutex>
#include <utility>

#include "sim/future.h"

namespace music::wl {

namespace {

struct Accum {
  // Client loops execute on concurrent site lanes under PDES, so the exact
  // counts are relaxed atomics (commutative sums) and the sample sink takes
  // a mutex per completed op — uncontended and invisible in classic
  // single-threaded worlds, and amortized over a whole critical section
  // (many events) under PDES.
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};
  std::mutex latency_mu;
  Samples latency;
  sim::Time warmup_end = 0;
  sim::Time end = 0;
  // The arrival hook lives in the shared state (not a coroutine parameter)
  // so client_loop frames that outlive run_closed_loop's stack frame keep
  // it alive through their shared_ptr.
  std::function<sim::Duration(sim::Rng&, sim::Time)> think;
};

sim::Task<void> client_loop(sim::Simulation& sim, std::shared_ptr<Workload> w,
                            int cid, sim::Duration jitter,
                            std::shared_ptr<Accum> acc) {
  if (jitter > 0) co_await sim::sleep_for(sim, jitter);
  while (sim.now() < acc->end) {
    if (acc->think) {
      // Arrival gap: think time before the op, excluded from its latency.
      sim::Duration gap = acc->think(sim.rng(), sim.now());
      if (gap > 0) co_await sim::sleep_for(sim, gap);
      if (sim.now() >= acc->end) break;
    }
    sim::Time t0 = sim.now();
    bool ok = co_await w->run_once(cid);
    // Count only operations fully inside the measurement window.
    if (t0 >= acc->warmup_end && sim.now() <= acc->end) {
      if (ok) {
        acc->completed.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(acc->latency_mu);
        acc->latency.add(sim.now() - t0);
      } else {
        acc->failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

sim::Task<void> sequential_loop(sim::Simulation& sim,
                                std::shared_ptr<Workload> w, int ops,
                                sim::Time deadline,
                                std::shared_ptr<Accum> acc) {
  for (int i = 0; i < ops && sim.now() < deadline; ++i) {
    sim::Time t0 = sim.now();
    bool ok = co_await w->run_once(0);
    if (ok) {
      acc->completed.fetch_add(1, std::memory_order_relaxed);
      acc->latency.add(sim.now() - t0);
    } else {
      acc->failed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  acc->end = sim.now();
}

}  // namespace

RunResult run_closed_loop(sim::Simulation& sim, std::shared_ptr<Workload> w,
                          DriverConfig cfg) {
  auto acc = std::make_shared<Accum>();
  if (cfg.max_latency_samples > 0) {
    acc->latency.enable_reservoir(cfg.max_latency_samples,
                                  cfg.latency_sample_seed);
  }
  acc->warmup_end = sim.now() + cfg.warmup;
  acc->end = acc->warmup_end + cfg.measure;
  acc->think = cfg.think;
  for (int c = 0; c < cfg.clients; ++c) {
    sim::Duration jitter =
        cfg.start_jitter > 0
            ? sim.rng().uniform_int(0, cfg.start_jitter)
            : 0;
    sim::spawn(sim, client_loop(sim, w, c, jitter, acc));
  }
  sim.run_until(acc->end + cfg.drain);
  RunResult r;
  r.completed = acc->completed.load(std::memory_order_relaxed);
  r.failed = acc->failed.load(std::memory_order_relaxed);
  r.measured = cfg.measure;
  r.latency = std::move(acc->latency);
  return r;
}

RunResult run_sequential(sim::Simulation& sim, std::shared_ptr<Workload> w,
                         int ops, sim::Duration time_limit) {
  auto acc = std::make_shared<Accum>();
  sim::Time start = sim.now();
  sim::Time deadline = start + time_limit;
  acc->end = deadline;
  sim::spawn(sim, sequential_loop(sim, w, ops, deadline, acc));
  // Run until the loop reports completion (acc->end moves below deadline)
  // or the time limit passes.
  while (sim.now() < deadline &&
         acc->completed.load(std::memory_order_relaxed) +
                 acc->failed.load(std::memory_order_relaxed) <
             static_cast<uint64_t>(ops)) {
    sim.run_for(sim::ms(100));
    if (sim.idle()) break;
  }
  RunResult r;
  r.completed = acc->completed.load(std::memory_order_relaxed);
  r.failed = acc->failed.load(std::memory_order_relaxed);
  r.measured = sim.now() - start;
  r.latency = std::move(acc->latency);
  return r;
}

}  // namespace music::wl
