#include "workload/ycsb.h"

#include <utility>

namespace music::wl {

YcsbWorkload::YcsbWorkload(std::vector<core::MusicClient*> clients,
                           YcsbMix mix, uint64_t record_count,
                           size_t value_size, uint64_t seed)
    : clients_(std::move(clients)),
      mix_(std::move(mix)),
      zipf_(record_count),
      value_size_(value_size),
      rng_(seed) {}

sim::Task<bool> YcsbWorkload::run_once(int cid) {
  core::MusicClient& c = *clients_[static_cast<size_t>(cid) % clients_.size()];
  Key key = "user" + std::to_string(zipf_.next(rng_));
  bool is_read = rng_.chance(mix_.read_fraction);
  ++operations_;

  auto ref = co_await c.create_lock_ref(key);
  if (!ref.ok()) co_return false;

  // Poll manually (rather than acquire_lock_blocking) so the first poll's
  // outcome is observable: a NotYetHolder on the first poll is a lock
  // collision in the paper's sense.
  bool first_poll = true;
  Status acq = Status::Err(OpStatus::Timeout);
  for (int attempt = 0; attempt < c.config().max_poll_attempts; ++attempt) {
    acq = co_await c.acquire_lock(key, ref.value());
    if (first_poll && acq.status() == OpStatus::NotYetHolder) ++collisions_;
    first_poll = false;
    if (acq.ok() || acq.status() == OpStatus::NotLockHolder) break;
    co_await sim::sleep_for(c.simulation(), c.config().poll_backoff);
  }
  if (!acq.ok()) {
    co_await c.remove_lock_ref(key, ref.value());
    co_return false;
  }

  bool ok;
  if (is_read) {
    auto r = co_await c.critical_get(key, ref.value());
    ok = r.ok() || r.status() == OpStatus::NotFound;
  } else {
    auto st = co_await c.critical_put(
        key, ref.value(), Value(std::string("y"), value_size_));
    ok = st.ok();
  }
  co_await c.release_lock(key, ref.value());
  co_return ok;
}

}  // namespace music::wl
