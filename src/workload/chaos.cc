#include "workload/chaos.h"

#include <utility>

namespace music::wl {

ChaosInjector::ChaosInjector(ds::StoreCluster& store,
                             std::vector<core::MusicReplica*> music_replicas,
                             ChaosConfig cfg)
    : store_(store), music_(std::move(music_replicas)), cfg_(cfg),
      rng_(cfg.seed) {}

void ChaosInjector::start(sim::Time until) {
  sim::spawn(store_.simulation(), run(until));
}

sim::Task<void> ChaosInjector::run(sim::Time until) {
  auto& sim = store_.simulation();
  while (sim.now() < until) {
    co_await sim::sleep_for(sim, rng_.uniform_int(cfg_.min_gap, cfg_.max_gap));
    if (sim.now() >= until) break;
    sim::Duration outage = rng_.uniform_int(cfg_.min_outage, cfg_.max_outage);

    // Pick an enabled fault kind.
    std::vector<int> kinds;
    if (cfg_.store_crashes) kinds.push_back(0);
    if (cfg_.music_crashes && !music_.empty()) kinds.push_back(1);
    if (cfg_.partitions) kinds.push_back(2);
    if (kinds.empty()) co_return;
    int kind = kinds[static_cast<size_t>(rng_.next_u64() % kinds.size())];

    switch (kind) {
      case 0: {
        // One store replica at a time (quorums stay available).
        int victim = static_cast<int>(
            rng_.next_u64() % static_cast<uint64_t>(store_.num_replicas()));
        if (store_.replica(victim).down()) break;
        ++store_crashes_;
        store_.replica(victim).set_down(true);
        co_await sim::sleep_for(sim, outage);
        store_.replica(victim).set_down(false);
        break;
      }
      case 1: {
        int victim =
            static_cast<int>(rng_.next_u64() % static_cast<uint64_t>(music_.size()));
        if (music_[static_cast<size_t>(victim)]->down()) break;
        ++music_crashes_;
        music_[static_cast<size_t>(victim)]->set_down(true);
        co_await sim::sleep_for(sim, outage);
        music_[static_cast<size_t>(victim)]->set_down(false);
        break;
      }
      case 2: {
        int sites = store_.network().num_sites();
        int isolated = static_cast<int>(rng_.next_u64() %
                                        static_cast<uint64_t>(sites));
        ++partitions_;
        std::set<int> rest;
        for (int s = 0; s < sites; ++s) {
          if (s != isolated) rest.insert(s);
        }
        store_.network().partition_sites({isolated}, rest);
        co_await sim::sleep_for(sim, outage);
        store_.network().heal_partition();
        break;
      }
      default:
        break;
    }
  }
  // Heal anything left broken at the end of the window.
  store_.network().heal_partition();
  for (int i = 0; i < store_.num_replicas(); ++i) {
    if (store_.replica(i).down()) store_.replica(i).set_down(false);
  }
  for (auto* m : music_) {
    if (m->down()) m->set_down(false);
  }
}

}  // namespace music::wl
