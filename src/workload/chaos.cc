#include "workload/chaos.h"

#include <algorithm>
#include <set>
#include <utility>

namespace music::wl {
namespace {

fault::NemesisHooks hooks_for(ds::StoreCluster& store,
                              std::vector<core::MusicReplica*>& music) {
  fault::NemesisHooks h;
  h.crash_store = [&store](int replica, bool down, bool amnesia) {
    if (down && amnesia) store.replica(replica).wipe_state();
    store.replica(replica).set_down(down);
  };
  h.crash_music = [&music](int replica, bool down, bool amnesia) {
    music.at(static_cast<size_t>(replica))->set_down(down, amnesia);
  };
  return h;
}

}  // namespace

ChaosInjector::ChaosInjector(ds::StoreCluster& store,
                             std::vector<core::MusicReplica*> music_replicas,
                             ChaosConfig cfg)
    : store_(store),
      music_(std::move(music_replicas)),
      cfg_(cfg),
      rng_(cfg.seed),
      nemesis_(store.simulation(), store.network(), hooks_for(store_, music_)) {}

void ChaosInjector::start(sim::Time until) {
  sim::spawn(store_.simulation(), run(until));
}

sim::Task<void> ChaosInjector::run(sim::Time until) {
  auto& sim = store_.simulation();
  while (sim.now() < until) {
    co_await sim::sleep_for(sim, rng_.uniform_int(cfg_.min_gap, cfg_.max_gap));
    if (sim.now() >= until) break;
    // Clamp to the window: every outage ends (and is healed by the nemesis)
    // no later than `until`.
    sim::Duration outage = std::min(
        rng_.uniform_int(cfg_.min_outage, cfg_.max_outage), until - sim.now());
    if (outage <= 0) break;

    // Pick an enabled fault kind.
    std::vector<int> kinds;
    if (cfg_.store_crashes) kinds.push_back(0);
    if (cfg_.music_crashes && !music_.empty()) kinds.push_back(1);
    if (cfg_.partitions) kinds.push_back(2);
    if (kinds.empty()) co_return;
    int kind = kinds[static_cast<size_t>(rng_.next_u64() % kinds.size())];

    switch (kind) {
      case 0: {
        // One store replica at a time (quorums stay available).
        int victim = static_cast<int>(
            rng_.next_u64() % static_cast<uint64_t>(store_.num_replicas()));
        if (store_.replica(victim).down()) break;
        ++store_crashes_;
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::CrashStore;
        spec.at = sim.now();
        spec.duration = outage;
        spec.replica = victim;
        nemesis_.inject(spec);
        co_await sim::sleep_for(sim, outage);
        break;
      }
      case 1: {
        int victim = static_cast<int>(rng_.next_u64() %
                                      static_cast<uint64_t>(music_.size()));
        if (music_[static_cast<size_t>(victim)]->down()) break;
        ++music_crashes_;
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::CrashMusic;
        spec.at = sim.now();
        spec.duration = outage;
        spec.replica = victim;
        nemesis_.inject(spec);
        co_await sim::sleep_for(sim, outage);
        break;
      }
      case 2: {
        int sites = store_.network().num_sites();
        int isolated = static_cast<int>(rng_.next_u64() %
                                        static_cast<uint64_t>(sites));
        ++partitions_;
        std::set<int> rest;
        for (int s = 0; s < sites; ++s) {
          if (s != isolated) rest.insert(s);
        }
        fault::FaultSpec spec;
        spec.kind = fault::FaultKind::Partition;
        spec.at = sim.now();
        spec.duration = outage;
        spec.side_a = {isolated};
        spec.side_b = std::move(rest);
        nemesis_.inject(spec);
        co_await sim::sleep_for(sim, outage);
        break;
      }
      default:
        break;
    }
  }
  // Belt and braces: the clamped durations above mean everything should
  // already be healed, but an early co_return path must not leak faults.
  nemesis_.heal_all();
}

}  // namespace music::wl
