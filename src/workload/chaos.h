// Reusable failure injector for tests, benches and the CLI.
//
// Drives the §III failure model on a seeded schedule: store-replica
// crashes/restarts, MUSIC-replica crashes/restarts, and short single-site
// network partitions (the paper's "link failures can partition a node from
// some subset of other nodes").  Outages are bounded so a majority stays
// available — the regime where MUSIC promises liveness; tests that need a
// dead majority inject that explicitly.
//
// Randomized scheduling lives here; the actual breaking and healing is
// delegated to fault::Nemesis, so every injected outage is span-tagged in
// traces and heals exactly what it broke (stacked partitions included).
// Scripted, deterministic fault scenarios should use fault::Schedule +
// Nemesis directly.
#pragma once

#include <cstdint>
#include <vector>

#include "core/music.h"
#include "datastore/store.h"
#include "fault/nemesis.h"
#include "sim/rng.h"
#include "sim/task.h"

namespace music::wl {

/// What and how often to break.
struct ChaosConfig {
  sim::Duration min_gap = sim::sec(5);
  sim::Duration max_gap = sim::sec(15);
  sim::Duration min_outage = sim::ms(500);
  sim::Duration max_outage = sim::sec(4);
  bool store_crashes = true;
  bool music_crashes = true;
  bool partitions = true;
  uint64_t seed = 0xC4405;
};

/// Seeded, bounded failure injection over a deployment.
class ChaosInjector {
 public:
  /// `music_replicas` may be empty (store-only deployments).
  ChaosInjector(ds::StoreCluster& store,
                std::vector<core::MusicReplica*> music_replicas,
                ChaosConfig cfg);

  /// Spawns the injection coroutine; it stops itself at `until`.  Outages
  /// are clamped to the window, so everything broken is healed by `until`.
  void start(sim::Time until);

  uint64_t store_crashes_injected() const { return store_crashes_; }
  uint64_t music_crashes_injected() const { return music_crashes_; }
  uint64_t partitions_injected() const { return partitions_; }

  /// The underlying engine (fault spans, open-fault count, heal_all).
  const fault::Nemesis& nemesis() const { return nemesis_; }

 private:
  sim::Task<void> run(sim::Time until);

  ds::StoreCluster& store_;
  std::vector<core::MusicReplica*> music_;
  ChaosConfig cfg_;
  sim::Rng rng_;
  fault::Nemesis nemesis_;
  uint64_t store_crashes_ = 0;
  uint64_t music_crashes_ = 0;
  uint64_t partitions_ = 0;
};

}  // namespace music::wl
