// YCSB-style workloads over MUSIC (§X-B2 / Fig. 9).
//
// The paper implemented a YCSB adapter converting YCSB reads/updates into
// MUSIC (and MSCP) operations: each YCSB op runs inside its own critical
// section over a Zipfian-selected key shared by all threads, so threads
// collide on locks (~5.5% of operations in the paper's runs).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "workload/driver.h"
#include "workload/zipfian.h"

namespace music::wl {

/// YCSB operation mix: fraction of reads (R=1.0, UR=0.5, U=0.0).
struct YcsbMix {
  std::string name;
  double read_fraction = 0.5;

  YcsbMix() = default;
  YcsbMix(std::string n, double rf) : name(std::move(n)), read_fraction(rf) {}

  static YcsbMix r() { return YcsbMix("R", 1.0); }
  static YcsbMix ur() { return YcsbMix("UR", 0.5); }
  static YcsbMix u() { return YcsbMix("U", 0.0); }
};

/// YCSB adapter: one op = one critical section doing a criticalGet (read)
/// or criticalPut (update) on a Zipfian key.
class YcsbWorkload : public Workload {
 public:
  YcsbWorkload(std::vector<core::MusicClient*> clients, YcsbMix mix,
               uint64_t record_count, size_t value_size, uint64_t seed);

  sim::Task<bool> run_once(int cid) override;

  /// Lock collisions observed: operations whose first acquireLock poll
  /// found another lockRef at the head (the §X-B2 contention metric).
  uint64_t collisions() const { return collisions_; }
  uint64_t operations() const { return operations_; }

 private:
  std::vector<core::MusicClient*> clients_;
  YcsbMix mix_;
  Zipfian zipf_;
  size_t value_size_;
  sim::Rng rng_;
  uint64_t collisions_ = 0;
  uint64_t operations_ = 0;
};

}  // namespace music::wl
