#include "datastore/store.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/span.h"

namespace music::ds {

namespace {

/// FNV-1a hash for ring placement (stable across platforms, unlike
/// std::hash<std::string>).
uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

int need_for(Consistency level, int rf) {
  switch (level) {
    case Consistency::One:
      return 1;
    case Consistency::Quorum:
      return rf / 2 + 1;
    case Consistency::All:
      return rf;
  }
  return rf;
}

// Cell <-> WireCell: same shape, different layer (wire must not depend on
// the datastore).
wire::WireCell to_wire(const Cell& c) { return wire::WireCell(c.value, c.ts); }
Cell from_wire(const wire::WireCell& c) { return Cell(c.value, c.ts); }

}  // namespace

// ---- StoreReplica ----------------------------------------------------------

StoreReplica::StoreReplica(StoreCluster& cluster, sim::NodeId node, int site)
    : cluster_(cluster),
      node_(node),
      site_(site),
      service_(cluster.simulation(), cluster.config().service) {
  if (size_t n = cfg().expected_keys; n != 0) {
    table_.reserve(n);
    acceptors_.reserve(n);
  }
}

sim::Simulation& StoreReplica::sim() { return cluster_.simulation(); }
const StoreConfig& StoreReplica::cfg() const { return cluster_.config(); }

bool StoreReplica::apply_write(const Key& key, const Cell& cell) {
  // Heterogeneous find: hashes the string once, no HashedKey construction
  // on the (common) already-present path.
  auto it = table_.find(std::string_view(key));
  if (it == table_.end()) {
    table_.emplace(HashedKey(key), cell);
    return true;
  }
  if (cell.ts > it->second.ts) {
    it->second = cell;
    return true;
  }
  return false;
}

std::optional<Cell> StoreReplica::local_read(const Key& key) const {
  auto it = table_.find(std::string_view(key));
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

paxos::Acceptor<Cell>& StoreReplica::acceptor(const Key& key) {
  auto it = acceptors_.find(std::string_view(key));
  if (it == acceptors_.end()) {
    it = acceptors_.emplace(HashedKey(key), paxos::Acceptor<Cell>{}).first;
  }
  return it->second;
}

paxos::PrepareReply<Cell> StoreReplica::handle_prepare(const Key& key,
                                                       paxos::Ballot b) {
  return acceptor(key).on_prepare(b);
}

paxos::AcceptReply StoreReplica::handle_accept(const Key& key,
                                               paxos::Proposal<Cell> proposal) {
  return acceptor(key).on_accept(std::move(proposal));
}

void StoreReplica::handle_commit(const Key& key, paxos::Ballot b,
                                 const Cell& cell) {
  apply_write(key, cell);
  acceptor(key).on_commit(b);
}

wire::StoreReply StoreReplica::serve_store(const wire::StoreRequest& msg) {
  wire::StoreReply r;
  switch (msg.op) {
    case wire::StoreOp::Write:
      apply_write(msg.key, from_wire(msg.cell));
      r.ok = true;
      break;
    case wire::StoreOp::Read: {
      auto c = local_read(msg.key);
      r.ok = true;
      r.from = static_cast<int32_t>(node_);
      if (c) {
        r.has_cell = true;
        r.cell = to_wire(*c);
      }
      break;
    }
    case wire::StoreOp::Prepare: {
      paxos::PrepareReply<Cell> pr = handle_prepare(msg.key, msg.ballot);
      r.ok = pr.promised;
      r.ballot = pr.promised_ballot;
      if (pr.in_progress) {
        r.has_cell = true;
        r.cell = to_wire(pr.in_progress->value);
        r.cell_ballot = pr.in_progress->ballot;
      }
      break;
    }
    case wire::StoreOp::Accept: {
      paxos::AcceptReply ar = handle_accept(
          msg.key, paxos::Proposal<Cell>{msg.ballot, from_wire(msg.cell)});
      r.ok = ar.accepted;
      r.ballot = ar.promised_ballot;
      break;
    }
    case wire::StoreOp::Commit:
      handle_commit(msg.key, msg.ballot, from_wire(msg.cell));
      r.ok = true;
      break;
  }
  return r;
}

sim::Future<wire::StoreReply> StoreReplica::call_store(
    sim::NodeId to, wire::StoreRequest msg, size_t bytes, size_t reply_bytes,
    sim::MsgKind kind, sim::MsgKind reply_kind) {
  return cluster_.transport().store_call(node_, to, std::move(msg), bytes,
                                         reply_bytes, cfg().overhead_bytes,
                                         kind, reply_kind);
}

void StoreReplica::set_down(bool down) {
  service_.set_down(down);
  cluster_.network().set_node_down(node_, down);
}

bool StoreReplica::down() const { return service_.down(); }

void StoreReplica::advance_ballot_past(ScalarTs ts) {
  if (ts < 0) return;
  ballot_round_ = std::max(ballot_round_, ts / paxos::kMaxProposers + 1);
}

void StoreReplica::wipe_state() {
  table_.clear();
  acceptors_.clear();
  hints_.clear();
  ballot_round_ = 0;
}

void StoreReplica::reset_volatile() {
  acceptors_.clear();
  hints_.clear();
  ballot_round_ = 0;
}

sim::Task<Status> StoreReplica::put(Key key, Cell cell, Consistency level) {
  sim::OpSpan span(sim(), "store.put", site_, node_, key);
  auto targets = cluster_.placement(key);
  int need = need_for(level, cfg().replication_factor);
  size_t bytes = cell.value.size() + key.size();
  // One write round: a WAN round trip unless a single (local) ack suffices.
  if (level != Consistency::One) sim::trace_rtts(sim(), 1);
  std::vector<sim::Future<wire::StoreReply>> acks;
  acks.reserve(targets.size());
  for (sim::NodeId t : targets) {
    if (cfg().hinted_handoff && !cluster_.transport().reachable(node_, t)) {
      leave_hint(t, key, cell);
      continue;
    }
    acks.push_back(call_store(t, wire::StoreRequest::write(key, to_wire(cell)),
                              bytes,
                              /*reply_bytes=*/16, sim::MsgKind::StoreWrite));
  }
  auto got = co_await sim::await_count<wire::StoreReply>(
      sim(), std::move(acks), static_cast<size_t>(need), cfg().op_timeout);
  if (got.size() < static_cast<size_t>(need)) co_return OpStatus::Timeout;
  co_return Status::Ok();
}

sim::Task<Result<Cell>> StoreReplica::read_internal(
    const Key& key, int need, const std::vector<sim::NodeId>& targets) {
  // One read round = one WAN round trip (the §X-B4 unit of cost).
  sim::trace_rtts(sim(), 1);
  co_return co_await resolve_read(key, need, issue_reads(key, targets));
}

auto StoreReplica::issue_reads(const Key& key,
                               const std::vector<sim::NodeId>& targets)
    -> std::vector<sim::Future<wire::StoreReply>> {
  std::vector<sim::Future<wire::StoreReply>> reps;
  reps.reserve(targets.size());
  for (sim::NodeId t : targets) {
    reps.push_back(call_store(t, wire::StoreRequest::read(key), key.size(),
                              /*reply_bytes=*/64, sim::MsgKind::StoreRead));
  }
  return reps;
}

sim::Task<Result<Cell>> StoreReplica::resolve_read(
    Key key, int need, std::vector<sim::Future<wire::StoreReply>> reps) {
  auto got = co_await sim::await_count<wire::StoreReply>(
      sim(), reps, static_cast<size_t>(need), cfg().op_timeout);
  if (got.size() < static_cast<size_t>(need)) {
    co_return Result<Cell>::Err(OpStatus::Timeout);
  }
  // Winner: highest timestamp among respondents.
  std::optional<Cell> best;
  for (const auto& rep : got) {
    if (rep.has_cell && (!best || rep.cell.ts > best->ts)) {
      best = from_wire(rep.cell);
    }
  }
  if (best && cfg().read_repair) {
    // Push the winner to respondents that returned something older (fire
    // and forget; this is how eventual replicas converge besides the
    // write-to-all fan-out).
    for (const auto& rep : got) {
      if (!rep.has_cell || rep.cell.ts < best->ts) {
        call_store(rep.from, wire::StoreRequest::write(key, to_wire(*best)),
                   best->value.size() + key.size(), 16,
                   sim::MsgKind::StoreRepair);
      }
    }
  }
  if (!best) co_return Result<Cell>::Err(OpStatus::NotFound);
  co_return Result<Cell>::Ok(*best);
}

sim::Task<Result<Cell>> StoreReplica::get(Key key, Consistency level) {
  sim::OpSpan span(sim(), "store.get", site_, node_, key);
  auto targets = cluster_.placement(key);
  int need = need_for(level, cfg().replication_factor);
  if (level == Consistency::One) {
    // Prefer the local replica if this coordinator stores the key (the
    // common case for MUSIC's lsPeek and eventual get).
    for (sim::NodeId t : targets) {
      if (t == node_) {
        auto c = local_read(key);
        // Still pay one service hop for fairness with remote handling.
        sim::Promise<Result<Cell>> p(sim());
        service_.submit(key.size() + 64, [p, c] {
          p.set_value(c ? Result<Cell>::Ok(*c)
                        : Result<Cell>::Err(OpStatus::NotFound));
        });
        co_return co_await p.future();
      }
    }
  }
  co_return co_await read_internal(key, need, targets);
}

sim::Task<std::vector<Status>> StoreReplica::put_cells(
    std::vector<WriteCell> writes, Consistency level) {
  sim::OpSpan span(sim(), "store.put_cells", site_, node_,
                   writes.empty() ? std::string_view{}
                                  : std::string_view{writes.front().key});
  int need = need_for(level, cfg().replication_factor);
  // One shared write round: every key's fan-out is issued before any quorum
  // wait, so the replies overlap and N independent keys cost one WAN round
  // trip, not N.
  if (level != Consistency::One && !writes.empty()) sim::trace_rtts(sim(), 1);
  std::vector<std::vector<sim::Future<wire::StoreReply>>> acks(writes.size());
  for (size_t i = 0; i < writes.size(); ++i) {
    const Key& key = writes[i].key;
    const Cell& cell = writes[i].cell;
    size_t bytes = cell.value.size() + key.size();
    for (sim::NodeId t : cluster_.placement(key)) {
      if (cfg().hinted_handoff && !cluster_.transport().reachable(node_, t)) {
        leave_hint(t, key, cell);
        continue;
      }
      acks[i].push_back(
          call_store(t, wire::StoreRequest::write(key, to_wire(cell)), bytes,
                     /*reply_bytes=*/16, sim::MsgKind::StoreWrite));
    }
  }
  std::vector<Status> out;
  out.reserve(writes.size());
  for (size_t i = 0; i < writes.size(); ++i) {
    auto got = co_await sim::await_count<wire::StoreReply>(
        sim(), std::move(acks[i]), static_cast<size_t>(need),
        cfg().op_timeout);
    out.push_back(got.size() < static_cast<size_t>(need)
                      ? Status::Err(OpStatus::Timeout)
                      : Status::Ok());
  }
  co_return out;
}

sim::Task<std::vector<Result<Cell>>> StoreReplica::get_cells(
    std::vector<Key> keys, Consistency level) {
  sim::OpSpan span(sim(), "store.get_cells", site_, node_,
                   keys.empty() ? std::string_view{}
                                : std::string_view{keys.front()});
  int need = need_for(level, cfg().replication_factor);
  // One shared read round (see put_cells): issue every key's fan-out before
  // resolving any quorum.
  if (!keys.empty()) sim::trace_rtts(sim(), 1);
  std::vector<std::vector<sim::Future<wire::StoreReply>>> reps;
  reps.reserve(keys.size());
  for (const Key& key : keys) {
    reps.push_back(issue_reads(key, cluster_.placement(key)));
  }
  std::vector<Result<Cell>> out;
  out.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    out.push_back(co_await resolve_read(keys[i], need, std::move(reps[i])));
  }
  co_return out;
}

sim::Task<Result<std::vector<Key>>> StoreReplica::scan_local_keys(Key prefix) {
  sim::Promise<std::vector<Key>> p(sim());
  service_.submit(prefix.size() + 256, [this, prefix, p] {
    std::vector<Key> out;
    for (const auto& [k, cell] : table_) {
      (void)cell;
      if (k.key().rfind(prefix, 0) == 0) out.push_back(k.key());
    }
    std::sort(out.begin(), out.end());
    p.set_value(std::move(out));
  });
  if (down()) co_return Result<std::vector<Key>>::Err(OpStatus::Timeout);
  co_return Result<std::vector<Key>>::Ok(co_await p.future());
}

std::vector<Key> StoreReplica::local_keys_with_prefix(
    std::string_view prefix) const {
  std::vector<Key> out;
  for (const auto& [k, cell] : table_) {
    (void)cell;
    if (k.key().rfind(prefix, 0) == 0) out.push_back(k.key());
  }
  return out;
}

sim::Task<Result<LwtOutcome>> StoreReplica::lwt(Key key,
                                                const LwtUpdate& update) {
  sim::OpSpan span(sim(), "store.lwt", site_, node_, key);
  auto targets = cluster_.placement(key);
  const int q = cluster_.quorum();
  const size_t small = 48;

  for (int attempt = 0; attempt < cfg().lwt_max_attempts; ++attempt) {
    if (attempt > 0) {
      // Contention backoff: exponential with jitter, capped (as Cassandra's
      // Paxos retry does) — constant backoff livelocks under many
      // contending proposers.
      int shift = std::min(attempt - 1, 5);
      auto base = cfg().lwt_retry_backoff << shift;
      co_await sim::sleep_for(
          sim(), base + sim().rng().uniform_int(0, base));
    }
    paxos::Ballot b = paxos::make_ballot(++ballot_round_, node_);

    // ---- Round 1: prepare / promise.
    sim::trace_rtts(sim(), 1);
    std::vector<sim::Future<wire::StoreReply>> prepares;
    for (sim::NodeId t : targets) {
      prepares.push_back(call_store(t, wire::StoreRequest::prepare(key, b),
                                    key.size() + small, small,
                                    sim::MsgKind::PaxosPrepare));
    }
    auto promises = co_await sim::await_count<wire::StoreReply>(
        sim(), std::move(prepares), static_cast<size_t>(q), cfg().op_timeout);
    if (promises.size() < static_cast<size_t>(q)) {
      co_return Result<LwtOutcome>::Err(OpStatus::Timeout);
    }
    bool refused = false;
    std::optional<paxos::Proposal<Cell>> in_progress;
    for (const auto& pr : promises) {
      if (!pr.ok) {
        refused = true;
        ballot_round_ = std::max(ballot_round_, paxos::ballot_round(pr.ballot));
      }
      if (pr.has_cell &&
          (!in_progress || pr.cell_ballot > in_progress->ballot)) {
        in_progress =
            paxos::Proposal<Cell>{pr.cell_ballot, from_wire(pr.cell)};
      }
    }
    if (refused) continue;  // lost to a higher ballot; retry

    if (in_progress) {
      // Finish the earlier coordinator's proposal under our ballot, then
      // retry our own operation from scratch.
      paxos::Proposal<Cell> replay{b, in_progress->value};
      sim::trace_rtts(sim(), 1);
      std::vector<sim::Future<wire::StoreReply>> accs;
      for (sim::NodeId t : targets) {
        accs.push_back(call_store(
            t, wire::StoreRequest::accept(key, to_wire(replay.value), b),
            key.size() + replay.value.value.size(), small,
            sim::MsgKind::PaxosAccept));
      }
      auto ack = co_await sim::await_count<wire::StoreReply>(
          sim(), std::move(accs), static_cast<size_t>(q), cfg().op_timeout);
      bool all_ok = ack.size() >= static_cast<size_t>(q);
      for (const auto& a : ack) all_ok = all_ok && a.ok;
      if (all_ok) {
        Cell cell = replay.value;
        sim::trace_rtts(sim(), 1);
        std::vector<sim::Future<wire::StoreReply>> commits;
        for (sim::NodeId t : targets) {
          commits.push_back(call_store(
              t, wire::StoreRequest::commit(key, to_wire(cell), b),
              key.size() + cell.value.size(), 16, sim::MsgKind::PaxosCommit));
        }
        co_await sim::await_count<wire::StoreReply>(sim(), std::move(commits),
                                                    static_cast<size_t>(q),
                                                    cfg().op_timeout);
      }
      continue;  // now retry our own update
    }

    // ---- Round 2: read the committed value at quorum.
    auto read = co_await read_internal(key, q, targets);
    if (!read.ok() && read.status() == OpStatus::Timeout) {
      co_return Result<LwtOutcome>::Err(OpStatus::Timeout);
    }
    std::optional<Cell> current;
    if (read.ok()) current = read.value();

    LwtDecision d = update(current);
    if (!d.apply) {
      co_return Result<LwtOutcome>::Ok(LwtOutcome{false, current});
    }

    // When no explicit timestamp is supplied the commit's LWW timestamp is
    // our ballot, and ballot_round_ is volatile: a coordinator restarted
    // from a table snapshot mints ballots below the ballot-stamped rows it
    // reloaded (a freshly restarted quorum has no acceptor promises left
    // to refuse them either — promises are volatile too).  Committing with
    // b <= current->ts would clear every Paxos phase yet lose LWW at apply
    // time on all replicas: an acked update that never becomes visible.
    // Outrun the row and retry.  With acceptor state intact this never
    // fires — accepts raise promised ballots at every reachable node, so
    // prepare refusal already keeps lagging coordinators out.
    if (current && !d.ts && static_cast<ScalarTs>(b) <= current->ts) {
      advance_ballot_past(current->ts);
      continue;
    }

    Cell cell{d.new_value, d.ts.value_or(static_cast<ScalarTs>(b))};

    // ---- Round 3: propose / accept.
    sim::trace_rtts(sim(), 1);
    std::vector<sim::Future<wire::StoreReply>> accs;
    for (sim::NodeId t : targets) {
      accs.push_back(
          call_store(t, wire::StoreRequest::accept(key, to_wire(cell), b),
                     key.size() + cell.value.size(), small,
                     sim::MsgKind::PaxosAccept));
    }
    auto acks = co_await sim::await_count<wire::StoreReply>(
        sim(), std::move(accs), static_cast<size_t>(q), cfg().op_timeout);
    if (acks.size() < static_cast<size_t>(q)) {
      co_return Result<LwtOutcome>::Err(OpStatus::Timeout);
    }
    bool accepted = true;
    for (const auto& a : acks) {
      if (!a.ok) {
        accepted = false;
        ballot_round_ = std::max(ballot_round_, paxos::ballot_round(a.ballot));
      }
    }
    if (!accepted) continue;  // raced with a competitor; retry

    // ---- Round 4: commit.
    sim::trace_rtts(sim(), 1);
    std::vector<sim::Future<wire::StoreReply>> commits;
    for (sim::NodeId t : targets) {
      commits.push_back(
          call_store(t, wire::StoreRequest::commit(key, to_wire(cell), b),
                     key.size() + cell.value.size(), 16,
                     sim::MsgKind::PaxosCommit));
    }
    auto done = co_await sim::await_count<wire::StoreReply>(
        sim(), std::move(commits), static_cast<size_t>(q), cfg().op_timeout);
    if (done.size() < static_cast<size_t>(q)) {
      // Accepted but commit acknowledgment failed: a later LWT will replay
      // it; report Timeout so the caller retries (idempotent updates).
      co_return Result<LwtOutcome>::Err(OpStatus::Timeout);
    }
    co_return Result<LwtOutcome>::Ok(LwtOutcome{true, current});
  }
  co_return Result<LwtOutcome>::Err(OpStatus::Conflict);
}

void StoreReplica::leave_hint(sim::NodeId target, const Key& key,
                              const Cell& cell) {
  hints_.push_back(Hint{target, key, cell});
  if (hint_loop_running_) return;
  hint_loop_running_ = true;
  sim().schedule(cfg().hint_replay_interval, [this] { replay_hints(); });
}

void StoreReplica::replay_hints() {
  // Deliver every hint whose target is reachable again; keep the rest.
  size_t n = hints_.size();
  for (size_t i = 0; i < n && !down(); ++i) {
    Hint h = std::move(hints_.front());
    hints_.pop_front();
    if (!cluster_.transport().reachable(node_, h.target)) {
      hints_.push_back(std::move(h));  // still unreachable; keep the hint
      continue;
    }
    call_store(h.target, wire::StoreRequest::write(h.key, to_wire(h.cell)),
               h.key.size() + h.cell.value.size(), 16, sim::MsgKind::Hint);
  }
  if (hints_.empty() || down()) {
    hint_loop_running_ = false;
    return;
  }
  sim().schedule(cfg().hint_replay_interval, [this] { replay_hints(); });
}

// ---- StoreCluster ----------------------------------------------------------

StoreCluster::StoreCluster(sim::Simulation& sim, sim::Network& net,
                           StoreConfig cfg, const std::vector<int>& node_sites,
                           net::Transport* transport)
    : sim_(sim), net_(net), cfg_(std::move(cfg)) {
  assert(static_cast<int>(node_sites.size()) >= cfg_.replication_factor);
  for (int site : node_sites) {
    sim::NodeId id = net_.add_node(site);
    replicas_.push_back(std::make_unique<StoreReplica>(*this, id, site));
    by_node_[id] = replicas_.back().get();
  }
  if (transport != nullptr) {
    // Injected backend (musicd over TCP): the host binds/registers replicas
    // with its transport itself.
    transport_ = transport;
  } else {
    // Default: a private SimTransport over this cluster's network, every
    // replica bound as a store endpoint — bit-identical to the pre-seam
    // direct wiring.
    own_transport_ = std::make_unique<net::SimTransport>(sim_, net_);
    for (auto& r : replicas_) {
      StoreReplica* rep = r.get();
      own_transport_->bind(
          rep->node(),
          net::SimEndpoint{&rep->service(), nullptr,
                           [rep](const wire::StoreRequest& m) {
                             return rep->serve_store(m);
                           }});
    }
    transport_ = own_transport_.get();
  }
}

StoreReplica& StoreCluster::replica_at_site(int site) {
  for (auto& r : replicas_) {
    if (r->site() == site && !r->down()) return *r;
  }
  return *replicas_.front();
}

void StoreCluster::start_anti_entropy() {
  for (int i = 0; i < num_replicas(); ++i) {
    // Stagger the rounds so replicas do not synchronize their repair work.
    sim_.schedule(cfg_.anti_entropy_interval +
                      sim_.rng().uniform_int(0, cfg_.anti_entropy_interval),
                  [this, i] { anti_entropy_round(i); });
  }
}

void StoreCluster::anti_entropy_round(int idx) {
  StoreReplica& a = replica(idx);
  StoreReplica& b = replica((idx + 1) % num_replicas());
  if (!a.down() && !b.down() && net_.deliverable(a.node(), b.node())) {
    // Model: A ships its digest (one message, size ~ table entries); B
    // replies with the cells A is missing and applies what it lacked from
    // the digest exchange (a second pass pulls A's newer cells).  For
    // simplicity the cell transfer itself is modeled as one bulk message
    // each way whose size is the moved payload.
    size_t digest_bytes = a.table_size() * 24 + 64;
    sim::NodeId an = a.node();
    sim::NodeId bn = b.node();
    StoreReplica* ap = &a;
    StoreReplica* bp = &b;
    net_.send(an, bn, digest_bytes, [this, ap, bp, an, bn] {
      // At B: compute both repair directions against A's (current) table.
      // Direct table access stands in for the digest contents; the paid
      // network/service costs model the exchange.
      std::vector<std::pair<Key, Cell>> to_a, to_b;
      for (const auto& [k, cell] : bp->table_) {
        auto ac = ap->local_read(k.key());
        if (!ac || ac->ts < cell.ts) to_a.emplace_back(k.key(), cell);
      }
      for (const auto& [k, cell] : ap->table_) {
        auto bc = bp->local_read(k.key());
        if (!bc || bc->ts < cell.ts) to_b.emplace_back(k.key(), cell);
      }
      size_t a_bytes = 64, b_bytes = 64;
      for (auto& [k, c] : to_a) a_bytes += k.size() + c.value.size();
      for (auto& [k, c] : to_b) b_bytes += k.size() + c.value.size();
      bp->service().submit(b_bytes, [bp, to_b = std::move(to_b)] {
        for (const auto& [k, c] : to_b) bp->apply_write(k, c);
      });
      net_.send(
          bn, an, a_bytes,
          [ap, a_bytes, to_a = std::move(to_a)] {
            ap->service().submit(a_bytes, [ap, to_a] {
              for (const auto& [k, c] : to_a) ap->apply_write(k, c);
            });
          },
          sim::MsgKind::AntiEntropy);
    });
  }
  sim_.schedule(cfg_.anti_entropy_interval, [this, idx] {
    anti_entropy_round(idx);
  });
}

std::vector<sim::NodeId> StoreCluster::placement(const Key& key) const {
  int n = static_cast<int>(replicas_.size());
  int rf = std::min(cfg_.replication_factor, n);
  int start = static_cast<int>(fnv1a(key) % static_cast<uint64_t>(n));
  std::vector<sim::NodeId> out;
  out.reserve(static_cast<size_t>(rf));
  for (int i = 0; i < rf; ++i) {
    out.push_back(replicas_[static_cast<size_t>((start + i) % n)]->node());
  }
  return out;
}

}  // namespace music::ds
