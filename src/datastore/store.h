// The eventually-consistent, replicated data store (Cassandra substitute).
//
// MUSIC uses Cassandra through four primitives (§III-B, §VI):
//   * eventual reads/writes at one replica   -> Consistency::One
//   * quorum reads/writes                    -> Consistency::Quorum
//   * last-write-wins ordering by a client-supplied scalar timestamp
//     ("USING TIMESTAMP"), into which MUSIC encodes its vector timestamps
//   * light-weight transactions: a Paxos-based compare-and-set costing four
//     round trips (prepare / read / propose / commit)
//
// This module implements exactly those primitives over the simulator: every
// replica is a node on the simulated network with a service-time model;
// coordinators (any replica) fan writes out to all RF replicas of a key,
// wait for the consistency level, leave hints for unreachable replicas, and
// read-repair stale replicas after quorum reads.  Keys are placed on the
// ring so that, as in the paper's deployments, each key has one replica per
// site (3 replicas) regardless of cluster size (3, 6, 9 nodes for Fig 4(b)).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "common/v2s.h"
#include "net/sim_transport.h"
#include "net/transport.h"
#include "paxos/paxos.h"
#include "sim/future.h"
#include "sim/network.h"
#include "sim/service.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace music::ds {

/// Cassandra-style consistency levels used by MUSIC.
enum class Consistency { One, Quorum, All };

/// A key with its hash precomputed at construction.  Replica tables are keyed
/// by HashedKey so the hot path (apply_write/local_read on every replicated
/// write and read) hashes each key string once instead of on every probe,
/// and lookups by plain Key go through the transparent overloads below
/// without constructing a HashedKey (no string copy, no rehash churn).
class HashedKey {
 public:
  explicit HashedKey(Key k) : hash_(hash_of(k)), key_(std::move(k)) {}

  const Key& key() const { return key_; }
  uint64_t hash() const { return hash_; }

  /// FNV-1a, stable across platforms (same rationale as ring placement).
  static uint64_t hash_of(std::string_view s) {
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    return h;
  }

  friend bool operator==(const HashedKey& a, const HashedKey& b) {
    return a.hash_ == b.hash_ && a.key_ == b.key_;
  }

 private:
  uint64_t hash_;
  Key key_;
};

/// Transparent hasher: HashedKey returns its stored hash; plain strings are
/// hashed on the fly (lookup-by-Key without constructing a HashedKey).
struct HashedKeyHash {
  using is_transparent = void;
  size_t operator()(const HashedKey& k) const {
    return static_cast<size_t>(k.hash());
  }
  size_t operator()(std::string_view s) const {
    return static_cast<size_t>(HashedKey::hash_of(s));
  }
};

struct HashedKeyEq {
  using is_transparent = void;
  bool operator()(const HashedKey& a, const HashedKey& b) const {
    return a == b;
  }
  bool operator()(const HashedKey& a, std::string_view b) const {
    return a.key() == b;
  }
  bool operator()(std::string_view a, const HashedKey& b) const {
    return a == b.key();
  }
};

/// A versioned value as stored at a replica: payload plus the scalar
/// timestamp that orders it (MUSIC writes v2s-encoded vector timestamps).
///
/// NOTE: user-declared constructors are required, not stylistic.  GCC 12
/// miscompiles by-value *aggregate* coroutine parameters whose members are
/// non-trivial (the frame parameter copy is made bitwise, so the original's
/// string buffer gets double-freed).  Any struct with non-trivial members
/// that crosses a Task<> coroutine boundary by value must be a
/// non-aggregate; keep constructors on such types.
struct Cell {
  Value value;
  ScalarTs ts = -1;

  Cell() = default;
  Cell(Value v, ScalarTs t) : value(std::move(v)), ts(t) {}
};

/// Outcome of a light-weight transaction.  (User ctors: see Cell note.)
struct LwtOutcome {
  /// True if the update's condition held and the new value was committed.
  bool applied = false;
  /// The committed value the condition was evaluated against (nullopt if
  /// the key did not exist).
  std::optional<Cell> prior;

  LwtOutcome() = default;
  LwtOutcome(bool a, std::optional<Cell> p) : applied(a), prior(std::move(p)) {}
};

/// Decision returned by an LwtUpdate: whether to apply, and with what.
struct LwtDecision {
  bool apply = false;
  Value new_value;
  /// Commit timestamp; if unset the coordinator stamps with the ballot
  /// (fine for keys written exclusively through LWTs, e.g. lock tables).
  std::optional<ScalarTs> ts;

  LwtDecision() = default;
  LwtDecision(bool a, Value v, std::optional<ScalarTs> t)
      : apply(a), new_value(std::move(v)), ts(t) {}
};

/// A compare-and-set step: computes the decision from the current committed
/// cell.  Runs on the coordinator between the LWT's read and propose phases.
using LwtUpdate = std::function<LwtDecision(const std::optional<Cell>&)>;

/// One entry of a multi-cell write.  (User ctors: see Cell note.)
struct WriteCell {
  Key key;
  Cell cell;

  WriteCell() = default;
  WriteCell(Key k, Cell c) : key(std::move(k)), cell(std::move(c)) {}
};

/// Tunables for the store.
struct StoreConfig {
  /// Replicas per key.  The paper keeps one copy per site.
  int replication_factor = 3;
  /// How long a coordinator waits for each phase's quorum before failing
  /// the operation back to the client (who then retries, §III).
  sim::Duration op_timeout = sim::ms(1500);
  /// Repair stale replicas after quorum reads.
  bool read_repair = true;
  /// Periodic anti-entropy repair (Cassandra's `nodetool repair` made
  /// continuous): replicas exchange per-key timestamp digests with a peer
  /// and push newer cells.  Off by default; enable via
  /// StoreCluster::start_anti_entropy().
  sim::Duration anti_entropy_interval = sim::sec(5);
  /// Store and replay writes for unreachable replicas.
  bool hinted_handoff = true;
  sim::Duration hint_replay_interval = sim::ms(250);
  /// LWT contention handling.
  int lwt_max_attempts = 32;
  sim::Duration lwt_retry_backoff = sim::ms(4);
  /// Per-message framing overhead added to payload sizes.
  size_t overhead_bytes = 96;
  /// Workload hint: expected distinct keys per replica.  When nonzero each
  /// replica reserves its value table and Paxos acceptor table up front so
  /// steady-state writes never rehash (benches and soak tests know their key
  /// population; 0 keeps the default growth policy).
  size_t expected_keys = 0;
  /// Compute model for each replica.  The 190us base cost calibrates a
  /// 3-node cluster's eventual-write capacity to the ~41k op/s the paper
  /// reports for CassaEV (Fig. 4a), i.e. real Cassandra's per-op overhead.
  sim::ServiceConfig service{8, 190, 2.0};
};

class StoreCluster;

/// One storage node: a replica (table + per-key Paxos acceptors) that can
/// also act as a coordinator for any operation.
class StoreReplica {
 public:
  StoreReplica(StoreCluster& cluster, sim::NodeId node, int site);

  StoreReplica(const StoreReplica&) = delete;
  StoreReplica& operator=(const StoreReplica&) = delete;

  sim::NodeId node() const { return node_; }
  int site() const { return site_; }
  sim::ServiceNode& service() { return service_; }

  // ---- Replica-side handlers (run on this node, after network + queueing).

  /// Last-write-wins apply; returns true if the write was newer and taken.
  bool apply_write(const Key& key, const Cell& cell);

  /// The replica's local view of a key (may be stale).
  std::optional<Cell> local_read(const Key& key) const;

  paxos::PrepareReply<Cell> handle_prepare(const Key& key, paxos::Ballot b);
  paxos::AcceptReply handle_accept(const Key& key,
                                   paxos::Proposal<Cell> proposal);
  /// Commit: applies the cell to the table and clears the Paxos slot.
  void handle_commit(const Key& key, paxos::Ballot b, const Cell& cell);

  /// The replica-side wire dispatcher: every inter-replica message lands
  /// here (via the cluster's Transport) and is mapped onto the typed
  /// handlers above.  Synchronous — store handlers are plain state
  /// transitions.
  wire::StoreReply serve_store(const wire::StoreRequest& msg);

  // ---- Coordinator-side operations (this node is the Cassandra
  // ---- coordinator the MUSIC replica or client connected to).

  /// Writes key=cell at the given consistency level.  Fans out to all RF
  /// replicas; succeeds when `level` many acknowledge.
  sim::Task<Status> put(Key key, Cell cell, Consistency level);

  /// Reads the key at the given consistency level: returns the
  /// highest-timestamp cell among the replicas that answered.  NotFound if
  /// the key exists nowhere (among respondents); Timeout if too few answer.
  sim::Task<Result<Cell>> get(Key key, Consistency level);

  /// Batched write: fans every cell out to its replicas at once, then waits
  /// for each key's consistency level.  The fan-out for all keys shares one
  /// network round, so N independent keys cost one WAN round trip rather
  /// than N (the win MUSIC batching is after); only the per-key quorum
  /// waits overlap.  Returns one Status per entry, aligned with `writes`.
  sim::Task<std::vector<Status>> put_cells(std::vector<WriteCell> writes,
                                           Consistency level);

  /// Batched read: issues every key's replica reads at once, then resolves
  /// each key's quorum (same single-round property as put_cells).  Returns
  /// one Result per entry, aligned with `keys`.
  sim::Task<std::vector<Result<Cell>>> get_cells(std::vector<Key> keys,
                                                 Consistency level);

  /// Light-weight transaction (4 round trips).  Runs `update` against the
  /// committed value; commits its decision under Paxos.  Retries internally
  /// on ballot contention up to lwt_max_attempts.
  ///
  /// `update` MUST be a named lvalue in the calling coroutine's frame, not
  /// a lambda temporary at the call site (GCC 12 miscompiles callable
  /// temporaries crossing coroutine boundaries; see the Cell comment).  It
  /// must stay alive until this task completes — immediate co_await of the
  /// call satisfies both.
  sim::Task<Result<LwtOutcome>> lwt(Key key, const LwtUpdate& update);

  /// Keys starting with `prefix` in this coordinator's local table, sorted
  /// (an eventual scan — may be stale; backs MUSIC's getAllKeys helper).
  sim::Task<Result<std::vector<Key>>> scan_local_keys(Key prefix);

  /// Synchronous local-table key enumeration (no service cost, no network):
  /// keys starting with `prefix`, unsorted.  For control-plane inspection —
  /// the cluster layer's shard-move row census — not the data path.
  std::vector<Key> local_keys_with_prefix(std::string_view prefix) const;

  /// Crash / restart this replica (table survives; Paxos state survives —
  /// i.e. crash-recovery with persistent storage, as Cassandra provides).
  void set_down(bool down);
  bool down() const;

  /// Advances this coordinator's LWT ballot round strictly past `ts`.  LWT
  /// commits stamp cells with their ballot, and apply_write is LWW — so a
  /// row imported from another replica set (cluster shard move) with a high
  /// foreign-ballot timestamp would shadow every locally-committed update
  /// until local ballots catch up.  The importing layer calls this on every
  /// replica after a copy so future LWT commits always stamp above imports.
  void advance_ballot_past(ScalarTs ts);

  /// Amnesia crash: discards the table, Paxos acceptor state and queued
  /// hints, as if the node restarted from an empty disk.  NOTE: losing
  /// acceptor/table state can genuinely break quorum durability (data with
  /// fewer than a quorum of surviving copies is gone) — that is the point
  /// of the fault, not a bug in it.  Pair with set_down via the nemesis.
  void wipe_state();

  /// Process restart from a table snapshot: keeps the table, discards what
  /// a real restart discards — Paxos acceptor promises, queued hints and
  /// the ballot counter (musicd's --state-file persists only table rows).
  /// Models the restart-onto-new-binary fault against the in-process
  /// world; lwt() must stay correct with ballots reset under a reloaded
  /// ballot-stamped table.
  void reset_volatile();

  /// Raw table size (diagnostics).
  size_t table_size() const { return table_.size(); }

 private:
  friend class StoreCluster;

  sim::Simulation& sim();
  const StoreConfig& cfg() const;

  /// Ships `msg` to replica `to` through the cluster's Transport and
  /// returns the reply future.  Never fulfilled if the message or reply is
  /// lost.  `bytes`/`reply_bytes` are the payload costs (framing overhead
  /// is added by the transport); `kind`/`reply_kind` tag the hops for
  /// per-type network counters.
  sim::Future<wire::StoreReply> call_store(
      sim::NodeId to, wire::StoreRequest msg, size_t bytes, size_t reply_bytes,
      sim::MsgKind kind = sim::MsgKind::Generic,
      sim::MsgKind reply_kind = sim::MsgKind::StoreAck);

  /// Internal quorum/CL read used by both get() and the LWT read phase.
  sim::Task<Result<Cell>> read_internal(const Key& key, int need,
                                        const std::vector<sim::NodeId>& targets);

  /// Fans a read for `key` out to `targets`; returns the reply futures
  /// without awaiting.  Batched reads issue all keys' fan-outs first so
  /// their network rounds overlap.
  std::vector<sim::Future<wire::StoreReply>> issue_reads(
      const Key& key, const std::vector<sim::NodeId>& targets);

  /// Awaits `need` of the issued replies and picks the winner (read-repair
  /// as in read_internal).  The key is taken by value: the caller's frame
  /// may hold it in a container that mutates while this task is suspended.
  sim::Task<Result<Cell>> resolve_read(
      Key key, int need, std::vector<sim::Future<wire::StoreReply>> reps);

  void leave_hint(sim::NodeId target, const Key& key, const Cell& cell);
  void replay_hints();

  /// The Paxos acceptor for `key`, created on first use (heterogeneous
  /// lookup first, so the common repeat-LWT path never copies the key).
  paxos::Acceptor<Cell>& acceptor(const Key& key);

  StoreCluster& cluster_;
  sim::NodeId node_;
  int site_;
  sim::ServiceNode service_;
  std::unordered_map<HashedKey, Cell, HashedKeyHash, HashedKeyEq> table_;
  std::unordered_map<HashedKey, paxos::Acceptor<Cell>, HashedKeyHash,
                     HashedKeyEq>
      acceptors_;
  int64_t ballot_round_ = 0;
  struct Hint {
    sim::NodeId target;
    Key key;
    Cell cell;
  };
  std::deque<Hint> hints_;
  bool hint_loop_running_ = false;
};

/// The cluster: node registry, key placement, and the RPC fabric replicas
/// use to reach each other.
class StoreCluster {
 public:
  /// Creates one replica per entry of `node_sites` (value = site index).
  /// For multi-node-per-site clusters, list nodes interleaved by site
  /// (s0,s1,s2,s0,s1,s2,...) so ring placement puts each key's RF replicas
  /// on distinct sites, as the paper's deployments do.
  ///
  /// `transport` overrides the inter-replica fabric (the musicd deployment
  /// injects a TcpTransport here); null builds the default SimTransport
  /// over `net`, which is bit-identical to the pre-seam RPC path.
  StoreCluster(sim::Simulation& sim, sim::Network& net, StoreConfig cfg,
               const std::vector<int>& node_sites,
               net::Transport* transport = nullptr);

  sim::Simulation& simulation() { return sim_; }
  sim::Network& network() { return net_; }
  /// The fabric replicas reach each other through.
  net::Transport& transport() { return *transport_; }
  const StoreConfig& config() const { return cfg_; }

  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  StoreReplica& replica(int i) { return *replicas_.at(static_cast<size_t>(i)); }

  /// A replica located at `site` (the one clients at that site talk to).
  StoreReplica& replica_at_site(int site);

  /// The RF replicas storing `key`, in ring order.
  std::vector<sim::NodeId> placement(const Key& key) const;

  /// Majority of the replication factor.
  int quorum() const { return cfg_.replication_factor / 2 + 1; }

  /// Finds the replica object for a node id.
  StoreReplica& by_node(sim::NodeId n) { return *by_node_.at(n); }

  /// Starts periodic anti-entropy: every interval, each replica exchanges a
  /// digest with its ring successor and they repair each other (both
  /// directions).  Heals divergence that hints/read-repair missed (e.g.
  /// writes fully lost to a partitioned replica).
  void start_anti_entropy();

 private:
  void anti_entropy_round(int idx);
  sim::Simulation& sim_;
  sim::Network& net_;
  StoreConfig cfg_;
  std::vector<std::unique_ptr<StoreReplica>> replicas_;
  std::unordered_map<sim::NodeId, StoreReplica*> by_node_;
  /// Owned default fabric (null when an external transport was injected).
  std::unique_ptr<net::SimTransport> own_transport_;
  net::Transport* transport_;
};

}  // namespace music::ds
