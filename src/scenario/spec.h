// Declarative scenario specs: one parseable text file describing a whole
// evaluation cell grid — workload, topology, protocol(s) and fault schedule.
//
// The axes come from "How to Evaluate Distributed Coordination Systems?"
// (PAPERS.md): read/write mix sweeps, client-count scaling, holder placement
// vs client locality, heterogeneous WAN profiles and diurnal load — none of
// which the paper's figures touch.  A spec composes four blocks:
//
//   scenario mix-sweep
//   seeds 2
//   protocols music,mscp            # sweep axis
//
//   topology {
//     profiles lUs,lUsEu            # sweep axis (Table II names, or "local")
//     holder_site 0                 # -1 = client-local replica preference
//     store_nodes 3
//     versions 1:2:2                # sweep axis: per-site max wire version
//   }
//
//   workload {
//     mixes 0,0.5,1                 # read fraction, sweep axis
//     clients 2,4                   # total client count, sweep axis
//     placement 1,0,2               # per-site weights ("" = spread evenly)
//     keys 64
//     keying zipfian 0.99           # zipfian THETA | uniform | single
//     arrival diurnal 50 period 20s low 0.2   # closed | poisson RATE | diurnal ...
//     value 10
//     warmup 2s
//     measure 10s
//   }
//
//   faults {                        # fault::Schedule DSL, verbatim
//     at 5s partition 0|1,2 for 3s
//   }
//
// Comma-separated fields (protocols, profiles, mixes, clients) are sweep
// AXES: the grid is their cross product, times `seeds` deterministic seeds
// per point.  parse() round-trips with format() — parse(format(s)) == s —
// and reports malformed input as line/column diagnostics, never by crashing
// or silently dropping clauses.  The compiler that turns a spec into
// runnable sim worlds lives in scenario/run.h.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace music::scn {

/// Where and why a spec failed to parse (1-based line/column).
struct Diag {
  int line = 1;
  int col = 1;
  std::string message;

  /// "line L, col C: message".
  std::string str() const;
};

/// Which system a cell drives through the workload.
enum class Protocol : uint8_t { Music, Mscp, Zab, RaftKv };

/// Stable lowercase name ("music", "mscp", "zab", "raftkv").
const char* to_string(Protocol p);
std::optional<Protocol> protocol_from(std::string_view name);

/// How keys are drawn for each operation.
enum class Keying : uint8_t { Uniform, Zipfian, Single };

/// Arrival process for the load generator.
enum class ArrivalKind : uint8_t { Closed, Poisson, Diurnal };

struct Arrival {
  ArrivalKind kind = ArrivalKind::Closed;
  /// Poisson/diurnal: target ops/sec per client (diurnal: at peak).
  double rate = 0.0;
  /// Diurnal: one day-night cycle length.
  sim::Duration period = 0;
  /// Diurnal: trough rate as a fraction of peak, in [0,1].
  double low = 0.0;

  bool operator==(const Arrival&) const = default;
};

struct TopologyBlock {
  /// WAN delay profile names; sweep axis.  "11" | "lUs" | "lUsEu" | "local".
  std::vector<std::string> profiles{"lUs"};
  /// Replica every client prefers first (coordination placement vs client
  /// locality, after Consus); -1 = each client prefers its own site.
  int holder_site = -1;
  /// Store replicas, interleaved across the 3 sites.
  int store_nodes = 3;
  /// Consistent-hash shard counts (cluster layer); sweep axis.  1 = the
  /// classic single-group world; > 1 builds a cluster::Cluster with one
  /// MUSIC group per shard (music/mscp only).
  std::vector<int> shards{1};
  /// Mixed-version fleets (rolling upgrades); sweep axis.  Each entry is a
  /// colon-separated per-site max wire version, e.g. "1:2:2" = site 0 runs
  /// a v1-pinned binary while sites 1-2 run v2.  "" (the default) means
  /// every site runs the current binary's full range.
  std::vector<std::string> versions{""};

  bool operator==(const TopologyBlock&) const = default;
};

struct WorkloadBlock {
  /// Read fraction of the op mix (1.0 = 100% reads); sweep axis.
  std::vector<double> mixes{0.5};
  /// Total logical clients; sweep axis.
  std::vector<int> clients{3};
  /// Per-site client-count weights; empty = spread evenly.  A zero weight
  /// is a zero-client site.
  std::vector<int> placement;
  /// Keyspace size.
  uint64_t keys = 64;
  Keying keying = Keying::Uniform;
  /// Zipfian skew (YCSB's theta), used when keying == Zipfian.
  double zipf_theta = 0.99;
  Arrival arrival;
  /// Value payload bytes per write.
  size_t value_size = 10;
  sim::Duration warmup = sim::sec(2);
  sim::Duration measure = sim::sec(10);

  bool operator==(const WorkloadBlock&) const = default;
};

struct ScenarioSpec {
  std::string name = "unnamed";
  /// Deterministic seeds per grid point (seed values 1..seeds, offset by
  /// base_seed - 1).
  int seeds = 1;
  uint64_t base_seed = 1;
  /// Protocol selector; sweep axis.
  std::vector<Protocol> protocols{Protocol::Music};
  TopologyBlock topology;
  WorkloadBlock workload;
  /// fault::Schedule script, normalized (single spaces, clauses joined
  /// with "; "); empty = fault-free.  Embedded verbatim in the spec file's
  /// faults { } block, one clause per line.
  std::string faults;

  bool operator==(const ScenarioSpec&) const = default;

  /// Parses a spec.  On failure returns nullopt and fills `diag` (if given)
  /// with the first problem's line/column.
  static std::optional<ScenarioSpec> parse(std::string_view text,
                                           Diag* diag = nullptr);

  /// Canonical text form; parse(format()) reproduces *this exactly.
  std::string format() const;

  /// Grid size: |protocols| x |profiles| x |shards| x |versions| x |mixes|
  /// x |clients| x seeds.
  size_t num_cells() const;
};

/// One fully-resolved grid point: every sweep axis collapsed to a single
/// value, plus the world seed.  Self-contained — safe to ship to a worker
/// thread by value.
struct Cell {
  ScenarioSpec point;
  uint64_t seed = 1;

  Protocol protocol() const { return point.protocols.at(0); }
  const std::string& profile() const { return point.topology.profiles.at(0); }
  double mix() const { return point.workload.mixes.at(0); }
  int clients() const { return point.workload.clients.at(0); }
  int shards() const { return point.topology.shards.at(0); }
  const std::string& versions() const { return point.topology.versions.at(0); }

  /// "music/lUs/mix0.5/c4/s1" — stable row id for CSV and test output.
  /// Sharded cells insert a "/sh<N>" segment before the seed, and
  /// mixed-version cells a "/v<spec>" segment (each only when non-default,
  /// so pre-existing labels and their golden checksums are unchanged).
  std::string label() const;
};

/// Expands a spec into its cell grid, protocols-major, seeds-minor.  The
/// order is deterministic and documented (docs/SCENARIOS.md): protocol,
/// then profile, then shards, then versions, then mix, then clients, then
/// seed.
std::vector<Cell> expand(const ScenarioSpec& spec);

/// Splits `total` clients across 3 sites by `weights` (empty = {1,1,1}):
/// largest-remainder apportionment, ties to the lower site index.  Sites
/// with zero weight get zero clients.
std::vector<int> place_clients(int total, const std::vector<int>& weights);

}  // namespace music::scn
