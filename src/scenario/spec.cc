#include "scenario/spec.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <utility>

#include "fault/fault.h"

namespace music::scn {
namespace {

// ---- Lexing helpers --------------------------------------------------------

struct Tok {
  std::string_view text;
  int col = 1;  // 1-based column within the line
};

/// Splits one (comment-stripped) line on whitespace, keeping columns.
std::vector<Tok> tokenize_line(std::string_view line) {
  std::vector<Tok> toks;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) {
      toks.push_back({line.substr(start, i - start),
                      static_cast<int>(start) + 1});
    }
  }
  return toks;
}

bool parse_double(std::string_view s, double* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool parse_i64(std::string_view s, int64_t* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

/// "2s" / "150ms" / "300us" -> Duration (microseconds).
bool parse_time(std::string_view s, sim::Duration* out) {
  sim::Duration unit;
  std::string_view num;
  if (s.size() > 2 && s.substr(s.size() - 2) == "ms") {
    unit = sim::ms(1);
    num = s.substr(0, s.size() - 2);
  } else if (s.size() > 2 && s.substr(s.size() - 2) == "us") {
    unit = 1;
    num = s.substr(0, s.size() - 2);
  } else if (s.size() > 1 && s.back() == 's') {
    unit = sim::sec(1);
    num = s.substr(0, s.size() - 1);
  } else {
    return false;
  }
  double v;
  if (!parse_double(num, &v) || v < 0) return false;
  *out = static_cast<sim::Duration>(v * static_cast<double>(unit));
  return true;
}

std::string time_str(sim::Duration d) {
  if (d % sim::sec(1) == 0) return std::to_string(d / sim::sec(1)) + "s";
  if (d % sim::ms(1) == 0) return std::to_string(d / sim::ms(1)) + "ms";
  return std::to_string(d) + "us";
}

std::string float_str(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// Splits a comma list ("a,b,c") into its parts; empty parts are an error.
bool split_list(std::string_view s, std::vector<std::string_view>* out) {
  while (true) {
    size_t comma = s.find(',');
    std::string_view part = s.substr(0, comma);
    if (part.empty()) return false;
    out->push_back(part);
    if (comma == std::string_view::npos) return true;
    s.remove_prefix(comma + 1);
  }
}

bool known_profile(std::string_view name) {
  return name == "11" || name == "lUs" || name == "lUsEu" || name == "local";
}

/// "1:2:2" — exactly three colon-separated per-site max wire versions,
/// each a single digit 1..9.
bool valid_versions(std::string_view s) {
  if (s.size() != 5 || s[1] != ':' || s[3] != ':') return false;
  for (size_t i : {size_t{0}, size_t{2}, size_t{4}}) {
    if (s[i] < '1' || s[i] > '9') return false;
  }
  return true;
}

// ---- Parser ----------------------------------------------------------------

/// Parser state: current position for diagnostics plus one-shot failure.
struct Parser {
  Diag* diag;
  bool failed = false;

  bool fail(int line, int col, std::string msg) {
    if (!failed && diag != nullptr) {
      diag->line = line;
      diag->col = col;
      diag->message = std::move(msg);
    }
    failed = true;
    return false;
  }
  bool fail_tok(int line, const Tok& t, std::string msg) {
    return fail(line, t.col, std::move(msg));
  }
};

/// One "key value..." line inside a block (or at top level), pre-tokenized.
struct Line {
  int number = 0;
  std::vector<Tok> toks;

  const Tok& key() const { return toks[0]; }
  size_t values() const { return toks.size() - 1; }
  const Tok& val(size_t i = 0) const { return toks[i + 1]; }
};

bool want_values(Parser& p, const Line& l, size_t n) {
  if (l.values() == n) return true;
  return p.fail_tok(l.number, l.key(),
                    "\"" + std::string(l.key().text) + "\" wants " +
                        std::to_string(n) + " value(s), got " +
                        std::to_string(l.values()));
}

bool read_int(Parser& p, const Line& l, size_t i, int64_t lo, int64_t hi,
              int64_t* out) {
  if (!parse_i64(l.val(i).text, out) || *out < lo || *out > hi) {
    return p.fail_tok(l.number, l.val(i),
                      "bad integer \"" + std::string(l.val(i).text) +
                          "\" (want " + std::to_string(lo) + ".." +
                          std::to_string(hi) + ")");
  }
  return true;
}

bool read_time(Parser& p, const Line& l, size_t i, sim::Duration* out) {
  if (!parse_time(l.val(i).text, out)) {
    return p.fail_tok(l.number, l.val(i),
                      "bad time \"" + std::string(l.val(i).text) +
                          "\" (want NUMBER s|ms|us)");
  }
  return true;
}

bool apply_topology(Parser& p, const Line& l, TopologyBlock* t) {
  std::string_view key = l.key().text;
  if (key == "profiles") {
    if (!want_values(p, l, 1)) return false;
    std::vector<std::string_view> parts;
    if (!split_list(l.val().text, &parts)) {
      return p.fail_tok(l.number, l.val(), "bad profile list");
    }
    t->profiles.clear();
    for (auto part : parts) {
      if (!known_profile(part)) {
        return p.fail_tok(l.number, l.val(),
                          "unknown profile \"" + std::string(part) +
                              "\" (want 11|lUs|lUsEu|local)");
      }
      t->profiles.emplace_back(part);
    }
    return true;
  }
  if (key == "holder_site") {
    int64_t v;
    if (!want_values(p, l, 1) || !read_int(p, l, 0, -1, 2, &v)) return false;
    t->holder_site = static_cast<int>(v);
    return true;
  }
  if (key == "store_nodes") {
    int64_t v;
    if (!want_values(p, l, 1) || !read_int(p, l, 0, 3, 9, &v)) return false;
    t->store_nodes = static_cast<int>(v);
    return true;
  }
  if (key == "shards") {
    if (!want_values(p, l, 1)) return false;
    std::vector<std::string_view> parts;
    if (!split_list(l.val().text, &parts)) {
      return p.fail_tok(l.number, l.val(), "bad shard list");
    }
    t->shards.clear();
    for (auto part : parts) {
      int64_t v;
      if (!parse_i64(part, &v) || v < 1 || v > 1024) {
        return p.fail_tok(l.number, l.val(),
                          "bad shard count \"" + std::string(part) +
                              "\" (want 1..1024)");
      }
      t->shards.push_back(static_cast<int>(v));
    }
    return true;
  }
  if (key == "versions") {
    if (!want_values(p, l, 1)) return false;
    std::vector<std::string_view> parts;
    if (!split_list(l.val().text, &parts)) {
      return p.fail_tok(l.number, l.val(), "bad version list");
    }
    t->versions.clear();
    for (auto part : parts) {
      if (!valid_versions(part)) {
        return p.fail_tok(l.number, l.val(),
                          "bad fleet versions \"" + std::string(part) +
                              "\" (want V:V:V, each 1..9)");
      }
      t->versions.emplace_back(part);
    }
    return true;
  }
  return p.fail_tok(l.number, l.key(),
                    "unknown topology key \"" + std::string(key) + "\"");
}

bool apply_workload(Parser& p, const Line& l, WorkloadBlock* w) {
  std::string_view key = l.key().text;
  if (key == "mixes") {
    if (!want_values(p, l, 1)) return false;
    std::vector<std::string_view> parts;
    if (!split_list(l.val().text, &parts)) {
      return p.fail_tok(l.number, l.val(), "bad mix list");
    }
    w->mixes.clear();
    for (auto part : parts) {
      double v;
      if (!parse_double(part, &v) || v < 0.0 || v > 1.0) {
        return p.fail_tok(l.number, l.val(),
                          "bad read fraction \"" + std::string(part) +
                              "\" (want 0..1)");
      }
      w->mixes.push_back(v);
    }
    return true;
  }
  if (key == "clients") {
    if (!want_values(p, l, 1)) return false;
    std::vector<std::string_view> parts;
    if (!split_list(l.val().text, &parts)) {
      return p.fail_tok(l.number, l.val(), "bad client list");
    }
    w->clients.clear();
    for (auto part : parts) {
      int64_t v;
      if (!parse_i64(part, &v) || v < 1 || v > 100000) {
        return p.fail_tok(l.number, l.val(),
                          "bad client count \"" + std::string(part) + "\"");
      }
      w->clients.push_back(static_cast<int>(v));
    }
    return true;
  }
  if (key == "placement") {
    if (!want_values(p, l, 1)) return false;
    std::vector<std::string_view> parts;
    if (!split_list(l.val().text, &parts) || parts.size() != 3) {
      return p.fail_tok(l.number, l.val(),
                        "placement wants 3 comma-separated weights");
    }
    w->placement.clear();
    int64_t sum = 0;
    for (auto part : parts) {
      int64_t v;
      if (!parse_i64(part, &v) || v < 0) {
        return p.fail_tok(l.number, l.val(),
                          "bad placement weight \"" + std::string(part) + "\"");
      }
      sum += v;
      w->placement.push_back(static_cast<int>(v));
    }
    if (sum == 0) {
      return p.fail_tok(l.number, l.val(), "placement weights sum to zero");
    }
    return true;
  }
  if (key == "keys") {
    int64_t v;
    // Capped at 1e6: Zipfian zeta precomputation is O(keys) per world.
    if (!want_values(p, l, 1) || !read_int(p, l, 0, 1, 1000000, &v)) {
      return false;
    }
    w->keys = static_cast<uint64_t>(v);
    return true;
  }
  if (key == "keying") {
    if (l.values() < 1) {
      return p.fail_tok(l.number, l.key(),
                        "keying wants zipfian [THETA] | uniform | single");
    }
    std::string_view kind = l.val().text;
    if (kind == "uniform" && l.values() == 1) {
      w->keying = Keying::Uniform;
      return true;
    }
    if (kind == "single" && l.values() == 1) {
      w->keying = Keying::Single;
      return true;
    }
    if (kind == "zipfian" && l.values() <= 2) {
      w->keying = Keying::Zipfian;
      if (l.values() == 2) {
        double theta;
        if (!parse_double(l.val(1).text, &theta) || theta <= 0.0 ||
            theta >= 1.0) {
          return p.fail_tok(l.number, l.val(1),
                            "bad zipfian theta (want 0 < theta < 1)");
        }
        w->zipf_theta = theta;
      }
      return true;
    }
    return p.fail_tok(l.number, l.val(),
                      "keying wants zipfian [THETA] | uniform | single");
  }
  if (key == "arrival") {
    if (l.values() < 1) {
      return p.fail_tok(l.number, l.key(),
                        "arrival wants closed | poisson RATE | diurnal RATE "
                        "period TIME low FRAC");
    }
    std::string_view kind = l.val().text;
    if (kind == "closed" && l.values() == 1) {
      w->arrival = Arrival{};
      return true;
    }
    if (kind == "poisson" && l.values() == 2) {
      double rate;
      if (!parse_double(l.val(1).text, &rate) || rate <= 0.0) {
        return p.fail_tok(l.number, l.val(1), "bad poisson rate (want > 0)");
      }
      w->arrival = Arrival{};
      w->arrival.kind = ArrivalKind::Poisson;
      w->arrival.rate = rate;
      return true;
    }
    if (kind == "diurnal" && l.values() == 6 &&
        l.val(2).text == "period" && l.val(4).text == "low") {
      Arrival a;
      a.kind = ArrivalKind::Diurnal;
      if (!parse_double(l.val(1).text, &a.rate) || a.rate <= 0.0) {
        return p.fail_tok(l.number, l.val(1), "bad diurnal rate (want > 0)");
      }
      if (!read_time(p, l, 3, &a.period)) return false;
      if (a.period <= 0) {
        return p.fail_tok(l.number, l.val(3), "diurnal period must be > 0");
      }
      if (!parse_double(l.val(5).text, &a.low) || a.low < 0.0 || a.low > 1.0) {
        return p.fail_tok(l.number, l.val(5),
                          "bad diurnal low fraction (want 0..1)");
      }
      w->arrival = a;
      return true;
    }
    return p.fail_tok(l.number, l.val(),
                      "arrival wants closed | poisson RATE | diurnal RATE "
                      "period TIME low FRAC");
  }
  if (key == "value") {
    int64_t v;
    if (!want_values(p, l, 1) || !read_int(p, l, 0, 1, 1 << 20, &v)) {
      return false;
    }
    w->value_size = static_cast<size_t>(v);
    return true;
  }
  if (key == "warmup") {
    return want_values(p, l, 1) && read_time(p, l, 0, &w->warmup);
  }
  if (key == "measure") {
    if (!want_values(p, l, 1) || !read_time(p, l, 0, &w->measure)) {
      return false;
    }
    if (w->measure <= 0) {
      return p.fail_tok(l.number, l.val(), "measure must be > 0");
    }
    return true;
  }
  return p.fail_tok(l.number, l.key(),
                    "unknown workload key \"" + std::string(key) + "\"");
}

/// Normalizes a fault script: clauses split on ';'/newline, tokens joined
/// with single spaces, clauses joined with "; ".  Idempotent.
std::string normalize_faults(std::string_view script) {
  std::string out;
  std::string_view rest = script;
  while (!rest.empty()) {
    size_t sep = rest.find_first_of(";\n");
    std::string_view clause = rest.substr(0, sep);
    auto toks = tokenize_line(clause);
    if (!toks.empty()) {
      if (!out.empty()) out += "; ";
      for (size_t i = 0; i < toks.size(); ++i) {
        if (i > 0) out += ' ';
        out += toks[i].text;
      }
    }
    if (sep == std::string_view::npos) break;
    rest.remove_prefix(sep + 1);
  }
  return out;
}

}  // namespace

std::string Diag::str() const {
  std::string out = "line ";
  out += std::to_string(line);
  out += ", col ";
  out += std::to_string(col);
  out += ": ";
  out += message;
  return out;
}

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::Music: return "music";
    case Protocol::Mscp: return "mscp";
    case Protocol::Zab: return "zab";
    case Protocol::RaftKv: return "raftkv";
  }
  return "unknown";
}

std::optional<Protocol> protocol_from(std::string_view name) {
  if (name == "music") return Protocol::Music;
  if (name == "mscp") return Protocol::Mscp;
  if (name == "zab") return Protocol::Zab;
  if (name == "raftkv") return Protocol::RaftKv;
  return std::nullopt;
}

std::optional<ScenarioSpec> ScenarioSpec::parse(std::string_view text,
                                                Diag* diag) {
  ScenarioSpec spec;
  Parser p{diag};

  enum class Block : uint8_t { None, Topology, Workload, Faults };
  Block block = Block::None;
  bool saw_name = false;
  std::string fault_lines;          // raw, for normalization
  std::vector<int> fault_linenos;   // file line of each fault clause line
  std::vector<std::string> fault_raw;

  int lineno = 0;
  std::string_view rest = text;
  while (!rest.empty() || lineno == 0) {
    size_t nl = rest.find('\n');
    std::string_view raw_line = rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view{}
                                        : rest.substr(nl + 1);
    ++lineno;
    // Strip comments.
    size_t hash = raw_line.find('#');
    std::string_view line =
        hash == std::string_view::npos ? raw_line : raw_line.substr(0, hash);
    auto toks = tokenize_line(line);
    if (toks.empty()) {
      if (rest.empty()) break;
      continue;
    }

    if (block == Block::Faults) {
      if (toks.size() == 1 && toks[0].text == "}") {
        block = Block::None;
      } else {
        // Validate the clause line in place so diagnostics carry the file
        // position; the normalized script is assembled at the end.
        fault::ParseDiag fd;
        if (!fault::Schedule::parse(line, &fd).has_value()) {
          p.fail(lineno, fd.col, fd.message);
          return std::nullopt;
        }
        fault_raw.emplace_back(line);
        fault_linenos.push_back(lineno);
      }
      if (rest.empty()) break;
      continue;
    }

    Line l{lineno, toks};
    std::string_view key = toks[0].text;

    if (toks.size() == 1 && key == "}") {
      if (block == Block::None) {
        p.fail_tok(lineno, toks[0], "\"}\" outside any block");
        return std::nullopt;
      }
      block = Block::None;
      if (rest.empty()) break;
      continue;
    }

    if (block == Block::Topology) {
      if (!apply_topology(p, l, &spec.topology)) return std::nullopt;
      if (rest.empty()) break;
      continue;
    }
    if (block == Block::Workload) {
      if (!apply_workload(p, l, &spec.workload)) return std::nullopt;
      if (rest.empty()) break;
      continue;
    }

    // Top level.
    if (key == "topology" || key == "workload" || key == "faults") {
      if (toks.size() != 2 || toks[1].text != "{") {
        p.fail_tok(lineno, toks[0],
                   "expected \"" + std::string(key) + " {\"");
        return std::nullopt;
      }
      block = key == "topology"  ? Block::Topology
              : key == "workload" ? Block::Workload
                                  : Block::Faults;
    } else if (key == "scenario") {
      if (!want_values(p, l, 1)) return std::nullopt;
      for (char c : l.val().text) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '-') {
          p.fail_tok(lineno, l.val(),
                     "scenario name must be [A-Za-z0-9_-]+");
          return std::nullopt;
        }
      }
      spec.name = std::string(l.val().text);
      saw_name = true;
    } else if (key == "seeds") {
      int64_t v;
      if (!want_values(p, l, 1) || !read_int(p, l, 0, 1, 1000, &v)) {
        return std::nullopt;
      }
      spec.seeds = static_cast<int>(v);
    } else if (key == "base_seed") {
      int64_t v;
      if (!want_values(p, l, 1) ||
          !read_int(p, l, 0, 1, int64_t{1} << 62, &v)) {
        return std::nullopt;
      }
      spec.base_seed = static_cast<uint64_t>(v);
    } else if (key == "protocols") {
      if (!want_values(p, l, 1)) return std::nullopt;
      std::vector<std::string_view> parts;
      if (!split_list(l.val().text, &parts)) {
        p.fail_tok(lineno, l.val(), "bad protocol list");
        return std::nullopt;
      }
      spec.protocols.clear();
      for (auto part : parts) {
        auto proto = protocol_from(part);
        if (!proto.has_value()) {
          p.fail_tok(lineno, l.val(),
                     "unknown protocol \"" + std::string(part) +
                         "\" (want music|mscp|zab|raftkv)");
          return std::nullopt;
        }
        spec.protocols.push_back(*proto);
      }
    } else {
      p.fail_tok(lineno, toks[0],
                 "unknown directive \"" + std::string(key) + "\"");
      return std::nullopt;
    }
    if (rest.empty()) break;
  }

  if (block != Block::None) {
    p.fail(lineno, 1, "unterminated block (missing \"}\")");
    return std::nullopt;
  }
  if (!saw_name) {
    p.fail(1, 1, "missing \"scenario NAME\"");
    return std::nullopt;
  }

  for (const std::string& raw : fault_raw) {
    if (!fault_lines.empty()) fault_lines += "; ";
    fault_lines += raw;
  }
  spec.faults = normalize_faults(fault_lines);
  (void)fault_linenos;
  return spec;
}

std::string ScenarioSpec::format() const {
  std::string out;
  out += "scenario " + name + "\n";
  out += "seeds " + std::to_string(seeds) + "\n";
  out += "base_seed " + std::to_string(base_seed) + "\n";
  out += "protocols ";
  for (size_t i = 0; i < protocols.size(); ++i) {
    if (i > 0) out += ',';
    out += to_string(protocols[i]);
  }
  out += "\n\ntopology {\n";
  out += "  profiles ";
  for (size_t i = 0; i < topology.profiles.size(); ++i) {
    if (i > 0) out += ',';
    out += topology.profiles[i];
  }
  out += "\n";
  out += "  holder_site " + std::to_string(topology.holder_site) + "\n";
  out += "  store_nodes " + std::to_string(topology.store_nodes) + "\n";
  out += "  shards ";
  for (size_t i = 0; i < topology.shards.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(topology.shards[i]);
  }
  out += "\n";
  if (topology.versions != std::vector<std::string>{""}) {
    out += "  versions ";
    for (size_t i = 0; i < topology.versions.size(); ++i) {
      if (i > 0) out += ',';
      out += topology.versions[i];
    }
    out += "\n";
  }
  out += "}\n\nworkload {\n";
  out += "  mixes ";
  for (size_t i = 0; i < workload.mixes.size(); ++i) {
    if (i > 0) out += ',';
    out += float_str(workload.mixes[i]);
  }
  out += "\n  clients ";
  for (size_t i = 0; i < workload.clients.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(workload.clients[i]);
  }
  out += "\n";
  if (!workload.placement.empty()) {
    out += "  placement ";
    for (size_t i = 0; i < workload.placement.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(workload.placement[i]);
    }
    out += "\n";
  }
  out += "  keys " + std::to_string(workload.keys) + "\n";
  out += "  keying ";
  switch (workload.keying) {
    case Keying::Uniform: out += "uniform"; break;
    case Keying::Single: out += "single"; break;
    case Keying::Zipfian:
      out += "zipfian " + float_str(workload.zipf_theta);
      break;
  }
  out += "\n  arrival ";
  switch (workload.arrival.kind) {
    case ArrivalKind::Closed: out += "closed"; break;
    case ArrivalKind::Poisson:
      out += "poisson " + float_str(workload.arrival.rate);
      break;
    case ArrivalKind::Diurnal:
      out += "diurnal " + float_str(workload.arrival.rate) + " period " +
             time_str(workload.arrival.period) + " low " +
             float_str(workload.arrival.low);
      break;
  }
  out += "\n";
  out += "  value " + std::to_string(workload.value_size) + "\n";
  out += "  warmup " + time_str(workload.warmup) + "\n";
  out += "  measure " + time_str(workload.measure) + "\n";
  out += "}\n";
  if (!faults.empty()) {
    out += "\nfaults {\n";
    std::string_view rest = faults;
    while (!rest.empty()) {
      size_t semi = rest.find(';');
      std::string_view clause = rest.substr(0, semi);
      while (!clause.empty() && clause.front() == ' ') {
        clause.remove_prefix(1);
      }
      out += "  ";
      out += clause;
      out += "\n";
      if (semi == std::string_view::npos) break;
      rest.remove_prefix(semi + 1);
    }
    out += "}\n";
  }
  return out;
}

size_t ScenarioSpec::num_cells() const {
  return protocols.size() * topology.profiles.size() *
         topology.shards.size() * topology.versions.size() *
         workload.mixes.size() * workload.clients.size() *
         static_cast<size_t>(seeds);
}

std::string Cell::label() const {
  std::string out = to_string(protocol());
  out += "/";
  out += profile();
  out += "/mix";
  out += float_str(mix());
  out += "/c";
  out += std::to_string(clients());
  if (shards() != 1) {
    // Only sharded cells carry the segment: single-shard labels (and the
    // golden checksums pinned to them) are unchanged from PR 6.
    out += "/sh";
    out += std::to_string(shards());
  }
  if (!versions().empty()) {
    // Likewise only mixed-version cells: default fleets keep their
    // pre-upgrade labels.
    out += "/v";
    out += versions();
  }
  out += "/s";
  out += std::to_string(seed);
  return out;
}

std::vector<Cell> expand(const ScenarioSpec& spec) {
  std::vector<Cell> cells;
  cells.reserve(spec.num_cells());
  for (Protocol proto : spec.protocols) {
    for (const std::string& profile : spec.topology.profiles) {
      for (int shards : spec.topology.shards) {
        for (const std::string& versions : spec.topology.versions) {
          for (double mix : spec.workload.mixes) {
            for (int clients : spec.workload.clients) {
              for (int s = 0; s < spec.seeds; ++s) {
                Cell cell;
                cell.point = spec;
                cell.point.protocols = {proto};
                cell.point.topology.profiles = {profile};
                cell.point.topology.shards = {shards};
                cell.point.topology.versions = {versions};
                cell.point.workload.mixes = {mix};
                cell.point.workload.clients = {clients};
                cell.point.seeds = 1;
                cell.seed = spec.base_seed + static_cast<uint64_t>(s);
                cell.point.base_seed = cell.seed;
                cells.push_back(std::move(cell));
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

std::vector<int> place_clients(int total, const std::vector<int>& weights) {
  std::vector<int> w = weights.empty() ? std::vector<int>{1, 1, 1} : weights;
  int64_t sum = 0;
  for (int x : w) sum += x;
  std::vector<int> out(w.size(), 0);
  if (sum <= 0 || total <= 0) return out;
  // Largest-remainder apportionment, ties to the lower site index.
  std::vector<int64_t> rem(w.size(), 0);
  int assigned = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    int64_t num = static_cast<int64_t>(total) * w[i];
    out[i] = static_cast<int>(num / sum);
    rem[i] = num % sum;
    assigned += out[i];
  }
  while (assigned < total) {
    size_t best = 0;
    int64_t best_rem = -1;
    for (size_t i = 0; i < w.size(); ++i) {
      if (w[i] > 0 && rem[i] > best_rem) {
        best = i;
        best_rem = rem[i];
      }
    }
    out[best] += 1;
    rem[best] = -2;  // consumed; next round picks another site
    assigned += 1;
  }
  return out;
}

}  // namespace music::scn
