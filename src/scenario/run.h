// The scenario compiler: turns one Cell of a ScenarioSpec grid into a
// ready-to-run sim world (network profile, protocol deployment, placed
// clients, armed nemesis, armed ECF oracle), runs it, and returns a
// CellOutcome; run_sweep fans the whole grid across par::run_worlds.
//
// Every cell is deterministic from its seed: same spec + same seed =>
// bit-identical CellOutcome (and checksum()) at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.h"
#include "sim/network.h"
#include "workload/stats.h"

namespace music::scn {

/// What one cell did.  Plain value, filled on the worker thread.
struct CellOutcome {
  std::string label;   // Cell::label()
  bool ok = false;     // ran to completion with a clean oracle
  std::string error;   // first problem (setup, run, or oracle report)

  wl::RunResult run;       // throughput/latency over the measured window
  uint64_t events = 0;     // sim events executed
  uint64_t msgs = 0;       // net.msgs.sent
  uint64_t wan_msgs = 0;   // net.msgs.wan (the paper's RTT-count currency)
  uint64_t bytes = 0;      // net.bytes.sent
  uint64_t violations = 0; // oracle violations (0 when ok)
  double wall_sec = 0.0;   // host time (NOT in checksum)
  /// Lowest pairwise-negotiated wire version across the fleet at the end of
  /// the run (after any "restart ... version K" faults applied their
  /// upgrade); 0 for cells without wire versions (zab/raftkv) or when some
  /// pair shares no version.  NOT in checksum, so pre-upgrade goldens are
  /// unchanged.
  int fleet_version = 0;

  /// WAN messages per completed operation (the §X-B4 cost metric).
  double wan_per_op() const {
    return run.completed > 0
               ? static_cast<double>(wan_msgs) /
                     static_cast<double>(run.completed)
               : 0.0;
  }

  /// FNV-1a over the deterministic fields (label, op counts, event and
  /// message totals, latency sample count and scaled mean).  Thread-count
  /// and platform invariant; the goldens test pins these.
  uint64_t checksum() const;
};

/// Caps applied to a spec before running (the ctest family runs a reduced
/// grid; the nightly harness runs the spec as written).  0 = no cap.
struct RunOptions {
  size_t threads = 0;            // worker threads (0 = default)
  int max_seeds = 0;             // clamp spec.seeds
  sim::Duration max_warmup = 0;  // clamp workload.warmup
  sim::Duration max_measure = 0; // clamp workload.measure
  size_t max_cells = 0;          // truncate the expanded grid (logged)
  /// Opt-in intra-world parallelism: run each music/mscp cell's world under
  /// the conservative PDES engine with this many site-lane workers (0 =
  /// classic kernel).  Zab/raftkv cells always run classic.  PDES cells
  /// produce checksums that differ from classic ones (per-lane rng streams)
  /// but are bit-identical at any worker count.
  size_t par_sites = 0;
};

/// Spec-level checks beyond the grammar: crash faults name replicas that
/// exist, and crash clauses only combine with protocols whose replicas the
/// nemesis can crash (music/mscp).  Empty string = valid.
std::string validate(const ScenarioSpec& spec);

/// The named WAN profile a spec's topology refers to ("11", "lUs",
/// "lUsEu", or "local" — a fast co-located profile for unit tests).
sim::LatencyProfile profile_by_name(const std::string& name);

/// Builds and runs one cell's world, oracle armed.  Never throws: setup
/// problems come back as ok=false with the error filled.  `par_sites` > 0
/// runs music/mscp cells under PDES (see RunOptions::par_sites).
CellOutcome run_cell(const Cell& cell, size_t par_sites = 0);

/// Applies `opt`'s caps to a copy of the spec (reduced grids for ctest).
ScenarioSpec reduced(ScenarioSpec spec, const RunOptions& opt);

/// Expands the (reduced) spec and fans run_cell over par::run_worlds.
/// Outcomes are in expand() order regardless of thread count.
std::vector<CellOutcome> run_sweep(const ScenarioSpec& spec,
                                   const RunOptions& opt = {});

}  // namespace music::scn
