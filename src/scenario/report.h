// Sweep reporting: per-cell CSV plus a one-page HTML summary per sweep
// (throughput/latency/WAN-RTT-count columns, failed cells highlighted).
// Both renderers are pure string producers so tests can golden them; file
// writing goes through obs::write_file.
#pragma once

#include <string>
#include <vector>

#include "scenario/run.h"
#include "scenario/spec.h"

namespace music::scn {

/// Header line of the per-cell CSV (also the column contract for CI
/// artifact consumers).
std::string csv_header();

/// One outcome as a CSV row matching csv_header().
std::string csv_row(const ScenarioSpec& spec, const Cell& cell,
                    const CellOutcome& out);

/// Whole sweep as CSV: header + one row per cell, in expand() order.
std::string sweep_csv(const ScenarioSpec& spec,
                      const std::vector<CellOutcome>& outs);

/// One self-contained HTML page: spec echo, grid shape, result table with
/// throughput bars, red rows for failed cells, and totals.
std::string sweep_html(const ScenarioSpec& spec,
                       const std::vector<CellOutcome>& outs);

}  // namespace music::scn
