#include "scenario/run.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <exception>
#include <memory>
#include <utility>

#include "cluster/client.h"
#include "cluster/cluster.h"
#include "core/client.h"
#include "core/music.h"
#include "datastore/store.h"
#include "fault/fault.h"
#include "fault/nemesis.h"
#include "lockstore/lockstore.h"
#include "obs/metrics.h"
#include "par/par.h"
#include "raftkv/txkv.h"
#include "sim/simulation.h"
#include "verify/oracle.h"
#include "wire/codec.h"
#include "workload/driver.h"
#include "workload/zipfian.h"
#include "zab/zab.h"

namespace music::scn {
namespace {

// ---- Shared cell plumbing --------------------------------------------------

/// Key chooser shared by all protocol workloads: same keying, same key
/// names, so cross-protocol cells of one sweep contend identically.
struct KeyPick {
  Keying keying;
  uint64_t keys;
  wl::Zipfian zipf;

  KeyPick(Keying k, uint64_t n, double theta)
      : keying(k), keys(n), zipf(n, theta) {}

  Key next(sim::Rng& rng) {
    uint64_t idx = 0;
    switch (keying) {
      case Keying::Uniform: idx = rng.next_u64() % keys; break;
      case Keying::Zipfian: idx = zipf.next(rng); break;
      case Keying::Single: idx = 0; break;
    }
    // Built stepwise (GCC 12 -Werror=restrict, see ds::Cell note).
    std::string k = "k";
    k += std::to_string(idx);
    return k;
  }
};

/// Unique-ish write payload padded to the spec's value size.  Values are
/// distinct per (client, sequence) so the ECF oracle's Latest-State checks
/// compare real candidates, not accidental duplicates.
Value make_value(int cid, uint64_t seq, size_t value_size) {
  std::string v = "v";
  v += std::to_string(cid);
  v += ".";
  v += std::to_string(seq);
  if (v.size() < value_size) v.resize(value_size, 'x');
  return Value(v);
}

/// The arrival think-time hook for wl::DriverConfig (empty for Closed).
std::function<sim::Duration(sim::Rng&, sim::Time)> think_fn(Arrival a) {
  switch (a.kind) {
    case ArrivalKind::Closed:
      return {};
    case ArrivalKind::Poisson: {
      double mean_us = 1e6 / a.rate;
      return [mean_us](sim::Rng& rng, sim::Time) {
        return static_cast<sim::Duration>(rng.exponential(mean_us));
      };
    }
    case ArrivalKind::Diurnal: {
      double rate = a.rate;
      double low = a.low;
      double period = static_cast<double>(a.period);
      return [rate, low, period](sim::Rng& rng, sim::Time now) {
        // Peak at mid-period, trough (low x peak) at the period boundary.
        double phase = 2.0 * 3.14159265358979323846 *
                       (static_cast<double>(now) / period);
        double frac = low + (1.0 - low) * 0.5 * (1.0 - std::cos(phase));
        double r = rate * frac;
        // At a zero trough the mean gap is unbounded; clamp to one period
        // so clients re-check the (time-varying) rate at least once a cycle.
        double mean_us = r > 1e-12 ? 1e6 / r : period;
        if (mean_us > period) mean_us = period;
        auto gap = static_cast<sim::Duration>(rng.exponential(mean_us));
        if (gap > static_cast<sim::Duration>(period)) {
          gap = static_cast<sim::Duration>(period);
        }
        return gap;
      };
    }
  }
  return {};
}

/// Per-site client counts for a cell.
std::vector<int> cell_placement(const Cell& cell) {
  return place_clients(cell.clients(), cell.point.workload.placement);
}

std::vector<int> node_sites(int n) {
  std::vector<int> v;
  for (int i = 0; i < n; ++i) v.push_back(i % 3);
  return v;
}

/// Per-site max wire versions for a cell ("" = the current binary's full
/// range everywhere).  The versions axis is already grammar-validated
/// (V:V:V, each 1..9).
std::array<uint8_t, 3> cell_versions(const Cell& cell) {
  std::array<uint8_t, 3> v{wire::kWireVersionMax, wire::kWireVersionMax,
                           wire::kWireVersionMax};
  const std::string& s = cell.versions();
  if (s.size() == 5) {
    v = {static_cast<uint8_t>(s[0] - '0'), static_cast<uint8_t>(s[2] - '0'),
         static_cast<uint8_t>(s[4] - '0')};
  }
  return v;
}

/// Per-logical-client rng + value sequence, used in place of the shared
/// workload stream when a cell runs under PDES: run_once executes on
/// concurrent site lanes there, so a shared stream would race — and even a
/// locked one would draw in a worker-count-dependent order.  Per-cid
/// streams keep the draw sequence (and so the cell checksum) invariant at
/// any worker count.  Classic cells keep the original shared stream so
/// their goldens stay bit-identical.
struct ClientStream {
  sim::Rng rng;
  uint64_t seq = 0;
};

std::vector<ClientStream> make_streams(int n, uint64_t seed) {
  std::vector<ClientStream> v;
  v.reserve(static_cast<size_t>(n));
  sim::Rng base(seed);
  for (int i = 0; i < n; ++i) {
    v.push_back(ClientStream{base.fork(static_cast<uint64_t>(i)), 0});
  }
  return v;
}

// ---- Protocol workloads ----------------------------------------------------

/// MUSIC/MSCP cell op: one critical section around a single criticalGet
/// (read) or criticalPut (write) on a picked key, every transition reported
/// to the armed oracle via CheckedClient.
class MusicMixWorkload : public wl::Workload {
 public:
  /// `pdes_clients` > 0 switches to that many per-cid streams (PDES cells).
  MusicMixWorkload(std::vector<verify::CheckedClient> clients, double read_frac,
                   KeyPick pick, size_t value_size, uint64_t seed,
                   int pdes_clients = 0)
      : clients_(std::move(clients)),
        read_frac_(read_frac),
        pick_(std::move(pick)),
        value_size_(value_size),
        rng_(seed),
        streams_(make_streams(pdes_clients, seed)) {}

  sim::Task<bool> run_once(int cid) override {
    auto& c = clients_[static_cast<size_t>(cid) % clients_.size()];
    sim::Rng& rng =
        streams_.empty() ? rng_
                         : streams_[static_cast<size_t>(cid) % streams_.size()].rng;
    uint64_t& seq =
        streams_.empty() ? seq_
                         : streams_[static_cast<size_t>(cid) % streams_.size()].seq;
    Key key = pick_.next(rng);
    bool read = rng.chance(read_frac_);
    auto ref = co_await c.create_lock_ref(key);
    if (!ref.ok()) co_return false;
    auto acq = co_await c.acquire_lock_blocking(key, ref.value());
    if (!acq.ok()) {
      co_await c.inner().remove_lock_ref(key, ref.value());
      co_return false;
    }
    bool ok;
    if (read) {
      auto g = co_await c.critical_get(key, ref.value());
      // NotFound is a legitimate read of a never-written key.
      ok = g.ok() || g.status() == OpStatus::NotFound;
    } else {
      ok = (co_await c.critical_put(key, ref.value(),
                                    make_value(cid, seq++, value_size_)))
               .ok();
    }
    co_await c.release_lock(key, ref.value());
    co_return ok;
  }

 private:
  std::vector<verify::CheckedClient> clients_;
  double read_frac_;
  KeyPick pick_;
  size_t value_size_;
  sim::Rng rng_;
  uint64_t seq_ = 0;
  std::vector<ClientStream> streams_;
};

/// Sharded MUSIC/MSCP cell op: the same critical section as
/// MusicMixWorkload, but through cluster::Client — shard routing, the
/// WrongShard retry discipline and the oracle instrumentation all live in
/// the client, so the workload body is protocol-identical.
class ClusterMixWorkload : public wl::Workload {
 public:
  /// `pdes_clients` > 0 switches to that many per-cid streams (PDES cells).
  ClusterMixWorkload(std::vector<std::unique_ptr<cluster::Client>> clients,
                     double read_frac, KeyPick pick, size_t value_size,
                     uint64_t seed, int pdes_clients = 0)
      : clients_(std::move(clients)),
        read_frac_(read_frac),
        pick_(std::move(pick)),
        value_size_(value_size),
        rng_(seed),
        streams_(make_streams(pdes_clients, seed)) {}

  sim::Task<bool> run_once(int cid) override {
    auto& c = *clients_[static_cast<size_t>(cid) % clients_.size()];
    sim::Rng& rng =
        streams_.empty() ? rng_
                         : streams_[static_cast<size_t>(cid) % streams_.size()].rng;
    uint64_t& seq =
        streams_.empty() ? seq_
                         : streams_[static_cast<size_t>(cid) % streams_.size()].seq;
    Key key = pick_.next(rng);
    bool read = rng.chance(read_frac_);
    auto ref = co_await c.create_lock_ref(key);
    if (!ref.ok()) co_return false;
    auto acq = co_await c.acquire_lock_blocking(key, ref.value());
    if (!acq.ok()) {
      co_await c.remove_lock_ref(key, ref.value());
      co_return false;
    }
    bool ok;
    if (read) {
      auto g = co_await c.critical_get(key, ref.value());
      ok = g.ok() || g.status() == OpStatus::NotFound;
    } else {
      ok = (co_await c.critical_put(key, ref.value(),
                                    make_value(cid, seq++, value_size_)))
               .ok();
    }
    co_await c.release_lock(key, ref.value());
    co_return ok;
  }

 private:
  std::vector<std::unique_ptr<cluster::Client>> clients_;
  double read_frac_;
  KeyPick pick_;
  size_t value_size_;
  sim::Rng rng_;
  uint64_t seq_ = 0;
  std::vector<ClientStream> streams_;
};

/// Zookeeper cell op: one sequentially-consistent getData / setData.
class ZabMixWorkload : public wl::Workload {
 public:
  ZabMixWorkload(std::vector<zab::ZkClient*> clients, double read_frac,
                 KeyPick pick, size_t value_size, uint64_t seed)
      : clients_(std::move(clients)),
        read_frac_(read_frac),
        pick_(std::move(pick)),
        value_size_(value_size),
        rng_(seed) {}

  sim::Task<bool> run_once(int cid) override {
    auto* c = clients_[static_cast<size_t>(cid) % clients_.size()];
    Key key = pick_.next(rng_);
    if (rng_.chance(read_frac_)) {
      auto g = co_await c->get_data(key);
      co_return g.ok() || g.status() == OpStatus::NotFound;
    }
    co_return(co_await c->set_data(key,
                                   make_value(cid, seq_++, value_size_)))
        .ok();
  }

 private:
  std::vector<zab::ZkClient*> clients_;
  double read_frac_;
  KeyPick pick_;
  size_t value_size_;
  sim::Rng rng_;
  uint64_t seq_ = 0;
};

/// CockroachDB-substitute cell op: a leader read, or one single-update
/// §X-B3 critical section (lock txn + update/unlock txn).
class CdbMixWorkload : public wl::Workload {
 public:
  CdbMixWorkload(std::vector<raftkv::TxClient*> clients, double read_frac,
                 KeyPick pick, size_t value_size, uint64_t seed)
      : clients_(std::move(clients)),
        read_frac_(read_frac),
        pick_(std::move(pick)),
        value_size_(value_size),
        rng_(seed) {}

  sim::Task<bool> run_once(int cid) override {
    auto* c = clients_[static_cast<size_t>(cid) % clients_.size()];
    Key key = pick_.next(rng_);
    if (rng_.chance(read_frac_)) {
      auto g = co_await c->select(key);
      co_return g.ok() || g.status() == OpStatus::NotFound;
    }
    std::string lock_key = "l";
    lock_key += key;
    co_return(co_await c->critical_section(
                  lock_key, key, make_value(cid, seq_++, value_size_), 1))
        .ok();
  }

 private:
  std::vector<raftkv::TxClient*> clients_;
  double read_frac_;
  KeyPick pick_;
  size_t value_size_;
  sim::Rng rng_;
  uint64_t seq_ = 0;
};

// ---- Cell execution --------------------------------------------------------

KeyPick cell_keypick(const Cell& cell) {
  const WorkloadBlock& w = cell.point.workload;
  return KeyPick(w.keying, w.keys, w.zipf_theta);
}

wl::DriverConfig cell_driver(const Cell& cell) {
  wl::DriverConfig cfg;
  cfg.clients = cell.clients();
  cfg.warmup = cell.point.workload.warmup;
  cfg.measure = cell.point.workload.measure;
  cfg.drain = sim::sec(10);
  cfg.think = think_fn(cell.point.workload.arrival);
  return cfg;
}

void collect_net(sim::Simulation& sim, sim::Network& net, CellOutcome* out) {
  obs::MetricsRegistry reg;
  net.export_metrics(reg);
  out->msgs = reg.counter("net.msgs.sent").value;
  out->wan_msgs = reg.counter("net.msgs.wan").value;
  out->bytes = reg.counter("net.bytes.sent").value;
  out->events = sim.events_run();
}

/// The fleet's negotiated wire-version floor given per-site max versions:
/// the lowest version any site pair pins, or 0 if some pair shares none.
int fleet_floor(const std::array<uint8_t, 3>& site_versions) {
  int floor = 255;
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = i + 1; j < 3; ++j) {
      auto v = wire::negotiate(wire::kWireVersionMin, site_versions[i],
                               wire::kWireVersionMin, site_versions[j]);
      if (!v.has_value()) return 0;
      floor = std::min(floor, static_cast<int>(*v));
    }
  }
  return floor;
}

/// Arms the nemesis with the cell's fault schedule (already validated at
/// spec level; a parse failure here is an internal error).
bool arm_faults(const Cell& cell, fault::Nemesis& nemesis, CellOutcome* out) {
  if (cell.point.faults.empty()) return true;
  std::string err;
  auto sched = fault::Schedule::parse(cell.point.faults, &err);
  if (!sched.has_value()) {
    out->error = "internal: fault schedule re-parse failed: " + err;
    return false;
  }
  nemesis.arm(*sched);
  return true;
}

/// Arms the conservative PDES engine on `sim` (before any Network or node
/// exists) when the caller opted in with par_sites > 0.
void maybe_enable_pdes(sim::Simulation& sim, const sim::NetworkConfig& nc,
                       size_t par_sites) {
  if (par_sites == 0) return;
  sim::Simulation::PdesOptions po;
  po.sites = nc.profile.num_sites();
  po.workers = par_sites;
  po.lookahead = sim::Network::conservative_lookahead(nc);
  sim.enable_pdes(po);
}

CellOutcome run_music_cell(const Cell& cell, core::PutMode mode,
                           size_t par_sites) {
  CellOutcome out;
  out.label = cell.label();

  sim::Simulation sim(cell.seed);
  sim::NetworkConfig nc;
  nc.profile = profile_by_name(cell.profile());
  maybe_enable_pdes(sim, nc, par_sites);
  sim::Network net(sim, nc);
  ds::StoreConfig sc;
  sc.expected_keys = 4096;
  ds::StoreCluster store(sim, net, sc,
                         node_sites(cell.point.topology.store_nodes));
  ls::LockStore locks(store);

  core::MusicConfig mc;
  mc.put_mode = mode;
  mc.holder_timeout = sim::sec(8);  // abandoned sections recover under faults
  mc.fd_interval = sim::sec(2);
  std::vector<std::unique_ptr<core::MusicReplica>> replicas;
  for (int site = 0; site < 3; ++site) {
    replicas.push_back(
        std::make_unique<core::MusicReplica>(store, locks, mc, site));
    replicas.back()->start_failure_detector();
  }

  verify::EcfChecker checker(sim);
  // Forced releases under faults can grant from a stale local view; ECF
  // makes no promises to such holders (keep strict when fault-free).
  if (!cell.point.faults.empty()) checker.set_lenient_stale_grants(true);

  fault::NemesisHooks hooks;
  hooks.crash_store = [&store](int replica, bool down, bool amnesia) {
    if (down && amnesia) store.replica(replica).wipe_state();
    store.replica(replica).set_down(down);
  };
  hooks.crash_music = [&replicas](int replica, bool down, bool amnesia) {
    replicas.at(static_cast<size_t>(replica))->set_down(down, amnesia);
  };
  // Rolling-upgrade step: bounce every replica the site hosts (store nodes
  // are interleaved site = node % 3, plus the site's MUSIC replica); when
  // the site comes back "onto the new binary", record its new max wire
  // version so the fleet's negotiated floor tracks the upgrade.
  std::array<uint8_t, 3> site_versions = cell_versions(cell);
  int store_nodes = cell.point.topology.store_nodes;
  hooks.restart_site = [&store, &replicas, &site_versions, store_nodes](
                           int site, bool down, bool amnesia, int version) {
    for (int r = site; r < store_nodes; r += 3) {
      if (down && amnesia) store.replica(r).wipe_state();
      store.replica(r).set_down(down);
    }
    replicas.at(static_cast<size_t>(site))->set_down(down, amnesia);
    if (!down && version > 0) {
      site_versions[static_cast<size_t>(site)] =
          static_cast<uint8_t>(version);
    }
  };
  fault::Nemesis nemesis(sim, net, hooks);
  if (!arm_faults(cell, nemesis, &out)) return out;

  // Clients placed per the spec; preference order encodes holder_site.
  std::vector<std::unique_ptr<core::MusicClient>> clients;
  std::vector<verify::CheckedClient> checked;
  std::vector<int> per_site = cell_placement(cell);
  for (int site = 0; site < 3; ++site) {
    for (int i = 0; i < per_site[static_cast<size_t>(site)]; ++i) {
      int first = cell.point.topology.holder_site >= 0
                      ? cell.point.topology.holder_site
                      : site;
      std::vector<core::MusicReplica*> prefs{
          replicas[static_cast<size_t>(first)].get()};
      for (int j = 0; j < 3; ++j) {
        if (j != first) {
          prefs.push_back(replicas[static_cast<size_t>(j)].get());
        }
      }
      clients.push_back(std::make_unique<core::MusicClient>(
          sim, net, prefs, core::ClientConfig{}, site));
      checked.emplace_back(*clients.back(), checker);
    }
  }

  KeyPick pick = cell_keypick(cell);
  auto w = std::make_shared<MusicMixWorkload>(
      std::move(checked), cell.mix(), std::move(pick),
      cell.point.workload.value_size, cell.seed ^ 0x5CE7A810ull,
      par_sites > 0 ? cell.clients() : 0);
  out.run = wl::run_closed_loop(sim, w, cell_driver(cell));
  nemesis.heal_all();  // close any open-ended faults before inspection

  collect_net(sim, net, &out);
  out.fleet_version = fleet_floor(site_versions);
  out.violations = checker.violations().size();
  out.ok = checker.ok();
  if (!out.ok) out.error = checker.report();
  return out;
}

CellOutcome run_cluster_cell(const Cell& cell, core::PutMode mode,
                             size_t par_sites) {
  CellOutcome out;
  out.label = cell.label();

  sim::Simulation sim(cell.seed);
  sim::NetworkConfig nc;
  nc.profile = profile_by_name(cell.profile());
  maybe_enable_pdes(sim, nc, par_sites);
  sim::Network net(sim, nc);

  cluster::ClusterConfig cc;
  cc.shards = cell.shards();
  cc.store_nodes_per_group = cell.point.topology.store_nodes;
  cc.holder_site = cell.point.topology.holder_site;
  cc.store.expected_keys = 4096;
  cc.music.put_mode = mode;
  cc.music.holder_timeout = sim::sec(8);
  cc.music.fd_interval = sim::sec(2);
  cluster::Cluster cluster(sim, net, cc);

  verify::EcfChecker checker(sim);
  if (!cell.point.faults.empty()) checker.set_lenient_stale_grants(true);

  fault::NemesisHooks hooks;
  // Site-correlated targeting: replica index r goes down in EVERY group —
  // the way a zone outage lands on a sharded deployment (each group has
  // one store replica and one MUSIC replica per site).
  hooks.crash_store = [&cluster](int replica, bool down, bool amnesia) {
    for (int g = 0; g < cluster.num_groups(); ++g) {
      cluster.set_down_store(g, replica, down, amnesia);
    }
  };
  hooks.crash_music = [&cluster](int replica, bool down, bool amnesia) {
    for (int g = 0; g < cluster.num_groups(); ++g) {
      cluster.set_down_music(g, replica, down, amnesia);
    }
  };
  // Site bounce = that site's store and MUSIC replica in every group (each
  // group hosts one of each per site), plus the upgrade bookkeeping.
  std::array<uint8_t, 3> site_versions = cell_versions(cell);
  hooks.restart_site = [&cluster, &site_versions](int site, bool down,
                                                  bool amnesia, int version) {
    for (int g = 0; g < cluster.num_groups(); ++g) {
      cluster.set_down_store(g, site, down, amnesia);
      cluster.set_down_music(g, site, down, amnesia);
    }
    if (!down && version > 0) {
      site_versions[static_cast<size_t>(site)] =
          static_cast<uint8_t>(version);
    }
  };
  fault::Nemesis nemesis(sim, net, hooks);
  if (!arm_faults(cell, nemesis, &out)) return out;

  // One shard-aware client per logical client (cheap: they fan into the
  // cluster's shared per-site core clients).
  std::vector<std::unique_ptr<cluster::Client>> clients;
  std::vector<int> per_site = cell_placement(cell);
  for (int site = 0; site < 3; ++site) {
    for (int i = 0; i < per_site[static_cast<size_t>(site)]; ++i) {
      clients.push_back(
          std::make_unique<cluster::Client>(cluster, site, &checker));
    }
  }

  KeyPick pick = cell_keypick(cell);
  auto w = std::make_shared<ClusterMixWorkload>(
      std::move(clients), cell.mix(), std::move(pick),
      cell.point.workload.value_size, cell.seed ^ 0x5CE7A810ull,
      par_sites > 0 ? cell.clients() : 0);
  out.run = wl::run_closed_loop(sim, w, cell_driver(cell));
  nemesis.heal_all();

  collect_net(sim, net, &out);
  out.fleet_version = fleet_floor(site_versions);
  out.violations = checker.violations().size();
  out.ok = checker.ok();
  if (!out.ok) out.error = checker.report();
  return out;
}

CellOutcome run_zab_cell(const Cell& cell) {
  CellOutcome out;
  out.label = cell.label();

  sim::Simulation sim(cell.seed);
  sim::NetworkConfig nc;
  nc.profile = profile_by_name(cell.profile());
  sim::Network net(sim, nc);
  zab::ZabEnsemble ens(sim, net, zab::ZabConfig{}, {0, 1, 2});
  ens.start();

  fault::Nemesis nemesis(sim, net, {});
  if (!arm_faults(cell, nemesis, &out)) return out;

  std::vector<std::unique_ptr<zab::ZkClient>> clients;
  std::vector<zab::ZkClient*> ptrs;
  std::vector<int> per_site = cell_placement(cell);
  for (int site = 0; site < 3; ++site) {
    for (int i = 0; i < per_site[static_cast<size_t>(site)]; ++i) {
      clients.push_back(std::make_unique<zab::ZkClient>(ens, site));
      ptrs.push_back(clients.back().get());
    }
  }

  auto w = std::make_shared<ZabMixWorkload>(
      std::move(ptrs), cell.mix(), cell_keypick(cell),
      cell.point.workload.value_size, cell.seed ^ 0x5CE7A810ull);
  out.run = wl::run_closed_loop(sim, w, cell_driver(cell));
  nemesis.heal_all();

  collect_net(sim, net, &out);
  out.ok = true;  // no MUSIC ops: the ECF oracle is vacuous for this cell
  return out;
}

CellOutcome run_cdb_cell(const Cell& cell) {
  CellOutcome out;
  out.label = cell.label();

  sim::Simulation sim(cell.seed);
  sim::NetworkConfig nc;
  nc.profile = profile_by_name(cell.profile());
  sim::Network net(sim, nc);
  raftkv::RaftCluster cluster(sim, net, raftkv::RaftConfig{}, {0, 1, 2});
  cluster.start();
  cluster.wait_for_leader();

  fault::Nemesis nemesis(sim, net, {});
  if (!arm_faults(cell, nemesis, &out)) return out;

  std::vector<std::unique_ptr<raftkv::TxClient>> clients;
  std::vector<raftkv::TxClient*> ptrs;
  std::vector<int> per_site = cell_placement(cell);
  int id = 0;
  for (int site = 0; site < 3; ++site) {
    for (int i = 0; i < per_site[static_cast<size_t>(site)]; ++i) {
      // Built stepwise (GCC 12 -Werror=restrict, see ds::Cell note).
      std::string name = "c";
      name += std::to_string(id++);
      clients.push_back(
          std::make_unique<raftkv::TxClient>(cluster, site, name));
      ptrs.push_back(clients.back().get());
    }
  }

  auto w = std::make_shared<CdbMixWorkload>(
      std::move(ptrs), cell.mix(), cell_keypick(cell),
      cell.point.workload.value_size, cell.seed ^ 0x5CE7A810ull);
  out.run = wl::run_closed_loop(sim, w, cell_driver(cell));
  nemesis.heal_all();

  collect_net(sim, net, &out);
  out.ok = true;  // no MUSIC ops: the ECF oracle is vacuous for this cell
  return out;
}

}  // namespace

uint64_t CellOutcome::checksum() const {
  uint64_t h = 14695981039346656037ull;
  auto mix_byte = [&h](uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  auto mix = [&mix_byte](uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<uint8_t>(v >> (i * 8)));
  };
  for (char c : label) mix_byte(static_cast<uint8_t>(c));
  mix(run.completed);
  mix(run.failed);
  mix(static_cast<uint64_t>(run.measured));
  mix(run.latency.count());
  // Mean is sum/count of integer microsecond samples: deterministic.
  mix(static_cast<uint64_t>(std::llround(run.latency.mean_ms() * 1000.0)));
  mix(events);
  mix(msgs);
  mix(wan_msgs);
  mix(bytes);
  mix(violations);
  mix(ok ? 1 : 0);
  return h;
}

std::string validate(const ScenarioSpec& spec) {
  bool music_only = true;
  for (Protocol p : spec.protocols) {
    if (p != Protocol::Music && p != Protocol::Mscp) music_only = false;
  }
  for (int s : spec.topology.shards) {
    if (s != 1 && !music_only) {
      return "shards > 1 needs a music/mscp-only protocol list (the "
             "cluster layer shards MUSIC groups; zab/raftkv cells have no "
             "shard ring)";
    }
  }
  for (const std::string& v : spec.topology.versions) {
    if (v.empty()) continue;
    if (!music_only) {
      return "a versions axis needs a music/mscp-only protocol list "
             "(zab/raftkv cells have no MUSIC wire protocol)";
    }
    // Every site pair must share a wire version or the fleet can never
    // form quorums (with today's min of 1 this only fires if the floor is
    // ever raised — exactly when we want the spec rejected loudly).
    std::array<uint8_t, 3> sv{static_cast<uint8_t>(v[0] - '0'),
                              static_cast<uint8_t>(v[2] - '0'),
                              static_cast<uint8_t>(v[4] - '0')};
    for (uint8_t site_max : sv) {
      if (site_max < wire::kWireVersionMin) {
        return "fleet versions " + v + ": a site's max wire version is " +
               "below the supported minimum " +
               std::to_string(wire::kWireVersionMin);
      }
    }
  }
  if (spec.faults.empty()) return "";
  std::string err;
  auto sched = fault::Schedule::parse(spec.faults, &err);
  if (!sched.has_value()) return "fault schedule: " + err;
  for (const fault::FaultSpec& f : sched->specs()) {
    if (f.kind == fault::FaultKind::CrashStore) {
      if (!music_only) {
        return "crash store faults need a music/mscp-only protocol list "
               "(no store replicas exist in zab/raftkv cells)";
      }
      if (f.replica < 0 || f.replica >= spec.topology.store_nodes) {
        return "crash store " + std::to_string(f.replica) +
               ": no such replica (store_nodes " +
               std::to_string(spec.topology.store_nodes) + ")";
      }
    }
    if (f.kind == fault::FaultKind::CrashMusic) {
      if (!music_only) {
        return "crash music faults need a music/mscp-only protocol list";
      }
      if (f.replica < 0 || f.replica >= 3) {
        return "crash music " + std::to_string(f.replica) +
               ": no such replica";
      }
    }
    if (f.kind == fault::FaultKind::Restart) {
      if (!music_only) {
        return "restart faults need a music/mscp-only protocol list (the "
               "nemesis bounces a site's store + MUSIC replicas)";
      }
      if (f.site < 0 || f.site >= 3) {
        return "restart site " + std::to_string(f.site) +
               ": no such site (sites are 0..2)";
      }
      if (f.version > static_cast<int>(wire::kWireVersionMax)) {
        return "restart version " + std::to_string(f.version) +
               ": this binary speaks at most wire version " +
               std::to_string(wire::kWireVersionMax);
      }
    }
    for (int site : f.side_a) {
      if (site < 0 || site >= 3) {
        return "partition names site " + std::to_string(site) +
               " (sites are 0..2)";
      }
    }
    for (int site : f.side_b) {
      if (site < 0 || site >= 3) {
        return "partition names site " + std::to_string(site) +
               " (sites are 0..2)";
      }
    }
    if (f.from_site >= 3 || f.to_site >= 3) {
      return "link fault names a site past 2 (sites are 0..2)";
    }
  }
  return "";
}

sim::LatencyProfile profile_by_name(const std::string& name) {
  if (name == "11") return sim::LatencyProfile::profile_11();
  if (name == "lUsEu") return sim::LatencyProfile::profile_luseu();
  if (name == "local") {
    // Fast co-located profile for unit tests: 1ms RTT everywhere.
    return sim::LatencyProfile::uniform(3, 1.0, 0.2);
  }
  return sim::LatencyProfile::profile_lus();
}

CellOutcome run_cell(const Cell& cell, size_t par_sites) {
  auto t0 = std::chrono::steady_clock::now();
  CellOutcome out;
  try {
    std::string err = validate(cell.point);
    if (!err.empty()) {
      out.label = cell.label();
      out.error = err;
    } else {
      bool sharded = cell.shards() != 1;
      switch (cell.protocol()) {
        case Protocol::Music:
          out = sharded
                    ? run_cluster_cell(cell, core::PutMode::Quorum, par_sites)
                    : run_music_cell(cell, core::PutMode::Quorum, par_sites);
          break;
        case Protocol::Mscp:
          out = sharded ? run_cluster_cell(cell, core::PutMode::Lwt, par_sites)
                        : run_music_cell(cell, core::PutMode::Lwt, par_sites);
          break;
        case Protocol::Zab:
          // The zab/raftkv substitutes are not lane-safe; they always run
          // on the classic kernel regardless of par_sites.
          out = run_zab_cell(cell);
          break;
        case Protocol::RaftKv:
          out = run_cdb_cell(cell);
          break;
      }
    }
  } catch (const std::exception& e) {
    out = CellOutcome{};
    out.label = cell.label();
    out.error = std::string("exception: ") + e.what();
  }
  out.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

ScenarioSpec reduced(ScenarioSpec spec, const RunOptions& opt) {
  if (opt.max_seeds > 0 && spec.seeds > opt.max_seeds) {
    spec.seeds = opt.max_seeds;
  }
  if (opt.max_warmup > 0 && spec.workload.warmup > opt.max_warmup) {
    spec.workload.warmup = opt.max_warmup;
  }
  if (opt.max_measure > 0 && spec.workload.measure > opt.max_measure) {
    spec.workload.measure = opt.max_measure;
  }
  return spec;
}

std::vector<CellOutcome> run_sweep(const ScenarioSpec& spec,
                                   const RunOptions& opt) {
  std::vector<Cell> cells = expand(reduced(spec, opt));
  if (opt.max_cells > 0 && cells.size() > opt.max_cells) {
    cells.resize(opt.max_cells);
  }
  size_t par_sites = opt.par_sites;
  return par::run_worlds(
      cells, [par_sites](const Cell& c) { return run_cell(c, par_sites); },
      opt.threads);
}

}  // namespace music::scn
