#include "scenario/report.h"

#include <algorithm>
#include <cstdio>

namespace music::scn {
namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// First line of an error (reports can be multi-line; tables want one).
std::string first_line(const std::string& s) {
  size_t nl = s.find('\n');
  return nl == std::string::npos ? s : s.substr(0, nl);
}

}  // namespace

std::string csv_header() {
  return "scenario,protocol,profile,mix,clients,seed,ok,completed,failed,"
         "throughput_ops_s,mean_ms,p50_ms,p99_ms,wan_msgs,msgs,wan_per_op,"
         "events,violations,wall_sec,error";
}

std::string csv_row(const ScenarioSpec& spec, const Cell& cell,
                    const CellOutcome& out) {
  std::string row = spec.name;
  row += ",";
  row += to_string(cell.protocol());
  row += ",";
  row += cell.profile();
  row += ",";
  row += num(cell.mix());
  row += ",";
  row += std::to_string(cell.clients());
  row += ",";
  row += std::to_string(cell.seed);
  row += ",";
  row += out.ok ? "1" : "0";
  row += ",";
  row += std::to_string(out.run.completed);
  row += ",";
  row += std::to_string(out.run.failed);
  row += ",";
  row += num(out.run.throughput());
  row += ",";
  row += num(out.run.latency.mean_ms());
  row += ",";
  row += num(out.run.latency.percentile_ms(50));
  row += ",";
  row += num(out.run.latency.percentile_ms(99));
  row += ",";
  row += std::to_string(out.wan_msgs);
  row += ",";
  row += std::to_string(out.msgs);
  row += ",";
  row += num(out.wan_per_op());
  row += ",";
  row += std::to_string(out.events);
  row += ",";
  row += std::to_string(out.violations);
  row += ",";
  row += num(out.wall_sec);
  row += ",";
  // Errors may contain commas/newlines: quote and flatten.
  std::string err = first_line(out.error);
  std::replace(err.begin(), err.end(), '"', '\'');
  row += "\"";
  row += err;
  row += "\"";
  return row;
}

std::string sweep_csv(const ScenarioSpec& spec,
                      const std::vector<CellOutcome>& outs) {
  std::vector<Cell> cells = expand(spec);
  std::string csv = csv_header();
  csv += "\n";
  size_t n = std::min(cells.size(), outs.size());
  for (size_t i = 0; i < n; ++i) {
    csv += csv_row(spec, cells[i], outs[i]);
    csv += "\n";
  }
  return csv;
}

std::string sweep_html(const ScenarioSpec& spec,
                       const std::vector<CellOutcome>& outs) {
  std::vector<Cell> cells = expand(spec);
  size_t n = std::min(cells.size(), outs.size());

  double max_tput = 0.0;
  size_t ok_cells = 0;
  uint64_t total_ops = 0;
  for (size_t i = 0; i < n; ++i) {
    max_tput = std::max(max_tput, outs[i].run.throughput());
    if (outs[i].ok) ++ok_cells;
    total_ops += outs[i].run.completed;
  }

  std::string h;
  h += "<!doctype html><html><head><meta charset=\"utf-8\">";
  h += "<title>scenario ";
  h += html_escape(spec.name);
  h += "</title><style>";
  h += "body{font-family:sans-serif;margin:2em;max-width:75em}";
  h += "table{border-collapse:collapse;width:100%}";
  h += "th,td{border:1px solid #ccc;padding:0.3em 0.6em;text-align:right;"
       "font-size:0.9em}";
  h += "th{background:#f0f0f0}td.l{text-align:left}";
  h += "tr.bad{background:#fdd}";
  h += ".bar{background:#7ab;height:0.8em;display:inline-block}";
  h += "pre{background:#f8f8f8;padding:1em;border:1px solid #ddd}";
  h += "</style></head><body>";
  h += "<h1>scenario ";
  h += html_escape(spec.name);
  h += "</h1><p>";
  h += std::to_string(n);
  h += " cells (";
  h += std::to_string(ok_cells);
  h += " ok, ";
  h += std::to_string(n - ok_cells);
  h += " failed), ";
  h += std::to_string(total_ops);
  h += " completed ops. Grid: ";
  h += std::to_string(spec.protocols.size());
  h += " protocol(s) x ";
  h += std::to_string(spec.topology.profiles.size());
  h += " profile(s) x ";
  h += std::to_string(spec.workload.mixes.size());
  h += " mix(es) x ";
  h += std::to_string(spec.workload.clients.size());
  h += " client count(s) x ";
  h += std::to_string(spec.seeds);
  h += " seed(s).</p>";

  h += "<table><tr><th>cell</th><th>ok</th><th>ops</th><th>failed</th>"
       "<th>ops/s</th><th></th><th>mean ms</th><th>p50 ms</th><th>p99 ms</th>"
       "<th>WAN msgs/op</th><th>events</th><th>error</th></tr>";
  for (size_t i = 0; i < n; ++i) {
    const CellOutcome& o = outs[i];
    h += o.ok ? "<tr>" : "<tr class=\"bad\">";
    h += "<td class=\"l\">";
    h += html_escape(cells[i].label());
    h += "</td><td>";
    h += o.ok ? "yes" : "NO";
    h += "</td><td>";
    h += std::to_string(o.run.completed);
    h += "</td><td>";
    h += std::to_string(o.run.failed);
    h += "</td><td>";
    h += num(o.run.throughput());
    h += "</td><td class=\"l\" style=\"min-width:8em\">";
    double frac = max_tput > 0.0 ? o.run.throughput() / max_tput : 0.0;
    h += "<span class=\"bar\" style=\"width:";
    h += std::to_string(static_cast<int>(frac * 100.0));
    h += "px\"></span>";
    h += "</td><td>";
    h += num(o.run.latency.mean_ms());
    h += "</td><td>";
    h += num(o.run.latency.percentile_ms(50));
    h += "</td><td>";
    h += num(o.run.latency.percentile_ms(99));
    h += "</td><td>";
    h += num(o.wan_per_op());
    h += "</td><td>";
    h += std::to_string(o.events);
    h += "</td><td class=\"l\">";
    h += html_escape(first_line(o.error));
    h += "</td></tr>";
  }
  h += "</table>";

  h += "<h2>spec</h2><pre>";
  h += html_escape(spec.format());
  h += "</pre></body></html>\n";
  return h;
}

}  // namespace music::scn
