#include "fault/nemesis.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace music::fault {
namespace {

/// Span names must be string literals (obs::Span::name points at static
/// storage), so map each kind to one.
const char* span_name(FaultKind k) {
  switch (k) {
    case FaultKind::Partition: return "fault.partition";
    case FaultKind::Blackhole: return "fault.blackhole";
    case FaultKind::GrayLink: return "fault.gray_link";
    case FaultKind::LatencySpike: return "fault.latency_spike";
    case FaultKind::Duplication: return "fault.duplication";
    case FaultKind::CrashStore: return "fault.crash_store";
    case FaultKind::CrashMusic: return "fault.crash_music";
    case FaultKind::Restart: return "fault.restart";
  }
  return "fault.unknown";
}

sim::LinkFault to_link_fault(const FaultSpec& spec) {
  sim::LinkFault f;
  switch (spec.kind) {
    case FaultKind::Blackhole:
      f.blackhole = true;
      break;
    case FaultKind::GrayLink:
      f.extra_drop = spec.loss;
      f.extra_delay_ms = spec.delay_ms;
      break;
    case FaultKind::LatencySpike:
      f.extra_delay_ms = spec.delay_ms;
      break;
    case FaultKind::Duplication:
      f.dup_prob = spec.dup_prob;
      break;
    default:
      assert(false && "not a link fault");
  }
  return f;
}

}  // namespace

Nemesis::Nemesis(sim::Simulation& sim, sim::Network& net, NemesisHooks hooks)
    : sim_(sim), net_(net), hooks_(std::move(hooks)) {}

void Nemesis::arm(const Schedule& schedule) {
  for (const FaultSpec& spec : schedule.specs()) {
    sim::Duration delay = spec.at - sim_.now();
    if (delay < 0) delay = 0;
    sim_.schedule(delay, [this, spec] { inject(spec); });
  }
}

void Nemesis::inject(const FaultSpec& spec) {
  OpenFault f;
  f.spec = spec;
  switch (spec.kind) {
    case FaultKind::Partition:
      f.partition = net_.partition_sites(spec.side_a, spec.side_b);
      ++counters_.partitions;
      break;
    case FaultKind::Blackhole:
    case FaultKind::GrayLink:
    case FaultKind::LatencySpike:
    case FaultKind::Duplication: {
      sim::LinkFault lf = to_link_fault(spec);
      f.links.push_back(net_.add_link_fault(spec.from_site, spec.to_site, lf));
      if (spec.bidirectional) {
        f.links.push_back(
            net_.add_link_fault(spec.to_site, spec.from_site, lf));
      }
      ++counters_.link_faults;
      break;
    }
    case FaultKind::CrashStore:
      if (hooks_.crash_store) {
        hooks_.crash_store(spec.replica, /*down=*/true, spec.amnesia);
      }
      ++counters_.store_crashes;
      break;
    case FaultKind::CrashMusic:
      if (hooks_.crash_music) {
        hooks_.crash_music(spec.replica, /*down=*/true, spec.amnesia);
      }
      ++counters_.music_crashes;
      break;
    case FaultKind::Restart:
      if (hooks_.restart_site) {
        hooks_.restart_site(spec.site, /*down=*/true, spec.amnesia,
                            spec.version);
      }
      ++counters_.restarts;
      break;
  }
  if (obs::Tracer* t = sim_.tracer()) {
    f.span = t->begin(span_name(spec.kind), sim_.now(), /*parent=*/0,
                      /*site=*/-1, /*node=*/-1, spec.describe());
  }
  uint64_t id = next_id_++;
  open_.emplace(id, std::move(f));
  if (spec.duration > 0) {
    sim_.schedule(spec.duration, [this, id] { heal(id); });
  }
}

void Nemesis::heal(uint64_t id) {
  auto it = open_.find(id);
  if (it == open_.end()) return;  // heal_all got there first
  OpenFault& f = it->second;
  switch (f.spec.kind) {
    case FaultKind::Partition:
      net_.heal_partition(f.partition);
      break;
    case FaultKind::Blackhole:
    case FaultKind::GrayLink:
    case FaultKind::LatencySpike:
    case FaultKind::Duplication:
      for (sim::LinkFaultId l : f.links) net_.remove_link_fault(l);
      break;
    case FaultKind::CrashStore:
      if (hooks_.crash_store) {
        hooks_.crash_store(f.spec.replica, /*down=*/false, f.spec.amnesia);
      }
      break;
    case FaultKind::CrashMusic:
      if (hooks_.crash_music) {
        hooks_.crash_music(f.spec.replica, /*down=*/false, f.spec.amnesia);
      }
      break;
    case FaultKind::Restart:
      if (hooks_.restart_site) {
        hooks_.restart_site(f.spec.site, /*down=*/false, f.spec.amnesia,
                            f.spec.version);
      }
      break;
  }
  if (obs::Tracer* t = sim_.tracer()) t->end(f.span, sim_.now());
  ++counters_.heals;
  open_.erase(it);
}

void Nemesis::heal_all() {
  while (!open_.empty()) heal(open_.begin()->first);
}

void Nemesis::export_metrics(obs::MetricsRegistry& reg) const {
  reg.set("nemesis.partitions", counters_.partitions);
  reg.set("nemesis.link_faults", counters_.link_faults);
  reg.set("nemesis.crashes.store", counters_.store_crashes);
  reg.set("nemesis.crashes.music", counters_.music_crashes);
  reg.set("nemesis.restarts", counters_.restarts);
  reg.set("nemesis.heals", counters_.heals);
  reg.set("nemesis.open", open_.size());
}

}  // namespace music::fault
