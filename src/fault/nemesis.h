// The nemesis: executes fault Schedules against a live simulation.
//
// Layered strictly on the sim kernel: the nemesis knows how to partition the
// network and install link faults itself, while replica crashes are routed
// through caller-supplied hooks (NemesisHooks) so this library does not
// depend on the store or MUSIC layers — the world that owns the replicas
// wires crash/restart (and the amnesia-vs-durable distinction) in.
//
// Every injected fault is bracketed by an obs::Tracer span
// ("fault.partition", "fault.gray_link", ...) whose detail is the spec's
// describe() string, so outage windows render in Chrome traces right next to
// the protocol activity they disturb.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "fault/fault.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace music::obs {
class MetricsRegistry;
}  // namespace music::obs

namespace music::fault {

/// How the nemesis crashes and restarts replicas it does not own.  `down` is
/// true at crash, false at restart; `amnesia` asks for volatile state to be
/// wiped (the hook decides whether to wipe at crash or restart — the sim
/// can't observe the difference while the replica is down).
struct NemesisHooks {
  std::function<void(int replica, bool down, bool amnesia)> crash_store;
  std::function<void(int replica, bool down, bool amnesia)> crash_music;
  /// Bounce a whole site (rolling-upgrade step).  `down` is true when the
  /// site drains and stops, false when it comes back.  `version` is the max
  /// wire version the restarted process should advertise (0 = unchanged);
  /// it is only meaningful on the `down=false` call.
  std::function<void(int site, bool down, bool amnesia, int version)>
      restart_site;
};

/// Executes FaultSpecs: immediately (inject), or on the sim clock (arm).
class Nemesis {
 public:
  struct Counters {
    uint64_t partitions = 0;    // partitions begun
    uint64_t link_faults = 0;   // link fault specs begun
    uint64_t store_crashes = 0;
    uint64_t music_crashes = 0;
    uint64_t restarts = 0;      // site bounces begun (rolling-upgrade steps)
    uint64_t heals = 0;         // faults ended (timed or heal_all)
  };

  Nemesis(sim::Simulation& sim, sim::Network& net, NemesisHooks hooks = {});

  /// Schedules every spec in `schedule` at its `at` time (specs whose time
  /// is already past fire immediately).  May be called repeatedly.
  void arm(const Schedule& schedule);

  /// Applies one fault now.  If the spec has a duration, its heal is
  /// scheduled; otherwise it stays until heal_all().
  void inject(const FaultSpec& spec);

  /// Ends every fault this nemesis currently has open: heals partitions and
  /// link faults, restarts crashed replicas, closes their spans.
  void heal_all();

  /// Faults injected but not yet healed.
  size_t open_faults() const { return open_.size(); }

  const Counters& counters() const { return counters_; }

  /// Publishes counters under "nemesis.*".
  void export_metrics(obs::MetricsRegistry& reg) const;

 private:
  struct OpenFault {
    FaultSpec spec;
    sim::PartitionId partition = 0;
    std::vector<sim::LinkFaultId> links;
    uint64_t span = 0;  // obs::SpanId; 0 when no tracer attached
  };

  void heal(uint64_t id);

  sim::Simulation& sim_;
  sim::Network& net_;
  NemesisHooks hooks_;
  Counters counters_;
  std::map<uint64_t, OpenFault> open_;
  uint64_t next_id_ = 1;
};

}  // namespace music::fault
