// Fault taxonomy and deterministic fault schedules (the nemesis script).
//
// The paper's failure model (§III) assumes fail-stop nodes, network
// partitions, and an asynchronous network that may delay, drop or duplicate
// messages.  This header gives each of those a first-class, data-driven
// representation: a FaultSpec names one injected failure (what, where, when,
// for how long), and a Schedule is an ordered list of them — buildable
// programmatically or parsed from a compact script like
//
//   at 2s partition 0|1,2 for 3s; at 4s crash store 1 for 1s
//
// so tests, benches and the CLI can all drive the same failure scenarios.
// The engine that executes a Schedule against a live simulation lives in
// fault/nemesis.h.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace music::fault {

/// What kind of failure a FaultSpec injects.
enum class FaultKind : uint8_t {
  /// Cut all links between two site sets (both directions).
  Partition,
  /// Drop every message on a directed site link (asymmetric partition).
  Blackhole,
  /// Gray link: elevated loss and/or delay on a directed site link.
  GrayLink,
  /// Latency spike: pure delay addition on a directed site link.
  LatencySpike,
  /// Message duplication on a directed site link.
  Duplication,
  /// Crash (and later restart) a store replica.
  CrashStore,
  /// Crash (and later restart) a MUSIC replica.
  CrashMusic,
  /// Bounce a whole site (its store + MUSIC replicas, or the musicd
  /// process): graceful drain, down for `duration`, then back — optionally
  /// onto a binary pinned to a different max wire version (`version`), and
  /// optionally with volatile state wiped (`amnesia`).  This is the
  /// rolling-upgrade step as a first-class fault.
  Restart,
};

/// Stable lowercase name ("partition", "gray_link", "crash_store", ...).
const char* to_string(FaultKind k);

/// One scheduled failure.  Which fields are meaningful depends on `kind`;
/// unused fields keep their defaults.
struct FaultSpec {
  FaultKind kind = FaultKind::Partition;

  /// Absolute sim time the fault begins.
  sim::Time at = 0;
  /// How long it lasts; 0 means "until Nemesis::heal_all()".
  sim::Duration duration = 0;

  // Partition.
  std::set<int> side_a, side_b;

  // Link faults (Blackhole / GrayLink / LatencySpike / Duplication).
  int from_site = -1;
  int to_site = -1;
  /// Apply the link fault in both directions (the `a<>b` script form).
  bool bidirectional = false;
  double loss = 0.0;      // GrayLink extra drop probability
  double delay_ms = 0.0;  // GrayLink / LatencySpike one-way delay add
  double dup_prob = 0.0;  // Duplication probability

  // Crashes.
  int replica = -1;
  /// Restart with volatile state wiped (amnesia) instead of durable state.
  bool amnesia = false;

  // Restart (rolling upgrade).
  /// Which site to bounce.
  int site = -1;
  /// Max wire version the restarted process advertises; 0 = keep whatever
  /// it was running (a plain restart, not an up/downgrade).
  int version = 0;

  /// Human/trace-readable one-liner: "partition {0}|{1,2}", "gray 0>1
  /// loss=0.3 delay=50ms", "crash store 1 (amnesia)".
  std::string describe() const;
};

/// Where and why a script failed to parse.  `line` and `col` are 1-based
/// and point at the offending token (or the start of the offending clause
/// when no single token is to blame).
struct ParseDiag {
  int line = 1;
  int col = 1;
  std::string message;

  /// "line L, col C: message".
  std::string str() const;
};

/// An ordered list of FaultSpecs.  Builder methods return *this so
/// schedules compose fluently; parse() accepts the script DSL.
class Schedule {
 public:
  /// Parses the nemesis script DSL.  Clauses are ';'- or newline-separated:
  ///
  ///   clause  := "at" TIME spec ["for" TIME]
  ///   spec    := "partition" SIDES            (SIDES := "0|1,2")
  ///            | "blackhole" LINK
  ///            | "gray" LINK "loss" FLOAT "delay" TIME
  ///            | "spike" LINK "delay" TIME
  ///            | "dup" LINK "prob" FLOAT
  ///            | "crash" ("store"|"music") INT ["amnesia"]
  ///            | "restart" INT ["version" INT] ["amnesia"]
  ///   LINK    := INT ">" INT  (directed)  |  INT "<>" INT  (both ways)
  ///   TIME    := NUMBER ("us"|"ms"|"s")
  ///
  /// "restart" bounces a whole site; its "for TIME" is the downtime before
  /// the site comes back (0 = back immediately).  "version K" restarts it
  /// onto a binary whose max wire version is K (the rolling-upgrade step).
  ///
  /// Returns nullopt on a malformed script; if `error` is non-null it
  /// receives a description of the first problem (with its line/column).
  static std::optional<Schedule> parse(std::string_view script,
                                       std::string* error = nullptr);

  /// Same, but reports the first problem as a structured diagnostic with
  /// 1-based line/column.  Malformed input never crashes and never silently
  /// drops clauses: the first bad clause aborts the whole parse.
  static std::optional<Schedule> parse(std::string_view script,
                                       ParseDiag* diag);

  Schedule& add(FaultSpec spec);

  Schedule& partition_at(sim::Time at, std::set<int> a, std::set<int> b,
                         sim::Duration dur = 0);
  Schedule& blackhole_at(sim::Time at, int from, int to, sim::Duration dur = 0,
                         bool bidirectional = false);
  Schedule& gray_at(sim::Time at, int from, int to, double loss,
                    double delay_ms, sim::Duration dur = 0,
                    bool bidirectional = false);
  Schedule& spike_at(sim::Time at, int from, int to, double delay_ms,
                     sim::Duration dur = 0, bool bidirectional = false);
  Schedule& dup_at(sim::Time at, int from, int to, double prob,
                   sim::Duration dur = 0, bool bidirectional = false);
  Schedule& crash_store_at(sim::Time at, int replica, sim::Duration dur = 0,
                           bool amnesia = false);
  Schedule& crash_music_at(sim::Time at, int replica, sim::Duration dur = 0,
                           bool amnesia = false);
  Schedule& restart_at(sim::Time at, int site, sim::Duration dur = 0,
                       int version = 0, bool amnesia = false);

  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }
  size_t size() const { return specs_.size(); }

  /// The whole schedule, one described clause per line.
  std::string describe() const;

 private:
  std::vector<FaultSpec> specs_;
};

}  // namespace music::fault
