#include "fault/fault.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <utility>

namespace music::fault {
namespace {

std::string join_sites(const std::set<int>& s) {
  std::string out;
  for (int v : s) {
    if (!out.empty()) out += ",";
    out += std::to_string(v);
  }
  return out;
}

std::string link_str(const FaultSpec& f) {
  std::string out = std::to_string(f.from_site);
  out += f.bidirectional ? "<>" : ">";
  out += std::to_string(f.to_site);
  return out;
}

std::string time_str(sim::Duration d) {
  if (d % sim::sec(1) == 0) return std::to_string(d / sim::sec(1)) + "s";
  if (d % sim::ms(1) == 0) return std::to_string(d / sim::ms(1)) + "ms";
  return std::to_string(d) + "us";
}

std::string float_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Splits a clause on whitespace into tokens.
std::vector<std::string_view> tokenize(std::string_view clause) {
  std::vector<std::string_view> toks;
  size_t i = 0;
  while (i < clause.size()) {
    while (i < clause.size() &&
           std::isspace(static_cast<unsigned char>(clause[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < clause.size() &&
           !std::isspace(static_cast<unsigned char>(clause[i]))) {
      ++i;
    }
    if (i > start) toks.push_back(clause.substr(start, i - start));
  }
  return toks;
}

bool parse_double(std::string_view s, double* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool parse_int(std::string_view s, int* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

/// "2s" / "150ms" / "300us" -> Duration.
bool parse_time(std::string_view s, sim::Duration* out) {
  sim::Duration unit;
  std::string_view num;
  if (s.size() > 2 && s.substr(s.size() - 2) == "ms") {
    unit = sim::ms(1);
    num = s.substr(0, s.size() - 2);
  } else if (s.size() > 2 && s.substr(s.size() - 2) == "us") {
    unit = 1;
    num = s.substr(0, s.size() - 2);
  } else if (s.size() > 1 && s.back() == 's') {
    unit = sim::sec(1);
    num = s.substr(0, s.size() - 1);
  } else {
    return false;
  }
  double v;
  if (!parse_double(num, &v) || v < 0) return false;
  *out = static_cast<sim::Duration>(v * static_cast<double>(unit));
  return true;
}

/// "0,2" -> {0, 2}.
bool parse_sites(std::string_view s, std::set<int>* out) {
  while (!s.empty()) {
    size_t comma = s.find(',');
    std::string_view part = s.substr(0, comma);
    int v;
    if (!parse_int(part, &v) || v < 0) return false;
    out->insert(v);
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
  }
  return !out->empty();
}

/// "0>1" (directed) or "0<>1" (both ways).
bool parse_link(std::string_view s, FaultSpec* spec) {
  size_t arrow = s.find("<>");
  size_t arrow_len = 2;
  if (arrow == std::string_view::npos) {
    arrow = s.find('>');
    arrow_len = 1;
  }
  if (arrow == std::string_view::npos) return false;
  int from, to;
  if (!parse_int(s.substr(0, arrow), &from) ||
      !parse_int(s.substr(arrow + arrow_len), &to)) {
    return false;
  }
  if (from < 0 || to < 0 || from == to) return false;
  spec->from_site = from;
  spec->to_site = to;
  spec->bidirectional = arrow_len == 2;
  return true;
}

/// A clause-level parse failure: the message plus the offending token
/// (a view into the script, so the caller can compute line/column).  An
/// empty `where` blames the whole clause.
struct ClauseError {
  std::string message;
  std::string_view where;
};

bool fail(ClauseError* err, std::string msg, std::string_view where = {}) {
  if (err) {
    err->message = std::move(msg);
    err->where = where;
  }
  return false;
}

/// Parses one clause into `spec`.
bool parse_clause(std::string_view clause, FaultSpec* spec, ClauseError* err) {
  auto toks = tokenize(clause);
  if (toks.size() < 3 || toks[0] != "at") {
    return fail(err, "expected \"at TIME spec\"",
                toks.empty() ? clause : toks[0]);
  }
  sim::Duration at;
  if (!parse_time(toks[1], &at)) {
    return fail(err, "bad time \"" + std::string(toks[1]) + "\"", toks[1]);
  }
  spec->at = at;

  // Peel a trailing "for TIME" so the spec grammar below doesn't see it.
  size_t n = toks.size();
  if (n >= 2 && toks[n - 2] == "for") {
    if (!parse_time(toks[n - 1], &spec->duration)) {
      return fail(err, "bad duration \"" + std::string(toks[n - 1]) + "\"",
                  toks[n - 1]);
    }
    n -= 2;
  }

  std::string_view verb = toks[2];
  if (verb == "partition") {
    if (n != 4) return fail(err, "partition wants SIDES (\"0|1,2\")", verb);
    std::string_view sides = toks[3];
    size_t bar = sides.find('|');
    if (bar == std::string_view::npos ||
        !parse_sites(sides.substr(0, bar), &spec->side_a) ||
        !parse_sites(sides.substr(bar + 1), &spec->side_b)) {
      return fail(err, "bad sides \"" + std::string(sides) + "\"", sides);
    }
    spec->kind = FaultKind::Partition;
    return true;
  }
  if (verb == "blackhole") {
    if (n != 4 || !parse_link(toks[3], spec)) {
      return fail(err, "blackhole wants LINK (\"0>1\" or \"0<>1\")",
                  n >= 4 ? toks[3] : verb);
    }
    spec->kind = FaultKind::Blackhole;
    return true;
  }
  if (verb == "gray") {
    if (n != 8 || !parse_link(toks[3], spec) || toks[4] != "loss" ||
        !parse_double(toks[5], &spec->loss) || toks[6] != "delay") {
      return fail(err, "gray wants \"LINK loss FLOAT delay TIME\"", verb);
    }
    sim::Duration d;
    if (!parse_time(toks[7], &d)) {
      return fail(err, "bad delay \"" + std::string(toks[7]) + "\"", toks[7]);
    }
    spec->delay_ms = sim::to_ms(d);
    if (spec->loss < 0 || spec->loss > 1) {
      return fail(err, "loss must be in [0,1]", toks[5]);
    }
    spec->kind = FaultKind::GrayLink;
    return true;
  }
  if (verb == "spike") {
    if (n != 6 || !parse_link(toks[3], spec) || toks[4] != "delay") {
      return fail(err, "spike wants \"LINK delay TIME\"", verb);
    }
    sim::Duration d;
    if (!parse_time(toks[5], &d)) {
      return fail(err, "bad delay \"" + std::string(toks[5]) + "\"", toks[5]);
    }
    spec->delay_ms = sim::to_ms(d);
    spec->kind = FaultKind::LatencySpike;
    return true;
  }
  if (verb == "dup") {
    if (n != 6 || !parse_link(toks[3], spec) || toks[4] != "prob" ||
        !parse_double(toks[5], &spec->dup_prob) || spec->dup_prob < 0 ||
        spec->dup_prob > 1) {
      return fail(err, "dup wants \"LINK prob FLOAT\" in [0,1]", verb);
    }
    spec->kind = FaultKind::Duplication;
    return true;
  }
  if (verb == "crash") {
    if (n < 5 || (toks[3] != "store" && toks[3] != "music") ||
        !parse_int(toks[4], &spec->replica) || spec->replica < 0) {
      return fail(err, "crash wants \"(store|music) INT [amnesia]\"", verb);
    }
    spec->kind =
        toks[3] == "store" ? FaultKind::CrashStore : FaultKind::CrashMusic;
    if (n == 6) {
      if (toks[5] != "amnesia") {
        return fail(err, "unknown crash flag \"" + std::string(toks[5]) + "\"",
                    toks[5]);
      }
      spec->amnesia = true;
    } else if (n != 5) {
      return fail(err, "trailing tokens after crash spec", toks[5]);
    }
    return true;
  }
  if (verb == "restart") {
    if (n < 4 || !parse_int(toks[3], &spec->site) || spec->site < 0) {
      return fail(err, "restart wants \"SITE [version INT] [amnesia]\"", verb);
    }
    spec->kind = FaultKind::Restart;
    size_t i = 4;
    if (i < n && toks[i] == "version") {
      if (i + 1 >= n || !parse_int(toks[i + 1], &spec->version) ||
          spec->version < 1) {
        return fail(err, "restart version wants a positive INT",
                    i + 1 < n ? toks[i + 1] : verb);
      }
      i += 2;
    }
    if (i < n && toks[i] == "amnesia") {
      spec->amnesia = true;
      ++i;
    }
    if (i != n) {
      return fail(err, "trailing tokens after restart spec", toks[i]);
    }
    return true;
  }
  return fail(err, "unknown fault \"" + std::string(verb) + "\"", verb);
}

/// 1-based line/column of byte `offset` within `script`.
void locate(std::string_view script, size_t offset, int* line, int* col) {
  *line = 1;
  *col = 1;
  for (size_t i = 0; i < offset && i < script.size(); ++i) {
    if (script[i] == '\n') {
      ++*line;
      *col = 1;
    } else {
      ++*col;
    }
  }
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::Partition: return "partition";
    case FaultKind::Blackhole: return "blackhole";
    case FaultKind::GrayLink: return "gray_link";
    case FaultKind::LatencySpike: return "latency_spike";
    case FaultKind::Duplication: return "duplication";
    case FaultKind::CrashStore: return "crash_store";
    case FaultKind::CrashMusic: return "crash_music";
    case FaultKind::Restart: return "restart";
  }
  return "unknown";
}

std::string FaultSpec::describe() const {
  std::string out;
  switch (kind) {
    case FaultKind::Partition:
      out = "partition {" + join_sites(side_a) + "}|{" + join_sites(side_b) +
            "}";
      break;
    case FaultKind::Blackhole:
      out = "blackhole " + link_str(*this);
      break;
    case FaultKind::GrayLink:
      out = "gray " + link_str(*this) + " loss=" + float_str(loss) +
            " delay=" + float_str(delay_ms) + "ms";
      break;
    case FaultKind::LatencySpike:
      out = "spike " + link_str(*this) + " delay=" + float_str(delay_ms) +
            "ms";
      break;
    case FaultKind::Duplication:
      out = "dup " + link_str(*this) + " prob=" + float_str(dup_prob);
      break;
    case FaultKind::CrashStore:
    case FaultKind::CrashMusic:
      out = kind == FaultKind::CrashStore ? "crash store " : "crash music ";
      out += std::to_string(replica);
      if (amnesia) out += " (amnesia)";
      break;
    case FaultKind::Restart:
      out = "restart site " + std::to_string(site);
      if (version > 0) out += " version=" + std::to_string(version);
      if (amnesia) out += " (amnesia)";
      break;
  }
  if (duration > 0) {
    out += " for ";
    out += time_str(duration);
  }
  return out;
}

std::string ParseDiag::str() const {
  std::string out = "line ";
  out += std::to_string(line);
  out += ", col ";
  out += std::to_string(col);
  out += ": ";
  out += message;
  return out;
}

std::optional<Schedule> Schedule::parse(std::string_view script,
                                        ParseDiag* diag) {
  Schedule s;
  std::string_view rest = script;
  while (!rest.empty()) {
    size_t sep = rest.find_first_of(";\n");
    std::string_view clause = rest.substr(0, sep);
    if (!tokenize(clause).empty()) {
      FaultSpec spec;
      ClauseError err;
      if (!parse_clause(clause, &spec, &err)) {
        if (diag) {
          // Blame the offending token when it points into the script,
          // otherwise the start of the clause.
          std::string_view where = err.where.empty() ? clause : err.where;
          size_t offset = static_cast<size_t>(where.data() - script.data());
          locate(script, offset, &diag->line, &diag->col);
          diag->message = std::move(err.message);
        }
        return std::nullopt;
      }
      s.specs_.push_back(std::move(spec));
    }
    if (sep == std::string_view::npos) break;
    rest.remove_prefix(sep + 1);
  }
  if (s.specs_.empty()) {
    if (diag) {
      diag->line = 1;
      diag->col = 1;
      diag->message = "empty schedule";
    }
    return std::nullopt;
  }
  return s;
}

std::optional<Schedule> Schedule::parse(std::string_view script,
                                        std::string* error) {
  ParseDiag diag;
  auto s = parse(script, &diag);
  if (!s.has_value() && error != nullptr) *error = diag.str();
  return s;
}

Schedule& Schedule::add(FaultSpec spec) {
  specs_.push_back(std::move(spec));
  return *this;
}

Schedule& Schedule::partition_at(sim::Time at, std::set<int> a,
                                 std::set<int> b, sim::Duration dur) {
  FaultSpec s;
  s.kind = FaultKind::Partition;
  s.at = at;
  s.duration = dur;
  s.side_a = std::move(a);
  s.side_b = std::move(b);
  return add(std::move(s));
}

Schedule& Schedule::blackhole_at(sim::Time at, int from, int to,
                                 sim::Duration dur, bool bidirectional) {
  FaultSpec s;
  s.kind = FaultKind::Blackhole;
  s.at = at;
  s.duration = dur;
  s.from_site = from;
  s.to_site = to;
  s.bidirectional = bidirectional;
  return add(std::move(s));
}

Schedule& Schedule::gray_at(sim::Time at, int from, int to, double loss,
                            double delay_ms, sim::Duration dur,
                            bool bidirectional) {
  FaultSpec s;
  s.kind = FaultKind::GrayLink;
  s.at = at;
  s.duration = dur;
  s.from_site = from;
  s.to_site = to;
  s.bidirectional = bidirectional;
  s.loss = loss;
  s.delay_ms = delay_ms;
  return add(std::move(s));
}

Schedule& Schedule::spike_at(sim::Time at, int from, int to, double delay_ms,
                             sim::Duration dur, bool bidirectional) {
  FaultSpec s;
  s.kind = FaultKind::LatencySpike;
  s.at = at;
  s.duration = dur;
  s.from_site = from;
  s.to_site = to;
  s.bidirectional = bidirectional;
  s.delay_ms = delay_ms;
  return add(std::move(s));
}

Schedule& Schedule::dup_at(sim::Time at, int from, int to, double prob,
                           sim::Duration dur, bool bidirectional) {
  FaultSpec s;
  s.kind = FaultKind::Duplication;
  s.at = at;
  s.duration = dur;
  s.from_site = from;
  s.to_site = to;
  s.bidirectional = bidirectional;
  s.dup_prob = prob;
  return add(std::move(s));
}

Schedule& Schedule::crash_store_at(sim::Time at, int replica,
                                   sim::Duration dur, bool amnesia) {
  FaultSpec s;
  s.kind = FaultKind::CrashStore;
  s.at = at;
  s.duration = dur;
  s.replica = replica;
  s.amnesia = amnesia;
  return add(std::move(s));
}

Schedule& Schedule::crash_music_at(sim::Time at, int replica,
                                   sim::Duration dur, bool amnesia) {
  FaultSpec s;
  s.kind = FaultKind::CrashMusic;
  s.at = at;
  s.duration = dur;
  s.replica = replica;
  s.amnesia = amnesia;
  return add(std::move(s));
}

Schedule& Schedule::restart_at(sim::Time at, int site, sim::Duration dur,
                               int version, bool amnesia) {
  FaultSpec s;
  s.kind = FaultKind::Restart;
  s.at = at;
  s.duration = dur;
  s.site = site;
  s.version = version;
  s.amnesia = amnesia;
  return add(std::move(s));
}

std::string Schedule::describe() const {
  std::string out;
  for (const FaultSpec& s : specs_) {
    out += "at ";
    out += time_str(s.at);
    out += " ";
    out += s.describe();
    out += "\n";
  }
  return out;
}

}  // namespace music::fault
