// The Zookeeper lock recipe [27-29] over the Zab substitute: the
// "standalone locking service" design the paper contrasts with MUSIC's
// integrated locks (§II).
//
// Acquire: create a PERSISTENT_SEQUENTIAL znode under the lock's prefix;
// the holder is the client whose znode has the lowest sequence.  Non-lowest
// candidates poll (the real recipe watches the predecessor; our Zab model
// has no watches, and the paper's polling acquireLock is the same
// discipline).  Release: delete your znode.
//
// Differences from MUSIC that §II calls out, visible right in this code:
// the lock guards NOTHING about the data store — pairing it with ZK data
// writes gives sequential consistency but no latest-state synchronization,
// and a crashed holder's znode must be garbage-collected externally (real
// ZK uses ephemeral nodes tied to sessions; we expose abandon() so tests
// can model that).
#pragma once

#include <string>

#include "zab/zab.h"

namespace music::zab {

/// One client's handle on one recipe lock.
class ZkLock {
 public:
  /// `server`: the Zookeeper server this client is connected to.
  ZkLock(ZabServer& server, Key lock_path)
      : server_(server), prefix_(std::move(lock_path) + "/lock-") {}

  /// Blocks (polls) until this client holds the lock.
  sim::Task<Status> acquire(sim::Duration poll_backoff = sim::ms(20),
                            int max_polls = 2048);

  /// Releases the lock (deletes our znode).
  sim::Task<Status> release();

  /// Drops the handle without deleting the znode (simulates a crashed
  /// session whose ephemeral node has not yet expired).
  void abandon() { my_node_.clear(); }

  /// True when this handle currently believes it holds the lock.
  bool held() const { return held_; }
  const Key& my_node() const { return my_node_; }

 private:
  ZabServer& server_;
  Key prefix_;
  Key my_node_;
  bool held_ = false;
};

}  // namespace music::zab
