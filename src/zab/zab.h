// Zookeeper substitute: a Zab-style atomic broadcast ensemble (Fig. 6's
// baseline).
//
// Models the properties the paper's Zookeeper comparison depends on:
//   * a stable leader through which every write is serialized ("we observed
//     a stable consensus leader in Zookeeper ... these performance
//     differences are perhaps due to the queuing effects of consensus
//     writes", §VIII-c);
//   * the Zab two-phase broadcast [19]: leader assigns a zxid, proposes to
//     followers, commits after a quorum of acks — one WAN round trip per
//     write, like a MUSIC quorum put;
//   * Zookeeper's synchronous transaction-log fsync on leader and followers
//     before acknowledging a proposal (the durability cost Cassandra's
//     periodic commit-log sync does not pay per write);
//   * strictly ordered commit delivery (zxid order), giving sequentially
//     consistent writes with local reads.
//
// Leader failover is included (epoch bump, highest-id live server wins) so
// the failure tests can exercise it, with the simplification that follower
// logs are assumed caught-up at election (no log-sync phase).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/future.h"
#include "sim/network.h"
#include "sim/service.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace music::zab {

/// Ensemble tunables.
struct ZabConfig {
  /// Same per-message compute model as the data store's nodes (same
  /// hardware in the paper's testbed).
  sim::ServiceConfig service{8, 190, 2.0};
  /// Zookeeper fsyncs its txn log before acking every proposal; 300us
  /// reflects an enterprise SSD with the small group-commit batches of a
  /// busy server.
  sim::DiskConfig disk{300, 300e6};
  /// Leader heartbeat period.
  sim::Duration heartbeat = sim::ms(250);
  /// A follower that misses heartbeats this long starts an election.
  sim::Duration election_timeout = sim::ms(1500);
  /// Client-visible request timeout at a server.
  sim::Duration op_timeout = sim::sec(5);
  /// Message framing overhead.
  size_t overhead_bytes = 96;
};

class ZabEnsemble;

/// One Zookeeper server.
class ZabServer {
 public:
  ZabServer(ZabEnsemble& ensemble, sim::NodeId node, int site, int id);

  ZabServer(const ZabServer&) = delete;
  ZabServer& operator=(const ZabServer&) = delete;

  sim::NodeId node() const { return node_; }
  int site() const { return site_; }
  int id() const { return id_; }
  bool is_leader() const;
  sim::ServiceNode& service() { return service_; }
  ZabEnsemble& ensemble() { return ensemble_; }

  // ---- Client operations (issued at any server; writes forward to the
  // ---- leader).  setData/create/remove are sequentially consistent;
  // ---- getData is a local read, as in Zookeeper.

  sim::Task<Status> set_data(Key path, Value data);
  sim::Task<Result<Value>> get_data(Key path);
  /// A sync+read: local read after a quorum round, for read-your-writes
  /// across servers (Zookeeper's sync() recipe).
  sim::Task<Result<Value>> sync_get_data(Key path);
  sim::Task<Status> remove(Key path);

  /// CreateMode.PERSISTENT_SEQUENTIAL: creates `prefix` + a zero-padded,
  /// monotonically increasing sequence number assigned by the leader, and
  /// returns the created path.  The building block of the Zookeeper lock
  /// recipe [27-29].
  sim::Task<Result<Key>> create_sequential(Key prefix, Value data);

  /// Children of `prefix` (paths starting with it), sorted, from this
  /// server's local tree after a sync flush (so the view is current as of
  /// the call).
  sim::Task<Result<std::vector<Key>>> sync_list(Key prefix);

  /// Crash / restart.
  void set_down(bool down);
  bool down() const { return service_.down(); }

  /// Committed writes applied to this server's tree (diagnostics).
  uint64_t applied() const { return applied_count_; }

  /// Opt-in recording of the applied zxid sequence (consistency tests;
  /// off by default to keep long benchmark runs lean).
  void record_applied(bool on) { record_applied_ = on; }
  const std::vector<int64_t>& applied_zxids() const { return applied_zxids_; }

 private:
  friend class ZabEnsemble;

  struct Txn {
    int64_t zxid = 0;
    Key path;
    Value data;
    bool deleted = false;

    Txn() = default;
    Txn(int64_t z, Key p, Value d, bool del)
        : zxid(z), path(std::move(p)), data(std::move(d)), deleted(del) {}
    size_t bytes() const { return path.size() + data.size() + 24; }
  };

  struct Pending {
    Txn txn;
    int acks = 0;
    bool committed = false;
    sim::Promise<bool> done;

    Pending(Txn t, sim::Promise<bool> d) : txn(std::move(t)), done(std::move(d)) {}
  };

  sim::Simulation& sim();
  const ZabConfig& cfg() const;

  /// Shared write path behind set_data/remove (forwards to the leader).
  sim::Task<Status> write(Key path, Value data, bool deleted);

  /// Leader-side: broadcast a txn, resolve when quorum-committed.  The
  /// assigned zxid is written to *zxid_out immediately (before the future
  /// resolves) so forwarding followers can wait for their local commit.
  sim::Future<bool> broadcast(Txn txn, int64_t* zxid_out = nullptr);

  /// Resolves `reply` once this server has applied `zxid` (Zookeeper
  /// responds to a client only after the connected server commits locally,
  /// which is what gives clients read-your-writes at their server).
  void reply_when_applied(int64_t zxid, sim::Promise<bool> reply);
  /// Leader-side: commit everything quorum-acked in zxid order.
  void try_commit();
  void apply(const Txn& txn);

  // Message handlers (run on this server after network + service queue).
  void on_propose(int64_t epoch, Txn txn, sim::NodeId from);
  void on_ack(int64_t epoch, int64_t zxid);
  void on_commit(int64_t epoch, Txn txn);
  void on_heartbeat(int64_t epoch, int leader_id);

  /// Election: adopt the highest live id as leader of a new epoch.
  void maybe_elect();
  void election_tick();

  ZabEnsemble& ensemble_;
  sim::NodeId node_;
  int site_;
  int id_;
  sim::ServiceNode service_;
  sim::Disk disk_;

  int64_t epoch_ = 0;
  int leader_id_ = 0;
  int64_t next_zxid_ = 1;
  int64_t last_committed_ = 0;
  std::map<int64_t, Pending> pending_;           // leader: in-flight txns
  std::map<int64_t, Txn> commit_buffer_;         // follower: out-of-order commits
  int64_t last_applied_ = 0;
  std::unordered_map<Key, Value> tree_;
  uint64_t applied_count_ = 0;
  bool record_applied_ = false;
  std::vector<int64_t> applied_zxids_;
  std::multimap<int64_t, sim::Promise<bool>> apply_waiters_;
  sim::Time last_heartbeat_seen_ = 0;
  bool election_loop_running_ = false;
};

/// The ensemble: registry, quorum math, message fabric.
class ZabEnsemble {
 public:
  ZabEnsemble(sim::Simulation& sim, sim::Network& net, ZabConfig cfg,
              const std::vector<int>& server_sites);

  sim::Simulation& simulation() { return sim_; }
  sim::Network& network() { return net_; }
  const ZabConfig& config() const { return cfg_; }

  int num_servers() const { return static_cast<int>(servers_.size()); }
  int quorum() const { return num_servers() / 2 + 1; }
  ZabServer& server(int id) { return *servers_.at(static_cast<size_t>(id)); }
  ZabServer& server_at_site(int site);
  ZabServer* leader();

  /// Starts heartbeats and failure detection on every server.
  void start();

  /// Sends a handler to run on server `id` (network + service queue).
  /// Out-of-range ids (e.g. an unknown leader) drop the message, exactly
  /// like a message to a dead node.  `Fn` is deduced (any callable
  /// void(ZabServer&)) so the handler rides the network's pooled InlineFn
  /// frames without a std::function allocation per hop.
  template <typename Fn>
  void post(sim::NodeId from, int to_id, size_t bytes, Fn fn,
            sim::MsgKind kind = sim::MsgKind::Generic) {
    if (to_id < 0 || to_id >= num_servers()) return;  // unknown target: drop
    ZabServer& target = server(to_id);
    if (from == target.node()) {
      // Loopback still pays the service cost.
      target.service().submit(
          bytes, [&target, fn = std::move(fn)]() mutable { fn(target); });
      return;
    }
    net_.send(
        from, target.node(), bytes,
        [&target, bytes, fn = std::move(fn)]() mutable {
          target.service().submit(
              bytes, [&target, fn = std::move(fn)]() mutable { fn(target); });
        },
        kind);
  }

 private:
  void schedule_tick(ZabServer* srv);

  sim::Simulation& sim_;
  sim::Network& net_;
  ZabConfig cfg_;
  std::vector<std::unique_ptr<ZabServer>> servers_;
};

/// Client handle: lives at a site, talks to the nearest server, retries on
/// failures (used by benches and the failover test).
class ZkClient {
 public:
  ZkClient(ZabEnsemble& ensemble, int site);

  sim::Task<Status> set_data(Key path, Value data);
  sim::Task<Result<Value>> get_data(Key path);

 private:
  sim::Task<Status> request(Key path, Value data);

  ZabEnsemble& ensemble_;
  int site_;
  sim::NodeId node_;
};

}  // namespace music::zab
