#include "zab/zab.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "sim/span.h"

namespace music::zab {

// ---- ZabServer --------------------------------------------------------------

ZabServer::ZabServer(ZabEnsemble& ensemble, sim::NodeId node, int site, int id)
    : ensemble_(ensemble),
      node_(node),
      site_(site),
      id_(id),
      service_(ensemble.simulation(), ensemble.config().service),
      disk_(ensemble.simulation(), ensemble.config().disk) {}

sim::Simulation& ZabServer::sim() { return ensemble_.simulation(); }
const ZabConfig& ZabServer::cfg() const { return ensemble_.config(); }

bool ZabServer::is_leader() const { return leader_id_ == id_ && !down(); }

sim::Future<bool> ZabServer::broadcast(Txn txn, int64_t* zxid_out) {
  sim::Promise<bool> done(sim());
  txn.zxid = next_zxid_++;
  int64_t zxid = txn.zxid;
  if (zxid_out != nullptr) *zxid_out = zxid;
  int64_t epoch = epoch_;
  size_t bytes = txn.bytes() + cfg().overhead_bytes;
  pending_.emplace(zxid, Pending(txn, done));
  // One propose/ack WAN round trip to reach quorum commit.
  sim::trace_rtts(sim(), 1);
  // Zookeeper forces the transaction to the log before acknowledging; the
  // leader's own ack also waits for its fsync.
  disk_.write_sync(txn.bytes(), [this, epoch, zxid] { on_ack(epoch, zxid); });
  for (int i = 0; i < ensemble_.num_servers(); ++i) {
    if (i == id_) continue;
    ensemble_.post(
        node_, i, bytes,
        [epoch, txn, leader = id_](ZabServer& f) {
          f.on_propose(epoch, txn, sim::NodeId{});
          (void)leader;
        },
        sim::MsgKind::ZabProposal);
  }
  return done.future();
}

void ZabServer::on_propose(int64_t epoch, Txn txn, sim::NodeId /*from*/) {
  if (epoch < epoch_) return;  // stale leader
  if (epoch > epoch_) {
    epoch_ = epoch;
  }
  last_heartbeat_seen_ = sim().now();
  int64_t zxid = txn.zxid;
  // Follower durability: fsync, then ack to the leader.
  disk_.write_sync(txn.bytes(), [this, epoch, zxid] {
    size_t small = cfg().overhead_bytes;
    ensemble_.post(
        node_, leader_id_, small,
        [epoch, zxid](ZabServer& l) { l.on_ack(epoch, zxid); },
        sim::MsgKind::ZabAck);
  });
}

void ZabServer::on_ack(int64_t epoch, int64_t zxid) {
  if (epoch != epoch_ || !is_leader()) return;
  auto it = pending_.find(zxid);
  if (it == pending_.end()) return;
  it->second.acks += 1;
  try_commit();
}

void ZabServer::try_commit() {
  // Zab delivers strictly in zxid order: commit from the front of the
  // pending window only.
  while (!pending_.empty()) {
    auto it = pending_.begin();
    if (it->second.acks < ensemble_.quorum()) break;
    Txn txn = it->second.txn;
    sim::Promise<bool> done = it->second.done;
    pending_.erase(it);
    last_committed_ = txn.zxid;
    apply(txn);
    size_t bytes = txn.bytes() + cfg().overhead_bytes;
    int64_t epoch = epoch_;
    for (int i = 0; i < ensemble_.num_servers(); ++i) {
      if (i == id_) continue;
      ensemble_.post(
          node_, i, bytes,
          [epoch, txn](ZabServer& f) { f.on_commit(epoch, txn); },
          sim::MsgKind::ZabCommit);
    }
    done.set_value(true);
  }
}

void ZabServer::apply(const Txn& txn) {
  if (txn.deleted) {
    tree_.erase(txn.path);
  } else {
    tree_[txn.path] = txn.data;
  }
  last_applied_ = std::max(last_applied_, txn.zxid);
  ++applied_count_;
  if (record_applied_) applied_zxids_.push_back(txn.zxid);
  while (!apply_waiters_.empty() &&
         apply_waiters_.begin()->first <= last_applied_) {
    apply_waiters_.begin()->second.set_value(true);
    apply_waiters_.erase(apply_waiters_.begin());
  }
}

void ZabServer::reply_when_applied(int64_t zxid, sim::Promise<bool> reply) {
  if (last_applied_ >= zxid) {
    reply.set_value(true);
  } else {
    apply_waiters_.emplace(zxid, std::move(reply));
  }
}

void ZabServer::on_commit(int64_t epoch, Txn txn) {
  if (epoch < epoch_) return;
  if (epoch > epoch_) {
    // New leader: adopt and fast-forward (log sync elided; see header).
    epoch_ = epoch;
    commit_buffer_.clear();
    apply(txn);
    return;
  }
  if (txn.zxid <= last_applied_) return;
  commit_buffer_.emplace(txn.zxid, txn);
  // Apply in order; Zab guarantees gap-free delivery per epoch.
  while (!commit_buffer_.empty() &&
         commit_buffer_.begin()->first == last_applied_ + 1) {
    apply(commit_buffer_.begin()->second);
    commit_buffer_.erase(commit_buffer_.begin());
  }
}

void ZabServer::on_heartbeat(int64_t epoch, int leader_id) {
  if (epoch < epoch_) return;
  epoch_ = epoch;
  leader_id_ = leader_id;
  last_heartbeat_seen_ = sim().now();
}

void ZabServer::maybe_elect() {
  // Simplified election (documented): the highest-id live server takes over
  // with a fresh epoch.  Leader election mechanics are not the paper's
  // subject; this provides the stable-leader property plus failover.
  int highest_live = -1;
  for (int i = ensemble_.num_servers() - 1; i >= 0; --i) {
    if (!ensemble_.server(i).down()) {
      highest_live = i;
      break;
    }
  }
  if (highest_live != id_) return;
  epoch_ += 1;
  leader_id_ = id_;
  next_zxid_ = last_applied_ + 1;
  pending_.clear();
  int64_t epoch = epoch_;
  for (int i = 0; i < ensemble_.num_servers(); ++i) {
    if (i == id_) continue;
    ensemble_.post(
        node_, i, cfg().overhead_bytes,
        [epoch, me = id_](ZabServer& f) { f.on_heartbeat(epoch, me); },
        sim::MsgKind::ZabElection);
  }
}

void ZabServer::election_tick() {
  if (down()) return;
  if (is_leader()) {
    int64_t epoch = epoch_;
    for (int i = 0; i < ensemble_.num_servers(); ++i) {
      if (i == id_) continue;
      ensemble_.post(
          node_, i, cfg().overhead_bytes,
          [epoch, me = id_](ZabServer& f) { f.on_heartbeat(epoch, me); },
          sim::MsgKind::ZabHeartbeat);
    }
  } else if (sim().now() - last_heartbeat_seen_ > cfg().election_timeout) {
    maybe_elect();
  }
}

sim::Task<Status> ZabServer::set_data(Key path, Value data) {
  co_return co_await write(std::move(path), std::move(data), false);
}

sim::Task<Status> ZabServer::write(Key path, Value data, bool deleted) {
  sim::OpSpan span(sim(), "zab.write", site_, node_, path);
  if (down()) co_return OpStatus::Timeout;
  Txn txn(0, std::move(path), std::move(data), deleted);
  if (is_leader()) {
    auto committed = co_await sim::await_with_timeout<bool>(
        sim(), broadcast(std::move(txn)), cfg().op_timeout);
    co_return committed.has_value() ? Status::Ok()
                                    : Status::Err(OpStatus::Timeout);
  }
  // Forward to the leader; it acknowledges with the assigned zxid once the
  // txn commits, and we reply to the client only after our own local
  // commit of that zxid (read-your-writes at the connected server).
  sim::Promise<bool> local_commit(sim());
  // Forward-to-leader and commit-notify: one extra WAN round trip.
  sim::trace_rtts(sim(), 1);
  size_t bytes = txn.bytes() + cfg().overhead_bytes;
  ensemble_.post(node_, leader_id_, bytes,
                 [txn, local_commit, back = id_](ZabServer& l) {
                   if (!l.is_leader()) return;  // stale view; client times out
                   int64_t zxid = 0;
                   auto fut = l.broadcast(txn, &zxid);
                   fut.on_value([&l, local_commit, back, zxid](const bool&) {
                     l.ensemble_.post(
                         l.node_, back, l.cfg().overhead_bytes,
                         [local_commit, zxid](ZabServer& f) {
                           f.reply_when_applied(zxid, local_commit);
                         });
                   });
                 });
  auto done = co_await sim::await_with_timeout<bool>(
      sim(), local_commit.future(), cfg().op_timeout);
  co_return done.has_value() ? Status::Ok() : Status::Err(OpStatus::Timeout);
}

sim::Task<Result<Value>> ZabServer::get_data(Key path) {
  // Zookeeper reads are served locally by the connected server.
  sim::OpSpan span(sim(), "zab.read", site_, node_, path);
  if (down()) co_return Result<Value>::Err(OpStatus::Timeout);
  sim::Promise<Result<Value>> p(sim());
  service_.submit(path.size() + 64, [this, path, p] {
    auto it = tree_.find(path);
    p.set_value(it == tree_.end() ? Result<Value>::Err(OpStatus::NotFound)
                                  : Result<Value>::Ok(it->second));
  });
  co_return co_await p.future();
}

sim::Task<Result<Value>> ZabServer::sync_get_data(Key path) {
  if (down()) co_return Result<Value>::Err(OpStatus::Timeout);
  // sync(): a null broadcast flushes the leader pipeline to this server,
  // then the local read is current.
  auto flush = co_await set_data("!sync", Value("1"));
  if (!flush.ok()) co_return Result<Value>::Err(flush.status());
  co_return co_await get_data(std::move(path));
}

sim::Task<Status> ZabServer::remove(Key path) {
  co_return co_await write(std::move(path), Value(), true);
}

sim::Task<Result<Key>> ZabServer::create_sequential(Key prefix, Value data) {
  sim::OpSpan span(sim(), "zab.create_sequential", site_, node_, prefix);
  // The sequence number must be leader-assigned and unique; reuse the zxid
  // by writing a reservation znode first, then renaming is overkill — we
  // instead route a write whose final path embeds the commit zxid.  The
  // simple, faithful construction: one ordinary write to a reservation
  // path, then read our own zxid back via the applied tree.  To keep it a
  // single round (as the real recipe is), the leader stamps the path at
  // proposal time; followers apply the stamped path.
  if (down()) co_return Result<Key>::Err(OpStatus::Timeout);
  // Forward-to-leader with a special marker: the leader rewrites the path
  // to prefix + zero-padded zxid before broadcasting.
  sim::Promise<Result<Key>> done(sim());
  size_t bytes = prefix.size() + data.size() + cfg().overhead_bytes;
  ensemble_.post(node_, leader_id_, bytes,
                 [prefix, data, done, back = id_](ZabServer& l) {
                   if (!l.is_leader()) return;  // client retries on timeout
                   char buf[16];
                   std::snprintf(buf, sizeof(buf), "%010lld",
                                 static_cast<long long>(l.next_zxid_));
                   Key path = prefix + buf;
                   int64_t zxid = 0;
                   auto fut = l.broadcast(Txn(0, path, data, false), &zxid);
                   fut.on_value([&l, done, back, path, zxid](const bool&) {
                     l.ensemble_.post(l.node_, back, l.cfg().overhead_bytes,
                                      [done, path, zxid](ZabServer& f) {
                                        sim::Promise<bool> applied(f.sim());
                                        f.reply_when_applied(zxid, applied);
                                        applied.future().on_value(
                                            [done, path](const bool&) {
                                              done.set_value(
                                                  Result<Key>::Ok(path));
                                            });
                                      });
                   });
                 });
  auto got = co_await sim::await_with_timeout<Result<Key>>(
      sim(), done.future(), cfg().op_timeout);
  if (!got) co_return Result<Key>::Err(OpStatus::Timeout);
  co_return *got;
}

sim::Task<Result<std::vector<Key>>> ZabServer::sync_list(Key prefix) {
  if (down()) co_return Result<std::vector<Key>>::Err(OpStatus::Timeout);
  // sync(): flush the leader pipeline to this server so the listing is
  // current, then scan the local tree.
  auto flush = co_await set_data("!sync", Value("1"));
  if (!flush.ok()) co_return Result<std::vector<Key>>::Err(flush.status());
  sim::Promise<std::vector<Key>> p(sim());
  service_.submit(prefix.size() + 128, [this, prefix, p] {
    std::vector<Key> out;
    for (const auto& [k, v] : tree_) {
      (void)v;
      if (k.rfind(prefix, 0) == 0) out.push_back(k);
    }
    std::sort(out.begin(), out.end());
    p.set_value(std::move(out));
  });
  co_return Result<std::vector<Key>>::Ok(co_await p.future());
}

void ZabServer::set_down(bool down) {
  service_.set_down(down);
  disk_.set_down(down);
  ensemble_.network().set_node_down(node_, down);
  if (down) {
    pending_.clear();
    commit_buffer_.clear();
  } else {
    last_heartbeat_seen_ = sim().now();
  }
}

// ---- ZabEnsemble ------------------------------------------------------------

ZabEnsemble::ZabEnsemble(sim::Simulation& sim, sim::Network& net,
                         ZabConfig cfg, const std::vector<int>& server_sites)
    : sim_(sim), net_(net), cfg_(cfg) {
  int id = 0;
  for (int site : server_sites) {
    sim::NodeId node = net_.add_node(site);
    servers_.push_back(std::make_unique<ZabServer>(*this, node, site, id));
    ++id;
  }
  // The initial leader is the highest-id server (as after a fresh election).
  // Set only after every server exists so all views agree.
  for (auto& s : servers_) s->leader_id_ = num_servers() - 1;
}

ZabServer& ZabEnsemble::server_at_site(int site) {
  for (auto& s : servers_) {
    if (s->site() == site && !s->down()) return *s;
  }
  return *servers_.front();
}

ZabServer* ZabEnsemble::leader() {
  for (auto& s : servers_) {
    if (s->is_leader()) return s.get();
  }
  return nullptr;
}

void ZabEnsemble::start() {
  for (auto& s : servers_) {
    ZabServer* srv = s.get();
    srv->last_heartbeat_seen_ = sim_.now();
    if (srv->election_loop_running_) continue;
    srv->election_loop_running_ = true;
    schedule_tick(srv);
  }
}

void ZabEnsemble::schedule_tick(ZabServer* srv) {
  // Self-rescheduling timer event (not a coroutine: the simulation frees
  // queued events on destruction, so nothing outlives the run).
  sim_.schedule(cfg_.heartbeat, [this, srv] {
    srv->election_tick();
    schedule_tick(srv);
  });
}

// ---- ZkClient ---------------------------------------------------------------

namespace {

/// Server-side write wrapper: runs setData and ships the status back.
sim::Task<void> serve_set(ZabServer& s, Key path, Value data,
                          sim::NodeId client, sim::Promise<Status> reply) {
  Status st = co_await s.set_data(std::move(path), std::move(data));
  s.ensemble().network().send(
      s.node(), client, 64, [reply, st] { reply.set_value(st); },
      sim::MsgKind::ClientReply);
}

/// Server-side read wrapper.
sim::Task<void> serve_get(ZabServer& s, Key path, sim::NodeId client,
                          sim::Promise<Result<Value>> reply) {
  auto r = co_await s.get_data(std::move(path));
  size_t bytes = 64 + (r.ok() ? r.value().size() : 0);
  s.ensemble().network().send(
      s.node(), client, bytes, [reply, r] { reply.set_value(r); },
      sim::MsgKind::ClientReply);
}

}  // namespace

ZkClient::ZkClient(ZabEnsemble& ensemble, int site)
    : ensemble_(ensemble),
      site_(site),
      node_(ensemble.network().add_node(site)) {}

sim::Task<Status> ZkClient::set_data(Key path, Value data) {
  sim::OpSpan span(ensemble_.simulation(), "zk.set_data", site_, node_, path);
  // Ship the request to the nearest live server, which runs the write and
  // replies; retry a few times on timeouts (e.g. across a failover).
  for (int attempt = 0; attempt < 8; ++attempt) {
    ZabServer& server = ensemble_.server_at_site(site_);
    ZabServer* srv = &server;
    sim::Promise<Status> reply(ensemble_.simulation());
    size_t bytes =
        path.size() + data.size() + ensemble_.config().overhead_bytes;
    ensemble_.network().send(
        node_, server.node(), bytes,
        [srv, path, data, reply, me = node_, bytes] {
          srv->service().submit(bytes, [srv, path, data, reply, me] {
            sim::spawn(srv->ensemble().simulation(),
                       serve_set(*srv, path, data, me, reply));
          });
        },
        sim::MsgKind::ClientRequest);
    auto got = co_await sim::await_with_timeout<Status>(
        ensemble_.simulation(), reply.future(), ensemble_.config().op_timeout);
    if (got.has_value() && got->ok()) co_return *got;
    co_await sim::sleep_for(ensemble_.simulation(), sim::ms(50));
  }
  co_return OpStatus::Timeout;
}

sim::Task<Result<Value>> ZkClient::get_data(Key path) {
  sim::OpSpan span(ensemble_.simulation(), "zk.get_data", site_, node_, path);
  ZabServer& server = ensemble_.server_at_site(site_);
  ZabServer* srv = &server;
  sim::Promise<Result<Value>> reply(ensemble_.simulation());
  size_t bytes = path.size() + ensemble_.config().overhead_bytes;
  ensemble_.network().send(
      node_, server.node(), bytes,
      [srv, path, reply, me = node_, bytes] {
        srv->service().submit(bytes, [srv, path, reply, me] {
          sim::spawn(srv->ensemble().simulation(),
                     serve_get(*srv, path, me, reply));
        });
      },
      sim::MsgKind::ClientRequest);
  auto got = co_await sim::await_with_timeout<Result<Value>>(
      ensemble_.simulation(), reply.future(), ensemble_.config().op_timeout);
  if (!got) co_return Result<Value>::Err(OpStatus::Timeout);
  co_return *got;
}

}  // namespace music::zab
