#include "zab/zk_lock.h"

namespace music::zab {

sim::Task<Status> ZkLock::acquire(sim::Duration poll_backoff, int max_polls) {
  if (held_) co_return Status::Ok();
  if (my_node_.empty()) {
    auto created = co_await server_.create_sequential(prefix_, Value("1"));
    if (!created.ok()) co_return created.status();
    my_node_ = created.value();
  }
  for (int poll = 0; poll < max_polls; ++poll) {
    auto children = co_await server_.sync_list(prefix_);
    if (!children.ok()) co_return children.status();
    if (!children.value().empty() && children.value().front() == my_node_) {
      held_ = true;
      co_return Status::Ok();
    }
    // Not the lowest sequence: the real recipe watches the predecessor;
    // poll with back-off instead.
    co_await sim::sleep_for(server_.ensemble().simulation(), poll_backoff);
  }
  co_return OpStatus::Timeout;
}

sim::Task<Status> ZkLock::release() {
  held_ = false;
  if (my_node_.empty()) co_return Status::Ok();
  Key node = my_node_;
  my_node_.clear();
  co_return co_await server_.remove(node);
}

}  // namespace music::zab
