// A minimal HTTP/1.1 server over the EventLoop, for the REST gateway's
// real-socket deployment (music_gateway).  Supports what the gateway and
// its probes need and nothing more: request line + headers + Content-Length
// bodies, keep-alive, one request at a time per connection.
//
// The handler is asynchronous: it receives the request plus a respond
// callback, because gateway verbs are sim coroutines that suspend on the
// wire.  A connection parses no further requests until the in-flight one is
// answered.  The respond callback tolerates its connection having died in
// the meantime (the response is dropped) but must not outlive the server —
// handlers resume from the same EventLoop the server runs on, so stopping
// the loop before destroying the server guarantees that.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/event_loop.h"

namespace music::net {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // as sent, e.g. "/v1/music"
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

class HttpServer {
 public:
  /// Called with the response when the handler is done (any thread-free
  /// context; the server is single-threaded over its EventLoop).
  using Respond = std::function<void(HttpResponse)>;
  using Handler = std::function<void(const HttpRequest&, Respond)>;

  HttpServer(EventLoop& loop, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral).  Returns the bound port, or 0
  /// on failure.
  uint16_t listen(uint16_t port);

 private:
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    bool busy = false;  // a request is in flight; parse no further
    std::string inbuf;
    std::string outbuf;
  };

  void on_accept(uint32_t events);
  void on_conn_io(uint64_t conn_id, uint32_t events);
  void close_conn(uint64_t conn_id);
  /// Parses and serves complete requests in the buffer; false = malformed
  /// (caller kills the connection).
  bool drain(Conn& c);
  /// Completion path for an async handler: writes the response on conn
  /// `conn_id` (no-op if it is gone) and resumes parsing.
  void finish(uint64_t conn_id, HttpResponse resp);
  void flush(Conn& c);

  EventLoop& loop_;
  Handler handler_;
  int listen_fd_ = -1;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;
};

}  // namespace music::net
