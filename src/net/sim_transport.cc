#include "net/sim_transport.h"

#include <utility>

namespace music::net {

// NOTE on both paths below: the schedule sequence (network hops, service
// submits, their costs and kinds) must stay exactly what protocol code
// issued before the transport seam existed — the determinism goldens pin
// seeded runs bit-for-bit.  Change the event shape here and every golden
// moves.

sim::Future<wire::Response> SimTransport::invoke(PeerId self, PeerId peer,
                                                wire::Request req,
                                                size_t overhead_bytes) {
  sim::Promise<wire::Response> reply(sim_);
  size_t framed = req.bytes() + overhead_bytes;
  size_t serve_bytes = req.bytes();  // CPU cost excludes framing overhead
  net_.send(
      self, peer, framed,
      [this, self, peer, serve_bytes, reply,
       req = std::move(req)]() mutable {
        auto it = endpoints_.find(peer);
        if (it == endpoints_.end() || it->second.service == nullptr) return;
        SimEndpoint* ep = &it->second;
        ep->service->submit(serve_bytes, [this, self, peer, reply, ep,
                                          req = std::move(req)]() mutable {
          if (!ep->serve_request) return;
          RespondFn respond = [this, self, peer,
                               reply](wire::Response resp) {
            size_t bytes = resp.bytes();
            net_.send(
                peer, self, bytes,
                [reply, resp = std::move(resp)] { reply.set_value(resp); },
                sim::MsgKind::ClientReply);
          };
          ep->serve_request(std::move(req), std::move(respond));
        });
      },
      sim::MsgKind::ClientRequest);
  return reply.future();
}

sim::Future<wire::StoreReply> SimTransport::store_call(
    PeerId self, PeerId peer, wire::StoreRequest msg, size_t bytes,
    size_t reply_bytes, size_t overhead_bytes, sim::MsgKind kind,
    sim::MsgKind reply_kind) {
  sim::Promise<wire::StoreReply> p(sim_);
  size_t framed = bytes + overhead_bytes;
  size_t reply_framed = reply_bytes + overhead_bytes;
  auto deliver = [this, self, peer, framed, reply_framed, p, reply_kind,
                  msg = std::move(msg)]() mutable {
    auto it = endpoints_.find(peer);
    if (it == endpoints_.end() || it->second.service == nullptr) return;
    SimEndpoint* ep = &it->second;
    ep->service->submit(framed, [this, self, peer, reply_framed, p, reply_kind,
                                 ep, msg = std::move(msg)]() mutable {
      wire::StoreReply r = ep->serve_store(msg);
      if (peer == self) {
        p.set_value(std::move(r));  // loopback reply: no network hop
      } else {
        net_.send(
            peer, self, reply_framed,
            [p, r = std::move(r)]() mutable { p.set_value(std::move(r)); },
            reply_kind);
      }
    });
  };
  if (peer == self) {
    // Loopback: skip the network but still pay the service cost.
    deliver();
  } else {
    net_.send(self, peer, framed, std::move(deliver), kind);
  }
  return p.future();
}

bool SimTransport::peer_up(PeerId peer) const {
  auto it = endpoints_.find(peer);
  return it != endpoints_.end() && it->second.service != nullptr &&
         !it->second.service->down();
}

}  // namespace music::net
