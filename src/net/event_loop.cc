#include "net/event_loop.h"

#include <sys/epoll.h>
#include <time.h>
#include <unistd.h>

#include <vector>

#include "sim/time.h"

namespace music::net {

namespace {

int64_t monotonic_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

EventLoop::EventLoop(sim::Simulation& sim)
    : sim_(sim), epfd_(epoll_create1(0)), start_ns_(monotonic_ns()) {}

EventLoop::~EventLoop() {
  if (epfd_ >= 0) close(epfd_);
}

sim::Time EventLoop::elapsed_us() const {
  return (monotonic_ns() - start_ns_) / 1000;
}

void EventLoop::add_fd(int fd, uint32_t events, IoFn fn) {
  auto holder = std::make_unique<IoFn>(std::move(fn));
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  handlers_[fd] = std::move(holder);
}

void EventLoop::mod_fd(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::del_fd(int fd) {
  epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::advance_sim() {
  // Run due timers, then pin the sim clock to wall time so everything
  // protocol code schedules "now" lands in the present.
  sim_.run_until(elapsed_us());
}

void EventLoop::poll_once(int timeout_ms) {
  advance_sim();
  sim::Time next = sim_.peek_next_event_at();
  if (next != sim::kTimeNever) {
    sim::Time gap_us = next - elapsed_us();
    int ms = gap_us <= 0 ? 0 : static_cast<int>(gap_us / 1000 + 1);
    if (ms < timeout_ms) timeout_ms = ms;
  }
  epoll_event events[64];
  int n = epoll_wait(epfd_, events, 64, timeout_ms);
  for (int i = 0; i < n; ++i) {
    // Re-look-up per event: an earlier handler in this batch may have
    // removed (or replaced) this fd.
    auto it = handlers_.find(events[i].data.fd);
    if (it == handlers_.end()) continue;
    IoFn* fn = it->second.get();
    (*fn)(events[i].events);
  }
  advance_sim();
}

void EventLoop::run() {
  running_ = 1;
  while (running_) {
    // 50ms cap keeps stop() (e.g. from a signal handler) responsive even
    // with no sockets and no sim timers pending.
    poll_once(50);
  }
}

}  // namespace music::net
