// The messaging seam: protocol code sends wire messages through this API
// and never touches a concrete backend.
//
// Two implementations exist:
//   * SimTransport (net/sim_transport.h) — a thin adapter over sim::Network
//     + sim::ServiceNode that moves the structs in-memory.  Its event
//     sequence is exactly the one protocol code used to issue directly, so
//     every seeded test and determinism golden stays bit-identical.
//   * TcpTransport (net/tcp.h) — an epoll event-loop backend that frames
//     the same structs through wire/codec.h over real sockets, with
//     reconnect and per-peer write queues (the musicd deployment path).
//
// The loss model is the sim's: a request or reply that is dropped (dead
// peer, severed connection) leaves the returned future unfulfilled forever.
// Callers already bound every wait with await_with_timeout/await_count, so
// both backends get the §III failure semantics for free.
//
// PeerId is the sim's NodeId namespace: over TCP, each process assigns the
// same ids the equivalent sim world would (the musicd topology builds the
// full StoreCluster locally, so ids agree across processes by construction).
#pragma once

#include <cstddef>
#include <functional>

#include "sim/future.h"
#include "sim/network.h"
#include "wire/messages.h"

namespace music::net {

/// A transport endpoint address: a node of the messaging fabric.
using PeerId = sim::NodeId;

/// Completes a served client request (ships the Response back to the
/// caller).  May be invoked from a coroutine any time after the serve
/// callback returned.
using RespondFn = std::function<void(wire::Response)>;

/// Serves one client-seam request.  The implementation dispatches (usually
/// spawning a coroutine) and calls `respond` exactly once when the response
/// is ready; dropping `respond` without calling it models a crashed server
/// (the caller times out).
using ServeRequestFn = std::function<void(wire::Request, RespondFn)>;

/// Serves one store-seam request synchronously: replica-side handlers
/// (apply_write, local_read, the Paxos phases) are plain state transitions,
/// so the reply is computed inline on the serving node.
using ServeStoreFn = std::function<wire::StoreReply(const wire::StoreRequest&)>;

/// The abstract messaging API.  Byte counts are supplied by the caller (the
/// protocol layer knows its framing economics); `overhead_bytes` is the
/// per-message framing surcharge applied to network transfer (but not to
/// the serving node's CPU cost, matching the sim's historical accounting).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Client seam: sends `req` from `self` to the serving peer and resolves
  /// with its Response.  Never fulfilled on loss — bound the wait.
  virtual sim::Future<wire::Response> invoke(PeerId self, PeerId peer,
                                             wire::Request req,
                                             size_t overhead_bytes) = 0;

  /// Store seam: sends `msg` from `self` to replica `peer` and resolves
  /// with its StoreReply.  `bytes`/`reply_bytes` are the request/reply
  /// payload costs; `kind`/`reply_kind` tag the hops for per-type network
  /// counters.  A self-call (peer == self) skips the network but still pays
  /// the serving cost.  Never fulfilled on loss — bound the wait.
  virtual sim::Future<wire::StoreReply> store_call(
      PeerId self, PeerId peer, wire::StoreRequest msg, size_t bytes,
      size_t reply_bytes, size_t overhead_bytes, sim::MsgKind kind,
      sim::MsgKind reply_kind) = 0;

  /// Whether `peer`'s process is accepting work (replica-selection hint;
  /// the sim backend reads the service-node crash flag, TCP reads the
  /// connection state).  Advisory: a send to a down peer is simply lost.
  virtual bool peer_up(PeerId peer) const = 0;

  /// Whether messages from `self` currently reach `peer` (link-level:
  /// partitions and blackholes count, queueing does not).  Drives hinted
  /// handoff — a write coordinator leaves a hint instead of sending into a
  /// known-dead link.
  virtual bool reachable(PeerId self, PeerId peer) const = 0;
};

}  // namespace music::net
