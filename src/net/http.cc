#include "net/http.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

namespace music::net {

namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kMaxBodyBytes = 16 * 1024 * 1024;

bool set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

const char* reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 409: return "Conflict";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Status";
  }
}

}  // namespace

HttpServer::HttpServer(EventLoop& loop, Handler handler)
    : loop_(loop), handler_(std::move(handler)) {}

HttpServer::~HttpServer() {
  if (listen_fd_ >= 0) {
    loop_.del_fd(listen_fd_);
    close(listen_fd_);
  }
  for (auto& [id, c] : conns_) {
    loop_.del_fd(c->fd);
    close(c->fd);
  }
}

uint16_t HttpServer::listen(uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_fd_ = fd;
  loop_.add_fd(fd, EPOLLIN, [this](uint32_t ev) { on_accept(ev); });
  return ntohs(addr.sin_port);
}

void HttpServer::on_accept(uint32_t) {
  while (true) {
    int cfd = accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) break;
    if (!set_nonblocking(cfd)) {
      close(cfd);
      continue;
    }
    int one = 1;
    setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t cid = next_conn_id_++;
    auto conn = std::make_unique<Conn>();
    conn->id = cid;
    conn->fd = cfd;
    conns_[cid] = std::move(conn);
    loop_.add_fd(cfd, EPOLLIN,
                 [this, cid](uint32_t ev) { on_conn_io(cid, ev); });
  }
}

void HttpServer::close_conn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  loop_.del_fd(it->second->fd);
  close(it->second->fd);
  conns_.erase(it);
}

void HttpServer::on_conn_io(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(conn_id);
    return;
  }
  if (events & EPOLLIN) {
    char buf[16384];
    while (true) {
      ssize_t n = read(c.fd, buf, sizeof(buf));
      if (n > 0) {
        c.inbuf.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_conn(conn_id);
      return;
    }
    if (!drain(c)) {
      close_conn(conn_id);
      return;
    }
  }
  if (events & EPOLLOUT) flush(c);
}

bool HttpServer::drain(Conn& c) {
  uint64_t cid = c.id;
  while (!c.busy) {
    size_t hdr_end = c.inbuf.find("\r\n\r\n");
    if (hdr_end == std::string::npos) {
      return c.inbuf.size() <= kMaxHeaderBytes;  // oversized headers: kill
    }
    // Request line: METHOD SP PATH SP VERSION.
    size_t line_end = c.inbuf.find("\r\n");
    std::string line = c.inbuf.substr(0, line_end);
    size_t sp1 = line.find(' ');
    size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                          : line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) return false;
    HttpRequest req;
    req.method = line.substr(0, sp1);
    req.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    // Content-Length (case-insensitive scan of the header block).
    size_t body_len = 0;
    {
      std::string headers = c.inbuf.substr(line_end + 2, hdr_end - line_end);
      for (auto& ch : headers) {
        ch = static_cast<char>(
            ch >= 'A' && ch <= 'Z' ? ch - 'A' + 'a' : ch);
      }
      size_t pos = headers.find("content-length:");
      if (pos != std::string::npos) {
        body_len = static_cast<size_t>(
            strtoul(headers.c_str() + pos + 15, nullptr, 10));
        if (body_len > kMaxBodyBytes) return false;
      }
    }
    size_t total = hdr_end + 4 + body_len;
    if (c.inbuf.size() < total) return true;  // body still in flight
    req.body = c.inbuf.substr(hdr_end + 4, body_len);
    c.inbuf.erase(0, total);

    // Hand off to the (possibly async) handler.  A synchronous handler
    // calls finish() before handler_ returns — busy flips back and the
    // loop picks up any pipelined request; an async one leaves busy set
    // and parsing pauses until its respond callback fires.
    c.busy = true;
    handler_(req, [this, cid](HttpResponse resp) {
      finish(cid, std::move(resp));
    });
    // finish() may have closed the connection (malformed pipelined data);
    // `c` is dangling then — re-check before touching it again.
    if (conns_.find(cid) == conns_.end()) return true;
  }
  return true;
}

void HttpServer::finish(uint64_t conn_id, HttpResponse resp) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // connection died while the handler ran
  Conn& c = *it->second;
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    reason_for(resp.status) +
                    "\r\nContent-Type: " + resp.content_type +
                    "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                    "\r\n\r\n" + resp.body;
  c.outbuf.append(out);
  flush(c);
  c.busy = false;
  if (!drain(c)) close_conn(conn_id);
}

void HttpServer::flush(Conn& c) {
  while (!c.outbuf.empty()) {
    // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the server.
    ssize_t n = send(c.fd, c.outbuf.data(), c.outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c.outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return;  // hard error: EPOLLHUP tears the connection down
  }
  loop_.mod_fd(c.fd, EPOLLIN | (c.outbuf.empty() ? 0u : uint32_t{EPOLLOUT}));
}

}  // namespace music::net
