// SimTransport: the deterministic in-memory Transport backend.
//
// A registry of endpoints (service node + serve callbacks, keyed by the
// sim NodeId) over one sim::Network.  Messages are moved as structs — no
// serialization — and every hop replicates, event for event, the sequence
// protocol code issued before the seam existed:
//
//   invoke:      net.send(req.bytes()+overhead)  ->  service.submit(req.bytes())
//                -> serve_request -> net.send(resp.bytes()) -> promise
//   store_call:  net.send(bytes+overhead) -> service.submit(bytes+overhead)
//                -> serve_store -> net.send(reply_bytes+overhead) -> promise
//                (self-calls skip both network hops but pay the service cost)
//
// Because the schedule calls (count, order, costs, message kinds) are
// unchanged, seeded runs through SimTransport are bit-identical to the
// pre-seam tree — the property the determinism goldens pin.
#pragma once

#include <unordered_map>

#include "net/transport.h"
#include "sim/service.h"

namespace music::net {

/// One registered node of the fabric.
struct SimEndpoint {
  /// The serving node's compute model (queueing + crash flag).  Required.
  sim::ServiceNode* service = nullptr;
  /// Client-seam handler (null for store-only nodes).
  ServeRequestFn serve_request;
  /// Store-seam handler (null for client-seam-only nodes).
  ServeStoreFn serve_store;
};

class SimTransport final : public Transport {
 public:
  SimTransport(sim::Simulation& sim, sim::Network& net)
      : sim_(sim), net_(net) {}

  /// Registers (or replaces) the endpoint for `node`.
  void bind(PeerId node, SimEndpoint ep) { endpoints_[node] = std::move(ep); }

  sim::Future<wire::Response> invoke(PeerId self, PeerId peer,
                                     wire::Request req,
                                     size_t overhead_bytes) override;

  sim::Future<wire::StoreReply> store_call(PeerId self, PeerId peer,
                                           wire::StoreRequest msg, size_t bytes,
                                           size_t reply_bytes,
                                           size_t overhead_bytes,
                                           sim::MsgKind kind,
                                           sim::MsgKind reply_kind) override;

  bool peer_up(PeerId peer) const override;

  bool reachable(PeerId self, PeerId peer) const override {
    return net_.deliverable(self, peer);
  }

  sim::Simulation& simulation() { return sim_; }
  sim::Network& network() { return net_; }

 private:
  sim::Simulation& sim_;
  sim::Network& net_;
  std::unordered_map<PeerId, SimEndpoint> endpoints_;
};

}  // namespace music::net
