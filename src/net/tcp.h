// TcpTransport: the real-socket Transport backend (the musicd deployment
// path).
//
// The same wire structs protocol code hands to SimTransport are framed
// through wire/codec.h and shipped over non-blocking TCP driven by an
// EventLoop.  Topology is explicit and per-node:
//
//   * listen_for(id, port, ...) — serve node `id`'s seams on a listening
//     socket (one port per hosted node, so frames need no addressing
//     beyond the connection they arrive on);
//   * bind_local(id, ...)      — serve node `id` in-process only
//     (self-calls and co-hosted nodes short-circuit, no socket);
//   * route(id, host, port)    — reach remote node `id` at host:port over
//     one outbound connection, auto-reconnecting with decorrelated-jitter
//     backoff.
//
// Version handshake (docs/TRANSPORT.md): both sides of every connection send
// a Hello frame advertising their [min,max] wire-version range the moment
// the connection is up; the highest common version is pinned for the
// connection's lifetime and stamps every subsequent frame.  No payload frame
// moves in either direction until the peer's Hello has arrived, so a v2 node
// never shows a v2 frame to a v1 peer.  A malformed or incompatible Hello
// kills only that connection (outbound routes keep retrying with backoff —
// the peer may restart onto a compatible binary).
//
// Loss model matches the sim's for requests that never made it onto a
// connection: sent while the route is down → future unfulfilled, caller's
// await times out.  Requests that WERE in flight when their connection died
// (peer crash, Goodbye drain, framing violation) are instead failed fast
// with a retryable result — Response{Timeout} on the client seam, a
// StoreReply nack on the store seam — never silently lost and never
// resent by the transport (retry stays the caller's decision, so nothing is
// duplicated).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "net/transport.h"
#include "sim/rng.h"
#include "wire/codec.h"

namespace music::net {

/// Tuning knobs for a TcpTransport.  Defaults match production; tests narrow
/// them to provoke rejections (a tiny frame limit, a pinned version range).
struct TcpOptions {
  /// Wire-version range advertised in Hellos and accepted from peers.
  /// Narrowing max to 1 makes this process a "v1 binary" for mixed-version
  /// fleets (musicd --wire-max-version).
  uint8_t wire_version_min = wire::kWireVersionMin;
  uint8_t wire_version_max = wire::kWireVersionMax;
  /// Per-connection inbound frame ceiling; larger length prefixes are
  /// rejected with FrameStatus::TooLarge and the connection is dropped.
  uint32_t max_frame_bytes = wire::kMaxFrameBytes;
  /// Reconnect backoff window: decorrelated jitter in [base, cap]
  /// (sim::decorrelated_backoff — the same scheme as client retries).
  sim::Duration reconnect_backoff_base = sim::ms(50);
  sim::Duration reconnect_backoff_cap = sim::ms(2000);
  /// Seed for the backoff jitter stream (deterministic under the sim clock).
  uint64_t backoff_seed = 0x7C93;
  /// Node id stamped into outgoing Hellos, for the peer's diagnostics.
  uint32_t hello_node = 0;
};

/// Per-route diagnostics surfaced in GET /v1/status and the metrics
/// registry: which wire version each live connection negotiated and how
/// churned the route has been.
struct PeerInfo {
  PeerId id = -1;
  bool connected = false;     // handshake complete, requests flowing
  uint8_t wire_version = 0;   // negotiated version; 0 until established
  uint64_t reconnects = 0;    // successful re-establishments after the first
  uint64_t handshake_failures = 0;  // Hellos rejected (malformed/incompatible)
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(EventLoop& loop, TcpOptions options = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Serves node `id` on a listening TCP socket bound to 127.0.0.1:`port`
  /// (0 = ephemeral).  Also registers the handlers as a local endpoint, so
  /// in-process calls to `id` short-circuit.  Returns the bound port, or 0
  /// on failure.
  uint16_t listen_for(PeerId id, uint16_t port, ServeRequestFn serve_request,
                      ServeStoreFn serve_store);

  /// Registers node `id` as served in-process, without a socket.
  void bind_local(PeerId id, ServeRequestFn serve_request,
                  ServeStoreFn serve_store);

  /// Routes calls for node `id` to the process listening at host:port.
  /// Connects immediately and reconnects with jittered backoff after any
  /// failure.
  void route(PeerId id, std::string host, uint16_t port);

  /// Graceful-drain notice: sends a Goodbye frame on every established
  /// connection whose negotiated version carries it (v2+), then fails this
  /// side's in-flight requests as retryable.  v1 peers see a plain close.
  /// Call before exiting/re-execing (musicd's SIGTERM path).
  void announce_drain(wire::GoodbyeReason reason);

  // ---- Transport -----------------------------------------------------------

  sim::Future<wire::Response> invoke(PeerId self, PeerId peer,
                                     wire::Request req,
                                     size_t overhead_bytes) override;

  sim::Future<wire::StoreReply> store_call(PeerId self, PeerId peer,
                                           wire::StoreRequest msg, size_t bytes,
                                           size_t reply_bytes,
                                           size_t overhead_bytes,
                                           sim::MsgKind kind,
                                           sim::MsgKind reply_kind) override;

  /// Local nodes are always up; remote nodes are up once their connection
  /// has completed the version handshake.
  bool peer_up(PeerId peer) const override;
  bool reachable(PeerId self, PeerId peer) const override;

  EventLoop& loop() { return loop_; }
  const TcpOptions& options() const { return options_; }

  /// Connections currently established (handshake complete) to remote peers.
  int connected_peers() const;

  /// Per-route handshake/churn diagnostics, sorted by peer id.
  std::vector<PeerInfo> peer_info() const;

 private:
  struct LocalEndpoint {
    ServeRequestFn serve_request;
    ServeStoreFn serve_store;
  };

  /// One outbound route (and its connection state + in-flight requests).
  struct Peer {
    std::string host;
    uint16_t port = 0;
    int fd = -1;
    bool connected = false;      // TCP established
    bool connecting = false;     // nonblocking connect in flight
    bool hello_ok = false;       // peer's Hello accepted, version pinned
    uint8_t version = 0;         // negotiated wire version once hello_ok
    bool reconnect_pending = false;
    /// Bumped on every connection teardown; timer callbacks carry the
    /// generation they were scheduled under and no-op when stale, so a
    /// reconnect racing a fresh handshake resolves deterministically in
    /// favour of whichever connection attempt is current.
    uint64_t gen = 0;
    sim::Duration backoff = 0;   // previous jittered pause (0 = fresh)
    uint64_t established_count = 0;
    uint64_t handshake_failures = 0;
    std::string inbuf;
    std::string outbuf;
    std::unordered_map<uint64_t, sim::Promise<wire::Response>> pending_invoke;
    std::unordered_map<uint64_t, sim::Promise<wire::StoreReply>> pending_store;
  };

  /// One accepted (serving) connection.
  struct InConn {
    uint64_t id = 0;
    int fd = -1;
    PeerId serves = -1;
    bool hello_ok = false;
    uint8_t version = 0;
    std::string inbuf;
    std::string outbuf;
  };

  struct Listener {
    int fd = -1;
    PeerId serves = -1;
  };

  void start_connect(PeerId id);
  void on_peer_io(PeerId id, uint32_t events);
  void on_peer_connected(PeerId id);
  /// Tears the connection down.  In-flight requests are failed retryable
  /// (see file comment); the route reconnects with backoff.
  void fail_peer(PeerId id);
  void fail_inflight(Peer& p);
  void schedule_reconnect(PeerId id);
  void send_to_peer(Peer& p, std::string frame);
  void flush_peer(PeerId id);

  void on_accept(size_t listener_idx);
  void on_inconn_io(uint64_t conn_id, uint32_t events);
  void close_inconn(uint64_t conn_id);
  void respond_on_inconn(uint64_t conn_id, uint64_t req_id, const wire::Response& resp);
  void send_on_inconn(uint64_t conn_id, std::string frame);
  void flush_inconn(InConn& c);

  /// The acceptance window for peel_frame on a connection: pre-handshake
  /// only Hello-compatible frames, post-handshake everything up to the
  /// pinned version; the frame ceiling applies throughout.
  wire::PeelLimits peel_limits(bool hello_ok, uint8_t version) const;
  /// Validates and applies a peer's Hello; false = kill the connection.
  bool accept_hello(const wire::FrameView& fv, uint8_t& version_out);

  /// Peels and dispatches every complete frame in a serving connection's
  /// buffer; false = protocol violation, caller must kill the connection.
  bool drain_serving(InConn& c);
  /// Same for an outbound connection (responses/replies).  Sets
  /// `drained` when the peer announced a Goodbye (clean teardown, not a
  /// protocol violation).
  bool drain_peer(Peer& p, bool& drained);

  void dispatch_local_invoke(const LocalEndpoint& ep, wire::Request req,
                             sim::Promise<wire::Response> reply);

  EventLoop& loop_;
  sim::Simulation& sim_;
  TcpOptions options_;
  sim::Rng backoff_rng_;
  std::unordered_map<PeerId, LocalEndpoint> local_;
  std::unordered_map<PeerId, std::unique_ptr<Peer>> peers_;
  std::vector<Listener> listeners_;
  std::unordered_map<uint64_t, std::unique_ptr<InConn>> inconns_;
  uint64_t next_conn_id_ = 1;
  uint64_t next_req_id_ = 1;
};

}  // namespace music::net
