// TcpTransport: the real-socket Transport backend (the musicd deployment
// path).
//
// The same wire structs protocol code hands to SimTransport are framed
// through wire/codec.h and shipped over non-blocking TCP driven by an
// EventLoop.  Topology is explicit and per-node:
//
//   * listen_for(id, port, ...) — serve node `id`'s seams on a listening
//     socket (one port per hosted node, so frames need no addressing
//     beyond the connection they arrive on);
//   * bind_local(id, ...)      — serve node `id` in-process only
//     (self-calls and co-hosted nodes short-circuit, no socket);
//   * route(id, host, port)    — reach remote node `id` at host:port over
//     one outbound connection, auto-reconnecting with backoff.
//
// Loss model matches the sim's: a request sent while the route is down, or
// whose connection dies before the reply, leaves the future unfulfilled —
// callers already bound every wait with await_with_timeout.  A malformed
// frame kills its connection (never the process).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "net/transport.h"
#include "wire/codec.h"

namespace music::net {

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(EventLoop& loop);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Serves node `id` on a listening TCP socket bound to 127.0.0.1:`port`
  /// (0 = ephemeral).  Also registers the handlers as a local endpoint, so
  /// in-process calls to `id` short-circuit.  Returns the bound port, or 0
  /// on failure.
  uint16_t listen_for(PeerId id, uint16_t port, ServeRequestFn serve_request,
                      ServeStoreFn serve_store);

  /// Registers node `id` as served in-process, without a socket.
  void bind_local(PeerId id, ServeRequestFn serve_request,
                  ServeStoreFn serve_store);

  /// Routes calls for node `id` to the process listening at host:port.
  /// Connects immediately and reconnects with backoff after any failure.
  void route(PeerId id, std::string host, uint16_t port);

  // ---- Transport -----------------------------------------------------------

  sim::Future<wire::Response> invoke(PeerId self, PeerId peer,
                                     wire::Request req,
                                     size_t overhead_bytes) override;

  sim::Future<wire::StoreReply> store_call(PeerId self, PeerId peer,
                                           wire::StoreRequest msg, size_t bytes,
                                           size_t reply_bytes,
                                           size_t overhead_bytes,
                                           sim::MsgKind kind,
                                           sim::MsgKind reply_kind) override;

  /// Local nodes are always up; remote nodes are up while their connection
  /// is established.
  bool peer_up(PeerId peer) const override;
  bool reachable(PeerId self, PeerId peer) const override;

  EventLoop& loop() { return loop_; }

  /// Connections currently established to remote peers (diagnostics).
  int connected_peers() const;

 private:
  struct LocalEndpoint {
    ServeRequestFn serve_request;
    ServeStoreFn serve_store;
  };

  /// One outbound route (and its connection state + in-flight requests).
  struct Peer {
    std::string host;
    uint16_t port = 0;
    int fd = -1;
    bool connected = false;      // TCP established
    bool connecting = false;     // nonblocking connect in flight
    bool reconnect_pending = false;
    std::string inbuf;
    std::string outbuf;
    std::unordered_map<uint64_t, sim::Promise<wire::Response>> pending_invoke;
    std::unordered_map<uint64_t, sim::Promise<wire::StoreReply>> pending_store;
  };

  /// One accepted (serving) connection.
  struct InConn {
    uint64_t id = 0;
    int fd = -1;
    PeerId serves = -1;
    std::string inbuf;
    std::string outbuf;
  };

  struct Listener {
    int fd = -1;
    PeerId serves = -1;
  };

  void start_connect(PeerId id);
  void on_peer_io(PeerId id, uint32_t events);
  void fail_peer(PeerId id);
  void schedule_reconnect(PeerId id);
  void send_to_peer(Peer& p, std::string frame);
  void flush_peer(PeerId id);

  void on_accept(size_t listener_idx);
  void on_inconn_io(uint64_t conn_id, uint32_t events);
  void close_inconn(uint64_t conn_id);
  void send_on_inconn(uint64_t conn_id, std::string frame);
  void flush_inconn(InConn& c);

  /// Peels and dispatches every complete frame in a serving connection's
  /// buffer; false = protocol violation, caller must kill the connection.
  bool drain_serving(InConn& c);
  /// Same for an outbound connection (responses/replies).
  bool drain_peer(Peer& p);

  void dispatch_local_invoke(const LocalEndpoint& ep, wire::Request req,
                             sim::Promise<wire::Response> reply);

  EventLoop& loop_;
  sim::Simulation& sim_;
  std::unordered_map<PeerId, LocalEndpoint> local_;
  std::unordered_map<PeerId, std::unique_ptr<Peer>> peers_;
  std::vector<Listener> listeners_;
  std::unordered_map<uint64_t, std::unique_ptr<InConn>> inconns_;
  uint64_t next_conn_id_ = 1;
  uint64_t next_req_id_ = 1;
};

}  // namespace music::net
