// The real-time host for the TCP backend: epoll over real sockets, fused
// with a sim::Simulation that supplies timers, futures and the coroutine
// scheduler to protocol code.
//
// Protocol libraries (client, datastore, lockstore) run unchanged over TCP
// because everything they need from "the simulator" — schedule(), Promise,
// await_with_timeout — is clock-driven, and this loop drives that clock
// from wall time: each iteration advances the simulation to the elapsed
// real time, then sleeps in epoll_wait until either a socket is ready or
// the simulation's next timer is due (peek_next_event_at).  Sim time
// therefore tracks real microseconds since run() started, and a retry
// backoff of sim::ms(5) is a real 5ms pause.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "sim/simulation.h"

namespace music::net {

/// Epoll + simulation hybrid loop.  Single-threaded, like the sim.
class EventLoop {
 public:
  /// Called with the epoll event mask when the fd is ready.
  using IoFn = std::function<void(uint32_t events)>;

  explicit EventLoop(sim::Simulation& sim);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...).  The loop does not
  /// own the fd; unregister with del_fd before closing it.
  void add_fd(int fd, uint32_t events, IoFn fn);
  /// Changes the watched event mask of a registered fd.
  void mod_fd(int fd, uint32_t events);
  /// Unregisters a fd (safe from inside any IoFn, including its own).
  void del_fd(int fd);

  /// Runs until stop(): dispatch ready sockets, advance the simulation to
  /// elapsed real time, sleep until the next socket or sim timer.
  void run();

  /// Makes run() return after the current iteration.  Async-signal-safe
  /// (the loop wakes at least every poll interval).
  void stop() { running_ = 0; }

  /// One iteration (poll with `timeout_ms` cap, dispatch, advance sim);
  /// lets tests and custom loops interleave their own work.
  void poll_once(int timeout_ms);

  /// Microseconds of wall time since construction == the sim-time target
  /// the loop advances to.
  sim::Time elapsed_us() const;

  sim::Simulation& simulation() { return sim_; }

 private:
  void advance_sim();

  sim::Simulation& sim_;
  int epfd_;
  volatile std::sig_atomic_t running_ = 0;
  /// unique_ptr keeps handler addresses stable across rehash; dispatch
  /// re-looks-up the fd so a handler removed mid-batch is skipped.
  std::unordered_map<int, std::unique_ptr<IoFn>> handlers_;
  int64_t start_ns_;
};

}  // namespace music::net
