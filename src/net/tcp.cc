#include "net/tcp.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

namespace music::net {

namespace {

bool set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// The retryable store-seam result synthesized for an in-flight call whose
/// connection died: a nack with no ballot promise and no cell.  Every
/// consumer treats it exactly like a replica-side rejection — it counts as
/// a (failed) response toward quorum waits and never toward success, so
/// failing fast is safe for both the replication and the Paxos paths.
wire::StoreReply store_nack(PeerId from) {
  wire::StoreReply nack;
  nack.ok = false;
  nack.ballot = -1;
  nack.has_cell = false;
  nack.cell_ballot = -1;
  nack.from = static_cast<int32_t>(from);
  return nack;
}

}  // namespace

TcpTransport::TcpTransport(EventLoop& loop, TcpOptions options)
    : loop_(loop),
      sim_(loop.simulation()),
      options_(options),
      backoff_rng_(options.backoff_seed) {}

TcpTransport::~TcpTransport() {
  for (auto& l : listeners_) {
    if (l.fd >= 0) {
      loop_.del_fd(l.fd);
      close(l.fd);
    }
  }
  for (auto& [id, p] : peers_) {
    if (p->fd >= 0) {
      loop_.del_fd(p->fd);
      close(p->fd);
    }
  }
  for (auto& [id, c] : inconns_) {
    loop_.del_fd(c->fd);
    close(c->fd);
  }
}

// ---- Handshake helpers -----------------------------------------------------

wire::PeelLimits TcpTransport::peel_limits(bool hello_ok, uint8_t version) const {
  wire::PeelLimits lim;
  lim.min_version = wire::kWireVersionMin;
  // Before the handshake only the Hello (always v1-layout) is expected, but
  // the peel window stays open to our full range so a peer's first frame is
  // judged by TYPE at dispatch, not mis-reported as a version error.  After
  // the handshake nothing above the pinned version may appear.
  lim.max_version = hello_ok ? version : options_.wire_version_max;
  if (lim.max_version < wire::kWireVersionMin) lim.max_version = wire::kWireVersionMin;
  lim.max_frame_bytes = options_.max_frame_bytes;
  return lim;
}

bool TcpTransport::accept_hello(const wire::FrameView& fv, uint8_t& version_out) {
  if (fv.type != wire::FrameType::Hello) return false;
  auto hello = wire::parse_hello(fv.payload);
  if (!hello) return false;
  auto v = wire::negotiate(options_.wire_version_min, options_.wire_version_max,
                           hello->min, hello->max);
  if (!v) return false;  // disjoint ranges: incompatible peer
  version_out = *v;
  return true;
}

// ---- Local endpoints -------------------------------------------------------

void TcpTransport::bind_local(PeerId id, ServeRequestFn serve_request,
                              ServeStoreFn serve_store) {
  local_[id] =
      LocalEndpoint{std::move(serve_request), std::move(serve_store)};
}

void TcpTransport::dispatch_local_invoke(const LocalEndpoint& ep,
                                         wire::Request req,
                                         sim::Promise<wire::Response> reply) {
  RespondFn respond = [reply](wire::Response resp) mutable {
    reply.set_value(std::move(resp));
  };
  ep.serve_request(std::move(req), std::move(respond));
}

// ---- Listening side --------------------------------------------------------

uint16_t TcpTransport::listen_for(PeerId id, uint16_t port,
                                  ServeRequestFn serve_request,
                                  ServeStoreFn serve_store) {
  bind_local(id, std::move(serve_request), std::move(serve_store));

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  uint16_t bound = ntohs(addr.sin_port);

  size_t idx = listeners_.size();
  listeners_.push_back(Listener{fd, id});
  loop_.add_fd(fd, EPOLLIN, [this, idx](uint32_t) { on_accept(idx); });
  return bound;
}

void TcpTransport::on_accept(size_t listener_idx) {
  const Listener& l = listeners_[listener_idx];
  while (true) {
    int cfd = accept(l.fd, nullptr, nullptr);
    if (cfd < 0) break;  // EAGAIN or error: done for this wakeup
    if (!set_nonblocking(cfd)) {
      close(cfd);
      continue;
    }
    set_nodelay(cfd);
    uint64_t cid = next_conn_id_++;
    auto conn = std::make_unique<InConn>();
    conn->id = cid;
    conn->fd = cfd;
    conn->serves = l.serves;
    inconns_[cid] = std::move(conn);
    loop_.add_fd(cfd, EPOLLIN,
                 [this, cid](uint32_t ev) { on_inconn_io(cid, ev); });
    // Advertise our version range immediately; the peer does the same, and
    // both sides pin the connection version on receipt.
    wire::Hello hello;
    hello.min = options_.wire_version_min;
    hello.max = options_.wire_version_max;
    hello.node = static_cast<uint32_t>(l.serves);
    send_on_inconn(cid, wire::encode_hello(hello));
  }
}

void TcpTransport::close_inconn(uint64_t conn_id) {
  auto it = inconns_.find(conn_id);
  if (it == inconns_.end()) return;
  loop_.del_fd(it->second->fd);
  close(it->second->fd);
  inconns_.erase(it);
}

void TcpTransport::on_inconn_io(uint64_t conn_id, uint32_t events) {
  auto it = inconns_.find(conn_id);
  if (it == inconns_.end()) return;
  InConn& c = *it->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_inconn(conn_id);
    return;
  }
  if (events & EPOLLIN) {
    char buf[16384];
    while (true) {
      ssize_t n = read(c.fd, buf, sizeof(buf));
      if (n > 0) {
        c.inbuf.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_inconn(conn_id);  // EOF or hard error
      return;
    }
    if (!drain_serving(c)) {
      close_inconn(conn_id);  // malformed frame or drain: kill the connection
      return;
    }
    // drain_serving may have dispatched handlers that closed this conn.
    if (inconns_.find(conn_id) == inconns_.end()) return;
  }
  if (events & EPOLLOUT) flush_inconn(c);
}

bool TcpTransport::drain_serving(InConn& c) {
  while (true) {
    wire::FrameView fv;
    wire::FrameStatus st = wire::peel_frame(c.inbuf.data(), c.inbuf.size(), fv,
                                            peel_limits(c.hello_ok, c.version));
    if (st == wire::FrameStatus::NeedMore) return true;
    if (st != wire::FrameStatus::Ok) return false;  // Bad or TooLarge
    if (!c.hello_ok) {
      // The handshake gate: nothing is served until the peer's Hello pins a
      // version.  A request-before-Hello is a protocol violation.
      if (!accept_hello(fv, c.version)) return false;
      c.hello_ok = true;
      c.inbuf.erase(0, fv.frame_bytes);
      continue;
    }
    auto lit = local_.find(c.serves);
    const LocalEndpoint* ep = lit == local_.end() ? nullptr : &lit->second;
    switch (fv.type) {
      case wire::FrameType::ClientRequest: {
        auto req = wire::parse_request(fv.payload);
        if (!req) return false;
        if (ep != nullptr && ep->serve_request) {
          uint64_t cid = c.id;
          uint64_t rid = fv.req_id;
          RespondFn respond = [this, cid, rid](wire::Response resp) {
            respond_on_inconn(cid, rid, resp);
          };
          ep->serve_request(std::move(*req), std::move(respond));
        }
        break;
      }
      case wire::FrameType::StoreRequest: {
        auto msg = wire::parse_store_request(fv.payload);
        if (!msg) return false;
        if (ep != nullptr && ep->serve_store) {
          wire::StoreReply reply = ep->serve_store(*msg);
          send_on_inconn(c.id, wire::encode_store_reply(fv.req_id, reply, c.version));
        }
        break;
      }
      case wire::FrameType::Goodbye:
        // The peer is draining; it will not send more requests and no reply
        // we still owe it can matter.  Clean close.
        return false;
      default:
        return false;  // responses / second Hellos never arrive here
    }
    c.inbuf.erase(0, fv.frame_bytes);
  }
}

void TcpTransport::respond_on_inconn(uint64_t conn_id, uint64_t req_id,
                                     const wire::Response& resp) {
  // Encoding is deferred to send time so the reply is stamped with the
  // version the connection negotiated (and silently dropped if the
  // requester is already gone).
  auto it = inconns_.find(conn_id);
  if (it == inconns_.end()) return;
  send_on_inconn(conn_id, wire::encode_response(req_id, resp, it->second->version));
}

void TcpTransport::send_on_inconn(uint64_t conn_id, std::string frame) {
  auto it = inconns_.find(conn_id);
  if (it == inconns_.end()) return;  // requester went away: reply dropped
  InConn& c = *it->second;
  c.outbuf.append(frame);
  flush_inconn(c);
}

void TcpTransport::flush_inconn(InConn& c) {
  while (!c.outbuf.empty()) {
    // MSG_NOSIGNAL: a peer that closed first (e.g. mid rolling restart)
    // must surface as EPIPE here, not kill the process with SIGPIPE.
    ssize_t n = send(c.fd, c.outbuf.data(), c.outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c.outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    uint64_t cid = c.id;
    close_inconn(cid);
    return;
  }
  loop_.mod_fd(c.fd, EPOLLIN | (c.outbuf.empty() ? 0u : uint32_t{EPOLLOUT}));
}

// ---- Outbound side ---------------------------------------------------------

void TcpTransport::route(PeerId id, std::string host, uint16_t port) {
  auto p = std::make_unique<Peer>();
  p->host = std::move(host);
  p->port = port;
  peers_[id] = std::move(p);
  start_connect(id);
}

void TcpTransport::start_connect(PeerId id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return;
  Peer& p = *it->second;
  p.reconnect_pending = false;
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 || !set_nonblocking(fd)) {
    if (fd >= 0) close(fd);
    schedule_reconnect(id);
    return;
  }
  set_nodelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(p.port);
  if (inet_pton(AF_INET, p.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    schedule_reconnect(id);
    return;
  }
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    schedule_reconnect(id);
    return;
  }
  p.fd = fd;
  p.connected = false;
  p.connecting = (rc != 0);
  uint32_t mask = p.connecting ? (EPOLLIN | EPOLLOUT)
                               : static_cast<uint32_t>(EPOLLIN);
  loop_.add_fd(fd, mask, [this, id](uint32_t ev) { on_peer_io(id, ev); });
  if (rc == 0) on_peer_connected(id);
}

void TcpTransport::on_peer_connected(PeerId id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return;
  Peer& p = *it->second;
  p.connecting = false;
  p.connected = true;
  // First bytes on the wire in each direction: our version advertisement.
  // No payload frame is sent until the peer's Hello arrives (hello_ok), so
  // the peer never sees a frame above the version it ends up pinning.
  wire::Hello hello;
  hello.min = options_.wire_version_min;
  hello.max = options_.wire_version_max;
  hello.node = options_.hello_node;
  send_to_peer(p, wire::encode_hello(hello));
}

void TcpTransport::schedule_reconnect(PeerId id) {
  auto it = peers_.find(id);
  if (it == peers_.end() || it->second->reconnect_pending) return;
  Peer& p = *it->second;
  p.reconnect_pending = true;
  // Decorrelated jitter, same scheme as client retries: spread out the
  // reconnect stampede a restarted musicd would otherwise see from every
  // peer at once, growing toward the cap while the peer stays down.
  sim::Duration prev = p.backoff > 0 ? p.backoff : options_.reconnect_backoff_base;
  p.backoff = sim::decorrelated_backoff(options_.reconnect_backoff_base,
                                        options_.reconnect_backoff_cap, prev,
                                        backoff_rng_);
  // The generation token resolves the reconnect/handshake race: if anything
  // re-established or re-failed this route before the timer fires, the gen
  // moved on and this (stale) attempt must not touch the live connection.
  uint64_t gen = p.gen;
  sim_.schedule(p.backoff, [this, id, gen] {
    auto pit = peers_.find(id);
    if (pit == peers_.end() || pit->second->gen != gen) return;
    if (pit->second->connected || pit->second->connecting) return;
    start_connect(id);
  });
}

void TcpTransport::fail_inflight(Peer& p) {
  // Requests that were on the wire when the connection died fail FAST with
  // a retryable result — not silently dropped (callers would burn a full
  // timeout) and not resent here (redelivery is the retry layer's decision,
  // so nothing can be duplicated by the transport).
  for (auto& [rid, promise] : p.pending_invoke) {
    promise.set_value(wire::Response(OpStatus::Timeout));
  }
  p.pending_invoke.clear();
  for (auto& [rid, promise] : p.pending_store) {
    promise.set_value(store_nack(-1));
  }
  p.pending_store.clear();
}

void TcpTransport::fail_peer(PeerId id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return;
  Peer& p = *it->second;
  ++p.gen;  // invalidate any timer scheduled against the old connection
  if (p.fd >= 0) {
    loop_.del_fd(p.fd);
    close(p.fd);
    p.fd = -1;
  }
  p.connected = false;
  p.connecting = false;
  p.hello_ok = false;
  p.version = 0;
  p.inbuf.clear();
  p.outbuf.clear();
  fail_inflight(p);
  schedule_reconnect(id);
}

void TcpTransport::on_peer_io(PeerId id, uint32_t events) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return;
  Peer& p = *it->second;
  if (p.connecting && (events & (EPOLLOUT | EPOLLERR | EPOLLHUP))) {
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(p.fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      fail_peer(id);
      return;
    }
    on_peer_connected(id);
  }
  if (events & (EPOLLHUP | EPOLLERR)) {
    fail_peer(id);
    return;
  }
  if (events & EPOLLIN) {
    char buf[16384];
    while (true) {
      ssize_t n = read(p.fd, buf, sizeof(buf));
      if (n > 0) {
        p.inbuf.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      fail_peer(id);
      return;
    }
    bool drained = false;
    if (!drain_peer(p, drained)) {
      // Either a protocol violation or a Goodbye.  A Goodbye is the clean
      // case: the peer is restarting/exiting, so tear down now — in-flight
      // requests fail retryable immediately instead of waiting for the FIN
      // — and let the backoff loop re-establish when the peer is back.  A
      // violation before the handshake completed counts against the route's
      // handshake diagnostics (incompatible or malformed Hello).
      if (!drained && !p.hello_ok) ++p.handshake_failures;
      fail_peer(id);
      return;
    }
  }
  if ((events & EPOLLOUT) && p.connected) flush_peer(id);
}

bool TcpTransport::drain_peer(Peer& p, bool& drained) {
  drained = false;
  while (true) {
    wire::FrameView fv;
    wire::FrameStatus st = wire::peel_frame(p.inbuf.data(), p.inbuf.size(), fv,
                                            peel_limits(p.hello_ok, p.version));
    if (st == wire::FrameStatus::NeedMore) return true;
    if (st != wire::FrameStatus::Ok) return false;  // Bad or TooLarge
    if (!p.hello_ok) {
      if (!accept_hello(fv, p.version)) return false;
      p.hello_ok = true;
      ++p.established_count;
      p.backoff = 0;  // healthy again: next outage starts from the base pause
      p.inbuf.erase(0, fv.frame_bytes);
      continue;
    }
    switch (fv.type) {
      case wire::FrameType::ClientResponse: {
        auto resp = wire::parse_response(fv.payload);
        if (!resp) return false;
        auto pit = p.pending_invoke.find(fv.req_id);
        if (pit != p.pending_invoke.end()) {
          pit->second.set_value(std::move(*resp));
          p.pending_invoke.erase(pit);
        }
        break;
      }
      case wire::FrameType::StoreReply: {
        auto reply = wire::parse_store_reply(fv.payload);
        if (!reply) return false;
        auto pit = p.pending_store.find(fv.req_id);
        if (pit != p.pending_store.end()) {
          pit->second.set_value(std::move(*reply));
          p.pending_store.erase(pit);
        }
        break;
      }
      case wire::FrameType::Goodbye: {
        if (p.version < 2) return false;  // v1 connections cannot carry it
        if (!wire::parse_goodbye(fv.payload)) return false;
        p.inbuf.erase(0, fv.frame_bytes);
        drained = true;
        return false;  // stop draining; caller tears the connection down
      }
      default:
        return false;  // requests / second Hellos never arrive here
    }
    p.inbuf.erase(0, fv.frame_bytes);
  }
}

void TcpTransport::send_to_peer(Peer& p, std::string frame) {
  p.outbuf.append(frame);
  if (!p.connected) return;  // flushed on connect completion
  while (!p.outbuf.empty()) {
    ssize_t n = send(p.fd, p.outbuf.data(), p.outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      p.outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Hard write error: the next epoll wakeup (EPOLLERR/HUP) tears the
    // connection down; stop pushing bytes now.
    return;
  }
  loop_.mod_fd(p.fd, EPOLLIN | (p.outbuf.empty() ? 0u : uint32_t{EPOLLOUT}));
}

void TcpTransport::flush_peer(PeerId id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return;
  send_to_peer(*it->second, std::string());
}

// ---- Drain -----------------------------------------------------------------

void TcpTransport::announce_drain(wire::GoodbyeReason reason) {
  // Serving side: tell every connected client we are going away so its
  // in-flight requests fail fast at its end (v2+ connections; v1 peers see
  // the plain close that follows).
  for (auto& [cid, c] : inconns_) {
    if (c->hello_ok && c->version >= 2) {
      send_on_inconn(cid, wire::encode_goodbye(reason, c->version));
    }
  }
  // Outbound side: same notice to peers we call, then fail our own
  // in-flight requests retryable — the process is about to exit and no
  // reply can be delivered to the caller coroutines after that.
  for (auto& [id, p] : peers_) {
    if (p->connected && p->hello_ok && p->version >= 2) {
      send_to_peer(*p, wire::encode_goodbye(reason, p->version));
    }
    fail_inflight(*p);
  }
}

// ---- Transport -------------------------------------------------------------

sim::Future<wire::Response> TcpTransport::invoke(PeerId self, PeerId peer,
                                                 wire::Request req,
                                                 size_t overhead_bytes) {
  (void)self;
  (void)overhead_bytes;  // real framing bills itself
  sim::Promise<wire::Response> reply(sim_);
  auto lit = local_.find(peer);
  if (lit != local_.end()) {
    if (lit->second.serve_request) {
      dispatch_local_invoke(lit->second, std::move(req), reply);
    }
    return reply.future();
  }
  auto pit = peers_.find(peer);
  if (pit == peers_.end() || !pit->second->hello_ok) {
    return reply.future();  // no route / link down: lost, caller times out
  }
  uint64_t id = next_req_id_++;
  pit->second->pending_invoke.emplace(id, reply);
  send_to_peer(*pit->second,
               wire::encode_request(id, req, pit->second->version));
  return reply.future();
}

sim::Future<wire::StoreReply> TcpTransport::store_call(
    PeerId self, PeerId peer, wire::StoreRequest msg, size_t bytes,
    size_t reply_bytes, size_t overhead_bytes, sim::MsgKind kind,
    sim::MsgKind reply_kind) {
  (void)self;
  (void)bytes;
  (void)reply_bytes;
  (void)overhead_bytes;
  (void)kind;
  (void)reply_kind;  // byte/kind accounting is the sim backend's concern
  sim::Promise<wire::StoreReply> p(sim_);
  auto lit = local_.find(peer);
  if (lit != local_.end()) {
    if (lit->second.serve_store) {
      // set_value schedules the fulfilment as a fresh event, so local calls
      // keep the async discipline protocol code assumes.
      p.set_value(lit->second.serve_store(msg));
    }
    return p.future();
  }
  auto pit = peers_.find(peer);
  if (pit == peers_.end() || !pit->second->hello_ok) {
    return p.future();
  }
  uint64_t id = next_req_id_++;
  pit->second->pending_store.emplace(id, p);
  send_to_peer(*pit->second,
               wire::encode_store_request(id, msg, pit->second->version));
  return p.future();
}

bool TcpTransport::peer_up(PeerId peer) const {
  if (local_.find(peer) != local_.end()) return true;
  auto it = peers_.find(peer);
  return it != peers_.end() && it->second->hello_ok;
}

bool TcpTransport::reachable(PeerId self, PeerId peer) const {
  (void)self;
  return peer_up(peer);
}

int TcpTransport::connected_peers() const {
  int n = 0;
  for (const auto& [id, p] : peers_) n += p->hello_ok ? 1 : 0;
  return n;
}

std::vector<PeerInfo> TcpTransport::peer_info() const {
  std::vector<PeerInfo> out;
  out.reserve(peers_.size());
  for (const auto& [id, p] : peers_) {
    PeerInfo info;
    info.id = id;
    info.connected = p->hello_ok;
    info.wire_version = p->hello_ok ? p->version : 0;
    info.reconnects =
        p->established_count > 0 ? p->established_count - 1 : 0;
    info.handshake_failures = p->handshake_failures;
    out.push_back(info);
  }
  std::sort(out.begin(), out.end(),
            [](const PeerInfo& a, const PeerInfo& b) { return a.id < b.id; });
  return out;
}

}  // namespace music::net
