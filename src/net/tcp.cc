#include "net/tcp.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace music::net {

namespace {

constexpr sim::Duration kReconnectBackoff = sim::ms(200);

bool set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpTransport::TcpTransport(EventLoop& loop)
    : loop_(loop), sim_(loop.simulation()) {}

TcpTransport::~TcpTransport() {
  for (auto& l : listeners_) {
    if (l.fd >= 0) {
      loop_.del_fd(l.fd);
      close(l.fd);
    }
  }
  for (auto& [id, p] : peers_) {
    if (p->fd >= 0) {
      loop_.del_fd(p->fd);
      close(p->fd);
    }
  }
  for (auto& [id, c] : inconns_) {
    loop_.del_fd(c->fd);
    close(c->fd);
  }
}

// ---- Local endpoints -------------------------------------------------------

void TcpTransport::bind_local(PeerId id, ServeRequestFn serve_request,
                              ServeStoreFn serve_store) {
  local_[id] =
      LocalEndpoint{std::move(serve_request), std::move(serve_store)};
}

void TcpTransport::dispatch_local_invoke(const LocalEndpoint& ep,
                                         wire::Request req,
                                         sim::Promise<wire::Response> reply) {
  RespondFn respond = [reply](wire::Response resp) mutable {
    reply.set_value(std::move(resp));
  };
  ep.serve_request(std::move(req), std::move(respond));
}

// ---- Listening side --------------------------------------------------------

uint16_t TcpTransport::listen_for(PeerId id, uint16_t port,
                                  ServeRequestFn serve_request,
                                  ServeStoreFn serve_store) {
  bind_local(id, std::move(serve_request), std::move(serve_store));

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  uint16_t bound = ntohs(addr.sin_port);

  size_t idx = listeners_.size();
  listeners_.push_back(Listener{fd, id});
  loop_.add_fd(fd, EPOLLIN, [this, idx](uint32_t) { on_accept(idx); });
  return bound;
}

void TcpTransport::on_accept(size_t listener_idx) {
  const Listener& l = listeners_[listener_idx];
  while (true) {
    int cfd = accept(l.fd, nullptr, nullptr);
    if (cfd < 0) break;  // EAGAIN or error: done for this wakeup
    if (!set_nonblocking(cfd)) {
      close(cfd);
      continue;
    }
    set_nodelay(cfd);
    uint64_t cid = next_conn_id_++;
    auto conn = std::make_unique<InConn>();
    conn->id = cid;
    conn->fd = cfd;
    conn->serves = l.serves;
    inconns_[cid] = std::move(conn);
    loop_.add_fd(cfd, EPOLLIN,
                 [this, cid](uint32_t ev) { on_inconn_io(cid, ev); });
  }
}

void TcpTransport::close_inconn(uint64_t conn_id) {
  auto it = inconns_.find(conn_id);
  if (it == inconns_.end()) return;
  loop_.del_fd(it->second->fd);
  close(it->second->fd);
  inconns_.erase(it);
}

void TcpTransport::on_inconn_io(uint64_t conn_id, uint32_t events) {
  auto it = inconns_.find(conn_id);
  if (it == inconns_.end()) return;
  InConn& c = *it->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_inconn(conn_id);
    return;
  }
  if (events & EPOLLIN) {
    char buf[16384];
    while (true) {
      ssize_t n = read(c.fd, buf, sizeof(buf));
      if (n > 0) {
        c.inbuf.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_inconn(conn_id);  // EOF or hard error
      return;
    }
    if (!drain_serving(c)) {
      close_inconn(conn_id);  // malformed frame: kill the connection
      return;
    }
    // drain_serving may have dispatched handlers that closed this conn.
    if (inconns_.find(conn_id) == inconns_.end()) return;
  }
  if (events & EPOLLOUT) flush_inconn(c);
}

bool TcpTransport::drain_serving(InConn& c) {
  while (true) {
    wire::FrameView fv;
    wire::FrameStatus st = wire::peel_frame(c.inbuf.data(), c.inbuf.size(), fv);
    if (st == wire::FrameStatus::NeedMore) return true;
    if (st == wire::FrameStatus::Bad) return false;
    auto lit = local_.find(c.serves);
    const LocalEndpoint* ep = lit == local_.end() ? nullptr : &lit->second;
    switch (fv.type) {
      case wire::FrameType::ClientRequest: {
        auto req = wire::parse_request(fv.payload);
        if (!req) return false;
        if (ep != nullptr && ep->serve_request) {
          uint64_t cid = c.id;
          uint64_t rid = fv.req_id;
          RespondFn respond = [this, cid, rid](wire::Response resp) {
            send_on_inconn(cid, wire::encode_response(rid, resp));
          };
          ep->serve_request(std::move(*req), std::move(respond));
        }
        break;
      }
      case wire::FrameType::StoreRequest: {
        auto msg = wire::parse_store_request(fv.payload);
        if (!msg) return false;
        if (ep != nullptr && ep->serve_store) {
          wire::StoreReply reply = ep->serve_store(*msg);
          send_on_inconn(c.id, wire::encode_store_reply(fv.req_id, reply));
        }
        break;
      }
      default:
        return false;  // responses never arrive on a serving connection
    }
    c.inbuf.erase(0, fv.frame_bytes);
  }
}

void TcpTransport::send_on_inconn(uint64_t conn_id, std::string frame) {
  auto it = inconns_.find(conn_id);
  if (it == inconns_.end()) return;  // requester went away: reply dropped
  InConn& c = *it->second;
  c.outbuf.append(frame);
  flush_inconn(c);
}

void TcpTransport::flush_inconn(InConn& c) {
  while (!c.outbuf.empty()) {
    ssize_t n = write(c.fd, c.outbuf.data(), c.outbuf.size());
    if (n > 0) {
      c.outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    uint64_t cid = c.id;
    close_inconn(cid);
    return;
  }
  loop_.mod_fd(c.fd, EPOLLIN | (c.outbuf.empty() ? 0u : uint32_t{EPOLLOUT}));
}

// ---- Outbound side ---------------------------------------------------------

void TcpTransport::route(PeerId id, std::string host, uint16_t port) {
  auto p = std::make_unique<Peer>();
  p->host = std::move(host);
  p->port = port;
  peers_[id] = std::move(p);
  start_connect(id);
}

void TcpTransport::start_connect(PeerId id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return;
  Peer& p = *it->second;
  p.reconnect_pending = false;
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 || !set_nonblocking(fd)) {
    if (fd >= 0) close(fd);
    schedule_reconnect(id);
    return;
  }
  set_nodelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(p.port);
  if (inet_pton(AF_INET, p.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    schedule_reconnect(id);
    return;
  }
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    schedule_reconnect(id);
    return;
  }
  p.fd = fd;
  p.connected = (rc == 0);
  p.connecting = (rc != 0);
  uint32_t mask = p.connecting ? (EPOLLIN | EPOLLOUT)
                               : static_cast<uint32_t>(EPOLLIN);
  loop_.add_fd(fd, mask, [this, id](uint32_t ev) { on_peer_io(id, ev); });
}

void TcpTransport::schedule_reconnect(PeerId id) {
  auto it = peers_.find(id);
  if (it == peers_.end() || it->second->reconnect_pending) return;
  it->second->reconnect_pending = true;
  sim_.schedule(kReconnectBackoff, [this, id] { start_connect(id); });
}

void TcpTransport::fail_peer(PeerId id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return;
  Peer& p = *it->second;
  if (p.fd >= 0) {
    loop_.del_fd(p.fd);
    close(p.fd);
    p.fd = -1;
  }
  p.connected = false;
  p.connecting = false;
  p.inbuf.clear();
  p.outbuf.clear();
  // Dropping the promises leaves their futures unfulfilled: exactly the
  // sim's loss semantics — the callers' awaits time out and they retry.
  p.pending_invoke.clear();
  p.pending_store.clear();
  schedule_reconnect(id);
}

void TcpTransport::on_peer_io(PeerId id, uint32_t events) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return;
  Peer& p = *it->second;
  if (p.connecting && (events & (EPOLLOUT | EPOLLERR | EPOLLHUP))) {
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(p.fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      fail_peer(id);
      return;
    }
    p.connecting = false;
    p.connected = true;
    loop_.mod_fd(p.fd, EPOLLIN | (p.outbuf.empty() ? 0u : uint32_t{EPOLLOUT}));
  }
  if (events & (EPOLLHUP | EPOLLERR)) {
    fail_peer(id);
    return;
  }
  if (events & EPOLLIN) {
    char buf[16384];
    while (true) {
      ssize_t n = read(p.fd, buf, sizeof(buf));
      if (n > 0) {
        p.inbuf.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      fail_peer(id);
      return;
    }
    if (!drain_peer(p)) {
      fail_peer(id);
      return;
    }
  }
  if ((events & EPOLLOUT) && p.connected) flush_peer(id);
}

bool TcpTransport::drain_peer(Peer& p) {
  while (true) {
    wire::FrameView fv;
    wire::FrameStatus st = wire::peel_frame(p.inbuf.data(), p.inbuf.size(), fv);
    if (st == wire::FrameStatus::NeedMore) return true;
    if (st == wire::FrameStatus::Bad) return false;
    switch (fv.type) {
      case wire::FrameType::ClientResponse: {
        auto resp = wire::parse_response(fv.payload);
        if (!resp) return false;
        auto pit = p.pending_invoke.find(fv.req_id);
        if (pit != p.pending_invoke.end()) {
          pit->second.set_value(std::move(*resp));
          p.pending_invoke.erase(pit);
        }
        break;
      }
      case wire::FrameType::StoreReply: {
        auto reply = wire::parse_store_reply(fv.payload);
        if (!reply) return false;
        auto pit = p.pending_store.find(fv.req_id);
        if (pit != p.pending_store.end()) {
          pit->second.set_value(std::move(*reply));
          p.pending_store.erase(pit);
        }
        break;
      }
      default:
        return false;  // requests never arrive on an outbound connection
    }
    p.inbuf.erase(0, fv.frame_bytes);
  }
}

void TcpTransport::send_to_peer(Peer& p, std::string frame) {
  p.outbuf.append(frame);
  if (!p.connected) return;  // flushed on connect completion
  while (!p.outbuf.empty()) {
    ssize_t n = write(p.fd, p.outbuf.data(), p.outbuf.size());
    if (n > 0) {
      p.outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Hard write error: the next epoll wakeup (EPOLLERR/HUP) tears the
    // connection down; stop pushing bytes now.
    return;
  }
  loop_.mod_fd(p.fd, EPOLLIN | (p.outbuf.empty() ? 0u : uint32_t{EPOLLOUT}));
}

void TcpTransport::flush_peer(PeerId id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return;
  send_to_peer(*it->second, std::string());
}

// ---- Transport -------------------------------------------------------------

sim::Future<wire::Response> TcpTransport::invoke(PeerId self, PeerId peer,
                                                 wire::Request req,
                                                 size_t overhead_bytes) {
  (void)self;
  (void)overhead_bytes;  // real framing bills itself
  sim::Promise<wire::Response> reply(sim_);
  auto lit = local_.find(peer);
  if (lit != local_.end()) {
    if (lit->second.serve_request) {
      dispatch_local_invoke(lit->second, std::move(req), reply);
    }
    return reply.future();
  }
  auto pit = peers_.find(peer);
  if (pit == peers_.end() || !pit->second->connected) {
    return reply.future();  // no route / link down: lost, caller times out
  }
  uint64_t id = next_req_id_++;
  pit->second->pending_invoke.emplace(id, reply);
  send_to_peer(*pit->second, wire::encode_request(id, req));
  return reply.future();
}

sim::Future<wire::StoreReply> TcpTransport::store_call(
    PeerId self, PeerId peer, wire::StoreRequest msg, size_t bytes,
    size_t reply_bytes, size_t overhead_bytes, sim::MsgKind kind,
    sim::MsgKind reply_kind) {
  (void)self;
  (void)bytes;
  (void)reply_bytes;
  (void)overhead_bytes;
  (void)kind;
  (void)reply_kind;  // byte/kind accounting is the sim backend's concern
  sim::Promise<wire::StoreReply> p(sim_);
  auto lit = local_.find(peer);
  if (lit != local_.end()) {
    if (lit->second.serve_store) {
      // set_value schedules the fulfilment as a fresh event, so local calls
      // keep the async discipline protocol code assumes.
      p.set_value(lit->second.serve_store(msg));
    }
    return p.future();
  }
  auto pit = peers_.find(peer);
  if (pit == peers_.end() || !pit->second->connected) {
    return p.future();
  }
  uint64_t id = next_req_id_++;
  pit->second->pending_store.emplace(id, p);
  send_to_peer(*pit->second, wire::encode_store_request(id, msg));
  return p.future();
}

bool TcpTransport::peer_up(PeerId peer) const {
  if (local_.find(peer) != local_.end()) return true;
  auto it = peers_.find(peer);
  return it != peers_.end() && it->second->connected;
}

bool TcpTransport::reachable(PeerId self, PeerId peer) const {
  (void)self;
  return peer_up(peer);
}

int TcpTransport::connected_peers() const {
  int n = 0;
  for (const auto& [id, p] : peers_) n += p->connected ? 1 : 0;
  return n;
}

}  // namespace music::net
