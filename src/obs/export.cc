#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <numeric>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace music::obs {

namespace {

void json_escape(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_fmt(std::string& out, const char* fmt, auto... args) {
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n > 0) out.append(buf, static_cast<size_t>(n));
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  const auto& spans = tracer.spans();

  // Viewers want events sorted by timestamp; spans are begin-ordered already
  // (ids are assigned at begin time and sim time never goes backwards), but
  // sort defensively to keep the format contract explicit.
  std::vector<size_t> order(spans.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return spans[a].begin_us < spans[b].begin_us;
  });

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;

  // Metadata: name each site (pid) once.  -1 sites render as pid 0.
  std::vector<int> sites;
  for (const Span& s : spans) {
    int pid = s.site < 0 ? 0 : s.site;
    if (std::find(sites.begin(), sites.end(), pid) == sites.end())
      sites.push_back(pid);
  }
  std::sort(sites.begin(), sites.end());
  for (int pid : sites) {
    if (!first) out += ",\n";
    first = false;
    append_fmt(out,
               "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
               "\"args\":{\"name\":\"site %d\"}}",
               pid, pid);
  }

  for (size_t idx : order) {
    const Span& s = spans[idx];
    if (!s.finished()) continue;  // open at export time
    if (!first) out += ",\n";
    first = false;
    int pid = s.site < 0 ? 0 : s.site;
    int tid = s.node < 0 ? 0 : s.node;
    append_fmt(out,
               "{\"ph\":\"X\",\"name\":\"%s\",\"pid\":%d,\"tid\":%d,"
               "\"ts\":%" PRId64 ",\"dur\":%" PRId64 ",\"args\":{",
               s.name, pid, tid, s.begin_us, s.duration_us());
    if (!s.detail.empty()) {
      out += "\"detail\":\"";
      json_escape(out, s.detail);
      out += "\",";
    }
    append_fmt(out,
               "\"span\":%" PRIu64 ",\"parent\":%" PRIu64
               ",\"msgs\":%" PRIu64 ",\"wan_msgs\":%" PRIu64
               ",\"rtts\":%" PRIu64 "}}",
               s.id, s.parent, s.msgs, s.wan_msgs, s.rtts);
  }
  out += "\n]}\n";
  return out;
}

std::string metrics_json(const MetricsRegistry& reg) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : reg.counters()) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"";
    json_escape(out, name);
    append_fmt(out, "\": %" PRIu64, c.value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : reg.histograms()) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"";
    json_escape(out, name);
    append_fmt(out,
               "\": {\"count\": %" PRIu64 ", \"sum\": %" PRId64
               ", \"min\": %" PRId64 ", \"max\": %" PRId64
               ", \"mean\": %.3f, \"p50\": %" PRId64 ", \"p95\": %" PRId64
               ", \"p99\": %" PRId64 "}",
               h.count(), h.sum(), h.min(), h.max(), h.mean(),
               h.percentile(50), h.percentile(95), h.percentile(99));
  }
  out += "\n  }\n}\n";
  return out;
}

std::string metrics_csv(const MetricsRegistry& reg) {
  std::string out = "metric,kind,field,value\n";
  for (const auto& [name, c] : reg.counters())
    append_fmt(out, "%s,counter,value,%" PRIu64 "\n", name.c_str(), c.value);
  for (const auto& [name, h] : reg.histograms()) {
    const char* n = name.c_str();
    append_fmt(out, "%s,histogram,count,%" PRIu64 "\n", n, h.count());
    append_fmt(out, "%s,histogram,sum,%" PRId64 "\n", n, h.sum());
    append_fmt(out, "%s,histogram,min,%" PRId64 "\n", n, h.min());
    append_fmt(out, "%s,histogram,max,%" PRId64 "\n", n, h.max());
    append_fmt(out, "%s,histogram,mean,%.3f\n", n, h.mean());
    append_fmt(out, "%s,histogram,p50,%" PRId64 "\n", n, h.percentile(50));
    append_fmt(out, "%s,histogram,p95,%" PRId64 "\n", n, h.percentile(95));
    append_fmt(out, "%s,histogram,p99,%" PRId64 "\n", n, h.percentile(99));
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  size_t n = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (n != content.size()) {
    std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace music::obs
