#include "obs/metrics.h"

#include <algorithm>
#include <bit>

namespace music::obs {

namespace {

/// 16 linear sub-buckets per octave.
constexpr int kSubBits = 4;
constexpr int kSub = 1 << kSubBits;  // 16
/// Values < 2 * kSub get exact (unit-width) buckets.
constexpr int64_t kExactLimit = 2 * kSub;  // 32
/// Octaves above the exact range: bit widths kSubBits+2 .. 63 for
/// non-negative int64 values.
constexpr int kOctaves = 63 - (kSubBits + 1);

}  // namespace

Histogram::Histogram() : buckets_(num_buckets(), 0) {}

size_t Histogram::num_buckets() {
  return static_cast<size_t>(kExactLimit) +
         static_cast<size_t>(kOctaves) * kSub;
}

size_t Histogram::bucket_for(int64_t v) {
  if (v < 0) v = 0;
  auto u = static_cast<uint64_t>(v);
  if (v < kExactLimit) return static_cast<size_t>(u);
  int bw = std::bit_width(u);  // >= kSubBits + 2 here
  int shift = bw - kSubBits - 1;
  size_t octave = static_cast<size_t>(bw - (kSubBits + 2));
  size_t sub = static_cast<size_t>((u >> shift) - kSub);
  return static_cast<size_t>(kExactLimit) + octave * kSub + sub;
}

int64_t Histogram::bucket_lower_bound(size_t idx) {
  if (idx < static_cast<size_t>(kExactLimit)) return static_cast<int64_t>(idx);
  size_t rel = idx - static_cast<size_t>(kExactLimit);
  size_t octave = rel / kSub;
  size_t sub = rel % kSub;
  int shift = static_cast<int>(octave) + 1;
  return static_cast<int64_t>((static_cast<uint64_t>(kSub) + sub) << shift);
}

void Histogram::record(int64_t v) {
  if (v < 0) v = 0;
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++count_;
  sum_ += v;
  ++buckets_[bucket_for(v)];
}

int64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based; p=0 -> first, p=100 -> last.
  auto rank = static_cast<uint64_t>(p / 100.0 *
                                    static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return bucket_lower_bound(i);
  }
  return max_;
}

}  // namespace music::obs
