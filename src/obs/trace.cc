#include "obs/trace.h"

#include "obs/metrics.h"

namespace music::obs {

Tracer::Tracer(size_t max_spans) : max_spans_(max_spans) {
  spans_.reserve(max_spans_ < 4096 ? max_spans_ : 4096);
}

SpanId Tracer::begin(const char* name, int64_t now_us, SpanId parent, int site,
                     int node, std::string_view detail) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return 0;
  }
  Span s;
  s.id = spans_.size() + 1;
  s.parent = parent;
  s.name = name;
  s.detail.assign(detail.data(), detail.size());
  s.site = site;
  s.node = node;
  s.begin_us = now_us;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void Tracer::end(SpanId id, int64_t now_us) {
  Span* s = mut(id);
  if (s == nullptr || s->finished()) return;
  s->end_us = now_us;
  if (registry_ != nullptr) {
    std::string key = "span.";
    key += s->name;
    registry_->histogram(key).record(s->duration_us());
    size_t base = key.size();
    key += ".count";
    registry_->counter(key).add(1);
    // Rolled-up WAN round trips per op name: lets tests/benches assert the
    // §X-B4 cost table (and the batching win) straight off the registry.
    key.resize(base);
    key += ".rtts";
    registry_->counter(key).add(s->rtts);
  }
}

void Tracer::add_message(SpanId ctx, bool cross_site) {
  for (Span* s = mut(ctx); s != nullptr; s = mut(s->parent)) {
    ++s->msgs;
    if (cross_site) ++s->wan_msgs;
  }
}

void Tracer::add_rtts(SpanId ctx, uint64_t n) {
  for (Span* s = mut(ctx); s != nullptr; s = mut(s->parent)) s->rtts += n;
}

const Span* Tracer::find(SpanId id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

Span* Tracer::mut(SpanId id) {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

std::string Tracer::render_ancestry(SpanId ctx) const {
  std::string out;
  for (const Span* s = find(ctx); s != nullptr; s = find(s->parent)) {
    if (!out.empty()) out += " <- ";
    out += s->name;
    if (!s->detail.empty()) {
      out += '(';
      out += s->detail;
      out += ')';
    }
    out += '@';
    out += std::to_string(s->begin_us);
    out += "us";
  }
  return out;
}

}  // namespace music::obs
