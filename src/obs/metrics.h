// Named counters and fixed-bucket histograms for the simulator.
//
// A MetricsRegistry aggregates what one run did: per-message-type and
// per-site-pair network counters (fed by sim::Network), per-operation span
// durations (fed by obs::Tracer), and any protocol-level tallies a layer
// cares to publish (MUSIC replica stats, service utilization).  Everything
// is exportable as flat JSON or CSV (obs/export.h) so a bench or the CLI
// can dump one machine-readable file per run.
//
// Histograms are HDR-style log-linear: octaves subdivided into 16 linear
// sub-buckets, covering the full int64 microsecond range in under 1000
// fixed buckets with <= 1/16 relative error.  Recording is O(1) with no
// allocation after construction.  The registry itself is plain maps — the
// sim is single-threaded, and metric names are touched at registration /
// export time, not per event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace music::obs {

/// A monotonically increasing (or explicitly set) named value.
struct Counter {
  uint64_t value = 0;

  void add(uint64_t n = 1) { value += n; }
  void set(uint64_t v) { value = v; }
};

/// Log-linear histogram of non-negative int64 values (microseconds by
/// convention).  Negative values clamp to 0.
class Histogram {
 public:
  Histogram();

  void record(int64_t v);

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return count_ > 0 ? min_ : 0; }
  int64_t max() const { return max_; }
  double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }

  /// Approximate p-th percentile (0..100): the lower bound of the bucket
  /// where the cumulative count crosses the rank.  Within 1/16 relative
  /// error of the true value.
  int64_t percentile(double p) const;

  /// Number of fixed buckets (for tests and exporters).
  static size_t num_buckets();
  /// Index of the bucket `v` lands in, and a bucket's lower bound.
  static size_t bucket_for(int64_t v);
  static int64_t bucket_lower_bound(size_t idx);

  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// Name -> metric.  std::map keeps export order deterministic; references
/// returned by counter()/histogram() stay valid for the registry's life.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  /// Convenience: counter(name).add(n).
  void add(const std::string& name, uint64_t n = 1) { counters_[name].add(n); }
  /// Convenience: counter(name).set(v) (gauges snapshotted at export time).
  void set(const std::string& name, uint64_t v) { counters_[name].set(v); }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace music::obs
