// Protocol-level tracing: spans over simulated time.
//
// The paper's cost analysis (§IV, §X-B4) is denominated in protocol round
// trips — MUSIC's latency claims follow from counting the messages behind
// each acquire/read/write/release.  A Span makes that count observable at
// runtime: every MUSIC operation (lock acquire/release, quorum read/write,
// LWT, synchronization, Zab proposal, Raft commit) is stamped with sim-clock
// begin/end times, the site/node it ran at, its parent span, and per-span
// message and WAN-round-trip counters.  Counters roll up through the parent
// chain, so a root span (one client operation) carries the inclusive cost of
// everything it caused — the executable form of the paper's cost table.
//
// Zero-cost when disabled: code instruments through sim::OpSpan (sim/span.h)
// which checks Simulation::tracer() first; with no tracer installed the hot
// path is two loads and a branch — no messages, no heap allocations, no
// events.  Span context travels on simulation events (Simulation stamps the
// current context into every scheduled event and restores it when the event
// runs), so attribution follows the causal chain through coroutine
// suspensions, futures and network hops without touching the protocols.
//
// This header is deliberately independent of the simulator: times are plain
// int64 microseconds, so the sim layer can link against obs without a cycle.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace music::obs {

class MetricsRegistry;

/// Identifies a span within one Tracer.  0 means "no span" (the root
/// context); valid ids are 1-based indices into the tracer's span table.
using SpanId = uint64_t;

/// One traced operation.
struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0: root
  /// Static operation name ("music.acquire_lock", "store.lwt", ...).  Must
  /// point at storage outliving the tracer (string literals in practice).
  const char* name = "";
  /// Free-form detail, usually the key operated on.
  std::string detail;
  /// Site / node the operation ran at (-1: unknown).  Chrome-trace pid/tid.
  int site = -1;
  int node = -1;
  /// Sim-clock begin/end, microseconds.  end_us < 0 while the span is open.
  int64_t begin_us = 0;
  int64_t end_us = -1;
  /// Messages handed to Network::send while this span (or any descendant)
  /// was the active context.
  uint64_t msgs = 0;
  /// The subset of msgs that crossed sites (WAN messages).
  uint64_t wan_msgs = 0;
  /// Protocol-declared WAN round trips (a quorum round = 1, an LWT = 4, a
  /// Zab/Raft commit round = 1), inclusive of descendants.  This is the
  /// quantity the §X-B4 cost model counts.
  uint64_t rtts = 0;

  bool finished() const { return end_us >= 0; }
  int64_t duration_us() const { return finished() ? end_us - begin_us : -1; }
};

/// Collects spans for one simulation run.  Plain single-threaded storage —
/// the whole simulated cluster runs on one OS thread.
class Tracer {
 public:
  /// `max_spans` bounds memory; once reached, begin() returns 0 and the
  /// overflow is counted in dropped_spans().
  explicit Tracer(size_t max_spans = size_t{1} << 22);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span.  Returns its id, or 0 when the span table is full.
  SpanId begin(const char* name, int64_t now_us, SpanId parent, int site = -1,
               int node = -1, std::string_view detail = {});

  /// Closes a span (idempotent; unknown/0 ids are ignored).  If a metrics
  /// registry is attached, the duration is recorded into the histogram
  /// "span.<name>" and the counter "span.<name>.count" is bumped.
  void end(SpanId id, int64_t now_us);

  /// Attributes one network message to `ctx` and all its ancestors.
  void add_message(SpanId ctx, bool cross_site);

  /// Declares `n` protocol-level WAN round trips under `ctx` (inclusive).
  void add_rtts(SpanId ctx, uint64_t n);

  /// Attach a registry to receive per-span-name duration histograms.
  void set_registry(MetricsRegistry* r) { registry_ = r; }

  const std::vector<Span>& spans() const { return spans_; }
  uint64_t dropped_spans() const { return dropped_; }

  /// The span for an id (nullptr for 0/unknown).  Pointers are invalidated
  /// by the next begin().
  const Span* find(SpanId id) const;

  /// "name(detail)@<begin>us <- parent(...)@..." — the ancestry of `ctx`,
  /// innermost first.  Used to attach the offending operation's trace to
  /// verifier violations.  Empty string for ctx 0.
  std::string render_ancestry(SpanId ctx) const;

 private:
  Span* mut(SpanId id);

  std::vector<Span> spans_;
  size_t max_spans_;
  uint64_t dropped_ = 0;
  MetricsRegistry* registry_ = nullptr;
};

}  // namespace music::obs
