// Exporters: Chrome trace_event JSON and flat metrics JSON/CSV.
//
// chrome_trace_json() renders a Tracer's spans in the trace_event "complete
// event" format — {"traceEvents":[{"ph":"X",...}]} — loadable directly in
// chrome://tracing or Perfetto.  Sites map to Chrome processes (pid) and
// nodes to threads (tid); "M" metadata events name them.  Events are sorted
// by begin timestamp as the viewers expect; spans still open at export time
// are skipped.
//
// metrics_json()/metrics_csv() flatten a MetricsRegistry: every counter as
// name -> value, every histogram as name -> {count,sum,min,max,mean,p50,
// p95,p99}.  std::map ordering makes the output byte-stable for a given run.
#pragma once

#include <string>

namespace music::obs {

class Tracer;
class MetricsRegistry;

/// Chrome trace_event JSON for all finished spans.
std::string chrome_trace_json(const Tracer& tracer);

/// {"counters":{...},"histograms":{...}}
std::string metrics_json(const MetricsRegistry& reg);

/// Long-format CSV: metric,kind,field,value (one row per scalar).
std::string metrics_csv(const MetricsRegistry& reg);

/// Writes `content` to `path`.  Returns false (and prints to stderr) on
/// failure — exporters are best-effort, never fatal to a run.
bool write_file(const std::string& path, const std::string& content);

}  // namespace music::obs
