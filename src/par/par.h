// Deterministic parallel runners: across worlds and within one world.
//
// The simulation kernel runs one virtual clock per world.  Benches and soak
// tests run MANY independent worlds — one per (seed, config) cell of a sweep
// — and those are embarrassingly parallel.  run_worlds() fans a vector of
// world configs across a Pool with the two properties the determinism story
// needs:
//
//   * Each world runs START-TO-FINISH on exactly one worker thread.  The
//     sim kernel's thread_local state (CurrentSimScope, the InlineFn
//     CallablePool) is per-thread, so worlds never share kernel state and
//     the pool's alloc/free thread-confinement rule holds by construction.
//   * Results are keyed by INDEX, not by completion order.  Combined with
//     per-world seeding (the config carries the seed; nothing is drawn from
//     a shared rng), the output vector is bit-identical whether the sweep
//     runs on 1 thread or N — scheduling only changes wall-clock time.
//
// Pool is the shared substrate: a persistent fork/join worker group that
// run_worlds uses once per sweep and that the conservative PDES engine
// inside sim::Simulation reuses once per lookahead window (sim/simulation.h
// — there the indices are per-site event lanes instead of worlds, but the
// contract is the same: each index runs entirely on one thread, and run()
// does not return until every index completed).
//
// Exceptions thrown by an index are captured per-index and the lowest-index
// one is rethrown after every index finished, so error behaviour is
// thread-count invariant (no torn sweeps: the pool always drains).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace music::par {

/// Worker threads used when run_worlds' `threads` argument is 0: the
/// hardware concurrency, at least 1.
size_t default_threads();

/// A persistent fork/join worker group.  Construction spawns `extra_threads`
/// workers that sleep between batches; run(n, fn) executes fn(0..n-1) across
/// the workers PLUS the calling thread and returns once all n completed
/// (rethrowing the lowest-index exception, if any).  Total concurrency is
/// therefore extra_threads + 1.  Indices are claimed by atomic counter, so
/// which thread runs which index varies run to run — callers must key
/// results by index, never by completion order.
///
/// run() itself must only be called from one thread at a time (the owner);
/// the pool is not a general task queue.
class Pool {
 public:
  explicit Pool(size_t extra_threads);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Runs fn(i) for every i in [0, n), blocking until all completed.
  void run(size_t n, const std::function<void(size_t)>& fn);

  size_t extra_threads() const { return threads_.size(); }

 private:
  struct Batch {
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::vector<std::exception_ptr>* errors = nullptr;
    std::atomic<size_t> next{0};
  };

  void claim_loop(Batch& b);

  // Workers sleep in gen_.wait(); each run() publishes the batch pointer and
  // bumps the generation (release) to wake them, then waits on the idle_
  // latch for all of them to finish the claim loop (acquire).
  std::atomic<uint64_t> gen_{0};
  std::atomic<size_t> idle_{0};
  std::atomic<bool> stop_{false};
  Batch* batch_ = nullptr;
  std::vector<std::thread> threads_;
};

namespace detail {

/// Runs body(0) .. body(n-1), each call entirely on one thread, across
/// `threads` workers (0 = default_threads()).  Captures per-index
/// exceptions and rethrows the lowest-index one after all calls finished.
void run_indexed(size_t n, size_t threads,
                 const std::function<void(size_t)>& body);

}  // namespace detail

/// Runs `fn(config)` for every config, in parallel across `threads` workers
/// (0 = default_threads(); pass 1 to force sequential execution, e.g. to
/// check invariance).  Returns one result per config, in config order.
///
/// `fn` must not touch shared mutable state: each call should build its own
/// Simulation/world from its config (including the seed) and return a plain
/// value.  R must be default-constructible and movable.
template <typename Config, typename Fn>
auto run_worlds(const std::vector<Config>& configs, Fn fn, size_t threads = 0)
    -> std::vector<decltype(fn(std::declval<const Config&>()))> {
  using R = decltype(fn(std::declval<const Config&>()));
  std::vector<R> results(configs.size());
  detail::run_indexed(configs.size(), threads,
                      [&](size_t i) { results[i] = fn(configs[i]); });
  return results;
}

}  // namespace music::par
