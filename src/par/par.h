// Deterministic multi-world parallel runner.
//
// The simulation kernel is strictly single-threaded: one Simulation, one
// virtual clock, one rng stream per world.  Benches and soak tests, however,
// run MANY independent worlds — one per (seed, config) cell of a sweep — and
// those are embarrassingly parallel.  run_worlds() fans a vector of world
// configs across a thread pool with the two properties the determinism story
// needs:
//
//   * Each world runs START-TO-FINISH on exactly one worker thread.  The
//     sim kernel's thread_local state (CurrentSimScope, the InlineFn
//     CallablePool) is per-thread, so worlds never share kernel state and
//     the pool's alloc/free thread-confinement rule holds by construction.
//   * Results are keyed by INDEX, not by completion order.  Combined with
//     per-world seeding (the config carries the seed; nothing is drawn from
//     a shared rng), the output vector is bit-identical whether the sweep
//     runs on 1 thread or N — scheduling only changes wall-clock time.
//
// Exceptions thrown by a world are captured per-index and the lowest-index
// one is rethrown after every world finished, so error behaviour is also
// thread-count invariant (no torn sweeps: the pool always drains).
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace music::par {

/// Worker threads used when run_worlds' `threads` argument is 0: the
/// hardware concurrency, at least 1.
size_t default_threads();

namespace detail {

/// Runs body(0) .. body(n-1), each call entirely on one thread, across
/// `threads` workers (0 = default_threads()).  Captures per-index
/// exceptions and rethrows the lowest-index one after all calls finished.
void run_indexed(size_t n, size_t threads,
                 const std::function<void(size_t)>& body);

}  // namespace detail

/// Runs `fn(config)` for every config, in parallel across `threads` workers
/// (0 = default_threads(); pass 1 to force sequential execution, e.g. to
/// check invariance).  Returns one result per config, in config order.
///
/// `fn` must not touch shared mutable state: each call should build its own
/// Simulation/world from its config (including the seed) and return a plain
/// value.  R must be default-constructible and movable.
template <typename Config, typename Fn>
auto run_worlds(const std::vector<Config>& configs, Fn fn, size_t threads = 0)
    -> std::vector<decltype(fn(std::declval<const Config&>()))> {
  using R = decltype(fn(std::declval<const Config&>()));
  std::vector<R> results(configs.size());
  detail::run_indexed(configs.size(), threads,
                      [&](size_t i) { results[i] = fn(configs[i]); });
  return results;
}

}  // namespace music::par
