#include "par/par.h"

#include <algorithm>
#include <exception>

namespace music::par {

size_t default_threads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

Pool::Pool(size_t extra_threads) {
  threads_.reserve(extra_threads);
  for (size_t t = 0; t < extra_threads; ++t) {
    threads_.emplace_back([this] {
      uint64_t seen = 0;
      for (;;) {
        gen_.wait(seen, std::memory_order_acquire);
        seen = gen_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_acquire)) return;
        claim_loop(*batch_);
        // Last worker out releases the owner waiting in run().
        if (idle_.fetch_sub(1, std::memory_order_release) == 1) {
          idle_.notify_all();
        }
      }
    });
  }
}

Pool::~Pool() {
  stop_.store(true, std::memory_order_release);
  gen_.fetch_add(1, std::memory_order_release);
  gen_.notify_all();
  for (auto& th : threads_) th.join();
}

void Pool::claim_loop(Batch& b) {
  for (;;) {
    size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b.n) return;
    try {
      (*b.fn)(i);
    } catch (...) {
      (*b.errors)[i] = std::current_exception();
    }
  }
}

void Pool::run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::exception_ptr> errors(n);
  Batch b;
  b.n = n;
  b.fn = &fn;
  b.errors = &errors;
  if (threads_.empty() || n == 1) {
    claim_loop(b);
  } else {
    batch_ = &b;
    idle_.store(threads_.size(), std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    gen_.notify_all();
    claim_loop(b);
    // Wait for every worker to leave the claim loop: their writes (results,
    // captured exceptions, per-lane queues in the PDES case) are published
    // by the release decrement in the worker and acquired here.
    size_t live;
    while ((live = idle_.load(std::memory_order_acquire)) != 0) {
      idle_.wait(live, std::memory_order_acquire);
    }
    batch_ = nullptr;
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

namespace detail {

void run_indexed(size_t n, size_t threads,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (threads == 0) threads = default_threads();
  threads = std::min(threads, n);
  // The calling thread participates in Pool::run, so `threads` total
  // concurrency means threads - 1 extra workers.
  Pool pool(threads > 1 ? threads - 1 : 0);
  pool.run(n, body);
}

}  // namespace detail

}  // namespace music::par
