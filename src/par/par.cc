#include "par/par.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace music::par {

size_t default_threads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

namespace detail {

void run_indexed(size_t n, size_t threads,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (threads == 0) threads = default_threads();
  threads = std::min(threads, n);

  std::vector<std::exception_ptr> errors(n);
  auto run_one = [&](size_t i) {
    try {
      body(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) run_one(i);
  } else {
    // Work-stealing by atomic index: workers pull the next unclaimed world.
    // Which thread runs which world varies run to run — that is fine, the
    // result slot is fixed by index and worlds share no state.
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (;;) {
          size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          run_one(i);
        }
      });
    }
    for (auto& th : pool) th.join();
  }

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace detail

}  // namespace music::par
