#include "verify/oracle.h"

#include <algorithm>
#include <sstream>

#include "core/session.h"
#include "obs/trace.h"

namespace music::verify {

void EcfChecker::note_event(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  keys_[key].last_event = sim_.now();
}

std::optional<Value> EcfChecker::stable_truth(const Key& key,
                                              sim::Duration min_quiet) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return std::nullopt;
  const KeyState& ks = it->second;
  if (ks.true_idx < 0) return std::nullopt;        // no committed truth yet
  if (!ks.candidates.empty()) return std::nullopt; // choice still open
  if (ks.resync_pending) return std::nullopt;      // preemption unresolved
  if (sim_.now() - ks.last_event < min_quiet) return std::nullopt;
  const Attempt& truth = ks.attempts[static_cast<size_t>(ks.true_idx)];
  // Any eligible pending attempt could still land and out-stamp the truth.
  for (const Attempt& a : ks.attempts) {
    if (!a.acked && a.ref >= ks.dead_below && later(a, truth)) {
      return std::nullopt;
    }
  }
  return truth.value;
}

void EcfChecker::fail(const std::string& invariant, const Key& key,
                      const std::string& detail) {
  std::string d = detail + " (t=" + std::to_string(sim_.now()) + "us)";
  // Checker callbacks run inside the offending client operation's coroutine,
  // so the simulation's current trace context is that operation's span: a
  // violation report carries the full span ancestry when tracing is on.
  if (obs::Tracer* t = sim_.tracer()) {
    std::string anc = t->render_ancestry(sim_.trace_ctx());
    if (!anc.empty()) d += "\n  trace: " + anc;
  }
  violations_.emplace_back(invariant, key, std::move(d));
}

std::string EcfChecker::dump_state(const KeyState& ks) {
  std::ostringstream os;
  os << "\n  history: max_granted=" << ks.max_granted
     << " dead_below=" << ks.dead_below << " true_idx=" << ks.true_idx
     << " resync_pending=" << ks.resync_pending << " candidates=[";
  for (size_t i = 0; i < ks.candidates.size(); ++i) {
    os << (i ? "," : "") << ks.candidates[i];
  }
  os << "] attempts=[";
  for (size_t i = 0; i < ks.attempts.size(); ++i) {
    const Attempt& a = ks.attempts[i];
    os << "\n    #" << i << " ref=" << a.ref << " seq=" << a.seq << " '"
       << a.value.data << "'" << (a.acked ? " acked" : " pending");
  }
  os << "]";
  return os.str();
}

void EcfChecker::open_candidates(KeyState& ks, LockRef ref) {
  // The quorum read at entry can return the committed true value, or any
  // write attempted with a (lockRef, seq) stamp above it — an in-flight or
  // quorum-acked write of a preempted later holder — provided its lockRef
  // was not already killed by an earlier synchronization (dead_below) and
  // is below the new holder's ref.
  ks.candidates.clear();
  if (ks.true_idx >= 0) ks.candidates.push_back(ks.true_idx);
  for (int64_t i = 0; i < static_cast<int64_t>(ks.attempts.size()); ++i) {
    const Attempt& a = ks.attempts[static_cast<size_t>(i)];
    if (a.ref >= ref) continue;  // stamped above us: impossible, we are head
    if (a.ref < ks.dead_below) continue;  // killed by a synchronization
    if (ks.true_idx >= 0 &&
        !later(a, ks.attempts[static_cast<size_t>(ks.true_idx)])) {
      continue;  // older than the committed truth: cannot win the read
    }
    ks.candidates.push_back(i);
  }
}

void EcfChecker::on_acquired(const Key& key, LockRef ref) {
  std::lock_guard<std::mutex> lock(mu_);
  KeyState& ks = keys_[key];
  ks.last_event = sim_.now();
  if (ref < ks.max_granted) {
    if (lenient_stale_grants_) return;  // stale view; ECF promises nothing
    fail("Fairness", key,
         "lock granted to ref " + std::to_string(ref) + " after ref " +
             std::to_string(ks.max_granted));
    return;
  }
  if (ks.active_holder != 0 && ks.active_holder != ref &&
      !ks.preempted[ks.active_holder]) {
    fail("Exclusivity", key,
         "ref " + std::to_string(ref) + " granted while ref " +
             std::to_string(ks.active_holder) +
             " still holds the lock (no forced release)");
  }
  if (ref != ks.max_granted) {
    // A genuinely new holder: the synchronization may have committed any
    // eligible write since the last committed truth.
    open_candidates(ks, ref);
    if (ks.resync_pending) {
      // The grant ran the synchFlag synchronization: the chosen value is
      // re-stamped under `ref`, so every other attempt below `ref` is dead.
      ks.dead_below = ref;
      ks.resync_pending = false;
    }
  }
  ks.max_granted = std::max(ks.max_granted, ref);
  ks.active_holder = ref;
}

void EcfChecker::on_put_attempt(const Key& key, LockRef ref, const Value& v) {
  std::lock_guard<std::mutex> lock(mu_);
  KeyState& ks = keys_[key];
  ks.last_event = sim_.now();
  int64_t seq = ks.next_seq[ref]++;
  ks.attempts.emplace_back(ref, seq, v);
}

void EcfChecker::on_put_acked(const Key& key, LockRef ref, const Value& v) {
  std::lock_guard<std::mutex> lock(mu_);
  KeyState& ks = keys_[key];
  ks.last_event = sim_.now();
  // Find the matching attempt (latest unacked with this ref+value).
  int64_t idx = -1;
  for (int64_t i = static_cast<int64_t>(ks.attempts.size()) - 1; i >= 0; --i) {
    Attempt& a = ks.attempts[static_cast<size_t>(i)];
    if (a.ref == ref && !a.acked && a.value == v) {
      a.acked = true;
      idx = i;
      break;
    }
  }
  if (idx < 0) {
    fail("Checker", key, "ack without matching attempt");
    return;
  }
  ks.any_acked = true;
  if (ks.preempted[ref] || ref < ks.max_granted) {
    // An acknowledged write by a preempted/stale holder: it does not define
    // the truth for the *current* holder's reads, but until the next
    // synchronization it may still win a quorum read, so it stays eligible
    // via open_candidates (driven by its (ref,seq) stamp).
    return;
  }
  // The holder's own acknowledged write becomes the true value and closes
  // any ambiguity.
  ks.true_idx = idx;
  ks.candidates.clear();
}

void EcfChecker::on_get_ok(const Key& key, LockRef ref, const Value& v) {
  std::lock_guard<std::mutex> lock(mu_);
  KeyState& ks = keys_[key];
  ks.last_event = sim_.now();
  if (ref < ks.max_granted) {
    // A stale holder's read raced a preemption; ECF makes no promise to it.
    return;
  }
  // A read may return the holder's OWN attempted write before its ack was
  // processed: batch flushes report acks only after the whole batch returns,
  // and a retried batch can land a write whose per-op result was lost in
  // flight.  Observing the value through a quorum read proves the write
  // reached a quorum, so the observation commits the truth to that attempt
  // (the ack, if it is ever reported, re-commits the same choice).  Only
  // attempts not older than the committed truth qualify — a holder reading
  // its own write from *before* an acknowledged one is a genuine staleness
  // violation and falls through to the checks below.
  for (int64_t i = static_cast<int64_t>(ks.attempts.size()) - 1; i >= 0; --i) {
    const Attempt& a = ks.attempts[static_cast<size_t>(i)];
    if (a.ref != ref || !(a.value == v)) continue;
    if (ks.true_idx >= 0 && i != ks.true_idx &&
        !later(a, ks.attempts[static_cast<size_t>(ks.true_idx)])) {
      continue;
    }
    ks.true_idx = i;
    ks.candidates.clear();
    ks.any_acked = true;
    return;
  }
  // Reads by the current holder after its own acked put must see that put.
  if (ks.true_idx >= 0) {
    const Attempt& t = ks.attempts[static_cast<size_t>(ks.true_idx)];
    if (t.ref == ref) {
      if (!(t.value == v)) {
        fail("Latest-State", key,
             "holder " + std::to_string(ref) + " read '" + v.data +
                 "' but its own acknowledged write was '" + t.value.data + "'");
      }
      return;
    }
  }
  // First read of a new critical section: must match the committed truth or
  // one of the open candidates (the paper's non-deterministic choice); the
  // observation commits the choice.
  if (!ks.candidates.empty()) {
    for (int64_t i : ks.candidates) {
      if (ks.attempts[static_cast<size_t>(i)].value == v) {
        ks.true_idx = i;
        ks.candidates.clear();
        return;
      }
    }
    fail("Latest-State", key,
         "holder " + std::to_string(ref) + " read '" + v.data +
             "', not among the eligible true values after preemption" +
             dump_state(ks));
    return;
  }
  if (ks.true_idx >= 0) {
    const Attempt& t = ks.attempts[static_cast<size_t>(ks.true_idx)];
    if (!(t.value == v)) {
      fail("Latest-State", key,
           "holder " + std::to_string(ref) + " read '" + v.data +
               "' but the true value is '" + t.value.data + "'");
    }
    return;
  }
  fail("Latest-State", key,
       "holder " + std::to_string(ref) + " read '" + v.data +
           "' but no write was ever attempted");
}

void EcfChecker::on_get_not_found(const Key& key, LockRef ref) {
  std::lock_guard<std::mutex> lock(mu_);
  KeyState& ks = keys_[key];
  ks.last_event = sim_.now();
  if (ref < ks.max_granted) return;  // stale holder; no promise
  // Once any write has been acknowledged it reached a quorum, so every
  // subsequent quorum read (including the entry synchronization) finds a
  // value: NotFound is only legal while all attempts are still pending.
  if (ks.any_acked || ks.true_idx >= 0) {
    std::string truth = ks.true_idx >= 0
                            ? ks.attempts[static_cast<size_t>(ks.true_idx)].value.data
                            : std::string("<an acknowledged write>");
    fail("Latest-State", key,
         "holder " + std::to_string(ref) +
             " read NotFound but a true value exists: '" + truth + "'");
  }
}

void EcfChecker::on_released(const Key& key, LockRef ref) {
  std::lock_guard<std::mutex> lock(mu_);
  KeyState& ks = keys_[key];
  ks.last_event = sim_.now();
  if (ks.active_holder == ref) ks.active_holder = 0;
}

void EcfChecker::on_forced_release(const Key& key, LockRef ref) {
  std::lock_guard<std::mutex> lock(mu_);
  KeyState& ks = keys_[key];
  ks.last_event = sim_.now();
  ks.preempted[ref] = true;
  ks.resync_pending = true;  // the next grant will synchronize
  if (ks.active_holder == ref) ks.active_holder = 0;
}

std::string EcfChecker::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& v : violations_) {
    os << "[" << v.invariant << "] key=" << v.key << ": " << v.detail << "\n";
  }
  return os.str();
}

sim::Task<Status> CheckedClient::flush(core::Session& session) {
  if (session.pending() == 0) co_return co_await session.flush();
  for (const auto& op : session.ops()) {
    if (op.kind == core::BatchOp::Kind::Put) {
      checker_.on_put_attempt(op.key, session.ref(), op.value);
    }
  }
  auto st = co_await session.flush();
  const auto& ops = session.ops();
  const auto& rs = session.results();
  for (size_t i = 0; i < ops.size() && i < rs.size(); ++i) {
    if (ops[i].kind == core::BatchOp::Kind::Put) {
      if (rs[i].status == OpStatus::Ok) {
        checker_.on_put_acked(ops[i].key, session.ref(), ops[i].value);
      }
    } else if (ops[i].kind == core::BatchOp::Kind::Get) {
      if (rs[i].status == OpStatus::Ok) {
        checker_.on_get_ok(ops[i].key, session.ref(), rs[i].value);
      } else if (rs[i].status == OpStatus::NotFound) {
        checker_.on_get_not_found(ops[i].key, session.ref());
      }
    }
  }
  co_return st;
}

DefinedResult data_store_defined(ds::StoreCluster& cluster,
                                 const Key& music_key) {
  Key dkey = core::MusicReplica::data_key(music_key);
  auto placement = cluster.placement(dkey);
  // The highest-timestamp cell anywhere is the candidate true value.
  std::optional<ds::Cell> best;
  for (sim::NodeId n : placement) {
    auto c = cluster.by_node(n).local_read(dkey);
    if (c && (!best || c->ts > best->ts)) best = c;
  }
  if (!best) return DefinedResult(false, std::nullopt);
  // "Defined as v": fewer than a quorum hold a value that is not v.
  int not_v = 0;
  for (sim::NodeId n : placement) {
    auto c = cluster.by_node(n).local_read(dkey);
    if (!c || !(c->value == best->value)) ++not_v;
  }
  bool defined = not_v < cluster.quorum();
  return DefinedResult(defined, best->value);
}

}  // namespace music::verify
