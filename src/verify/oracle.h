// Executable counterpart of the paper's Alloy verification (§V).
//
// The Alloy model keeps *history variables* — the set of attempted quorum
// writes partitioned into pending/succeeded, and the "true pair" (the
// attempted write with the latest timestamp) — and proves, by bounded model
// enumeration, that the Critical-Section, SynchFlag, Exclusivity and
// Latest-State properties hold in every reachable state.
//
// Here the same history variables are maintained at runtime by EcfChecker,
// fed by instrumented clients (CheckedClient), and the same properties are
// asserted continuously while randomized property tests drive the system
// through crashes, partitions, forced releases and false failure detection.
// Bounded exhaustive enumeration is replaced by bounded randomized
// exploration over many seeds (tests/music/ecf_property_test.cc).
//
// The §III refinement is encoded exactly: after a preemption, the next
// lockholder's first read may return either the last acknowledged write or
// one of the writes that were attempted (pending or acknowledged) by later
// lockRefs since then — the synchronization commits the system to one
// choice, and from then on the checker holds it to that choice.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/music.h"

namespace music::core {
class Session;  // core/session.h — only CheckedClient::flush's definition needs it
}

namespace music::verify {

/// A violation found by the checker.
struct Violation {
  std::string invariant;
  Key key;
  std::string detail;

  Violation() = default;
  Violation(std::string i, Key k, std::string d)
      : invariant(std::move(i)), key(std::move(k)), detail(std::move(d)) {}
};

/// History-variable checker for ECF semantics.
///
/// Thread-safe: one checker is typically shared by every client in a world,
/// and under PDES those clients execute on concurrent site lanes, so each
/// public method takes an internal mutex (uncontended — a handful of cycles
/// — in classic single-threaded worlds).  The history itself stays
/// deterministic because per-key event order is driven by the simulated
/// timeline, not by which worker delivers the callback.
class EcfChecker {
 public:
  explicit EcfChecker(sim::Simulation& sim) : sim_(sim) {}

  /// In failure-injection runs a client may be granted a lock from a stale
  /// local lock-store view after it was already preempted and superseded.
  /// ECF makes no promises to such holders; lenient mode ignores their
  /// grant events instead of flagging Fairness (keep strict for
  /// failure-free histories).
  void set_lenient_stale_grants(bool v) { lenient_stale_grants_ = v; }

  // ---- Events reported by instrumented clients. -----------------------------

  void on_acquired(const Key& key, LockRef ref);
  /// A criticalPut was sent (it is now "pending" in the Alloy sense).
  void on_put_attempt(const Key& key, LockRef ref, const Value& v);
  /// The same put was acknowledged (it moves to "succeeded").
  void on_put_acked(const Key& key, LockRef ref, const Value& v);
  /// A criticalGet returned a value (checks Latest-State).
  void on_get_ok(const Key& key, LockRef ref, const Value& v);
  /// A criticalGet reported the key absent.
  void on_get_not_found(const Key& key, LockRef ref);
  void on_released(const Key& key, LockRef ref);
  void on_forced_release(const Key& key, LockRef ref);

  // ---- Results. --------------------------------------------------------------

  /// Post-run accessor (not synchronized: call after the world is drained).
  const std::vector<Violation>& violations() const { return violations_; }
  bool ok() const {
    std::lock_guard<std::mutex> lock(mu_);
    return violations_.empty();
  }
  /// Human-readable report of all violations (empty string if none).
  std::string report() const;

  /// The key's committed true value, when it is STABLE: the choice is
  /// committed (no open candidates), no eligible attempt is still pending
  /// (nothing in flight can change the winning timestamp), and the key has
  /// been quiet for `min_quiet`.  Under these conditions the paper's
  /// Critical-Section Invariant says the data store must be *defined* as
  /// exactly this value — samplers combine this with data_store_defined()
  /// to tie the oracle to the physical replicas.
  std::optional<Value> stable_truth(const Key& key,
                                    sim::Duration min_quiet) const;

  /// Explicitly records an observation point for quietness tracking.
  void note_event(const Key& key);

 private:
  struct Attempt {
    LockRef ref = 0;
    int64_t seq = 0;  // order within the critical section
    Value value;
    bool acked = false;

    Attempt() = default;
    Attempt(LockRef r, int64_t s, Value v) : ref(r), seq(s), value(std::move(v)) {}
  };

  struct KeyState {
    /// All attempted writes, in (ref, seq) order — the Alloy history set.
    std::vector<Attempt> attempts;
    /// The committed choice for the key's true value, as an index into
    /// attempts (-1: none; the key has never had a committed write).
    int64_t true_idx = -1;
    /// Open candidate set (indices) when the true value is ambiguous after
    /// a preemption; the next observation commits the choice.
    std::vector<int64_t> candidates;
    /// Highest ref ever granted; grants must be non-decreasing.
    LockRef max_granted = 0;
    /// Ref currently believed to hold the lock exclusively (0: none).
    LockRef active_holder = 0;
    /// Per-ref attempt counter.
    std::map<LockRef, int64_t> next_seq;
    /// Refs that were force-released (their acks no longer advance the
    /// committed truth; they only extend the candidate set).
    std::map<LockRef, bool> preempted;
    /// A forced release happened since the last grant: the next grant runs
    /// the synchFlag synchronization, which re-stamps the chosen value under
    /// the new holder's lockRef and thereby kills every older attempt.
    bool resync_pending = false;
    /// Attempts with ref below this are dead (killed by a synchronization)
    /// unless they are the committed truth itself.
    LockRef dead_below = 0;
    /// Some attempt was acknowledged (reached a quorum): reads can no
    /// longer legally return NotFound.
    bool any_acked = false;
    /// Last event touching this key (quietness for stable_truth).
    sim::Time last_event = 0;
  };

  void fail(const std::string& invariant, const Key& key,
            const std::string& detail);
  /// Attempt table + history variables, one line — appended to Latest-State
  /// failures so a violation report is diagnosable without a re-run.
  static std::string dump_state(const KeyState& ks);
  /// (ref, seq) ordering of two attempts.
  static bool later(const Attempt& a, const Attempt& b) {
    return a.ref != b.ref ? a.ref > b.ref : a.seq > b.seq;
  }
  /// Recomputes the candidate set for a new holder entering at `ref`.
  void open_candidates(KeyState& ks, LockRef ref);

  sim::Simulation& sim_;
  mutable std::mutex mu_;
  std::map<Key, KeyState> keys_;
  std::vector<Violation> violations_;
  bool lenient_stale_grants_ = false;
};

/// A MusicClient wrapper that reports every observable transition to an
/// EcfChecker.  Property tests use it exactly like MusicClient.
class CheckedClient {
 public:
  CheckedClient(core::MusicClient& inner, EcfChecker& checker)
      : inner_(inner), checker_(checker) {}

  sim::Task<Result<LockRef>> create_lock_ref(Key key) {
    co_return co_await inner_.create_lock_ref(std::move(key));
  }

  sim::Task<Status> acquire_lock_blocking(Key key, LockRef ref) {
    auto st = co_await inner_.acquire_lock_blocking(key, ref);
    if (st.ok()) checker_.on_acquired(key, ref);
    co_return st;
  }

  sim::Task<Status> critical_put(Key key, LockRef ref, Value value) {
    checker_.on_put_attempt(key, ref, value);
    auto st = co_await inner_.critical_put(key, ref, value);
    if (st.ok()) checker_.on_put_acked(key, ref, value);
    co_return st;
  }

  sim::Task<Result<Value>> critical_get(Key key, LockRef ref) {
    auto r = co_await inner_.critical_get(key, ref);
    if (r.ok()) {
      checker_.on_get_ok(key, ref, r.value());
    } else if (r.status() == OpStatus::NotFound) {
      checker_.on_get_not_found(key, ref);
    }
    co_return r;
  }

  /// Flushes a batch Session with oracle instrumentation.  Every queued put
  /// is reported as attempted BEFORE the batch ships (once on the wire it
  /// is "pending" in the Alloy sense, whether or not the replica aborts the
  /// tail), then acks/reads are reported from the per-op results.  Deletes
  /// are unmodeled by the oracle (as with the unbatched client, which has
  /// no checked critical_delete), and the per-key history assumes sub-ops
  /// target the session's lock key — oracle-checked histories batch
  /// puts/gets on the key whose lock they hold.
  sim::Task<Status> flush(core::Session& session);

  sim::Task<Status> release_lock(Key key, LockRef ref) {
    // Report on entry: the holder leaves its critical section the moment it
    // initiates the release (the dequeue commits at the lock store before
    // the client's reply arrives, so the next grant may be observed first).
    checker_.on_released(key, ref);
    co_return co_await inner_.release_lock(key, ref);
  }

  sim::Task<Status> forced_release(Key key, LockRef ref) {
    auto st = co_await inner_.forced_release(key, ref);
    if (st.ok()) checker_.on_forced_release(key, ref);
    co_return st;
  }

  core::MusicClient& inner() { return inner_; }

 private:
  core::MusicClient& inner_;
  EcfChecker& checker_;
};

/// Store-level check of the paper's "data store is defined as value v"
/// (§IV-A): fewer than a quorum of the key's replicas hold a value that is
/// not v, where v is the highest-timestamp cell present.  Inspects replica
/// tables directly (no messages); call while the simulation is quiescent
/// for the key.
struct DefinedResult {
  bool defined = false;
  std::optional<Value> value;

  DefinedResult() = default;
  DefinedResult(bool d, std::optional<Value> v) : defined(d), value(std::move(v)) {}
};
DefinedResult data_store_defined(ds::StoreCluster& cluster, const Key& music_key);

}  // namespace music::verify
