#include "raftkv/raft.h"

#include "sim/span.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace music::raftkv {

// ---- RaftNode ---------------------------------------------------------------

RaftNode::RaftNode(RaftCluster& cluster, sim::NodeId node, int site, int id)
    : cluster_(cluster),
      node_(node),
      site_(site),
      id_(id),
      service_(cluster.simulation(), cluster.config().service),
      disk_(cluster.simulation(), cluster.config().disk),
      rng_(cluster.simulation().rng().fork(0x52414654ull + static_cast<uint64_t>(id))) {
  election_timeout_ = random_election_timeout();
}

sim::Simulation& RaftNode::sim() { return cluster_.simulation(); }
const RaftConfig& RaftNode::cfg() const { return cluster_.config(); }

sim::Duration RaftNode::random_election_timeout() {
  return rng_.uniform_int(cfg().election_timeout_min,
                          cfg().election_timeout_max);
}

void RaftNode::become_follower(int64_t term) {
  if (role_ == Role::Leader) {
    // Fail outstanding proposals; clients retry at the new leader.
    for (auto& [idx, p] : waiting_) {
      p.set_value(ProposeOutcome(OpStatus::Timeout, false));
    }
    waiting_.clear();
    applied_flags_.clear();
  }
  role_ = Role::Follower;
  term_ = term;
  voted_for_ = -1;
  votes_ = 0;
  election_timeout_ = random_election_timeout();
}

void RaftNode::become_candidate() {
  role_ = Role::Candidate;
  term_ += 1;
  voted_for_ = id_;
  votes_ = 1;
  leader_hint_ = -1;
  last_heartbeat_seen_ = sim().now();
  election_timeout_ = random_election_timeout();
  int64_t lli = last_log_index();
  int64_t llt = term_of(lli);
  for (int i = 0; i < cluster_.num_nodes(); ++i) {
    if (i == id_) continue;
    cluster_.post(
        node_, i, cfg().overhead_bytes,
        [t = term_, c = id_, lli, llt](RaftNode& n) {
          n.on_request_vote(t, c, lli, llt);
        },
        sim::MsgKind::RaftVote);
  }
}

void RaftNode::become_leader() {
  role_ = Role::Leader;
  leader_hint_ = id_;
  next_index_.assign(static_cast<size_t>(cluster_.num_nodes()),
                     last_log_index() + 1);
  match_index_.assign(static_cast<size_t>(cluster_.num_nodes()), 0);
  send_heartbeats();
}

void RaftNode::on_request_vote(int64_t term, int candidate,
                               int64_t last_log_index_c, int64_t last_log_term_c) {
  if (term > term_) become_follower(term);
  bool granted = false;
  if (term == term_ && (voted_for_ == -1 || voted_for_ == candidate)) {
    // Candidate's log must be at least as up-to-date (§5.4.1 of Raft).
    int64_t my_lli = last_log_index();
    int64_t my_llt = term_of(my_lli);
    if (last_log_term_c > my_llt ||
        (last_log_term_c == my_llt && last_log_index_c >= my_lli)) {
      granted = true;
      voted_for_ = candidate;
      last_heartbeat_seen_ = sim().now();
    }
  }
  cluster_.post(
      node_, candidate, cfg().overhead_bytes,
      [t = term_, granted, me = id_](RaftNode& n) {
        n.on_vote_reply(t, granted, me);
      },
      sim::MsgKind::RaftVote);
}

void RaftNode::on_vote_reply(int64_t term, bool granted, int /*from*/) {
  if (term > term_) {
    become_follower(term);
    return;
  }
  if (role_ != Role::Candidate || term != term_ || !granted) return;
  votes_ += 1;
  if (votes_ >= cluster_.quorum()) become_leader();
}

void RaftNode::send_heartbeats() {
  for (int i = 0; i < cluster_.num_nodes(); ++i) {
    if (i == id_) continue;
    replicate_to(i);
  }
}

void RaftNode::replicate_to(int peer) {
  int64_t next = next_index_.at(static_cast<size_t>(peer));
  int64_t prev = next - 1;
  std::vector<LogEntry> entries(
      log_.begin() + static_cast<ptrdiff_t>(prev),
      log_.end());
  size_t bytes = cfg().overhead_bytes;
  for (const auto& e : entries) bytes += e.cmd.bytes() + 16;
  cluster_.post(
      node_, peer, bytes,
      [t = term_, me = id_, prev, pt = term_of(prev),
       entries = std::move(entries), lc = commit_index_](RaftNode& n) {
        n.on_append_entries(t, me, prev, pt, entries, lc);
      },
      sim::MsgKind::RaftAppend);
}

void RaftNode::on_append_entries(int64_t term, int leader, int64_t prev_index,
                                 int64_t prev_term,
                                 std::vector<LogEntry> entries,
                                 int64_t leader_commit) {
  if (term < term_) {
    cluster_.post(
        node_, leader, cfg().overhead_bytes,
        [t = term_, me = id_](RaftNode& n) { n.on_append_reply(t, false, 0, me); },
        sim::MsgKind::RaftAppendAck);
    return;
  }
  if (term > term_ || role_ != Role::Follower) become_follower(term);
  term_ = term;
  leader_hint_ = leader;
  last_heartbeat_seen_ = sim().now();

  // Consistency check on the previous entry.
  if (prev_index > last_log_index() || term_of(prev_index) != prev_term) {
    cluster_.post(
        node_, leader, cfg().overhead_bytes,
        [t = term_, me = id_](RaftNode& n) { n.on_append_reply(t, false, 0, me); },
        sim::MsgKind::RaftAppendAck);
    return;
  }
  // Append, truncating conflicts.
  int64_t index = prev_index;
  size_t new_bytes = 0;
  for (auto& e : entries) {
    index += 1;
    if (index <= last_log_index()) {
      if (log_.at(static_cast<size_t>(index - 1)).term != e.term) {
        log_.resize(static_cast<size_t>(index - 1));
        durable_index_ = std::min(durable_index_, index - 1);
      } else {
        continue;  // already have it
      }
    }
    new_bytes += e.cmd.bytes();
    log_.push_back(std::move(e));
  }
  int64_t match = index;
  if (leader_commit > commit_index_) {
    commit_index_ = std::min(leader_commit, last_log_index());
    apply_committed();
  }
  auto reply = [this, leader, match] {
    cluster_.post(
        node_, leader, cfg().overhead_bytes,
        [t = term_, match, me = id_](RaftNode& n) {
          n.on_append_reply(t, true, match, me);
        },
        sim::MsgKind::RaftAppendAck);
  };
  if (match > durable_index_) {
    // Raft durability: fsync new entries before acknowledging.
    disk_.write_sync(new_bytes + 64, [this, match, reply] {
      durable_index_ = std::max(durable_index_, match);
      reply();
    });
  } else {
    reply();  // heartbeat / already-durable suffix
  }
}

void RaftNode::on_append_reply(int64_t term, bool success, int64_t match_index,
                               int from) {
  if (term > term_) {
    become_follower(term);
    return;
  }
  if (role_ != Role::Leader || term != term_) return;
  auto peer = static_cast<size_t>(from);
  if (success) {
    match_index_.at(peer) = std::max(match_index_.at(peer), match_index);
    next_index_.at(peer) = match_index_.at(peer) + 1;
    advance_commit();
  } else {
    next_index_.at(peer) = std::max<int64_t>(1, next_index_.at(peer) - 1);
    replicate_to(from);
  }
}

void RaftNode::advance_commit() {
  // Highest N with a majority of matchIndex >= N and log[N].term == term_.
  for (int64_t n = last_log_index(); n > commit_index_; --n) {
    if (term_of(n) != term_) continue;
    int count = (durable_index_ >= n) ? 1 : 0;  // self, if durable
    for (int i = 0; i < cluster_.num_nodes(); ++i) {
      if (i == id_) continue;
      if (match_index_.at(static_cast<size_t>(i)) >= n) ++count;
    }
    if (count >= cluster_.quorum()) {
      commit_index_ = n;
      apply_committed();
      break;
    }
  }
}

void RaftNode::apply_committed() {
  while (last_applied_ < commit_index_) {
    last_applied_ += 1;
    const LogEntry& e = log_.at(static_cast<size_t>(last_applied_ - 1));
    bool applies = true;
    if (e.cmd.expect_key) {
      auto it = kv_.find(*e.cmd.expect_key);
      const std::string& cur = it == kv_.end() ? std::string() : it->second.data;
      applies = (cur == e.cmd.expect_val.data);
    }
    if (applies) {
      for (const auto& [k, v] : e.cmd.writes) kv_[k] = v;
    }
    if (role_ == Role::Leader) {
      auto fit = applied_flags_.find(last_applied_);
      if (fit != applied_flags_.end()) fit->second = applies;
      auto wit = waiting_.find(last_applied_);
      if (wit != waiting_.end()) {
        wit->second.set_value(ProposeOutcome(OpStatus::Ok, applies));
        waiting_.erase(wit);
        applied_flags_.erase(last_applied_);
      }
    }
  }
}

sim::Task<ProposeOutcome> RaftNode::propose(Command cmd) {
  sim::OpSpan span(sim(), "raft.propose", site_, node_);
  if (down()) co_return ProposeOutcome(OpStatus::Timeout, false);
  if (role_ != Role::Leader) co_return ProposeOutcome(OpStatus::Conflict, false);
  // One append/ack WAN round trip to reach quorum commit.
  sim::trace_rtts(sim(), 1);
  log_.emplace_back(term_, std::move(cmd));
  int64_t index = last_log_index();
  sim::Promise<ProposeOutcome> done(sim());
  waiting_.emplace(index, done);
  applied_flags_.emplace(index, false);
  size_t entry_bytes = log_.back().cmd.bytes();
  // Leader durability in parallel with replication.
  disk_.write_sync(entry_bytes + 64, [this, index, t = term_] {
    if (term_ != t || role_ != Role::Leader) return;
    durable_index_ = std::max(durable_index_, index);
    advance_commit();
  });
  send_heartbeats();  // replicate immediately
  auto got = co_await sim::await_with_timeout<ProposeOutcome>(
      sim(), done.future(), cfg().op_timeout);
  if (!got) {
    waiting_.erase(index);
    applied_flags_.erase(index);
    co_return ProposeOutcome(OpStatus::Timeout, false);
  }
  co_return *got;
}

sim::Task<Result<Value>> RaftNode::read(Key key) {
  sim::OpSpan span(sim(), "raft.read", site_, node_);
  if (down()) co_return Result<Value>::Err(OpStatus::Timeout);
  if (role_ != Role::Leader) co_return Result<Value>::Err(OpStatus::Conflict);
  // Leader-lease read: serve from applied state after a service hop.
  sim::Promise<Result<Value>> p(sim());
  service_.submit(key.size() + 64, [this, key, p] {
    auto it = kv_.find(key);
    p.set_value(it == kv_.end() ? Result<Value>::Err(OpStatus::NotFound)
                                : Result<Value>::Ok(it->second));
  });
  co_return co_await p.future();
}

void RaftNode::election_tick() {
  if (down()) return;
  if (role_ == Role::Leader) {
    send_heartbeats();
    return;
  }
  if (sim().now() - last_heartbeat_seen_ >= election_timeout_) {
    become_candidate();
  }
}

void RaftNode::set_down(bool down) {
  service_.set_down(down);
  disk_.set_down(down);
  cluster_.network().set_node_down(node_, down);
  if (down) {
    for (auto& [idx, p] : waiting_) {
      (void)idx;
      (void)p;  // clients time out; promises dropped
    }
    waiting_.clear();
    applied_flags_.clear();
    role_ = Role::Follower;
    votes_ = 0;
  } else {
    last_heartbeat_seen_ = sim().now();
    election_timeout_ = random_election_timeout();
  }
}

// ---- RaftCluster ------------------------------------------------------------

RaftCluster::RaftCluster(sim::Simulation& sim, sim::Network& net,
                         RaftConfig cfg, const std::vector<int>& node_sites)
    : sim_(sim), net_(net), cfg_(cfg) {
  int id = 0;
  for (int site : node_sites) {
    sim::NodeId n = net_.add_node(site);
    nodes_.push_back(std::make_unique<RaftNode>(*this, n, site, id));
    ++id;
  }
}

RaftNode& RaftCluster::node_at_site(int site) {
  for (auto& n : nodes_) {
    if (n->site() == site && !n->down()) return *n;
  }
  return *nodes_.front();
}

RaftNode* RaftCluster::leader() {
  for (auto& n : nodes_) {
    if (n->role() == Role::Leader && !n->down()) return n.get();
  }
  return nullptr;
}

void RaftCluster::start() {
  for (auto& n : nodes_) {
    RaftNode* node = n.get();
    node->last_heartbeat_seen_ = sim_.now();
    if (node->tick_loop_running_) continue;
    node->tick_loop_running_ = true;
    schedule_tick(node);
  }
}

void RaftCluster::schedule_tick(RaftNode* node) {
  // Self-rescheduling timer event (not a coroutine; see ZabEnsemble).
  sim_.schedule(cfg_.heartbeat, [this, node] {
    node->election_tick();
    schedule_tick(node);
  });
}

RaftNode* RaftCluster::wait_for_leader(sim::Duration limit) {
  sim::Time deadline = sim_.now() + limit;
  while (sim_.now() < deadline) {
    if (RaftNode* l = leader()) return l;
    sim_.run_for(cfg_.heartbeat);
  }
  return leader();
}

}  // namespace music::raftkv
