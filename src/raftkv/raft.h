// Raft consensus (CockroachDB substitute, Fig. 7's baseline).
//
// CockroachDB replicates each range through Raft; every transaction commit
// is one consensus round at the leaseholder.  This module implements the
// Raft core — randomized-timeout leader election, heartbeats, log
// replication with the prevIndex/prevTerm consistency check, majority
// commit, in-order apply — over the simulated network, with log fsyncs at
// leader and followers (Raft's durability requirement).  The state machine
// is a KV map with optional compare-and-set commands, which is what the
// transactional layer in txkv.h needs to run the paper's §X-B3 critical
// section recipe.
//
// Simplifications (documented; irrelevant to the paper's cost model): no
// snapshots/log compaction, leader reads use the leader-lease shortcut
// instead of a read-index round (CockroachDB does the same with leases).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/future.h"
#include "sim/network.h"
#include "sim/service.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace music::raftkv {

/// Cluster tunables.
struct RaftConfig {
  /// Same hardware model as the other stores.
  sim::ServiceConfig service{8, 190, 2.0};
  /// Raft log fsync before acknowledging appends.
  sim::DiskConfig disk{300, 300e6};
  sim::Duration heartbeat = sim::ms(100);
  sim::Duration election_timeout_min = sim::ms(1000);
  sim::Duration election_timeout_max = sim::ms(2000);
  sim::Duration op_timeout = sim::sec(5);
  size_t overhead_bytes = 96;
};

/// A state-machine command: a write batch, optionally guarded by a
/// compare-and-set condition evaluated at apply time (atomic with the
/// writes).  This is what gives the txkv layer atomic lock acquisition.
struct Command {
  std::vector<std::pair<Key, Value>> writes;
  /// If set, the command applies only when state[expect_key] == expect_val
  /// (empty expect_val means "key absent or empty").
  std::optional<Key> expect_key;
  Value expect_val;

  Command() = default;
  explicit Command(std::vector<std::pair<Key, Value>> w)
      : writes(std::move(w)) {}
  Command(std::vector<std::pair<Key, Value>> w, Key ek, Value ev)
      : writes(std::move(w)), expect_key(std::move(ek)), expect_val(std::move(ev)) {}

  size_t bytes() const {
    size_t n = 32;
    for (const auto& [k, v] : writes) n += k.size() + v.size();
    return n;
  }
};

struct LogEntry {
  int64_t term = 0;
  Command cmd;

  LogEntry() = default;
  LogEntry(int64_t t, Command c) : term(t), cmd(std::move(c)) {}
};

enum class Role { Follower, Candidate, Leader };

/// Result of proposing a command.
struct ProposeOutcome {
  OpStatus status = OpStatus::Timeout;
  /// When status == Ok: whether the CAS condition held and writes applied.
  bool applied = false;

  ProposeOutcome() = default;
  ProposeOutcome(OpStatus s, bool a) : status(s), applied(a) {}
};

class RaftCluster;

/// One Raft peer.
class RaftNode {
 public:
  RaftNode(RaftCluster& cluster, sim::NodeId node, int site, int id);

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  sim::NodeId node() const { return node_; }
  int site() const { return site_; }
  int id() const { return id_; }
  Role role() const { return role_; }
  int64_t term() const { return term_; }
  /// Who this node believes is leader (-1 unknown).
  int leader_hint() const { return leader_hint_; }
  sim::ServiceNode& service() { return service_; }
  RaftCluster& cluster_ref() { return cluster_; }

  /// Proposes a command.  Resolves Ok(applied?) once the entry commits and
  /// applies; Conflict if this node is not the leader (redirect using
  /// leader_hint); Timeout if the entry cannot commit in time (e.g. lost
  /// leadership).
  sim::Task<ProposeOutcome> propose(Command cmd);

  /// Leader-lease read of the applied state.  Conflict if not leader.
  sim::Task<Result<Value>> read(Key key);

  /// Applied KV state (tests/oracle).
  const std::unordered_map<Key, Value>& state() const { return kv_; }
  int64_t commit_index() const { return commit_index_; }
  int64_t last_log_index() const { return static_cast<int64_t>(log_.size()); }

  void set_down(bool down);
  bool down() const { return service_.down(); }

  // ---- Message handlers (invoked via RaftCluster::post). --------------------

  void on_request_vote(int64_t term, int candidate, int64_t last_log_index,
                       int64_t last_log_term);
  void on_vote_reply(int64_t term, bool granted, int from);
  void on_append_entries(int64_t term, int leader, int64_t prev_index,
                         int64_t prev_term, std::vector<LogEntry> entries,
                         int64_t leader_commit);
  void on_append_reply(int64_t term, bool success, int64_t match_index,
                       int from);

 private:
  friend class RaftCluster;

  sim::Simulation& sim();
  const RaftConfig& cfg() const;

  void become_follower(int64_t term);
  void become_candidate();
  void become_leader();
  void send_heartbeats();
  void replicate_to(int peer);
  void advance_commit();
  void apply_committed();
  sim::Duration random_election_timeout();
  void election_tick();

  int64_t term_of(int64_t index) const {
    return index == 0 ? 0 : log_.at(static_cast<size_t>(index - 1)).term;
  }

  RaftCluster& cluster_;
  sim::NodeId node_;
  int site_;
  int id_;
  sim::ServiceNode service_;
  sim::Disk disk_;

  Role role_ = Role::Follower;
  int64_t term_ = 0;
  int voted_for_ = -1;
  int leader_hint_ = -1;
  std::vector<LogEntry> log_;  // 1-based indexing via helpers
  int64_t commit_index_ = 0;
  int64_t last_applied_ = 0;
  int64_t durable_index_ = 0;  // highest log index fsynced locally
  std::unordered_map<Key, Value> kv_;

  // Leader state.
  std::vector<int64_t> next_index_;
  std::vector<int64_t> match_index_;
  // index -> (promise, applied-flag slot) for client proposals.
  std::map<int64_t, sim::Promise<ProposeOutcome>> waiting_;
  std::map<int64_t, bool> applied_flags_;

  // Candidate state.
  int votes_ = 0;

  sim::Time last_heartbeat_seen_ = 0;
  sim::Duration election_timeout_ = 0;
  bool tick_loop_running_ = false;
  sim::Rng rng_;
};

/// The cluster: registry + message fabric + timers.
class RaftCluster {
 public:
  RaftCluster(sim::Simulation& sim, sim::Network& net, RaftConfig cfg,
              const std::vector<int>& node_sites);

  sim::Simulation& simulation() { return sim_; }
  sim::Network& network() { return net_; }
  const RaftConfig& config() const { return cfg_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int quorum() const { return num_nodes() / 2 + 1; }
  RaftNode& node(int id) { return *nodes_.at(static_cast<size_t>(id)); }
  RaftNode& node_at_site(int site);
  /// The current leader, if any node is one (tests).
  RaftNode* leader();

  /// Starts election/heartbeat timers everywhere.
  void start();

  /// Runs the simulation until a leader exists (test convenience).  Returns
  /// the leader or nullptr after `limit`.
  RaftNode* wait_for_leader(sim::Duration limit = sim::sec(30));

  /// Sends a handler to run on node `to_id` (network + service queue).
  /// `Fn` is deduced (any callable void(RaftNode&)) so the handler rides
  /// the network's pooled InlineFn frames without a std::function
  /// allocation per hop.
  template <typename Fn>
  void post(sim::NodeId from, int to_id, size_t bytes, Fn fn,
            sim::MsgKind kind = sim::MsgKind::Generic) {
    RaftNode& target = node(to_id);
    if (from == target.node()) {
      target.service().submit(
          bytes, [&target, fn = std::move(fn)]() mutable { fn(target); });
      return;
    }
    net_.send(
        from, target.node(), bytes,
        [&target, bytes, fn = std::move(fn)]() mutable {
          target.service().submit(
              bytes, [&target, fn = std::move(fn)]() mutable { fn(target); });
        },
        kind);
  }

 private:
  void schedule_tick(RaftNode* node);

  sim::Simulation& sim_;
  sim::Network& net_;
  RaftConfig cfg_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
};

}  // namespace music::raftkv
