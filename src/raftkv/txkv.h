// Transactional KV client over the Raft cluster: the CockroachDB stand-in
// used by Fig. 7 and the §X-B4 cost analysis.
//
// A CockroachDB transaction executes at the range's leaseholder and costs
// one consensus round at commit.  TxClient models the client gateway: it
// tracks the leader, forwards statements there, and implements the §X-B3
// "critical section in CockroachDB" recipe, which the paper uses to give
// CockroachDB the same exclusivity + latest-state guarantees as a MUSIC
// critical section:
//
//   do batch-size times:
//     BEGIN; SELECT lock; UPSERT lock=ME; COMMIT;        -- entry: consensus
//     UPSERT k=v; UPSERT lock=NONE; COMMIT;              -- update+exit: consensus
//
// i.e. two consensus rounds per state update, versus MUSIC's single quorum
// write (§X-B4's 2xC vs Q).
#pragma once

#include <string>

#include "raftkv/raft.h"

namespace music::raftkv {

/// Client gateway for transactions.
class TxClient {
 public:
  /// `name` identifies this client in lock cells ("ME" in the recipe).
  TxClient(RaftCluster& cluster, int site, std::string name);

  /// One transaction that atomically sets `writes` if `expect_key`'s
  /// current value equals `expect_val` (one consensus round at the leader;
  /// plus the WAN hop to reach it).  Ok(applied) mirrors Raft's outcome.
  sim::Task<ProposeOutcome> txn_cas(std::vector<std::pair<Key, Value>> writes,
                                    Key expect_key, Value expect_val);

  /// One unconditional write transaction (one consensus round).
  sim::Task<ProposeOutcome> txn_write(
      std::vector<std::pair<Key, Value>> writes);

  /// Linearizable read at the leader.
  sim::Task<Result<Value>> select(Key key);

  /// §X-B3 critical-section entry: transactionally grab the lock row.
  /// Retries until the lock is free and ours.
  sim::Task<Status> cs_enter(Key lock_key);

  /// §X-B3 body step: one state update inside the held critical section
  /// (its own transaction, as the recipe requires for latest-state).
  sim::Task<Status> cs_update(Key key, Value value);

  /// §X-B3 exit: release the lock row transactionally.
  sim::Task<Status> cs_exit(Key lock_key);

  /// The full recipe: enter, `batch` updates of `value` under `key`, exit.
  /// The per-update transaction also re-asserts lock ownership (the
  /// SELECT-in-transaction of the recipe).
  sim::Task<Status> critical_section(Key lock_key, Key key, Value value,
                                     int batch);

 private:
  /// Sends a proposal to the believed leader (forwarding hop), updating
  /// the leader hint on redirects.
  sim::Task<ProposeOutcome> propose_at_leader(Command cmd);

  RaftCluster& cluster_;
  int site_;
  std::string name_;
  sim::NodeId node_;
  int leader_hint_;
};

}  // namespace music::raftkv
