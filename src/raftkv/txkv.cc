#include "raftkv/txkv.h"

#include <utility>

#include "sim/span.h"

namespace music::raftkv {

TxClient::TxClient(RaftCluster& cluster, int site, std::string name)
    : cluster_(cluster),
      site_(site),
      name_(std::move(name)),
      node_(cluster.network().add_node(site)),
      leader_hint_(cluster.num_nodes() - 1) {}

sim::Task<ProposeOutcome> TxClient::propose_at_leader(Command cmd) {
  sim::OpSpan span(cluster_.simulation(), "cdb.txn", site_, node_);
  for (int attempt = 0; attempt < 64; ++attempt) {
    int target_id = leader_hint_;
    if (target_id < 0) target_id = 0;
    RaftNode& target = cluster_.node(target_id);
    if (target.down()) {
      leader_hint_ = (target_id + 1) % cluster_.num_nodes();
      co_await sim::sleep_for(cluster_.simulation(), sim::ms(100));
      continue;
    }
    // Ship the proposal to the target over the network; it replies with the
    // outcome (or we time out).
    sim::Promise<ProposeOutcome> reply(cluster_.simulation());
    size_t bytes = cmd.bytes() + cluster_.config().overhead_bytes;
    RaftNode* tp = &target;
    sim::NodeId me = node_;
    cluster_.network().send(
        node_, target.node(), bytes,
        [tp, cmd, me, reply, bytes] {
          tp->service().submit(bytes, [tp, cmd, me, reply] {
            sim::spawn(
                tp->cluster_ref().simulation(),
                [](RaftNode& n, Command c, sim::NodeId client,
                   sim::Promise<ProposeOutcome> rep) -> sim::Task<void> {
                  ProposeOutcome out = co_await n.propose(std::move(c));
                  n.cluster_ref().network().send(
                      n.node(), client, 64,
                      [rep, out] { rep.set_value(out); },
                      sim::MsgKind::ClientReply);
                }(*tp, cmd, me, reply));
          });
        },
        sim::MsgKind::ClientRequest);
    auto got = co_await sim::await_with_timeout<ProposeOutcome>(
        cluster_.simulation(), reply.future(), cluster_.config().op_timeout);
    if (!got) {
      // Timed out: maybe a dead/partitioned leader; rotate the hint.
      leader_hint_ = (target_id + 1) % cluster_.num_nodes();
      continue;
    }
    if (got->status == OpStatus::Conflict) {
      // Not the leader: adopt its hint (cheap: hints travel on heartbeats).
      int hint = target.leader_hint();
      leader_hint_ = hint >= 0 ? hint : (target_id + 1) % cluster_.num_nodes();
      co_await sim::sleep_for(cluster_.simulation(), sim::ms(20));
      continue;
    }
    if (got->status == OpStatus::Timeout) {
      // The target lost leadership mid-proposal; re-propose elsewhere.  The
      // command may commit anyway — acceptable for the recipe's idempotent
      // upserts and CAS entries (a duplicate CAS simply fails to apply).
      leader_hint_ = (target_id + 1) % cluster_.num_nodes();
      co_await sim::sleep_for(cluster_.simulation(), sim::ms(50));
      continue;
    }
    co_return *got;
  }
  co_return ProposeOutcome(OpStatus::Timeout, false);
}

sim::Task<ProposeOutcome> TxClient::txn_cas(
    std::vector<std::pair<Key, Value>> writes, Key expect_key,
    Value expect_val) {
  co_return co_await propose_at_leader(
      Command(std::move(writes), std::move(expect_key), std::move(expect_val)));
}

sim::Task<ProposeOutcome> TxClient::txn_write(
    std::vector<std::pair<Key, Value>> writes) {
  co_return co_await propose_at_leader(Command(std::move(writes)));
}

sim::Task<Result<Value>> TxClient::select(Key key) {
  sim::OpSpan span(cluster_.simulation(), "cdb.select", site_, node_, key);
  for (int attempt = 0; attempt < 64; ++attempt) {
    int target_id = leader_hint_ < 0 ? 0 : leader_hint_;
    RaftNode& target = cluster_.node(target_id);
    if (target.down()) {
      leader_hint_ = (target_id + 1) % cluster_.num_nodes();
      co_await sim::sleep_for(cluster_.simulation(), sim::ms(100));
      continue;
    }
    sim::Promise<Result<Value>> reply(cluster_.simulation());
    size_t bytes = key.size() + cluster_.config().overhead_bytes;
    RaftNode* tp = &target;
    sim::NodeId me = node_;
    cluster_.network().send(
        node_, target.node(), bytes, [tp, key, me, reply, bytes] {
          tp->service().submit(bytes, [tp, key, me, reply] {
            sim::spawn(tp->cluster_ref().simulation(),
                       [](RaftNode& n, Key k, sim::NodeId client,
                          sim::Promise<Result<Value>> rep) -> sim::Task<void> {
                         auto r = co_await n.read(std::move(k));
                         n.cluster_ref().network().send(
                             n.node(), client,
                             64 + (r.ok() ? r.value().size() : 0),
                             [rep, r] { rep.set_value(r); },
                             sim::MsgKind::ClientReply);
                       }(*tp, key, me, reply));
          });
        },
        sim::MsgKind::ClientRequest);
    auto got = co_await sim::await_with_timeout<Result<Value>>(
        cluster_.simulation(), reply.future(), cluster_.config().op_timeout);
    if (!got) {
      leader_hint_ = (target_id + 1) % cluster_.num_nodes();
      continue;
    }
    if (!got->ok() && got->status() == OpStatus::Conflict) {
      int hint = target.leader_hint();
      leader_hint_ = hint >= 0 ? hint : (target_id + 1) % cluster_.num_nodes();
      co_await sim::sleep_for(cluster_.simulation(), sim::ms(20));
      continue;
    }
    co_return *got;
  }
  co_return Result<Value>::Err(OpStatus::Timeout);
}

sim::Task<Status> TxClient::cs_enter(Key lock_key) {
  // BEGIN; SELECT lock (must be NONE/absent); UPSERT lock=ME; COMMIT.
  // The CAS command is the transactional equivalent: apply iff lock empty.
  for (int attempt = 0; attempt < 4096; ++attempt) {
    std::vector<std::pair<Key, Value>> writes;
    writes.emplace_back(lock_key, Value(name_));
    auto out = co_await txn_cas(std::move(writes), lock_key, Value(""));
    if (out.status != OpStatus::Ok) co_return Status(out.status);
    if (out.applied) co_return Status::Ok();
    co_await sim::sleep_for(cluster_.simulation(), sim::ms(5));
  }
  co_return OpStatus::Timeout;
}

sim::Task<Status> TxClient::cs_update(Key key, Value value) {
  std::vector<std::pair<Key, Value>> writes;
  writes.emplace_back(std::move(key), std::move(value));
  auto out = co_await txn_write(std::move(writes));
  co_return Status(out.status);
}

sim::Task<Status> TxClient::cs_exit(Key lock_key) {
  // UPSERT lock=NONE; COMMIT — conditioned on still holding it.
  std::vector<std::pair<Key, Value>> writes;
  writes.emplace_back(lock_key, Value(""));
  auto out = co_await txn_cas(std::move(writes), lock_key, Value(name_));
  if (out.status != OpStatus::Ok) co_return Status(out.status);
  co_return out.applied ? Status::Ok() : Status::Err(OpStatus::NotLockHolder);
}

sim::Task<Status> TxClient::critical_section(Key lock_key, Key key,
                                             Value value, int batch) {
  sim::OpSpan span(cluster_.simulation(), "cdb.critical_section", site_, node_,
                   lock_key);
  // §X-B3: each loop iteration is (entry txn, update+exit txn); the lock is
  // re-acquired per iteration exactly as the paper's pseudo-code does.
  for (int i = 0; i < batch; ++i) {
    auto enter = co_await cs_enter(lock_key);
    if (!enter.ok()) co_return enter;
    // UPSERT data + UPSERT lock=NONE in one committing transaction,
    // conditioned on lock ownership (the recipe's in-transaction SELECT).
    std::vector<std::pair<Key, Value>> writes;
    writes.emplace_back(key, value);
    writes.emplace_back(lock_key, Value(""));
    auto out = co_await txn_cas(std::move(writes), lock_key, Value(name_));
    if (out.status != OpStatus::Ok) co_return Status(out.status);
    if (!out.applied) co_return Status::Err(OpStatus::NotLockHolder);
  }
  co_return Status::Ok();
}

}  // namespace music::raftkv
