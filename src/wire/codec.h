// Length-prefixed, versioned binary framing for the wire messages.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//        0     4  len      — bytes that FOLLOW the length field (header rest
//                            + payload); bounded by kMaxFrameBytes
//        4     1  version  — kWireVersion; unknown versions are rejected
//        5     1  type     — FrameType discriminator for the payload
//        6     2  flags    — reserved, must be 0 (room for compression etc.)
//        8     8  req_id   — correlates a response frame to its request on a
//                            multiplexed connection
//       16   len-12 payload — type-specific body
//
// Inside payloads: integers are fixed-width little-endian written byte-wise
// (no type punning, UB-free on any alignment), strings/blobs are a u32
// length followed by raw bytes, Value is blob + u64 logical_size, vectors
// are a u32 count followed by elements.
//
// Parsing is strict: truncated frames, trailing payload garbage, out-of-range
// enum values, non-zero flags and oversized length prefixes are all rejected
// by returning nullopt / FrameStatus::Bad — never by crashing.  A reader
// that gets Bad must drop the connection (framing is lost).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "wire/messages.h"

namespace music::wire {

/// Codec version stamped into every frame.  Bump on any incompatible layout
/// change; parsers reject frames from versions they do not speak.
inline constexpr uint8_t kWireVersion = 1;

/// Hard ceiling on `len` (bytes after the length field).  Anything larger is
/// a corrupt or hostile frame — reject before buffering.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Bytes before the payload: len(4) + version(1) + type(1) + flags(2) +
/// req_id(8).
inline constexpr size_t kFrameHeaderBytes = 16;

/// Payload discriminator.
enum class FrameType : uint8_t {
  ClientRequest = 1,   // wire::Request
  ClientResponse = 2,  // wire::Response
  StoreRequest = 3,    // wire::StoreRequest
  StoreReply = 4,      // wire::StoreReply
};

/// One complete frame as seen by a reader, pointing into the reader's
/// buffer.  Valid only until the buffer is consumed.
struct FrameView {
  FrameType type = FrameType::ClientRequest;
  uint64_t req_id = 0;
  std::string_view payload;
  /// Total bytes this frame occupies in the buffer (4 + len): how much the
  /// caller must consume before peeling the next frame.
  size_t frame_bytes = 0;
};

/// Result of trying to peel one frame off the front of a byte buffer.
enum class FrameStatus {
  /// A complete, well-formed frame header; `out` is filled in.  The payload
  /// itself still needs parse_*().
  Ok,
  /// Not enough buffered bytes yet — read more and retry.
  NeedMore,
  /// Unrecoverable framing error (bad version, bad type, oversized or
  /// undersized length, non-zero flags).  Drop the connection.
  Bad,
};

/// Examines the front of [data, data+size) for one frame.  Does not consume;
/// on Ok the caller advances by out.frame_bytes.
FrameStatus peel_frame(const char* data, size_t size, FrameView& out);

/// Encoders: one full frame (header + payload) ready to write to a socket.
std::string encode_request(uint64_t req_id, const Request& req);
std::string encode_response(uint64_t req_id, const Response& resp);
std::string encode_store_request(uint64_t req_id, const StoreRequest& msg);
std::string encode_store_reply(uint64_t req_id, const StoreReply& msg);

/// Payload parsers, fed FrameView::payload.  nullopt on any malformation:
/// truncation, trailing bytes, out-of-range enums.
std::optional<Request> parse_request(std::string_view payload);
std::optional<Response> parse_response(std::string_view payload);
std::optional<StoreRequest> parse_store_request(std::string_view payload);
std::optional<StoreReply> parse_store_reply(std::string_view payload);

}  // namespace music::wire
