// Length-prefixed, versioned binary framing for the wire messages.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//        0     4  len      — bytes that FOLLOW the length field (header rest
//                            + payload); bounded by the reader's frame limit
//        4     1  version  — a negotiated wire version in
//                            [kWireVersionMin, kWireVersionMax]; frames
//                            outside the reader's accepted range are rejected
//        5     1  type     — FrameType discriminator for the payload
//        6     2  flags    — v1: reserved, must be 0.
//                            v2+: feature bitmap; unknown bits are rejected
//        8     8  req_id   — correlates a response frame to its request on a
//                            multiplexed connection
//       16   len-12 payload — type-specific body
//
// Inside payloads: integers are fixed-width little-endian written byte-wise
// (no type punning, UB-free on any alignment), strings/blobs are a u32
// length followed by raw bytes, Value is blob + u64 logical_size, vectors
// are a u32 count followed by elements.
//
// Versioning (docs/TRANSPORT.md has the full playbook):
//
//  * Every implementation supports the contiguous range
//    [kWireVersionMin, kWireVersionMax].  A connection opens with a Hello
//    frame in each direction advertising the sender's range; negotiate()
//    pins the highest common version for the rest of the connection.
//  * Hello frames are ALWAYS encoded at the v1 layout (version byte 1,
//    flags 0) so that any implementation, past or future, can parse the
//    other side's advertisement before a version is agreed.
//  * encode_* default to version 1 — the pinned, golden-tested layout — and
//    take an explicit version for connections negotiated higher.  The v1
//    byte stream never changes; new versions only ADD meaning (v2 turns the
//    flags field into a feature bitmap and adds the Goodbye drain frame).
//
// Parsing is strict: truncated frames, trailing payload garbage,
// out-of-range enum values, unknown flag bits and out-of-range versions are
// all rejected by returning nullopt / FrameStatus::Bad — never by crashing.
// A reader that gets Bad must drop the connection (framing is lost).
// Oversized length prefixes get the distinct FrameStatus::TooLarge so
// transports can report a resource rejection apart from corruption; the
// connection must still be dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "wire/messages.h"

namespace music::wire {

/// Inclusive range of wire versions this build speaks.  Bump kWireVersionMax
/// on any layout addition; kWireVersionMin only ever rises once every
/// deployed peer is known to speak a newer floor.
inline constexpr uint8_t kWireVersionMin = 1;
inline constexpr uint8_t kWireVersionMax = 2;

/// The pinned baseline version: the layout every encoder emits by default
/// and the one the cross-version goldens freeze forever.  Connections only
/// speak a higher version after both sides advertised it in their Hellos.
inline constexpr uint8_t kWireVersion = kWireVersionMin;

/// Default ceiling on `len` (bytes after the length field).  Anything larger
/// is a corrupt or hostile frame — reject before buffering.  Transports may
/// configure a lower per-connection limit (net::TransportLimits).
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Bytes before the payload: len(4) + version(1) + type(1) + flags(2) +
/// req_id(8).
inline constexpr size_t kFrameHeaderBytes = 16;

/// v2+ feature bits carried in the frame `flags` field.  v1 frames must
/// carry flags == 0; v2 frames may set any subset of known_flags(2).
/// Unknown bits reject the frame — a future v3 bit reaching a v2 parser is
/// a negotiation bug, not something to silently ignore.
inline constexpr uint16_t kFlagRetry = 1u << 0;     // retransmit of an earlier attempt
inline constexpr uint16_t kFlagDraining = 1u << 1;  // sender is draining; expect Goodbye

/// The flag bits a given frame version is allowed to carry.
constexpr uint16_t known_flags(uint8_t version) {
  return version >= 2 ? static_cast<uint16_t>(kFlagRetry | kFlagDraining) : 0;
}

/// Payload discriminator.
enum class FrameType : uint8_t {
  ClientRequest = 1,   // wire::Request
  ClientResponse = 2,  // wire::Response
  StoreRequest = 3,    // wire::StoreRequest
  StoreReply = 4,      // wire::StoreReply
  Hello = 5,           // wire::Hello — version advertisement, first frame
  Goodbye = 6,         // graceful drain notice (v2+); u32 reason payload
};

/// Version advertisement exchanged as the first frame in each direction of a
/// connection.  Always encoded at the v1 layout (see file comment).
struct Hello {
  uint8_t min = kWireVersionMin;  // lowest version the sender speaks
  uint8_t max = kWireVersionMax;  // highest version the sender speaks
  uint32_t features = 0;          // advertised feature bitmap (v2+ semantics)
  uint32_t node = 0;              // sender's node id, for diagnostics
};

/// Drain reasons carried in a Goodbye payload (v2+ connections only).
enum class GoodbyeReason : uint32_t {
  Shutdown = 1,  // process is exiting (SIGTERM drain)
  Restart = 2,   // process is restarting, possibly onto a new binary
};

/// Highest version both ranges support: min(lmax, rmax) when the ranges are
/// each well-formed (min <= max) and overlap; nullopt otherwise (inverted or
/// disjoint ranges — including an unknown all-future peer like [5,9] against
/// our [1,2]).
std::optional<uint8_t> negotiate(uint8_t local_min, uint8_t local_max,
                                 uint8_t remote_min, uint8_t remote_max);

/// One complete frame as seen by a reader, pointing into the reader's
/// buffer.  Valid only until the buffer is consumed.
struct FrameView {
  FrameType type = FrameType::ClientRequest;
  uint8_t version = kWireVersion;
  uint16_t flags = 0;
  uint64_t req_id = 0;
  std::string_view payload;
  /// Total bytes this frame occupies in the buffer (4 + len): how much the
  /// caller must consume before peeling the next frame.
  size_t frame_bytes = 0;
};

/// Result of trying to peel one frame off the front of a byte buffer.
enum class FrameStatus {
  /// A complete, well-formed frame header; `out` is filled in.  The payload
  /// itself still needs parse_*().
  Ok,
  /// Not enough buffered bytes yet — read more and retry.
  NeedMore,
  /// Unrecoverable framing error (out-of-range version, bad type,
  /// undersized length, unknown flag bits).  Drop the connection.
  Bad,
  /// Length prefix exceeds the reader's frame limit.  Distinct from Bad so
  /// the rejection is attributable to a resource bound rather than
  /// corruption; the connection must still be dropped.
  TooLarge,
};

/// Per-reader acceptance bounds for peel_frame.  The defaults accept the
/// full version range this build speaks and the default frame ceiling; a
/// transport narrows `max_version` to the connection's negotiated version
/// after the handshake and may lower `max_frame_bytes` by configuration.
struct PeelLimits {
  uint8_t min_version = kWireVersionMin;
  uint8_t max_version = kWireVersionMax;
  uint32_t max_frame_bytes = kMaxFrameBytes;
};

/// Examines the front of [data, data+size) for one frame.  Does not consume;
/// on Ok the caller advances by out.frame_bytes.
FrameStatus peel_frame(const char* data, size_t size, FrameView& out,
                       const PeelLimits& limits = {});

/// Encoders: one full frame (header + payload) ready to write to a socket.
/// `version` stamps the frame header; payload layouts are identical across
/// v1 and v2 (v2 changes header semantics only), so encoders just refuse
/// flag bits the version cannot carry by masking against known_flags().
std::string encode_request(uint64_t req_id, const Request& req,
                           uint8_t version = kWireVersion, uint16_t flags = 0);
std::string encode_response(uint64_t req_id, const Response& resp,
                            uint8_t version = kWireVersion, uint16_t flags = 0);
std::string encode_store_request(uint64_t req_id, const StoreRequest& msg,
                                 uint8_t version = kWireVersion, uint16_t flags = 0);
std::string encode_store_reply(uint64_t req_id, const StoreReply& msg,
                               uint8_t version = kWireVersion, uint16_t flags = 0);

/// Hello is always a v1-layout frame with req_id 0 (see file comment).
std::string encode_hello(const Hello& hello);

/// Goodbye exists only on v2+ connections; encoding at a lower version is a
/// caller bug (senders must gate on the negotiated version).
std::string encode_goodbye(GoodbyeReason reason, uint8_t version = 2);

/// Payload parsers, fed FrameView::payload.  nullopt on any malformation:
/// truncation, trailing bytes, out-of-range enums.
std::optional<Request> parse_request(std::string_view payload);
std::optional<Response> parse_response(std::string_view payload);
std::optional<StoreRequest> parse_store_request(std::string_view payload);
std::optional<StoreReply> parse_store_reply(std::string_view payload);
std::optional<Hello> parse_hello(std::string_view payload);
std::optional<GoodbyeReason> parse_goodbye(std::string_view payload);

}  // namespace music::wire
