#include "wire/codec.h"

#include <cstring>
#include <limits>

namespace music::wire {
namespace {

// ---------------------------------------------------------------------------
// Primitive writers: little-endian, byte-wise (alignment- and UB-safe).

void put_u8(std::string& out, uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i64(std::string& out, int64_t v) { put_u64(out, static_cast<uint64_t>(v)); }

void put_bytes(std::string& out, std::string_view s) {
  put_u32(out, static_cast<uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

void put_value(std::string& out, const Value& v) {
  put_bytes(out, v.data);
  put_u64(out, static_cast<uint64_t>(v.logical_size));
}

void put_cell(std::string& out, const WireCell& c) {
  put_value(out, c.value);
  put_i64(out, c.ts);
}

// ---------------------------------------------------------------------------
// Primitive readers: a bounds-checked cursor.  Every get_* returns false on
// truncation and leaves the cursor untouched on failure, so parse_* can
// simply chain `&&`.

struct Reader {
  const char* p;
  size_t left;

  explicit Reader(std::string_view s) : p(s.data()), left(s.size()) {}

  bool get_u8(uint8_t& v) {
    if (left < 1) return false;
    v = static_cast<uint8_t>(*p);
    ++p;
    --left;
    return true;
  }

  bool get_u32(uint32_t& v) {
    if (left < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    p += 4;
    left -= 4;
    return true;
  }

  bool get_u64(uint64_t& v) {
    if (left < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    p += 8;
    left -= 8;
    return true;
  }

  bool get_i64(int64_t& v) {
    uint64_t u;
    if (!get_u64(u)) return false;
    v = static_cast<int64_t>(u);
    return true;
  }

  bool get_bool(bool& v) {
    uint8_t b;
    if (!get_u8(b)) return false;
    if (b > 1) return false;  // canonical bools only
    v = b != 0;
    return true;
  }

  bool get_bytes(std::string& out) {
    uint32_t n;
    if (!get_u32(n)) return false;
    if (left < n) return false;
    out.assign(p, n);
    p += n;
    left -= n;
    return true;
  }

  bool get_value(Value& v) {
    uint64_t logical;
    if (!get_bytes(v.data) || !get_u64(logical)) return false;
    v.logical_size = static_cast<size_t>(logical);
    return true;
  }

  bool get_cell(WireCell& c) { return get_value(c.value) && get_i64(c.ts); }

  /// A vector length.  Bounded by the remaining payload (each element costs
  /// at least one byte in every layout we use, so a count beyond `left` is
  /// corrupt — reject before reserving memory for it).
  bool get_count(uint32_t& n) { return get_u32(n) && n <= left; }

  bool done() const { return left == 0; }
};

// ---------------------------------------------------------------------------
// Frame header.

// Hello payload leads with a magic word so a peer that is not speaking this
// protocol at all (an HTTP client, a port scanner) is rejected on byte 17,
// not mis-parsed as a version range.  "HELO" little-endian.
constexpr uint32_t kHelloMagic = 0x4f4c4548;

std::string make_frame(FrameType type, uint64_t req_id, const std::string& payload,
                       uint8_t version, uint16_t flags) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  // len = version + type + flags + req_id + payload.
  put_u32(out, static_cast<uint32_t>(kFrameHeaderBytes - 4 + payload.size()));
  put_u8(out, version);
  put_u8(out, static_cast<uint8_t>(type));
  put_u16(out, flags & known_flags(version));
  put_u64(out, req_id);
  out += payload;
  return out;
}

// Enum range checks (one place per enum, next to the casts that trust them).
bool valid_op(uint8_t v) { return v <= static_cast<uint8_t>(Request::Op::Batch); }
bool valid_batch_kind(uint8_t v) { return v <= static_cast<uint8_t>(BatchOp::Kind::Delete); }
bool valid_store_op(uint8_t v) { return v <= static_cast<uint8_t>(StoreOp::Commit); }
bool valid_status(uint8_t v) { return v <= static_cast<uint8_t>(OpStatus::WrongShard); }

}  // namespace

std::optional<uint8_t> negotiate(uint8_t local_min, uint8_t local_max,
                                 uint8_t remote_min, uint8_t remote_max) {
  if (local_min > local_max || remote_min > remote_max) return std::nullopt;
  uint8_t lo = local_min > remote_min ? local_min : remote_min;
  uint8_t hi = local_max < remote_max ? local_max : remote_max;
  if (lo > hi) return std::nullopt;  // disjoint ranges — no common version
  return hi;
}

FrameStatus peel_frame(const char* data, size_t size, FrameView& out,
                       const PeelLimits& limits) {
  if (size < 4) return FrameStatus::NeedMore;
  Reader r(std::string_view(data, size));
  uint32_t len = 0;
  r.get_u32(len);
  if (len < kFrameHeaderBytes - 4) return FrameStatus::Bad;
  if (len > limits.max_frame_bytes) return FrameStatus::TooLarge;
  // Validate whatever header bytes have already arrived before asking for
  // more, so a hostile length prefix on a garbage frame is rejected without
  // buffering megabytes first.  Hello frames are exempt from the version
  // floor check: they always arrive at the v1 layout, including from a peer
  // whose range starts above ours (the handshake, not the framing layer,
  // decides whether the ranges are compatible).
  uint8_t version = 0, type = 0;
  if (r.left >= 1) {
    r.get_u8(version);
    if (version < kWireVersionMin || version > limits.max_version) return FrameStatus::Bad;
  }
  if (r.left >= 1) {
    r.get_u8(type);
    if (type < static_cast<uint8_t>(FrameType::ClientRequest) ||
        type > static_cast<uint8_t>(FrameType::Goodbye)) {
      return FrameStatus::Bad;
    }
    if (version < limits.min_version && type != static_cast<uint8_t>(FrameType::Hello)) {
      return FrameStatus::Bad;
    }
  }
  if (size < 4 + static_cast<size_t>(len)) return FrameStatus::NeedMore;
  uint8_t flags_a = 0, flags_b = 0;
  uint64_t req_id = 0;
  r.get_u8(flags_a);
  r.get_u8(flags_b);
  uint16_t flags = static_cast<uint16_t>(flags_a) | (static_cast<uint16_t>(flags_b) << 8);
  if ((flags & ~known_flags(version)) != 0) return FrameStatus::Bad;
  r.get_u64(req_id);
  out.type = static_cast<FrameType>(type);
  out.version = version;
  out.flags = flags;
  out.req_id = req_id;
  out.frame_bytes = 4 + static_cast<size_t>(len);
  out.payload = std::string_view(data + kFrameHeaderBytes, out.frame_bytes - kFrameHeaderBytes);
  return FrameStatus::Ok;
}

// ---------------------------------------------------------------------------
// Client request / response.

std::string encode_request(uint64_t req_id, const Request& req, uint8_t version,
                           uint16_t flags) {
  std::string p;
  put_u8(p, static_cast<uint8_t>(req.op));
  put_bytes(p, req.key);
  put_i64(p, req.ref);
  put_value(p, req.value);
  put_u32(p, static_cast<uint32_t>(req.batch.size()));
  for (const auto& b : req.batch) {
    put_u8(p, static_cast<uint8_t>(b.kind));
    put_bytes(p, b.key);
    put_value(p, b.value);
  }
  return make_frame(FrameType::ClientRequest, req_id, p, version, flags);
}

std::optional<Request> parse_request(std::string_view payload) {
  Reader r(payload);
  Request req;
  uint8_t op;
  if (!r.get_u8(op) || !valid_op(op)) return std::nullopt;
  req.op = static_cast<Request::Op>(op);
  uint32_t n;
  if (!r.get_bytes(req.key) || !r.get_i64(req.ref) || !r.get_value(req.value) ||
      !r.get_count(n)) {
    return std::nullopt;
  }
  req.batch.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    BatchOp b;
    uint8_t kind;
    if (!r.get_u8(kind) || !valid_batch_kind(kind) || !r.get_bytes(b.key) ||
        !r.get_value(b.value)) {
      return std::nullopt;
    }
    b.kind = static_cast<BatchOp::Kind>(kind);
    req.batch.push_back(std::move(b));
  }
  if (!r.done()) return std::nullopt;
  return req;
}

std::string encode_response(uint64_t req_id, const Response& resp, uint8_t version,
                            uint16_t flags) {
  std::string p;
  put_u8(p, static_cast<uint8_t>(resp.status));
  put_i64(p, resp.ref);
  put_value(p, resp.value);
  put_u32(p, static_cast<uint32_t>(resp.keys.size()));
  for (const auto& k : resp.keys) put_bytes(p, k);
  put_u32(p, static_cast<uint32_t>(resp.batch.size()));
  for (const auto& b : resp.batch) {
    put_u8(p, static_cast<uint8_t>(b.status));
    put_value(p, b.value);
  }
  return make_frame(FrameType::ClientResponse, req_id, p, version, flags);
}

std::optional<Response> parse_response(std::string_view payload) {
  Reader r(payload);
  Response resp;
  uint8_t status;
  if (!r.get_u8(status) || !valid_status(status)) return std::nullopt;
  resp.status = static_cast<OpStatus>(status);
  uint32_t nkeys;
  if (!r.get_i64(resp.ref) || !r.get_value(resp.value) || !r.get_count(nkeys)) {
    return std::nullopt;
  }
  resp.keys.reserve(nkeys);
  for (uint32_t i = 0; i < nkeys; ++i) {
    Key k;
    if (!r.get_bytes(k)) return std::nullopt;
    resp.keys.push_back(std::move(k));
  }
  uint32_t nbatch;
  if (!r.get_count(nbatch)) return std::nullopt;
  resp.batch.reserve(nbatch);
  for (uint32_t i = 0; i < nbatch; ++i) {
    BatchOpResult b;
    uint8_t s;
    if (!r.get_u8(s) || !valid_status(s) || !r.get_value(b.value)) return std::nullopt;
    b.status = static_cast<OpStatus>(s);
    resp.batch.push_back(std::move(b));
  }
  if (!r.done()) return std::nullopt;
  return resp;
}

// ---------------------------------------------------------------------------
// Store request / reply.

std::string encode_store_request(uint64_t req_id, const StoreRequest& msg, uint8_t version,
                                 uint16_t flags) {
  std::string p;
  put_u8(p, static_cast<uint8_t>(msg.op));
  put_bytes(p, msg.key);
  put_cell(p, msg.cell);
  put_i64(p, msg.ballot);
  return make_frame(FrameType::StoreRequest, req_id, p, version, flags);
}

std::optional<StoreRequest> parse_store_request(std::string_view payload) {
  Reader r(payload);
  StoreRequest msg;
  uint8_t op;
  if (!r.get_u8(op) || !valid_store_op(op)) return std::nullopt;
  msg.op = static_cast<StoreOp>(op);
  if (!r.get_bytes(msg.key) || !r.get_cell(msg.cell) || !r.get_i64(msg.ballot)) {
    return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  return msg;
}

std::string encode_store_reply(uint64_t req_id, const StoreReply& msg, uint8_t version,
                               uint16_t flags) {
  std::string p;
  put_u8(p, msg.ok ? 1 : 0);
  put_i64(p, msg.ballot);
  put_u8(p, msg.has_cell ? 1 : 0);
  put_cell(p, msg.cell);
  put_i64(p, msg.cell_ballot);
  put_u32(p, static_cast<uint32_t>(msg.from));
  return make_frame(FrameType::StoreReply, req_id, p, version, flags);
}

std::optional<StoreReply> parse_store_reply(std::string_view payload) {
  Reader r(payload);
  StoreReply msg;
  uint32_t from;
  if (!r.get_bool(msg.ok) || !r.get_i64(msg.ballot) || !r.get_bool(msg.has_cell) ||
      !r.get_cell(msg.cell) || !r.get_i64(msg.cell_ballot) || !r.get_u32(from)) {
    return std::nullopt;
  }
  msg.from = static_cast<int32_t>(from);
  if (!r.done()) return std::nullopt;
  return msg;
}

// ---------------------------------------------------------------------------
// Handshake frames.

std::string encode_hello(const Hello& hello) {
  std::string p;
  put_u32(p, kHelloMagic);
  put_u8(p, hello.min);
  put_u8(p, hello.max);
  put_u32(p, hello.features);
  put_u32(p, hello.node);
  // Always the v1 layout: any implementation must be able to read the
  // advertisement before a version is agreed (codec.h file comment).
  return make_frame(FrameType::Hello, 0, p, kWireVersionMin, 0);
}

std::optional<Hello> parse_hello(std::string_view payload) {
  Reader r(payload);
  Hello h;
  uint32_t magic;
  if (!r.get_u32(magic) || magic != kHelloMagic) return std::nullopt;
  if (!r.get_u8(h.min) || !r.get_u8(h.max) || !r.get_u32(h.features) || !r.get_u32(h.node)) {
    return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  // An inverted range is malformed on its face (a disjoint-but-valid range
  // is a negotiation failure, not a parse failure).
  if (h.min > h.max) return std::nullopt;
  return h;
}

std::string encode_goodbye(GoodbyeReason reason, uint8_t version) {
  std::string p;
  put_u32(p, static_cast<uint32_t>(reason));
  return make_frame(FrameType::Goodbye, 0, p, version, 0);
}

std::optional<GoodbyeReason> parse_goodbye(std::string_view payload) {
  Reader r(payload);
  uint32_t reason;
  if (!r.get_u32(reason) || !r.done()) return std::nullopt;
  if (reason < static_cast<uint32_t>(GoodbyeReason::Shutdown) ||
      reason > static_cast<uint32_t>(GoodbyeReason::Restart)) {
    return std::nullopt;
  }
  return static_cast<GoodbyeReason>(reason);
}

}  // namespace music::wire
