// The wire vocabulary: every message that crosses a process boundary.
//
// Two seams carry all MUSIC traffic (Fig. 1):
//   * the client seam — Request/Response between a client library and a
//     MUSIC replica (Table I operations, plus the PR 3 Batch op), and
//   * the store seam — StoreRequest/StoreReply between data-store replicas
//     (replicated writes, reads, and the three LWT Paxos phases).
//
// These structs are the single source of truth for both transports: the sim
// backend moves them in-memory (zero serialization, costs charged from the
// explicit byte counts protocol code supplies), the TCP backend frames them
// through wire/codec.h.  They deliberately depend only on the common
// vocabulary types — no sim, no datastore — so the codec and the net layer
// sit below every protocol library.
//
// NOTE on the user-declared constructors: these types cross Task<> coroutine
// boundaries by value, and GCC 12 miscompiles by-value *aggregate* coroutine
// parameters with non-trivial members (see the note on ds::Cell).  Keep the
// constructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "common/v2s.h"

namespace music::wire {

/// One operation of a Batch request: a critical put/get/delete to run under
/// the batch's lockRef.
struct BatchOp {
  enum class Kind : uint8_t { Put, Get, Delete };

  Kind kind = Kind::Get;
  Key key;
  Value value;  // Put payload; ignored for Get/Delete

  BatchOp() = default;
  BatchOp(Kind k, Key key_, Value v)
      : kind(k), key(std::move(key_)), value(std::move(v)) {}
};

/// Per-sub-op outcome of a Batch, aligned with the request's op vector.
struct BatchOpResult {
  OpStatus status = OpStatus::Timeout;
  Value value;  // Get payload when status == Ok

  BatchOpResult() = default;
  explicit BatchOpResult(OpStatus s) : status(s) {}
  BatchOpResult(OpStatus s, Value v) : status(s), value(std::move(v)) {}
};

/// Rolls per-sub-op statuses up to one batch-level status: the first status
/// that is neither Ok nor NotFound (a Get on an absent key is a normal
/// answer, not a batch failure), else Ok.
inline OpStatus batch_status(const std::vector<BatchOpResult>& results) {
  for (const auto& r : results) {
    if (r.status != OpStatus::Ok && r.status != OpStatus::NotFound) {
      return r.status;
    }
  }
  return OpStatus::Ok;
}

/// The request a client sends to a MUSIC replica (Fig. 1's client-to-MUSIC
/// hop).
struct Request {
  enum class Op : uint8_t {
    CreateLockRef,
    AcquireLock,
    CriticalPut,
    CriticalGet,
    CriticalDelete,
    ReleaseLock,
    ForcedRelease,
    PutEventual,
    GetEventual,
    GetAllKeys,
    /// An ordered vector of critical puts/gets/deletes under one lockRef,
    /// shipped as one request (the pipelined-session wire op).
    Batch,
  };

  Op op = Op::GetEventual;
  Key key;
  LockRef ref = kNoLockRef;
  Value value;
  std::vector<BatchOp> batch;  // Op::Batch only

  Request() = default;
  Request(Op o, Key k, LockRef r, Value v)
      : op(o), key(std::move(k)), ref(r), value(std::move(v)) {}
  Request(Op o, Key k, LockRef r, std::vector<BatchOp> ops)
      : op(o), key(std::move(k)), ref(r), batch(std::move(ops)) {}

  /// Payload size for network/CPU cost accounting.
  size_t bytes() const {
    size_t n = key.size() + value.size() + 24;
    for (const auto& b : batch) n += b.key.size() + b.value.size() + 8;
    return n;
  }
};

/// The reply.
struct Response {
  OpStatus status = OpStatus::Timeout;
  LockRef ref = kNoLockRef;
  Value value;
  std::vector<Key> keys;
  std::vector<BatchOpResult> batch;  // per-sub-op outcomes (Op::Batch)

  Response() = default;
  explicit Response(OpStatus s) : status(s) {}
  Response(OpStatus s, LockRef r, Value v, std::vector<Key> ks)
      : status(s), ref(r), value(std::move(v)), keys(std::move(ks)) {}

  size_t bytes() const {
    size_t n = value.size() + 32;
    for (const auto& k : keys) n += k.size();
    for (const auto& b : batch) n += b.value.size() + 8;
    return n;
  }
};

/// A versioned value as it crosses the store seam: the payload plus the
/// scalar timestamp that orders it (the mirror of ds::Cell, kept separate so
/// the wire layer does not depend on the datastore).
struct WireCell {
  Value value;
  ScalarTs ts = -1;

  WireCell() = default;
  WireCell(Value v, ScalarTs t) : value(std::move(v)), ts(t) {}
};

/// The five inter-replica store operations.  Write carries the replicated
/// put (also read-repair pushes and hint replays, distinguished only by the
/// MsgKind tag for counters); Read fetches the replica's local cell; the
/// Paxos trio are Cassandra's LWT phases.
enum class StoreOp : uint8_t { Write, Read, Prepare, Accept, Commit };

/// One message between store replicas.
struct StoreRequest {
  StoreOp op = StoreOp::Read;
  Key key;
  WireCell cell;       // Write/Accept/Commit payload
  int64_t ballot = -1;  // Prepare/Accept/Commit

  StoreRequest() = default;
  StoreRequest(StoreOp o, Key k, WireCell c, int64_t b)
      : op(o), key(std::move(k)), cell(std::move(c)), ballot(b) {}

  static StoreRequest write(Key k, WireCell c) {
    return StoreRequest(StoreOp::Write, std::move(k), std::move(c), -1);
  }
  static StoreRequest read(Key k) {
    return StoreRequest(StoreOp::Read, std::move(k), WireCell(), -1);
  }
  static StoreRequest prepare(Key k, int64_t b) {
    return StoreRequest(StoreOp::Prepare, std::move(k), WireCell(), b);
  }
  static StoreRequest accept(Key k, WireCell c, int64_t b) {
    return StoreRequest(StoreOp::Accept, std::move(k), std::move(c), b);
  }
  static StoreRequest commit(Key k, WireCell c, int64_t b) {
    return StoreRequest(StoreOp::Commit, std::move(k), std::move(c), b);
  }
};

/// The reply to any StoreRequest.  Field meaning by op:
///   Write/Commit: ok = acknowledged.
///   Read:         ok = served; has_cell/cell = the replica's local view;
///                 from = responder (read-repair needs the stale node's id).
///   Prepare:      ok = promised; ballot = acceptor's promise; has_cell +
///                 cell + cell_ballot = an accepted-but-uncommitted proposal
///                 the coordinator must replay.
///   Accept:       ok = accepted; ballot = acceptor's promise.
struct StoreReply {
  bool ok = false;
  int64_t ballot = -1;
  bool has_cell = false;
  WireCell cell;
  int64_t cell_ballot = -1;
  int32_t from = -1;

  StoreReply() = default;
  StoreReply(bool o, int64_t b) : ok(o), ballot(b) {}
};

}  // namespace music::wire
