// Consistent-hash ring mapping MUSIC keys to shards.
//
// Each shard owns `vnodes` points on a 64-bit hash circle (Spinnaker-style
// shard-per-consensus-group placement; see PAPERS.md).  A key belongs to the
// shard owning the first ring point at or clockwise-after the key's hash.
// Virtual nodes smooth the per-shard keyspace share so a 64-shard ring
// splits a Zipfian keyspace roughly evenly without coordinated placement.
//
// Hashing is FNV-1a (the same stable, platform-independent function the
// data store uses for replica placement) followed by a splitmix64-style
// finalizer, applied identically to ring points and keys.  The finalizer
// matters: raw FNV-1a has weak trailing-byte avalanche, so keys sharing a
// stem ("job-1", "job-2", ...) land in one narrow hash band and a shard's
// virtual nodes ("shard:3#0", "shard:3#1", ...) collapse into what is
// effectively a single ring point — no smoothing at all.  Everything is
// still deterministic and platform-independent, so ring layouts stay
// bit-identical across machines and pinnable by golden checksum.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "datastore/store.h"  // ds::HashedKey::hash_of

namespace music::cluster {

/// The ring: an immutable sorted point table built at construction.
class Ring {
 public:
  /// An empty ring (routes nothing; shard_of returns -1).
  Ring() = default;

  /// A ring of `shards` shards, each with `vnodes` points.
  Ring(int shards, int vnodes);

  int shards() const { return shards_; }
  int vnodes() const { return vnodes_; }
  bool empty() const { return points_.empty(); }

  /// The shard owning `key`; -1 on an empty ring.
  int shard_of(std::string_view key) const {
    return shard_for_hash(placement_hash(ds::HashedKey::hash_of(key)));
  }

  /// Finalizer applied to every FNV hash before it touches the circle
  /// (splitmix64's mixer — full avalanche on every input bit).
  static uint64_t placement_hash(uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

  /// The shard owning an already-computed key hash.  Exposed so tests can
  /// place probes exactly on virtual-node boundaries.
  int shard_for_hash(uint64_t h) const;

  /// The hash of one virtual node's ring point ("shard:<s>#<v>").  Lets
  /// tests construct boundary keys without reimplementing the layout.
  static uint64_t point_hash(int shard, int vnode);

  /// FNV-1a over the sorted point table — pins the exact layout in goldens.
  uint64_t layout_checksum() const;

 private:
  struct Point {
    uint64_t hash = 0;
    int shard = -1;
  };

  int shards_ = 0;
  int vnodes_ = 0;
  std::vector<Point> points_;  // sorted by (hash, shard)
};

}  // namespace music::cluster
