#include "cluster/client.h"

#include <algorithm>
#include <map>
#include <utility>

#include "sim/future.h"
#include "sim/span.h"

namespace music::cluster {

Client::Client(Cluster& cluster, int site, verify::EcfChecker* checker,
               ClientOptions opt)
    : cluster_(cluster),
      sim_(cluster.simulation()),
      site_(site),
      checker_(checker),
      opt_(opt),
      map_(cluster.snapshot()) {}

sim::Task<RouteGrant> Client::admit_route(Key key) {
  for (int attempt = 0; attempt < opt_.max_route_attempts; ++attempt) {
    int shard = map_->route(key);
    if (shard < 0) co_return RouteGrant();  // empty ring: unroutable
    Status gate = cluster_.admit(shard, map_->epoch());
    if (gate.ok()) {
      stats_.routed_ops += 1;
      co_return RouteGrant(shard,
                           &cluster_.client_at(map_->group_of(shard), site_));
    }
    // The unified retry surface (common/types.h): the routing layer owns
    // exactly the statuses its own machinery can cure — WrongShard (refresh
    // the snapshot, re-route) and the transient set.  Anything else is a
    // final answer no amount of re-routing fixes.
    if (!is_retryable(gate.status(), RetryLayer::kCluster)) {
      co_return RouteGrant();
    }
    // WrongShard: the shard is frozen mid-move or our snapshot is stale.
    // Refresh and retry — the move protocol guarantees the freeze window
    // is bounded by the drain, so bounded backoff converges.
    stats_.wrong_shard_retries += 1;
    if (map_ != cluster_.snapshot()) {
      map_ = cluster_.snapshot();
      stats_.map_refreshes += 1;
    }
    co_await sim::sleep_for(sim_, opt_.route_backoff);
  }
  co_return RouteGrant();
}

sim::Task<Result<LockRef>> Client::create_lock_ref(Key key) {
  RouteGrant g = co_await admit_route(key);
  if (!g.ok()) co_return Result<LockRef>::Err(OpStatus::WrongShard);
  auto r = co_await g.client->create_lock_ref(key);
  cluster_.complete(g.shard);
  co_return r;
}

sim::Task<Status> Client::acquire_lock(Key key, LockRef ref) {
  RouteGrant g = co_await admit_route(key);
  if (!g.ok()) co_return Status::Err(OpStatus::WrongShard);
  Status st = co_await g.client->acquire_lock(key, ref);
  cluster_.complete(g.shard);
  if (st.ok() && checker_ != nullptr) checker_->on_acquired(key, ref);
  co_return st;
}

sim::Task<Status> Client::acquire_lock_blocking(Key key, LockRef ref) {
  // The polling loop lives at THIS layer (one admission per poll) so a
  // shard freeze interleaves between polls: waiters drain promptly and
  // resume polling against the destination group, where the copied !lq
  // row still carries their queue entry.
  sim::OpSpan span(sim_, "cluster.acquire", site_, -1, key);
  OpStatus last = OpStatus::Timeout;
  for (int poll = 0; poll < opt_.max_poll_attempts; ++poll) {
    RouteGrant g = co_await admit_route(key);
    if (!g.ok()) co_return Status::Err(OpStatus::WrongShard);
    Status st = co_await g.client->acquire_lock(key, ref);
    cluster_.complete(g.shard);
    if (st.ok()) {
      if (checker_ != nullptr) checker_->on_acquired(key, ref);
      co_return st;
    }
    last = st.status();
    // NotYetHolder (not first in queue) and transient wire failures poll
    // again; anything else is the final answer for this lockRef.
    if (!is_retryable(last) && last != OpStatus::NotYetHolder) {
      co_return st;
    }
    co_await sim::sleep_for(sim_, opt_.poll_backoff);
  }
  co_return Status::Err(last == OpStatus::NotYetHolder ? OpStatus::Timeout
                                                       : last);
}

sim::Task<Status> Client::critical_put(Key key, LockRef ref, Value value) {
  RouteGrant g = co_await admit_route(key);
  if (!g.ok()) co_return Status::Err(OpStatus::WrongShard);
  // Attempt is reported only once the op is admitted (it reaches the wire);
  // a WrongShard bounce never launched a write the oracle could observe.
  if (checker_ != nullptr) checker_->on_put_attempt(key, ref, value);
  Status st = co_await g.client->critical_put(key, ref, value);
  cluster_.complete(g.shard);
  if (st.ok() && checker_ != nullptr) checker_->on_put_acked(key, ref, value);
  co_return st;
}

sim::Task<Result<Value>> Client::critical_get(Key key, LockRef ref) {
  RouteGrant g = co_await admit_route(key);
  if (!g.ok()) co_return Result<Value>::Err(OpStatus::WrongShard);
  auto r = co_await g.client->critical_get(key, ref);
  cluster_.complete(g.shard);
  if (checker_ != nullptr) {
    if (r.ok()) {
      checker_->on_get_ok(key, ref, r.value());
    } else if (r.status() == OpStatus::NotFound) {
      checker_->on_get_not_found(key, ref);
    }
  }
  co_return r;
}

sim::Task<Status> Client::critical_delete(Key key, LockRef ref) {
  RouteGrant g = co_await admit_route(key);
  if (!g.ok()) co_return Status::Err(OpStatus::WrongShard);
  Status st = co_await g.client->critical_delete(key, ref);
  cluster_.complete(g.shard);
  co_return st;
}

sim::Task<std::vector<core::BatchOpResult>> Client::execute_batch(
    Key key, LockRef ref, std::vector<core::BatchOp> ops) {
  RouteGrant g = co_await admit_route(key);
  if (!g.ok()) {
    co_return std::vector<core::BatchOpResult>(
        ops.size(), core::BatchOpResult(OpStatus::WrongShard));
  }
  if (checker_ != nullptr) {
    // Mirrors verify::CheckedClient::flush: every Put in the batch is an
    // attempt the moment the (admitted) batch ships.
    for (const core::BatchOp& op : ops) {
      if (op.kind == core::BatchOp::Kind::Put) {
        checker_->on_put_attempt(op.key, ref, op.value);
      }
    }
  }
  auto results = co_await g.client->execute_batch(key, ref, ops);
  cluster_.complete(g.shard);
  if (checker_ != nullptr) {
    for (size_t i = 0; i < results.size() && i < ops.size(); ++i) {
      const core::BatchOp& op = ops[i];
      const core::BatchOpResult& r = results[i];
      if (op.kind == core::BatchOp::Kind::Put && r.status == OpStatus::Ok) {
        checker_->on_put_acked(op.key, ref, op.value);
      } else if (op.kind == core::BatchOp::Kind::Get) {
        if (r.status == OpStatus::Ok) {
          checker_->on_get_ok(op.key, ref, r.value);
        } else if (r.status == OpStatus::NotFound) {
          checker_->on_get_not_found(op.key, ref);
        }
      }
    }
  }
  co_return results;
}

sim::Task<Status> Client::release_lock(Key key, LockRef ref) {
  // Reported on entry (as verify::CheckedClient does): once release is
  // initiated the client must no longer rely on holding the lock, whatever
  // the wire outcome.
  if (checker_ != nullptr) checker_->on_released(key, ref);
  RouteGrant g = co_await admit_route(key);
  if (!g.ok()) co_return Status::Err(OpStatus::WrongShard);
  Status st = co_await g.client->release_lock(key, ref);
  cluster_.complete(g.shard);
  co_return st;
}

sim::Task<Status> Client::remove_lock_ref(Key key, LockRef ref) {
  RouteGrant g = co_await admit_route(key);
  if (!g.ok()) co_return Status::Err(OpStatus::WrongShard);
  Status st = co_await g.client->remove_lock_ref(key, ref);
  cluster_.complete(g.shard);
  co_return st;
}

sim::Task<Status> Client::forced_release(Key key, LockRef ref) {
  if (checker_ != nullptr) checker_->on_forced_release(key, ref);
  RouteGrant g = co_await admit_route(key);
  if (!g.ok()) co_return Status::Err(OpStatus::WrongShard);
  Status st = co_await g.client->forced_release(key, ref);
  cluster_.complete(g.shard);
  co_return st;
}

sim::Task<Status> Client::put(Key key, Value value) {
  RouteGrant g = co_await admit_route(key);
  if (!g.ok()) co_return Status::Err(OpStatus::WrongShard);
  Status st = co_await g.client->put(key, value);
  cluster_.complete(g.shard);
  co_return st;
}

sim::Task<Result<Value>> Client::get(Key key) {
  RouteGrant g = co_await admit_route(key);
  if (!g.ok()) co_return Result<Value>::Err(OpStatus::WrongShard);
  auto r = co_await g.client->get(key);
  cluster_.complete(g.shard);
  co_return r;
}

sim::Task<Result<std::vector<Key>>> Client::get_all_keys(Key prefix) {
  // Prefix scans cut across shards, so this fans out to every group (no
  // admission gate: the scan is advisory, like the core op it wraps) and
  // merges.  Stale copies left behind by moves collapse in the dedup.
  std::vector<Key> merged;
  OpStatus err = OpStatus::Ok;
  bool any_ok = false;
  for (int g = 0; g < cluster_.num_groups(); ++g) {
    auto r = co_await cluster_.client_at(g, site_).get_all_keys(prefix);
    if (r.ok()) {
      any_ok = true;
      for (const Key& k : r.value()) merged.push_back(k);
    } else {
      err = r.status();
    }
  }
  if (!any_ok && err != OpStatus::Ok) {
    co_return Result<std::vector<Key>>::Err(err);
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  co_return Result<std::vector<Key>>::Ok(std::move(merged));
}

// ---- Batch ------------------------------------------------------------------

Batch::Batch(Client& client) : client_(client), sim_(client.sim_) {}

size_t Batch::enqueue(core::BatchOp op) {
  if (flushed_) {
    ops_.clear();
    results_.clear();
    flushed_ = false;
  }
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

size_t Batch::put(Key key, Value value) {
  core::BatchOp op(core::BatchOp::Kind::Put, std::move(key), std::move(value));
  return enqueue(std::move(op));
}

size_t Batch::get(Key key) {
  core::BatchOp op(core::BatchOp::Kind::Get, std::move(key), Value{});
  return enqueue(std::move(op));
}

size_t Batch::del(Key key) {
  core::BatchOp op(core::BatchOp::Kind::Delete, std::move(key), Value{});
  return enqueue(std::move(op));
}

sim::Task<void> Batch::run_shard(Client* c, ShardBatch* sb,
                                 sim::Promise<sim::Unit> done) {
  // One critical section per shard, keyed on the slice's first key: lock,
  // ship the slice through the PR 3 batch pipeline, release.  Every step
  // is cluster-routed, so a shard move mid-flush re-routes transparently.
  const Key& lock_key = sb->ops.front().key;
  auto ref = co_await c->create_lock_ref(lock_key);
  if (!ref.ok()) {
    sb->results.assign(sb->ops.size(), core::BatchOpResult(ref.status()));
    done.set_value(sim::Unit{});
    co_return;
  }
  Status acq = co_await c->acquire_lock_blocking(lock_key, ref.value());
  if (!acq.ok()) {
    co_await c->remove_lock_ref(lock_key, ref.value());
    sb->results.assign(sb->ops.size(), core::BatchOpResult(acq.status()));
    done.set_value(sim::Unit{});
    co_return;
  }
  sb->results = co_await c->execute_batch(lock_key, ref.value(), sb->ops);
  co_await c->release_lock(lock_key, ref.value());
  done.set_value(sim::Unit{});
}

sim::Task<Status> Batch::flush() {
  if (ops_.empty() || flushed_) {
    flushed_ = true;
    co_return Status::Ok();
  }
  sim::OpSpan span(sim_, "cluster.batch_flush", client_.site(), -1,
                   std::to_string(ops_.size()));
  results_.assign(ops_.size(), core::BatchOpResult(OpStatus::Timeout));

  // Split by shard against the client's current snapshot.  Routing is only
  // advisory here — each shard run re-admits per op — so a concurrent move
  // costs a WrongShard retry inside the run, not a mis-stitched result.
  std::map<int, std::unique_ptr<ShardBatch>> by_shard;
  for (size_t i = 0; i < ops_.size(); ++i) {
    int shard = client_.map_->route(ops_[i].key);
    std::unique_ptr<ShardBatch>& sb = by_shard[shard];
    if (!sb) {
      sb = std::make_unique<ShardBatch>();
      sb->shard = shard;
    }
    sb->idx.push_back(i);
    sb->ops.push_back(ops_[i]);
  }

  // Spawn in ascending shard order (deterministic), then barrier.
  std::vector<sim::Future<sim::Unit>> done;
  done.reserve(by_shard.size());
  for (auto& [shard, sb] : by_shard) {
    (void)shard;
    sim::Promise<sim::Unit> p(sim_);
    done.push_back(p.future());
    sim::spawn(sim_, run_shard(&client_, sb.get(), p));
  }
  co_await sim::await_all(sim_, std::move(done));

  for (auto& [shard, sb] : by_shard) {
    (void)shard;
    for (size_t j = 0; j < sb->idx.size(); ++j) {
      results_[sb->idx[j]] = sb->results[j];
    }
  }
  flushed_ = true;
  co_return Status(core::batch_status(results_));
}

}  // namespace music::cluster
