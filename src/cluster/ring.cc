#include "cluster/ring.h"

#include <algorithm>
#include <string>

namespace music::cluster {

uint64_t Ring::point_hash(int shard, int vnode) {
  // Built stepwise (GCC 12 -Werror=restrict, see ds::Cell note).
  std::string tag = "shard:";
  tag += std::to_string(shard);
  tag += "#";
  tag += std::to_string(vnode);
  return placement_hash(ds::HashedKey::hash_of(tag));
}

Ring::Ring(int shards, int vnodes) : shards_(shards), vnodes_(vnodes) {
  if (shards <= 0 || vnodes <= 0) {
    shards_ = 0;
    vnodes_ = 0;
    return;
  }
  points_.reserve(static_cast<size_t>(shards) * static_cast<size_t>(vnodes));
  for (int s = 0; s < shards; ++s) {
    for (int v = 0; v < vnodes; ++v) {
      points_.push_back(Point{point_hash(s, v), s});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

int Ring::shard_for_hash(uint64_t h) const {
  if (points_.empty()) return -1;
  // First point strictly after h clockwise; a key hashing exactly onto a
  // point belongs to that point's shard (lower_bound), wrapping past the
  // last point to the first.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, uint64_t v) { return p.hash < v; });
  if (it == points_.end()) it = points_.begin();
  return it->shard;
}

uint64_t Ring::layout_checksum() const {
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<uint8_t>(v >> (i * 8));
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<uint64_t>(shards_));
  mix(static_cast<uint64_t>(vnodes_));
  for (const Point& p : points_) {
    mix(p.hash);
    mix(static_cast<uint64_t>(p.shard));
  }
  return h;
}

}  // namespace music::cluster
