#include "cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "sim/future.h"
#include "sim/span.h"

namespace music::cluster {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// The MUSIC key behind a data-store row key ("!d:k7" -> "k7").  Every
/// MUSIC row prefix ends with ':'.
std::string_view music_key_of(std::string_view row) {
  size_t colon = row.find(':');
  return colon == std::string_view::npos ? row : row.substr(colon + 1);
}

}  // namespace

Cluster::Cluster(sim::Simulation& sim, sim::Network& net, ClusterConfig cfg)
    : sim_(sim), net_(net), cfg_(std::move(cfg)) {
  if (cfg_.shards < 1) cfg_.shards = 1;
  if (cfg_.sites < 3) cfg_.sites = 3;
  assert(net_.num_sites() >= cfg_.sites &&
         "network profile must cover every cluster site");
  int ngroups = cfg_.groups > 0 ? cfg_.groups : cfg_.shards;
  if (ngroups > cfg_.shards) ngroups = cfg_.shards;
  ring_ = Ring(cfg_.shards, cfg_.vnodes);
  group_of_shard_.resize(static_cast<size_t>(cfg_.shards));
  for (int s = 0; s < cfg_.shards; ++s) {
    group_of_shard_[static_cast<size_t>(s)] = s % ngroups;
  }
  shard_epoch_.assign(static_cast<size_t>(cfg_.shards), 0);
  frozen_.assign(static_cast<size_t>(cfg_.shards), 0);
  inflight_ =
      std::make_unique<std::atomic<int64_t>[]>(static_cast<size_t>(cfg_.shards));

  groups_.resize(static_cast<size_t>(ngroups));
  for (int g = 0; g < ngroups; ++g) {
    Group& grp = groups_[static_cast<size_t>(g)];
    // Store replicas interleaved across the group's 3 home sites (identity
    // sites {0,1,2} in the classic layout).
    std::vector<int> store_sites;
    for (int i = 0; i < cfg_.store_nodes_per_group; ++i) {
      store_sites.push_back(home_site(g, i % 3));
    }
    grp.store = std::make_unique<ds::StoreCluster>(sim_, net_, cfg_.store,
                                                   store_sites);
    grp.locks = std::make_unique<ls::LockStore>(*grp.store);
    for (int k = 0; k < 3; ++k) {
      grp.replicas.push_back(std::make_unique<core::MusicReplica>(
          *grp.store, *grp.locks, cfg_.music, home_site(g, k)));
      if (cfg_.failure_detector) {
        grp.replicas.back()->start_failure_detector();
      }
    }
    // One shared core client per home site, eagerly (routing fans all
    // logical clients into these; eager construction keeps node ids — and
    // thus seeded client rng streams — independent of traffic order).
    for (int k = 0; k < 3; ++k) {
      int first = cfg_.holder_site >= 0 ? cfg_.holder_site : k;
      std::vector<core::MusicReplica*> prefs{
          grp.replicas[static_cast<size_t>(first)].get()};
      for (int j = 0; j < 3; ++j) {
        if (j != first) {
          prefs.push_back(grp.replicas[static_cast<size_t>(j)].get());
        }
      }
      grp.clients.push_back(std::make_unique<core::MusicClient>(
          sim_, net_, prefs, cfg_.client, home_site(g, k)));
    }
  }
  rebuild_snapshot();
}

void Cluster::rebuild_snapshot() {
  snapshot_ = std::make_shared<const ShardMap>(epoch_, ring_, group_of_shard_);
}

Status Cluster::admit(int shard, uint64_t cached_epoch) {
  if (shard < 0 || shard >= cfg_.shards) {
    return Status::Err(OpStatus::WrongShard);
  }
  auto s = static_cast<size_t>(shard);
  if (frozen_[s] != 0 || cached_epoch < shard_epoch_[s]) {
    stats_.wrong_shard_rejects.fetch_add(1, kRelaxed);
    return Status::Err(OpStatus::WrongShard);
  }
  inflight_[s].fetch_add(1, kRelaxed);
  stats_.admitted.fetch_add(1, kRelaxed);
  return Status::Ok();
}

void Cluster::complete(int shard) {
  inflight_[static_cast<size_t>(shard)].fetch_sub(1, kRelaxed);
}

std::vector<Key> Cluster::shard_rows(int g, int shard) const {
  static constexpr std::string_view kPrefixes[] = {"!d:", "!sf:", "!st:",
                                                   "!lq:"};
  std::vector<Key> rows;
  const Group& grp = groups_.at(static_cast<size_t>(g));
  for (int i = 0; i < grp.store->num_replicas(); ++i) {
    // Local census across every replica (no network): survivors of an
    // amnesia crash contribute the rows the wiped replica lost.
    const ds::StoreReplica& rep = grp.store->replica(i);
    for (std::string_view prefix : kPrefixes) {
      for (Key& k : rep.local_keys_with_prefix(prefix)) {
        if (ring_.shard_of(music_key_of(k)) == shard) {
          rows.push_back(std::move(k));
        }
      }
    }
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

sim::Task<Status> Cluster::copy_rows(int from, int to, std::vector<Key> rows) {
  constexpr size_t kChunk = 64;
  constexpr int kMaxAttempts = 4096;
  Group& src = groups_.at(static_cast<size_t>(from));
  Group& dst = groups_.at(static_cast<size_t>(to));
  ScalarTs max_ts = -1;
  for (size_t base = 0; base < rows.size(); base += kChunk) {
    size_t end = std::min(base + kChunk, rows.size());
    std::vector<Key> chunk(rows.begin() + static_cast<ptrdiff_t>(base),
                           rows.begin() + static_cast<ptrdiff_t>(end));
    int attempt = 0;
    while (true) {
      // Rotate coordinators so a crashed node cannot wedge the move; the
      // chunk retries as a unit (idempotent: same cells, same timestamps).
      ds::StoreReplica& sc = src.store->replica(attempt % src.store->num_replicas());
      auto reads = co_await sc.get_cells(chunk, ds::Consistency::Quorum);
      bool transient = false;
      std::vector<ds::WriteCell> writes;
      writes.reserve(chunk.size());
      for (size_t i = 0; i < chunk.size(); ++i) {
        if (reads[i].ok()) {
          writes.emplace_back(chunk[i], reads[i].value());
        } else if (reads[i].status() != OpStatus::NotFound) {
          // Sub-quorum row visibility is transient; retry the chunk.
          // NotFound rows (seen only at a stale census replica) are skipped.
          transient = true;
          break;
        }
      }
      if (!transient) {
        bool all_ok = true;
        if (!writes.empty()) {
          ds::StoreReplica& dc =
              dst.store->replica(attempt % dst.store->num_replicas());
          auto acks =
              co_await dc.put_cells(writes, ds::Consistency::Quorum);
          for (const Status& st : acks) {
            if (!st.ok()) all_ok = false;
          }
        }
        if (all_ok) {
          for (const ds::WriteCell& w : writes) {
            max_ts = std::max(max_ts, w.cell.ts);
          }
          stats_.moved_rows.fetch_add(writes.size(), kRelaxed);
          break;
        }
      }
      if (++attempt >= kMaxAttempts) co_return Status::Err(OpStatus::Timeout);
      co_await sim::sleep_for(sim_, sim::ms(5));
    }
  }
  // Future LWT commits at the destination must stamp above every imported
  // ballot-stamped row (see StoreReplica::advance_ballot_past).
  for (int i = 0; i < dst.store->num_replicas(); ++i) {
    dst.store->replica(i).advance_ballot_past(max_ts);
  }
  co_return Status::Ok();
}

sim::Task<Status> Cluster::move_shard(int shard, int to_group) {
  if (shard < 0 || shard >= cfg_.shards || to_group < 0 ||
      to_group >= num_groups()) {
    co_return Status::Err(OpStatus::Nack);
  }
  // Routing state (frozen_, group_of_shard_, the snapshot) is only ever
  // touched from the main lane, which under PDES runs alone between
  // windows — so site lanes admit() against it race-free.  Hop before the
  // first read; classic mode makes this a no-op.
  co_await sim::on_main_lane(sim_);
  auto s = static_cast<size_t>(shard);
  if (frozen_[s] != 0) co_return Status::Err(OpStatus::Conflict);
  int from = group_of_shard_[s];
  if (from == to_group) co_return Status::Ok();

  // Built stepwise (GCC 12 -Werror=restrict, see ds::Cell note).
  std::string detail = "s";
  detail += std::to_string(shard);
  detail += ":g";
  detail += std::to_string(from);
  detail += ">g";
  detail += std::to_string(to_group);
  sim::OpSpan span(sim_, "cluster.move_shard", -1, -1, detail);

  // 1. Freeze: new ops on the shard bounce with WrongShard.
  frozen_[s] = 1;
  // 2. Drain: admitted ops run to completion against the source group.
  while (inflight_[s].load(kRelaxed) > 0) {
    co_await sim::sleep_for(sim_, sim::ms(1));
  }
  // 3. Copy: quorum-read at the source, quorum-write at the destination,
  //    timestamps preserved.  The !lq row carries the guard counter and the
  //    live queue, so holders keep holding across the flip.
  std::vector<Key> rows = shard_rows(from, shard);
  Status copied = co_await copy_rows(from, to_group, std::move(rows));
  // copy_rows' awaits migrate the coroutine onto site lanes; hop back
  // before touching routing state again.
  co_await sim::on_main_lane(sim_);
  if (!copied.ok()) {
    frozen_[s] = 0;  // abort: the shard stays at the source group
    co_return copied;
  }
  // 4. Flip: reassign, bump the epoch, republish, unfreeze.
  group_of_shard_[s] = to_group;
  epoch_ += 1;
  shard_epoch_[s] = epoch_;
  rebuild_snapshot();
  frozen_[s] = 0;
  stats_.moves.fetch_add(1, kRelaxed);
  co_return Status::Ok();
}

void Cluster::set_down_store(int g, int replica, bool down, bool amnesia) {
  ds::StoreCluster& store = *group(g).store;
  if (replica < 0 || replica >= store.num_replicas()) return;
  if (down && amnesia) store.replica(replica).wipe_state();
  store.replica(replica).set_down(down);
}

void Cluster::set_down_music(int g, int site, bool down, bool amnesia) {
  Group& grp = group(g);
  if (site < 0 || site >= static_cast<int>(grp.replicas.size())) return;
  grp.replicas[static_cast<size_t>(site)]->set_down(down, amnesia);
}

uint64_t Cluster::total_critical_puts() const {
  uint64_t total = 0;
  for (const Group& grp : groups_) {
    for (const auto& rep : grp.replicas) {
      total += rep->stats().critical_puts;
    }
  }
  return total;
}

void Cluster::export_metrics(obs::MetricsRegistry& reg) const {
  reg.set("cluster.shards", static_cast<uint64_t>(cfg_.shards));
  reg.set("cluster.groups", static_cast<uint64_t>(groups_.size()));
  reg.set("cluster.map_epoch", epoch_);
  reg.set("cluster.moves", stats_.moves);
  reg.set("cluster.moved_rows", stats_.moved_rows);
  reg.set("cluster.admitted", stats_.admitted);
  reg.set("cluster.wrong_shard", stats_.wrong_shard_rejects);
  reg.set("cluster.critical_puts", total_critical_puts());
  for (size_t g = 0; g < groups_.size(); ++g) {
    uint64_t puts = 0;
    for (const auto& rep : groups_[g].replicas) {
      puts += rep->stats().critical_puts;
    }
    // Built stepwise (GCC 12 -Werror=restrict, see ds::Cell note).
    std::string name = "cluster.g";
    name += std::to_string(g);
    name += ".critical_puts";
    reg.set(name, puts);
  }
}

}  // namespace music::cluster
