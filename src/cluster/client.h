// The shard-aware client: one keyspace over N MUSIC groups.
//
// cluster::Client mirrors core::MusicClient's op surface but routes every
// operation through the cluster's ShardMap: pick the shard from the cached
// snapshot, pass the admission gate (cluster/cluster.h), dispatch to the
// owning group's shared core client at this client's site.  A WrongShard
// rejection (shard frozen mid-move, or this client's snapshot predates the
// shard's last move) is handled HERE: refresh the snapshot, back off,
// re-route — the caller only ever sees WrongShard when the re-route budget
// is spent, and then it is retryable by the same discipline.
//
// acquire_lock_blocking re-implements Listing 1's polling loop at the
// cluster layer (one admission per poll, not one admission for the whole
// wait): a shard freeze interleaves between polls instead of stalling the
// move's drain, and because the shard move copies the lock-queue row, a
// waiter's (or holder's) lockRef stays valid on the new group — polling
// simply resumes against the destination.
//
// Batch is the multi-shard counterpart of core::Session: enqueued ops are
// split by shard at flush, each shard's run executes as its own critical
// section (lockRef on that shard's first key) shipped through the PR 3
// batch pipeline, all shards flush in parallel, and results stitch back in
// enqueue order — Ok-prefix semantics hold per shard.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "api/client_api.h"
#include "cluster/cluster.h"
#include "core/client.h"
#include "core/music.h"
#include "verify/oracle.h"

namespace music::cluster {

struct ClientOptions {
  /// Route attempts per op before surfacing WrongShard to the caller.
  int max_route_attempts = 4096;
  /// Pause between route attempts (a frozen shard unfreezes in ~ms).
  sim::Duration route_backoff = sim::ms(2);
  /// Polls allowed for one acquire_lock_blocking loop.
  int max_poll_attempts = 4096;
  /// Pause between acquireLock polls.
  sim::Duration poll_backoff = sim::ms(2);
};

struct ClusterClientStats {
  uint64_t routed_ops = 0;          // ops dispatched through the gate
  uint64_t wrong_shard_retries = 0; // WrongShard bounces re-routed
  uint64_t map_refreshes = 0;       // snapshot refreshes those caused
};

/// One admitted route: the shard and the group client to dispatch to.
/// Callers MUST pair a granted route with Cluster::complete(shard).
/// (User ctors: crosses coroutine boundaries by value; see ds::Cell note.)
struct RouteGrant {
  int shard = -1;
  core::MusicClient* client = nullptr;

  RouteGrant() = default;
  RouteGrant(int s, core::MusicClient* c) : shard(s), client(c) {}
  bool ok() const { return client != nullptr; }
};

class Client : public api::ClientApi {
 public:
  /// A client at `site`.  With a checker, every observable ECF transition
  /// is reported (the cluster-layer CheckedClient; instrumentation points
  /// mirror verify::CheckedClient exactly).
  explicit Client(Cluster& cluster, int site,
                  verify::EcfChecker* checker = nullptr,
                  ClientOptions opt = {});

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&&) = default;

  int site() const override { return site_; }
  sim::Simulation& simulation() override { return sim_; }
  const ClusterClientStats& stats() const { return stats_; }
  /// The current ShardMap epoch (api::ClientApi introspection; reports the
  /// cluster's live snapshot, not this client's possibly-stale cache, so
  /// the REST status verb shows a move the moment it commits).
  uint64_t map_epoch() const override { return cluster_.snapshot()->epoch(); }
  /// Shards behind the routing layer (api::ClientApi introspection).
  int shard_count() const override { return cluster_.num_shards(); }
  Cluster& cluster() { return cluster_; }

  // ---- Table I operations, shard-routed. ------------------------------------

  sim::Task<Result<LockRef>> create_lock_ref(Key key) override;
  sim::Task<Status> acquire_lock(Key key, LockRef ref) override;
  sim::Task<Status> acquire_lock_blocking(Key key, LockRef ref) override;
  sim::Task<Status> critical_put(Key key, LockRef ref, Value value) override;
  sim::Task<Result<Value>> critical_get(Key key, LockRef ref) override;
  sim::Task<Status> critical_delete(Key key, LockRef ref) override;
  /// Single-shard batch under one lockRef (all ops must route to `key`'s
  /// shard — Batch below splits multi-shard op sets).
  sim::Task<std::vector<core::BatchOpResult>> execute_batch(
      Key key, LockRef ref, std::vector<core::BatchOp> ops) override;
  sim::Task<Status> release_lock(Key key, LockRef ref) override;
  sim::Task<Status> remove_lock_ref(Key key, LockRef ref) override;
  sim::Task<Status> forced_release(Key key, LockRef ref) override;

  // ---- Non-ECF conveniences. ------------------------------------------------

  sim::Task<Status> put(Key key, Value value) override;
  sim::Task<Result<Value>> get(Key key) override;
  /// Fans the prefix scan out to every group and merges (sorted, deduped).
  /// May include keys whose authoritative shard moved away from a group —
  /// source rows survive a move — which dedup absorbs.
  sim::Task<Result<std::vector<Key>>> get_all_keys(Key prefix) override;

 private:
  friend class Batch;

  /// Routes `key` to an admitted (shard, group-client) pair, refreshing the
  /// snapshot and backing off on WrongShard.  A null grant means the route
  /// budget is spent (callers surface WrongShard).
  sim::Task<RouteGrant> admit_route(Key key);

  Cluster& cluster_;
  sim::Simulation& sim_;
  int site_;
  verify::EcfChecker* checker_;
  ClientOptions opt_;
  std::shared_ptr<const ShardMap> map_;
  ClusterClientStats stats_;
};

/// A multi-shard pipelined batch.  Enqueue with put/get/del (returns the
/// result index), then flush(): ops are split by shard, each shard's slice
/// runs as one critical section + PR 3 batch in parallel with the others,
/// and per-op outcomes stitch back into results() in enqueue order.  The
/// roll-up status is the first non-Ok/NotFound outcome in enqueue order.
/// After a flush the next enqueue starts a fresh batch.
class Batch {
 public:
  explicit Batch(Client& client);

  size_t put(Key key, Value value);
  size_t get(Key key);
  size_t del(Key key);

  sim::Task<Status> flush();

  size_t pending() const { return flushed_ ? 0 : ops_.size(); }
  const std::vector<core::BatchOp>& ops() const { return ops_; }
  const std::vector<core::BatchOpResult>& results() const { return results_; }

 private:
  /// One shard's slice of the batch (stable address while in flight).
  struct ShardBatch {
    int shard = -1;
    std::vector<size_t> idx;  // enqueue indices, ascending
    std::vector<core::BatchOp> ops;
    std::vector<core::BatchOpResult> results;
  };

  /// Lock + batch-execute + release for one shard's slice (a named
  /// coroutine: spawned frames must not be lambdas; see ds::Cell note).
  static sim::Task<void> run_shard(Client* c, ShardBatch* sb,
                                   sim::Promise<sim::Unit> done);

  size_t enqueue(core::BatchOp op);

  Client& client_;
  sim::Simulation& sim_;
  std::vector<core::BatchOp> ops_;
  std::vector<core::BatchOpResult> results_;
  bool flushed_ = false;
};

}  // namespace music::cluster
