// Multi-group MUSIC: N independent lock/data groups behind one keyspace.
//
// A Cluster instantiates, over one simulated network, a configurable number
// of MUSIC *groups* — each its own data-store replica set (one replica per
// site), lock store and per-site MUSIC replicas, exactly the world every
// single-group test builds — and a consistent-hash ring (cluster/ring.h)
// partitioning the keyspace into shards served by those groups.  This is
// Spinnaker's shard-per-consensus-group design (PAPERS.md) applied to
// MUSIC's lock domains: keys in different shards coordinate through
// different lock queues and never contend.
//
// Routing is epoch-guarded.  The authoritative ShardMap lives here behind a
// shared_ptr snapshot; cluster::Client (cluster/client.h) caches a snapshot
// and every dispatch passes through admit(shard, cached_epoch), which
// rejects with WrongShard when the shard is frozen mid-move or the caller's
// snapshot predates the shard's last move.  Epochs are tracked per shard:
// moving shard 7 does not invalidate cached routes to shard 3, so a move
// only disturbs traffic that actually touches the moving shard.
//
// Shard move protocol (move_shard):
//   1. freeze   — new ops on the shard are rejected with WrongShard
//   2. drain    — wait for admitted in-flight ops to complete
//   3. copy     — enumerate the shard's data-store rows (!d/!sf/!st/!lq) at
//                 the source group and quorum-copy them, timestamps
//                 preserved, to the destination group.  Copying the !lq
//                 lock-queue row carries the guard counter AND the live
//                 queue, so current holders keep holding and future
//                 lockRefs keep increasing — no forced release is needed
//                 and the ECF oracle's monotone-grant invariant holds
//                 across the move.
//   4. flip     — reassign the shard, bump the map epoch, republish the
//                 snapshot, unfreeze.
// Source rows are not deleted (the old group's copies go stale and
// harmless; its failure detector only ever touches its own store).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "cluster/shardmap.h"
#include "core/client.h"
#include "core/music.h"
#include "datastore/store.h"
#include "lockstore/lockstore.h"
#include "obs/metrics.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "sim/task.h"

namespace music::cluster {

struct ClusterConfig {
  /// Shards on the ring (>= 1).
  int shards = 1;
  /// MUSIC groups; 0 = one group per shard.  Shard s starts at group
  /// s % groups.
  int groups = 0;
  /// Virtual nodes per shard on the ring.
  int vnodes = 64;
  /// Sites the cluster spreads over (clamped to >= 3).  At the default 3
  /// every group lives on sites {0,1,2} exactly as before the knob existed.
  /// More sites stagger each group's three home sites round-robin
  /// (home_site(g, k) = (g + k) % sites) so group traffic spreads across
  /// every site — under PDES (--par-sites) that is what puts work on more
  /// than three site lanes.  The network profile must have >= `sites` sites.
  int sites = 3;
  /// Store replicas per group, interleaved across the group's 3 home sites.
  int store_nodes_per_group = 3;
  /// Index (into the group's 3 home sites) of the replica every shared
  /// client prefers first; -1 = site-local.
  int holder_site = -1;
  /// Start each group's failure detector (as production MUSIC runs).
  bool failure_detector = true;
  core::MusicConfig music;
  ds::StoreConfig store;
  core::ClientConfig client;
};

/// Cluster-level counters (tests and the bench read these).  Atomic because
/// the admission gate runs on concurrent site lanes under PDES; relaxed
/// increments of commutative sums keep totals thread-count invariant, and
/// the implicit load lets readers keep writing `stats().moves`.
struct ClusterStats {
  std::atomic<uint64_t> moves{0};               // completed shard moves
  std::atomic<uint64_t> moved_rows{0};          // rows copied by those moves
  std::atomic<uint64_t> admitted{0};            // ops through the epoch gate
  std::atomic<uint64_t> wrong_shard_rejects{0}; // bounced (frozen or stale)
};

/// One MUSIC group: store + lock store + per-site replicas, plus one shared
/// core client per site (routing fans many logical clients into these).
struct Group {
  std::unique_ptr<ds::StoreCluster> store;
  std::unique_ptr<ls::LockStore> locks;
  std::vector<std::unique_ptr<core::MusicReplica>> replicas;  // per site
  std::vector<std::unique_ptr<core::MusicClient>> clients;    // per site
};

class Cluster {
 public:
  Cluster(sim::Simulation& sim, sim::Network& net, ClusterConfig cfg);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulation& simulation() { return sim_; }
  const ClusterConfig& config() const { return cfg_; }
  int num_shards() const { return cfg_.shards; }
  int num_groups() const { return static_cast<int>(groups_.size()); }
  int num_sites() const { return cfg_.sites; }

  /// Global site of group `g`'s k-th replica (k in [0, 3)): k itself in the
  /// classic 3-site layout, round-robin staggered otherwise.
  int home_site(int g, int k) const {
    return cfg_.sites <= 3 ? k : (g + k) % cfg_.sites;
  }

  /// The current routing snapshot.  Clients cache the shared_ptr and
  /// refresh on WrongShard; the Ring inside never changes, only the
  /// shard -> group assignment and epoch do.
  std::shared_ptr<const ShardMap> snapshot() const { return snapshot_; }

  /// Admission gate: Ok admits the op against `shard` (callers MUST pair
  /// with complete()); WrongShard when the shard is frozen mid-move or
  /// `cached_epoch` predates the shard's last move.
  Status admit(int shard, uint64_t cached_epoch);
  /// Marks an admitted op finished (drain accounting).
  void complete(int shard);

  Group& group(int g) { return groups_.at(static_cast<size_t>(g)); }
  /// The shared core client of group `g` serving global `site`: the group's
  /// own client there when `site` is one of its home sites, otherwise a
  /// deterministic fallback home (site % 3).  Identity mapping in the
  /// classic 3-site layout.
  core::MusicClient& client_at(int g, int site) {
    Group& grp = group(g);
    for (size_t k = 0; k < grp.clients.size(); ++k) {
      if (home_site(g, static_cast<int>(k)) == site) return *grp.clients[k];
    }
    return *grp.clients.at(static_cast<size_t>(site % 3));
  }

  /// Moves `shard` to `to_group` (freeze / drain / copy / flip; see the
  /// file comment).  One move per shard at a time; a concurrent second
  /// move of the same shard fails with Conflict.  Copy rounds retry on
  /// transient store failures, so a move launched under faults completes
  /// once the fault heals.
  sim::Task<Status> move_shard(int shard, int to_group);

  // ---- Nemesis targeting (per-group fault hooks). ---------------------------
  // `replica`/`site` index the group's own replica array (the k of
  // home_site(g, k)), not global sites.

  void set_down_store(int g, int replica, bool down, bool amnesia);
  void set_down_music(int g, int site, bool down, bool amnesia);

  // ---- Introspection. --------------------------------------------------------

  const ClusterStats& stats() const { return stats_; }
  /// Sum of MusicStats::critical_puts across every replica of every group
  /// (the bench_cluster headline numerator).
  uint64_t total_critical_puts() const;
  /// Publishes cluster.* gauges/counters plus per-group critical-put
  /// counters ("cluster.g<N>.critical_puts") into `reg`.
  void export_metrics(obs::MetricsRegistry& reg) const;

 private:
  void rebuild_snapshot();
  /// All data-store row keys belonging to `shard` at group `g`, across the
  /// MUSIC row prefixes, unioned over that group's replicas and sorted.
  std::vector<Key> shard_rows(int g, int shard) const;
  /// Quorum-copies `rows` (full data-store keys) from group `from` to
  /// group `to`, preserving cell timestamps.  Retries transient failures.
  sim::Task<Status> copy_rows(int from, int to, std::vector<Key> rows);

  sim::Simulation& sim_;
  sim::Network& net_;
  ClusterConfig cfg_;
  std::vector<Group> groups_;
  Ring ring_;
  uint64_t epoch_ = 0;
  std::vector<int> group_of_shard_;
  // Routing state (group_of_shard_, shard_epoch_, frozen_, the snapshot) is
  // only ever WRITTEN by move_shard, which under PDES runs as main-lane
  // events — alone, between windows — so site lanes read it race-free
  // through the barrier.  inflight_ is the one cell mutated BY site lanes
  // (admit/complete) and read by the main-lane drain loop, hence atomic
  // (array: atomics are not movable).
  std::vector<uint64_t> shard_epoch_;  // map epoch at the shard's last move
  std::vector<uint8_t> frozen_;
  std::unique_ptr<std::atomic<int64_t>[]> inflight_;
  std::shared_ptr<const ShardMap> snapshot_;
  ClusterStats stats_;
};

}  // namespace music::cluster
