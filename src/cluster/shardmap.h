// The versioned routing table: which MUSIC group serves each shard, at
// which map epoch.
//
// A ShardMap is an immutable snapshot.  The Cluster holds the authoritative
// copy behind a shared_ptr and republishes a new snapshot whenever a shard
// moves; clients cache the shared_ptr and route against their (possibly
// stale) snapshot until an admission gate rejects them with WrongShard, at
// which point they refresh.  Epochs are global and monotonic: every shard
// move bumps the map epoch by one.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cluster/ring.h"

namespace music::cluster {

class ShardMap {
 public:
  ShardMap() = default;
  ShardMap(uint64_t epoch, Ring ring, std::vector<int> group_of_shard)
      : epoch_(epoch),
        ring_(std::move(ring)),
        group_of_shard_(std::move(group_of_shard)) {}

  uint64_t epoch() const { return epoch_; }
  const Ring& ring() const { return ring_; }
  int shards() const { return ring_.shards(); }

  /// The shard owning `key`; -1 on an empty ring.
  int route(std::string_view key) const { return ring_.shard_of(key); }

  /// The group currently serving `shard`.
  int group_of(int shard) const {
    return group_of_shard_.at(static_cast<size_t>(shard));
  }

 private:
  uint64_t epoch_ = 0;
  Ring ring_;
  std::vector<int> group_of_shard_;
};

}  // namespace music::cluster
