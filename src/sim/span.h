// RAII glue between protocol code and the obs tracer.
//
// Protocol layers instrument operations like this:
//
//   sim::OpSpan span(sim(), "music.acquire_lock", site_, node_, key);
//   ... co_await ...           // child spans / messages attach automatically
//   sim::trace_rtts(sim(), 1); // declare one WAN round trip
//   span.finish();             // or let the destructor close it
//
// When no tracer is installed on the Simulation (the default), every one of
// these calls is two loads and a branch: no span is opened, no heap
// allocation happens (the key travels as a string_view), no event is
// scheduled.  When tracing is on, OpSpan opens a span parented on the
// current trace context and makes itself the context, so everything the
// operation causes — network messages, nested spans, declared RTTs — rolls
// up to it across coroutine suspensions (context rides on sim events; see
// Simulation::trace_ctx()).
//
// OpSpan must live in a coroutine frame or on a stack that is destroyed at
// the same simulated instant it finishes at; both hold in this codebase
// because continuations run as +0 events.
#pragma once

#include <string_view>

#include "obs/trace.h"
#include "sim/simulation.h"

namespace music::sim {

class OpSpan {
 public:
  OpSpan(Simulation& sim, const char* name, int site = -1, int node = -1,
         std::string_view detail = {})
      : sim_(sim) {
    obs::Tracer* t = sim_.tracer();
    if (t == nullptr) return;
    prev_ = sim_.trace_ctx();
    id_ = t->begin(name, sim_.now(), prev_, site, node, detail);
    if (id_ != 0) sim_.set_trace_ctx(id_);
  }

  ~OpSpan() { finish(); }

  OpSpan(const OpSpan&) = delete;
  OpSpan& operator=(const OpSpan&) = delete;

  /// Closes the span (idempotent).  Restores the previous trace context if
  /// this span is still the active one — if an unrelated event is running
  /// when the frame is destroyed, the context belongs to someone else and is
  /// left alone.
  void finish() {
    if (id_ == 0) return;
    obs::Tracer* t = sim_.tracer();
    if (t != nullptr) t->end(id_, sim_.now());
    if (sim_.trace_ctx() == id_) sim_.set_trace_ctx(prev_);
    id_ = 0;
  }

  obs::SpanId id() const { return id_; }

 private:
  Simulation& sim_;
  obs::SpanId id_ = 0;
  obs::SpanId prev_ = 0;
};

/// Declares `n` protocol-level WAN round trips against the current trace
/// context (no-op without a tracer).  Protocol code calls this once per
/// logical round: a quorum read/write round = 1, each LWT phase = 1.
inline void trace_rtts(Simulation& sim, uint64_t n = 1) {
  obs::Tracer* t = sim.tracer();
  if (t == nullptr) return;
  t->add_rtts(sim.trace_ctx(), n);
}

}  // namespace music::sim
