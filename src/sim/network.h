// WAN network model.
//
// Reproduces what the paper emulates with NetEm (§VIII-a): a set of sites
// (data centers) with a symmetric RTT matrix between them (Table II), plus a
// small intra-site RTT.  Messages experience one-way delay = RTT/2 + a
// bandwidth term + jitter, may be dropped with a configured probability, and
// are blocked entirely by partitions or node crashes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace music::obs {
class MetricsRegistry;
}  // namespace music::obs

namespace music::sim {

/// Identifies a simulated node (process).  Dense indices from Network.
using NodeId = int;

/// Identifies one active partition (stacked; see Network::partition_sites).
using PartitionId = uint64_t;

/// Identifies one active link fault (see Network::add_link_fault).
using LinkFaultId = uint64_t;

/// A directed per-site-pair link degradation.  All fields compose: a link
/// can be gray (elevated loss + delay) and duplicate at the same time; a
/// blackhole dominates everything else.  Applied to messages whose source
/// site -> destination site matches the fault's direction.
struct LinkFault {
  /// Drop every message on the link (asymmetric partition primitive).
  bool blackhole = false;
  /// Additional per-message drop probability (gray link).
  double extra_drop = 0.0;
  /// Additional one-way delay, milliseconds (gray link / latency spike).
  double extra_delay_ms = 0.0;
  /// Probability a delivered message is sent as two copies with
  /// independently sampled delays.  The receiver endpoint dedups (the
  /// delivery continuations are single-shot RPC promises), so the payload
  /// takes effect at the earlier arrival — duplication is observable as
  /// early/reordered delivery plus wire accounting.
  double dup_prob = 0.0;
};

/// What a message is, for per-type accounting.  Callers that don't care pass
/// nothing and land in Generic; protocol layers tag their sends so the
/// metrics dump breaks traffic down by protocol phase.
enum class MsgKind : uint8_t {
  Generic = 0,
  ClientRequest,
  ClientReply,
  StoreWrite,
  StoreRead,
  StoreRepair,
  StoreAck,
  PaxosPrepare,
  PaxosAccept,
  PaxosCommit,
  Hint,
  AntiEntropy,
  ZabProposal,
  ZabAck,
  ZabCommit,
  ZabHeartbeat,
  ZabElection,
  RaftAppend,
  RaftAppendAck,
  RaftVote,
  RaftForward,
  kCount,
};

/// Stable lowercase name for a MsgKind ("store_write", "zab_proposal", ...).
const char* to_string(MsgKind k);

/// A named set of sites and the RTTs between them, as in Table II of the
/// paper.  rtt_ms[i][j] is the round-trip time between sites i and j in
/// milliseconds; the matrix is symmetric with rtt_ms[i][i] = intra-site RTT.
struct LatencyProfile {
  std::string name;
  std::vector<std::vector<double>> rtt_ms;

  int num_sites() const { return static_cast<int>(rtt_ms.size()); }

  /// Builds a profile from the upper-triangle RTT list (S1-S2, S1-S3, S2-S3,
  /// ...) the paper uses, with `local_ms` on the diagonal.
  static LatencyProfile from_pairs(std::string name, int sites,
                                   const std::vector<double>& pair_rtts_ms,
                                   double local_ms = 0.2);

  /// Table II "11": Ohio, Ohio, N. Virginia — RTTs 0.2, 15.14, 15.14 ms.
  static LatencyProfile profile_11();
  /// Table II "lUs": Ohio, N. Calif., Oregon — RTTs 53.79, 72.14, 24.2 ms.
  static LatencyProfile profile_lus();
  /// Table II "lUsEu": Ohio, N. Calif., Frankfurt — 53.79, 100.56, 150.74.
  static LatencyProfile profile_luseu();
  /// All three Table II profiles, in paper order.
  static std::vector<LatencyProfile> table2();
  /// A single-site profile (for unit tests): `sites` co-located sites with
  /// the given intra/inter RTT.
  static LatencyProfile uniform(int sites, double rtt_ms_val,
                                double local_ms = 0.2);
};

/// Tunables for the network beyond the latency profile.
struct NetworkConfig {
  LatencyProfile profile = LatencyProfile::profile_lus();
  /// Fraction of one-way delay added/subtracted uniformly as jitter.
  double jitter_frac = 0.02;
  /// Probability an individual message is silently dropped.
  double drop_prob = 0.0;
  /// Inter-site bandwidth (per message serialization), bits per second.
  double wan_bandwidth_bps = 1e9;
  /// Intra-site bandwidth, bits per second.
  double lan_bandwidth_bps = 10e9;
};

/// The network: node registry, delay computation, delivery, partitions.
///
/// PDES: when the owning Simulation has enable_pdes() active at
/// construction time, every delivery is scheduled onto the DESTINATION
/// node's site lane (sim.schedule_site_at), jitter/drop randomness is
/// drawn from a per-source-site fork (so lanes never share a stream), and
/// all counters below are relaxed atomics (commutative sums — thread-count
/// invariant).  Fault state (partitions, link faults, node crashes) is
/// only ever mutated by main-lane events, which the PDES scheduler runs
/// alone between windows, so site lanes read it race-free.
class Network {
 public:
  Network(Simulation& sim, NetworkConfig cfg);

  /// Registers a node living at `site`; returns its id.
  NodeId add_node(int site);

  /// The site a node lives at.
  int site_of(NodeId n) const { return node_site_.at(static_cast<size_t>(n)); }

  /// Number of registered nodes.
  int num_nodes() const { return static_cast<int>(node_site_.size()); }

  /// Number of sites in the active profile.
  int num_sites() const { return cfg_.profile.num_sites(); }

  /// One-way delay for a `bytes`-sized message (includes jitter draw).
  Duration sample_delay(NodeId from, NodeId to, size_t bytes);

  /// RTT between two nodes' sites, without jitter or bandwidth (µs).
  Duration base_rtt(NodeId from, NodeId to) const;

  /// A strict lower bound (µs, >= 1) on every cross-site delivery delay
  /// under `cfg` — the conservative PDES lookahead: min site-pair one-way
  /// delay, shrunk by the worst-case negative jitter and a 1 µs rounding
  /// guard.  Bandwidth terms and link-fault delays only ever add.  A
  /// single-site profile has no cross-site messages; one simulated second
  /// is returned (the window end is bounded by main-lane events anyway).
  static Duration conservative_lookahead(const NetworkConfig& cfg);
  Duration conservative_lookahead() const {
    return conservative_lookahead(cfg_);
  }

  /// Sends a message: if deliverable, schedules `deliver` at the destination
  /// after the sampled delay.  Otherwise the message vanishes (the caller's
  /// future, if any, is simply never fulfilled).  `kind` tags the message
  /// for per-type counters; if a tracer is attached to the simulation, the
  /// message is also attributed to the current trace context.
  void send(NodeId from, NodeId to, size_t bytes, InlineFn deliver,
            MsgKind kind = MsgKind::Generic);

  /// Marks a node crashed (true) or alive (false).  Messages to/from crashed
  /// nodes are dropped.
  void set_node_down(NodeId n, bool down);
  bool node_down(NodeId n) const { return down_.at(static_cast<size_t>(n)); }

  /// Cuts all links between site sets A and B (nodes within a side still
  /// communicate).  Partitions STACK: a second call adds another cut on top
  /// of the first instead of replacing it (a message is deliverable only if
  /// no active partition separates the two sites).  Returns an id for
  /// heal_partition(id).
  PartitionId partition_sites(std::set<int> a, std::set<int> b);

  /// Heals one partition by id (unknown ids are ignored).
  void heal_partition(PartitionId id);

  /// Heals every active partition.
  void heal_all_partitions();

  /// Back-compat alias for heal_all_partitions(): before partitions
  /// stacked, "the" partition was the only one.
  void heal_partition() { heal_all_partitions(); }

  /// Number of currently active partitions.
  size_t active_partitions() const { return partitions_.size(); }

  /// Installs a directed link fault from `from_site` to `to_site`.  Faults
  /// stack; the effective behaviour of a site pair composes every matching
  /// fault (any blackhole wins; loss probabilities compound; delays add;
  /// the max duplication probability applies).  Returns an id for
  /// remove_link_fault(id).
  LinkFaultId add_link_fault(int from_site, int to_site, LinkFault fault);

  /// Removes one link fault by id (unknown ids are ignored).
  void remove_link_fault(LinkFaultId id);

  /// Removes every active link fault.
  void clear_link_faults();

  /// Number of currently active link faults.
  size_t active_link_faults() const { return link_faults_.size(); }

  /// True if a message from -> to would currently be deliverable (ignoring
  /// random drops).
  bool deliverable(NodeId from, NodeId to) const;

  /// Messages sent / dropped so far, all kinds and site pairs combined.
  uint64_t messages_sent() const { return ld(sent_); }
  uint64_t messages_dropped() const { return ld(dropped_); }

  /// Messages dropped specifically by a link fault's blackhole or extra_drop
  /// (also counted in messages_dropped()).
  uint64_t link_fault_drops() const { return ld(link_fault_drops_); }

  /// Duplicate copies created by link-fault duplication (not counted in
  /// messages_sent(): the duplicate is a network artifact, not a send).
  uint64_t duplicates_delivered() const { return ld(duplicates_delivered_); }
  /// Total payload bytes handed to send() (diagnostics).
  uint64_t bytes_sent() const { return ld(bytes_sent_); }

  /// Per-message-type counts (sends of that kind; drops counted within).
  uint64_t messages_sent(MsgKind k) const {
    return ld(sent_by_kind_[static_cast<size_t>(k)]);
  }
  uint64_t messages_dropped(MsgKind k) const {
    return ld(dropped_by_kind_[static_cast<size_t>(k)]);
  }

  /// Per-site-pair counts: messages whose source lives at `from_site` and
  /// destination at `to_site` (directed).
  uint64_t pair_messages(int from_site, int to_site) const {
    return ld(pair_sent_[pair_index(from_site, to_site)]);
  }
  uint64_t pair_bytes(int from_site, int to_site) const {
    return ld(pair_bytes_[pair_index(from_site, to_site)]);
  }

  /// Messages that crossed sites (WAN traffic), all pairs combined.
  uint64_t wan_messages_sent() const { return ld(wan_sent_); }

  /// Publishes all counters into `reg` under "net.*": totals, one counter
  /// per message kind with traffic, and per-site-pair message/byte counts.
  void export_metrics(obs::MetricsRegistry& reg) const;

  Simulation& simulation() { return sim_; }
  const NetworkConfig& config() const { return cfg_; }

 private:
  /// Counter cell: relaxed atomic increments from concurrent site lanes
  /// sum commutatively, so totals stay deterministic at any worker count.
  using Counter = std::atomic<uint64_t>;
  static uint64_t ld(const Counter& c) {
    return c.load(std::memory_order_relaxed);
  }
  static void add(Counter& c, uint64_t v) {
    c.fetch_add(v, std::memory_order_relaxed);
  }

  size_t pair_index(int from_site, int to_site) const {
    return static_cast<size_t>(from_site) *
               static_cast<size_t>(num_sites()) +
           static_cast<size_t>(to_site);
  }

  /// The random stream for messages ORIGINATING at `from_site`: the shared
  /// root stream in classic mode, a per-site fork under PDES (sends from
  /// different sites execute concurrently).
  Rng& delay_rng(int from_site) {
    return site_rngs_.empty() ? rng_
                              : site_rngs_[static_cast<size_t>(from_site)];
  }

  Duration sample_delay_with(Rng& rng, NodeId from, NodeId to, size_t bytes);

  /// Schedules a delivery closure `delay` µs from now at `dest_site` (onto
  /// its lane under PDES, onto the current lane in classic mode).
  void deliver_at(int dest_site, Duration delay, InlineFn fn);

  struct ActivePartition {
    PartitionId id;
    std::set<int> side_a, side_b;
  };
  struct ActiveLinkFault {
    LinkFaultId id;
    int from_site, to_site;
    LinkFault fault;
  };

  /// The composition of every link fault matching from_site -> to_site.
  /// delivered == false means a blackhole applies.
  struct EffectiveFault {
    bool blackhole = false;
    double keep_prob = 1.0;  // product of (1 - extra_drop)
    double extra_delay_ms = 0.0;
    double dup_prob = 0.0;
  };
  EffectiveFault effective_fault(int from_site, int to_site) const;

  Simulation& sim_;
  NetworkConfig cfg_;
  Rng rng_;
  /// Per-source-site rng forks, non-empty iff the sim was in PDES mode at
  /// construction (enable_pdes must precede Network construction).
  std::vector<Rng> site_rngs_;
  bool pdes_ = false;
  std::vector<int> node_site_;
  std::vector<bool> down_;
  std::vector<ActivePartition> partitions_;
  std::vector<ActiveLinkFault> link_faults_;
  uint64_t next_fault_id_ = 1;
  Counter sent_{0};
  Counter dropped_{0};
  Counter link_fault_drops_{0};
  Counter duplicates_delivered_{0};
  Counter bytes_sent_{0};
  Counter wan_sent_{0};
  Counter sent_by_kind_[static_cast<size_t>(MsgKind::kCount)] = {};
  Counter dropped_by_kind_[static_cast<size_t>(MsgKind::kCount)] = {};
  // num_sites^2 cells, row-major [from][to] (atomics are not movable, so
  // these are arrays rather than vectors).
  std::unique_ptr<Counter[]> pair_sent_;
  std::unique_ptr<Counter[]> pair_bytes_;
};

}  // namespace music::sim
