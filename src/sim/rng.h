// Deterministic random-number generation for the simulator.
//
// Every source of randomness in a simulation run flows through one Rng (or a
// fork of it), so a run is fully reproducible from its seed.  Property tests
// sweep seeds; benchmark runs fix them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>

namespace music::sim {

/// Deterministic random source.  Thin wrapper over std::mt19937_64 with the
/// distributions the simulator needs.  Copyable; copies evolve independently.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed.
  explicit Rng(uint64_t seed = 1) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform unsigned 64-bit value.
  uint64_t next_u64() { return engine_(); }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial; returns true with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Creates an independent generator whose seed is derived from this one's
  /// stream and the given tag.  Use to give each client/node its own stream
  /// so adding one component does not perturb the randomness of others.
  Rng fork(uint64_t tag) {
    // SplitMix64-style mix of a fresh draw with the tag.
    uint64_t z = engine_() + 0x9E3779B97F4A7C15ull * (tag + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
  }

  /// Access to the underlying engine for use with std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Decorrelated-jitter exponential backoff (the "decorrelated jitter" scheme
/// from the AWS architecture blog): the next pause is uniform in
/// [base, min(cap, 3 * prev)], so concurrent retriers spread out instead of
/// thundering in lockstep while the expected pause still grows geometrically
/// until the cap.  Durations are in simulator ticks (microseconds); both the
/// client retry discipline (src/core) and the TCP reconnect loop (src/net)
/// share this one implementation.  Requires base <= cap; returns base
/// whenever the window is degenerate (prev below base/3).
inline int64_t decorrelated_backoff(int64_t base, int64_t cap, int64_t prev, Rng& rng) {
  double lo = static_cast<double>(base);
  double hi = std::min(static_cast<double>(cap), 3.0 * static_cast<double>(prev));
  if (hi <= lo) return base;
  return static_cast<int64_t>(rng.uniform_real(lo, hi));
}

}  // namespace music::sim
