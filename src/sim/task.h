// Coroutine tasks for the simulator.
//
// Protocol code (clients, MUSIC replicas, consensus coordinators) is written
// as C++20 coroutines returning Task<T>.  A Task is lazy: it starts when
// awaited.  Awaiting a Task transfers control to the child coroutine and
// resumes the parent (symmetric transfer) when the child finishes, so the
// code reads exactly like the paper's sequential pseudo-code while the
// simulator interleaves many of them over virtual time.
//
// Top-level coroutines (e.g. one per simulated client) are launched with
// spawn(), which detaches them; their frames are destroyed when they finish.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/simulation.h"

namespace music::sim {

template <typename T>
class Task;

namespace detail {

/// Shared pieces of the Task promise: continuation tracking and the final
/// awaiter that hands control back to the awaiting coroutine.
///
/// The continuation is NOT resumed synchronously (symmetric transfer):
/// instead it is scheduled as a fresh event on the current Simulation at +0.
/// Synchronous resumption would let the continuation destroy this
/// coroutine's frame while the frame's resume function is still on the call
/// stack (GCC does not guarantee the tail call), which is a use-after-free.
/// Scheduling costs one event per task completion and fully unwinds the
/// stack first.
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      if (!cont) return;
      Simulation* sim = current_simulation();
      assert(sim != nullptr &&
             "Task completed outside Simulation::step()/spawn()");
      sim->schedule(0, [cont] { cont.resume(); });
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine producing a T.  Move-only; owns the coroutine
/// frame and destroys it on destruction.  Await it exactly once.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase {
    std::optional<T> result;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { result.emplace(std::move(v)); }
  };

  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  // Awaiting a Task starts (resumes) it and suspends the awaiter until the
  // task completes, at which point FinalAwaiter resumes the awaiter.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;
  }
  T await_resume() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
    return std::move(*handle_.promise().result);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

/// Task<void>: same semantics, no value.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

namespace detail {

/// Eagerly-started, self-destroying coroutine used by spawn().  Its frame
/// owns the spawned Task (keeping the child frame alive) and both are freed
/// when the child completes.
struct DetachedTask {
  struct promise_type {
    DetachedTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    // A detached protocol coroutine has nowhere to deliver an exception;
    // domain failures are values (OpStatus), so an escape here is a bug.
    void unhandled_exception() { std::terminate(); }
  };
};

inline DetachedTask run_detached(Task<void> t) { co_await std::move(t); }

}  // namespace detail

/// Launches a Task<void> as an independent top-level coroutine of `sim`.
/// The task starts running immediately (until its first suspension) and its
/// frame is released when it completes.
inline void spawn(Simulation& sim, Task<void> t) {
  detail::CurrentSimScope scope(&sim);
  detail::run_detached(std::move(t));
}

}  // namespace music::sim
