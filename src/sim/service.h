// Server compute and disk models.
//
// The paper's throughput results (Figs 4 and 6) are shaped not just by WAN
// RTTs but by server-side queueing: each testbed node has 8 cores, and a
// single Zab leader serializes every write (the "queuing effects of
// consensus writes" the paper observes).  ServiceNode models a node's
// request-processing capacity as `workers` parallel servers with a service
// time of base + bytes/rate per message.  Disk models Zookeeper's
// synchronous transaction-log fsync (Cassandra's default commit-log sync is
// periodic, so its write path takes only the in-memory cost).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace music::sim {

/// Compute-capacity parameters for one server process.
struct ServiceConfig {
  /// Parallel request-processing workers (cores).
  int workers = 8;
  /// Fixed per-message handling cost, microseconds.
  Duration base_cost_us = 50;
  /// Additional cost per payload byte, nanoseconds (serialization, memcpy).
  double per_byte_ns = 2.0;
};

/// A node's compute executor: `workers` parallel servers with FIFO
/// assignment.  Work submitted while the node is down is discarded, and
/// taking the node down discards all queued work (crash semantics).
class ServiceNode {
 public:
  ServiceNode(Simulation& sim, ServiceConfig cfg);

  /// Cost model: base + bytes * per_byte.
  Duration cost_for(size_t bytes) const;

  /// Enqueues `work` with the cost derived from `bytes`; runs it when a
  /// worker has processed it (start delayed until a worker frees up).
  void submit(size_t bytes, InlineFn work);

  /// Enqueues `work` with an explicit cost.
  void submit_cost(Duration cost, InlineFn work);

  /// Crash / restart.  Going down discards queued and in-flight work.
  void set_down(bool down);
  bool down() const { return down_; }

  /// Completed work items (diagnostics).
  uint64_t completed() const { return completed_; }
  /// Total busy time accumulated across workers (diagnostics; for
  /// utilization = busy / (elapsed * workers)).
  Duration busy_time() const { return busy_; }

 private:
  Simulation& sim_;
  ServiceConfig cfg_;
  bool down_ = false;
  uint64_t epoch_ = 0;  // bumped on crash; stale completions no-op
  // Min-heap of times at which each worker becomes free.
  std::priority_queue<Time, std::vector<Time>, std::greater<>> free_at_;
  uint64_t completed_ = 0;
  Duration busy_ = 0;
};

/// Storage-device parameters.
struct DiskConfig {
  /// Base latency of a synchronous flush (fsync), microseconds.
  Duration fsync_base_us = 1000;
  /// Sequential write throughput, bytes per second.
  double write_bps = 300e6;
};

/// A single-queue storage device.  Used by the Zab substitute, which fsyncs
/// its transaction log before acknowledging each proposal.
class Disk {
 public:
  Disk(Simulation& sim, DiskConfig cfg);

  /// Synchronously persists `bytes`, then runs `done`.  Requests queue FIFO
  /// behind one another (single device).
  void write_sync(size_t bytes, InlineFn done);

  /// Crash semantics as in ServiceNode.
  void set_down(bool down);

  uint64_t completed() const { return completed_; }

 private:
  Simulation& sim_;
  DiskConfig cfg_;
  bool down_ = false;
  uint64_t epoch_ = 0;
  Time free_at_ = 0;
  uint64_t completed_ = 0;
};

}  // namespace music::sim
