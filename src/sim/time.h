// Simulated-time primitives for the MUSIC discrete-event simulator.
//
// All simulated time is expressed in microseconds since simulation start as a
// signed 64-bit integer.  Signed arithmetic keeps interval subtraction safe
// and allows sentinel negative values in a few internal spots; 2^63 us is
// ~292k years, so overflow is not a practical concern.
#pragma once

#include <cstdint>

namespace music::sim {

/// Simulated time, in microseconds since the start of the simulation.
using Time = int64_t;

/// A duration in simulated microseconds (same representation as Time).
using Duration = int64_t;

/// Sentinel meaning "never" / "no deadline".
inline constexpr Time kTimeNever = INT64_MAX;

/// Converts whole microseconds to a Duration (identity; for readability).
constexpr Duration us(int64_t v) { return v; }

/// Converts whole milliseconds to a Duration.
constexpr Duration ms(int64_t v) { return v * 1000; }

/// Converts fractional milliseconds to a Duration (rounded to microseconds).
constexpr Duration ms_f(double v) { return static_cast<Duration>(v * 1000.0); }

/// Converts whole seconds to a Duration.
constexpr Duration sec(int64_t v) { return v * 1'000'000; }

/// Converts a Duration to fractional milliseconds (for reporting).
constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1000.0; }

/// Converts a Duration to fractional seconds (for reporting).
constexpr double to_sec(Duration d) { return static_cast<double>(d) / 1'000'000.0; }

}  // namespace music::sim
