// Futures, promises, sleeps, timeouts and quorum-gathering for simulator
// coroutines.
//
// A Promise<T>/Future<T> pair carries one value across the event loop: RPC
// replies, disk completions, etc.  Fulfilment schedules waiter resumption as
// a fresh event (never synchronously), so protocol handlers cannot re-enter
// one another.  A future that is never fulfilled (dropped message, crashed
// node) simply never resumes its waiter — callers guard with
// await_with_timeout() or await_count().
#pragma once

#include <cassert>
#include <coroutine>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "sim/time.h"

namespace music::sim {

/// Empty payload for futures that only signal completion.
struct Unit {};

namespace detail {

template <typename T>
struct SharedState {
  explicit SharedState(Simulation& s) : sim(&s) {}

  Simulation* sim;
  std::optional<T> value;
  std::vector<InlineFn> callbacks;
  std::vector<InlineFnT<void(const T&)>> value_callbacks;

  void set(T v) {
    assert(!value.has_value() && "promise fulfilled twice");
    value.emplace(std::move(v));
    // Run callbacks as fresh events so fulfilment never re-enters the
    // fulfilling handler's stack.  Value callbacks receive a copy of the
    // value so they need not (and must not) capture the Future itself —
    // a callback capturing its own future is a reference cycle that leaks
    // whenever the promise is never fulfilled (dropped messages).
    for (auto& cb : callbacks) sim->schedule(0, std::move(cb));
    callbacks.clear();
    for (auto& cb : value_callbacks) {
      sim->schedule(0, [cb = std::move(cb), v = *value]() mutable { cb(v); });
    }
    value_callbacks.clear();
  }

  void on_ready(InlineFn cb) {
    if (value.has_value()) {
      sim->schedule(0, std::move(cb));
    } else {
      callbacks.push_back(std::move(cb));
    }
  }

  void on_value(InlineFnT<void(const T&)> cb) {
    if (value.has_value()) {
      sim->schedule(0, [cb = std::move(cb), v = *value]() mutable { cb(v); });
    } else {
      value_callbacks.push_back(std::move(cb));
    }
  }
};

}  // namespace detail

/// Read side of a one-shot value channel.  Copyable (shared); awaiting a
/// ready future resumes on a later event-loop turn, preserving causality.
template <typename T>
class Future {
 public:
  Future() = default;

  /// True once the value is available.
  bool ready() const { return state_ && state_->value.has_value(); }

  /// The value; requires ready().
  const T& value() const { return *state_->value; }

  /// True if this future is connected to a promise.
  bool valid() const { return state_ != nullptr; }

  /// Registers a callback run (as a fresh event) when the value is set, or
  /// immediately-as-an-event if already set.
  ///
  /// LIFETIME: the callback MUST NOT capture this Future (or anything
  /// holding it) — that forms a cycle that leaks if the promise is never
  /// fulfilled.  To consume the value, use on_value() instead.
  void on_ready(InlineFn cb) const { state_->on_ready(std::move(cb)); }

  /// Registers a callback receiving a copy of the value (as a fresh
  /// event).  Safe under never-fulfilled promises: no self-capture needed.
  void on_value(InlineFnT<void(const T&)> cb) const {
    state_->on_value(std::move(cb));
  }

  struct Awaiter {
    std::shared_ptr<detail::SharedState<T>> state;
    bool await_ready() const { return state->value.has_value(); }
    void await_suspend(std::coroutine_handle<> h) {
      state->on_ready([h] { h.resume(); });
    }
    T await_resume() { return *state->value; }
  };
  /// Awaits the value.  If the promise is never fulfilled the coroutine
  /// never resumes; use await_with_timeout() when that can happen.
  Awaiter operator co_await() const { return Awaiter{state_}; }

 private:
  template <typename U>
  friend class Promise;
  explicit Future(std::shared_ptr<detail::SharedState<T>> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::SharedState<T>> state_;
};

/// Write side of a one-shot value channel.
template <typename T>
class Promise {
 public:
  explicit Promise(Simulation& sim)
      : state_(std::make_shared<detail::SharedState<T>>(sim)) {}

  /// The matching future (may be taken any number of times).
  Future<T> future() const { return Future<T>(state_); }

  /// Fulfils the promise.  Must be called at most once.
  void set_value(T v) const { state_->set(std::move(v)); }

  /// True if already fulfilled.
  bool fulfilled() const { return state_->value.has_value(); }

 private:
  std::shared_ptr<detail::SharedState<T>> state_;
};

/// Awaitable pause: `co_await sleep_for(sim, d)` resumes d microseconds of
/// simulated time later.
struct SleepAwaiter {
  Simulation& sim;
  Duration d;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sim.schedule(d, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline SleepAwaiter sleep_for(Simulation& sim, Duration d) {
  return SleepAwaiter{sim, d};
}

/// Awaitable lane hop: `co_await on_main_lane(sim)` continues the coroutine
/// on the MAIN event lane — which under PDES runs alone between lookahead
/// windows, making it the safe (and deterministic) place to mutate state
/// that concurrent site lanes read.  No-op when already on the main lane,
/// and in classic mode always a no-op: awaiting it never suspends, costs no
/// event, and leaves classic goldens bit-identical.
struct MainLaneAwaiter {
  Simulation& sim;
  bool await_ready() const noexcept { return sim.on_main_lane(); }
  void await_suspend(std::coroutine_handle<> h) {
    sim.schedule_main_at(sim.now(), [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline MainLaneAwaiter on_main_lane(Simulation& sim) {
  return MainLaneAwaiter{sim};
}

/// Awaits `f`, giving up after `timeout`.  Returns the value, or nullopt on
/// timeout.  A late fulfilment after timeout is ignored safely.
template <typename T>
Task<std::optional<T>> await_with_timeout(Simulation& sim, Future<T> f,
                                          Duration timeout) {
  Promise<std::optional<T>> done(sim);
  auto fired = std::make_shared<bool>(false);
  f.on_value([done, fired](const T& v) {
    if (*fired) return;
    *fired = true;
    done.set_value(v);
  });
  sim.schedule(timeout, [done, fired] {
    if (*fired) return;
    *fired = true;
    done.set_value(std::nullopt);
  });
  co_return co_await done.future();
}

/// Awaits at least `want` of the given futures, or gives up at `timeout`
/// (pass kTimeNever to wait unboundedly — only when fulfilment of `want` of
/// them is guaranteed).  Returns however many values arrived by then (in
/// arrival order): size() >= want means the quorum was reached.  This is the
/// primitive behind quorum reads/writes and consensus vote collection.
template <typename T>
Task<std::vector<T>> await_count(Simulation& sim, std::vector<Future<T>> fs,
                                 size_t want, Duration timeout) {
  struct Gather {
    std::vector<T> got;
    bool done = false;
  };
  auto g = std::make_shared<Gather>();
  Promise<std::vector<T>> result(sim);
  if (want == 0 || fs.empty()) {
    result.set_value({});
  } else {
    for (auto& f : fs) {
      f.on_value([g, want, result](const T& v) {
        if (g->done) return;
        g->got.push_back(v);
        if (g->got.size() >= want) {
          g->done = true;
          result.set_value(g->got);
        }
      });
    }
    if (timeout != kTimeNever) {
      sim.schedule(timeout, [g, result] {
        if (g->done) return;
        g->done = true;
        result.set_value(g->got);
      });
    }
  }
  co_return co_await result.future();
}

/// Awaits all futures (no timeout).  Use only when fulfilment is guaranteed.
template <typename T>
Task<std::vector<T>> await_all(Simulation& sim, std::vector<Future<T>> fs) {
  size_t n = fs.size();
  co_return co_await await_count<T>(sim, std::move(fs), n, kTimeNever);
}

}  // namespace music::sim
