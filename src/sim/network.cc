#include "sim/network.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace music::sim {

const char* to_string(MsgKind k) {
  switch (k) {
    case MsgKind::Generic: return "generic";
    case MsgKind::ClientRequest: return "client_request";
    case MsgKind::ClientReply: return "client_reply";
    case MsgKind::StoreWrite: return "store_write";
    case MsgKind::StoreRead: return "store_read";
    case MsgKind::StoreRepair: return "store_repair";
    case MsgKind::StoreAck: return "store_ack";
    case MsgKind::PaxosPrepare: return "paxos_prepare";
    case MsgKind::PaxosAccept: return "paxos_accept";
    case MsgKind::PaxosCommit: return "paxos_commit";
    case MsgKind::Hint: return "hint";
    case MsgKind::AntiEntropy: return "anti_entropy";
    case MsgKind::ZabProposal: return "zab_proposal";
    case MsgKind::ZabAck: return "zab_ack";
    case MsgKind::ZabCommit: return "zab_commit";
    case MsgKind::ZabHeartbeat: return "zab_heartbeat";
    case MsgKind::ZabElection: return "zab_election";
    case MsgKind::RaftAppend: return "raft_append";
    case MsgKind::RaftAppendAck: return "raft_append_ack";
    case MsgKind::RaftVote: return "raft_vote";
    case MsgKind::RaftForward: return "raft_forward";
    case MsgKind::kCount: break;
  }
  return "unknown";
}

LatencyProfile LatencyProfile::from_pairs(std::string name, int sites,
                                          const std::vector<double>& pair_rtts_ms,
                                          double local_ms) {
  assert(static_cast<int>(pair_rtts_ms.size()) == sites * (sites - 1) / 2);
  LatencyProfile p;
  p.name = std::move(name);
  p.rtt_ms.assign(static_cast<size_t>(sites),
                  std::vector<double>(static_cast<size_t>(sites), local_ms));
  size_t k = 0;
  for (int i = 0; i < sites; ++i) {
    for (int j = i + 1; j < sites; ++j) {
      p.rtt_ms[static_cast<size_t>(i)][static_cast<size_t>(j)] = pair_rtts_ms[k];
      p.rtt_ms[static_cast<size_t>(j)][static_cast<size_t>(i)] = pair_rtts_ms[k];
      ++k;
    }
  }
  return p;
}

// Table II of the paper.  RTT order is S1-S2, S1-S3, S2-S3.
LatencyProfile LatencyProfile::profile_11() {
  return from_pairs("11", 3, {0.2, 15.14, 15.14});
}

LatencyProfile LatencyProfile::profile_lus() {
  return from_pairs("lUs", 3, {53.79, 72.14, 24.2});
}

LatencyProfile LatencyProfile::profile_luseu() {
  return from_pairs("lUsEu", 3, {53.79, 100.56, 150.74});
}

std::vector<LatencyProfile> LatencyProfile::table2() {
  return {profile_11(), profile_lus(), profile_luseu()};
}

LatencyProfile LatencyProfile::uniform(int sites, double rtt_ms_val,
                                       double local_ms) {
  std::vector<double> pairs(static_cast<size_t>(sites * (sites - 1) / 2),
                            rtt_ms_val);
  return from_pairs("uniform", sites, pairs, local_ms);
}

Network::Network(Simulation& sim, NetworkConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)), rng_(sim.rng().fork(0x6e657477ull)) {
  auto n = static_cast<size_t>(num_sites());
  pair_sent_.assign(n * n, 0);
  pair_bytes_.assign(n * n, 0);
}

NodeId Network::add_node(int site) {
  assert(site >= 0 && site < num_sites());
  node_site_.push_back(site);
  down_.push_back(false);
  return static_cast<NodeId>(node_site_.size() - 1);
}

Duration Network::base_rtt(NodeId from, NodeId to) const {
  int sa = site_of(from);
  int sb = site_of(to);
  return ms_f(cfg_.profile.rtt_ms[static_cast<size_t>(sa)][static_cast<size_t>(sb)]);
}

Duration Network::sample_delay(NodeId from, NodeId to, size_t bytes) {
  Duration one_way = base_rtt(from, to) / 2;
  bool same_site = site_of(from) == site_of(to);
  double bps = same_site ? cfg_.lan_bandwidth_bps : cfg_.wan_bandwidth_bps;
  auto xfer = static_cast<Duration>(static_cast<double>(bytes) * 8.0 / bps * 1e6);
  Duration base = one_way + xfer;
  if (cfg_.jitter_frac > 0.0) {
    double j = rng_.uniform_real(-cfg_.jitter_frac, cfg_.jitter_frac);
    base += static_cast<Duration>(static_cast<double>(base) * j);
  }
  return std::max<Duration>(base, 1);
}

void Network::send(NodeId from, NodeId to, size_t bytes,
                   std::function<void()> deliver, MsgKind kind) {
  int sa = site_of(from);
  int sb = site_of(to);
  bool cross_site = sa != sb;
  ++sent_;
  bytes_sent_ += bytes;
  ++sent_by_kind_[static_cast<size_t>(kind)];
  size_t pi = pair_index(sa, sb);
  ++pair_sent_[pi];
  pair_bytes_[pi] += bytes;
  if (cross_site) ++wan_sent_;
  if (obs::Tracer* t = sim_.tracer()) {
    t->add_message(sim_.trace_ctx(), cross_site);
  }
  if (!deliverable(from, to) || rng_.chance(cfg_.drop_prob)) {
    ++dropped_;
    ++dropped_by_kind_[static_cast<size_t>(kind)];
    return;
  }
  Duration d = sample_delay(from, to, bytes);
  NodeId dest = to;
  sim_.schedule(d, [this, dest, kind, deliver = std::move(deliver)] {
    // The destination may have crashed (or been partitioned away) while the
    // message was in flight; re-check on delivery.
    if (down_.at(static_cast<size_t>(dest))) {
      ++dropped_;
      ++dropped_by_kind_[static_cast<size_t>(kind)];
      return;
    }
    deliver();
  });
}

void Network::set_node_down(NodeId n, bool down) {
  down_.at(static_cast<size_t>(n)) = down;
}

void Network::partition_sites(std::set<int> a, std::set<int> b) {
  partitioned_ = true;
  side_a_ = std::move(a);
  side_b_ = std::move(b);
}

void Network::heal_partition() {
  partitioned_ = false;
  side_a_.clear();
  side_b_.clear();
}

void Network::export_metrics(obs::MetricsRegistry& reg) const {
  reg.set("net.msgs.sent", sent_);
  reg.set("net.msgs.dropped", dropped_);
  reg.set("net.msgs.wan", wan_sent_);
  reg.set("net.bytes.sent", bytes_sent_);
  for (size_t k = 0; k < static_cast<size_t>(MsgKind::kCount); ++k) {
    if (sent_by_kind_[k] == 0 && dropped_by_kind_[k] == 0) continue;
    std::string base = "net.msgs.";
    base += to_string(static_cast<MsgKind>(k));
    reg.set(base, sent_by_kind_[k]);
    if (dropped_by_kind_[k] != 0) reg.set(base + ".dropped", dropped_by_kind_[k]);
  }
  int n = num_sites();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      size_t pi = pair_index(i, j);
      if (pair_sent_[pi] == 0) continue;
      std::string base = "net.pair.s" + std::to_string(i) + ".s" +
                         std::to_string(j);
      reg.set(base + ".msgs", pair_sent_[pi]);
      reg.set(base + ".bytes", pair_bytes_[pi]);
    }
  }
}

bool Network::deliverable(NodeId from, NodeId to) const {
  if (down_.at(static_cast<size_t>(from)) || down_.at(static_cast<size_t>(to))) {
    return false;
  }
  if (!partitioned_) return true;
  int sa = site_of(from);
  int sb = site_of(to);
  bool cross = (side_a_.count(sa) && side_b_.count(sb)) ||
               (side_a_.count(sb) && side_b_.count(sa));
  return !cross;
}

}  // namespace music::sim
