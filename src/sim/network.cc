#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace music::sim {

const char* to_string(MsgKind k) {
  switch (k) {
    case MsgKind::Generic: return "generic";
    case MsgKind::ClientRequest: return "client_request";
    case MsgKind::ClientReply: return "client_reply";
    case MsgKind::StoreWrite: return "store_write";
    case MsgKind::StoreRead: return "store_read";
    case MsgKind::StoreRepair: return "store_repair";
    case MsgKind::StoreAck: return "store_ack";
    case MsgKind::PaxosPrepare: return "paxos_prepare";
    case MsgKind::PaxosAccept: return "paxos_accept";
    case MsgKind::PaxosCommit: return "paxos_commit";
    case MsgKind::Hint: return "hint";
    case MsgKind::AntiEntropy: return "anti_entropy";
    case MsgKind::ZabProposal: return "zab_proposal";
    case MsgKind::ZabAck: return "zab_ack";
    case MsgKind::ZabCommit: return "zab_commit";
    case MsgKind::ZabHeartbeat: return "zab_heartbeat";
    case MsgKind::ZabElection: return "zab_election";
    case MsgKind::RaftAppend: return "raft_append";
    case MsgKind::RaftAppendAck: return "raft_append_ack";
    case MsgKind::RaftVote: return "raft_vote";
    case MsgKind::RaftForward: return "raft_forward";
    case MsgKind::kCount: break;
  }
  return "unknown";
}

LatencyProfile LatencyProfile::from_pairs(std::string name, int sites,
                                          const std::vector<double>& pair_rtts_ms,
                                          double local_ms) {
  assert(static_cast<int>(pair_rtts_ms.size()) == sites * (sites - 1) / 2);
  LatencyProfile p;
  p.name = std::move(name);
  p.rtt_ms.assign(static_cast<size_t>(sites),
                  std::vector<double>(static_cast<size_t>(sites), local_ms));
  size_t k = 0;
  for (int i = 0; i < sites; ++i) {
    for (int j = i + 1; j < sites; ++j) {
      p.rtt_ms[static_cast<size_t>(i)][static_cast<size_t>(j)] = pair_rtts_ms[k];
      p.rtt_ms[static_cast<size_t>(j)][static_cast<size_t>(i)] = pair_rtts_ms[k];
      ++k;
    }
  }
  return p;
}

// Table II of the paper.  RTT order is S1-S2, S1-S3, S2-S3.
LatencyProfile LatencyProfile::profile_11() {
  return from_pairs("11", 3, {0.2, 15.14, 15.14});
}

LatencyProfile LatencyProfile::profile_lus() {
  return from_pairs("lUs", 3, {53.79, 72.14, 24.2});
}

LatencyProfile LatencyProfile::profile_luseu() {
  return from_pairs("lUsEu", 3, {53.79, 100.56, 150.74});
}

std::vector<LatencyProfile> LatencyProfile::table2() {
  return {profile_11(), profile_lus(), profile_luseu()};
}

LatencyProfile LatencyProfile::uniform(int sites, double rtt_ms_val,
                                       double local_ms) {
  std::vector<double> pairs(static_cast<size_t>(sites * (sites - 1) / 2),
                            rtt_ms_val);
  return from_pairs("uniform", sites, pairs, local_ms);
}

Network::Network(Simulation& sim, NetworkConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)), rng_(sim.rng().fork(0x6e657477ull)) {
  auto n = static_cast<size_t>(num_sites());
  pair_sent_ = std::make_unique<Counter[]>(n * n);
  pair_bytes_ = std::make_unique<Counter[]>(n * n);
  if (sim.pdes()) {
    assert(sim.pdes_sites() >= num_sites() &&
           "enable_pdes needs one lane per profile site");
    pdes_ = true;
    site_rngs_.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      site_rngs_.push_back(rng_.fork(0x6c616e65ull + s));
    }
  }
}

NodeId Network::add_node(int site) {
  assert(site >= 0 && site < num_sites());
  node_site_.push_back(site);
  down_.push_back(false);
  return static_cast<NodeId>(node_site_.size() - 1);
}

Duration Network::base_rtt(NodeId from, NodeId to) const {
  int sa = site_of(from);
  int sb = site_of(to);
  return ms_f(cfg_.profile.rtt_ms[static_cast<size_t>(sa)][static_cast<size_t>(sb)]);
}

Duration Network::sample_delay(NodeId from, NodeId to, size_t bytes) {
  return sample_delay_with(delay_rng(site_of(from)), from, to, bytes);
}

Duration Network::sample_delay_with(Rng& rng, NodeId from, NodeId to,
                                    size_t bytes) {
  Duration one_way = base_rtt(from, to) / 2;
  bool same_site = site_of(from) == site_of(to);
  double bps = same_site ? cfg_.lan_bandwidth_bps : cfg_.wan_bandwidth_bps;
  auto xfer = static_cast<Duration>(static_cast<double>(bytes) * 8.0 / bps * 1e6);
  Duration base = one_way + xfer;
  if (cfg_.jitter_frac > 0.0) {
    double j = rng.uniform_real(-cfg_.jitter_frac, cfg_.jitter_frac);
    base += static_cast<Duration>(static_cast<double>(base) * j);
  }
  return std::max<Duration>(base, 1);
}

Duration Network::conservative_lookahead(const NetworkConfig& cfg) {
  const auto& p = cfg.profile;
  int n = p.num_sites();
  double min_rtt = -1.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double r = p.rtt_ms[static_cast<size_t>(i)][static_cast<size_t>(j)];
      if (min_rtt < 0.0 || r < min_rtt) min_rtt = r;
    }
  }
  if (min_rtt < 0.0) return sec(1);  // single site: no cross-site messages
  // sample_delay computes one_way = ms_f(rtt)/2 in integer µs, then scales
  // by at worst (1 - jitter_frac) with truncation toward zero; the -1 here
  // absorbs that truncation, making the bound strict.
  Duration one_way = ms_f(min_rtt) / 2;
  auto l = static_cast<Duration>(static_cast<double>(one_way) *
                                 (1.0 - cfg.jitter_frac)) -
           1;
  return std::max<Duration>(l, 1);
}

void Network::send(NodeId from, NodeId to, size_t bytes, InlineFn deliver,
                   MsgKind kind) {
  int sa = site_of(from);
  int sb = site_of(to);
  bool cross_site = sa != sb;
  add(sent_, 1);
  add(bytes_sent_, bytes);
  add(sent_by_kind_[static_cast<size_t>(kind)], 1);
  size_t pi = pair_index(sa, sb);
  add(pair_sent_[pi], 1);
  add(pair_bytes_[pi], bytes);
  if (cross_site) add(wan_sent_, 1);
  if (obs::Tracer* t = sim_.tracer()) {
    t->add_message(sim_.trace_ctx(), cross_site);
  }
  // All randomness for a message is drawn from its SOURCE site's stream:
  // sends from one site execute in deterministic lane order under PDES,
  // so the stream consumption is worker-count invariant.
  Rng& rng = delay_rng(sa);
  if (!deliverable(from, to) || rng.chance(cfg_.drop_prob)) {
    add(dropped_, 1);
    add(dropped_by_kind_[static_cast<size_t>(kind)], 1);
    return;
  }
  // Link faults degrade (but don't block — blackholes are handled inside
  // deliverable()) the surviving messages.  The rng draws below only happen
  // while a matching fault is active, so fault-free runs consume exactly the
  // same random stream as before the fault table existed.
  Duration extra = 0;
  bool duplicate = false;
  if (!link_faults_.empty()) {
    EffectiveFault f = effective_fault(sa, sb);
    if (f.keep_prob < 1.0 && !rng.chance(f.keep_prob)) {
      add(dropped_, 1);
      add(dropped_by_kind_[static_cast<size_t>(kind)], 1);
      add(link_fault_drops_, 1);
      return;
    }
    if (f.extra_delay_ms > 0.0) extra = ms_f(f.extra_delay_ms);
    if (f.dup_prob > 0.0 && rng.chance(f.dup_prob)) duplicate = true;
  }
  Duration d = sample_delay_with(rng, from, to, bytes) + extra;
  NodeId dest = to;
  if (duplicate) {
    // Both copies traverse the wire, but the endpoint continuations here are
    // single-shot (they fulfil RPC promises), i.e. the receiver dedups — so
    // the payload takes effect at whichever copy arrives first.  The
    // observable effect of duplication is early/reordered delivery plus the
    // wire-level accounting.
    add(duplicates_delivered_, 1);
    Duration d2 = sample_delay_with(rng, from, to, bytes) + extra;
    auto shared = std::make_shared<InlineFn>(std::move(deliver));
    auto once = [this, dest, kind, shared] {
      if (!*shared) return;                  // the other copy fired first
      InlineFn fn = std::move(*shared);      // consume: single-shot
      // The destination may have crashed while the message was in flight;
      // re-check on delivery.
      if (down_.at(static_cast<size_t>(dest))) {
        add(dropped_, 1);
        add(dropped_by_kind_[static_cast<size_t>(kind)], 1);
        return;
      }
      fn();
    };
    deliver_at(sb, d, InlineFn(once));
    deliver_at(sb, d2, InlineFn(std::move(once)));
    return;
  }
  deliver_at(
      sb, d,
      InlineFn([this, dest, kind, deliver = std::move(deliver)]() mutable {
        // The destination may have crashed (or been partitioned away) while
        // the message was in flight; re-check on delivery.
        if (down_.at(static_cast<size_t>(dest))) {
          add(dropped_, 1);
          add(dropped_by_kind_[static_cast<size_t>(kind)], 1);
          return;
        }
        deliver();
      }));
}

void Network::deliver_at(int dest_site, Duration delay, InlineFn fn) {
  // Delivery runs on the destination's site lane under PDES, so the RPC
  // handler (and the promise fulfilment it eventually triggers at the
  // requester) executes with that site's clock and random stream.  The
  // conservative lookahead guarantees cross-site `delay`s clear the
  // current window; same-site deliveries stay on the executing lane.
  if (pdes_) {
    sim_.schedule_site_at(dest_site, sim_.now() + delay, std::move(fn));
  } else {
    sim_.schedule(delay, std::move(fn));
  }
}

void Network::set_node_down(NodeId n, bool down) {
  down_.at(static_cast<size_t>(n)) = down;
}

PartitionId Network::partition_sites(std::set<int> a, std::set<int> b) {
  PartitionId id = next_fault_id_++;
  partitions_.push_back({id, std::move(a), std::move(b)});
  return id;
}

void Network::heal_partition(PartitionId id) {
  std::erase_if(partitions_,
                [id](const ActivePartition& p) { return p.id == id; });
}

void Network::heal_all_partitions() { partitions_.clear(); }

LinkFaultId Network::add_link_fault(int from_site, int to_site,
                                    LinkFault fault) {
  assert(from_site >= 0 && from_site < num_sites());
  assert(to_site >= 0 && to_site < num_sites());
  LinkFaultId id = next_fault_id_++;
  link_faults_.push_back({id, from_site, to_site, fault});
  return id;
}

void Network::remove_link_fault(LinkFaultId id) {
  std::erase_if(link_faults_,
                [id](const ActiveLinkFault& f) { return f.id == id; });
}

void Network::clear_link_faults() { link_faults_.clear(); }

Network::EffectiveFault Network::effective_fault(int from_site,
                                                 int to_site) const {
  EffectiveFault e;
  for (const ActiveLinkFault& f : link_faults_) {
    if (f.from_site != from_site || f.to_site != to_site) continue;
    if (f.fault.blackhole) e.blackhole = true;
    e.keep_prob *= 1.0 - f.fault.extra_drop;
    e.extra_delay_ms += f.fault.extra_delay_ms;
    e.dup_prob = std::max(e.dup_prob, f.fault.dup_prob);
  }
  return e;
}

void Network::export_metrics(obs::MetricsRegistry& reg) const {
  reg.set("net.msgs.sent", ld(sent_));
  reg.set("net.msgs.dropped", ld(dropped_));
  reg.set("net.msgs.wan", ld(wan_sent_));
  reg.set("net.bytes.sent", ld(bytes_sent_));
  if (ld(link_fault_drops_) != 0) {
    reg.set("net.msgs.link_fault_drops", ld(link_fault_drops_));
  }
  if (ld(duplicates_delivered_) != 0) {
    reg.set("net.msgs.duplicates", ld(duplicates_delivered_));
  }
  for (size_t k = 0; k < static_cast<size_t>(MsgKind::kCount); ++k) {
    if (ld(sent_by_kind_[k]) == 0 && ld(dropped_by_kind_[k]) == 0) continue;
    std::string base = "net.msgs.";
    base += to_string(static_cast<MsgKind>(k));
    reg.set(base, ld(sent_by_kind_[k]));
    if (ld(dropped_by_kind_[k]) != 0) {
      reg.set(base + ".dropped", ld(dropped_by_kind_[k]));
    }
  }
  int n = num_sites();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      size_t pi = pair_index(i, j);
      if (ld(pair_sent_[pi]) == 0) continue;
      std::string base = "net.pair.s" + std::to_string(i) + ".s" +
                         std::to_string(j);
      reg.set(base + ".msgs", ld(pair_sent_[pi]));
      reg.set(base + ".bytes", ld(pair_bytes_[pi]));
    }
  }
}

bool Network::deliverable(NodeId from, NodeId to) const {
  if (down_.at(static_cast<size_t>(from)) || down_.at(static_cast<size_t>(to))) {
    return false;
  }
  if (partitions_.empty() && link_faults_.empty()) return true;
  int sa = site_of(from);
  int sb = site_of(to);
  for (const ActivePartition& p : partitions_) {
    bool cross = (p.side_a.count(sa) && p.side_b.count(sb)) ||
                 (p.side_a.count(sb) && p.side_b.count(sa));
    if (cross) return false;
  }
  for (const ActiveLinkFault& f : link_faults_) {
    if (f.fault.blackhole && f.from_site == sa && f.to_site == sb) return false;
  }
  return true;
}

}  // namespace music::sim
