#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace music::sim {

const char* to_string(MsgKind k) {
  switch (k) {
    case MsgKind::Generic: return "generic";
    case MsgKind::ClientRequest: return "client_request";
    case MsgKind::ClientReply: return "client_reply";
    case MsgKind::StoreWrite: return "store_write";
    case MsgKind::StoreRead: return "store_read";
    case MsgKind::StoreRepair: return "store_repair";
    case MsgKind::StoreAck: return "store_ack";
    case MsgKind::PaxosPrepare: return "paxos_prepare";
    case MsgKind::PaxosAccept: return "paxos_accept";
    case MsgKind::PaxosCommit: return "paxos_commit";
    case MsgKind::Hint: return "hint";
    case MsgKind::AntiEntropy: return "anti_entropy";
    case MsgKind::ZabProposal: return "zab_proposal";
    case MsgKind::ZabAck: return "zab_ack";
    case MsgKind::ZabCommit: return "zab_commit";
    case MsgKind::ZabHeartbeat: return "zab_heartbeat";
    case MsgKind::ZabElection: return "zab_election";
    case MsgKind::RaftAppend: return "raft_append";
    case MsgKind::RaftAppendAck: return "raft_append_ack";
    case MsgKind::RaftVote: return "raft_vote";
    case MsgKind::RaftForward: return "raft_forward";
    case MsgKind::kCount: break;
  }
  return "unknown";
}

LatencyProfile LatencyProfile::from_pairs(std::string name, int sites,
                                          const std::vector<double>& pair_rtts_ms,
                                          double local_ms) {
  assert(static_cast<int>(pair_rtts_ms.size()) == sites * (sites - 1) / 2);
  LatencyProfile p;
  p.name = std::move(name);
  p.rtt_ms.assign(static_cast<size_t>(sites),
                  std::vector<double>(static_cast<size_t>(sites), local_ms));
  size_t k = 0;
  for (int i = 0; i < sites; ++i) {
    for (int j = i + 1; j < sites; ++j) {
      p.rtt_ms[static_cast<size_t>(i)][static_cast<size_t>(j)] = pair_rtts_ms[k];
      p.rtt_ms[static_cast<size_t>(j)][static_cast<size_t>(i)] = pair_rtts_ms[k];
      ++k;
    }
  }
  return p;
}

// Table II of the paper.  RTT order is S1-S2, S1-S3, S2-S3.
LatencyProfile LatencyProfile::profile_11() {
  return from_pairs("11", 3, {0.2, 15.14, 15.14});
}

LatencyProfile LatencyProfile::profile_lus() {
  return from_pairs("lUs", 3, {53.79, 72.14, 24.2});
}

LatencyProfile LatencyProfile::profile_luseu() {
  return from_pairs("lUsEu", 3, {53.79, 100.56, 150.74});
}

std::vector<LatencyProfile> LatencyProfile::table2() {
  return {profile_11(), profile_lus(), profile_luseu()};
}

LatencyProfile LatencyProfile::uniform(int sites, double rtt_ms_val,
                                       double local_ms) {
  std::vector<double> pairs(static_cast<size_t>(sites * (sites - 1) / 2),
                            rtt_ms_val);
  return from_pairs("uniform", sites, pairs, local_ms);
}

Network::Network(Simulation& sim, NetworkConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)), rng_(sim.rng().fork(0x6e657477ull)) {
  auto n = static_cast<size_t>(num_sites());
  pair_sent_.assign(n * n, 0);
  pair_bytes_.assign(n * n, 0);
}

NodeId Network::add_node(int site) {
  assert(site >= 0 && site < num_sites());
  node_site_.push_back(site);
  down_.push_back(false);
  return static_cast<NodeId>(node_site_.size() - 1);
}

Duration Network::base_rtt(NodeId from, NodeId to) const {
  int sa = site_of(from);
  int sb = site_of(to);
  return ms_f(cfg_.profile.rtt_ms[static_cast<size_t>(sa)][static_cast<size_t>(sb)]);
}

Duration Network::sample_delay(NodeId from, NodeId to, size_t bytes) {
  Duration one_way = base_rtt(from, to) / 2;
  bool same_site = site_of(from) == site_of(to);
  double bps = same_site ? cfg_.lan_bandwidth_bps : cfg_.wan_bandwidth_bps;
  auto xfer = static_cast<Duration>(static_cast<double>(bytes) * 8.0 / bps * 1e6);
  Duration base = one_way + xfer;
  if (cfg_.jitter_frac > 0.0) {
    double j = rng_.uniform_real(-cfg_.jitter_frac, cfg_.jitter_frac);
    base += static_cast<Duration>(static_cast<double>(base) * j);
  }
  return std::max<Duration>(base, 1);
}

void Network::send(NodeId from, NodeId to, size_t bytes, InlineFn deliver,
                   MsgKind kind) {
  int sa = site_of(from);
  int sb = site_of(to);
  bool cross_site = sa != sb;
  ++sent_;
  bytes_sent_ += bytes;
  ++sent_by_kind_[static_cast<size_t>(kind)];
  size_t pi = pair_index(sa, sb);
  ++pair_sent_[pi];
  pair_bytes_[pi] += bytes;
  if (cross_site) ++wan_sent_;
  if (obs::Tracer* t = sim_.tracer()) {
    t->add_message(sim_.trace_ctx(), cross_site);
  }
  if (!deliverable(from, to) || rng_.chance(cfg_.drop_prob)) {
    ++dropped_;
    ++dropped_by_kind_[static_cast<size_t>(kind)];
    return;
  }
  // Link faults degrade (but don't block — blackholes are handled inside
  // deliverable()) the surviving messages.  The rng draws below only happen
  // while a matching fault is active, so fault-free runs consume exactly the
  // same random stream as before the fault table existed.
  Duration extra = 0;
  bool duplicate = false;
  if (!link_faults_.empty()) {
    EffectiveFault f = effective_fault(sa, sb);
    if (f.keep_prob < 1.0 && !rng_.chance(f.keep_prob)) {
      ++dropped_;
      ++dropped_by_kind_[static_cast<size_t>(kind)];
      ++link_fault_drops_;
      return;
    }
    if (f.extra_delay_ms > 0.0) extra = ms_f(f.extra_delay_ms);
    if (f.dup_prob > 0.0 && rng_.chance(f.dup_prob)) duplicate = true;
  }
  Duration d = sample_delay(from, to, bytes) + extra;
  NodeId dest = to;
  if (duplicate) {
    // Both copies traverse the wire, but the endpoint continuations here are
    // single-shot (they fulfil RPC promises), i.e. the receiver dedups — so
    // the payload takes effect at whichever copy arrives first.  The
    // observable effect of duplication is early/reordered delivery plus the
    // wire-level accounting.
    ++duplicates_delivered_;
    Duration d2 = sample_delay(from, to, bytes) + extra;
    auto shared = std::make_shared<InlineFn>(std::move(deliver));
    auto once = [this, dest, kind, shared] {
      if (!*shared) return;                  // the other copy fired first
      InlineFn fn = std::move(*shared);      // consume: single-shot
      // The destination may have crashed while the message was in flight;
      // re-check on delivery.
      if (down_.at(static_cast<size_t>(dest))) {
        ++dropped_;
        ++dropped_by_kind_[static_cast<size_t>(kind)];
        return;
      }
      fn();
    };
    sim_.schedule(d, once);
    sim_.schedule(d2, once);
    return;
  }
  sim_.schedule(d, [this, dest, kind, deliver = std::move(deliver)]() mutable {
    // The destination may have crashed (or been partitioned away) while the
    // message was in flight; re-check on delivery.
    if (down_.at(static_cast<size_t>(dest))) {
      ++dropped_;
      ++dropped_by_kind_[static_cast<size_t>(kind)];
      return;
    }
    deliver();
  });
}

void Network::set_node_down(NodeId n, bool down) {
  down_.at(static_cast<size_t>(n)) = down;
}

PartitionId Network::partition_sites(std::set<int> a, std::set<int> b) {
  PartitionId id = next_fault_id_++;
  partitions_.push_back({id, std::move(a), std::move(b)});
  return id;
}

void Network::heal_partition(PartitionId id) {
  std::erase_if(partitions_,
                [id](const ActivePartition& p) { return p.id == id; });
}

void Network::heal_all_partitions() { partitions_.clear(); }

LinkFaultId Network::add_link_fault(int from_site, int to_site,
                                    LinkFault fault) {
  assert(from_site >= 0 && from_site < num_sites());
  assert(to_site >= 0 && to_site < num_sites());
  LinkFaultId id = next_fault_id_++;
  link_faults_.push_back({id, from_site, to_site, fault});
  return id;
}

void Network::remove_link_fault(LinkFaultId id) {
  std::erase_if(link_faults_,
                [id](const ActiveLinkFault& f) { return f.id == id; });
}

void Network::clear_link_faults() { link_faults_.clear(); }

Network::EffectiveFault Network::effective_fault(int from_site,
                                                 int to_site) const {
  EffectiveFault e;
  for (const ActiveLinkFault& f : link_faults_) {
    if (f.from_site != from_site || f.to_site != to_site) continue;
    if (f.fault.blackhole) e.blackhole = true;
    e.keep_prob *= 1.0 - f.fault.extra_drop;
    e.extra_delay_ms += f.fault.extra_delay_ms;
    e.dup_prob = std::max(e.dup_prob, f.fault.dup_prob);
  }
  return e;
}

void Network::export_metrics(obs::MetricsRegistry& reg) const {
  reg.set("net.msgs.sent", sent_);
  reg.set("net.msgs.dropped", dropped_);
  reg.set("net.msgs.wan", wan_sent_);
  reg.set("net.bytes.sent", bytes_sent_);
  if (link_fault_drops_ != 0) {
    reg.set("net.msgs.link_fault_drops", link_fault_drops_);
  }
  if (duplicates_delivered_ != 0) {
    reg.set("net.msgs.duplicates", duplicates_delivered_);
  }
  for (size_t k = 0; k < static_cast<size_t>(MsgKind::kCount); ++k) {
    if (sent_by_kind_[k] == 0 && dropped_by_kind_[k] == 0) continue;
    std::string base = "net.msgs.";
    base += to_string(static_cast<MsgKind>(k));
    reg.set(base, sent_by_kind_[k]);
    if (dropped_by_kind_[k] != 0) reg.set(base + ".dropped", dropped_by_kind_[k]);
  }
  int n = num_sites();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      size_t pi = pair_index(i, j);
      if (pair_sent_[pi] == 0) continue;
      std::string base = "net.pair.s" + std::to_string(i) + ".s" +
                         std::to_string(j);
      reg.set(base + ".msgs", pair_sent_[pi]);
      reg.set(base + ".bytes", pair_bytes_[pi]);
    }
  }
}

bool Network::deliverable(NodeId from, NodeId to) const {
  if (down_.at(static_cast<size_t>(from)) || down_.at(static_cast<size_t>(to))) {
    return false;
  }
  if (partitions_.empty() && link_faults_.empty()) return true;
  int sa = site_of(from);
  int sb = site_of(to);
  for (const ActivePartition& p : partitions_) {
    bool cross = (p.side_a.count(sa) && p.side_b.count(sb)) ||
                 (p.side_a.count(sb) && p.side_b.count(sa));
    if (cross) return false;
  }
  for (const ActiveLinkFault& f : link_faults_) {
    if (f.fault.blackhole && f.from_site == sa && f.to_site == sb) return false;
  }
  return true;
}

}  // namespace music::sim
