// The discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and a priority queue of events.  Events
// are arbitrary callbacks scheduled at a simulated time; ties are broken by
// insertion order so runs are deterministic.  All higher layers (network,
// servers, protocols, clients) are built on schedule()/now().
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace music::obs {
class Tracer;
}  // namespace music::obs

namespace music::sim {

class Simulation;

namespace detail {
/// The simulation currently executing an event (or starting a spawned
/// coroutine).  Task's final awaiter uses it to schedule continuation
/// resumption as a fresh event instead of resuming synchronously, which
/// keeps coroutine frames from being destroyed while still on the stack.
inline thread_local Simulation* tl_current_sim = nullptr;

/// RAII save/restore of tl_current_sim around an entry into coroutine code.
class CurrentSimScope {
 public:
  explicit CurrentSimScope(Simulation* s) : prev_(tl_current_sim) {
    tl_current_sim = s;
  }
  ~CurrentSimScope() { tl_current_sim = prev_; }
  CurrentSimScope(const CurrentSimScope&) = delete;
  CurrentSimScope& operator=(const CurrentSimScope&) = delete;

 private:
  Simulation* prev_;
};
}  // namespace detail

/// The simulation whose event is currently executing (null outside the
/// event loop and spawn()).
inline Simulation* current_simulation() { return detail::tl_current_sim; }

/// Discrete-event simulator: a virtual clock plus an ordered event queue.
///
/// Not thread-safe; an entire simulated cluster runs on one OS thread, which
/// is what makes runs deterministic and property tests reproducible.
class Simulation {
 public:
  /// Creates a simulation whose randomness derives from `seed`.
  explicit Simulation(uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` to run `delay` microseconds from now (delay < 0 is
  /// treated as 0).  Events scheduled for the same instant run in
  /// scheduling order.
  void schedule(Duration delay, std::function<void()> fn) {
    schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Schedules `fn` at absolute simulated time `t` (clamped to >= now).
  void schedule_at(Time t, std::function<void()> fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, next_seq_++, std::move(fn), trace_ctx_});
  }

  /// Runs a single event, if any; returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    // The queue's top is const; we move out of the handle after popping a
    // copy of the ordering key.  std::priority_queue lacks a non-const top,
    // so use the standard const_cast idiom on the function object only.
    Event& top = const_cast<Event&>(queue_.top());
    Time t = top.at;
    auto fn = std::move(top.fn);
    uint64_t ctx = top.ctx;
    queue_.pop();
    now_ = t;
    ++events_run_;
    // Restore the trace context that was active when this event was
    // scheduled, so span attribution follows the causal chain through
    // coroutine resumptions, future fulfilments and network deliveries.
    trace_ctx_ = ctx;
    ++run_depth_;
    detail::CurrentSimScope scope(this);
    fn();
    --run_depth_;
    if (run_depth_ == 0) trace_ctx_ = 0;
    return true;
  }

  /// Runs events until the queue is empty or `max_events` have run.
  /// Returns the number of events executed.
  size_t run_until_idle(size_t max_events = SIZE_MAX) {
    size_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  /// Runs all events with timestamp <= t, then advances the clock to t.
  void run_until(Time t) {
    while (!queue_.empty() && queue_.top().at <= t) step();
    if (now_ < t) now_ = t;
  }

  /// Runs the simulation forward by `d` microseconds of virtual time.
  void run_for(Duration d) { run_until(now_ + d); }

  /// True when no events are pending.
  bool idle() const { return queue_.empty(); }

  /// Number of pending events (diagnostics).
  size_t pending() const { return queue_.size(); }

  /// Total events executed so far (diagnostics).
  uint64_t events_run() const { return events_run_; }

  /// The simulation's root random stream.
  Rng& rng() { return rng_; }

  /// Observability hooks.  A tracer (obs::Tracer) may be attached for the
  /// run; null (the default) disables tracing entirely — instrumented code
  /// checks tracer() first, so the disabled hot path is two loads and a
  /// branch with no allocations and no extra events.
  void set_tracer(obs::Tracer* t) { tracer_ = t; }
  obs::Tracer* tracer() const { return tracer_; }

  /// The trace span currently attributed with work (an obs::SpanId; 0 means
  /// none).  Every scheduled event captures the context active at schedule
  /// time and restores it when it runs, so the context rides the causal
  /// chain for free.  sim::OpSpan (sim/span.h) is the usual way to set it.
  uint64_t trace_ctx() const { return trace_ctx_; }
  void set_trace_ctx(uint64_t ctx) { trace_ctx_ = ctx; }

 private:
  struct Event {
    Time at;
    uint64_t seq;
    std::function<void()> fn;
    uint64_t ctx;  // trace context captured at schedule time
    // Min-heap on (at, seq): strict weak order, deterministic tie-break.
    bool operator<(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_run_ = 0;
  std::priority_queue<Event> queue_;
  Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  uint64_t trace_ctx_ = 0;
  int run_depth_ = 0;
};

}  // namespace music::sim
