// The discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and an ordered event queue.  Events are
// arbitrary callbacks scheduled at a simulated time; ties are broken by
// insertion order so runs are deterministic.  All higher layers (network,
// servers, protocols, clients) are built on schedule()/now().
//
// Fast path: payloads (an InlineFn — no heap allocation for typical
// captures — plus the trace context) live in a pooled, chunked arena whose
// slots are recycled through a freelist and never move, so events execute
// in place with zero per-event allocation.  Ordering is a hybrid of two
// structures:
//
//  - a timer wheel of kWheelTicks one-microsecond FIFO buckets for events
//    within the near window [now, now + kWheelTicks) — O(1) schedule and
//    O(1) pop for immediate continuations, RPC deliveries and short
//    timers, which dominate real workloads;
//  - an intrusive 8-ary min-heap of 24-byte (at, seq, slot) entries for
//    events beyond the window (coarse timeouts, heartbeats), compared
//    against the wheel head on every pop.
//
// Both structures order by the same (at, seq) key — bucket FIFO order IS
// seq order for equal timestamps — so execution order is exactly the
// (at, seq) order of the previous std::priority_queue<std::function>
// kernel and seeded runs are bit-identical, while removing the per-event
// allocation, the const_cast move-out-of-top idiom, and the O(log n)
// comparison cascade on the hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace music::obs {
class Tracer;
}  // namespace music::obs

namespace music::sim {

class Simulation;

namespace detail {
/// The simulation currently executing an event (or starting a spawned
/// coroutine).  Task's final awaiter uses it to schedule continuation
/// resumption as a fresh event instead of resuming synchronously, which
/// keeps coroutine frames from being destroyed while still on the stack.
inline thread_local Simulation* tl_current_sim = nullptr;

/// RAII save/restore of tl_current_sim around an entry into coroutine code.
class CurrentSimScope {
 public:
  explicit CurrentSimScope(Simulation* s) : prev_(tl_current_sim) {
    tl_current_sim = s;
  }
  ~CurrentSimScope() { tl_current_sim = prev_; }
  CurrentSimScope(const CurrentSimScope&) = delete;
  CurrentSimScope& operator=(const CurrentSimScope&) = delete;

 private:
  Simulation* prev_;
};
}  // namespace detail

/// The simulation whose event is currently executing (null outside the
/// event loop and spawn()).
inline Simulation* current_simulation() { return detail::tl_current_sim; }

/// Discrete-event simulator: a virtual clock plus an ordered event queue.
///
/// Not thread-safe; an entire simulated cluster runs on one OS thread, which
/// is what makes runs deterministic and property tests reproducible
/// (par::run_worlds scales out by running independent Simulations on
/// separate threads, never by sharing one).
class Simulation {
 public:
  /// Creates a simulation whose randomness derives from `seed`.
  explicit Simulation(uint64_t seed = 1) : wheel_(kWheelTicks), rng_(seed) {
    heap_.reserve(kInitialCapacity);
    chunks_.reserve(kInitialCapacity / kChunkSlots);
  }

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` to run `delay` microseconds from now (delay < 0 is
  /// treated as 0).  Events scheduled for the same instant run in
  /// scheduling order.
  void schedule(Duration delay, InlineFn fn) {
    schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Schedules `fn` at absolute simulated time `t` (clamped to >= now).
  void schedule_at(Time t, InlineFn fn) {
    if (t < now_) t = now_;
    uint32_t slot = acquire_slot();
    EventSlot& s = slot_ref(slot);
    s.fn = std::move(fn);
    s.ctx = trace_ctx_;
    enqueue(t, slot, s);
  }

  /// Lambda overloads: the callable is constructed directly in its arena
  /// slot, skipping the move through a temporary InlineFn.  Call sites that
  /// pass a raw lambda (the common case) bind here; an InlineFn argument
  /// still takes the overloads above.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  void schedule(Duration delay, F&& f) {
    schedule_at(now_ + (delay > 0 ? delay : 0), std::forward<F>(f));
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  void schedule_at(Time t, F&& f) {
    if (t < now_) t = now_;
    uint32_t slot = acquire_slot();
    EventSlot& s = slot_ref(slot);
    s.fn.emplace(std::forward<F>(f));
    s.ctx = trace_ctx_;
    enqueue(t, slot, s);
  }

  /// Runs a single event, if any; returns false when the queue is empty.
  /// The event is removed from its queue (wheel bucket or far heap) BEFORE
  /// the callback runs (so it is never re-compared), but the payload
  /// executes in place in its arena slot: chunks never move, and the slot
  /// joins the freelist only after the callback returns, so rescheduling
  /// from inside the callback can never overwrite it.
  bool step() {
    uint32_t slot = pop_next_slot();
    if (slot == kNoSlot) return false;
    EventSlot& s = slot_ref(slot);
    now_ = s.at;
    ++events_run_;
    // Restore the trace context that was active when this event was
    // scheduled, so span attribution follows the causal chain through
    // coroutine resumptions, future fulfilments and network deliveries.
    trace_ctx_ = s.ctx;
    ++run_depth_;
    {
      detail::CurrentSimScope scope(this);
      s.fn();
    }
    s.fn.reset();
    release_slot(slot);
    --run_depth_;
    if (run_depth_ == 0) trace_ctx_ = 0;
    return true;
  }

  /// Runs events until the queue is empty or `max_events` have run.
  /// Returns the number of events executed.
  size_t run_until_idle(size_t max_events = SIZE_MAX) {
    size_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  /// Runs all events with timestamp <= t — including events scheduled by
  /// those events for times <= t — then advances the clock to t.
  void run_until(Time t) {
    while (!idle() && next_event_at() <= t) step();
    if (now_ < t) now_ = t;
  }

  /// Runs the simulation forward by `d` microseconds of virtual time.
  void run_for(Duration d) { run_until(now_ + d); }

  /// True when no events are pending.
  bool idle() const { return wheel_count_ == 0 && heap_.empty(); }

  /// Timestamp of the next pending event, or kTimeNever when idle.  Lets a
  /// real-time host (the TCP backend's event loop) sleep in epoll exactly
  /// until the simulation's next timer instead of polling.
  Time peek_next_event_at() {
    return idle() ? kTimeNever : next_event_at();
  }

  /// Number of pending events (diagnostics).
  size_t pending() const { return wheel_count_ + heap_.size(); }

  /// Total events executed so far (diagnostics).
  uint64_t events_run() const { return events_run_; }

  /// The simulation's root random stream.
  Rng& rng() { return rng_; }

  /// Observability hooks.  A tracer (obs::Tracer) may be attached for the
  /// run; null (the default) disables tracing entirely — instrumented code
  /// checks tracer() first, so the disabled hot path is two loads and a
  /// branch with no allocations and no extra events.
  void set_tracer(obs::Tracer* t) { tracer_ = t; }
  obs::Tracer* tracer() const { return tracer_; }

  /// The trace span currently attributed with work (an obs::SpanId; 0 means
  /// none).  Every scheduled event captures the context active at schedule
  /// time and restores it when it runs, so the context rides the causal
  /// chain for free.  sim::OpSpan (sim/span.h) is the usual way to set it.
  uint64_t trace_ctx() const { return trace_ctx_; }
  void set_trace_ctx(uint64_t ctx) { trace_ctx_ = ctx; }

 private:
  /// Heap order key + arena index.  24 bytes: sifting touches only these.
  struct HeapEntry {
    Time at;
    uint64_t seq;
    uint32_t slot;
  };

  /// Pooled event payload.  `next` threads the slot through whichever list
  /// currently owns it: a wheel bucket's FIFO while queued, the freelist
  /// while vacant (fn is empty then).
  struct EventSlot {
    InlineFn fn;
    Time at = 0;
    uint64_t seq = 0;
    uint64_t ctx = 0;
    uint32_t next = kNoSlot;
  };

  static constexpr uint32_t kNoSlot = UINT32_MAX;
  static constexpr size_t kArity = 8;
  static constexpr size_t kInitialCapacity = 256;
  /// Near-window size in ticks (µs).  Events within [now, now+kWheelTicks)
  /// go to the wheel; later ones to the far heap.  2048 µs covers delay-0
  /// continuations, service/disk completions and LAN-scale delivery delays.
  static constexpr uint32_t kWheelTicks = 2048;
  static constexpr uint32_t kWheelMask = kWheelTicks - 1;
  static constexpr uint32_t kWheelWords = kWheelTicks / 64;

  /// One wheel tick: FIFO list of slots, appended at tail — within a tick,
  /// append order is seq order, which is what keeps runs bit-identical.
  struct Bucket {
    uint32_t head = kNoSlot;
    uint32_t tail = kNoSlot;
  };
  /// Arena chunk size (slots).  Chunks are never moved or freed until the
  /// simulation dies, which is what makes in-place execution in step() safe
  /// while other callbacks schedule (and grow the arena) concurrently.
  static constexpr uint32_t kChunkShift = 8;
  static constexpr uint32_t kChunkSlots = 1u << kChunkShift;

  EventSlot& slot_ref(uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSlots - 1)];
  }

  /// Min-heap on (at, seq): strict weak order, deterministic tie-break —
  /// identical to the previous kernel's ordering.
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    // Deliberately the branchy short-circuit form: measured against both a
    // branch-free |/& variant and a packed __int128 key compare, this is
    // the fastest — speculation across the half-predictable `at` branch
    // beats the longer cmov dependency chains in the sift-down scan.
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }

  uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      uint32_t slot = free_head_;
      free_head_ = slot_ref(slot).next;
      return slot;
    }
    if ((slot_count_ & (kChunkSlots - 1)) == 0) {
      chunks_.emplace_back(new EventSlot[kChunkSlots]);
    }
    return slot_count_++;
  }

  void release_slot(uint32_t slot) {
    slot_ref(slot).next = free_head_;
    free_head_ = slot;
  }

  /// Queues a filled slot at time t (slot's fn/ctx already set).
  void enqueue(Time t, uint32_t slot, EventSlot& s) {
    s.at = t;
    s.seq = next_seq_++;
    if (t - now_ < static_cast<Time>(kWheelTicks)) {
      s.next = kNoSlot;
      uint32_t b = static_cast<uint32_t>(t) & kWheelMask;
      Bucket& bk = wheel_[b];
      if (bk.tail == kNoSlot) {
        bk.head = bk.tail = slot;
        occ_[b >> 6] |= 1ull << (b & 63);
      } else {
        slot_ref(bk.tail).next = slot;
        bk.tail = slot;
      }
      ++wheel_count_;
    } else {
      heap_.push_back(HeapEntry{t, s.seq, slot});
      sift_up(heap_.size() - 1);
    }
  }

  /// Index of the first non-empty bucket at or after now_ (caller must
  /// ensure wheel_count_ > 0).  Every queued wheel event is within
  /// kWheelTicks of now_, so a circular scan from now_'s tick finds it
  /// before wrapping around.
  uint32_t find_next_bucket() const {
    uint32_t start = static_cast<uint32_t>(now_) & kWheelMask;
    uint32_t w = start >> 6;
    uint64_t word = occ_[w] & (~0ull << (start & 63));
    while (word == 0) {
      w = (w + 1) & (kWheelWords - 1);
      word = occ_[w];
    }
    return (w << 6) + static_cast<uint32_t>(__builtin_ctzll(word));
  }

  /// Removes and returns the next slot in (at, seq) order across both the
  /// wheel and the far heap; kNoSlot when nothing is pending.
  uint32_t pop_next_slot() {
    if (wheel_count_ == 0) {
      if (heap_.empty()) return kNoSlot;
      uint32_t slot = heap_.front().slot;
      pop_root();
      return slot;
    }
    uint32_t tick = find_next_bucket();
    Bucket& bk = wheel_[tick];
    uint32_t wslot = bk.head;
    EventSlot& ws = slot_ref(wslot);
    if (!heap_.empty()) {
      const HeapEntry& f = heap_.front();
      // A far event can precede the wheel head when the clock has advanced
      // to within a window of it; equal timestamps fall back to seq.
      if (f.at < ws.at || (f.at == ws.at && f.seq < ws.seq)) {
        uint32_t slot = f.slot;
        pop_root();
        return slot;
      }
    }
    bk.head = ws.next;
    if (bk.head == kNoSlot) {
      bk.tail = kNoSlot;
      occ_[tick >> 6] &= ~(1ull << (tick & 63));
    }
    --wheel_count_;
    return wslot;
  }

  /// Timestamp of the next pending event (caller must check !idle()).
  Time next_event_at() {
    Time t = heap_.empty() ? INT64_MAX : heap_.front().at;
    if (wheel_count_ != 0) {
      Time w = slot_ref(wheel_[find_next_bucket()].head).at;
      if (w < t) t = w;
    }
    return t;
  }

  void sift_up(size_t i) {
    HeapEntry e = heap_[i];
    while (i > 0) {
      size_t parent = (i - 1) / kArity;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Removes the root: moves the last entry into the hole and sifts down.
  void pop_root() {
    HeapEntry last = heap_.back();
    heap_.pop_back();
    size_t n = heap_.size();
    if (n == 0) return;
    size_t i = 0;
    while (true) {
      size_t child = i * kArity + 1;
      if (child >= n) break;
      size_t best = child;
      size_t end = child + kArity < n ? child + kArity : n;
      for (size_t c = child + 1; c < end; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_run_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Bucket> wheel_;
  uint64_t occ_[kWheelWords] = {};
  size_t wheel_count_ = 0;
  std::vector<std::unique_ptr<EventSlot[]>> chunks_;
  uint32_t slot_count_ = 0;
  uint32_t free_head_ = kNoSlot;
  Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  uint64_t trace_ctx_ = 0;
  int run_depth_ = 0;
};

}  // namespace music::sim
