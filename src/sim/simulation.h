// The discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and an ordered event queue.  Events are
// arbitrary callbacks scheduled at a simulated time; ties are broken by
// insertion order so runs are deterministic.  All higher layers (network,
// servers, protocols, clients) are built on schedule()/now().
//
// Fast path: payloads (an InlineFn — no heap allocation for typical
// captures — plus the trace context) live in a pooled, chunked arena whose
// slots are recycled through a freelist and never move, so events execute
// in place with zero per-event allocation.  Ordering is a hybrid of two
// structures:
//
//  - a timer wheel of kWheelTicks one-microsecond FIFO buckets for events
//    within the near window [now, now + kWheelTicks) — O(1) schedule and
//    O(1) pop for immediate continuations, RPC deliveries and short
//    timers, which dominate real workloads;
//  - an intrusive 8-ary min-heap of 24-byte (at, seq, slot) entries for
//    events beyond the window (coarse timeouts, heartbeats), compared
//    against the wheel head on every pop.
//
// Both structures order by the same (at, seq) key — bucket FIFO order IS
// seq order for equal timestamps — so execution order is exactly the
// (at, seq) order of the previous std::priority_queue<std::function>
// kernel and seeded runs are bit-identical, while removing the per-event
// allocation, the const_cast move-out-of-top idiom, and the O(log n)
// comparison cascade on the hot path.
//
// Conservative PDES (opt-in, enable_pdes): the event space is partitioned
// into per-site lanes — each lane a full wheel + far-heap + arena kernel of
// its own — plus the main lane (lane of record for setup, workload drivers
// and nemesis faults).  Lanes run in parallel on a par::Pool inside
// lookahead windows [T, B): B = min(T + L, next main-lane event, target),
// where the lookahead L is a lower bound on every cross-site delivery
// delay (Network::conservative_lookahead).  A cross-lane send at u in
// [T, B) arrives at u + delay >= u + L >= B, i.e. never inside the window
// being executed, so lanes cannot affect each other mid-window; such sends
// are buffered in per-lane outboxes and merged at the barrier with a
// deterministic rule (gather in lane order, stable-sort by timestamp,
// enqueue assigning destination-lane seq).  Main-lane events run alone
// between windows, after every site lane has drained up to their
// timestamp — ties go to the main lane.  Because lane assignment, window
// boundaries and the merge rule depend only on event content (never on
// which worker ran a lane), results are bit-identical at any worker count.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "par/par.h"
#include "sim/inline_fn.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace music::obs {
class Tracer;
}  // namespace music::obs

namespace music::sim {

class Simulation;

namespace detail {
/// The simulation (and event lane, under PDES) currently executing an
/// event or starting a spawned coroutine.  Task's final awaiter uses the
/// simulation to schedule continuation resumption as a fresh event instead
/// of resuming synchronously; schedule()/now()/rng() route through the
/// lane, so model code transparently stays on the lane that resumed it.
struct ExecCtx {
  Simulation* sim = nullptr;
  void* lane = nullptr;
};
inline thread_local ExecCtx tl_exec;

/// RAII save/restore of the execution context around an entry into
/// coroutine/model code.
class CurrentSimScope {
 public:
  /// Enters `s` on its main lane — unless the current thread is already
  /// executing inside `s`, in which case the current lane is preserved
  /// (spawn() from a site-lane event must keep the new task on that lane).
  explicit CurrentSimScope(Simulation* s);

  /// Enters `s` on a specific lane (kernel-internal).
  CurrentSimScope(Simulation* s, void* lane) : prev_(tl_exec) {
    tl_exec.sim = s;
    tl_exec.lane = lane;
  }

  ~CurrentSimScope() { tl_exec = prev_; }
  CurrentSimScope(const CurrentSimScope&) = delete;
  CurrentSimScope& operator=(const CurrentSimScope&) = delete;

 private:
  ExecCtx prev_;
};
}  // namespace detail

/// The simulation whose event is currently executing (null outside the
/// event loop and spawn()).
inline Simulation* current_simulation() { return detail::tl_exec.sim; }

/// Discrete-event simulator: a virtual clock plus an ordered event queue.
///
/// Classic mode is strictly single-threaded: an entire simulated cluster
/// runs on one OS thread, which is what makes runs deterministic and
/// property tests reproducible (par::run_worlds scales out by running
/// independent Simulations on separate threads, never by sharing one).
/// enable_pdes() additionally parallelizes WITHIN one world across per-site
/// event lanes — still deterministic, but under a different (documented)
/// merge order than classic mode, so PDES worlds pin their own goldens.
class Simulation {
 public:
  /// Creates a simulation whose randomness derives from `seed`.
  explicit Simulation(uint64_t seed = 1) { main_.rng_ = Rng(seed); }

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Near-window size in ticks (µs).  Events within [now, now+kWheelTicks)
  /// go to the timer wheel; later ones to the far heap.  2048 µs covers
  /// delay-0 continuations, service/disk completions and LAN-scale delivery
  /// delays.  Public so boundary regression tests can aim events exactly at
  /// the wheel/heap frontier.
  static constexpr uint32_t kWheelTicks = 2048;

  // -------------------------------------------------------------------
  // Conservative PDES.

  struct PdesOptions {
    /// Number of site lanes (one per LatencyProfile site), >= 1.
    int sites = 0;
    /// Total worker threads for window execution including the caller
    /// (0 = par::default_threads()).  Does not affect results.
    size_t workers = 0;
    /// Conservative lookahead in µs (>= 1): a lower bound on every
    /// cross-site delivery delay.  Network::conservative_lookahead()
    /// derives it from the active LatencyProfile.
    Duration lookahead = 0;
  };

  /// Switches this world to conservative PDES.  Call once, before the
  /// first run_until(); typically right after constructing the Simulation
  /// (events already queued stay on the main lane and run at barriers).
  /// Tracing is unsupported under PDES (a tracer records global execution
  /// order, which parallel lanes do not have).
  void enable_pdes(const PdesOptions& opt) {
    assert(site_lanes_.empty() && "enable_pdes may only be called once");
    assert(opt.sites >= 1);
    assert(opt.lookahead >= 1);
    assert(tracer_ == nullptr && "tracing is unsupported under PDES");
    lookahead_ = opt.lookahead;
    site_lanes_.reserve(static_cast<size_t>(opt.sites));
    for (int s = 0; s < opt.sites; ++s) {
      auto lane = std::make_unique<Lane>();
      lane->now_ = main_.now_;
      // Per-lane random streams, forked deterministically from the root so
      // model code drawing from rng() on a lane never races or perturbs
      // another lane's stream.
      lane->rng_ = main_.rng_.fork(0x70646573ull + static_cast<uint64_t>(s));
      site_lanes_.push_back(std::move(lane));
    }
    size_t w = opt.workers == 0 ? par::default_threads() : opt.workers;
    if (w < 1) w = 1;
    workers_ = std::min(w, site_lanes_.size());
    if (workers_ > 1) {
      pool_ = std::make_unique<par::Pool>(workers_ - 1);
      drain_fn_ = [this](size_t i) { drain_lane(*site_lanes_[i]); };
    }
  }

  bool pdes() const { return !site_lanes_.empty(); }
  int pdes_sites() const { return static_cast<int>(site_lanes_.size()); }
  size_t pdes_workers() const { return workers_; }
  Duration pdes_lookahead() const { return lookahead_; }
  /// Lookahead windows executed so far (diagnostics).
  uint64_t pdes_windows_run() const { return windows_run_; }

  /// Current simulated time: the executing lane's clock (the main-lane
  /// clock outside the event loop; identical to classic behaviour when
  /// PDES is off).
  Time now() const { return exec_lane().now_; }

  /// Schedules `fn` to run `delay` microseconds from now (delay < 0 is
  /// treated as 0) on the current lane.  Events scheduled for the same
  /// instant run in scheduling order.
  void schedule(Duration delay, InlineFn fn) {
    Lane& L = exec_lane();
    schedule_lane_at(L, L.now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Schedules `fn` at absolute simulated time `t` (clamped to >= now).
  void schedule_at(Time t, InlineFn fn) {
    schedule_lane_at(exec_lane(), t, std::move(fn));
  }

  /// Lambda overloads: the callable is constructed directly in its arena
  /// slot, skipping the move through a temporary InlineFn.  Call sites that
  /// pass a raw lambda (the common case) bind here; an InlineFn argument
  /// still takes the overloads above.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  void schedule(Duration delay, F&& f) {
    Lane& L = exec_lane();
    schedule_lane_at_emplace(L, L.now_ + (delay > 0 ? delay : 0),
                             std::forward<F>(f));
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  void schedule_at(Time t, F&& f) {
    schedule_lane_at_emplace(exec_lane(), t, std::forward<F>(f));
  }

  /// Schedules `fn` at absolute time `t` on site `site`'s lane (PDES only).
  /// From another lane inside a window this buffers the event in the
  /// sender's outbox — `t` must then be at or beyond the window end, which
  /// the lookahead bound guarantees for network deliveries; between
  /// windows (main-lane events, setup code, barrier callbacks) it enqueues
  /// directly.
  void schedule_site_at(int site, Time t, InlineFn fn) {
    Lane& dest = *site_lanes_[static_cast<size_t>(site)];
    Lane& cur = exec_lane();
    if (in_window_ && &cur != &dest) {
      assert(t >= window_end_ &&
             "cross-lane event would land inside the executing window; "
             "lookahead is not a lower bound on this delivery delay");
      cur.outbox_.push_back(Mail{t, site, cur.trace_ctx_, std::move(fn)});
      return;
    }
    if (t < dest.now_) t = dest.now_;
    uint32_t slot = dest.acquire_slot();
    EventSlot& s = dest.slot_ref(slot);
    s.fn = std::move(fn);
    s.ctx = cur.trace_ctx_;
    dest.enqueue(t, slot, s);
  }

  /// Schedules `fn` at absolute time `t` on the MAIN lane.  Main-lane
  /// events run alone between windows, so this is the PDES-safe way for
  /// model code to mutate shared state that concurrent site lanes read
  /// (shard maps, fault flags): hop the mutation to the main lane and every
  /// site lane observes it through the window barrier.  From a site lane
  /// inside a window the event is buffered as outbox mail with `t` clamped
  /// to the window end — the earliest instant that is still deterministic;
  /// elsewhere (classic mode, setup code, main-lane events) it enqueues
  /// directly, exactly like schedule_at on the main lane.
  void schedule_main_at(Time t, InlineFn fn) {
    Lane& cur = exec_lane();
    if (in_window_ && &cur != &main_) {
      if (t < window_end_) t = window_end_;
      cur.outbox_.push_back(Mail{t, kMainLane, cur.trace_ctx_, std::move(fn)});
      return;
    }
    schedule_lane_at(main_, t, std::move(fn));
  }

  /// True when the calling context executes on the main lane (always true
  /// in classic mode; false only inside a site-lane event under PDES).
  bool on_main_lane() const { return &exec_lane() == &main_; }

  /// Runs a single event, if any; returns false when the queue is empty.
  /// The event is removed from its queue (wheel bucket or far heap) BEFORE
  /// the callback runs (so it is never re-compared), but the payload
  /// executes in place in its arena slot: chunks never move, and the slot
  /// joins the freelist only after the callback returns, so rescheduling
  /// from inside the callback can never overwrite it.  Classic mode only —
  /// PDES worlds have no single "next event" (use run_until/run_for).
  bool step() {
    assert(!pdes());
    uint32_t slot = main_.pop_next_slot();
    if (slot == kNoSlot) return false;
    run_slot(main_, slot);
    return true;
  }

  /// Runs events until the queue is empty or `max_events` have run.
  /// Returns the number of events executed.  Under PDES, max_events is
  /// unsupported (windows run whole) and must be left defaulted.
  size_t run_until_idle(size_t max_events = SIZE_MAX) {
    if (pdes()) {
      assert(max_events == SIZE_MAX);
      uint64_t before = events_run();
      while (!idle()) run_until_pdes(kTimeNever);
      return static_cast<size_t>(events_run() - before);
    }
    size_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  /// Runs all events with timestamp <= t — including events scheduled by
  /// those events for times <= t — then advances the clock to t.
  void run_until(Time t) {
    if (pdes()) {
      run_until_pdes(t);
      return;
    }
    while (!main_.idle() && main_.next_event_at() <= t) step();
    if (main_.now_ < t) main_.advance_clock(t);
  }

  /// Runs the simulation forward by `d` microseconds of virtual time.
  void run_for(Duration d) { run_until(now() + d); }

  /// True when no events are pending.
  bool idle() const {
    if (!main_.idle()) return false;
    for (const auto& L : site_lanes_) {
      if (!L->idle()) return false;
    }
    return true;
  }

  /// Timestamp of the next pending event, or kTimeNever when idle.  Lets a
  /// real-time host (the TCP backend's event loop) sleep in epoll exactly
  /// until the simulation's next timer instead of polling.
  Time peek_next_event_at() {
    Time t = main_.idle() ? kTimeNever : main_.next_event_at();
    for (auto& L : site_lanes_) {
      if (!L->idle()) t = std::min(t, L->next_event_at());
    }
    return t;
  }

  /// Number of pending events (diagnostics).
  size_t pending() const {
    size_t n = main_.pending();
    for (const auto& L : site_lanes_) n += L->pending();
    return n;
  }

  /// Total events executed so far (diagnostics), summed across lanes.
  uint64_t events_run() const {
    uint64_t n = main_.events_run_;
    for (const auto& L : site_lanes_) n += L->events_run_;
    return n;
  }

  /// The current lane's random stream (the root stream in classic mode and
  /// on the main lane; a deterministic per-site fork on site lanes).
  Rng& rng() { return exec_lane().rng_; }

  /// Observability hooks.  A tracer (obs::Tracer) may be attached for the
  /// run; null (the default) disables tracing entirely — instrumented code
  /// checks tracer() first, so the disabled hot path is two loads and a
  /// branch with no allocations and no extra events.  Unsupported under
  /// PDES (traces record a global execution order).
  void set_tracer(obs::Tracer* t) {
    assert(t == nullptr || !pdes());
    tracer_ = t;
  }
  obs::Tracer* tracer() const { return tracer_; }

  /// The trace span currently attributed with work (an obs::SpanId; 0 means
  /// none).  Every scheduled event captures the context active at schedule
  /// time and restores it when it runs, so the context rides the causal
  /// chain for free.  sim::OpSpan (sim/span.h) is the usual way to set it.
  uint64_t trace_ctx() const { return exec_lane().trace_ctx_; }
  void set_trace_ctx(uint64_t ctx) { exec_lane().trace_ctx_ = ctx; }

 private:
  friend class detail::CurrentSimScope;

  /// Heap order key + arena index.  24 bytes: sifting touches only these.
  struct HeapEntry {
    Time at;
    uint64_t seq;
    uint32_t slot;
  };

  /// Pooled event payload.  `next` threads the slot through whichever list
  /// currently owns it: a wheel bucket's FIFO while queued, the freelist
  /// while vacant (fn is empty then).
  struct EventSlot {
    InlineFn fn;
    Time at = 0;
    uint64_t seq = 0;
    uint64_t ctx = 0;
    uint32_t next = kNoSlot;
  };

  /// A cross-lane event buffered during a window, merged at the barrier.
  /// `site` is the destination lane index, or kMainLane for the main lane
  /// (schedule_main_at from inside a window).
  struct Mail {
    Time at;
    int site;
    uint64_t ctx;
    InlineFn fn;
  };

  static constexpr int kMainLane = -1;

  static constexpr uint32_t kNoSlot = UINT32_MAX;
  static constexpr uint32_t kNoTick = UINT32_MAX;
  static constexpr size_t kArity = 8;
  static constexpr size_t kInitialCapacity = 256;
  static constexpr uint32_t kWheelMask = kWheelTicks - 1;
  static constexpr uint32_t kWheelWords = kWheelTicks / 64;

  /// One wheel tick: FIFO list of slots, appended at tail — within a tick,
  /// append order is seq order, which is what keeps runs bit-identical.
  struct Bucket {
    uint32_t head = kNoSlot;
    uint32_t tail = kNoSlot;
  };
  /// Arena chunk size (slots).  Chunks are never moved or freed until the
  /// simulation dies, which is what makes in-place execution in step() safe
  /// while other callbacks schedule (and grow the arena) concurrently.
  static constexpr uint32_t kChunkShift = 8;
  static constexpr uint32_t kChunkSlots = 1u << kChunkShift;

  /// Min-heap on (at, seq): strict weak order, deterministic tie-break —
  /// identical to the previous kernel's ordering.
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    // Deliberately the branchy short-circuit form: measured against both a
    // branch-free |/& variant and a packed __int128 key compare, this is
    // the fastest — speculation across the half-predictable `at` branch
    // beats the longer cmov dependency chains in the sift-down scan.
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }

  /// One event lane: a complete wheel + far-heap + arena kernel with its
  /// own clock, seq counter and random stream.  Classic mode uses exactly
  /// one (the main lane); PDES adds one per site.  A lane is only ever
  /// touched by one thread at a time — the window scheduler hands each
  /// lane to one worker per window, and the par::Pool barrier publishes
  /// all lane state between windows.
  struct Lane {
    Time now_ = 0;
    uint64_t next_seq_ = 0;
    uint64_t events_run_ = 0;
    std::vector<HeapEntry> heap_;
    std::vector<Bucket> wheel_;
    uint64_t occ_[kWheelWords] = {};
    size_t wheel_count_ = 0;
    std::vector<std::unique_ptr<EventSlot[]>> chunks_;
    uint32_t slot_count_ = 0;
    uint32_t free_head_ = kNoSlot;
    Rng rng_{0};
    uint64_t trace_ctx_ = 0;
    int run_depth_ = 0;
    /// Memoised find_next_bucket() result (kNoTick = unknown): run_until
    /// would otherwise scan the occupancy bitmap twice per event — once in
    /// next_event_at() to test against the horizon and again in the
    /// pop_next_slot() that immediately follows.  Invalidated on wheel
    /// enqueue (an earlier bucket may have filled), on emptying the cached
    /// bucket, and on clock movement (the scan origin changes).
    uint32_t cached_tick_ = kNoTick;
    std::vector<Mail> outbox_;

    Lane() : wheel_(kWheelTicks) {
      heap_.reserve(kInitialCapacity);
      chunks_.reserve(kInitialCapacity / kChunkSlots);
    }

    EventSlot& slot_ref(uint32_t slot) {
      return chunks_[slot >> kChunkShift][slot & (kChunkSlots - 1)];
    }

    bool idle() const { return wheel_count_ == 0 && heap_.empty(); }
    size_t pending() const { return wheel_count_ + heap_.size(); }

    void advance_clock(Time t) {
      if (now_ != t) {
        now_ = t;
        cached_tick_ = kNoTick;
      }
    }

    uint32_t acquire_slot() {
      if (free_head_ != kNoSlot) {
        uint32_t slot = free_head_;
        free_head_ = slot_ref(slot).next;
        return slot;
      }
      if ((slot_count_ & (kChunkSlots - 1)) == 0) {
        chunks_.emplace_back(new EventSlot[kChunkSlots]);
      }
      return slot_count_++;
    }

    void release_slot(uint32_t slot) {
      slot_ref(slot).next = free_head_;
      free_head_ = slot;
    }

    /// Queues a filled slot at time t (slot's fn/ctx already set).
    void enqueue(Time t, uint32_t slot, EventSlot& s) {
      s.at = t;
      s.seq = next_seq_++;
      if (t - now_ < static_cast<Time>(kWheelTicks)) {
        s.next = kNoSlot;
        uint32_t b = static_cast<uint32_t>(t) & kWheelMask;
        Bucket& bk = wheel_[b];
        if (bk.tail == kNoSlot) {
          bk.head = bk.tail = slot;
          occ_[b >> 6] |= 1ull << (b & 63);
        } else {
          slot_ref(bk.tail).next = slot;
          bk.tail = slot;
        }
        ++wheel_count_;
        cached_tick_ = kNoTick;
      } else {
        heap_.push_back(HeapEntry{t, s.seq, slot});
        sift_up(heap_.size() - 1);
      }
    }

    /// Index of the first non-empty bucket at or after now_ (caller must
    /// ensure wheel_count_ > 0).  Every queued wheel event is within
    /// kWheelTicks of now_, so a circular scan from now_'s tick finds it
    /// before wrapping around.  Memoised in cached_tick_.
    uint32_t find_next_bucket() {
      if (cached_tick_ != kNoTick) return cached_tick_;
      uint32_t start = static_cast<uint32_t>(now_) & kWheelMask;
      uint32_t w = start >> 6;
      uint64_t word = occ_[w] & (~0ull << (start & 63));
      while (word == 0) {
        w = (w + 1) & (kWheelWords - 1);
        word = occ_[w];
      }
      cached_tick_ = (w << 6) + static_cast<uint32_t>(__builtin_ctzll(word));
      return cached_tick_;
    }

    /// Removes and returns the next slot in (at, seq) order across both the
    /// wheel and the far heap; kNoSlot when nothing is pending.
    uint32_t pop_next_slot() {
      if (wheel_count_ == 0) {
        if (heap_.empty()) return kNoSlot;
        uint32_t slot = heap_.front().slot;
        pop_root();
        return slot;
      }
      uint32_t tick = find_next_bucket();
      Bucket& bk = wheel_[tick];
      uint32_t wslot = bk.head;
      EventSlot& ws = slot_ref(wslot);
      if (!heap_.empty()) {
        const HeapEntry& f = heap_.front();
        // A far event can precede the wheel head when the clock has
        // advanced to within a window of it; equal timestamps fall back to
        // seq.
        if (f.at < ws.at || (f.at == ws.at && f.seq < ws.seq)) {
          uint32_t slot = f.slot;
          pop_root();
          return slot;
        }
      }
      bk.head = ws.next;
      if (bk.head == kNoSlot) {
        bk.tail = kNoSlot;
        occ_[tick >> 6] &= ~(1ull << (tick & 63));
        cached_tick_ = kNoTick;
      }
      --wheel_count_;
      return wslot;
    }

    /// pop_next_slot(), but only if the next event is strictly before
    /// `bound` — the per-window drain primitive.  The bucket scan done by
    /// the bound check is reused by the pop through cached_tick_.
    uint32_t pop_next_slot_below(Time bound) {
      if (idle() || next_event_at() >= bound) return kNoSlot;
      return pop_next_slot();
    }

    /// Timestamp of the next pending event (caller must check !idle()).
    Time next_event_at() {
      Time t = heap_.empty() ? INT64_MAX : heap_.front().at;
      if (wheel_count_ != 0) {
        Time w = slot_ref(wheel_[find_next_bucket()].head).at;
        if (w < t) t = w;
      }
      return t;
    }

    void sift_up(size_t i) {
      HeapEntry e = heap_[i];
      while (i > 0) {
        size_t parent = (i - 1) / kArity;
        if (!before(e, heap_[parent])) break;
        heap_[i] = heap_[parent];
        i = parent;
      }
      heap_[i] = e;
    }

    /// Removes the root: moves the last entry into the hole and sifts down.
    void pop_root() {
      HeapEntry last = heap_.back();
      heap_.pop_back();
      size_t n = heap_.size();
      if (n == 0) return;
      size_t i = 0;
      while (true) {
        size_t child = i * kArity + 1;
        if (child >= n) break;
        size_t best = child;
        size_t end = child + kArity < n ? child + kArity : n;
        for (size_t c = child + 1; c < end; ++c) {
          if (before(heap_[c], heap_[best])) best = c;
        }
        if (!before(heap_[best], last)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
  };

  /// The lane the current thread is executing in: the context lane while
  /// inside an event of THIS simulation, the main lane otherwise (setup
  /// code, other sims, test drivers).
  Lane& exec_lane() {
    detail::ExecCtx& e = detail::tl_exec;
    return e.sim == this ? *static_cast<Lane*>(e.lane) : main_;
  }
  const Lane& exec_lane() const {
    const detail::ExecCtx& e = detail::tl_exec;
    return e.sim == this ? *static_cast<const Lane*>(e.lane) : main_;
  }

  void schedule_lane_at(Lane& L, Time t, InlineFn fn) {
    if (t < L.now_) t = L.now_;
    uint32_t slot = L.acquire_slot();
    EventSlot& s = L.slot_ref(slot);
    s.fn = std::move(fn);
    s.ctx = L.trace_ctx_;
    L.enqueue(t, slot, s);
  }

  template <typename F>
  void schedule_lane_at_emplace(Lane& L, Time t, F&& f) {
    if (t < L.now_) t = L.now_;
    uint32_t slot = L.acquire_slot();
    EventSlot& s = L.slot_ref(slot);
    s.fn.emplace(std::forward<F>(f));
    s.ctx = L.trace_ctx_;
    L.enqueue(t, slot, s);
  }

  /// Executes one popped slot on lane L (clock jump, trace context,
  /// in-place run, slot release).
  void run_slot(Lane& L, uint32_t slot) {
    EventSlot& s = L.slot_ref(slot);
    L.advance_clock(s.at);
    ++L.events_run_;
    // Restore the trace context that was active when this event was
    // scheduled, so span attribution follows the causal chain through
    // coroutine resumptions, future fulfilments and network deliveries.
    L.trace_ctx_ = s.ctx;
    ++L.run_depth_;
    {
      detail::CurrentSimScope scope(this, &L);
      s.fn();
    }
    s.fn.reset();
    L.release_slot(slot);
    --L.run_depth_;
    if (L.run_depth_ == 0) L.trace_ctx_ = 0;
  }

  /// Drains one site lane up to the current window end.  Runs on a pool
  /// worker (or the owner thread); only touches lane-local state and the
  /// lane's outbox.
  void drain_lane(Lane& L) {
    for (;;) {
      uint32_t slot = L.pop_next_slot_below(window_end_);
      if (slot == kNoSlot) break;
      run_slot(L, slot);
    }
  }

  /// Barrier merge: gather every lane's outbox in lane-index order,
  /// stable-sort by timestamp (so ties keep lane-then-emission order — an
  /// ordering that depends only on event content and lane assignment,
  /// never on worker scheduling) and enqueue into the destination lanes,
  /// which assigns destination seq in merged order.
  void merge_outboxes() {
    for (auto& L : site_lanes_) {
      for (Mail& m : L->outbox_) mail_scratch_.push_back(&m);
    }
    if (mail_scratch_.empty()) return;
    std::stable_sort(mail_scratch_.begin(), mail_scratch_.end(),
                     [](const Mail* a, const Mail* b) { return a->at < b->at; });
    for (Mail* m : mail_scratch_) {
      Lane& dest = m->site == kMainLane
                       ? main_
                       : *site_lanes_[static_cast<size_t>(m->site)];
      Time t = m->at < dest.now_ ? dest.now_ : m->at;
      uint32_t slot = dest.acquire_slot();
      EventSlot& s = dest.slot_ref(slot);
      s.fn = std::move(m->fn);
      s.ctx = m->ctx;
      dest.enqueue(t, slot, s);
    }
    for (auto& L : site_lanes_) L->outbox_.clear();
    mail_scratch_.clear();
  }

  /// Executes one lookahead window [max lane fronts, we).
  void run_window(Time we) {
    ++windows_run_;
    window_end_ = we;
    in_window_ = true;
    if (pool_) {
      pool_->run(site_lanes_.size(), drain_fn_);
    } else {
      for (auto& L : site_lanes_) drain_lane(*L);
    }
    in_window_ = false;
    merge_outboxes();
  }

  /// The PDES run loop: alternate lookahead windows (site lanes in
  /// parallel) with solo main-lane events at the barriers.
  void run_until_pdes(Time target) {
    // Events run strictly below `cap`; run_until's contract is inclusive.
    Time cap = target >= kTimeNever - 1 ? kTimeNever : target + 1;
    for (;;) {
      Time tg = main_.idle() ? kTimeNever : main_.next_event_at();
      Time tl = kTimeNever;
      for (auto& L : site_lanes_) {
        if (!L->idle()) tl = std::min(tl, L->next_event_at());
      }
      if (std::min(tg, tl) >= cap) break;
      if (tg <= tl) {
        // Merge rule, part 2: a main-lane event at T runs only once every
        // site lane has drained past T, and before any site event at the
        // same instant.  Main-lane events run alone, so they may mutate
        // cross-lane state (faults, shard moves, workload bookkeeping).
        uint32_t slot = main_.pop_next_slot();
        run_slot(main_, slot);
        continue;
      }
      Time we = tl > kTimeNever - lookahead_ ? kTimeNever : tl + lookahead_;
      if (tg < we) we = tg;
      if (cap < we) we = cap;
      run_window(we);
    }
    if (target != kTimeNever) {
      if (main_.now_ < target) main_.advance_clock(target);
      for (auto& L : site_lanes_) {
        if (L->now_ < target) L->advance_clock(target);
      }
    }
  }

  Lane main_;
  std::vector<std::unique_ptr<Lane>> site_lanes_;
  std::vector<Mail*> mail_scratch_;
  std::unique_ptr<par::Pool> pool_;
  std::function<void(size_t)> drain_fn_;
  size_t workers_ = 1;
  Duration lookahead_ = 0;
  Time window_end_ = 0;
  bool in_window_ = false;
  uint64_t windows_run_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

inline detail::CurrentSimScope::CurrentSimScope(Simulation* s)
    : prev_(tl_exec) {
  tl_exec.sim = s;
  if (prev_.sim != s) tl_exec.lane = &s->main_;
}

}  // namespace music::sim
