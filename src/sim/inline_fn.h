// Allocation-free type-erased callables for the simulator hot path.
//
// Every scheduled event, network delivery, service-queue completion and RPC
// continuation used to be a std::function — one heap allocation (plus a
// cache-missing indirect destroy) per op, millions of times per bench run.
// InlineFnT stores typical captures (<= 64 bytes, nothrow-movable) inline in
// the object itself; larger captures go to a size-classed freelist pool that
// recycles blocks instead of returning them to malloc, so the steady-state
// event loop performs zero heap allocations either way.
//
// Semantics: move-only (ownership of the capture is unique, which is what
// the kernel needs and what lets inline storage relocate by move), callable
// once or many times, empty-callable invocation is a programming error
// (asserted).  Construction from any callable F with a compatible signature
// is implicit, so `schedule(d, [..]{..})` call sites read as before.
//
// THREADING: the pool is thread-local and never shared — alloc() takes from
// the CALLING thread's freelist and dealloc() recycles into the CALLING
// thread's freelist.  Blocks are plain class-sized malloc chunks, so a
// block allocated on thread A and freed on thread B simply migrates into
// B's pool; nothing is ever touched by two threads at once.  Classic-mode
// worlds are single-threaded anyway (par::run_worlds pins each world to
// one worker); under PDES a callable may hop lanes — and therefore
// workers — via the cross-lane mailbox, which is safe for exactly this
// reason.  The only effect of migration is that cached blocks drift
// between per-thread pools, bounded by the number of in-flight cross-lane
// messages.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace music::sim {

namespace detail {

/// Thread-local size-classed freelist for out-of-line capture storage.
/// Freed blocks are cached and reused; they return to the system only when
/// the owning thread exits.
class CallablePool {
 public:
  /// Smallest class covers captures just past the inline buffer; largest
  /// avoids caching pathological one-off giants.
  static constexpr size_t kClassSizes[] = {128, 256, 512, 1024};
  static constexpr size_t kNumClasses =
      sizeof(kClassSizes) / sizeof(kClassSizes[0]);

  static CallablePool& instance() {
    static thread_local CallablePool pool;
    return pool;
  }

  void* alloc(size_t n) {
    size_t cls = class_for(n);
    if (cls == kNumClasses) {
      ++fresh_;
      return ::operator new(n);
    }
    if (FreeNode* node = free_[cls]) {
      free_[cls] = node->next;
      ++reused_;
      return node;
    }
    ++fresh_;
    return ::operator new(kClassSizes[cls]);
  }

  void dealloc(void* p, size_t n) {
    size_t cls = class_for(n);
    if (cls == kNumClasses) {
      ::operator delete(p);
      return;
    }
    FreeNode* node = ::new (p) FreeNode{free_[cls]};
    free_[cls] = node;
  }

  /// Blocks taken from malloc / recycled from the freelist (diagnostics;
  /// bench_kernel asserts the steady state stops paying `fresh`).
  uint64_t fresh_allocs() const { return fresh_; }
  uint64_t reused_allocs() const { return reused_; }

  ~CallablePool() {
    for (FreeNode*& head : free_) {
      while (head != nullptr) {
        FreeNode* next = head->next;
        head->~FreeNode();
        ::operator delete(head);
        head = next;
      }
    }
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static size_t class_for(size_t n) {
    for (size_t i = 0; i < kNumClasses; ++i) {
      if (n <= kClassSizes[i]) return i;
    }
    return kNumClasses;
  }

  FreeNode* free_[kNumClasses] = {};
  uint64_t fresh_ = 0;
  uint64_t reused_ = 0;
};

}  // namespace detail

template <typename Sig>
class InlineFnT;

/// Move-only type-erased callable with 64 bytes of inline capture storage
/// and pooled overflow.  See the file comment for the full contract.
template <typename R, typename... Args>
class InlineFnT<R(Args...)> {
 public:
  /// Captures up to this size (and alignof <= max_align_t, nothrow-movable)
  /// live inside the object; anything bigger goes to the CallablePool.
  static constexpr size_t kInlineBytes = 64;

  InlineFnT() = default;
  InlineFnT(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFnT> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFnT(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Constructs a callable in place (after destroying any current one).
  /// The kernel uses this to build events directly in their arena slot,
  /// skipping a move.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFnT> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  void emplace(F&& f) {
    reset();
    if constexpr (stored_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    } else {
      void* p = detail::CallablePool::instance().alloc(sizeof(D));
      ::new (p) D(std::forward<F>(f));
      *reinterpret_cast<void**>(buf_) = p;
    }
    vt_ = &kVTable<D>;
  }

  InlineFnT(InlineFnT&& o) noexcept : vt_(o.vt_) {
    if (vt_ != nullptr) {
      // Most simulator captures (pointers, ints, small PODs) are trivially
      // copyable: relocation is a fixed-size memcpy the compiler inlines,
      // with no indirect call and no destructor bookkeeping.
      if (vt_->trivial) {
        std::memcpy(buf_, o.buf_, kInlineBytes);
      } else {
        vt_->relocate(o.buf_, buf_);
      }
    }
    o.vt_ = nullptr;
  }

  InlineFnT& operator=(InlineFnT&& o) noexcept {
    if (this != &o) {
      reset();
      vt_ = o.vt_;
      if (vt_ != nullptr) {
        if (vt_->trivial) {
          std::memcpy(buf_, o.buf_, kInlineBytes);
        } else {
          vt_->relocate(o.buf_, buf_);
        }
      }
      o.vt_ = nullptr;
    }
    return *this;
  }

  InlineFnT(const InlineFnT&) = delete;
  InlineFnT& operator=(const InlineFnT&) = delete;

  ~InlineFnT() { reset(); }

  /// Destroys the held callable (frees its pool block), leaving empty.
  void reset() {
    if (vt_ != nullptr) {
      if (!vt_->trivial) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  /// True when a callable is held; invoking an empty InlineFnT is a bug.
  explicit operator bool() const { return vt_ != nullptr; }

  R operator()(Args... args) {
    assert(vt_ != nullptr && "invoking an empty InlineFn");
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void* storage, Args&&... args);
    /// Moves the callable from src storage to dst storage (inline: move-
    /// construct + destroy source; pooled: copy the block pointer).
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
    /// Inline, trivially copyable AND trivially destructible: relocation is
    /// a memcpy of the buffer and destruction is a no-op, both handled by
    /// the caller without going through the pointers above.
    bool trivial;
  };

  template <typename D>
  static constexpr bool stored_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* object(void* storage) {
    if constexpr (stored_inline<D>()) {
      return std::launder(reinterpret_cast<D*>(storage));
    } else {
      return static_cast<D*>(*reinterpret_cast<void**>(storage));
    }
  }

  template <typename D>
  static R invoke_thunk(void* storage, Args&&... args) {
    return (*object<D>(storage))(std::forward<Args>(args)...);
  }

  template <typename D>
  static void relocate_thunk(void* src, void* dst) noexcept {
    if constexpr (stored_inline<D>()) {
      D* s = object<D>(src);
      ::new (dst) D(std::move(*s));
      s->~D();
    } else {
      *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
    }
  }

  template <typename D>
  static void destroy_thunk(void* storage) noexcept {
    D* obj = object<D>(storage);
    obj->~D();
    if constexpr (!stored_inline<D>()) {
      detail::CallablePool::instance().dealloc(
          *reinterpret_cast<void**>(storage), sizeof(D));
    }
  }

  template <typename D>
  static constexpr bool trivially_relocatable() {
    return stored_inline<D>() && std::is_trivially_copyable_v<D> &&
           std::is_trivially_destructible_v<D>;
  }

  template <typename D>
  static constexpr VTable kVTable{&invoke_thunk<D>, &relocate_thunk<D>,
                                  &destroy_thunk<D>,
                                  trivially_relocatable<D>()};

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

/// The event-loop callable: what Simulation::schedule, Network::send,
/// ServiceNode::submit and Disk::write_sync accept.
using InlineFn = InlineFnT<void()>;

}  // namespace music::sim
