#include "sim/service.h"

#include <algorithm>
#include <utility>

namespace music::sim {

ServiceNode::ServiceNode(Simulation& sim, ServiceConfig cfg)
    : sim_(sim), cfg_(cfg) {
  for (int i = 0; i < cfg_.workers; ++i) free_at_.push(0);
}

Duration ServiceNode::cost_for(size_t bytes) const {
  return cfg_.base_cost_us +
         static_cast<Duration>(static_cast<double>(bytes) * cfg_.per_byte_ns /
                               1000.0);
}

void ServiceNode::submit(size_t bytes, InlineFn work) {
  submit_cost(cost_for(bytes), std::move(work));
}

void ServiceNode::submit_cost(Duration cost, InlineFn work) {
  if (down_) return;
  Time start = std::max(sim_.now(), free_at_.top());
  free_at_.pop();
  Time end = start + std::max<Duration>(cost, 1);
  free_at_.push(end);
  busy_ += end - start;
  uint64_t epoch = epoch_;
  sim_.schedule_at(end, [this, epoch, work = std::move(work)]() mutable {
    if (down_ || epoch != epoch_) return;  // node crashed meanwhile
    ++completed_;
    work();
  });
}

void ServiceNode::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  ++epoch_;
  // Reset worker availability; a restarted node starts idle.
  free_at_ = {};
  for (int i = 0; i < cfg_.workers; ++i) free_at_.push(0);
}

Disk::Disk(Simulation& sim, DiskConfig cfg) : sim_(sim), cfg_(cfg) {}

void Disk::write_sync(size_t bytes, InlineFn done) {
  if (down_) return;
  Duration cost =
      cfg_.fsync_base_us +
      static_cast<Duration>(static_cast<double>(bytes) * 1e6 / cfg_.write_bps);
  Time start = std::max(sim_.now(), free_at_);
  free_at_ = start + cost;
  uint64_t epoch = epoch_;
  sim_.schedule_at(free_at_, [this, epoch, done = std::move(done)]() mutable {
    if (down_ || epoch != epoch_) return;
    ++completed_;
    done();
  });
}

void Disk::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  ++epoch_;
  free_at_ = 0;
}

}  // namespace music::sim
