// The MUSIC REST front end (§VI, Fig. 1): MUSIC "is provided ... as a
// multi-site REST web service".
//
// RestGateway translates JSON request bodies into Table I operations via a
// MusicClient and formats JSON replies, mirroring the ONAP deployment where
// non-JVM services drive MUSIC over HTTP.  Request shape:
//
//   { "op":  "createLockRef" | "acquireLock" | "criticalPut" |
//            "criticalGet"   | "criticalDelete" | "releaseLock" |
//            "forcedRelease" | "put" | "get" | "getAllKeys" | "batch",
//     "key": "...", "lockRef": 7, "value": "..." }
//
// Reply: { "status": "Ok"|..., "lockRef": n?, "value": "..."?, "keys": []? }
//
// "batch" ships an ordered vector of critical ops under one lockRef (one
// wire request, coalesced quorum rounds server-side):
//
//   { "op": "batch", "key": "lockKey", "lockRef": 7,
//     "ops": [ { "op": "put", "key": "a", "value": "1" },
//              { "op": "get" },             // key defaults to the lock key
//              { "op": "delete", "key": "b" } ] }
//
// Reply: { "status": <roll-up>, "results": [ { "status": ..., "value"? }, … ] }
//
// Malformed bodies get {"status":"BadRequest","error":...} without touching
// the store.
#pragma once

#include <string>

#include "core/client.h"
#include "rest/json.h"

namespace music::rest {

/// JSON-over-"HTTP" gateway bound to one MusicClient.
class RestGateway {
 public:
  explicit RestGateway(core::MusicClient& client) : client_(client) {}

  /// Handles one request body; returns the reply body.  Never throws;
  /// syntactic problems come back as status "BadRequest".
  sim::Task<std::string> handle(std::string body);

  /// Typed layer used by handle() (exposed for tests): Json in, Json out.
  sim::Task<Json> handle_json(Json request);

 private:
  core::MusicClient& client_;
};

}  // namespace music::rest
