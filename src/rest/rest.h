// The MUSIC REST front end (§VI, Fig. 1): MUSIC "is provided ... as a
// multi-site REST web service".
//
// RestGateway translates JSON request bodies into Table I operations via
// the shared api::ClientApi seam and formats JSON replies, mirroring the
// ONAP deployment where non-JVM services drive MUSIC over HTTP.  Request
// shape:
//
//   { "op":  "createLockRef" | "acquireLock" | "criticalPut" |
//            "criticalGet"   | "criticalDelete" | "releaseLock" |
//            "forcedRelease" | "put" | "get" | "getAllKeys" | "batch" |
//            "status",
//     "key": "...", "lockRef": 7, "value": "..." }
//
// Reply: { "status": "Ok"|..., "code": "ok"|..., "lockRef": n?,
//          "value": "..."?, "keys": []? }
//
// Every reply carries a stable machine-readable "code" drawn from ONE
// OpStatus -> (HTTP status, code) table (error_mapping below; documented in
// docs/API.md).  The real-socket gateway maps replies to HTTP statuses with
// http_status_for_code — no second switch anywhere.
//
// "batch" ships an ordered vector of critical ops under one lockRef (one
// wire request, coalesced quorum rounds server-side):
//
//   { "op": "batch", "key": "lockKey", "lockRef": 7,
//     "ops": [ { "op": "put", "key": "a", "value": "1" },
//              { "op": "get" },             // key defaults to the lock key
//              { "op": "delete", "key": "b" } ] }
//
// Reply: { "status": <roll-up>, "results": [ { "status": ..., "value"? }, … ] }
//
// A gateway binds any api::ClientApi — a plain core::MusicClient (one MUSIC
// group) or a cluster::Client (sharded deployment; every verb then routes
// through the ShardMap with the WrongShard retry discipline).  "status"
// (keyless) reports the deployment shape via the interface's shard_count /
// map_epoch.
//
// Malformed bodies get {"status":"BadRequest","code":"bad_request",...}
// without touching the store.
#pragma once

#include <string>
#include <string_view>

#include "api/client_api.h"
#include "rest/json.h"

namespace music::rest {

/// One row of the REST error table: how an OpStatus crosses the HTTP
/// boundary.  `code` is the stable machine-readable identifier clients
/// switch on (the human-readable "status" string is for eyes and logs).
struct ErrorMapping {
  OpStatus status;
  int http_status;
  std::string_view code;
};

/// The single OpStatus -> (HTTP status, JSON error code) mapping, shared by
/// every reply path (docs/API.md lists it verbatim).
const ErrorMapping& error_mapping(OpStatus s);

/// Reply code for syntactically invalid requests (no OpStatus involved).
inline constexpr std::string_view kBadRequestCode = "bad_request";

/// HTTP status for a reply produced by RestGateway::handle, looked up by
/// its "code" field (bad_request included).  Unknown codes map to 500.
int http_status_for_code(std::string_view code);

/// JSON-over-HTTP gateway bound to any api::ClientApi implementation.
class RestGateway {
 public:
  explicit RestGateway(api::ClientApi& client) : client_(client) {}

  /// Handles one request body; returns the reply body.  Never throws;
  /// syntactic problems come back as status "BadRequest".
  sim::Task<std::string> handle(std::string body);

  /// Typed layer used by handle() (exposed for tests): Json in, Json out.
  sim::Task<Json> handle_json(Json request);

 private:
  api::ClientApi& client_;
};

}  // namespace music::rest
