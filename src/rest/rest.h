// The MUSIC REST front end (§VI, Fig. 1): MUSIC "is provided ... as a
// multi-site REST web service".
//
// RestGateway translates JSON request bodies into Table I operations via a
// MusicClient and formats JSON replies, mirroring the ONAP deployment where
// non-JVM services drive MUSIC over HTTP.  Request shape:
//
//   { "op":  "createLockRef" | "acquireLock" | "criticalPut" |
//            "criticalGet"   | "criticalDelete" | "releaseLock" |
//            "forcedRelease" | "put" | "get" | "getAllKeys" | "batch" |
//            "status",
//     "key": "...", "lockRef": 7, "value": "..." }
//
// Reply: { "status": "Ok"|..., "lockRef": n?, "value": "..."?, "keys": []? }
//
// "batch" ships an ordered vector of critical ops under one lockRef (one
// wire request, coalesced quorum rounds server-side):
//
//   { "op": "batch", "key": "lockKey", "lockRef": 7,
//     "ops": [ { "op": "put", "key": "a", "value": "1" },
//              { "op": "get" },             // key defaults to the lock key
//              { "op": "delete", "key": "b" } ] }
//
// Reply: { "status": <roll-up>, "results": [ { "status": ..., "value"? }, … ] }
//
// A gateway can be bound to a plain core::MusicClient (one MUSIC group) or
// to a cluster::Client (sharded deployment) — every verb then routes
// through the ShardMap with the WrongShard retry discipline.  "status"
// (keyless) reports the deployment shape: shard_count and map_epoch are
// 1/0 when core-backed.
//
// Malformed bodies get {"status":"BadRequest","error":...} without touching
// the store.
#pragma once

#include <memory>
#include <string>

#include "core/client.h"
#include "rest/json.h"

namespace music::cluster {
class Client;
}  // namespace music::cluster

namespace music::rest {

/// JSON-over-"HTTP" gateway bound to one MusicClient or cluster::Client.
class RestGateway {
 public:
  explicit RestGateway(core::MusicClient& client);
  explicit RestGateway(cluster::Client& client);
  ~RestGateway();

  /// Handles one request body; returns the reply body.  Never throws;
  /// syntactic problems come back as status "BadRequest".
  sim::Task<std::string> handle(std::string body);

  /// Typed layer used by handle() (exposed for tests): Json in, Json out.
  sim::Task<Json> handle_json(Json request);

  /// Backend-polymorphic op surface (core- or cluster-bound), defined in
  /// rest.cc so verb handling stays single-path.  Public only so the
  /// concrete adapters in rest.cc can derive from it.
  class Backend;

 private:
  std::unique_ptr<Backend> backend_;
};

}  // namespace music::rest
