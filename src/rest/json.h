// Minimal JSON value, parser and serializer.
//
// §VI: MUSIC's functionality "is provided as a Java library ... and as a
// multi-site REST web service"; "clients send key-value pairs for these
// tables in JSON format, which are then converted to CQL queries".  This is
// the self-contained JSON layer our REST front end (rest.h) uses for
// request and reply bodies.  Supports the full JSON grammar except \u
// surrogate pairs outside the BMP (escapes decode to UTF-8).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace music::rest {

/// A JSON value (null / bool / number / string / array / object).
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}                    // NOLINT
  Json(bool b) : type_(Type::Bool), bool_(b) {}                  // NOLINT
  Json(double n) : type_(Type::Number), num_(n) {}               // NOLINT
  Json(int64_t n) : type_(Type::Number), num_(static_cast<double>(n)) {}  // NOLINT
  Json(int n) : type_(Type::Number), num_(n) {}                  // NOLINT
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::String), str_(s) {}          // NOLINT
  Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}      // NOLINT
  Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}    // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0) const {
    return is_number() ? num_ : fallback;
  }
  int64_t as_int(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(num_) : fallback;
  }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return arr_; }
  const Object& as_object() const { return obj_; }

  /// Object field lookup; returns a Null Json for missing keys.
  const Json& operator[](const std::string& key) const;
  /// Whether an object has `key`.
  bool has(const std::string& key) const {
    return is_object() && obj_.count(key) > 0;
  }

  /// Mutable object field access (turns a Null value into an Object).
  Json& set(const std::string& key, Json v);
  /// Appends to an array (turns a Null value into an Array).
  Json& push(Json v);

  /// Serializes to compact JSON text.
  std::string dump() const;

  /// Parses JSON text; nullopt on syntax errors.
  static std::optional<Json> parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace music::rest
