#include "rest/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace music::rest {

namespace {

const Json kNull{};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

/// Recursive-descent parser.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::optional<Json> run() {
    skip_ws();
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* lit) {
    size_t n = std::string_view(lit).size();
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    if (pos_ >= s_.size()) return std::nullopt;
    char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    if (literal("null")) return Json(nullptr);
    return number();
  }

  std::optional<Json> number() {
    size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    double d = 0;
    auto r = std::from_chars(s_.data() + start, s_.data() + pos_, d);
    if (r.ec != std::errc{} || r.ptr != s_.data() + pos_) return std::nullopt;
    return Json(d);
  }

  std::optional<std::string> string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) return std::nullopt;
        char e = s_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return std::nullopt;
            unsigned int cp = 0;
            auto r = std::from_chars(s_.data() + pos_, s_.data() + pos_ + 4,
                                     cp, 16);
            if (r.ec != std::errc{}) return std::nullopt;
            pos_ += 4;
            // Encode as UTF-8 (BMP only).
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> array() {
    if (!consume('[')) return std::nullopt;
    Json::Array out;
    skip_ws();
    if (consume(']')) return Json(std::move(out));
    while (true) {
      skip_ws();
      auto v = value();
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return Json(std::move(out));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Json> object() {
    if (!consume('{')) return std::nullopt;
    Json::Object out;
    skip_ws();
    if (consume('}')) return Json(std::move(out));
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      auto v = value();
      if (!v) return std::nullopt;
      out.emplace(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) return Json(std::move(out));
      if (!consume(',')) return std::nullopt;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

const Json& Json::operator[](const std::string& key) const {
  if (is_object()) {
    auto it = obj_.find(key);
    if (it != obj_.end()) return it->second;
  }
  return kNull;
}

Json& Json::set(const std::string& key, Json v) {
  if (!is_object()) {
    type_ = Type::Object;
    obj_.clear();
  }
  obj_[key] = std::move(v);
  return *this;
}

Json& Json::push(Json v) {
  if (!is_array()) {
    type_ = Type::Array;
    arr_.clear();
  }
  arr_.push_back(std::move(v));
  return *this;
}

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::Null:
      out = "null";
      break;
    case Type::Bool:
      out = bool_ ? "true" : "false";
      break;
    case Type::Number: {
      if (num_ == std::floor(num_) && std::abs(num_) < 1e15) {
        out = std::to_string(static_cast<int64_t>(num_));
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
        out = buf;
      }
      break;
    }
    case Type::String:
      dump_string(str_, out);
      break;
    case Type::Array: {
      out.push_back('[');
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += arr_[i].dump();
      }
      out.push_back(']');
      break;
    }
    case Type::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(k, out);
        out.push_back(':');
        out += v.dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

std::optional<Json> Json::parse(const std::string& text) {
  return Parser(text).run();
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::Null:
      return true;
    case Json::Type::Bool:
      return a.bool_ == b.bool_;
    case Json::Type::Number:
      return a.num_ == b.num_;
    case Json::Type::String:
      return a.str_ == b.str_;
    case Json::Type::Array:
      return a.arr_ == b.arr_;
    case Json::Type::Object:
      return a.obj_ == b.obj_;
  }
  return false;
}

}  // namespace music::rest
