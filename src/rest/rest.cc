#include "rest/rest.h"

#include "cluster/client.h"

namespace music::rest {

namespace {

Json error_reply(const std::string& what) {
  Json r;
  r.set("status", "BadRequest");
  r.set("error", what);
  return r;
}

Json status_reply(OpStatus s) {
  Json r;
  r.set("status", std::string(to_string(s)));
  return r;
}

}  // namespace

/// The gateway's view of a client.  core::MusicClient and cluster::Client
/// expose the same op surface, so both adapters are pure forwarding; the
/// verb code below never branches on the deployment shape.
class RestGateway::Backend {
 public:
  virtual ~Backend() = default;
  virtual sim::Task<Result<LockRef>> create_lock_ref(Key key) = 0;
  virtual sim::Task<Status> acquire_lock(Key key, LockRef ref) = 0;
  virtual sim::Task<Status> critical_put(Key key, LockRef ref,
                                         Value value) = 0;
  virtual sim::Task<Result<Value>> critical_get(Key key, LockRef ref) = 0;
  virtual sim::Task<Status> critical_delete(Key key, LockRef ref) = 0;
  virtual sim::Task<std::vector<core::BatchOpResult>> execute_batch(
      Key key, LockRef ref, std::vector<core::BatchOp> ops) = 0;
  virtual sim::Task<Status> release_lock(Key key, LockRef ref) = 0;
  virtual sim::Task<Status> forced_release(Key key, LockRef ref) = 0;
  virtual sim::Task<Status> put(Key key, Value value) = 0;
  virtual sim::Task<Result<Value>> get(Key key) = 0;
  virtual sim::Task<Result<std::vector<Key>>> get_all_keys(Key prefix) = 0;
  virtual int shard_count() const = 0;
  virtual uint64_t map_epoch() const = 0;
};

namespace {

class CoreBackend final : public RestGateway::Backend {
 public:
  explicit CoreBackend(core::MusicClient& c) : c_(c) {}
  sim::Task<Result<LockRef>> create_lock_ref(Key key) override {
    co_return co_await c_.create_lock_ref(std::move(key));
  }
  sim::Task<Status> acquire_lock(Key key, LockRef ref) override {
    co_return co_await c_.acquire_lock(std::move(key), ref);
  }
  sim::Task<Status> critical_put(Key key, LockRef ref, Value value) override {
    co_return co_await c_.critical_put(std::move(key), ref, std::move(value));
  }
  sim::Task<Result<Value>> critical_get(Key key, LockRef ref) override {
    co_return co_await c_.critical_get(std::move(key), ref);
  }
  sim::Task<Status> critical_delete(Key key, LockRef ref) override {
    co_return co_await c_.critical_delete(std::move(key), ref);
  }
  sim::Task<std::vector<core::BatchOpResult>> execute_batch(
      Key key, LockRef ref, std::vector<core::BatchOp> ops) override {
    co_return co_await c_.execute_batch(std::move(key), ref, std::move(ops));
  }
  sim::Task<Status> release_lock(Key key, LockRef ref) override {
    co_return co_await c_.release_lock(std::move(key), ref);
  }
  sim::Task<Status> forced_release(Key key, LockRef ref) override {
    co_return co_await c_.forced_release(std::move(key), ref);
  }
  sim::Task<Status> put(Key key, Value value) override {
    co_return co_await c_.put(std::move(key), std::move(value));
  }
  sim::Task<Result<Value>> get(Key key) override {
    co_return co_await c_.get(std::move(key));
  }
  sim::Task<Result<std::vector<Key>>> get_all_keys(Key prefix) override {
    co_return co_await c_.get_all_keys(std::move(prefix));
  }
  int shard_count() const override { return 1; }
  uint64_t map_epoch() const override { return 0; }

 private:
  core::MusicClient& c_;
};

class ClusterBackend final : public RestGateway::Backend {
 public:
  explicit ClusterBackend(cluster::Client& c) : c_(c) {}
  sim::Task<Result<LockRef>> create_lock_ref(Key key) override {
    co_return co_await c_.create_lock_ref(std::move(key));
  }
  sim::Task<Status> acquire_lock(Key key, LockRef ref) override {
    co_return co_await c_.acquire_lock(std::move(key), ref);
  }
  sim::Task<Status> critical_put(Key key, LockRef ref, Value value) override {
    co_return co_await c_.critical_put(std::move(key), ref, std::move(value));
  }
  sim::Task<Result<Value>> critical_get(Key key, LockRef ref) override {
    co_return co_await c_.critical_get(std::move(key), ref);
  }
  sim::Task<Status> critical_delete(Key key, LockRef ref) override {
    co_return co_await c_.critical_delete(std::move(key), ref);
  }
  sim::Task<std::vector<core::BatchOpResult>> execute_batch(
      Key key, LockRef ref, std::vector<core::BatchOp> ops) override {
    co_return co_await c_.execute_batch(std::move(key), ref, std::move(ops));
  }
  sim::Task<Status> release_lock(Key key, LockRef ref) override {
    co_return co_await c_.release_lock(std::move(key), ref);
  }
  sim::Task<Status> forced_release(Key key, LockRef ref) override {
    co_return co_await c_.forced_release(std::move(key), ref);
  }
  sim::Task<Status> put(Key key, Value value) override {
    co_return co_await c_.put(std::move(key), std::move(value));
  }
  sim::Task<Result<Value>> get(Key key) override {
    co_return co_await c_.get(std::move(key));
  }
  sim::Task<Result<std::vector<Key>>> get_all_keys(Key prefix) override {
    co_return co_await c_.get_all_keys(std::move(prefix));
  }
  int shard_count() const override { return c_.cluster().num_shards(); }
  uint64_t map_epoch() const override {
    return c_.cluster().snapshot()->epoch();
  }

 private:
  cluster::Client& c_;
};

}  // namespace

RestGateway::RestGateway(core::MusicClient& client)
    : backend_(std::make_unique<CoreBackend>(client)) {}

RestGateway::RestGateway(cluster::Client& client)
    : backend_(std::make_unique<ClusterBackend>(client)) {}

RestGateway::~RestGateway() = default;

sim::Task<Json> RestGateway::handle_json(Json request) {
  if (!request.is_object()) co_return error_reply("body must be an object");
  const std::string& op = request["op"].as_string();
  if (op.empty()) co_return error_reply("missing op");
  if (op == "status") {
    // Keyless deployment introspection: how the keyspace is sharded and
    // which ShardMap epoch is current (1 / 0 for a core-backed gateway).
    Json reply = status_reply(OpStatus::Ok);
    reply.set("shard_count", static_cast<int64_t>(backend_->shard_count()));
    reply.set("map_epoch", static_cast<int64_t>(backend_->map_epoch()));
    co_return reply;
  }
  if (!request["key"].is_string() || request["key"].as_string().empty()) {
    co_return error_reply("missing key");
  }
  Key key = request["key"].as_string();
  LockRef ref = request["lockRef"].as_int(kNoLockRef);

  if (op == "createLockRef") {
    auto r = co_await backend_->create_lock_ref(key);
    Json reply = status_reply(r.status());
    if (r.ok()) reply.set("lockRef", r.value());
    co_return reply;
  }
  if (op == "acquireLock") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    auto st = co_await backend_->acquire_lock(key, ref);
    co_return status_reply(st.status());
  }
  if (op == "criticalPut") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    if (!request["value"].is_string()) co_return error_reply("missing value");
    auto st = co_await backend_->critical_put(key, ref,
                                            Value(request["value"].as_string()));
    co_return status_reply(st.status());
  }
  if (op == "criticalGet") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    auto r = co_await backend_->critical_get(key, ref);
    Json reply = status_reply(r.status());
    if (r.ok()) reply.set("value", r.value().data);
    co_return reply;
  }
  if (op == "criticalDelete") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    auto st = co_await backend_->critical_delete(key, ref);
    co_return status_reply(st.status());
  }
  if (op == "releaseLock") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    auto st = co_await backend_->release_lock(key, ref);
    co_return status_reply(st.status());
  }
  if (op == "forcedRelease") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    auto st = co_await backend_->forced_release(key, ref);
    co_return status_reply(st.status());
  }
  if (op == "put") {
    if (!request["value"].is_string()) co_return error_reply("missing value");
    auto st = co_await backend_->put(key, Value(request["value"].as_string()));
    co_return status_reply(st.status());
  }
  if (op == "get") {
    auto r = co_await backend_->get(key);
    Json reply = status_reply(r.status());
    if (r.ok()) reply.set("value", r.value().data);
    co_return reply;
  }
  if (op == "batch") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    const Json& ops_json = request["ops"];
    if (!ops_json.is_array()) co_return error_reply("missing ops array");
    // Validate every entry before executing anything: a malformed batch is
    // rejected whole, without touching the store.
    std::vector<core::BatchOp> ops;
    std::vector<bool> is_get;
    ops.reserve(ops_json.as_array().size());
    for (const Json& e : ops_json.as_array()) {
      if (!e.is_object()) co_return error_reply("ops entries must be objects");
      const std::string& sub = e["op"].as_string();
      // Sub-op "key" is optional; it defaults to the batch's lock key.
      Key sub_key = e["key"].is_string() && !e["key"].as_string().empty()
                        ? e["key"].as_string()
                        : key;
      if (sub == "put") {
        if (!e["value"].is_string()) {
          co_return error_reply("batch put missing value");
        }
        ops.emplace_back(core::BatchOp::Kind::Put, std::move(sub_key),
                         Value(e["value"].as_string()));
      } else if (sub == "get") {
        ops.emplace_back(core::BatchOp::Kind::Get, std::move(sub_key), Value());
      } else if (sub == "delete") {
        ops.emplace_back(core::BatchOp::Kind::Delete, std::move(sub_key),
                         Value());
      } else {
        co_return error_reply("unknown batch op '" + sub + "'");
      }
      is_get.push_back(sub == "get");
    }
    auto rs = co_await backend_->execute_batch(key, ref, std::move(ops));
    Json reply = status_reply(core::batch_status(rs));
    Json results;
    for (size_t i = 0; i < rs.size(); ++i) {
      Json entry;
      entry.set("status", std::string(to_string(rs[i].status)));
      if (is_get[i] && rs[i].status == OpStatus::Ok) {
        entry.set("value", rs[i].value.data);
      }
      results.push(std::move(entry));
    }
    reply.set("results", std::move(results));
    co_return reply;
  }
  if (op == "getAllKeys") {
    auto r = co_await backend_->get_all_keys(key);
    Json reply = status_reply(r.status());
    if (r.ok()) {
      Json keys;
      for (const auto& k : r.value()) keys.push(k);
      reply.set("keys", std::move(keys));
    }
    co_return reply;
  }
  co_return error_reply("unknown op '" + op + "'");
}

sim::Task<std::string> RestGateway::handle(std::string body) {
  auto parsed = Json::parse(body);
  if (!parsed) co_return error_reply("invalid JSON").dump();
  Json reply = co_await handle_json(std::move(*parsed));
  co_return reply.dump();
}

}  // namespace music::rest
