#include "rest/rest.h"

namespace music::rest {

namespace {

/// THE error table: every status a verb can surface, its HTTP mapping, and
/// its stable code.  Order matches the OpStatus enum so the lookup is an
/// index when statuses are in range (guarded below).
constexpr ErrorMapping kErrorTable[] = {
    {OpStatus::Ok, 200, "ok"},
    {OpStatus::Timeout, 504, "timeout"},
    {OpStatus::Nack, 503, "nack"},
    {OpStatus::NotLockHolder, 409, "not_lock_holder"},
    {OpStatus::NotYetHolder, 409, "not_yet_holder"},
    {OpStatus::CsExpired, 409, "cs_expired"},
    {OpStatus::NotFound, 404, "not_found"},
    {OpStatus::Conflict, 409, "conflict"},
    {OpStatus::RetryExhausted, 504, "retry_exhausted"},
    {OpStatus::WrongShard, 503, "wrong_shard"},
};

Json error_reply(const std::string& what) {
  Json r;
  r.set("status", "BadRequest");
  r.set("code", std::string(kBadRequestCode));
  r.set("error", what);
  return r;
}

Json status_reply(OpStatus s) {
  Json r;
  r.set("status", std::string(to_string(s)));
  r.set("code", std::string(error_mapping(s).code));
  return r;
}

}  // namespace

const ErrorMapping& error_mapping(OpStatus s) {
  auto idx = static_cast<size_t>(s);
  static_assert(std::size(kErrorTable) ==
                static_cast<size_t>(OpStatus::WrongShard) + 1);
  if (idx >= std::size(kErrorTable)) idx = static_cast<size_t>(OpStatus::Nack);
  return kErrorTable[idx];
}

int http_status_for_code(std::string_view code) {
  if (code == kBadRequestCode) return 400;
  for (const ErrorMapping& m : kErrorTable) {
    if (m.code == code) return m.http_status;
  }
  return 500;
}

sim::Task<Json> RestGateway::handle_json(Json request) {
  if (!request.is_object()) co_return error_reply("body must be an object");
  const std::string& op = request["op"].as_string();
  if (op.empty()) co_return error_reply("missing op");
  if (op == "status") {
    // Keyless deployment introspection: how the keyspace is sharded and
    // which ShardMap epoch is current (1 / 0 for a core-backed gateway).
    Json reply = status_reply(OpStatus::Ok);
    reply.set("shard_count", static_cast<int64_t>(client_.shard_count()));
    reply.set("map_epoch", static_cast<int64_t>(client_.map_epoch()));
    co_return reply;
  }
  if (!request["key"].is_string() || request["key"].as_string().empty()) {
    co_return error_reply("missing key");
  }
  Key key = request["key"].as_string();
  LockRef ref = request["lockRef"].as_int(kNoLockRef);

  if (op == "createLockRef") {
    auto r = co_await client_.create_lock_ref(key);
    Json reply = status_reply(r.status());
    if (r.ok()) reply.set("lockRef", r.value());
    co_return reply;
  }
  if (op == "acquireLock") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    auto st = co_await client_.acquire_lock(key, ref);
    co_return status_reply(st.status());
  }
  if (op == "criticalPut") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    if (!request["value"].is_string()) co_return error_reply("missing value");
    auto st = co_await client_.critical_put(key, ref,
                                            Value(request["value"].as_string()));
    co_return status_reply(st.status());
  }
  if (op == "criticalGet") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    auto r = co_await client_.critical_get(key, ref);
    Json reply = status_reply(r.status());
    if (r.ok()) reply.set("value", r.value().data);
    co_return reply;
  }
  if (op == "criticalDelete") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    auto st = co_await client_.critical_delete(key, ref);
    co_return status_reply(st.status());
  }
  if (op == "releaseLock") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    auto st = co_await client_.release_lock(key, ref);
    co_return status_reply(st.status());
  }
  if (op == "forcedRelease") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    auto st = co_await client_.forced_release(key, ref);
    co_return status_reply(st.status());
  }
  if (op == "put") {
    if (!request["value"].is_string()) co_return error_reply("missing value");
    auto st = co_await client_.put(key, Value(request["value"].as_string()));
    co_return status_reply(st.status());
  }
  if (op == "get") {
    auto r = co_await client_.get(key);
    Json reply = status_reply(r.status());
    if (r.ok()) reply.set("value", r.value().data);
    co_return reply;
  }
  if (op == "batch") {
    if (ref == kNoLockRef) co_return error_reply("missing lockRef");
    const Json& ops_json = request["ops"];
    if (!ops_json.is_array()) co_return error_reply("missing ops array");
    // Validate every entry before executing anything: a malformed batch is
    // rejected whole, without touching the store.
    std::vector<wire::BatchOp> ops;
    std::vector<bool> is_get;
    ops.reserve(ops_json.as_array().size());
    for (const Json& e : ops_json.as_array()) {
      if (!e.is_object()) co_return error_reply("ops entries must be objects");
      const std::string& sub = e["op"].as_string();
      // Sub-op "key" is optional; it defaults to the batch's lock key.
      Key sub_key = e["key"].is_string() && !e["key"].as_string().empty()
                        ? e["key"].as_string()
                        : key;
      if (sub == "put") {
        if (!e["value"].is_string()) {
          co_return error_reply("batch put missing value");
        }
        ops.emplace_back(wire::BatchOp::Kind::Put, std::move(sub_key),
                         Value(e["value"].as_string()));
      } else if (sub == "get") {
        ops.emplace_back(wire::BatchOp::Kind::Get, std::move(sub_key), Value());
      } else if (sub == "delete") {
        ops.emplace_back(wire::BatchOp::Kind::Delete, std::move(sub_key),
                         Value());
      } else {
        co_return error_reply("unknown batch op '" + sub + "'");
      }
      is_get.push_back(sub == "get");
    }
    auto rs = co_await client_.execute_batch(key, ref, std::move(ops));
    Json reply = status_reply(wire::batch_status(rs));
    Json results;
    for (size_t i = 0; i < rs.size(); ++i) {
      Json entry;
      entry.set("status", std::string(to_string(rs[i].status)));
      entry.set("code", std::string(error_mapping(rs[i].status).code));
      if (is_get[i] && rs[i].status == OpStatus::Ok) {
        entry.set("value", rs[i].value.data);
      }
      results.push(std::move(entry));
    }
    reply.set("results", std::move(results));
    co_return reply;
  }
  if (op == "getAllKeys") {
    auto r = co_await client_.get_all_keys(key);
    Json reply = status_reply(r.status());
    if (r.ok()) {
      Json keys;
      for (const auto& k : r.value()) keys.push(k);
      reply.set("keys", std::move(keys));
    }
    co_return reply;
  }
  co_return error_reply("unknown op '" + op + "'");
}

sim::Task<std::string> RestGateway::handle(std::string body) {
  auto parsed = Json::parse(body);
  if (!parsed) co_return error_reply("invalid JSON").dump();
  Json reply = co_await handle_json(std::move(*parsed));
  co_return reply.dump();
}

}  // namespace music::rest
