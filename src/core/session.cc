#include "core/session.h"

#include <utility>

namespace music::core {

namespace {

/// Fire-and-forget release for handles dropped while holding the lock
/// (sim::spawn only takes Task<void>).  Takes the client by pointer and the
/// identifiers by value: the CriticalSection is gone by the time this runs.
sim::Task<void> release_detached(api::ClientApi* client, Key key, LockRef ref) {
  co_await client->release_lock(std::move(key), ref);
}

}  // namespace

// ---- Session ---------------------------------------------------------------

sim::Task<Status> Session::flush() {
  if (flushed_ || ops_.empty()) {
    flushed_ = true;
    co_return Status::Ok();
  }
  flushed_ = true;
  // Ship a copy: ops_ stays aligned with results_ for post-flush reads.
  std::vector<BatchOp> shipped = ops_;
  results_ = co_await client_.execute_batch(key_, ref_, std::move(shipped));
  co_return Status(batch_status(results_));
}

// ---- CriticalSection -------------------------------------------------------

CriticalSection::~CriticalSection() {
  if (held_ && client_ != nullptr) {
    sim::spawn(client_->simulation(),
               release_detached(client_, key_, ref_));
  }
}

sim::Task<Status> CriticalSection::enter() {
  auto ref = co_await client_->create_lock_ref(key_);
  if (!ref.ok()) co_return ref.status();
  ref_ = ref.value();
  auto acq = co_await client_->acquire_lock_blocking(key_, ref_);
  if (!acq.ok()) {
    // Never granted: evict our reference so it does not clog the queue —
    // unless the lock store already preempted it (then it is gone).
    if (acq.status() != OpStatus::NotLockHolder) {
      co_await client_->remove_lock_ref(key_, ref_);
    }
    ref_ = kNoLockRef;
    co_return acq;
  }
  held_ = true;
  co_return Status::Ok();
}

sim::Task<Status> CriticalSection::exit() {
  if (!held_) co_return Status::Ok();
  LockRef ref = ref_;
  abandon();
  co_return co_await client_->release_lock(key_, ref);
}

sim::Task<Status> CriticalSection::put(Key key, Value value) {
  auto st = co_await client_->critical_put(std::move(key), ref_,
                                           std::move(value));
  note(st.status());
  co_return st;
}

sim::Task<Status> CriticalSection::put(Value value) {
  co_return co_await put(key_, std::move(value));
}

sim::Task<Result<Value>> CriticalSection::get(Key key) {
  auto r = co_await client_->critical_get(std::move(key), ref_);
  note(r.status());
  co_return r;
}

sim::Task<Result<Value>> CriticalSection::get() {
  co_return co_await get(key_);
}

sim::Task<Status> CriticalSection::del(Key key) {
  auto st = co_await client_->critical_delete(std::move(key), ref_);
  note(st.status());
  co_return st;
}

sim::Task<Status> CriticalSection::del() {
  co_return co_await del(key_);
}

}  // namespace music::core
