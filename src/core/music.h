// The MUSIC replica: critical sections with entry-consistency-under-failures
// (ECF) semantics over the data and lock stores (§III–§IV of the paper).
//
// Each MusicReplica lives at a site, fronts the site's data-store
// coordinator, and executes the Table I operations on behalf of connected
// clients:
//
//   createLockRef  one LWT (consensus) to generate + enqueue a lockRef
//   acquireLock    local lock-store peek; on grant, quorum read of the
//                  synchFlag and — only after a forced release — the
//                  synchronization (quorum read + re-write of the value,
//                  quorum reset of the flag)
//   criticalPut    quorum write stamped v2s(lockRef, elapsed)  [MUSIC]
//                  or an LWT write                              [MSCP]
//   criticalGet    quorum read
//   releaseLock    one LWT to dequeue
//   forcedRelease  (internal) quorum synchFlag set at lockRef+delta,
//                  then LWT dequeue
//
// plus the non-ECF get/put conveniences of §VI.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "common/v2s.h"
#include "datastore/store.h"
#include "lockstore/lockstore.h"
#include "sim/network.h"
#include "sim/service.h"
#include "sim/task.h"
#include "wire/messages.h"

namespace music::core {

/// How critical puts reach the data store: the MUSIC-vs-MSCP axis of the
/// paper's evaluation (§VIII-b).
enum class PutMode {
  /// MUSIC: plain quorum write (1 round trip).
  Quorum,
  /// MSCP: sequentially-consistent LWT write (4 round trips).
  Lwt,
};

/// MUSIC configuration.
struct MusicConfig {
  /// T: the maximum critical-section duration (§VI).  Operations past the
  /// bound are rejected with CsExpired.
  sim::Duration t_max_cs = sim::sec(60);
  /// delta for forcedRelease's synchFlag stamp, in microseconds past the
  /// released holder's maximum possible stamp.  The paper's production
  /// value is 1 us; it must be > 0 (see bench_ablation).
  sim::Duration delta = 1;
  /// Critical-put implementation (MUSIC vs MSCP).
  PutMode put_mode = PutMode::Quorum;
  /// Compute model of the MUSIC replica process itself.
  sim::ServiceConfig service{};
  /// How long an unchanged lockholder is tolerated before the failure
  /// detector preempts it with forcedRelease (§III lock release).
  sim::Duration holder_timeout = sim::sec(15);
  /// Failure-detector scan period.
  sim::Duration fd_interval = sim::sec(2);
  /// TEST ONLY: skip the §IV-B synchronization a grant is supposed to run
  /// when it finds synchFlag set after a forced release.  This deliberately
  /// breaks the fencing path — it exists so the ECF-under-failure matrix
  /// can prove the oracle detects the resulting zombie writes (the matrix
  /// has teeth).  Never enable outside tests.
  bool test_skip_synchronization = false;
};

/// Batch vocabulary: defined in wire/messages.h (it crosses the client
/// seam); aliased here so replica-side code keeps its historical names.
using BatchOp = wire::BatchOp;
using BatchOpResult = wire::BatchOpResult;
using wire::batch_status;

/// Diagnostic counters exposed by a replica (tests and benches read these).
struct MusicStats {
  uint64_t create_lock_ref = 0;
  uint64_t acquire_attempts = 0;
  uint64_t acquire_granted = 0;
  uint64_t synchronizations = 0;  // acquireLock runs that found synchFlag set
  uint64_t critical_puts = 0;
  uint64_t critical_gets = 0;
  uint64_t releases = 0;
  uint64_t forced_releases = 0;
  uint64_t rejected_not_holder = 0;
  uint64_t rejected_expired = 0;
  uint64_t batches = 0;       // execute_batch invocations
  uint64_t batched_ops = 0;   // sub-ops carried by those batches
};

/// A MUSIC replica.  All operations are coroutines over the simulated
/// cluster; they are safe to invoke concurrently from many clients.
class MusicReplica {
 public:
  /// Creates a replica at `site`, talking to that site's data-store
  /// coordinator and the given lock backend (LWT-based ls::LockStore in the
  /// paper's production configuration; ls::RaftLockStore for the §X-A1
  /// alternative).  The replica registers its own node on the network.
  MusicReplica(ds::StoreCluster& store, ls::LockBackend& locks,
               MusicConfig cfg, int site);

  MusicReplica(const MusicReplica&) = delete;
  MusicReplica& operator=(const MusicReplica&) = delete;

  sim::NodeId node() const { return node_; }
  int site() const { return site_; }
  sim::ServiceNode& service() { return service_; }
  sim::Simulation& sim_ref() { return store_.simulation(); }
  sim::Network& net_ref() { return store_.network(); }
  const MusicConfig& config() const { return cfg_; }
  const MusicStats& stats() const { return stats_; }
  const V2S& v2s() const { return v2s_; }

  // ---- Table I operations (ECF semantics). ---------------------------------

  /// createLockRef: enqueues and returns a per-key unique increasing
  /// identifier, good for one critical section.  Cost: one consensus write.
  sim::Task<Result<LockRef>> create_lock_ref(Key key);

  /// acquireLock: Ok when `ref` is first in the queue (critical section
  /// entered; the data store has been synchronized if needed);
  /// NotYetHolder when not first yet (poll again); NotLockHolder when the
  /// lock was forcibly released.  Cost on grant: synchFlag quorum read
  /// (plus, only after a forced release, value quorum read + write and
  /// synchFlag quorum write).
  sim::Task<Status> acquire_lock(Key key, LockRef ref);

  /// criticalPut: writes the latest value of the key for the current
  /// lockholder.  Cost: one value quorum write (MUSIC) or one LWT (MSCP).
  sim::Task<Status> critical_put(Key key, LockRef ref, Value value);

  /// criticalGet: reads the latest (true) value of the key for the current
  /// lockholder.  Cost: one value quorum read.
  sim::Task<Result<Value>> critical_get(Key key, LockRef ref);

  /// criticalDelete: removes the key for the current lockholder (footnote 3
  /// of the paper).  Implemented as a tombstone quorum write.
  sim::Task<Status> critical_delete(Key key, LockRef ref);

  /// Batched critical section body: executes `ops` in order under `ref`,
  /// coalescing runs of independent ops into single quorum rounds.
  /// Consecutive same-class ops (writes = put/delete, reads = get) on
  /// distinct keys form one round, executed via the store's multi-cell
  /// put_cells/get_cells so the whole round costs one value-quorum WAN
  /// round trip (MUSIC mode; MSCP's LWT writes stay sequential — there is
  /// no batching win to be had from four-round consensus writes).  The
  /// holder guard and T-bound are re-checked per round; a guard failure or
  /// a failed round aborts every later sub-op with that status, so a
  /// forcedRelease landing mid-batch deterministically fails the tail with
  /// NotLockHolder.  Returns one result per op, aligned with `ops`.
  sim::Task<std::vector<BatchOpResult>> execute_batch(Key key, LockRef ref,
                                                      std::vector<BatchOp> ops);

  /// releaseLock: removes `ref` from the queue.  Cost: one consensus write.
  sim::Task<Status> release_lock(Key key, LockRef ref);

  /// removeLockReference (§VII): evicts a lockRef that was never granted
  /// (garbage collection by workers that lost the race for a job).
  sim::Task<Status> remove_lock_ref(Key key, LockRef ref) {
    return release_lock(key, ref);
  }

  /// forcedRelease (internal; §IV-B): preempts `ref`, marking the key's
  /// data store as needing synchronization.  Exposed for failure detectors
  /// and for ownership transfer in the Portal pattern (§VII-b).
  sim::Task<Status> forced_release(Key key, LockRef ref);

  // ---- Non-ECF conveniences (§VI "Additional Functions"). -------------------

  /// Eventual write at one replica.  Only for keys with no ECF expectations
  /// or as initialization before the first critical section on the key.
  sim::Task<Status> put_eventual(Key key, Value value);

  /// Eventual read at one replica (may be stale).
  sim::Task<Result<Value>> get_eventual(Key key);

  /// Quorum read without holding a lock (used by tests/oracle; not part of
  /// Table I).
  sim::Task<Result<Value>> get_quorum_unlocked(Key key);

  /// getAllKeys helper (§VII): MUSIC keys with the given prefix, from the
  /// local replica's (possibly stale) view.
  sim::Task<Result<std::vector<Key>>> get_all_keys(Key prefix);

  // ---- Failure detection (§III lock release). -------------------------------

  /// Starts a background scanner that forcedReleases lockholders whose head
  /// lockRef has not changed for holder_timeout, and any holder past the T
  /// bound.  Scans keys registered with watch_key() plus any key this
  /// replica has served.
  void start_failure_detector();
  void stop_failure_detector();

  /// Registers a key for failure-detector scanning.
  void watch_key(const Key& key);

  /// Records client-visible activity on a key (resets the preemption
  /// timer).  Called internally by successful critical operations.
  void note_activity(const Key& key);

  // ---- Data-store key layout (shared with the verify oracle). ---------------

  static Key data_key(const Key& key) { return "!d:" + key; }
  static Key synch_flag_key(const Key& key) { return "!sf:" + key; }
  static Key start_time_key(const Key& key) { return "!st:" + key; }

  /// Crash / restart the MUSIC replica process.  By default a crash wipes
  /// the replica's soft state (origin cache, last-stamp table, failure-
  /// detector observations) — the amnesia restart of §III's fail-stop
  /// model, and the safe assumption since none of it is durable.
  /// `amnesia = false` models a process restart that kept its local state
  /// (e.g. a hot standby takeover): caches survive, which is only correct
  /// because every entry is re-validated against the store on use.
  void set_down(bool down, bool amnesia = true);
  bool down() const { return service_.down(); }

 private:
  struct Origin {
    LockRef ref = kNoLockRef;
    sim::Time at = 0;

    Origin() = default;
    Origin(LockRef r, sim::Time t) : ref(r), at(t) {}
  };

  sim::Simulation& sim() { return store_.simulation(); }

  /// The data-store coordinator for the next operation: rotates across the
  /// site's nodes (as Cassandra drivers round-robin coordinators), which
  /// spreads coordinator work in the 6/9-node deployments of Fig. 4(b).
  ds::StoreReplica& coord();

  /// Local lock-store peek -> holder guard shared by the critical ops.
  /// Returns Ok when `ref` is head, NotYetHolder / NotLockHolder otherwise.
  sim::Task<Status> holder_guard(Key key, LockRef ref);

  /// The critical-section time origin for (key, ref): the cached value, or
  /// the !st row from the local replica.  Nullopt when not yet known
  /// locally (callers return Nack so the client retries).
  sim::Task<std::optional<sim::Time>> origin_for(Key key, LockRef ref);

  /// Monotonic v2s stamp for a write under (key, ref) at elapsed time `e`.
  ScalarTs next_ts(const Key& key, LockRef ref, sim::Duration e);

  /// One failure-detector pass.
  sim::Task<void> fd_scan();
  void schedule_fd_tick();

  ds::StoreCluster& store_;
  ls::LockBackend& locks_;
  MusicConfig cfg_;
  int site_;
  sim::NodeId node_;
  sim::ServiceNode service_;
  V2S v2s_;
  MusicStats stats_;

  std::unordered_map<Key, Origin> origin_cache_;
  std::unordered_map<Key, ScalarTs> last_ts_;
  std::unordered_map<Key, ScalarTs> last_plain_ts_;

  // Failure detector state.
  bool fd_running_ = false;
  struct HeadObservation {
    LockRef head = kNoLockRef;
    sim::Time since = 0;

    HeadObservation() = default;
    HeadObservation(LockRef h, sim::Time s) : head(h), since(s) {}
  };
  std::unordered_map<Key, HeadObservation> fd_observed_;
  std::unordered_map<Key, bool> watched_;
  size_t coord_rr_ = 0;
};

}  // namespace music::core
