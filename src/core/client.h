// The MUSIC client library: what a geo-distributed service links against.
//
// A client lives at a site and talks to MUSIC replicas over the network
// (nearest first), implementing the §III failure semantics: operations that
// fail with Nack/Timeout are retried — usually at a different MUSIC replica
// — until they succeed, the retry budget is exhausted, or the client is
// told it is no longer the lockholder.  acquire_lock_blocking implements
// Listing 1's polling loop with back-off.
//
// Client-to-replica calls are shipped as wire::Request/Response data (not
// callables) through the net::Transport seam: the sim backend moves the
// structs in-memory, the TCP backend frames them through wire/codec.h, and
// this file is identical either way.  Data structs with user-declared
// constructors are the coroutine-parameter shape GCC 12 compiles correctly
// (see the note on ds::Cell).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "api/client_api.h"
#include "core/music.h"
#include "net/sim_transport.h"
#include "net/transport.h"
#include "sim/future.h"
#include "sim/rng.h"
#include "sim/span.h"

namespace music::core {

/// Client-side tunables.
struct ClientConfig {
  /// Give up on a single request to one replica after this long.
  sim::Duration request_timeout = sim::sec(6);
  /// Total attempts per operation across replicas before reporting
  /// RetryExhausted.
  int max_attempts = 24;
  /// Attempts allowed for one acquire_lock_blocking polling loop.
  int max_poll_attempts = 4096;
  /// Pause between acquireLock polls (Listing 1's back-off).
  sim::Duration poll_backoff = sim::ms(2);
  /// First retry pause after a Nacked/timed-out operation.  Subsequent
  /// pauses grow exponentially with decorrelated jitter: each is drawn
  /// uniformly from [base, min(cap, 3 x previous)].
  sim::Duration retry_backoff_base = sim::ms(5);
  /// Ceiling on any single retry pause.
  sim::Duration retry_backoff_cap = sim::ms(320);
  /// Total budget for one operation including retries; once spent, the op
  /// returns RetryExhausted even with attempts left.  0 disables it.
  sim::Duration op_deadline = 0;
  /// Consecutive transient failures at one replica before the client
  /// demotes it in the preference order (quarantine).
  int health_fail_threshold = 3;
  /// How long a demoted replica is skipped before being probed again.
  sim::Duration health_quarantine = sim::sec(2);
  /// Request framing size.
  size_t overhead_bytes = 96;
};

/// Client-side counters (retry discipline + replica health), for metrics
/// export and tests.
struct ClientStats {
  uint64_t attempts = 0;           // requests actually sent to a replica
  uint64_t retries = 0;            // transient failures retried
  uint64_t retry_exhausted = 0;    // ops that ran out of attempts
  uint64_t deadline_exceeded = 0;  // ops that ran out of op_deadline
  uint64_t demotions = 0;          // replica quarantine transitions
};

/// The client-seam messages: defined in wire/messages.h (the transport
/// vocabulary); aliased here so client-side code keeps its historical names.
using Request = wire::Request;
using Response = wire::Response;

/// Executes a Request against a replica (the replica-side dispatcher used
/// by MusicClient; also handy for tests driving a replica directly).
sim::Task<Response> execute(MusicReplica& replica, Request req);

/// One decorrelated-jitter backoff step: uniform in [base, min(cap, 3 x
/// prev)], so colliding clients spread out instead of retrying in lockstep.
/// Never returns less than retry_backoff_base nor more than
/// retry_backoff_cap.  A free function so the retry envelope is testable in
/// isolation from the client's network machinery.
sim::Duration decorrelated_backoff(const ClientConfig& cfg, sim::Rng& rng,
                                   sim::Duration prev);

/// The serving glue for a MUSIC replica on ANY transport: a ServeRequestFn
/// that dispatches each arriving Request through execute() as a fresh
/// coroutine (musicd hands this to TcpTransport::listen_for).
net::ServeRequestFn serve_request_fn(MusicReplica& rep);

/// Binds `rep` as a client-seam endpoint of `transport`: requests landing on
/// rep.node() are dispatched through execute().  The MusicClient sim ctor
/// does this for its replicas; hosts that assemble a shared SimTransport by
/// hand (multiple clients, musicd's in-process half) use it directly.
void bind_replica(net::SimTransport& transport, MusicReplica& rep);

/// A MUSIC client.  Issues non-blocking requests to a MUSIC replica of its
/// choice (Fig. 1); replicas are tried in the given preference order.
/// Implements the shared api::ClientApi surface (api/client_api.h), so
/// gateways and recipes bind it interchangeably with cluster::Client.
class MusicClient : public api::ClientApi {
 public:
  /// Sim-world convenience: `replicas` in preference (proximity) order, the
  /// first is "local".  Builds a private SimTransport with every replica
  /// bound as a serving endpoint — bit-identical to the pre-seam wiring.
  MusicClient(sim::Simulation& sim, sim::Network& net,
              std::vector<MusicReplica*> replicas, ClientConfig cfg, int site);

  /// Transport-seam form: `peers` are the serving replicas' transport
  /// addresses in preference order and `node` is this client's own address
  /// (the musicd gateway injects a TcpTransport here).
  MusicClient(sim::Simulation& sim, net::Transport& transport,
              std::vector<net::PeerId> peers, ClientConfig cfg, int site,
              net::PeerId node);

  MusicClient(const MusicClient&) = delete;
  MusicClient& operator=(const MusicClient&) = delete;

  sim::NodeId node() const { return node_; }
  int site() const override { return site_; }
  sim::Simulation& simulation() override { return sim_; }
  const ClientConfig& config() const { return cfg_; }
  const ClientStats& stats() const { return stats_; }

  // ---- Table I operations with the §III retry discipline. ------------------

  sim::Task<Result<LockRef>> create_lock_ref(Key key) override;

  /// One acquireLock poll (Ok / NotYetHolder / NotLockHolder / errors).
  sim::Task<Status> acquire_lock(Key key, LockRef ref) override;

  /// Polls acquireLock with back-off until granted (Ok), preempted
  /// (NotLockHolder) or the poll budget is exhausted (Timeout).
  sim::Task<Status> acquire_lock_blocking(Key key, LockRef ref) override;

  sim::Task<Status> critical_put(Key key, LockRef ref, Value value) override;
  sim::Task<Result<Value>> critical_get(Key key, LockRef ref) override;
  sim::Task<Status> critical_delete(Key key, LockRef ref) override;

  /// Ships `ops` as one Batch request under `ref`, with the usual retry
  /// discipline (the whole batch is re-sent on Nack/Timeout; re-stamping
  /// the same values under the same lockRef is idempotent).  Always returns
  /// one result per op — on a wire-level failure every entry carries the
  /// failing status.  Most callers use Session (see core/session.h) rather
  /// than building op vectors by hand.
  sim::Task<std::vector<BatchOpResult>> execute_batch(
      Key key, LockRef ref, std::vector<BatchOp> ops) override;

  sim::Task<Status> release_lock(Key key, LockRef ref) override;
  /// §VII: evicts a lockRef that was never granted.
  sim::Task<Status> remove_lock_ref(Key key, LockRef ref) override;
  /// Preempts another client's lock (Portal ownership transfer, §VII-b).
  sim::Task<Status> forced_release(Key key, LockRef ref) override;

  // ---- Non-ECF conveniences. ------------------------------------------------

  sim::Task<Status> put(Key key, Value value) override;
  sim::Task<Result<Value>> get(Key key) override;
  sim::Task<Result<std::vector<Key>>> get_all_keys(Key prefix) override;

  // ---- Composite helper. -----------------------------------------------------

  /// Listing 1 end-to-end: createLockRef, poll acquireLock, run `body`
  /// (critical ops under the granted ref), releaseLock.  `body` must be a
  /// named lvalue callable LockRef -> Task<Status> (the F& signature rejects
  /// temporaries, which GCC 12 miscompiles at coroutine boundaries).
  /// Implemented over CriticalSection (core/session.h), where it is defined.
  template <typename F>
  sim::Task<Status> with_lock(Key key, F& body);

 private:
  /// Per-replica health book-keeping for the adaptive preference order.
  struct ReplicaHealth {
    int consecutive_failures = 0;
    sim::Time quarantined_until = 0;
  };

  /// Sends `req` to `peer` through the transport and awaits the Response,
  /// with a timeout.
  sim::Task<Response> invoke(net::PeerId peer, Request req);

  /// Runs `req` against replicas in preference order with the retry rules:
  /// Nack/Timeout -> jittered backoff, next replica; anything else is
  /// final.  Exhausting max_attempts or op_deadline -> RetryExhausted.
  sim::Task<Response> with_retries(Request req);

  /// The peers_ index to use for attempt number `attempt`: rotates the
  /// preference order over replicas that are up and not quarantined,
  /// falling back to any up replica when everything healthy is demoted.
  /// -1 when every replica is down.
  int pick_replica(int attempt);

  /// Feeds one attempt's outcome into the health table.
  void note_result(size_t idx, bool responsive);

  /// Decorrelated-jitter growth: uniform in [base, min(cap, 3 x prev)].
  sim::Duration next_backoff(sim::Duration prev);

  sim::Simulation& sim_;
  ClientConfig cfg_;
  int site_;
  sim::NodeId node_;
  /// Seeded from the node id, NOT forked from the simulation rng: a fork
  /// draws from (and so perturbs) the parent stream, which would shift
  /// every seeded test that predates client-side jitter.
  sim::Rng rng_;
  /// Serving replicas, in preference order, as transport addresses.
  std::vector<net::PeerId> peers_;
  /// Owned sim backend (null when a transport was injected).
  std::unique_ptr<net::SimTransport> own_transport_;
  net::Transport* transport_;
  std::vector<ReplicaHealth> health_;
  ClientStats stats_;
};

}  // namespace music::core

// The session/handle layer (core/session.h) completes the client API:
// CriticalSection, Session, and the with_lock definition.  Call sites that
// use any of those include it directly — it is kept out of this header so
// the many translation units that only speak the wire-level client don't
// pay for (or get perturbed by) the inline session layer.
