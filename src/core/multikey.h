// Multi-key critical sections (§III-A).
//
// "The semantics can easily be extended by following the deadlock-avoidance
//  rule that locks are always acquired in lexicographic order, and an
//  acquireLock on multiple keys is successful only if it is individually
//  successful for all the keys in the key set."
//
// MultiKeySection implements exactly that on top of MusicClient: it
// createLockRefs and acquires each key in lexicographic order, exposes
// critical operations on any key in the set, and releases in reverse
// order.  If any acquisition fails, everything already acquired is rolled
// back (released / lock references evicted), so a failed multi-acquire
// leaves no residue beyond orphan refs the failure detector collects.
#pragma once

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/client.h"

namespace music::core {

/// RAII-styled (but explicitly driven: coroutines cannot release in a
/// destructor) multi-key critical section.
class MultiKeySection {
 public:
  /// `keys` in any order; duplicates are ignored.
  MultiKeySection(MusicClient& client, std::vector<Key> keys)
      : client_(client) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    keys_ = std::move(keys);
  }

  MultiKeySection(const MultiKeySection&) = delete;
  MultiKeySection& operator=(const MultiKeySection&) = delete;

  /// Acquires every key, in lexicographic order.  Returns Ok only if all
  /// acquisitions succeeded; otherwise rolls back and reports the first
  /// failure.  Idempotent per section object (second call is a no-op Ok).
  sim::Task<Status> acquire_all();

  /// Releases every held key, in reverse lexicographic order.  Safe to call
  /// after a failed acquire_all (releases whatever is held).
  sim::Task<Status> release_all();

  /// Critical operations on a key of the set (NotLockHolder if the key is
  /// not part of this section or the section is not held).
  sim::Task<Status> put(const Key& key, Value value);
  sim::Task<Result<Value>> get(const Key& key);

  /// True once acquire_all succeeded (and before release_all).
  bool held() const { return held_; }

  /// The lock reference held for `key` (kNoLockRef if none).
  LockRef ref_of(const Key& key) const {
    auto it = refs_.find(key);
    return it == refs_.end() ? kNoLockRef : it->second;
  }

  const std::vector<Key>& keys() const { return keys_; }

 private:
  MusicClient& client_;
  std::vector<Key> keys_;            // lexicographic order
  std::map<Key, LockRef> refs_;      // acquired so far
  bool held_ = false;
};

}  // namespace music::core
