#include "core/multikey.h"

namespace music::core {

sim::Task<Status> MultiKeySection::acquire_all() {
  if (held_) co_return Status::Ok();
  for (const Key& key : keys_) {
    auto ref = co_await client_.create_lock_ref(key);
    if (!ref.ok()) {
      co_await release_all();
      co_return ref.status();
    }
    refs_[key] = ref.value();
    auto acq = co_await client_.acquire_lock_blocking(key, ref.value());
    if (!acq.ok()) {
      // Not granted: evict the reference, then roll everything back.
      co_await client_.remove_lock_ref(key, ref.value());
      refs_.erase(key);
      co_await release_all();
      co_return acq;
    }
  }
  held_ = true;
  co_return Status::Ok();
}

sim::Task<Status> MultiKeySection::release_all() {
  Status worst = Status::Ok();
  // Reverse lexicographic order (harmless either way for correctness, but
  // symmetric with the acquisition order).
  for (auto it = keys_.rbegin(); it != keys_.rend(); ++it) {
    auto found = refs_.find(*it);
    if (found == refs_.end()) continue;
    auto st = co_await client_.release_lock(*it, found->second);
    if (!st.ok() && worst.ok()) worst = st;
    refs_.erase(found);
  }
  held_ = false;
  co_return worst;
}

sim::Task<Status> MultiKeySection::put(const Key& key, Value value) {
  auto it = refs_.find(key);
  if (!held_ || it == refs_.end()) co_return OpStatus::NotLockHolder;
  co_return co_await client_.critical_put(key, it->second, std::move(value));
}

sim::Task<Result<Value>> MultiKeySection::get(const Key& key) {
  auto it = refs_.find(key);
  if (!held_ || it == refs_.end()) {
    co_return Result<Value>::Err(OpStatus::NotLockHolder);
  }
  co_return co_await client_.critical_get(key, it->second);
}

}  // namespace music::core
