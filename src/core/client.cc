#include "core/client.h"

#include <algorithm>
#include <utility>

#include "sim/span.h"

namespace music::core {

namespace {

/// Replica-side request wrapper: runs the dispatched coroutine and hands
/// the response to the transport's completion.  Named free-function
/// coroutine with by-value user-ctor parameters (the GCC-12-safe shape).
sim::Task<void> serve_transport(MusicReplica& rep, wire::Request req,
                                net::RespondFn respond) {
  Response resp = co_await execute(rep, std::move(req));
  respond(std::move(resp));
}

}  // namespace

/// The replica-side serving glue both transports share: dispatch each
/// arriving Request through execute() as a fresh coroutine.
net::ServeRequestFn serve_request_fn(MusicReplica& rep) {
  MusicReplica* target = &rep;
  return [target](wire::Request req, net::RespondFn respond) {
    sim::spawn(target->sim_ref(),
               serve_transport(*target, std::move(req), std::move(respond)));
  };
}

/// Binds `rep` as a client-seam endpoint of `transport` (shared by the
/// MusicClient sim ctor and hosting code that assembles transports by hand).
void bind_replica(net::SimTransport& transport, MusicReplica& rep) {
  transport.bind(rep.node(), net::SimEndpoint{&rep.service(),
                                              serve_request_fn(rep), nullptr});
}

sim::Task<Response> execute(MusicReplica& replica, Request req) {
  switch (req.op) {
    case Request::Op::CreateLockRef: {
      auto r = co_await replica.create_lock_ref(req.key);
      if (!r.ok()) co_return Response(r.status());
      co_return Response(OpStatus::Ok, r.value(), Value(), {});
    }
    case Request::Op::AcquireLock: {
      auto r = co_await replica.acquire_lock(req.key, req.ref);
      co_return Response(r.status());
    }
    case Request::Op::CriticalPut: {
      auto r = co_await replica.critical_put(req.key, req.ref, req.value);
      co_return Response(r.status());
    }
    case Request::Op::CriticalGet: {
      auto r = co_await replica.critical_get(req.key, req.ref);
      if (!r.ok()) co_return Response(r.status());
      co_return Response(OpStatus::Ok, req.ref, r.value(), {});
    }
    case Request::Op::CriticalDelete: {
      auto r = co_await replica.critical_delete(req.key, req.ref);
      co_return Response(r.status());
    }
    case Request::Op::ReleaseLock: {
      auto r = co_await replica.release_lock(req.key, req.ref);
      co_return Response(r.status());
    }
    case Request::Op::ForcedRelease: {
      auto r = co_await replica.forced_release(req.key, req.ref);
      co_return Response(r.status());
    }
    case Request::Op::PutEventual: {
      auto r = co_await replica.put_eventual(req.key, req.value);
      co_return Response(r.status());
    }
    case Request::Op::GetEventual: {
      auto r = co_await replica.get_eventual(req.key);
      if (!r.ok()) co_return Response(r.status());
      co_return Response(OpStatus::Ok, req.ref, r.value(), {});
    }
    case Request::Op::GetAllKeys: {
      auto r = co_await replica.get_all_keys(req.key);
      if (!r.ok()) co_return Response(r.status());
      co_return Response(OpStatus::Ok, 0, Value(), r.value());
    }
    case Request::Op::Batch: {
      auto rs =
          co_await replica.execute_batch(req.key, req.ref, std::move(req.batch));
      Response resp(batch_status(rs));
      resp.batch = std::move(rs);
      co_return resp;
    }
  }
  co_return Response(OpStatus::Nack);
}

MusicClient::MusicClient(sim::Simulation& sim, sim::Network& net,
                         std::vector<MusicReplica*> replicas, ClientConfig cfg,
                         int site)
    : sim_(sim),
      cfg_(cfg),
      site_(site),
      node_(net.add_node(site)),
      rng_(0x636c69656e74ull ^ (static_cast<uint64_t>(node_) * 0x9e3779b9ull)),
      health_(replicas.size()) {
  own_transport_ = std::make_unique<net::SimTransport>(sim, net);
  peers_.reserve(replicas.size());
  for (MusicReplica* rep : replicas) {
    peers_.push_back(rep->node());
    bind_replica(*own_transport_, *rep);
  }
  transport_ = own_transport_.get();
}

MusicClient::MusicClient(sim::Simulation& sim, net::Transport& transport,
                         std::vector<net::PeerId> peers, ClientConfig cfg,
                         int site, net::PeerId node)
    : sim_(sim),
      cfg_(cfg),
      site_(site),
      node_(node),
      rng_(0x636c69656e74ull ^ (static_cast<uint64_t>(node_) * 0x9e3779b9ull)),
      peers_(std::move(peers)),
      transport_(&transport),
      health_(peers_.size()) {}

int MusicClient::pick_replica(int attempt) {
  size_t n = peers_.size();
  std::vector<size_t> eligible;
  eligible.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!transport_->peer_up(peers_[i])) continue;
    if (health_[i].quarantined_until > sim_.now()) continue;
    eligible.push_back(i);
  }
  if (eligible.empty()) {
    // Everything healthy is quarantined; probe the up replicas anyway
    // rather than stalling the operation.
    for (size_t i = 0; i < n; ++i) {
      if (transport_->peer_up(peers_[i])) eligible.push_back(i);
    }
  }
  if (eligible.empty()) return -1;
  return static_cast<int>(
      eligible[static_cast<size_t>(attempt) % eligible.size()]);
}

void MusicClient::note_result(size_t idx, bool responsive) {
  ReplicaHealth& h = health_[idx];
  if (responsive) {
    h.consecutive_failures = 0;
    h.quarantined_until = 0;
    return;
  }
  ++h.consecutive_failures;
  if (h.consecutive_failures >= cfg_.health_fail_threshold) {
    if (sim_.now() >= h.quarantined_until) ++stats_.demotions;
    h.quarantined_until = sim_.now() + cfg_.health_quarantine;
  }
}

sim::Duration decorrelated_backoff(const ClientConfig& cfg, sim::Rng& rng,
                                   sim::Duration prev) {
  // The jitter math lives at the sim layer (sim/rng.h) so the TCP reconnect
  // loop — which sits below src/core — shares the exact same scheme.
  return sim::decorrelated_backoff(cfg.retry_backoff_base, cfg.retry_backoff_cap,
                                   prev, rng);
}

sim::Duration MusicClient::next_backoff(sim::Duration prev) {
  return decorrelated_backoff(cfg_, rng_, prev);
}

sim::Task<Response> MusicClient::invoke(net::PeerId peer, Request req) {
  auto reply =
      transport_->invoke(node_, peer, std::move(req), cfg_.overhead_bytes);
  auto got = co_await sim::await_with_timeout<Response>(sim_, reply,
                                                        cfg_.request_timeout);
  if (!got) co_return Response(OpStatus::Timeout);
  co_return *got;
}

sim::Task<Response> MusicClient::with_retries(Request req) {
  sim::Time deadline =
      cfg_.op_deadline > 0 ? sim_.now() + cfg_.op_deadline : sim::kTimeNever;
  sim::Duration pause = cfg_.retry_backoff_base;
  for (int attempt = 0; attempt < cfg_.max_attempts; ++attempt) {
    int idx = pick_replica(attempt);
    if (idx < 0) continue;  // everything down: fail fast, no sleeps
    ++stats_.attempts;
    Response r = co_await invoke(peers_[static_cast<size_t>(idx)], req);
    note_result(static_cast<size_t>(idx), !is_retryable(r.status));
    if (!is_retryable(r.status)) co_return r;
    ++stats_.retries;
    if (sim_.now() >= deadline) {
      ++stats_.deadline_exceeded;
      co_return Response(OpStatus::RetryExhausted);
    }
    pause = next_backoff(pause);
    co_await sim::sleep_for(sim_, pause);
  }
  ++stats_.retry_exhausted;
  co_return Response(OpStatus::RetryExhausted);
}

sim::Task<Result<LockRef>> MusicClient::create_lock_ref(Key key) {
  sim::OpSpan span(sim_, "client.create_lock_ref", site_, node_,
                   key);
  // NOTE: a retried createLockRef whose first attempt actually committed
  // (ack lost) leaves an orphan lockRef in the queue; §IV-B: it is removed
  // by forcedRelease when it reaches the head.
  Response r = co_await with_retries(
      Request(Request::Op::CreateLockRef, std::move(key), 0, Value()));
  if (r.status != OpStatus::Ok) co_return Result<LockRef>::Err(r.status);
  co_return Result<LockRef>::Ok(r.ref);
}

sim::Task<Status> MusicClient::acquire_lock(Key key, LockRef ref) {
  // A single poll at the preferred replica; NotYetHolder is a normal
  // outcome, not a failure (acquire_lock_blocking drives the polling).
  Response r = co_await invoke(
      peers_.front(),
      Request(Request::Op::AcquireLock, std::move(key), ref, Value()));
  co_return Status(r.status);
}

sim::Task<Status> MusicClient::acquire_lock_blocking(Key key, LockRef ref) {
  sim::OpSpan span(sim_, "client.acquire_lock", site_, node_,
                   key);
  // Listing 1: while (acquireLock(key, lockRef) != true) skip;  — with the
  // paper's "standard back-off mechanisms".
  OpStatus last = OpStatus::Timeout;
  for (int attempt = 0; attempt < cfg_.max_poll_attempts; ++attempt) {
    // Stick with one replica for 8 polls before rotating; the health table
    // steers polls away from dead/gray replicas.
    int idx = pick_replica(attempt / 8);
    if (idx < 0) continue;
    ++stats_.attempts;
    Response r = co_await invoke(
        peers_[static_cast<size_t>(idx)],
        Request(Request::Op::AcquireLock, key, ref, Value()));
    last = r.status;
    note_result(static_cast<size_t>(idx), !is_retryable(last));
    // Poll again on NotYetHolder (not yet first in queue) and on the
    // transient statuses; everything else is a final answer.
    if (!is_retryable(last) && last != OpStatus::NotYetHolder) {
      co_return Status(last);
    }
    co_await sim::sleep_for(sim_, cfg_.poll_backoff);
  }
  co_return Status(OpStatus::Timeout);
}

sim::Task<Status> MusicClient::critical_put(Key key, LockRef ref,
                                            Value value) {
  sim::OpSpan span(sim_, "client.critical_put", site_, node_,
                   key);
  Response r = co_await with_retries(Request(
      Request::Op::CriticalPut, std::move(key), ref, std::move(value)));
  co_return Status(r.status);
}

sim::Task<Result<Value>> MusicClient::critical_get(Key key, LockRef ref) {
  sim::OpSpan span(sim_, "client.critical_get", site_, node_,
                   key);
  Response r = co_await with_retries(
      Request(Request::Op::CriticalGet, std::move(key), ref, Value()));
  if (r.status != OpStatus::Ok) co_return Result<Value>::Err(r.status);
  co_return Result<Value>::Ok(std::move(r.value));
}

sim::Task<Status> MusicClient::critical_delete(Key key, LockRef ref) {
  sim::OpSpan span(sim_, "client.critical_delete", site_, node_,
                   key);
  Response r = co_await with_retries(
      Request(Request::Op::CriticalDelete, std::move(key), ref, Value()));
  co_return Status(r.status);
}

sim::Task<std::vector<BatchOpResult>> MusicClient::execute_batch(
    Key key, LockRef ref, std::vector<BatchOp> ops) {
  sim::OpSpan span(sim_, "client.batch", site_, node_, key);
  size_t n = ops.size();
  Response r = co_await with_retries(
      Request(Request::Op::Batch, std::move(key), ref, std::move(ops)));
  if (r.batch.size() != n) {
    // Wire-level failure (no replica answer): fail every sub-op uniformly
    // so callers always get a result vector aligned with their ops.
    r.batch.assign(n, BatchOpResult(r.status));
  }
  co_return std::move(r.batch);
}

sim::Task<Status> MusicClient::release_lock(Key key, LockRef ref) {
  sim::OpSpan span(sim_, "client.release_lock", site_, node_,
                   key);
  Response r = co_await with_retries(
      Request(Request::Op::ReleaseLock, std::move(key), ref, Value()));
  co_return Status(r.status);
}

sim::Task<Status> MusicClient::remove_lock_ref(Key key, LockRef ref) {
  co_return co_await release_lock(std::move(key), ref);
}

sim::Task<Status> MusicClient::forced_release(Key key, LockRef ref) {
  sim::OpSpan span(sim_, "client.forced_release", site_, node_,
                   key);
  Response r = co_await with_retries(
      Request(Request::Op::ForcedRelease, std::move(key), ref, Value()));
  co_return Status(r.status);
}

sim::Task<Status> MusicClient::put(Key key, Value value) {
  sim::OpSpan span(sim_, "client.put_eventual", site_, node_,
                   key);
  Response r = co_await with_retries(Request(
      Request::Op::PutEventual, std::move(key), 0, std::move(value)));
  co_return Status(r.status);
}

sim::Task<Result<Value>> MusicClient::get(Key key) {
  sim::OpSpan span(sim_, "client.get_eventual", site_, node_,
                   key);
  Response r = co_await with_retries(
      Request(Request::Op::GetEventual, std::move(key), 0, Value()));
  if (r.status != OpStatus::Ok) co_return Result<Value>::Err(r.status);
  co_return Result<Value>::Ok(std::move(r.value));
}

sim::Task<Result<std::vector<Key>>> MusicClient::get_all_keys(Key prefix) {
  Response r = co_await with_retries(
      Request(Request::Op::GetAllKeys, std::move(prefix), 0, Value()));
  if (r.status != OpStatus::Ok) {
    co_return Result<std::vector<Key>>::Err(r.status);
  }
  co_return Result<std::vector<Key>>::Ok(std::move(r.keys));
}

}  // namespace music::core
