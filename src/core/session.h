// The session/handle layer of the client API: critical sections as objects.
//
// CriticalSection owns the createLockRef -> acquireLock -> releaseLock
// lifecycle that every caller of the raw client had to spell out, and
// exposes the critical ops without (key, ref) threading:
//
//   CriticalSection cs(client, "inventory");
//   if ((co_await cs.enter()).ok()) {
//     co_await cs.put(Value("7"));
//     co_await cs.exit();
//   }
//
// Session pipelines: put/get/del enqueue without blocking, flush() ships
// everything as ONE Batch request, executed by the replica with coalesced
// quorum rounds (see MusicReplica::execute_batch) — N independent-key puts
// cost one value-quorum WAN round trip instead of N:
//
//   auto s = cs.session();
//   s.put("a", Value("1"));     // enqueued, no I/O
//   s.put("b", Value("2"));
//   size_t ix = s.get("c");     // result index for after the flush
//   co_await s.flush();         // one wire request, coalesced rounds
//   use(s.results()[ix]);
//
// Failure surface: flush() returns the roll-up (first non-Ok/NotFound
// sub-op status); per-op outcomes stay in results().  A forcedRelease
// landing mid-batch fails the tail deterministically with NotLockHolder.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/client.h"

namespace music::core {

/// A pipelined batch of critical ops under one held lock.  put/get/del
/// enqueue and return the op's index into results(); flush() ships the
/// batch.  After a flush, the next enqueue starts a fresh batch (the
/// session object is reusable for as long as the lock is held).
///
/// Session (and CriticalSection below) bind the shared api::ClientApi seam,
/// not the concrete client: the same handle code runs over one MUSIC group
/// (core::MusicClient) or a sharded deployment (cluster::Client).
class Session {
 public:
  /// Usually obtained via CriticalSection::session().
  Session(api::ClientApi& client, Key key, LockRef ref)
      : client_(client), key_(std::move(key)), ref_(ref) {}

  /// Enqueues a critical put of `key` (any key, not just the lock's).
  size_t put(Key key, Value value) {
    return enqueue(BatchOp(BatchOp::Kind::Put, std::move(key), std::move(value)));
  }
  /// Enqueues a critical put of the lock key itself.
  size_t put(Value value) { return put(key_, std::move(value)); }

  /// Enqueues a critical get; read results()[index] after flush().
  size_t get(Key key) {
    return enqueue(BatchOp(BatchOp::Kind::Get, std::move(key), Value()));
  }
  size_t get() { return get(key_); }

  /// Enqueues a critical delete (tombstone write).
  size_t del(Key key) {
    return enqueue(BatchOp(BatchOp::Kind::Delete, std::move(key), Value()));
  }
  size_t del() { return del(key_); }

  /// Ships the queued ops as one Batch request (empty queue: no-op, Ok).
  /// Returns the batch roll-up status; per-op outcomes land in results().
  sim::Task<Status> flush();

  /// Ops queued and not yet flushed.
  size_t pending() const { return flushed_ ? 0 : ops_.size(); }
  /// The last flushed batch's ops (aligned with results()).
  const std::vector<BatchOp>& ops() const { return ops_; }
  /// Per-op outcomes of the last flush, aligned with the enqueue indices.
  const std::vector<BatchOpResult>& results() const { return results_; }

  const Key& key() const { return key_; }
  LockRef ref() const { return ref_; }

 private:
  size_t enqueue(BatchOp op) {
    if (flushed_) {
      ops_.clear();
      results_.clear();
      flushed_ = false;
    }
    ops_.push_back(std::move(op));
    return ops_.size() - 1;
  }

  api::ClientApi& client_;
  Key key_;
  LockRef ref_;
  std::vector<BatchOp> ops_;
  std::vector<BatchOpResult> results_;
  bool flushed_ = false;
};

/// RAII handle for one critical section: owns the lockRef lifecycle and
/// exposes the critical ops bound to (key, ref).  Move-only.  If the
/// handle is destroyed while the lock is still held, the release is issued
/// fire-and-forget (prefer an explicit exit(), which reports the status).
class CriticalSection {
 public:
  CriticalSection(api::ClientApi& client, Key key)
      : client_(&client), key_(std::move(key)) {}

  CriticalSection(CriticalSection&& other) noexcept
      : client_(other.client_),
        key_(std::move(other.key_)),
        ref_(other.ref_),
        held_(other.held_) {
    other.client_ = nullptr;
    other.held_ = false;
    other.ref_ = kNoLockRef;
  }
  CriticalSection(const CriticalSection&) = delete;
  CriticalSection& operator=(const CriticalSection&) = delete;
  CriticalSection& operator=(CriticalSection&&) = delete;

  ~CriticalSection();

  /// createLockRef + acquireLock polling (Listing 1's entry).  On failure
  /// the lockRef is evicted from the queue (unless the lock store already
  /// preempted it) and the handle stays un-held; enter() may be retried.
  sim::Task<Status> enter();

  /// releaseLock.  Idempotent: Ok if the lock is not held.
  sim::Task<Status> exit();

  /// Forgets the lock without releasing (after a preemption the ref is no
  /// longer ours to release; the destructor must not try).
  void abandon() {
    held_ = false;
    ref_ = kNoLockRef;
  }

  bool held() const { return held_; }
  LockRef ref() const { return ref_; }
  const Key& key() const { return key_; }

  // ---- Critical ops under the held lock (immediate, one op per trip). ------

  sim::Task<Status> put(Key key, Value value);
  sim::Task<Status> put(Value value);
  sim::Task<Result<Value>> get(Key key);
  sim::Task<Result<Value>> get();
  sim::Task<Status> del(Key key);
  sim::Task<Status> del();

  /// A pipelined batch session under this lock (see Session).
  Session session() { return Session(*client_, key_, ref_); }

 private:
  /// Op outcome bookkeeping: a NotLockHolder answer means the lock was
  /// forcibly taken — stop treating it as held.
  void note(OpStatus s) {
    if (s == OpStatus::NotLockHolder) abandon();
  }

  api::ClientApi* client_;
  Key key_;
  LockRef ref_ = kNoLockRef;
  bool held_ = false;
};

// ---- with_lock: Listing 1 over the handle. --------------------------------

template <typename F>
sim::Task<Status> MusicClient::with_lock(Key key, F& body) {
  sim::OpSpan span(sim_, "client.critical_section", site_, node_, key);
  CriticalSection cs(*this, std::move(key));
  auto acq = co_await cs.enter();
  if (!acq.ok()) co_return acq;
  Status body_status = co_await body(cs.ref());
  if (body_status.status() == OpStatus::NotLockHolder) {
    // Preempted mid-section: the lock is no longer ours to release.
    cs.abandon();
    co_return body_status;
  }
  co_await cs.exit();
  co_return body_status;
}

}  // namespace music::core
