#include "core/music.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <utility>

#include "sim/span.h"

namespace music::core {

namespace {

/// Tombstone payload written by criticalDelete; reads map it to NotFound.
const std::string kTombstone = "\x01__music_tombstone__";

bool is_tombstone(const Value& v) { return v.data == kTombstone; }

/// Codec for the !st row: "<ref>:<origin_us>".
std::string encode_origin(LockRef ref, sim::Time at) {
  return std::to_string(ref) + ":" + std::to_string(at);
}

std::optional<std::pair<LockRef, sim::Time>> parse_origin(const std::string& s) {
  size_t colon = s.find(':');
  if (colon == std::string::npos) return std::nullopt;
  LockRef ref = 0;
  sim::Time at = 0;
  auto r1 = std::from_chars(s.data(), s.data() + colon, ref);
  auto r2 = std::from_chars(s.data() + colon + 1, s.data() + s.size(), at);
  if (r1.ec != std::errc{} || r2.ec != std::errc{}) return std::nullopt;
  return std::make_pair(ref, at);
}

}  // namespace

MusicReplica::MusicReplica(ds::StoreCluster& store, ls::LockBackend& locks,
                           MusicConfig cfg, int site)
    : store_(store),
      locks_(locks),
      cfg_(cfg),
      site_(site),
      node_(store.network().add_node(site)),
      service_(store.simulation(), cfg.service),
      v2s_(cfg.t_max_cs) {}

ds::StoreReplica& MusicReplica::coord() {
  int n = store_.num_replicas();
  for (int attempt = 0; attempt < n; ++attempt) {
    auto& r = store_.replica(static_cast<int>(coord_rr_++ % static_cast<size_t>(n)));
    if (r.site() == site_ && !r.down()) return r;
  }
  return store_.replica_at_site(site_);  // fallback: any live node
}

sim::Task<Status> MusicReplica::holder_guard(Key key, LockRef ref) {
  auto peek = co_await locks_.backend_peek(site_, key);
  if (!peek.ok()) co_return OpStatus::Nack;
  const auto& head = peek.value().head;
  if (!head.has_value() || ref > *head) {
    // lockRef not first yet, or local store not yet updated (§IV).
    co_return OpStatus::NotYetHolder;
  }
  if (ref < *head) {
    // Lock forcibly released: "youAreNoLongerLockHolder".
    ++stats_.rejected_not_holder;
    co_return OpStatus::NotLockHolder;
  }
  co_return Status::Ok();
}

sim::Task<std::optional<sim::Time>> MusicReplica::origin_for(Key key,
                                                             LockRef ref) {
  auto it = origin_cache_.find(key);
  if (it != origin_cache_.end() && it->second.ref == ref) {
    co_return it->second.at;
  }
  // Fall back to the (eventually consistent) !st row written by whichever
  // replica granted the lock.
  auto r = co_await coord().get(start_time_key(key), ds::Consistency::One);
  if (!r.ok()) co_return std::nullopt;
  auto parsed = parse_origin(r.value().value.data);
  if (!parsed || parsed->first != ref) co_return std::nullopt;
  origin_cache_[key] = Origin(ref, parsed->second);
  co_return parsed->second;
}

ScalarTs MusicReplica::next_ts(const Key& key, LockRef ref, sim::Duration e) {
  sim::Duration clamped = std::clamp<sim::Duration>(e, 0, cfg_.t_max_cs - 1);
  ScalarTs base = v2s_.encode(ref, clamped);
  ScalarTs& last = last_ts_[key];
  ScalarTs ts = std::max(base, last + 1);
  // A same-microsecond burst can bump past the critical-section window only
  // after ~T consecutive same-instant writes; that would be a model bug.
  assert(ts < ref * v2s_.span() + v2s_.span());
  last = ts;
  return ts;
}

sim::Task<Result<LockRef>> MusicReplica::create_lock_ref(Key key) {
  sim::OpSpan span(sim(), "music.create_lock_ref", site_, node_, key);
  ++stats_.create_lock_ref;
  watch_key(key);
  auto r = co_await locks_.backend_generate(site_, key);
  co_return r;
}

sim::Task<Status> MusicReplica::acquire_lock(Key key, LockRef ref) {
  sim::OpSpan span(sim(), "music.acquire_lock", site_, node_, key);
  ++stats_.acquire_attempts;
  watch_key(key);
  auto guard = co_await holder_guard(key, ref);
  if (!guard.ok()) co_return guard;

  // Granted path.  Fix the critical section's time origin now, before any
  // synchronization write, so every stamp of this critical section measures
  // elapsed time from the same instant (a later criticalPut must always
  // out-stamp the synchronization re-write).
  sim::Time origin;
  auto cached = origin_cache_.find(key);
  if (cached != origin_cache_.end() && cached->second.ref == ref) {
    origin = cached->second.at;  // idempotent re-acquire
  } else {
    origin = sim().now();
    origin_cache_[key] = Origin(ref, origin);
  }
  auto elapsed = [&] {
    return std::clamp<sim::Duration>(sim().now() - origin, 0,
                                     cfg_.t_max_cs - 1);
  };

  // synchFlag quorum read (the grant's only cost in the failure-free case).
  auto sf = co_await coord().get(synch_flag_key(key), ds::Consistency::Quorum);
  if (!sf.ok() && sf.status() != OpStatus::NotFound) {
    co_return OpStatus::Nack;
  }
  bool need_sync = sf.ok() && sf.value().value.data == "1";
  if (cfg_.test_skip_synchronization) need_sync = false;

  if (need_sync) {
    // §IV-B: a forced release happened; the data store's state is unknown.
    // Re-write whatever a quorum read returns under our lockRef (resolving
    // the paper's non-determinism in the true value), then reset the flag.
    sim::OpSpan sync_span(sim(), "music.synchronize", site_, node_, key);
    ++stats_.synchronizations;
    auto cur = co_await coord().get(data_key(key), ds::Consistency::Quorum);
    if (!cur.ok() && cur.status() != OpStatus::NotFound) {
      co_return OpStatus::Nack;
    }
    if (cur.ok()) {
      auto put = co_await coord().put(
          data_key(key), ds::Cell(cur.value().value, next_ts(key, ref, elapsed())),
          ds::Consistency::Quorum);
      if (!put.ok()) co_return OpStatus::Nack;
    }
    auto reset = co_await coord().put(
        synch_flag_key(key),
        ds::Cell(Value("0"), next_ts(key, ref, elapsed())),
        ds::Consistency::Quorum);
    if (!reset.ok()) co_return OpStatus::Nack;
  }

  // Record the critical section's start (the paper's startTime column,
  // §VI): an eventual write other replicas converge on.
  auto st = co_await coord().put(
      start_time_key(key),
      ds::Cell(Value(encode_origin(ref, origin)), next_ts(key, ref, elapsed())),
      ds::Consistency::One);
  if (!st.ok()) co_return OpStatus::Nack;

  ++stats_.acquire_granted;
  note_activity(key);
  co_return Status::Ok();
}

sim::Task<Status> MusicReplica::critical_put(Key key, LockRef ref,
                                             Value value) {
  sim::OpSpan span(sim(), "music.critical_put", site_, node_, key);
  auto guard = co_await holder_guard(key, ref);
  if (!guard.ok()) co_return guard;
  auto origin = co_await origin_for(key, ref);
  if (!origin) {
    // The grant's startTime has not reached this replica yet; the client
    // retries (usually at the replica that granted the lock).
    co_return OpStatus::Nack;
  }
  sim::Duration el = sim().now() - *origin;
  if (el >= cfg_.t_max_cs) {
    ++stats_.rejected_expired;
    co_return OpStatus::CsExpired;
  }
  ScalarTs ts = next_ts(key, ref, el);

  if (cfg_.put_mode == PutMode::Quorum) {
    // MUSIC: one quorum write, stamped with the v2s vector timestamp.
    auto st = co_await coord().put(data_key(key), ds::Cell(value, ts),
                                   ds::Consistency::Quorum);
    if (!st.ok()) co_return st.status();
  } else {
    // MSCP: the same write through an LWT (4 round trips).  Trivial-capture
    // closure bound to a named lvalue (GCC 12; see ds::Cell note): `value`
    // lives in this frame past the co_await.
    const Value* vp = &value;
    ds::LwtUpdate update = [vp, ts](const std::optional<ds::Cell>&) {
      return ds::LwtDecision(true, *vp, ts);
    };
    auto r = co_await coord().lwt(data_key(key), update);
    if (!r.ok()) co_return r.status();
  }
  ++stats_.critical_puts;
  note_activity(key);
  co_return Status::Ok();
}

sim::Task<Result<Value>> MusicReplica::critical_get(Key key, LockRef ref) {
  sim::OpSpan span(sim(), "music.critical_get", site_, node_, key);
  auto guard = co_await holder_guard(key, ref);
  if (!guard.ok()) co_return Result<Value>::Err(guard.status());
  auto origin = co_await origin_for(key, ref);
  if (!origin) co_return Result<Value>::Err(OpStatus::Nack);
  if (sim().now() - *origin >= cfg_.t_max_cs) {
    ++stats_.rejected_expired;
    co_return Result<Value>::Err(OpStatus::CsExpired);
  }
  auto r = co_await coord().get(data_key(key), ds::Consistency::Quorum);
  if (!r.ok()) co_return Result<Value>::Err(r.status());
  if (is_tombstone(r.value().value)) {
    co_return Result<Value>::Err(OpStatus::NotFound);
  }
  ++stats_.critical_gets;
  note_activity(key);
  co_return Result<Value>::Ok(r.value().value);
}

sim::Task<Status> MusicReplica::critical_delete(Key key, LockRef ref) {
  co_return co_await critical_put(key, ref, Value(kTombstone));
}

sim::Task<std::vector<BatchOpResult>> MusicReplica::execute_batch(
    Key key, LockRef ref, std::vector<BatchOp> ops) {
  sim::OpSpan span(sim(), "music.batch", site_, node_, key);
  ++stats_.batches;
  stats_.batched_ops += ops.size();
  std::vector<BatchOpResult> results(ops.size());
  size_t next = 0;
  OpStatus abort = OpStatus::Ok;

  while (next < ops.size()) {
    // ---- Collect the next round: consecutive same-class ops (writes =
    // put/delete, reads = get) on distinct keys.  A repeated key closes the
    // round so same-key sequences keep program order.
    bool writes = ops[next].kind != BatchOp::Kind::Get;
    std::vector<size_t> round;
    round.push_back(next);
    for (size_t j = next + 1; j < ops.size(); ++j) {
      if ((ops[j].kind != BatchOp::Kind::Get) != writes) break;
      bool dup = false;
      for (size_t r : round) dup = dup || ops[r].key == ops[j].key;
      if (dup) break;
      round.push_back(j);
    }

    // ---- Re-check holder guard and T bound once per round, exactly as the
    // unbatched ops do per op.  A failure here aborts this round's ops and
    // the whole tail (filled below).
    auto guard = co_await holder_guard(key, ref);
    if (!guard.ok()) {
      abort = guard.status();
      break;
    }
    auto origin = co_await origin_for(key, ref);
    if (!origin) {
      abort = OpStatus::Nack;
      break;
    }
    sim::Duration el = sim().now() - *origin;
    if (el >= cfg_.t_max_cs) {
      ++stats_.rejected_expired;
      abort = OpStatus::CsExpired;
      break;
    }

    OpStatus round_failed = OpStatus::Ok;
    if (writes && cfg_.put_mode == PutMode::Quorum) {
      // MUSIC: the whole round as one multi-cell quorum write — one value
      // quorum WAN round trip regardless of the round's size.
      std::vector<ds::WriteCell> cells;
      cells.reserve(round.size());
      for (size_t r : round) {
        const BatchOp& op = ops[r];
        Value v =
            op.kind == BatchOp::Kind::Delete ? Value(kTombstone) : op.value;
        cells.emplace_back(data_key(op.key),
                           ds::Cell(std::move(v), next_ts(op.key, ref, el)));
      }
      auto sts =
          co_await coord().put_cells(std::move(cells), ds::Consistency::Quorum);
      for (size_t i = 0; i < round.size(); ++i) {
        results[round[i]] = BatchOpResult(sts[i].status());
        if (sts[i].ok()) {
          ++stats_.critical_puts;
        } else if (round_failed == OpStatus::Ok) {
          round_failed = sts[i].status();
        }
      }
    } else if (writes) {
      // MSCP: LWT writes are four-round consensus ops — there is no
      // coalescing win, so run them sequentially as critical_put would,
      // with a fresh elapsed/expiry check per op.
      for (size_t r : round) {
        if (round_failed != OpStatus::Ok) {
          results[r] = BatchOpResult(round_failed);
          continue;
        }
        const BatchOp& op = ops[r];
        sim::Duration e2 = sim().now() - *origin;
        if (e2 >= cfg_.t_max_cs) {
          ++stats_.rejected_expired;
          round_failed = OpStatus::CsExpired;
          results[r] = BatchOpResult(round_failed);
          continue;
        }
        ScalarTs ts = next_ts(op.key, ref, e2);
        Value v =
            op.kind == BatchOp::Kind::Delete ? Value(kTombstone) : op.value;
        const Value* vp = &v;
        ds::LwtUpdate update = [vp, ts](const std::optional<ds::Cell>&) {
          return ds::LwtDecision(true, *vp, ts);
        };
        auto w = co_await coord().lwt(data_key(op.key), update);
        results[r] = BatchOpResult(w.status());
        if (w.ok()) {
          ++stats_.critical_puts;
        } else {
          round_failed = w.status();
        }
      }
    } else {
      // Read round: one multi-cell quorum read.
      std::vector<Key> dkeys;
      dkeys.reserve(round.size());
      for (size_t r : round) dkeys.push_back(data_key(ops[r].key));
      auto rs =
          co_await coord().get_cells(std::move(dkeys), ds::Consistency::Quorum);
      for (size_t i = 0; i < round.size(); ++i) {
        auto& rr = rs[i];
        if (rr.ok() && is_tombstone(rr.value().value)) {
          results[round[i]] = BatchOpResult(OpStatus::NotFound);
        } else if (rr.ok()) {
          ++stats_.critical_gets;
          results[round[i]] =
              BatchOpResult(OpStatus::Ok, std::move(rs[i]).value().value);
        } else {
          results[round[i]] = BatchOpResult(rr.status());
          // NotFound is a normal answer, not a batch failure.
          if (rr.status() != OpStatus::NotFound &&
              round_failed == OpStatus::Ok) {
            round_failed = rr.status();
          }
        }
      }
    }

    next = round.back() + 1;
    if (round_failed != OpStatus::Ok) {
      abort = round_failed;
      break;
    }
    note_activity(key);
  }

  // Fail everything not yet executed with the aborting status, so a
  // mid-batch preemption yields a deterministic Ok-prefix / failed-tail.
  if (abort != OpStatus::Ok) {
    for (size_t i = next; i < ops.size(); ++i) {
      results[i] = BatchOpResult(abort);
    }
  }
  co_return results;
}

sim::Task<Status> MusicReplica::release_lock(Key key, LockRef ref) {
  sim::OpSpan span(sim(), "music.release_lock", site_, node_, key);
  auto peek = co_await locks_.backend_peek(site_, key);
  if (peek.ok() && peek.value().head.has_value() && ref < *peek.value().head) {
    co_return Status::Ok();  // lock has been forcibly released (§IV)
  }
  auto r = co_await locks_.backend_dequeue(site_, key, ref);
  if (!r.ok()) co_return r;
  auto it = origin_cache_.find(key);
  if (it != origin_cache_.end() && it->second.ref == ref) {
    origin_cache_.erase(it);
  }
  ++stats_.releases;
  co_return Status::Ok();
}

sim::Task<Status> MusicReplica::forced_release(Key key, LockRef ref) {
  sim::OpSpan span(sim(), "music.forced_release", site_, node_, key);
  auto peek = co_await locks_.backend_peek(site_, key);
  if (peek.ok() && peek.value().head.has_value() && ref < *peek.value().head) {
    co_return Status::Ok();  // lock was previously released
  }
  // Mark the data store dirty, stamped just past everything the preempted
  // holder can have written (lockRef + delta, §IV-B).  The quorum write
  // must complete before the dequeue so the next holder's synchFlag read
  // cannot miss it.
  auto sf = co_await coord().put(
      synch_flag_key(key),
      ds::Cell(Value("1"), v2s_.encode_forced_release(ref, cfg_.delta)),
      ds::Consistency::Quorum);
  if (!sf.ok()) co_return OpStatus::Nack;
  auto dq = co_await locks_.backend_dequeue(site_, key, ref);
  if (!dq.ok()) co_return dq;
  fd_observed_.erase(key);
  ++stats_.forced_releases;
  co_return Status::Ok();
}

sim::Task<Status> MusicReplica::put_eventual(Key key, Value value) {
  sim::OpSpan span(sim(), "music.put_eventual", site_, node_, key);
  // Non-ECF write: stamped strictly inside lockRef 0's window, so any
  // criticalPut (ref >= 1) outranks it.  Intended for initialization and
  // lock-free keys.  Uses its own monotonic bump (NOT the critical-path
  // one, which lives in the current lockRef's window) and saturates at the
  // window's end rather than ever crossing into lockRef 1's.
  sim::Duration e = std::min<sim::Duration>(sim().now(), cfg_.t_max_cs - 1);
  ScalarTs base = v2s_.encode(0, e);
  ScalarTs& last = last_plain_ts_[key];
  ScalarTs ts = std::max(base, last + 1);
  ts = std::min(ts, v2s_.span() - 1);  // never outrank lockRef 1
  last = ts;
  co_return co_await coord().put(data_key(key), ds::Cell(value, ts),
                                 ds::Consistency::One);
}

sim::Task<Result<Value>> MusicReplica::get_eventual(Key key) {
  sim::OpSpan span(sim(), "music.get_eventual", site_, node_, key);
  auto r = co_await coord().get(data_key(key), ds::Consistency::One);
  if (!r.ok()) co_return Result<Value>::Err(r.status());
  if (is_tombstone(r.value().value)) {
    co_return Result<Value>::Err(OpStatus::NotFound);
  }
  co_return Result<Value>::Ok(r.value().value);
}

sim::Task<Result<Value>> MusicReplica::get_quorum_unlocked(Key key) {
  auto r = co_await coord().get(data_key(key), ds::Consistency::Quorum);
  if (!r.ok()) co_return Result<Value>::Err(r.status());
  if (is_tombstone(r.value().value)) {
    co_return Result<Value>::Err(OpStatus::NotFound);
  }
  co_return Result<Value>::Ok(r.value().value);
}

sim::Task<Result<std::vector<Key>>> MusicReplica::get_all_keys(Key prefix) {
  auto r = co_await coord().scan_local_keys(data_key(prefix));
  if (!r.ok()) co_return r;
  std::vector<Key> out;
  out.reserve(r.value().size());
  for (const auto& k : r.value()) {
    out.push_back(k.substr(3));  // strip "!d:"
  }
  co_return Result<std::vector<Key>>::Ok(std::move(out));
}

void MusicReplica::watch_key(const Key& key) { watched_[key] = true; }

void MusicReplica::note_activity(const Key& key) {
  auto it = fd_observed_.find(key);
  if (it != fd_observed_.end()) it->second.since = sim().now();
}

void MusicReplica::start_failure_detector() {
  if (fd_running_) return;
  fd_running_ = true;
  schedule_fd_tick();
}

void MusicReplica::schedule_fd_tick() {
  sim().schedule(cfg_.fd_interval, [this] {
    if (!fd_running_ || down()) return;
    sim::spawn(sim(), [](MusicReplica& self) -> sim::Task<void> {
      co_await self.fd_scan();
    }(*this));
    schedule_fd_tick();
  });
}

void MusicReplica::stop_failure_detector() { fd_running_ = false; }

sim::Task<void> MusicReplica::fd_scan() {
  sim::OpSpan span(sim(), "music.fd_scan", site_, node_);
  // Snapshot: forced releases during the scan may mutate the maps.
  std::vector<Key> keys;
  keys.reserve(watched_.size());
  for (const auto& [k, v] : watched_) {
    (void)v;
    keys.push_back(k);
  }
  for (const auto& key : keys) {
    auto peek = co_await locks_.backend_peek(site_, key);
    if (!peek.ok() || !peek.value().head.has_value()) {
      fd_observed_.erase(key);
      continue;
    }
    LockRef head = *peek.value().head;
    auto it = fd_observed_.find(key);
    if (it == fd_observed_.end() || it->second.head != head) {
      fd_observed_[key] = HeadObservation(head, sim().now());
      continue;
    }
    // Two preemption rules, per the paper:
    //   * a GRANTED holder (startTime known) is preempted when its critical
    //     section exceeds the T bound (§VI's startTime column exists for
    //     exactly this);
    //   * a head with NO startTime visible after the inactivity timeout is
    //     an orphan lockRef — created but never acquired (§IV-B) — and is
    //     removed.
    // Either can be wrong under partitions/slowness (false failure
    // detection, §IV-B), which ECF is designed to survive.
    auto origin = co_await origin_for(key, head);
    bool expired = origin && sim().now() - *origin >= cfg_.t_max_cs;
    bool orphan =
        !origin && sim().now() - it->second.since >= cfg_.holder_timeout;
    if (expired || orphan) {
      co_await forced_release(key, head);
    }
  }
}

void MusicReplica::set_down(bool down, bool amnesia) {
  service_.set_down(down);
  store_.network().set_node_down(node_, down);
  if (down && amnesia) {
    origin_cache_.clear();
    last_ts_.clear();
    fd_observed_.clear();
  }
  if (down) fd_running_ = false;
}

}  // namespace music::core
