// The shared client surface: Table I (+ the non-ECF conveniences) as an
// abstract interface, implemented by both core::MusicClient (one MUSIC
// group) and cluster::Client (N groups behind a ShardMap).  Anything that
// drives MUSIC on behalf of an application — the REST gateway, the
// coordination recipes — binds this seam and works against either client
// unchanged.
//
// The interface deliberately stops at the op surface plus the two pieces of
// routing introspection the gateway's status verb reports (shard_count /
// map_epoch, identity defaults for the single-group client).  Client-
// specific machinery — retry config, replica preference, the session layer's
// with_lock template — stays on the concrete classes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/simulation.h"
#include "sim/task.h"
#include "wire/messages.h"

namespace music::api {

class ClientApi {
 public:
  virtual ~ClientApi() = default;

  /// The simulation this client's coroutines run on (both backends have
  /// one: the TCP deployment drives it from the EventLoop).
  virtual sim::Simulation& simulation() = 0;
  /// The site this client issues from (spans, proximity order).
  virtual int site() const = 0;

  // ---- Table I operations. ---------------------------------------------------

  virtual sim::Task<Result<LockRef>> create_lock_ref(Key key) = 0;
  /// One acquireLock poll (Ok / NotYetHolder / NotLockHolder / errors).
  virtual sim::Task<Status> acquire_lock(Key key, LockRef ref) = 0;
  /// Polls acquireLock with back-off until granted, preempted, or the poll
  /// budget is exhausted.
  virtual sim::Task<Status> acquire_lock_blocking(Key key, LockRef ref) = 0;
  virtual sim::Task<Status> critical_put(Key key, LockRef ref, Value value) = 0;
  virtual sim::Task<Result<Value>> critical_get(Key key, LockRef ref) = 0;
  virtual sim::Task<Status> critical_delete(Key key, LockRef ref) = 0;
  /// Ships `ops` as one batch under `ref`; always returns one result per op.
  virtual sim::Task<std::vector<wire::BatchOpResult>> execute_batch(
      Key key, LockRef ref, std::vector<wire::BatchOp> ops) = 0;
  virtual sim::Task<Status> release_lock(Key key, LockRef ref) = 0;
  /// §VII: evicts a lockRef that was never granted.
  virtual sim::Task<Status> remove_lock_ref(Key key, LockRef ref) = 0;
  /// Preempts another client's lock (Portal ownership transfer, §VII-b).
  virtual sim::Task<Status> forced_release(Key key, LockRef ref) = 0;

  // ---- Non-ECF conveniences. ------------------------------------------------

  virtual sim::Task<Status> put(Key key, Value value) = 0;
  virtual sim::Task<Result<Value>> get(Key key) = 0;
  virtual sim::Task<Result<std::vector<Key>>> get_all_keys(Key prefix) = 0;

  // ---- Routing introspection (REST status verb). ----------------------------

  /// Shards behind this client (1 for the single-group core client).
  virtual int shard_count() const { return 1; }
  /// Epoch of the client's cached routing snapshot (0 when unsharded).
  virtual uint64_t map_epoch() const { return 0; }
};

}  // namespace music::api
