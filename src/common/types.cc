#include "common/types.h"

namespace music {

std::string_view to_string(OpStatus s) {
  switch (s) {
    case OpStatus::Ok:
      return "Ok";
    case OpStatus::Timeout:
      return "Timeout";
    case OpStatus::Nack:
      return "Nack";
    case OpStatus::NotLockHolder:
      return "NotLockHolder";
    case OpStatus::NotYetHolder:
      return "NotYetHolder";
    case OpStatus::CsExpired:
      return "CsExpired";
    case OpStatus::NotFound:
      return "NotFound";
    case OpStatus::Conflict:
      return "Conflict";
    case OpStatus::RetryExhausted:
      return "RetryExhausted";
    case OpStatus::WrongShard:
      return "WrongShard";
  }
  return "Unknown";
}

}  // namespace music
