// Core vocabulary types shared by every MUSIC module.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "sim/time.h"

namespace music {

/// A MUSIC key (the data-table primary key of Fig. 2).
using Key = std::string;

/// A lock reference: the per-key unique, increasing identifier returned by
/// createLockRef (§III-A).  0 means "none"; real lockRefs start at 1.
using LockRef = int64_t;

/// Sentinel for "no lock reference".
inline constexpr LockRef kNoLockRef = 0;

/// A stored value.  `data` carries the semantic payload (what tests assert
/// on); `logical_size` is the size in bytes the value represents for cost
/// purposes, so benchmarks can model 256 KB values without allocating them.
struct Value {
  std::string data;
  size_t logical_size = 0;

  Value() = default;
  /// A value whose cost-relevant size is its contents' size.
  explicit Value(std::string d) : data(std::move(d)), logical_size(data.size()) {}
  /// A value with explicit payload size (benchmark values).
  Value(std::string d, size_t size) : data(std::move(d)), logical_size(size) {}

  /// Size used for network/CPU/disk cost accounting.
  size_t size() const { return logical_size > data.size() ? logical_size : data.size(); }

  friend bool operator==(const Value& a, const Value& b) {
    return a.data == b.data;
  }
};

/// The vector timestamp of §III-B: (lockRef, time), lockRef-major.  `time`
/// is microseconds since the owning critical section's start (range [0, T)).
struct VectorTs {
  LockRef lock_ref = 0;
  sim::Time time = 0;

  friend constexpr bool operator==(const VectorTs&, const VectorTs&) = default;
  friend constexpr auto operator<=>(const VectorTs& a, const VectorTs& b) {
    if (auto c = a.lock_ref <=> b.lock_ref; c != 0) return c;
    return a.time <=> b.time;
  }
};

/// Outcome of a MUSIC or back-end operation.  Domain failures are values,
/// not exceptions (§III failure semantics: clients retry on Nack/Timeout,
/// stop on NotLockHolder).
enum class OpStatus {
  Ok,
  /// Back-end quorum could not be assembled in time; retry.
  Timeout,
  /// Replica explicitly refused (e.g. overload); retry.
  Nack,
  /// The paper's "youAreNoLongerLockHolder": the lock was released or
  /// preempted; do not retry with this lockRef.
  NotLockHolder,
  /// The lockRef is not first in the queue (acquireLock: keep polling).
  NotYetHolder,
  /// Critical-section duration exceeded T (§VI); the op was rejected.
  CsExpired,
  /// Key not present.
  NotFound,
  /// Compare-and-set condition failed / transaction conflict.
  Conflict,
  /// The client's retry budget (attempts or deadline) ran out on a transient
  /// failure.  Distinct from Timeout so callers and metrics can tell "one
  /// quorum round timed out, retry elsewhere" from "the client gave up".
  /// Deliberately NOT retryable: the budget is already spent.
  RetryExhausted,
  /// Cluster routing layer only (src/cluster/): the op was dispatched with a
  /// stale ShardMap epoch, or its shard is frozen mid-move.  Retryable at
  /// the CLUSTER layer (refresh the map, re-route) — cluster::Client does
  /// that internally and surfaces WrongShard only when its re-route budget
  /// is spent.  Core replicas never emit it, so at RetryLayer::kCore it is
  /// NOT retryable: by the time a caller of the core client sees it, the
  /// retry already happened.  is_retryable(s, RetryLayer::kCluster) is the
  /// predicate the routing layer itself uses.
  WrongShard,
};

/// Human-readable status name (logs, test diagnostics).
std::string_view to_string(OpStatus s);

/// The §III retry discipline in one place: Nack and Timeout are transient
/// (the client retries, usually at another replica); every other status is a
/// final answer for this lockRef.  NotYetHolder is deliberately NOT
/// retryable here — acquireLock polls on it, but data ops must surface it.
constexpr bool is_retryable(OpStatus s) {
  return s == OpStatus::Nack || s == OpStatus::Timeout;
}

/// Which retry discipline applies to a status.  The core client retries only
/// transient back-end failures; the cluster routing layer additionally owns
/// the statuses its own machinery can cure: WrongShard (refresh the ShardMap
/// and re-route) and Conflict (a shard frozen mid-move or a racing admin op
/// that resolves when the move epoch completes).
enum class RetryLayer {
  kCore,
  kCluster,
};

/// Layer-aware retry predicate: one predicate for every retry loop in the
/// tree instead of per-layer status switches.  kCore is exactly
/// is_retryable(s); kCluster adds WrongShard and Conflict.
constexpr bool is_retryable(OpStatus s, RetryLayer layer) {
  if (is_retryable(s)) return true;
  return layer == RetryLayer::kCluster &&
         (s == OpStatus::WrongShard || s == OpStatus::Conflict);
}

/// Result of an operation that may carry a T.  ok() implies has_value() for
/// value-producing operations.
template <typename T>
class Result {
 public:
  /// Successful result.
  static Result Ok(T v) { return Result(OpStatus::Ok, std::move(v)); }
  /// Failed result with a status != Ok.
  static Result Err(OpStatus s) { return Result(s, std::nullopt); }

  bool ok() const { return status_ == OpStatus::Ok; }
  OpStatus status() const { return status_; }
  bool retryable() const { return is_retryable(status_); }

  /// The value; requires ok().
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

 private:
  Result(OpStatus s, std::optional<T> v) : status_(s), value_(std::move(v)) {}
  OpStatus status_;
  std::optional<T> value_;
};

/// Result with no payload.
class Status {
 public:
  static Status Ok() { return Status(OpStatus::Ok); }
  static Status Err(OpStatus s) { return Status(s); }
  /// Implicit from OpStatus for terse returns.
  Status(OpStatus s) : status_(s) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return status_ == OpStatus::Ok; }
  OpStatus status() const { return status_; }
  bool retryable() const { return is_retryable(status_); }

 private:
  OpStatus status_;
};

}  // namespace music
