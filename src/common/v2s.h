// The vector-to-scalar timestamp mapping of §VI / §X-A2.
//
// Cassandra orders writes by a single signed 64-bit timestamp, but MUSIC's
// data store needs lockRef-major (lockRef, time) vector timestamps.  The
// paper maps v2s(lockRef, time) = lockRef * T + (time - startTime), where T
// bounds the duration of a critical section, and proves (§X-A2) that the
// mapping preserves vector order; §X-A3 bounds lockRef to avoid overflow.
//
// Our encoding makes the forcedRelease delta-race (§IV-B) exact: each
// lockRef owns a scalar span of S = 2*T microseconds.  Writes from within
// the critical section use time offsets in [0, T); forcedRelease stamps the
// synchFlag at offset (T - 1) + delta.  With the paper's production delta of
// 1 us that lands at offset T: strictly above every write of the released
// lockRef, strictly below every write of the next one — the invariant the
// paper's delta discussion requires.  delta = 0 ties with the released
// holder's latest possible write and can lose the race (the ablation bench
// demonstrates this).
#pragma once

#include <cassert>
#include <cstdint>

#include "common/types.h"
#include "sim/time.h"

namespace music {

/// Scalar timestamp used by the data store's last-write-wins ordering.
using ScalarTs = int64_t;

/// Encodes/decodes vector timestamps into the data store's scalar domain.
class V2S {
 public:
  /// `t_max_cs` is the paper's T: the maximum critical-section duration.
  /// Must be positive.
  explicit V2S(sim::Duration t_max_cs) : t_(t_max_cs), span_(2 * t_max_cs) {
    assert(t_max_cs > 0);
  }

  /// T: the maximum time a lockholder may remain in a critical section.
  sim::Duration t_max_cs() const { return t_; }

  /// The scalar span owned by each lockRef (2T; see file comment).
  int64_t span() const { return span_; }

  /// Maps (lockRef, time-in-critical-section) to a scalar.  `time_in_cs`
  /// must lie in [0, T); callers enforce the T bound before encoding.
  ScalarTs encode(LockRef lock_ref, sim::Duration time_in_cs) const {
    assert(time_in_cs >= 0 && time_in_cs < t_);
    return lock_ref * span_ + time_in_cs;
  }

  /// Scalar stamp used by forcedRelease(lockRef) on the synchFlag: offset
  /// (T-1) + delta within lockRef's span.
  ScalarTs encode_forced_release(LockRef lock_ref, sim::Duration delta) const {
    return lock_ref * span_ + (t_ - 1) + delta;
  }

  /// The lockRef component of a scalar stamp.
  LockRef lock_ref_of(ScalarTs s) const { return s / span_; }

  /// The time component of a scalar stamp.
  sim::Duration time_of(ScalarTs s) const { return s % span_; }

  /// §X-A3: the largest lockRef that cannot overflow the signed 64-bit
  /// scalar domain.
  LockRef max_lock_ref() const { return (INT64_MAX - (span_ - 1)) / span_; }

 private:
  sim::Duration t_;
  int64_t span_;
};

}  // namespace music
