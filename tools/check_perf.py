#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against its committed baseline.

Usage: check_perf.py <baseline.json> <current.json> [--max-regression 0.30]

Fails (exit 1) when any throughput headline regresses by more than the
allowed fraction versus the committed baseline.  Only rate-style headline
metrics are compared -- absolute wall-clock and event counts vary with the
configured workload size (--smoke vs full), while events/sec and speedup
ratios are size-independent:

  * ``speedup_events_per_sec``     (bench_kernel: fast path vs seed kernel)
  * ``fastpath.events_per_sec``    (bench_kernel: absolute kernel rate)
  * ``events_per_sec_aggregate``   (figure benches via BenchReport)

The seed-baseline kernel's own rate is deliberately NOT compared: the seed
kernel getting slower is not a regression in the code under test.

The default tolerance (30%) absorbs host-speed differences between the
machine that produced the committed baseline and the CI runner; a genuine
fast-path regression (e.g. losing the alloc-free path or the wheel) costs
2-4x and clears the threshold easily.
"""

import argparse
import json
import sys

HEADLINE_KEYS = (
    "speedup_events_per_sec",
    "events_per_sec_aggregate",
)


def headline_metrics(doc):
    """Extract the comparable rate metrics from one BENCH_*.json document."""
    out = {}
    for key in HEADLINE_KEYS:
        if isinstance(doc.get(key), (int, float)):
            out[key] = float(doc[key])
    fast = doc.get("fastpath")
    if isinstance(fast, dict) and isinstance(
        fast.get("events_per_sec"), (int, float)
    ):
        out["fastpath.events_per_sec"] = float(fast["events_per_sec"])
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional drop vs baseline (default 0.30 = 30%%)",
    )
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    base_m = headline_metrics(base)
    cur_m = headline_metrics(cur)
    if not base_m:
        print(f"error: no headline metrics in baseline {args.baseline}")
        return 2

    failed = False
    for key, b in sorted(base_m.items()):
        c = cur_m.get(key)
        if c is None:
            print(f"FAIL {key}: present in baseline but missing from current")
            failed = True
            continue
        floor = b * (1.0 - args.max_regression)
        verdict = "ok  " if c >= floor else "FAIL"
        print(
            f"{verdict} {key}: current {c:.4g} vs baseline {b:.4g} "
            f"(floor {floor:.4g})"
        )
        if c < floor:
            failed = True

    if failed:
        print(
            f"perf regression > {args.max_regression:.0%} vs "
            f"{args.baseline}"
        )
        return 1
    print(f"perf ok within {args.max_regression:.0%} of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
