// music_gateway: the REST front end (§VI) as a real HTTP server.
//
// Binds a core::MusicClient to the three musicd MUSIC replicas over
// TcpTransport and serves the JSON verb surface over HTTP/1.1:
//
//   POST /v1/music    — the RestGateway verb surface (rest/rest.h); the
//                       HTTP status comes from the reply's "code" via the
//                       single REST error table
//   GET  /v1/status   — the keyless "status" verb (deployment shape)
//   GET  /v1/metrics  — live client/transport counters as flat JSON
//   GET  /healthz     — liveness
//
//   music_gateway --music-ports 7101,7102,7103 [--port 8080] [--site 0]
//
// SIGINT/SIGTERM stop the loop; in-flight requests are dropped (their
// respond callbacks never fire once the loop exits), sockets close, exit 0.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/client.h"
#include "net/event_loop.h"
#include "net/http.h"
#include "net/tcp.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "rest/rest.h"
#include "sim/simulation.h"

namespace {

music::net::EventLoop* g_loop = nullptr;

void on_signal(int) {
  if (g_loop != nullptr) g_loop->stop();
}

std::vector<uint16_t> parse_ports(const char* arg) {
  std::vector<uint16_t> ports;
  std::string s(arg);
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    ports.push_back(static_cast<uint16_t>(
        strtoul(s.substr(pos, comma - pos).c_str(), nullptr, 10)));
    pos = comma + 1;
  }
  return ports;
}

/// One REST request end-to-end (a named free coroutine: spawned frames must
/// not be capturing lambdas).  The HTTP status is derived from the reply's
/// stable "code" through the one REST error table.
music::sim::Task<void> serve_music(music::rest::RestGateway* gw,
                                   std::string body,
                                   music::net::HttpServer::Respond respond) {
  std::string reply = co_await gw->handle(std::move(body));
  music::net::HttpResponse r;
  auto parsed = music::rest::Json::parse(reply);
  if (parsed && (*parsed)["code"].is_string()) {
    r.status = music::rest::http_status_for_code((*parsed)["code"].as_string());
  }
  r.body = std::move(reply);
  respond(std::move(r));
}

/// The transport's per-route handshake/churn diagnostics as a JSON array:
/// which wire version each musicd connection negotiated, and how many
/// times the route has re-established (rolling restarts show up here).
music::rest::Json peers_json(const music::net::TcpTransport& tcp) {
  music::rest::Json arr;
  for (const music::net::PeerInfo& p : tcp.peer_info()) {
    music::rest::Json entry;
    entry.set("node", static_cast<int64_t>(p.id));
    entry.set("connected", p.connected);
    entry.set("wire_version", static_cast<int64_t>(p.wire_version));
    entry.set("reconnects", static_cast<int64_t>(p.reconnects));
    entry.set("handshake_failures",
              static_cast<int64_t>(p.handshake_failures));
    arr.push(std::move(entry));
  }
  return arr;
}

/// GET /v1/status: the keyless "status" verb, with the live transport
/// peer table merged in (the verb reply describes the deployment shape;
/// "peers" describes what this gateway is actually connected to).
music::sim::Task<void> serve_status(music::rest::RestGateway* gw,
                                    music::net::TcpTransport* tcp,
                                    music::net::HttpServer::Respond respond) {
  std::string reply = co_await gw->handle(R"({"op":"status"})");
  music::net::HttpResponse r;
  auto parsed = music::rest::Json::parse(reply);
  if (parsed) {
    if ((*parsed)["code"].is_string()) {
      r.status =
          music::rest::http_status_for_code((*parsed)["code"].as_string());
    }
    parsed->set("peers", peers_json(*tcp));
    r.body = parsed->dump();
  } else {
    r.body = std::move(reply);
  }
  respond(std::move(r));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<uint16_t> music_ports;
  uint16_t http_port = 8080;
  int site = 0;
  std::string host = "127.0.0.1";
  for (int i = 1; i < argc - 1; ++i) {
    if (strcmp(argv[i], "--music-ports") == 0)
      music_ports = parse_ports(argv[++i]);
    else if (strcmp(argv[i], "--port") == 0)
      http_port = static_cast<uint16_t>(atoi(argv[++i]));
    else if (strcmp(argv[i], "--site") == 0) site = atoi(argv[++i]);
    else if (strcmp(argv[i], "--host") == 0) host = argv[++i];
  }
  constexpr int kSites = 3;
  if (music_ports.size() != kSites || site < 0 || site >= kSites) {
    fprintf(stderr,
            "usage: music_gateway --music-ports m0,m1,m2 [--port P] "
            "[--site N] [--host H]\n");
    return 2;
  }

  using namespace music;

  sim::Simulation sim(1);
  net::EventLoop loop(sim);
  net::TcpTransport tcp(loop);

  // musicd's construction order assigns store nodes ids 0..2 and MUSIC
  // replicas 3..5; routes here use the same ids so diagnostics line up.
  constexpr net::PeerId kMusicNodeBase = 3;
  std::vector<net::PeerId> peers;
  peers.push_back(kMusicNodeBase + site);  // local site first (proximity)
  for (int s = 0; s < kSites; ++s) {
    if (s != site) peers.push_back(kMusicNodeBase + s);
  }
  for (int s = 0; s < kSites; ++s) {
    tcp.route(kMusicNodeBase + s, host,
              music_ports[static_cast<size_t>(s)]);
  }

  constexpr net::PeerId kClientNode = 100;
  core::MusicClient client(sim, tcp, peers, core::ClientConfig{}, site,
                           kClientNode);
  rest::RestGateway gw(client);

  net::HttpServer http(
      loop, [&](const net::HttpRequest& req, net::HttpServer::Respond respond) {
        if (req.path == "/healthz") {
          net::HttpResponse r;
          r.content_type = "text/plain";
          r.body = "ok\n";
          respond(std::move(r));
          return;
        }
        if (req.path == "/v1/metrics") {
          obs::MetricsRegistry reg;
          const core::ClientStats& st = client.stats();
          reg.set("client.attempts", st.attempts);
          reg.set("client.retries", st.retries);
          reg.set("client.retry_exhausted", st.retry_exhausted);
          reg.set("client.deadline_exceeded", st.deadline_exceeded);
          reg.set("client.demotions", st.demotions);
          reg.set("transport.connected_peers",
                  static_cast<uint64_t>(tcp.connected_peers()));
          for (const net::PeerInfo& p : tcp.peer_info()) {
            std::string pre = "transport.peer." + std::to_string(p.id);
            reg.set(pre + ".connected", p.connected ? 1u : 0u);
            reg.set(pre + ".wire_version", p.wire_version);
            reg.set(pre + ".reconnects", p.reconnects);
            reg.set(pre + ".handshake_failures", p.handshake_failures);
          }
          reg.set("loop.now_us", static_cast<uint64_t>(sim.now()));
          net::HttpResponse r;
          r.body = obs::metrics_json(reg);
          respond(std::move(r));
          return;
        }
        if (req.path == "/v1/status") {
          sim::spawn(sim, serve_status(&gw, &tcp, std::move(respond)));
          return;
        }
        if (req.path == "/v1/music" && req.method == "POST") {
          sim::spawn(sim, serve_music(&gw, req.body, std::move(respond)));
          return;
        }
        net::HttpResponse r;
        r.status = 404;
        r.body = R"({"status":"BadRequest","code":"bad_request","error":"no such endpoint"})";
        respond(std::move(r));
      });
  uint16_t bound = http.listen(http_port);
  if (bound == 0) {
    fprintf(stderr, "music_gateway: bind 127.0.0.1:%u failed\n", http_port);
    return 1;
  }

  signal(SIGINT, on_signal);
  signal(SIGTERM, on_signal);
  signal(SIGPIPE, SIG_IGN);  // peer hangups surface as EPIPE, not death
  g_loop = &loop;
  fprintf(stderr, "music_gateway: http://127.0.0.1:%u (site %d)\n", bound,
          site);
  fflush(stderr);
  loop.run();
  g_loop = nullptr;
  fprintf(stderr, "music_gateway: clean shutdown\n");
  return 0;
}
