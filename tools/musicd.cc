// musicd: one MUSIC site as a real process.
//
// Hosts site N of the paper's 3-site deployment (Fig. 1) over TCP: the
// site's store replica and MUSIC replica listen on real sockets, and the
// store coordinator reaches the other sites' store replicas through
// TcpTransport routes.  Three musicd processes on loopback form the same
// world every sim test runs in-memory — same protocol code, same wire
// structs, framed through wire/codec.h instead of moved by sim::Network.
//
// Every process constructs the FULL world (3 store nodes + 3 MUSIC
// replicas) in the same order, so node ids agree across processes; only the
// hosted site's replicas are served, the rest are inert locals.  Port
// layout is explicit and symmetric — each process gets the whole map:
//
//   musicd --site 1 --store-ports 7001,7002,7003 --music-ports 7101,7102,7103
//
// serves store node 1 on 7002 and MUSIC replica (site 1) on 7102, and
// routes store nodes 0 and 2 to 127.0.0.1:7001 / 127.0.0.1:7003.
//
// Rolling-upgrade knobs (docs/TRANSPORT.md):
//   --wire-max-version K   pin the advertised wire-version ceiling to K —
//                          running with K=1 makes this process the "old
//                          binary" of a mixed-version fleet.  The
//                          MUSIC_WIRE_MAX_VERSION env var does the same
//                          (flag wins).
//   --state-file PATH      durable store snapshot: loaded before serving,
//                          written on clean shutdown.  Without it a restart
//                          is an amnesia restart (empty table, as if the
//                          disk was lost).
//
// SIGINT/SIGTERM stop the loop and exit cleanly; on the way out the
// process sends a Goodbye drain notice on every v2+ connection so peers
// fail their in-flight requests fast instead of waiting out a timeout.
#include <signal.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/music.h"
#include "datastore/store.h"
#include "lockstore/lockstore.h"
#include "net/event_loop.h"
#include "net/tcp.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "wire/codec.h"

namespace {

music::net::EventLoop* g_loop = nullptr;

void on_signal(int) {
  if (g_loop != nullptr) g_loop->stop();
}

std::vector<uint16_t> parse_ports(const char* arg) {
  std::vector<uint16_t> ports;
  std::string s(arg);
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    ports.push_back(static_cast<uint16_t>(
        strtoul(s.substr(pos, comma - pos).c_str(), nullptr, 10)));
    pos = comma + 1;
  }
  return ports;
}

int usage() {
  fprintf(stderr,
          "usage: musicd --site N --store-ports p0,p1,p2 "
          "--music-ports m0,m1,m2 [--host H] [--wire-max-version K] "
          "[--state-file PATH]\n");
  return 2;
}

// ---- Durable store snapshot -------------------------------------------------
//
// Line-oriented, length-prefixed (keys/values may hold anything but \n is
// avoided by the length prefixes):
//
//   musicd-state v1
//   <ts> <keylen> <vallen>
//   <key bytes><value bytes>
//
// Written to PATH.tmp then renamed, so a crash mid-write leaves the
// previous snapshot intact.

bool save_state(music::ds::StoreReplica& rep, const std::string& path) {
  std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  fprintf(f, "musicd-state v1\n");
  for (const music::Key& key : rep.local_keys_with_prefix("")) {
    auto cell = rep.local_read(key);
    if (!cell.has_value()) continue;
    fprintf(f, "%lld %zu %zu\n", static_cast<long long>(cell->ts), key.size(),
            cell->value.data.size());
    fwrite(key.data(), 1, key.size(), f);
    fwrite(cell->value.data.data(), 1, cell->value.data.size(), f);
    fputc('\n', f);
  }
  bool ok = fclose(f) == 0;
  if (ok) ok = rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) remove(tmp.c_str());
  return ok;
}

bool load_state(music::ds::StoreReplica& rep, const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return true;  // no snapshot yet: cold start, not an error
  char header[32] = {0};
  if (fgets(header, sizeof header, f) == nullptr ||
      strcmp(header, "musicd-state v1\n") != 0) {
    fclose(f);
    return false;
  }
  long long ts;
  long long max_ts = 0;
  size_t klen, vlen;
  while (fscanf(f, "%lld %zu %zu", &ts, &klen, &vlen) == 3) {
    fgetc(f);  // the newline after the lengths
    if (klen > (1u << 20) || vlen > (16u << 20)) {
      fclose(f);
      return false;
    }
    std::string key(klen, '\0');
    std::string val(vlen, '\0');
    if (fread(key.data(), 1, klen, f) != klen ||
        fread(val.data(), 1, vlen, f) != vlen) {
      fclose(f);
      return false;
    }
    fgetc(f);  // trailing newline
    music::ds::Cell cell;
    cell.value = music::Value(std::move(val));
    cell.ts = static_cast<music::ScalarTs>(ts);
    rep.apply_write(key, cell);
    max_ts = std::max(max_ts, ts);
  }
  fclose(f);
  // Ballot counters are volatile: without this, the restarted coordinator
  // would mint ballots below the ballot-stamped rows it just reloaded and
  // its first LWT commits would lose LWW against them (the lwt() loop also
  // guards against this; advancing here skips the wasted round).
  rep.advance_ballot_past(static_cast<music::ScalarTs>(max_ts));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int site = -1;
  std::vector<uint16_t> store_ports, music_ports;
  std::string host = "127.0.0.1";
  std::string state_file;
  int wire_max = music::wire::kWireVersionMax;
  if (const char* env = getenv("MUSIC_WIRE_MAX_VERSION")) {
    wire_max = atoi(env);
  }
  for (int i = 1; i < argc - 1; ++i) {
    if (strcmp(argv[i], "--site") == 0) site = atoi(argv[++i]);
    else if (strcmp(argv[i], "--store-ports") == 0)
      store_ports = parse_ports(argv[++i]);
    else if (strcmp(argv[i], "--music-ports") == 0)
      music_ports = parse_ports(argv[++i]);
    else if (strcmp(argv[i], "--host") == 0) host = argv[++i];
    else if (strcmp(argv[i], "--wire-max-version") == 0)
      wire_max = atoi(argv[++i]);
    else if (strcmp(argv[i], "--state-file") == 0) state_file = argv[++i];
  }
  constexpr int kSites = 3;
  if (site < 0 || site >= kSites ||
      store_ports.size() != kSites || music_ports.size() != kSites) {
    return usage();
  }
  if (wire_max < music::wire::kWireVersionMin ||
      wire_max > music::wire::kWireVersionMax) {
    fprintf(stderr,
            "musicd[%d]: --wire-max-version %d out of range (this binary "
            "speaks %u..%u)\n",
            site, wire_max, music::wire::kWireVersionMin,
            music::wire::kWireVersionMax);
    return 2;
  }

  using namespace music;

  // The same world every sim test builds, in the same construction order:
  // store nodes get ids 0..2, MUSIC replicas 3..5 — identical in all three
  // processes, so a node id names the same role everywhere.
  sim::Simulation sim(1);
  net::EventLoop loop(sim);
  net::TcpOptions topt;
  topt.wire_version_max = static_cast<uint8_t>(wire_max);
  topt.hello_node = static_cast<uint32_t>(site);
  net::TcpTransport tcp(loop, topt);
  sim::Network net(sim, sim::NetworkConfig{});  // id registry only; the
                                                // fabric is the TcpTransport
  ds::StoreCluster store(sim, net, ds::StoreConfig{},
                         std::vector<int>{0, 1, 2}, &tcp);
  ls::LockStore locks(store);
  std::vector<std::unique_ptr<core::MusicReplica>> reps;
  for (int s = 0; s < kSites; ++s) {
    reps.push_back(std::make_unique<core::MusicReplica>(
        store, locks, core::MusicConfig{}, s));
  }

  // Serve this site's two roles; everything else is reached by route.
  ds::StoreReplica& my_store = store.replica(site);
  if (!state_file.empty() && !load_state(my_store, state_file)) {
    fprintf(stderr, "musicd[%d]: corrupt state file %s\n", site,
            state_file.c_str());
    return 1;
  }
  auto serve_store = [&my_store](const wire::StoreRequest& m) {
    return my_store.serve_store(m);
  };
  uint16_t sp = tcp.listen_for(my_store.node(), store_ports[site], nullptr,
                               serve_store);
  uint16_t mp = tcp.listen_for(reps[site]->node(), music_ports[site],
                               core::serve_request_fn(*reps[site]), nullptr);
  if (sp == 0 || mp == 0) {
    fprintf(stderr, "musicd[%d]: bind failed (store=%u music=%u)\n", site, sp,
            mp);
    return 1;
  }
  for (int s = 0; s < kSites; ++s) {
    if (s == site) continue;
    tcp.route(store.replica(s).node(), host, store_ports[s]);
  }
  reps[site]->start_failure_detector();

  signal(SIGINT, on_signal);
  signal(SIGTERM, on_signal);
  signal(SIGPIPE, SIG_IGN);  // peer hangups surface as EPIPE, not death
  g_loop = &loop;
  fprintf(stderr,
          "musicd[%d]: store node %d on %s:%u, music node %d on %s:%u, "
          "wire v%u..v%d%s%s\n",
          site, static_cast<int>(my_store.node()), host.c_str(), sp,
          static_cast<int>(reps[site]->node()), host.c_str(), mp,
          wire::kWireVersionMin, wire_max,
          state_file.empty() ? "" : ", state ", state_file.c_str());
  fflush(stderr);
  loop.run();
  g_loop = nullptr;

  // Graceful drain: tell every v2+ peer we are going away (they fail their
  // in-flight requests as retryable instead of timing out), then snapshot.
  tcp.announce_drain(wire::GoodbyeReason::Shutdown);
  if (!state_file.empty() && !save_state(my_store, state_file)) {
    fprintf(stderr, "musicd[%d]: state save failed: %s\n", site,
            state_file.c_str());
    return 1;
  }
  fprintf(stderr, "musicd[%d]: clean shutdown\n", site);
  return 0;
}
