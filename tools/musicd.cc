// musicd: one MUSIC site as a real process.
//
// Hosts site N of the paper's 3-site deployment (Fig. 1) over TCP: the
// site's store replica and MUSIC replica listen on real sockets, and the
// store coordinator reaches the other sites' store replicas through
// TcpTransport routes.  Three musicd processes on loopback form the same
// world every sim test runs in-memory — same protocol code, same wire
// structs, framed through wire/codec.h instead of moved by sim::Network.
//
// Every process constructs the FULL world (3 store nodes + 3 MUSIC
// replicas) in the same order, so node ids agree across processes; only the
// hosted site's replicas are served, the rest are inert locals.  Port
// layout is explicit and symmetric — each process gets the whole map:
//
//   musicd --site 1 --store-ports 7001,7002,7003 --music-ports 7101,7102,7103
//
// serves store node 1 on 7002 and MUSIC replica (site 1) on 7102, and
// routes store nodes 0 and 2 to 127.0.0.1:7001 / 127.0.0.1:7003.
// SIGINT/SIGTERM stop the loop and exit cleanly (the demo asserts this).
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/music.h"
#include "datastore/store.h"
#include "lockstore/lockstore.h"
#include "net/event_loop.h"
#include "net/tcp.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace {

music::net::EventLoop* g_loop = nullptr;

void on_signal(int) {
  if (g_loop != nullptr) g_loop->stop();
}

std::vector<uint16_t> parse_ports(const char* arg) {
  std::vector<uint16_t> ports;
  std::string s(arg);
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    ports.push_back(static_cast<uint16_t>(
        strtoul(s.substr(pos, comma - pos).c_str(), nullptr, 10)));
    pos = comma + 1;
  }
  return ports;
}

int usage() {
  fprintf(stderr,
          "usage: musicd --site N --store-ports p0,p1,p2 "
          "--music-ports m0,m1,m2 [--host H]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int site = -1;
  std::vector<uint16_t> store_ports, music_ports;
  std::string host = "127.0.0.1";
  for (int i = 1; i < argc - 1; ++i) {
    if (strcmp(argv[i], "--site") == 0) site = atoi(argv[++i]);
    else if (strcmp(argv[i], "--store-ports") == 0)
      store_ports = parse_ports(argv[++i]);
    else if (strcmp(argv[i], "--music-ports") == 0)
      music_ports = parse_ports(argv[++i]);
    else if (strcmp(argv[i], "--host") == 0) host = argv[++i];
  }
  constexpr int kSites = 3;
  if (site < 0 || site >= kSites ||
      store_ports.size() != kSites || music_ports.size() != kSites) {
    return usage();
  }

  using namespace music;

  // The same world every sim test builds, in the same construction order:
  // store nodes get ids 0..2, MUSIC replicas 3..5 — identical in all three
  // processes, so a node id names the same role everywhere.
  sim::Simulation sim(1);
  net::EventLoop loop(sim);
  net::TcpTransport tcp(loop);
  sim::Network net(sim, sim::NetworkConfig{});  // id registry only; the
                                                // fabric is the TcpTransport
  ds::StoreCluster store(sim, net, ds::StoreConfig{},
                         std::vector<int>{0, 1, 2}, &tcp);
  ls::LockStore locks(store);
  std::vector<std::unique_ptr<core::MusicReplica>> reps;
  for (int s = 0; s < kSites; ++s) {
    reps.push_back(std::make_unique<core::MusicReplica>(
        store, locks, core::MusicConfig{}, s));
  }

  // Serve this site's two roles; everything else is reached by route.
  ds::StoreReplica& my_store = store.replica(site);
  auto serve_store = [&my_store](const wire::StoreRequest& m) {
    return my_store.serve_store(m);
  };
  uint16_t sp = tcp.listen_for(my_store.node(), store_ports[site], nullptr,
                               serve_store);
  uint16_t mp = tcp.listen_for(reps[site]->node(), music_ports[site],
                               core::serve_request_fn(*reps[site]), nullptr);
  if (sp == 0 || mp == 0) {
    fprintf(stderr, "musicd[%d]: bind failed (store=%u music=%u)\n", site, sp,
            mp);
    return 1;
  }
  for (int s = 0; s < kSites; ++s) {
    if (s == site) continue;
    tcp.route(store.replica(s).node(), host, store_ports[s]);
  }
  reps[site]->start_failure_detector();

  signal(SIGINT, on_signal);
  signal(SIGTERM, on_signal);
  g_loop = &loop;
  fprintf(stderr, "musicd[%d]: store node %d on %s:%u, music node %d on %s:%u\n",
          site, static_cast<int>(my_store.node()), host.c_str(), sp,
          static_cast<int>(reps[site]->node()), host.c_str(), mp);
  fflush(stderr);
  loop.run();
  g_loop = nullptr;
  fprintf(stderr, "musicd[%d]: clean shutdown\n", site);
  return 0;
}
