#!/usr/bin/env python3
"""Loopback multi-process MUSIC demo (and CI smoke test).

Launches the paper's 3-site deployment as four real processes — three
musicd (one site each: store replica + MUSIC replica over TCP) and one
music_gateway (REST over HTTP) — then drives the Listing 1 flow end to end
over real sockets and asserts a clean SIGTERM shutdown of every process.

Usage: demo_loopback.py [--build-dir BUILD] [--base-port 17400]
Exits 0 on success, 1 with a diagnostic on any failure.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request


def wait_http(url, timeout_s=20.0):
    deadline = time.monotonic() + timeout_s
    last = None
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url, timeout=2) as r:
                return r.read()
        except (urllib.error.URLError, ConnectionError, OSError) as e:
            last = e
            time.sleep(0.1)
    raise RuntimeError(f"{url} never came up: {last}")


def post(url, body):
    req = urllib.request.Request(
        url, data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=30) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as e:
        # Non-2xx still carries a JSON reply (the REST error table at work).
        return e.code, json.loads(e.read())


def expect(cond, what):
    if not cond:
        raise RuntimeError(f"FAILED: {what}")
    print(f"  ok: {what}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--base-port", type=int, default=17400)
    args = ap.parse_args()

    tools = os.path.join(args.build_dir, "tools")
    musicd = os.path.join(tools, "musicd")
    gateway = os.path.join(tools, "music_gateway")
    for exe in (musicd, gateway):
        if not os.path.exists(exe):
            print(f"missing binary {exe}; build the repo first", file=sys.stderr)
            return 1

    bp = args.base_port
    store_ports = f"{bp},{bp + 1},{bp + 2}"
    music_ports = f"{bp + 10},{bp + 11},{bp + 12}"
    http_port = bp + 20
    base = f"http://127.0.0.1:{http_port}"

    procs = []
    logs = []
    try:
        for site in range(3):
            log = open(f"/tmp/musicd{site}.{os.getpid()}.log", "w+b")
            logs.append(log)
            procs.append(subprocess.Popen(
                [musicd, "--site", str(site), "--store-ports", store_ports,
                 "--music-ports", music_ports],
                stderr=log))
        log = open(f"/tmp/music_gateway.{os.getpid()}.log", "w+b")
        logs.append(log)
        procs.append(subprocess.Popen(
            [gateway, "--music-ports", music_ports, "--port", str(http_port)],
            stderr=log))

        print("waiting for gateway ...")
        wait_http(f"{base}/healthz")

        print("Listing 1 over real HTTP:")
        st, r = post(f"{base}/v1/music", {"op": "createLockRef", "key": "demo"})
        expect(st == 200 and r["status"] == "Ok", "createLockRef -> Ok")
        ref = r["lockRef"]

        status = None
        for _ in range(100):
            st, r = post(f"{base}/v1/music",
                         {"op": "acquireLock", "key": "demo", "lockRef": ref})
            status = r["status"]
            if status == "Ok":
                break
            time.sleep(0.05)
        expect(status == "Ok", "acquireLock granted")

        st, r = post(f"{base}/v1/music",
                     {"op": "criticalPut", "key": "demo", "lockRef": ref,
                      "value": "42"})
        expect(st == 200 and r["status"] == "Ok", "criticalPut -> Ok")

        st, r = post(f"{base}/v1/music",
                     {"op": "criticalGet", "key": "demo", "lockRef": ref})
        expect(st == 200 and r.get("value") == "42", "criticalGet reads 42")

        st, r = post(f"{base}/v1/music",
                     {"op": "batch", "key": "demo", "lockRef": ref,
                      "ops": [{"op": "put", "key": "a", "value": "1"},
                              {"op": "get", "key": "a"}]})
        expect(st == 200 and r["results"][1].get("value") == "1",
               "batch put+get round-trips")

        st, r = post(f"{base}/v1/music",
                     {"op": "releaseLock", "key": "demo", "lockRef": ref})
        expect(st == 200 and r["status"] == "Ok", "releaseLock -> Ok")

        # A critical op without the lock crosses the error table: stable
        # code + mapped HTTP status.
        st, r = post(f"{base}/v1/music",
                     {"op": "criticalGet", "key": "demo", "lockRef": ref})
        expect(st == 409 and r["code"] == "not_yet_holder",
               "post-release criticalGet -> 409/not_yet_holder")

        with urllib.request.urlopen(f"{base}/v1/status", timeout=10) as resp:
            s = json.loads(resp.read())
        expect(s["shard_count"] == 1, "status reports deployment shape")

        with urllib.request.urlopen(f"{base}/v1/metrics", timeout=10) as resp:
            m = json.loads(resp.read())
        expect(m["counters"]["transport.connected_peers"] == 3,
               "gateway connected to all 3 sites")
        expect(m["counters"]["client.attempts"] >= 6, "metrics count attempts")

        print("shutting down ...")
        for p in procs:
            p.send_signal(signal.SIGTERM)
        for p in procs:
            expect(p.wait(timeout=10) == 0, f"pid {p.pid} exited 0")
        for log in logs:
            log.seek(0)
            expect(b"clean shutdown" in log.read(),
                   f"{os.path.basename(log.name)} logged clean shutdown")
        print("PASS")
        return 0
    except Exception as e:  # noqa: BLE001 - top-level diagnostic
        print(f"FAIL: {e}", file=sys.stderr)
        for log in logs:
            log.seek(0)
            sys.stderr.write(f"---- {log.name} ----\n")
            sys.stderr.buffer.write(log.read())
        return 1
    finally:
        for p in procs:
            if p.poll() is None:
                p.kill()
        for log in logs:
            name = log.name
            log.close()
            try:
                os.unlink(name)
            except OSError:
                pass


if __name__ == "__main__":
    sys.exit(main())
