#!/usr/bin/env python3
"""Rolling-upgrade demo over real sockets (and CI mixed-version smoke).

Launches the paper's 3-site deployment as real processes with site 0 on
the "old binary" (wire-version ceiling pinned to 1, so every connection it
is part of negotiates v1) and sites 1-2 on the new one, then:

  1. drives locked read-modify-write counters through the gateway from
     concurrent workers (the Listing 1 flow over HTTP) throughout the roll,
  2. rolls the fleet one site at a time onto the new binary — SIGTERM
     (Goodbye drain + durable snapshot where configured), then re-exec —
     while overlaying a SIGSTOP/SIGCONT partition analog, then SIGKILLs a
     site under the workers, drains traffic, repairs the quorum and
     respawns it,
  3. asserts the app-level ECF oracle: no locked increment that was
     acknowledged Ok is ever lost (final counter >= confirmed increments),
  4. asserts the gateway observed the version story: the site-0 route
     negotiated v1 before the roll and the whole fleet sits at v2 after,
     with reconnect counts visible in /v1/status and /v1/metrics.

Usage: rolling_upgrade.py [--build-dir BUILD] [--base-port 17520]
                          [--seeds N] [--old-musicd PATH]

--old-musicd points at a separately built old binary for true mixed-binary
fleets (CI copies the HEAD build and pins it); by default the new binary
plays the old one via --wire-max-version 1.  Each seed reruns the whole
dance on its own port block.  Exits 0 on success, 1 with a diagnostic.
"""

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

KEYS = ["ctr/a", "ctr/b"]
WORKERS_PER_KEY = 2


def wait_http(url, timeout_s=20.0):
    deadline = time.monotonic() + timeout_s
    last = None
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url, timeout=2) as r:
                return r.read()
        except (urllib.error.URLError, ConnectionError, OSError) as e:
            last = e
            time.sleep(0.1)
    raise RuntimeError(f"{url} never came up: {last}")


def get_json(url):
    with urllib.request.urlopen(url, timeout=10) as r:
        return json.loads(r.read())


def post(url, body, timeout=30):
    req = urllib.request.Request(
        url, data=json.dumps(body).encode(), method="POST",
        headers={"Content-Type": "application/json"})
    # Normalize every transport-level failure onto OSError (URLError is one)
    # so callers have a single retry net: a truncated body raises
    # http.client.HTTPException or json's ValueError, neither of which is an
    # OSError, and a miss here would leak a queued lock ref.
    try:
        with urllib.request.urlopen(req, timeout=timeout) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as e:
        try:
            return e.code, json.loads(e.read())
        except (http.client.HTTPException, ValueError) as bad:
            raise urllib.error.URLError(f"bad error body: {bad!r}") from bad
    except (http.client.HTTPException, ValueError) as bad:
        raise urllib.error.URLError(f"bad reply: {bad!r}") from bad


def expect(cond, what):
    if not cond:
        raise RuntimeError(f"FAILED: {what}")
    print(f"  ok: {what}")


class Fleet:
    """The three musicd processes + gateway for one seed's port block."""

    def __init__(self, musicd, old_musicd, gateway, base_port, tag):
        self.musicd = musicd
        self.old_musicd = old_musicd
        self.gateway_bin = gateway
        self.store_ports = ",".join(str(base_port + i) for i in range(3))
        self.music_ports = ",".join(str(base_port + 10 + i) for i in range(3))
        self.http_port = base_port + 20
        self.base = f"http://127.0.0.1:{self.http_port}"
        self.tag = tag
        self.sites = [None, None, None]
        self.gateway = None
        self.logs = []
        self.state_files = {}

    def log_file(self, name):
        log = open(f"/tmp/{name}.{os.getpid()}.{self.tag}.log", "a+b")
        self.logs.append(log)
        return log

    def spawn_site(self, site, old=False, durable=False):
        """(Re)spawn one musicd.  old=True pins the wire ceiling to v1 (or
        runs --old-musicd when given); durable=True keeps a state file so a
        restart is durable rather than amnesia."""
        argv = [self.old_musicd if old else self.musicd,
                "--site", str(site),
                "--store-ports", self.store_ports,
                "--music-ports", self.music_ports]
        if old:
            argv += ["--wire-max-version", "1"]
        if durable:
            path = f"/tmp/musicd{site}.{os.getpid()}.{self.tag}.state"
            self.state_files[site] = path
            argv += ["--state-file", path]
        self.sites[site] = subprocess.Popen(
            argv, stderr=self.log_file(f"musicd{site}"))

    def spawn_gateway(self):
        self.gateway = subprocess.Popen(
            [self.gateway_bin, "--music-ports", self.music_ports,
             "--port", str(self.http_port)],
            stderr=self.log_file("music_gateway"))

    def restart_site(self, site, durable=False):
        """One rolling-upgrade step: SIGTERM (drain + snapshot), wait for a
        clean exit, re-exec onto the new binary."""
        p = self.sites[site]
        p.send_signal(signal.SIGTERM)
        rc = p.wait(timeout=15)
        expect(rc == 0, f"site {site} drained and exited 0 (got {rc})")
        self.spawn_site(site, old=False, durable=durable)

    def kill_site(self, site):
        """Crash fault: SIGKILL — no drain, no snapshot, so the respawn comes
        back with whatever its last clean shutdown saved (or nothing)."""
        self.sites[site].kill()
        self.sites[site].wait(timeout=10)

    def stop_all(self):
        procs = [p for p in self.sites + [self.gateway] if p is not None]
        for p in procs:
            if p.poll() is None:
                p.send_signal(signal.SIGTERM)
        return [p.wait(timeout=15) for p in procs]

    def cleanup(self):
        for p in self.sites + [self.gateway]:
            if p is not None and p.poll() is None:
                p.kill()
        for log in self.logs:
            name = log.name
            log.close()
            try:
                os.unlink(name)
            except OSError:
                pass
        for path in self.state_files.values():
            try:
                os.unlink(path)
            except OSError:
                pass


class LockSession:
    """Lock plumbing that never leaks a queued ref.  An acquireLock enqueues
    the ref server-side, so a ref abandoned mid-bounce would head the queue
    forever (the failure detector's scan registration is in-memory and dies
    with the restarted replica) — every bail-out path releases, and refs
    whose release was swallowed by a bounce are kept for drain_orphans()."""

    def __init__(self, base):
        self.base = base
        self.lock = threading.Lock()
        self.orphans = []  # (key, ref) whose release never confirmed
        self.last_reply = None  # why the most recent acquire gave up
        self.live = {}  # (key, ref) -> lifecycle state, for diagnostics

    def _mark(self, key, ref, state):
        with self.lock:
            if state == "released":
                self.live.pop((key, ref), None)
            else:
                self.live[(key, ref)] = state

    def live_refs(self, key):
        with self.lock:
            return {r: s for (k, r), s in self.live.items() if k == key}

    def acquire(self, key, stop_ev, tries=200):
        try:
            _, r = post(f"{self.base}/v1/music",
                        {"op": "createLockRef", "key": key})
        except (urllib.error.URLError, ConnectionError, OSError,
                TimeoutError) as e:
            # The create may or may not have enqueued server-side; nothing
            # we can release without a ref, and a never-granted stray is
            # cleared by the failure detector's orphan rule.
            self.last_reply = {"error": repr(e)}
            return None
        if r.get("status") != "Ok":
            self.last_reply = r
            return None
        ref = r["lockRef"]
        self._mark(key, ref, "queued")
        for _ in range(tries):
            if stop_ev.is_set():
                break
            try:
                _, r = post(f"{self.base}/v1/music",
                            {"op": "acquireLock", "key": key, "lockRef": ref})
            except (urllib.error.URLError, ConnectionError, OSError,
                    TimeoutError) as e:
                # Transient bounce: keep the SAME ref and keep polling.  The
                # ref is already queued; abandoning it here would freeze the
                # FIFO head for everyone until the failure detector's ~60 s
                # preemption — the exact stall this harness must not cause.
                self.last_reply = {"error": repr(e)}
                time.sleep(0.1)
                continue
            if r.get("status") == "Ok":
                self._mark(key, ref, "granted")
                return ref
            self.last_reply = r
            time.sleep(0.02)
        self.release(key, ref)  # dequeue whatever the retries enqueued
        return None

    def release(self, key, ref):
        try:
            _, r = post(f"{self.base}/v1/music",
                        {"op": "releaseLock", "key": key, "lockRef": ref},
                        timeout=10)
            if r.get("status") == "Ok":
                self._mark(key, ref, "released")
                return True
        except (urllib.error.URLError, ConnectionError, OSError,
                TimeoutError):
            pass
        self._mark(key, ref, "orphaned")
        with self.lock:
            self.orphans.append((key, ref))
        return False

    def drain_orphans(self):
        """Re-release every unconfirmed ref (releaseLock is idempotent:
        dequeue of an absent ref is Ok) so the final reads can acquire."""
        with self.lock:
            orphans, self.orphans = self.orphans, []
        for key, ref in orphans:
            for _ in range(50):
                try:
                    _, r = post(f"{self.base}/v1/music",
                                {"op": "releaseLock", "key": key,
                                 "lockRef": ref}, timeout=10)
                    if r.get("status") == "Ok":
                        self._mark(key, ref, "released")
                        break
                except (urllib.error.URLError, ConnectionError, OSError,
                        TimeoutError):
                    pass
                time.sleep(0.2)
            else:
                raise RuntimeError(f"orphan ref {ref} on {key} never released")


class Worker(threading.Thread):
    """One client looping the Listing 1 flow: acquire, read, increment,
    write, release.  `confirmed` counts only increments whose criticalPut
    was acknowledged Ok — the lower bound the final counter must meet."""

    def __init__(self, sess, key, stop):
        super().__init__(daemon=True)
        self.sess = sess
        self.key = key
        self.stop_ev = stop
        self.confirmed = 0
        self.attempts = 0
        self.error = None

    def run(self):
        try:
            while not self.stop_ev.is_set():
                self.attempts += 1
                try:
                    self.one_increment()
                except (urllib.error.URLError, ConnectionError, OSError,
                        TimeoutError):
                    time.sleep(0.05)  # gateway mid-bounce; try again
        except Exception as e:  # noqa: BLE001 - surfaced by the main thread
            self.error = e

    def one_increment(self):
        ref = self.sess.acquire(self.key, self.stop_ev)
        if ref is None:
            return
        try:
            _, r = post(f"{self.sess.base}/v1/music",
                        {"op": "criticalGet", "key": self.key,
                         "lockRef": ref})
            if r.get("status") == "Ok":
                cur = int(r.get("value") or "0")
            elif r.get("code") == "not_found":
                cur = 0  # first increment ever, or an amnesia restart won LWW
            else:
                return
            st, r = post(f"{self.sess.base}/v1/music",
                         {"op": "criticalPut", "key": self.key,
                          "lockRef": ref, "value": str(cur + 1)})
            if st == 200 and r.get("status") == "Ok":
                self.confirmed += 1
        finally:
            self.sess.release(self.key, ref)


def refresh_keys(sess, extra, stop_flag):
    """One locked increment per counter through the live quorum.  Run while
    the crashed site is still down: its respawn comes back with a stale
    snapshot, and a key whose last write quorum included the dead node
    could otherwise serve an all-stale read quorum.  Re-writing every key
    through the two live sites makes both of them fresh, so any 2-of-3
    read quorum afterwards intersects a fresh node (LWW does the rest)."""
    for key in KEYS:
        done = False
        for _ in range(3):
            sess.drain_orphans()  # a worker's stuck ref must not block us
            # The queue is FIFO: keep ONE ref and poll until it reaches the
            # head.  Re-enqueueing loses our position, and a ref abandoned
            # by a dead worker ahead of us only clears on the failure
            # detector's schedule (~15 s orphan, ~60 s granted holder) —
            # poll long enough to ride that out.
            ref = sess.acquire(key, stop_flag, tries=3000)
            if ref is None:
                continue
            try:
                _, r = post(f"{sess.base}/v1/music",
                            {"op": "criticalGet", "key": key, "lockRef": ref})
                if r.get("status") == "Ok":
                    cur = int(r.get("value") or "0")
                elif r.get("code") == "not_found":
                    cur = 0
                else:
                    continue
                st, r = post(f"{sess.base}/v1/music",
                             {"op": "criticalPut", "key": key,
                              "lockRef": ref, "value": str(cur + 1)})
                if st == 200 and r.get("status") == "Ok":
                    extra[key] = extra.get(key, 0) + 1
                    done = True
                    break
            except (urllib.error.URLError, ConnectionError, OSError,
                    TimeoutError):
                continue  # transient; the finally released our ref — retry
            finally:
                sess.release(key, ref)
        if not done:
            # Which of OUR refs is still queued/granted/orphaned?  A stale
            # entry here names the leak; an empty dict means the blocking
            # ref is not ours (server-side ghost).
            print(f"  debug: live refs for {key}: {sess.live_refs(key)}",
                  file=sys.stderr)
        expect(done, f"{key} refreshed through the live quorum "
                     f"(last reply {sess.last_reply})")


def peer_versions(base):
    """node -> (connected, wire_version, reconnects) from GET /v1/status."""
    s = get_json(f"{base}/v1/status")
    return {p["node"]: (p["connected"], p["wire_version"], p["reconnects"])
            for p in s.get("peers", [])}


def await_versions(base, want, timeout_s=20.0):
    """Poll /v1/status until every node in `want` is connected at its
    expected wire version (handshakes complete asynchronously — a one-shot
    sample races the Hello exchange).  Returns the final peer map."""
    deadline = time.monotonic() + timeout_s
    pv = peer_versions(base)
    while (any(not (pv.get(n, (False, 0, 0))[0] and pv[n][1] == v)
               for n, v in want.items())
           and time.monotonic() < deadline):
        time.sleep(0.2)
        pv = peer_versions(base)
    return pv


def run_seed(args, seed):
    base_port = args.base_port + seed * 40
    fleet = Fleet(os.path.join(args.build_dir, "tools", "musicd"),
                  args.old_musicd or os.path.join(args.build_dir, "tools",
                                                  "musicd"),
                  os.path.join(args.build_dir, "tools", "music_gateway"),
                  base_port, f"s{seed}")
    stop = threading.Event()
    sess = LockSession(fleet.base)
    extra = {}  # refresh increments, counted into the oracle's lower bound
    workers = []
    try:
        print(f"seed {seed}: fleet on ports {base_port}+ "
              f"(site 0 old/v1, sites 1-2 new; all sites durable)")
        fleet.spawn_site(0, old=True, durable=True)
        fleet.spawn_site(1, old=False, durable=True)
        fleet.spawn_site(2, old=False, durable=True)
        fleet.spawn_gateway()
        wait_http(f"{fleet.base}/healthz")

        # Touch every counter once so the mixed fleet is provably serving
        # before the roll starts.
        for key in KEYS:
            ref = sess.acquire(key, stop)
            expect(ref is not None, f"mixed fleet grants the {key} lock")
            sess.release(key, ref)

        pv = await_versions(fleet.base, {3: 1, 4: 2, 5: 2})
        expect(pv[3][0] and pv[3][1] == 1,
               "site-0 route negotiated v1 (old binary)")
        expect(pv[4][1] == 2 and pv[5][1] == 2,
               "sites 1-2 negotiated v2 (new binary)")

        for key in KEYS:
            for _ in range(WORKERS_PER_KEY):
                w = Worker(sess, key, stop)
                w.start()
                workers.append(w)

        time.sleep(1.0)
        print("rolling site 0 onto the new binary (durable restart) ...")
        fleet.restart_site(0, durable=True)

        time.sleep(1.0)
        print("partition analog: SIGSTOP site 2 for 400ms ...")
        fleet.sites[2].send_signal(signal.SIGSTOP)
        time.sleep(0.4)
        fleet.sites[2].send_signal(signal.SIGCONT)

        print("rolling site 1 ...")
        fleet.restart_site(1, durable=True)

        time.sleep(1.0)
        print("rolling site 2 ...")
        fleet.restart_site(2, durable=True)

        time.sleep(0.5)
        print("crash fault: SIGKILL site 1, refresh the quorum, respawn ...")
        fleet.kill_site(1)
        time.sleep(0.5)  # let the workers experience the crash

        # Drain the client traffic before the quorum repair, as an operator
        # would: the refresh must finish before the stale site rejoins, and
        # racing it against four live workers on a degraded (2-of-3) fleet
        # turns a FIFO queue wait into minutes of contention.
        stop.set()
        for w in workers:
            w.join(timeout=60)
            expect(not w.is_alive(), "worker wound down")
            if w.error is not None:
                raise w.error

        refresh_keys(sess, extra, threading.Event())
        fleet.spawn_site(1, old=False, durable=True)

        time.sleep(1.0)
        sess.drain_orphans()

        # ECF oracle at the app level: every acknowledged locked increment
        # must be reflected in the final counter (>=, not ==: an increment
        # whose ack was lost to a bounce may have committed anyway).
        for key in KEYS:
            confirmed = (sum(w.confirmed for w in workers if w.key == key)
                         + extra.get(key, 0))
            attempts = (sum(w.attempts for w in workers if w.key == key)
                        + extra.get(key, 0))
            final = None
            for _ in range(20):
                ref = sess.acquire(key, threading.Event())
                if ref is None:
                    continue
                try:
                    _, r = post(f"{fleet.base}/v1/music",
                                {"op": "criticalGet", "key": key,
                                 "lockRef": ref})
                except (urllib.error.URLError, ConnectionError, OSError,
                        TimeoutError):
                    continue
                finally:
                    sess.release(key, ref)
                if r.get("status") == "Ok":
                    final = int(r.get("value") or "0")
                    break
            expect(final is not None, f"{key} readable after the roll")
            expect(confirmed > 0,
                   f"{key} made progress through the roll "
                   f"({confirmed}/{attempts} confirmed)")
            expect(confirmed <= final <= attempts,
                   f"{key}: no lost update (confirmed {confirmed} <= "
                   f"final {final} <= attempts {attempts})")

        # The version story after the roll: every route renegotiated v2,
        # and the restarted routes show their reconnects.
        pv = await_versions(fleet.base, {3: 2, 4: 2, 5: 2})
        for node in (3, 4, 5):
            expect(pv[node][0] and pv[node][1] == 2,
                   f"route to node {node} renegotiated v2 after the roll")
            expect(pv[node][2] >= 1,
                   f"route to node {node} counted its reconnects "
                   f"({pv[node][2]})")
        m = get_json(f"{fleet.base}/v1/metrics")["counters"]
        expect(m.get("transport.peer.3.wire_version") == 2,
               "metrics export the per-peer negotiated version")

        print("shutting down ...")
        rcs = fleet.stop_all()
        expect(all(rc == 0 for rc in rcs),
               f"fleet exited clean after the roll (rcs {rcs})")
        print(f"seed {seed}: PASS")
        return True
    except Exception as e:  # noqa: BLE001 - top-level diagnostic
        stop.set()
        print(f"seed {seed}: FAIL: {e}", file=sys.stderr)
        for log in fleet.logs:
            log.seek(0)
            sys.stderr.write(f"---- {log.name} ----\n")
            sys.stderr.buffer.write(log.read())
        return False
    finally:
        stop.set()
        fleet.cleanup()


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--base-port", type=int, default=17520)
    ap.add_argument("--seeds", type=int, default=1)
    ap.add_argument("--old-musicd", default=None,
                    help="old binary for true mixed-binary fleets "
                         "(default: the new binary pinned to v1)")
    args = ap.parse_args()

    for exe in (os.path.join(args.build_dir, "tools", "musicd"),
                os.path.join(args.build_dir, "tools", "music_gateway"),
                *( [args.old_musicd] if args.old_musicd else [] )):
        if not os.path.exists(exe):
            print(f"missing binary {exe}; build the repo first",
                  file=sys.stderr)
            return 1

    for seed in range(args.seeds):
        if not run_seed(args, seed):
            return 1
    print(f"PASS ({args.seeds} seed{'s' if args.seeds != 1 else ''})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
