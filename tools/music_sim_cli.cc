// music_sim: command-line scenario runner for the MUSIC reproduction.
//
// Spins up a simulated multi-site deployment and drives a workload against
// it, printing throughput/latency — a single binary for exploring the
// design space beyond the paper's fixed figures:
//
//   music_sim --profile lUs --mode music --clients 256 --batch 10 ...
//             --value-bytes 1024 --measure-sec 30
//   music_sim --profile lUsEu --mode mscp --lock-backend raft --nodes 9
//   music_sim --workload ycsb --ycsb-mix UR --clients 6
//   music_sim --chaos --measure-sec 120      # with failure injection
//
// Run with --help for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/music.h"
#include "fault/fault.h"
#include "fault/nemesis.h"
#include "lockstore/raft_lockstore.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/driver.h"
#include "workload/runners.h"
#include "workload/chaos.h"
#include "workload/ycsb.h"

using namespace music;

namespace {

struct Options {
  std::string profile = "lUs";
  std::string mode = "music";        // music | mscp
  std::string lock_backend = "lwt";  // lwt | raft
  std::string workload = "cs";       // cs | ycsb
  std::string ycsb_mix = "UR";       // R | UR | U
  int nodes = 3;
  int clients = 16;
  int batch = 1;
  size_t value_bytes = 10;
  int measure_sec = 30;
  int warmup_sec = 3;
  uint64_t seed = 1;
  bool chaos = false;
  std::string nemesis;  // fault schedule script ("" = no nemesis)
  bool latency_mode = false;  // single-thread latency instead of throughput
  std::string trace_out;      // Chrome trace_event JSON ("" = tracing off)
  std::string metrics_out;    // metrics dump; .csv -> CSV, else JSON
};

void usage() {
  std::printf(R"(music_sim - MUSIC reproduction scenario runner

  --profile 11|lUs|lUsEu   Table II latency profile        (default lUs)
  --mode music|mscp        criticalPut via quorum or LWT   (default music)
  --lock-backend lwt|raft  lock-store substrate (SX-A1)    (default lwt)
  --workload cs|ycsb       critical sections or YCSB       (default cs)
  --ycsb-mix R|UR|U        YCSB operation mix              (default UR)
  --nodes N                store nodes, interleaved sites  (default 3)
  --clients N              concurrent clients              (default 16)
  --batch N                criticalPuts per section        (default 1)
  --value-bytes N          payload size                    (default 10)
  --measure-sec N          measurement window              (default 30)
  --warmup-sec N           warmup                          (default 3)
  --seed N                 simulation seed                 (default 1)
  --latency                single-thread latency run
  --chaos                  inject randomized replica crashes and partitions
  --nemesis "SCRIPT"       run a scripted fault schedule (docs/FAULTS.md), e.g.
                           "at 5s partition 0|1,2 for 3s; at 10s gray 0<>1
                           loss 0.2 delay 20ms for 5s; at 12s crash store 1
                           for 2s"; times are absolute sim time incl. warmup
  --trace-out PATH         write a Chrome trace_event JSON of the run
                           (load in chrome://tracing or Perfetto)
  --metrics-out PATH       write counters/histograms; .csv -> CSV, else JSON
  --help                   this text
)");
}

bool parse(int argc, char** argv, Options& o) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--profile") o.profile = need(i);
    else if (a == "--mode") o.mode = need(i);
    else if (a == "--lock-backend") o.lock_backend = need(i);
    else if (a == "--workload") o.workload = need(i);
    else if (a == "--ycsb-mix") o.ycsb_mix = need(i);
    else if (a == "--nodes") o.nodes = std::atoi(need(i));
    else if (a == "--clients") o.clients = std::atoi(need(i));
    else if (a == "--batch") o.batch = std::atoi(need(i));
    else if (a == "--value-bytes") o.value_bytes = static_cast<size_t>(std::atoll(need(i)));
    else if (a == "--measure-sec") o.measure_sec = std::atoi(need(i));
    else if (a == "--warmup-sec") o.warmup_sec = std::atoi(need(i));
    else if (a == "--seed") o.seed = static_cast<uint64_t>(std::atoll(need(i)));
    else if (a == "--latency") o.latency_mode = true;
    else if (a == "--chaos") o.chaos = true;
    else if (a == "--nemesis") o.nemesis = need(i);
    else if (a == "--trace-out") o.trace_out = need(i);
    else if (a == "--metrics-out") o.metrics_out = need(i);
    else if (a == "--help" || a == "-h") { usage(); std::exit(0); }
    else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", argv[i]);
      return false;
    }
  }
  return true;
}

sim::LatencyProfile profile_by_name(const std::string& name) {
  if (name == "11") return sim::LatencyProfile::profile_11();
  if (name == "lUsEu") return sim::LatencyProfile::profile_luseu();
  return sim::LatencyProfile::profile_lus();
}

/// Everything a run needs, owning either lock backend.
struct Deployment {
  sim::Simulation s;
  sim::Network net;
  ds::StoreCluster store;
  std::unique_ptr<raftkv::RaftCluster> raft;
  std::unique_ptr<ls::LockBackend> locks;
  std::vector<std::unique_ptr<core::MusicReplica>> replicas;
  std::vector<std::unique_ptr<core::MusicClient>> clients;

  explicit Deployment(const Options& o)
      : s(o.seed),
        net(s,
            [&] {
              sim::NetworkConfig c;
              c.profile = profile_by_name(o.profile);
              return c;
            }()),
        store(s, net, ds::StoreConfig{}, [&] {
          std::vector<int> v;
          for (int i = 0; i < o.nodes; ++i) v.push_back(i % 3);
          return v;
        }()) {
    if (o.lock_backend == "raft") {
      raft = std::make_unique<raftkv::RaftCluster>(s, net, raftkv::RaftConfig{},
                                                   std::vector<int>{0, 1, 2});
      raft->start();
      raft->wait_for_leader();
      locks = std::make_unique<ls::RaftLockStore>(*raft);
    } else {
      locks = std::make_unique<ls::LockStore>(store);
    }
    core::MusicConfig mc;
    mc.put_mode = o.mode == "mscp" ? core::PutMode::Lwt : core::PutMode::Quorum;
    mc.t_max_cs = sim::sec(3600);
    mc.holder_timeout = sim::sec(8);
    mc.fd_interval = sim::sec(2);
    for (int site = 0; site < 3; ++site) {
      replicas.push_back(
          std::make_unique<core::MusicReplica>(store, *locks, mc, site));
      replicas.back()->start_failure_detector();
    }
    for (int i = 0; i < o.clients; ++i) {
      int site = i % 3;
      std::vector<core::MusicReplica*> prefs{replicas[static_cast<size_t>(site)].get()};
      for (int j = 0; j < 3; ++j) {
        if (j != site) prefs.push_back(replicas[static_cast<size_t>(j)].get());
      }
      clients.push_back(std::make_unique<core::MusicClient>(
          s, net, prefs, core::ClientConfig{}, site));
    }
  }

  std::vector<core::MusicClient*> client_ptrs() {
    std::vector<core::MusicClient*> v;
    for (auto& c : clients) v.push_back(c.get());
    return v;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) return 2;

  Deployment d(o);
  std::unique_ptr<obs::Tracer> tracer;
  obs::MetricsRegistry metrics;
  if (!o.trace_out.empty() || !o.metrics_out.empty()) {
    tracer = std::make_unique<obs::Tracer>();
    tracer->set_registry(&metrics);
    d.s.set_tracer(tracer.get());
  }
  std::unique_ptr<fault::Nemesis> nemesis;
  if (!o.nemesis.empty()) {
    std::string err;
    auto schedule = fault::Schedule::parse(o.nemesis, &err);
    if (!schedule) {
      std::fprintf(stderr, "bad --nemesis script: %s\n", err.c_str());
      return 2;
    }
    fault::NemesisHooks hooks;
    hooks.crash_store = [&d](int r, bool down, bool amnesia) {
      if (down && amnesia) d.store.replica(r).wipe_state();
      d.store.replica(r).set_down(down);
    };
    hooks.crash_music = [&d](int r, bool down, bool amnesia) {
      d.replicas.at(static_cast<size_t>(r))->set_down(down, amnesia);
    };
    nemesis = std::make_unique<fault::Nemesis>(d.s, d.net, std::move(hooks));
    nemesis->arm(*schedule);
    std::printf("nemesis schedule:\n%s", schedule->describe().c_str());
  }
  std::unique_ptr<wl::ChaosInjector> chaos;
  if (o.chaos) {
    std::vector<core::MusicReplica*> reps;
    for (auto& r : d.replicas) reps.push_back(r.get());
    wl::ChaosConfig cc;
    cc.seed = o.seed * 31 + 5;
    chaos = std::make_unique<wl::ChaosInjector>(d.store, reps, cc);
    chaos->start(sim::sec(o.warmup_sec + o.measure_sec));
  }

  std::shared_ptr<wl::Workload> workload;
  std::shared_ptr<wl::YcsbWorkload> ycsb;
  if (o.workload == "ycsb") {
    auto mix = o.ycsb_mix == "R"   ? wl::YcsbMix::r()
               : o.ycsb_mix == "U" ? wl::YcsbMix::u()
                                   : wl::YcsbMix::ur();
    ycsb = std::make_shared<wl::YcsbWorkload>(d.client_ptrs(), mix, 1000,
                                              o.value_bytes, o.seed * 97);
    workload = ycsb;
  } else {
    workload = std::make_shared<wl::MusicCsWorkload>(d.client_ptrs(), "cli",
                                                     o.batch, o.value_bytes);
  }

  std::printf("music_sim: profile=%s mode=%s lock-backend=%s workload=%s "
              "nodes=%d clients=%d batch=%d value=%zuB chaos=%s\n",
              o.profile.c_str(), o.mode.c_str(), o.lock_backend.c_str(),
              o.workload.c_str(), o.nodes, o.clients, o.batch, o.value_bytes,
              o.chaos ? "on" : "off");

  wl::RunResult r;
  if (o.latency_mode) {
    r = wl::run_sequential(d.s, workload, o.measure_sec,
                           sim::sec(o.measure_sec * 60));
    std::printf("latency over %llu ops: mean %.1f ms, p50 %.1f, p99 %.1f\n",
                static_cast<unsigned long long>(r.completed),
                r.latency.mean_ms(), r.latency.percentile_ms(50),
                r.latency.percentile_ms(99));
  } else {
    wl::DriverConfig cfg;
    cfg.clients = o.clients;
    cfg.warmup = sim::sec(o.warmup_sec);
    cfg.measure = sim::sec(o.measure_sec);
    r = wl::run_closed_loop(d.s, workload, cfg);
    std::printf("throughput: %.1f op/s (%.1f writes/s), mean latency %.1f ms, "
                "p99 %.1f ms, completed=%llu failed=%llu\n",
                r.throughput(), r.throughput() * o.batch,
                r.latency.mean_ms(), r.latency.percentile_ms(99),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.failed));
  }
  if (ycsb) {
    std::printf("ycsb: %llu ops, %.1f%% lock collisions\n",
                static_cast<unsigned long long>(ycsb->operations()),
                ycsb->operations() > 0
                    ? 100.0 * static_cast<double>(ycsb->collisions()) /
                          static_cast<double>(ycsb->operations())
                    : 0.0);
  }
  if (chaos) {
    std::printf("chaos injected: %llu store crashes, %llu music crashes, "
                "%llu partitions\n",
                static_cast<unsigned long long>(chaos->store_crashes_injected()),
                static_cast<unsigned long long>(chaos->music_crashes_injected()),
                static_cast<unsigned long long>(chaos->partitions_injected()));
  }
  core::ClientStats cstats;
  for (auto& c : d.clients) {
    const core::ClientStats& s = c->stats();
    cstats.attempts += s.attempts;
    cstats.retries += s.retries;
    cstats.retry_exhausted += s.retry_exhausted;
    cstats.deadline_exceeded += s.deadline_exceeded;
    cstats.demotions += s.demotions;
  }
  if (nemesis) {
    const fault::Nemesis::Counters& nc = nemesis->counters();
    std::printf("nemesis: %llu partitions, %llu link faults, %llu store "
                "crashes, %llu music crashes, %llu heals (%zu still open)\n",
                static_cast<unsigned long long>(nc.partitions),
                static_cast<unsigned long long>(nc.link_faults),
                static_cast<unsigned long long>(nc.store_crashes),
                static_cast<unsigned long long>(nc.music_crashes),
                static_cast<unsigned long long>(nc.heals),
                nemesis->open_faults());
  }
  if (nemesis || chaos || cstats.retries != 0) {
    std::printf("client retries: %llu attempts, %llu retried, %llu exhausted, "
                "%llu past deadline, %llu replica demotions\n",
                static_cast<unsigned long long>(cstats.attempts),
                static_cast<unsigned long long>(cstats.retries),
                static_cast<unsigned long long>(cstats.retry_exhausted),
                static_cast<unsigned long long>(cstats.deadline_exceeded),
                static_cast<unsigned long long>(cstats.demotions));
  }
  std::printf("simulated %.1f s in %llu events\n", sim::to_sec(d.s.now()),
              static_cast<unsigned long long>(d.s.events_run()));

  if (tracer) {
    d.net.export_metrics(metrics);
    if (nemesis) nemesis->export_metrics(metrics);
    metrics.set("client.attempts", cstats.attempts);
    metrics.set("client.retries", cstats.retries);
    metrics.set("client.retry_exhausted", cstats.retry_exhausted);
    metrics.set("client.deadline_exceeded", cstats.deadline_exceeded);
    metrics.set("client.demotions", cstats.demotions);
    metrics.set("sim.events_run", d.s.events_run());
    metrics.set("sim.now_us", static_cast<uint64_t>(d.s.now()));
    metrics.set("run.completed", r.completed);
    metrics.set("run.failed", r.failed);
    metrics.set("trace.spans", tracer->spans().size());
    metrics.set("trace.dropped_spans", tracer->dropped_spans());
    for (auto& rep : d.replicas) {
      const core::MusicStats& st = rep->stats();
      std::string p = "music.s" + std::to_string(rep->site()) + ".";
      metrics.set(p + "create_lock_ref", st.create_lock_ref);
      metrics.set(p + "acquire_attempts", st.acquire_attempts);
      metrics.set(p + "acquire_granted", st.acquire_granted);
      metrics.set(p + "synchronizations", st.synchronizations);
      metrics.set(p + "critical_puts", st.critical_puts);
      metrics.set(p + "critical_gets", st.critical_gets);
      metrics.set(p + "releases", st.releases);
      metrics.set(p + "forced_releases", st.forced_releases);
    }
    bool ok = true;
    if (!o.trace_out.empty()) {
      ok = obs::write_file(o.trace_out, obs::chrome_trace_json(*tracer)) && ok;
      std::printf("trace: %zu spans (%llu dropped) -> %s\n",
                  tracer->spans().size(),
                  static_cast<unsigned long long>(tracer->dropped_spans()),
                  o.trace_out.c_str());
    }
    if (!o.metrics_out.empty()) {
      bool csv = o.metrics_out.size() >= 4 &&
                 o.metrics_out.compare(o.metrics_out.size() - 4, 4, ".csv") == 0;
      ok = obs::write_file(o.metrics_out, csv ? obs::metrics_csv(metrics)
                                              : obs::metrics_json(metrics)) &&
           ok;
      std::printf("metrics: %s -> %s\n", csv ? "csv" : "json",
                  o.metrics_out.c_str());
    }
    d.s.set_tracer(nullptr);
    if (!ok) return 1;
  }
  return 0;
}
