// Figure 5: single-thread mean latency.
//   (a) CassaEV / MUSIC / MSCP full-operation latency across profiles.
//   (b) fine-grained breakdown of the MUSIC operations for lUs:
//       createLockRef (C), acquireLock peek (L) + grant (Q), criticalPut
//       (Q for MUSIC vs P for MSCP), releaseLock (C).
// Paper (lUs): createLockRef/releaseLock 219-230ms (4 RTTs), peek ~0.67ms,
// grant ~55ms, MUSIC put ~93ms, MSCP put ~270ms.
//
// Part (a)'s nine (profile, system) cells are independent seeded worlds and
// run in parallel via par::run_worlds; output order is fixed by the job
// list, so the table is identical at any thread count.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "common.h"

using namespace music;
using namespace music::bench;

namespace {

constexpr uint64_t kSeed = 7;
constexpr int kOps = 40;

CellResult music_latency(const sim::LatencyProfile& profile,
                         core::PutMode mode) {
  // The paper runs a load generator on each site; average the per-site
  // single-thread latencies (sites see different quorum distances,
  // especially on lUsEu where Frankfurt is 100-150ms away).  Each site runs
  // kOps sections, so merging the samples equals averaging the site means.
  WallTimer wall;
  CellResult out;
  for (int site = 0; site < 3; ++site) {
    MusicWorld w(kSeed + static_cast<uint64_t>(site), profile, mode, 3, 1);
    auto clients = w.client_ptrs();
    std::rotate(clients.begin(), clients.begin() + site, clients.end());
    auto workload =
        std::make_shared<wl::MusicCsWorkload>(clients, "lat", 1, 10);
    auto r = wl::run_sequential(w.sim, workload, kOps);
    out.run.latency.merge(r.latency);
    out.run.completed += r.completed;
    out.events += w.sim.events_run();
  }
  out.wall_sec = wall.elapsed_sec();
  return out;
}

CellResult cassaev_latency(const sim::LatencyProfile& profile) {
  WallTimer wall;
  sim::Simulation s(kSeed);
  sim::NetworkConfig nc;
  nc.profile = profile;
  sim::Network net(s, nc);
  ds::StoreCluster store(s, net, ds::StoreConfig{}, {0, 1, 2});
  auto workload = std::make_shared<wl::CassaEvWorkload>(store, "ev", 10);
  CellResult out;
  out.run = wl::run_sequential(s, workload, kOps);
  out.events = s.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

/// Per-operation breakdown, measured client-side over many sections.
struct Breakdown {
  wl::Samples create, peek, grant, put, release;
};

sim::Task<void> measure_breakdown(MusicWorld& w, Breakdown& out, int rounds) {
  auto& c = *w.clients.front();
  for (int i = 0; i < rounds; ++i) {
    Key key = "bd" + std::to_string(i % 4);
    sim::Time t0 = w.sim.now();
    auto ref = co_await c.create_lock_ref(key);
    out.create.add(w.sim.now() - t0);
    if (!ref.ok()) continue;

    t0 = w.sim.now();
    auto acq = co_await c.acquire_lock_blocking(key, ref.value());
    out.grant.add(w.sim.now() - t0);
    if (!acq.ok()) continue;

    // The peek ('L'): a poll by a waiter that is NOT first in the queue
    // takes only the local lock-store read (plus the client hop).
    auto waiter = co_await c.create_lock_ref(key);
    if (waiter.ok()) {
      t0 = w.sim.now();
      auto poll = co_await c.acquire_lock(key, waiter.value());
      (void)poll;
      out.peek.add(w.sim.now() - t0);
      co_await c.remove_lock_ref(key, waiter.value());
    }

    t0 = w.sim.now();
    co_await c.critical_put(key, ref.value(), Value("v"));
    out.put.add(w.sim.now() - t0);

    t0 = w.sim.now();
    co_await c.release_lock(key, ref.value());
    out.release.add(w.sim.now() - t0);
  }
}

}  // namespace

int main() {
  BenchReport report("fig5");
  std::printf("Figure 5(a): single-thread mean latency (ms), batch=1, 10B\n");
  std::printf("paper (lUs): CassaEV ~1, MUSIC ~590 total section, MSCP ~30%% "
              "higher on cross-region profiles\n");
  hr();
  std::printf("%-8s %10s %10s %10s %12s\n", "profile", "CassaEV", "MUSIC",
              "MSCP", "MSCP/MUSIC");
  Csv csv("fig5a.csv");
  csv.row("profile,cassaev_ms,music_ms,mscp_ms");
  auto profiles = sim::LatencyProfile::table2();
  std::vector<std::function<CellResult()>> jobs;
  for (const auto& profile : profiles) {
    jobs.push_back([profile] { return cassaev_latency(profile); });
    jobs.push_back(
        [profile] { return music_latency(profile, core::PutMode::Quorum); });
    jobs.push_back(
        [profile] { return music_latency(profile, core::PutMode::Lwt); });
  }
  auto cells = run_cells(std::move(jobs));
  for (size_t i = 0; i < profiles.size(); ++i) {
    double ev = cells[i * 3].run.latency.mean_ms();
    double mu = cells[i * 3 + 1].run.latency.mean_ms();
    double ms = cells[i * 3 + 2].run.latency.mean_ms();
    std::printf("%-8s %10.2f %10.1f %10.1f %11.2fx\n", profiles[i].name.c_str(),
                ev, mu, ms, ms / mu);
    csv.row(profiles[i].name + "," + std::to_string(ev) + "," +
            std::to_string(mu) + "," + std::to_string(ms));
    std::string base = "fig5a.";
    base += profiles[i].name;
    report.set(base + ".music_ms", mu);
    report.set(base + ".mscp_ms", ms);
    report.add_cell(base + ".cassaev", cells[i * 3]);
    report.add_cell(base + ".music", cells[i * 3 + 1]);
    report.add_cell(base + ".mscp", cells[i * 3 + 2]);
  }
  hr();

  std::printf("\nFigure 5(b): operation breakdown, lUs profile (ms)\n");
  std::printf("paper: createLockRef 219-230 (C), peek 0.67 (L), grant ~55 (Q),"
              " criticalPut ~93 (Q) / MSCP ~270 (P), releaseLock 219-230 (C)\n");
  hr();
  Csv csv_b("fig5b.csv");
  csv_b.row("op,mode,mean_ms");
  auto lus = sim::LatencyProfile::profile_lus();
  for (auto mode : {core::PutMode::Quorum, core::PutMode::Lwt}) {
    WallTimer wall;
    MusicWorld w(kSeed, lus, mode, 3, 1);
    Breakdown bd;
    bool done = false;
    sim::spawn(w.sim, [](MusicWorld& world, Breakdown& b, bool& d) -> sim::Task<void> {
      co_await measure_breakdown(world, b, kOps);
      d = true;
    }(w, bd, done));
    w.sim.run_until(sim::sec(600));
    const char* name = mode == core::PutMode::Quorum ? "MUSIC" : "MSCP";
    CellResult cell;
    cell.events = w.sim.events_run();
    cell.wall_sec = wall.elapsed_sec();
    std::string base = "fig5b.";
    base += name;
    report.add_cell(base, cell);
    if (!done) {
      std::printf("%s: breakdown did not finish\n", name);
      continue;
    }
    std::printf("%-6s createLockRef %7.1f | peek(L) %5.2f | grant(Q) %6.1f | "
                "criticalPut(%s) %6.1f | releaseLock %7.1f\n",
                name, bd.create.mean_ms(), bd.peek.mean_ms(),
                bd.grant.mean_ms(),
                mode == core::PutMode::Quorum ? "Q" : "P", bd.put.mean_ms(),
                bd.release.mean_ms());
    for (auto& [op, s] :
         std::vector<std::pair<const char*, wl::Samples*>>{{"createLockRef", &bd.create},
                                                           {"peek", &bd.peek},
                                                           {"grant", &bd.grant},
                                                           {"criticalPut", &bd.put},
                                                           {"releaseLock", &bd.release}}) {
      csv_b.row(std::string(op) + "," + name + "," + std::to_string(s->mean_ms()));
    }
  }
  hr();
  return 0;
}
