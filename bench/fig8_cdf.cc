// Figure 8 (§X-B1): latency CDFs of MUSIC vs MSCP, profiles 11 and lUs.
// Paper shape: for the within-region 11 profile the two curves nearly
// coincide; for the cross-region lUs profile MUSIC sits ~30% left of MSCP.
//
// The four (profile, mode) collections are independent seeded worlds, fanned
// out over par::run_worlds; each returns its full latency sample set so the
// CDF is computed on the main thread in fixed order.
#include <cstdio>
#include <memory>
#include <string>

#include "common.h"

using namespace music;
using namespace music::bench;

namespace {

struct CdfConfig {
  std::string pname;
  core::PutMode mode = core::PutMode::Quorum;
};

struct CdfCell {
  wl::Samples samples;
  CellResult cell;
};

CdfCell collect(const CdfConfig& cfg) {
  WallTimer wall;
  auto profile = cfg.pname == "11" ? sim::LatencyProfile::profile_11()
                                   : sim::LatencyProfile::profile_lus();
  MusicWorld w(33, profile, cfg.mode, 3, 1);
  auto workload =
      std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(), "cdf", 1, 10);
  CdfCell out;
  out.cell.run = wl::run_sequential(w.sim, workload, 200);
  out.samples = out.cell.run.latency;
  out.cell.events = w.sim.events_run();
  out.cell.wall_sec = wall.elapsed_sec();
  return out;
}

}  // namespace

int main() {
  BenchReport report("fig8");
  std::printf("Figure 8: critical-section latency CDFs, MUSIC vs MSCP\n");
  std::printf("paper: '11' curves nearly coincide; 'lUs' separates by ~30%%\n");
  Csv csv("fig8.csv");
  csv.row("profile,mode,percentile,latency_ms");
  std::vector<CdfConfig> configs;
  for (const char* pname : {"11", "lUs"}) {
    configs.push_back({pname, core::PutMode::Quorum});
    configs.push_back({pname, core::PutMode::Lwt});
  }
  auto cells = par::run_worlds(configs, collect, bench_threads());
  for (size_t i = 0; i < configs.size(); i += 2) {
    const std::string& pname = configs[i].pname;
    const auto& music_s = cells[i].samples;
    const auto& mscp_s = cells[i + 1].samples;
    hr();
    std::printf("profile %-5s %14s %14s\n", pname.c_str(), "MUSIC (ms)",
                "MSCP (ms)");
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
      std::printf("   p%-9.0f %14.1f %14.1f\n", p, music_s.percentile_ms(p),
                  mscp_s.percentile_ms(p));
      csv.row(pname + ",MUSIC," + std::to_string(p) + "," +
              std::to_string(music_s.percentile_ms(p)));
      csv.row(pname + ",MSCP," + std::to_string(p) + "," +
              std::to_string(mscp_s.percentile_ms(p)));
    }
    double sep = mscp_s.percentile_ms(50) / music_s.percentile_ms(50);
    std::printf("   median separation: %.2fx %s\n", sep,
                pname == "11" ? "(paper: ~1x)" : "(paper: ~1.3x)");
    std::string base = "fig8.";
    base += pname;
    report.set(base + ".median_sep", sep);
    report.add_cell(base + ".music", cells[i].cell);
    report.add_cell(base + ".mscp", cells[i + 1].cell);
  }
  hr();
  return 0;
}
