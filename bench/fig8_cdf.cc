// Figure 8 (§X-B1): latency CDFs of MUSIC vs MSCP, profiles 11 and lUs.
// Paper shape: for the within-region 11 profile the two curves nearly
// coincide; for the cross-region lUs profile MUSIC sits ~30% left of MSCP.
#include <cstdio>
#include <memory>

#include "common.h"

using namespace music;
using namespace music::bench;

namespace {

wl::Samples collect(const sim::LatencyProfile& profile, core::PutMode mode) {
  MusicWorld w(33, profile, mode, 3, 1);
  auto workload =
      std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(), "cdf", 1, 10);
  auto r = wl::run_sequential(w.sim, workload, 200);
  return r.latency;
}

}  // namespace

int main() {
  std::printf("Figure 8: critical-section latency CDFs, MUSIC vs MSCP\n");
  std::printf("paper: '11' curves nearly coincide; 'lUs' separates by ~30%%\n");
  Csv csv("fig8.csv");
  csv.row("profile,mode,percentile,latency_ms");
  for (const char* pname : {"11", "lUs"}) {
    auto profile = std::string(pname) == "11"
                       ? sim::LatencyProfile::profile_11()
                       : sim::LatencyProfile::profile_lus();
    auto music_s = collect(profile, core::PutMode::Quorum);
    auto mscp_s = collect(profile, core::PutMode::Lwt);
    hr();
    std::printf("profile %-5s %14s %14s\n", pname, "MUSIC (ms)", "MSCP (ms)");
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
      std::printf("   p%-9.0f %14.1f %14.1f\n", p, music_s.percentile_ms(p),
                  mscp_s.percentile_ms(p));
      csv.row(std::string(pname) + ",MUSIC," + std::to_string(p) + "," +
              std::to_string(music_s.percentile_ms(p)));
      csv.row(std::string(pname) + ",MSCP," + std::to_string(p) + "," +
              std::to_string(mscp_s.percentile_ms(p)));
    }
    double sep = mscp_s.percentile_ms(50) / music_s.percentile_ms(50);
    std::printf("   median separation: %.2fx %s\n", sep,
                std::string(pname) == "11" ? "(paper: ~1x)"
                                           : "(paper: ~1.3x)");
  }
  hr();
  return 0;
}
