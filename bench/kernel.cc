// bench_kernel: the fast-path simulation kernel against the seed kernel it
// replaced, measured three ways — events/sec, ns/event, and heap
// allocs/event (counted by interposing global operator new).
//
// The baseline is an in-binary copy of the seed kernel's design:
// `std::priority_queue` of events each owning a `std::function<void()>`
// (which heap-allocates for any capture over libstdc++'s 16-byte SSO), with
// the const_cast move-out-of-top idiom.  The fast path is the real
// `sim::Simulation`: InlineFn payloads (64B inline, pooled overflow) run
// in place in a pooled arena, ordered by the hybrid timer wheel (near
// window) + 8-ary far heap of 24-byte entries.
//
// Both kernels run the identical workload: `kChains` self-rescheduling
// event chains whose lambdas capture 48 bytes — within InlineFn's inline
// buffer, beyond std::function's SSO.  Allocations are counted only after a
// warmup so the arena/heap growth phase is excluded: the steady-state claim
// is 0 allocs/event for the fast path.
//
// Exit status enforces the acceptance gate: >= 2x events/sec over the
// baseline and 0 steady-state allocs/event.  `--smoke` runs a shorter
// quota (CI perf-smoke job).  Writes BENCH_kernel.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <queue>
#include <vector>

#include "sim/simulation.h"

// ---- interposing allocation counter ---------------------------------------
//
// Replacing the global allocation functions is the one sanctioned way to
// observe every heap allocation in the process (std::function's included).
// The relaxed atomic costs a few ns per alloc — identical for both kernels.

namespace {
std::atomic<uint64_t> g_allocs{0};
uint64_t allocs_now() { return g_allocs.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al), n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

// ---- the seed kernel, verbatim in design ----------------------------------

class BaselineKernel;
thread_local BaselineKernel* tl_baseline_sim = nullptr;

class BaselineKernel {
 public:
  using Time = int64_t;

  void schedule(Time delay, std::function<void()> fn) {
    q_.push(Event{now_ + delay, seq_++, std::move(fn), trace_ctx_});
  }

  size_t run_until_idle(size_t max_events) {
    size_t n = 0;
    while (!q_.empty() && n < max_events) {
      const Event& top = q_.top();
      now_ = top.at;
      // The seed's const_cast idiom: move the payload out of the const top
      // before popping, then invoke after the pop.
      std::function<void()> fn = std::move(const_cast<Event&>(top).fn);
      uint64_t ctx = top.ctx;
      q_.pop();
      ++n;
      ++events_run_;
      // Trace-context restore + current-sim scope, exactly as the seed
      // kernel's step() performed per event.
      trace_ctx_ = ctx;
      ++run_depth_;
      BaselineKernel* prev = tl_baseline_sim;
      tl_baseline_sim = this;
      fn();
      tl_baseline_sim = prev;
      --run_depth_;
      if (run_depth_ == 0) trace_ctx_ = 0;
    }
    return n;
  }

  uint64_t events_run() const { return events_run_; }

 private:
  struct Event {
    Time at;
    uint64_t seq;
    mutable std::function<void()> fn;
    uint64_t ctx;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> q_;
  Time now_ = 0;
  uint64_t seq_ = 0;
  uint64_t events_run_ = 0;
  uint64_t trace_ctx_ = 0;
  int run_depth_ = 0;
};

// ---- the shared workload ---------------------------------------------------
//
// Each chain event captures 48 bytes (kernel*, quota*, sink*, 24B payload):
// inside InlineFn's 64B inline buffer, outside std::function's 16B SSO.

template <typename Kernel>
void pump(Kernel& k, uint64_t* quota, uint64_t* sink, uint64_t salt) {
  if (*quota == 0) return;
  --*quota;
  uint64_t pay[3] = {salt, salt ^ 0x9e3779b97f4a7c15ull, salt * 5 + 1};
  // ~3/8 immediate continuations (futures, service submits), the rest spread
  // over a 1ms window like RPC delivery timers.
  int64_t delay = (salt % 8) < 3 ? 0 : static_cast<int64_t>(1 + (salt >> 3) % 1024);
  k.schedule(delay,
             [&k, quota, sink, pay] {
               *sink = *sink ^ (pay[0] + pay[1] * 3 + pay[2]);
               pump(k, quota, sink,
                    pay[0] * 6364136223846793005ull + 1442695040888963407ull);
             });
}

struct KernelStats {
  uint64_t events = 0;
  double wall_sec = 0;
  double events_per_sec = 0;
  double ns_per_event = 0;
  double allocs_per_event = 0;
  uint64_t sink = 0;  // defeats dead-code elimination; printed for show
};

// A mid-size simulated world keeps a few hundred events pending (clients,
// timers, in-flight messages); this is that regime, not a 2-event toy heap
// and not a cache-busting million-entry one.
constexpr int kChains = 384;

template <typename Kernel>
KernelStats drive(Kernel& k, uint64_t total_events, uint64_t warmup_events) {
  KernelStats st;
  std::vector<uint64_t> quotas(kChains, total_events / kChains);
  for (int c = 0; c < kChains; ++c) {
    pump(k, &quotas[c], &st.sink, 0x517cc1b727220a95ull * (c + 1));
  }
  // Warmup: grows the heap vector / event arena / overflow pool to steady
  // state and faults the pages in.  Excluded from every measurement.
  k.run_until_idle(warmup_events);
  uint64_t a0 = allocs_now();
  auto t0 = std::chrono::steady_clock::now();
  size_t ran = k.run_until_idle(SIZE_MAX);
  auto t1 = std::chrono::steady_clock::now();
  uint64_t a1 = allocs_now();
  st.events = ran;
  st.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  st.events_per_sec = static_cast<double>(ran) / st.wall_sec;
  st.ns_per_event = st.wall_sec * 1e9 / static_cast<double>(ran);
  st.allocs_per_event =
      static_cast<double>(a1 - a0) / static_cast<double>(ran);
  return st;
}

void print_stats(const char* name, const KernelStats& s) {
  std::printf("%-10s %12.0f events/s  %8.1f ns/event  %10.4f allocs/event  "
              "(%llu events, %.3fs, sink %llx)\n",
              name, s.events_per_sec, s.ns_per_event, s.allocs_per_event,
              static_cast<unsigned long long>(s.events), s.wall_sec,
              static_cast<unsigned long long>(s.sink));
}

void write_json(const KernelStats& base, const KernelStats& fast,
                double speedup) {
  std::FILE* f = std::fopen("BENCH_kernel.json", "w");
  if (!f) return;
  auto block = [&](const char* name, const KernelStats& s, bool comma) {
    std::fprintf(f,
                 "  \"%s\": {\n"
                 "    \"events\": %llu,\n"
                 "    \"wall_sec\": %.6f,\n"
                 "    \"events_per_sec\": %.1f,\n"
                 "    \"ns_per_event\": %.2f,\n"
                 "    \"allocs_per_event\": %.6f\n"
                 "  }%s\n",
                 name, static_cast<unsigned long long>(s.events), s.wall_sec,
                 s.events_per_sec, s.ns_per_event, s.allocs_per_event,
                 comma ? "," : "");
  };
  std::fprintf(f, "{\n  \"bench\": \"kernel\",\n  \"capture_bytes\": 48,\n");
  block("baseline", base, true);
  block("fastpath", fast, true);
  std::fprintf(f, "  \"speedup_events_per_sec\": %.3f\n}\n", speedup);
  std::fclose(f);
  std::printf("[bench] wrote BENCH_kernel.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const uint64_t total = smoke ? 800'000 : 8'000'000;
  const uint64_t warmup = total / 8;
  std::printf("simulation kernel fast path vs seed kernel "
              "(%d chains, 48B captures, %llu events%s)\n",
              kChains, static_cast<unsigned long long>(total),
              smoke ? ", smoke" : "");

  // Paired reps: each rep runs baseline then fastpath back to back, so a
  // slow host window hits both and the per-rep ratio stays meaningful.
  // The median-ratio rep is reported — robust against a contended rep in
  // either direction, with no cherry-picking toward a fast one.
  constexpr int kReps = 5;
  KernelStats bases[kReps];
  KernelStats fasts[kReps];
  int order[kReps];
  for (int rep = 0; rep < kReps; ++rep) {
    {
      BaselineKernel k;
      bases[rep] = drive(k, total, warmup);
    }
    {
      music::sim::Simulation k(1);
      fasts[rep] = drive(k, total, warmup);
    }
    order[rep] = rep;
  }
  auto ratio = [&](int r) {
    return fasts[r].events_per_sec / bases[r].events_per_sec;
  };
  std::sort(order, order + kReps,
            [&](int a, int b) { return ratio(a) < ratio(b); });
  int med = order[kReps / 2];
  KernelStats base = bases[med];
  KernelStats fast = fasts[med];
  print_stats("baseline", base);
  print_stats("fastpath", fast);

  double speedup = fast.events_per_sec / base.events_per_sec;
  std::printf("speedup: %.2fx events/sec\n", speedup);
  write_json(base, fast, speedup);

  bool ok = true;
  if (speedup < 2.0) {
    std::printf("FAIL: fast path is %.2fx the baseline (need >= 2x)\n",
                speedup);
    ok = false;
  }
  if (fast.allocs_per_event != 0.0) {
    std::printf("FAIL: fast path allocates %.6f/event in steady state "
                "(need 0 for <=48B captures)\n", fast.allocs_per_event);
    ok = false;
  }
  if (ok) std::printf("ok: >=2x and alloc-free steady state\n");
  return ok ? 0 : 1;
}
