// Figure 7: mean latency of a critical section with identical guarantees,
// MUSIC vs CockroachDB (the §X-B3 recipe), lUs profile, single thread.
//   (a) vs batch size (state updates per section)
//   (b) vs data size at batch 100
// Paper shape: MUSIC ~2-4x faster; the gap follows §X-B4's cost model —
// CockroachDB pays 2 consensus rounds per update, MUSIC one quorum write
// (its consensus lock cost amortizes over the batch).
#include <cstdio>
#include <memory>

#include "common.h"

using namespace music;
using namespace music::bench;

namespace {

constexpr uint64_t kSeed = 21;

double music_cs_ms(int batch, size_t vsize) {
  MusicWorld w(kSeed, sim::LatencyProfile::profile_lus(),
               core::PutMode::Quorum, 3, 1);
  auto workload =
      std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(), "cs", batch, vsize);
  auto r = wl::run_sequential(w.sim, workload, batch >= 100 ? 5 : 15,
                              sim::sec(7200));
  return r.latency.mean_ms();
}

double cdb_cs_ms(int batch, size_t vsize) {
  CdbWorld w(kSeed, sim::LatencyProfile::profile_lus(), 1);
  auto workload =
      std::make_shared<wl::CdbCsWorkload>(w.client_ptrs(), "cs", batch, vsize);
  auto r = wl::run_sequential(w.sim, workload, batch >= 100 ? 5 : 15,
                              sim::sec(7200));
  return r.latency.mean_ms();
}

}  // namespace

int main() {
  std::printf("Figure 7(a): critical-section mean latency vs batch size (ms), "
              "lUs, single thread, 10B\n");
  std::printf("paper: MUSIC ~2-4x faster than the CockroachDB critical "
              "section; gap grows with batch\n");
  hr();
  std::printf("%-8s %12s %14s %10s\n", "batch", "MUSIC", "CockroachDB",
              "Cdb/MUSIC");
  Csv csv("fig7a.csv");
  csv.row("batch,music_ms,cdb_ms");
  for (int batch : {1, 10, 50, 100}) {
    double mu = music_cs_ms(batch, 10);
    double cdb = cdb_cs_ms(batch, 10);
    std::printf("%-8d %12.1f %14.1f %9.2fx\n", batch, mu, cdb, cdb / mu);
    csv.row(std::to_string(batch) + "," + std::to_string(mu) + "," +
            std::to_string(cdb));
  }
  hr();

  std::printf("\nFigure 7(b): critical-section mean latency vs data size "
              "(ms), batch=100, lUs\n");
  hr();
  std::printf("%-8s %12s %14s %10s\n", "size", "MUSIC", "CockroachDB",
              "Cdb/MUSIC");
  Csv csv_b("fig7b.csv");
  csv_b.row("bytes,music_ms,cdb_ms");
  for (size_t vsize : {size_t{10}, size_t{1024}, size_t{16 * 1024},
                       size_t{256 * 1024}}) {
    double mu = music_cs_ms(100, vsize);
    double cdb = cdb_cs_ms(100, vsize);
    std::printf("%-8s %12.1f %14.1f %9.2fx\n", size_label(vsize).c_str(), mu,
                cdb, cdb / mu);
    csv_b.row(std::to_string(vsize) + "," + std::to_string(mu) + "," +
              std::to_string(cdb));
  }
  hr();
  return 0;
}
