// Figure 7: mean latency of a critical section with identical guarantees,
// MUSIC vs CockroachDB (the §X-B3 recipe), lUs profile, single thread.
//   (a) vs batch size (state updates per section)
//   (b) vs data size at batch 100
// Paper shape: MUSIC ~2-4x faster; the gap follows §X-B4's cost model —
// CockroachDB pays 2 consensus rounds per update, MUSIC one quorum write
// (its consensus lock cost amortizes over the batch).
//
// Each (system, batch/size) cell is an independent seeded world, fanned out
// via par::run_worlds.
#include <cstdio>
#include <memory>

#include "common.h"

using namespace music;
using namespace music::bench;

namespace {

constexpr uint64_t kSeed = 21;

CellResult music_cs(int batch, size_t vsize) {
  WallTimer wall;
  MusicWorld w(kSeed, sim::LatencyProfile::profile_lus(),
               core::PutMode::Quorum, 3, 1);
  auto workload =
      std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(), "cs", batch, vsize);
  CellResult out;
  out.run = wl::run_sequential(w.sim, workload, batch >= 100 ? 5 : 15,
                               sim::sec(7200));
  out.events = w.sim.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

CellResult cdb_cs(int batch, size_t vsize) {
  WallTimer wall;
  CdbWorld w(kSeed, sim::LatencyProfile::profile_lus(), 1);
  auto workload =
      std::make_shared<wl::CdbCsWorkload>(w.client_ptrs(), "cs", batch, vsize);
  CellResult out;
  out.run = wl::run_sequential(w.sim, workload, batch >= 100 ? 5 : 15,
                               sim::sec(7200));
  out.events = w.sim.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

}  // namespace

int main() {
  BenchReport report("fig7");
  std::printf("Figure 7(a): critical-section mean latency vs batch size (ms), "
              "lUs, single thread, 10B\n");
  std::printf("paper: MUSIC ~2-4x faster than the CockroachDB critical "
              "section; gap grows with batch\n");
  hr();
  std::printf("%-8s %12s %14s %10s\n", "batch", "MUSIC", "CockroachDB",
              "Cdb/MUSIC");
  Csv csv("fig7a.csv");
  csv.row("batch,music_ms,cdb_ms");
  std::vector<int> batches{1, 10, 50, 100};
  std::vector<std::function<CellResult()>> jobs;
  for (int batch : batches) {
    jobs.push_back([batch] { return music_cs(batch, 10); });
    jobs.push_back([batch] { return cdb_cs(batch, 10); });
  }
  auto cells = run_cells(std::move(jobs));
  for (size_t i = 0; i < batches.size(); ++i) {
    double mu = cells[i * 2].run.latency.mean_ms();
    double cdb = cells[i * 2 + 1].run.latency.mean_ms();
    std::printf("%-8d %12.1f %14.1f %9.2fx\n", batches[i], mu, cdb, cdb / mu);
    csv.row(std::to_string(batches[i]) + "," + std::to_string(mu) + "," +
            std::to_string(cdb));
    std::string base = "fig7a.b";
    base += std::to_string(batches[i]);
    report.add_cell(base + ".music", cells[i * 2]);
    report.add_cell(base + ".cdb", cells[i * 2 + 1]);
  }
  hr();

  std::printf("\nFigure 7(b): critical-section mean latency vs data size "
              "(ms), batch=100, lUs\n");
  hr();
  std::printf("%-8s %12s %14s %10s\n", "size", "MUSIC", "CockroachDB",
              "Cdb/MUSIC");
  Csv csv_b("fig7b.csv");
  csv_b.row("bytes,music_ms,cdb_ms");
  std::vector<size_t> sizes{10, 1024, 16 * 1024, 256 * 1024};
  std::vector<std::function<CellResult()>> jobs_b;
  for (size_t vsize : sizes) {
    jobs_b.push_back([vsize] { return music_cs(100, vsize); });
    jobs_b.push_back([vsize] { return cdb_cs(100, vsize); });
  }
  auto cells_b = run_cells(std::move(jobs_b));
  for (size_t i = 0; i < sizes.size(); ++i) {
    double mu = cells_b[i * 2].run.latency.mean_ms();
    double cdb = cells_b[i * 2 + 1].run.latency.mean_ms();
    std::printf("%-8s %12.1f %14.1f %9.2fx\n", size_label(sizes[i]).c_str(),
                mu, cdb, cdb / mu);
    csv_b.row(std::to_string(sizes[i]) + "," + std::to_string(mu) + "," +
              std::to_string(cdb));
    std::string base = "fig7b.";
    base += size_label(sizes[i]);
    report.add_cell(base + ".music", cells_b[i * 2]);
    report.add_cell(base + ".cdb", cells_b[i * 2 + 1]);
  }
  hr();
  return 0;
}
