// Google-benchmark micro-benchmarks of the MUSIC primitives.
//
// Each benchmark runs one operation on the simulated cluster and reports
// the SIMULATED time via manual timing, so `benchmark`'s statistics
// machinery (repetitions, aggregates) works over virtual-time measurements.
// Wall-clock columns are meaningless here; read the "Time" column as
// simulated seconds per operation.
#include <benchmark/benchmark.h>

#include <memory>

#include "common.h"

using namespace music;
using namespace music::bench;

namespace {

/// Runs `n` full critical sections and returns total simulated seconds.
double run_sections(core::PutMode mode, const sim::LatencyProfile& profile,
                    int batch, int n) {
  MusicWorld w(1234, profile, mode, 3, 1);
  auto workload =
      std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(), "mb", batch, 10);
  auto r = wl::run_sequential(w.sim, workload, n, sim::sec(7200));
  return sim::to_sec(static_cast<sim::Duration>(
      r.latency.mean_ms() * 1000.0 * static_cast<double>(r.completed)));
}

void BM_MusicCriticalSection(benchmark::State& state) {
  auto profile = sim::LatencyProfile::profile_lus();
  int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    double sim_seconds = run_sections(core::PutMode::Quorum, profile, batch, 5);
    state.SetIterationTime(sim_seconds / 5.0);
  }
  state.counters["writes_per_section"] = batch;
}
BENCHMARK(BM_MusicCriticalSection)->Arg(1)->Arg(10)->Arg(100)->UseManualTime()
    ->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_MscpCriticalSection(benchmark::State& state) {
  auto profile = sim::LatencyProfile::profile_lus();
  int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    double sim_seconds = run_sections(core::PutMode::Lwt, profile, batch, 5);
    state.SetIterationTime(sim_seconds / 5.0);
  }
}
BENCHMARK(BM_MscpCriticalSection)->Arg(1)->Arg(10)->UseManualTime()
    ->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_QuorumPut(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s(1);
    sim::NetworkConfig nc;
    nc.profile = sim::LatencyProfile::profile_lus();
    sim::Network net(s, nc);
    ds::StoreCluster store(s, net, ds::StoreConfig{}, {0, 1, 2});
    sim::Time cost = 0;
    bool done = false;
    sim::spawn(s, [](sim::Simulation& sm, ds::StoreCluster& st, sim::Time& c,
                     bool& d) -> sim::Task<void> {
      sim::Time t0 = sm.now();
      co_await st.replica_at_site(0).put("k", ds::Cell(Value("v"), 1),
                                         ds::Consistency::Quorum);
      c = sm.now() - t0;
      d = true;
    }(s, store, cost, done));
    s.run_until(sim::sec(10));
    state.SetIterationTime(done ? sim::to_sec(cost) : 10.0);
  }
}
BENCHMARK(BM_QuorumPut)->UseManualTime()->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_LwtCas(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s(1);
    sim::NetworkConfig nc;
    nc.profile = sim::LatencyProfile::profile_lus();
    sim::Network net(s, nc);
    ds::StoreCluster store(s, net, ds::StoreConfig{}, {0, 1, 2});
    sim::Time cost = 0;
    bool done = false;
    sim::spawn(s, [](sim::Simulation& sm, ds::StoreCluster& st, sim::Time& c,
                     bool& d) -> sim::Task<void> {
      ds::LwtUpdate set = [](const std::optional<ds::Cell>&) {
        return ds::LwtDecision(true, Value("v"), std::nullopt);
      };
      sim::Time t0 = sm.now();
      co_await st.replica_at_site(0).lwt("k", set);
      c = sm.now() - t0;
      d = true;
    }(s, store, cost, done));
    s.run_until(sim::sec(10));
    state.SetIterationTime(done ? sim::to_sec(cost) : 10.0);
  }
}
BENCHMARK(BM_LwtCas)->UseManualTime()->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// Raw simulator speed: events processed per wall second (the one
/// wall-clock-meaningful benchmark here).
void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s(1);
    int n = 0;
    for (int i = 0; i < 100000; ++i) {
      s.schedule(i % 1000, [&n] { ++n; });
    }
    s.run_until_idle();
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace

BENCHMARK_MAIN();
