// Ablations of the design choices DESIGN.md calls out:
//   1. Local lsPeek vs quorum peek for acquireLock polling (§III-A's
//      separation of createLockRef and acquireLock).
//   2. forcedRelease delta sensitivity: delta=0 loses the synchFlag race
//      the paper's delta>0 requirement exists for (§IV-B); delta beyond T
//      masks the next holder's reset.
//   3. Lock-cost amortization: per-write latency of a critical section as
//      batch grows (the §X-B4 argument in one curve).
//   4. Lock-store substrate (§X-A1): Cassandra LWTs (the paper's production
//      choice, 4 RTTs per consensus write) vs a Raft-backed lock store (the
//      "1-RTT consensus" future work), with the same MUSIC core on top.
//
// Ablations 3 and 4 are sweeps of independent seeded worlds and fan out via
// par::run_worlds; 1 and 2 are single-world probes and stay sequential.
#include <cstdio>
#include <memory>

#include "common.h"
#include "lockstore/raft_lockstore.h"

using namespace music;
using namespace music::bench;

namespace {

constexpr uint64_t kSeed = 99;

CellResult amortization_cell(const sim::LatencyProfile& lus, int batch) {
  WallTimer wall;
  MusicWorld w(kSeed, lus, core::PutMode::Quorum, 3, 1);
  auto workload =
      std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(), "a", batch, 10);
  CellResult out;
  out.run = wl::run_sequential(w.sim, workload, 6, sim::sec(3600));
  out.events = w.sim.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

CellResult lwt_cell(const sim::LatencyProfile& lus, int batch) {
  WallTimer wall;
  MusicWorld w(kSeed, lus, core::PutMode::Quorum, 3, 1);
  auto workload =
      std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(), "l", batch, 10);
  CellResult out;
  out.run = wl::run_sequential(w.sim, workload, 6, sim::sec(3600));
  out.events = w.sim.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

// Raft backend: same data store, lock queues on a Raft KV.
CellResult raft_cell(const sim::LatencyProfile& lus, int batch) {
  WallTimer wall;
  sim::Simulation s(kSeed);
  sim::NetworkConfig nc;
  nc.profile = lus;
  sim::Network net(s, nc);
  ds::StoreCluster store(s, net, ds::StoreConfig{}, {0, 1, 2});
  raftkv::RaftCluster raft(s, net, raftkv::RaftConfig{}, {0, 1, 2});
  raft.start();
  raft.wait_for_leader();
  ls::RaftLockStore locks(raft);
  std::vector<std::unique_ptr<core::MusicReplica>> reps;
  for (int site = 0; site < 3; ++site) {
    reps.push_back(std::make_unique<core::MusicReplica>(
        store, locks, core::MusicConfig{}, site));
  }
  std::vector<core::MusicReplica*> prefs{reps[0].get(), reps[1].get(),
                                         reps[2].get()};
  core::MusicClient client(s, net, prefs, core::ClientConfig{}, 0);
  auto workload = std::make_shared<wl::MusicCsWorkload>(
      std::vector<core::MusicClient*>{&client}, "r", batch, 10);
  CellResult out;
  out.run = wl::run_sequential(s, workload, 6, sim::sec(3600));
  out.events = s.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

}  // namespace

int main() {
  BenchReport report("ablation");
  auto lus = sim::LatencyProfile::profile_lus();

  // ---- 1. local vs quorum peek --------------------------------------------
  std::printf("Ablation 1: acquireLock polling cost — local lsPeek (the "
              "paper's design) vs a quorum peek\n");
  hr();
  {
    WallTimer wall;
    MusicWorld w(kSeed, lus, core::PutMode::Quorum, 3, 1);
    wl::Samples local_peek, quorum_peek;
    bool done = false;
    sim::spawn(w.sim, [](MusicWorld& world, wl::Samples& lp, wl::Samples& qp,
                         bool& d) -> sim::Task<void> {
      auto& c = *world.clients.front();
      auto ref = co_await c.create_lock_ref("k");
      co_await c.acquire_lock_blocking("k", ref.value());
      auto& coord = world.store.replica_at_site(0);
      for (int i = 0; i < 50; ++i) {
        sim::Time t0 = world.sim.now();
        co_await world.locks.peek(coord, "k");
        lp.add(world.sim.now() - t0);
        t0 = world.sim.now();
        co_await world.locks.peek_quorum(coord, "k");
        qp.add(world.sim.now() - t0);
      }
      d = true;
    }(w, local_peek, quorum_peek, done));
    w.sim.run_until(sim::sec(120));
    std::printf("  local peek  %8.3f ms   (paper: ~0.67 ms, 'L')\n",
                local_peek.mean_ms());
    std::printf("  quorum peek %8.3f ms   (%.0fx costlier: why the paper "
                "polls locally)\n",
                quorum_peek.mean_ms(),
                quorum_peek.mean_ms() / local_peek.mean_ms());
    CellResult cell;
    cell.events = w.sim.events_run();
    cell.wall_sec = wall.elapsed_sec();
    report.set("ablation1.local_peek_ms", local_peek.mean_ms());
    report.set("ablation1.quorum_peek_ms", quorum_peek.mean_ms());
    report.add_cell("ablation1", cell);
  }
  hr();

  // ---- 2. delta sensitivity ------------------------------------------------
  std::printf("\nAblation 2: forcedRelease delta — synchFlag race outcome at "
              "the store level\n");
  hr();
  for (sim::Duration delta : {sim::Duration{0}, sim::Duration{1}}) {
    // Build a world with the given delta and stage the §IV-B race: holder
    // r's acquireLock resets the flag "concurrently" with forcedRelease(r).
    // At the timestamp level: the forced set must beat every reset stamped
    // under r.  With delta=0 it ties r's latest possible reset and loses
    // (LWW keeps the reset): the next holder would skip synchronization.
    MusicWorld w(kSeed, lus, core::PutMode::Quorum, 3, 1, sim::sec(60));
    for (auto& r : w.replicas) {
      // Reach into config via a fresh replica set would be cleaner; the
      // MusicConfig is fixed at construction, so demonstrate with the V2S
      // stamps directly.
      (void)r;
    }
    V2S v2s(sim::sec(60));
    ScalarTs reset_latest = v2s.encode(5, sim::sec(60) - 1);
    ScalarTs forced = v2s.encode_forced_release(5, delta);
    bool forced_wins = forced > reset_latest;
    std::printf("  delta=%lldus: forcedRelease stamp %s the holder's latest "
                "possible synchFlag reset -> %s\n",
                static_cast<long long>(delta),
                forced_wins ? "beats" : "TIES/LOSES to",
                forced_wins ? "flag stays dirty; next holder synchronizes (correct)"
                            : "flag can end clean; next holder may SKIP the "
                              "synchronization (Critical-Section Invariant lost)");
  }
  {
    V2S v2s(sim::sec(60));
    ScalarTs forced = v2s.encode_forced_release(5, sim::sec(60) + 1);
    std::printf("  delta=T+1us: forced stamp %s the NEXT holder's first reset "
                "-> later sections would re-synchronize forever\n",
                forced >= v2s.encode(6, 0) ? "reaches into" : "stays below");
  }
  hr();

  // ---- 3. amortization curve ------------------------------------------------
  std::printf("\nAblation 3: per-write cost of a critical section vs batch "
              "size (the amortization the paper's use cases rely on)\n");
  hr();
  std::printf("%-8s %16s %16s\n", "batch", "section ms", "ms per write");
  Csv csv("ablation_amortization.csv");
  csv.row("batch,section_ms,per_write_ms");
  std::vector<int> batches{1, 2, 5, 10, 25, 50, 100};
  std::vector<std::function<CellResult()>> jobs;
  for (int batch : batches) {
    jobs.push_back([lus, batch] { return amortization_cell(lus, batch); });
  }
  auto cells = run_cells(std::move(jobs));
  for (size_t i = 0; i < batches.size(); ++i) {
    int batch = batches[i];
    double section_ms = cells[i].run.latency.mean_ms();
    double per_write = section_ms / batch;
    std::printf("%-8d %16.1f %16.1f\n", batch, section_ms, per_write);
    csv.row(std::to_string(batch) + "," + std::to_string(section_ms) + "," +
            std::to_string(per_write));
    std::string base = "ablation3.b";
    base += std::to_string(batch);
    report.set(base + ".per_write_ms", per_write);
    report.add_cell(base, cells[i]);
  }
  std::printf("(per-write cost approaches the bare quorum-put latency as the "
              "2 consensus lock ops amortize)\n");
  hr();

  // ---- 4. lock-store substrate: LWT vs Raft ---------------------------------
  std::printf("\nAblation 4: lock-store substrate — Cassandra LWT (paper, "
              "SX-A1) vs Raft consensus (the named future work)\n");
  hr();
  std::printf("%-8s %18s %18s\n", "batch", "LWT section ms", "Raft section ms");
  Csv csv4("ablation_lockstore.csv");
  csv4.row("batch,lwt_ms,raft_ms");
  std::vector<int> batches4{1, 10, 100};
  std::vector<std::function<CellResult()>> jobs4;
  for (int batch : batches4) {
    jobs4.push_back([lus, batch] { return lwt_cell(lus, batch); });
    jobs4.push_back([lus, batch] { return raft_cell(lus, batch); });
  }
  auto cells4 = run_cells(std::move(jobs4));
  for (size_t i = 0; i < batches4.size(); ++i) {
    int batch = batches4[i];
    double lwt_ms = cells4[i * 2].run.latency.mean_ms();
    double raft_ms = cells4[i * 2 + 1].run.latency.mean_ms();
    std::printf("%-8d %18.1f %18.1f\n", batch, lwt_ms, raft_ms);
    csv4.row(std::to_string(batch) + "," + std::to_string(lwt_ms) + "," +
             std::to_string(raft_ms));
    std::string base = "ablation4.b";
    base += std::to_string(batch);
    report.add_cell(base + ".lwt", cells4[i * 2]);
    report.add_cell(base + ".raft", cells4[i * 2 + 1]);
  }
  std::printf("(the Raft backend cuts createLockRef/releaseLock from 4 RTTs "
              "to ~1 consensus round + a leader hop; criticalPuts are "
              "identical, so the gap shrinks as the batch amortizes the lock "
              "cost — exactly the SX-A1 trade the paper describes)\n");
  hr();
  return 0;
}
