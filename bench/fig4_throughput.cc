// Figure 4: peak write throughput.
//   (a) CassaEV / MUSIC / MSCP across the Table II latency profiles
//       (batch 1, 10B values, saturating clients, non-overlapping keys).
//   (b) MUSIC and MSCP as the Cassandra cluster grows 3 -> 6 -> 9 nodes
//       (RF=3, keys sharded, lUs profile).
// Paper shapes: MUSIC ~30% over MSCP on every profile; CassaEV ~41k op/s
// (the upper bound); throughput grows with cluster size (Fig. 4b).
#include <cstdio>
#include <memory>

#include "common.h"

using namespace music;
using namespace music::bench;

namespace {

constexpr int kMusicClientsPerSite = 86;  // ~256 saturating threads
constexpr int kCassaClientsPerSite = 171;
constexpr uint64_t kSeed = 42;

wl::RunResult run_music(const sim::LatencyProfile& profile, core::PutMode mode,
                        int nodes, int clients_per_site = kMusicClientsPerSite) {
  MusicWorld w(kSeed, profile, mode, nodes, clients_per_site);
  auto workload =
      std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(), "bench", 1, 10);
  wl::DriverConfig cfg;
  cfg.clients = static_cast<int>(w.clients.size());
  cfg.warmup = sim::sec(3);
  // High-concurrency (server-bound) runs use a shorter window to keep the
  // harness fast; the measurement is stable well before 10s.
  cfg.measure = clients_per_site > kMusicClientsPerSite ? sim::sec(10)
                                                        : sim::sec(20);
  return wl::run_closed_loop(w.sim, workload, cfg);
}

wl::RunResult run_cassaev(const sim::LatencyProfile& profile) {
  sim::Simulation s(kSeed);
  sim::NetworkConfig nc;
  nc.profile = profile;
  sim::Network net(s, nc);
  ds::StoreCluster store(s, net, ds::StoreConfig{}, {0, 1, 2});
  auto workload = std::make_shared<wl::CassaEvWorkload>(store, "ev", 10);
  wl::DriverConfig cfg;
  cfg.clients = 3 * kCassaClientsPerSite;
  cfg.warmup = sim::sec(2);
  cfg.measure = sim::sec(10);
  return wl::run_closed_loop(s, workload, cfg);
}

}  // namespace

int main() {
  std::printf("Figure 4(a): peak throughput (op/s), batch=1, 10B values\n");
  std::printf("paper (lUs): CassaEV ~41000, MUSIC 885.4, MSCP ~680 "
              "(MUSIC ~1.3x MSCP on all profiles)\n");
  hr();
  std::printf("%-8s %12s %12s %12s %14s\n", "profile", "CassaEV", "MUSIC",
              "MSCP", "MUSIC/MSCP");
  Csv csv("fig4a.csv");
  csv.row("profile,cassaev_ops,music_ops,mscp_ops");
  for (const auto& profile : sim::LatencyProfile::table2()) {
    auto ev = run_cassaev(profile);
    auto mu = run_music(profile, core::PutMode::Quorum, 3);
    auto ms = run_music(profile, core::PutMode::Lwt, 3);
    std::printf("%-8s %12.0f %12.1f %12.1f %13.2fx\n", profile.name.c_str(),
                ev.throughput(), mu.throughput(), ms.throughput(),
                mu.throughput() / ms.throughput());
    csv.row(profile.name + "," + std::to_string(ev.throughput()) + "," +
            std::to_string(mu.throughput()) + "," +
            std::to_string(ms.throughput()));
  }
  hr();

  std::printf("\nFigure 4(b): scaling the cluster 3 -> 9 nodes "
              "(lUs, RF=3 sharded)\n");
  std::printf("paper: both scale up with nodes; MUSIC stays ~1.30-1.36x MSCP\n");
  std::printf("(run at 12x the thread count of 4(a) so the 3-node cluster is "
              "server-bound and scaling is visible)\n");
  hr();
  std::printf("%-8s %12s %12s %14s\n", "nodes", "MUSIC", "MSCP", "MUSIC/MSCP");
  Csv csv_b("fig4b.csv");
  csv_b.row("nodes,music_ops,mscp_ops");
  auto lus = sim::LatencyProfile::profile_lus();
  for (int nodes : {3, 6, 9}) {
    auto mu = run_music(lus, core::PutMode::Quorum, nodes, 12 * kMusicClientsPerSite);
    auto ms = run_music(lus, core::PutMode::Lwt, nodes, 12 * kMusicClientsPerSite);
    std::printf("%-8d %12.1f %12.1f %13.2fx\n", nodes, mu.throughput(),
                ms.throughput(), mu.throughput() / ms.throughput());
    csv_b.row(std::to_string(nodes) + "," + std::to_string(mu.throughput()) +
              "," + std::to_string(ms.throughput()));
  }
  hr();
  return 0;
}
