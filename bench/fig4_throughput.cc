// Figure 4: peak write throughput.
//   (a) CassaEV / MUSIC / MSCP across the Table II latency profiles
//       (batch 1, 10B values, saturating clients, non-overlapping keys).
//   (b) MUSIC and MSCP as the Cassandra cluster grows 3 -> 6 -> 9 nodes
//       (RF=3, keys sharded, lUs profile).
// Paper shapes: MUSIC ~30% over MSCP on every profile; CassaEV ~41k op/s
// (the upper bound); throughput grows with cluster size (Fig. 4b).
//
// Every (profile, system) cell is an independent seeded world, so the sweep
// fans out across par::run_worlds — rows print in table order regardless of
// which world finished first, and the numbers are thread-count invariant.
#include <cstdio>
#include <memory>

#include "common.h"

using namespace music;
using namespace music::bench;

namespace {

constexpr int kMusicClientsPerSite = 86;  // ~256 saturating threads
constexpr int kCassaClientsPerSite = 171;
constexpr uint64_t kSeed = 42;

CellResult run_music(const sim::LatencyProfile& profile, core::PutMode mode,
                     int nodes, int clients_per_site = kMusicClientsPerSite) {
  WallTimer wall;
  MusicWorld w(kSeed, profile, mode, nodes, clients_per_site);
  auto workload =
      std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(), "bench", 1, 10);
  wl::DriverConfig cfg;
  cfg.clients = static_cast<int>(w.clients.size());
  cfg.warmup = sim::sec(3);
  // High-concurrency (server-bound) runs use a shorter window to keep the
  // harness fast; the measurement is stable well before 10s.
  cfg.measure = clients_per_site > kMusicClientsPerSite ? sim::sec(10)
                                                        : sim::sec(20);
  CellResult out;
  out.run = wl::run_closed_loop(w.sim, workload, cfg);
  out.events = w.sim.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

CellResult run_cassaev(const sim::LatencyProfile& profile) {
  WallTimer wall;
  sim::Simulation s(kSeed);
  sim::NetworkConfig nc;
  nc.profile = profile;
  sim::Network net(s, nc);
  ds::StoreCluster store(s, net, ds::StoreConfig{}, {0, 1, 2});
  auto workload = std::make_shared<wl::CassaEvWorkload>(store, "ev", 10);
  wl::DriverConfig cfg;
  cfg.clients = 3 * kCassaClientsPerSite;
  cfg.warmup = sim::sec(2);
  cfg.measure = sim::sec(10);
  CellResult out;
  out.run = wl::run_closed_loop(s, workload, cfg);
  out.events = s.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

}  // namespace

int main() {
  BenchReport report("fig4");
  std::printf("Figure 4(a): peak throughput (op/s), batch=1, 10B values\n");
  std::printf("paper (lUs): CassaEV ~41000, MUSIC 885.4, MSCP ~680 "
              "(MUSIC ~1.3x MSCP on all profiles)\n");
  hr();
  std::printf("%-8s %12s %12s %12s %14s\n", "profile", "CassaEV", "MUSIC",
              "MSCP", "MUSIC/MSCP");
  Csv csv("fig4a.csv");
  csv.row("profile,cassaev_ops,music_ops,mscp_ops");

  auto profiles = sim::LatencyProfile::table2();
  std::vector<std::function<CellResult()>> jobs;
  for (const auto& profile : profiles) {
    jobs.push_back([profile] { return run_cassaev(profile); });
    jobs.push_back(
        [profile] { return run_music(profile, core::PutMode::Quorum, 3); });
    jobs.push_back(
        [profile] { return run_music(profile, core::PutMode::Lwt, 3); });
  }
  auto cells = run_cells(std::move(jobs));
  for (size_t i = 0; i < profiles.size(); ++i) {
    const auto& ev = cells[i * 3];
    const auto& mu = cells[i * 3 + 1];
    const auto& ms = cells[i * 3 + 2];
    std::printf("%-8s %12.0f %12.1f %12.1f %13.2fx\n",
                profiles[i].name.c_str(), ev.run.throughput(),
                mu.run.throughput(), ms.run.throughput(),
                mu.run.throughput() / ms.run.throughput());
    csv.row(profiles[i].name + "," + std::to_string(ev.run.throughput()) +
            "," + std::to_string(mu.run.throughput()) + "," +
            std::to_string(ms.run.throughput()));
    std::string base = "fig4a.";
    base += profiles[i].name;
    report.set(base + ".music_ops", mu.run.throughput());
    report.set(base + ".mscp_ops", ms.run.throughput());
    report.add_cell(base + ".cassaev", ev);
    report.add_cell(base + ".music", mu);
    report.add_cell(base + ".mscp", ms);
  }
  hr();

  std::printf("\nFigure 4(b): scaling the cluster 3 -> 9 nodes "
              "(lUs, RF=3 sharded)\n");
  std::printf("paper: both scale up with nodes; MUSIC stays ~1.30-1.36x MSCP\n");
  std::printf("(run at 12x the thread count of 4(a) so the 3-node cluster is "
              "server-bound and scaling is visible)\n");
  hr();
  std::printf("%-8s %12s %12s %14s\n", "nodes", "MUSIC", "MSCP", "MUSIC/MSCP");
  Csv csv_b("fig4b.csv");
  csv_b.row("nodes,music_ops,mscp_ops");
  auto lus = sim::LatencyProfile::profile_lus();
  std::vector<int> node_counts{3, 6, 9};
  std::vector<std::function<CellResult()>> jobs_b;
  for (int nodes : node_counts) {
    jobs_b.push_back([lus, nodes] {
      return run_music(lus, core::PutMode::Quorum, nodes,
                       12 * kMusicClientsPerSite);
    });
    jobs_b.push_back([lus, nodes] {
      return run_music(lus, core::PutMode::Lwt, nodes,
                       12 * kMusicClientsPerSite);
    });
  }
  auto cells_b = run_cells(std::move(jobs_b));
  for (size_t i = 0; i < node_counts.size(); ++i) {
    const auto& mu = cells_b[i * 2];
    const auto& ms = cells_b[i * 2 + 1];
    std::printf("%-8d %12.1f %12.1f %13.2fx\n", node_counts[i],
                mu.run.throughput(), ms.run.throughput(),
                mu.run.throughput() / ms.run.throughput());
    csv_b.row(std::to_string(node_counts[i]) + "," +
              std::to_string(mu.run.throughput()) + "," +
              std::to_string(ms.run.throughput()));
    std::string base = "fig4b.n";
    base += std::to_string(node_counts[i]);
    report.add_cell(base + ".music", mu);
    report.add_cell(base + ".mscp", ms);
  }
  hr();
  return 0;
}
