// Figure 9 (§X-B2): YCSB workloads over MUSIC vs MSCP, lUs profile, with
// lock collisions allowed (Zipfian key choice shared across threads).
//   R:  100% reads     UR: 50/50 reads/updates     U: 100% updates
// Paper shape: MUSIC ahead of MSCP by ~6-20% throughput and 0-20% latency
// (the gap grows with the update fraction: updates are where LWT puts
// hurt); ~5.5% of operations experience lock collisions.
//
// Each (mode, mix, seed) run is an independent world, so the full
// 2 modes x 3 mixes x 4 seeds = 24-world matrix fans out over
// par::run_worlds; the seed averaging happens on the main thread.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"

using namespace music;
using namespace music::bench;

namespace {

constexpr uint64_t kSeed = 55;
constexpr uint64_t kRecords = 1000;
// One thread per site: aggregate demand stays below the hottest Zipfian
// key's critical-section capacity, yielding the paper's ~5% collision
// regime instead of a convoy on the head key.
constexpr int kClientsPerSite = 2;
// Average over several seeds: at the paper's ~5% collision regime the
// per-run means are dominated by which ops happened to collide.
constexpr int kSeeds = 4;

struct YcsbConfig {
  core::PutMode mode = core::PutMode::Quorum;
  wl::YcsbMix mix;
  uint64_t seed = 0;
};

struct YcsbCell {
  CellResult cell;
  double collision_pct = 0;
};

struct YcsbResult {
  double throughput = 0;
  double mean_ms = 0;
  double collision_pct = 0;
  CellResult agg;
};

YcsbCell run_one(const YcsbConfig& cfg) {
  WallTimer wall;
  MusicWorld w(cfg.seed, sim::LatencyProfile::profile_lus(), cfg.mode, 3,
               kClientsPerSite);
  auto workload = std::make_shared<wl::YcsbWorkload>(
      w.client_ptrs(), cfg.mix, kRecords, 10, cfg.seed * 97);
  wl::DriverConfig dcfg;
  dcfg.clients = static_cast<int>(w.clients.size());
  dcfg.warmup = sim::sec(5);
  dcfg.measure = sim::sec(500);
  YcsbCell out;
  out.cell.run = wl::run_closed_loop(w.sim, workload, dcfg);
  out.cell.events = w.sim.events_run();
  out.cell.wall_sec = wall.elapsed_sec();
  out.collision_pct =
      workload->operations() > 0
          ? 100.0 * static_cast<double>(workload->collisions()) /
                static_cast<double>(workload->operations())
          : 0.0;
  return out;
}

/// Seed-average of kSeeds consecutive cells.
YcsbResult reduce(const std::vector<YcsbCell>& cells, size_t first) {
  YcsbResult out;
  for (size_t i = first; i < first + kSeeds; ++i) {
    out.throughput += cells[i].cell.run.throughput() / kSeeds;
    out.mean_ms += cells[i].cell.run.latency.mean_ms() / kSeeds;
    out.collision_pct += cells[i].collision_pct / kSeeds;
    out.agg.events += cells[i].cell.events;
    out.agg.wall_sec += cells[i].cell.wall_sec;
  }
  return out;
}

}  // namespace

int main() {
  BenchReport report("fig9");
  std::printf("Figure 9: YCSB R / UR / U over MUSIC vs MSCP (lUs, Zipfian, "
              "%d threads)\n", 3 * kClientsPerSite);
  std::printf("paper: MUSIC +6-20%% throughput, 0-20%% lower latency; ~5.5%% "
              "lock collisions\n");
  hr();
  std::printf("%-4s | %10s %10s %7s | %10s %10s %7s | %8s\n", "load",
              "MUSIC op/s", "lat ms", "coll%", "MSCP op/s", "lat ms", "coll%",
              "MU/MSCP");
  Csv csv("fig9.csv");
  csv.row("load,mode,ops,latency_ms,collision_pct");
  std::vector<wl::YcsbMix> mixes{wl::YcsbMix::r(), wl::YcsbMix::ur(),
                                 wl::YcsbMix::u()};
  std::vector<YcsbConfig> configs;
  for (const auto& mix : mixes) {
    for (auto mode : {core::PutMode::Quorum, core::PutMode::Lwt}) {
      for (int i = 0; i < kSeeds; ++i) {
        configs.push_back({mode, mix, kSeed + static_cast<uint64_t>(i)});
      }
    }
  }
  auto cells = par::run_worlds(configs, run_one, bench_threads());
  for (size_t m = 0; m < mixes.size(); ++m) {
    const auto& mix = mixes[m];
    auto mu = reduce(cells, m * 2 * kSeeds);
    auto ms = reduce(cells, m * 2 * kSeeds + kSeeds);
    std::printf("%-4s | %10.1f %10.1f %6.1f%% | %10.1f %10.1f %6.1f%% | %7.2fx\n",
                mix.name.c_str(), mu.throughput, mu.mean_ms, mu.collision_pct,
                ms.throughput, ms.mean_ms, ms.collision_pct,
                mu.throughput / ms.throughput);
    csv.row(mix.name + ",MUSIC," + std::to_string(mu.throughput) + "," +
            std::to_string(mu.mean_ms) + "," + std::to_string(mu.collision_pct));
    csv.row(mix.name + ",MSCP," + std::to_string(ms.throughput) + "," +
            std::to_string(ms.mean_ms) + "," + std::to_string(ms.collision_pct));
    std::string base = "fig9.";
    base += mix.name;
    report.set(base + ".music_ops", mu.throughput);
    report.set(base + ".mscp_ops", ms.throughput);
    report.add_cell(base + ".music", mu.agg);
    report.add_cell(base + ".mscp", ms.agg);
  }
  hr();
  return 0;
}
