// Figure 9 (§X-B2): YCSB workloads over MUSIC vs MSCP, lUs profile, with
// lock collisions allowed (Zipfian key choice shared across threads).
//   R:  100% reads     UR: 50/50 reads/updates     U: 100% updates
// Paper shape: MUSIC ahead of MSCP by ~6-20% throughput and 0-20% latency
// (the gap grows with the update fraction: updates are where LWT puts
// hurt); ~5.5% of operations experience lock collisions.
#include <cstdio>
#include <memory>

#include "common.h"

using namespace music;
using namespace music::bench;

namespace {

constexpr uint64_t kSeed = 55;
constexpr uint64_t kRecords = 1000;
// One thread per site: aggregate demand stays below the hottest Zipfian
// key's critical-section capacity, yielding the paper's ~5% collision
// regime instead of a convoy on the head key.
constexpr int kClientsPerSite = 2;

struct YcsbResult {
  double throughput = 0;
  double mean_ms = 0;
  double collision_pct = 0;
};

YcsbResult run(core::PutMode mode, const wl::YcsbMix& mix) {
  // Average over several seeds: at the paper's ~5% collision regime the
  // per-run means are dominated by which ops happened to collide.
  YcsbResult out;
  constexpr int kSeeds = 4;
  for (int i = 0; i < kSeeds; ++i) {
    MusicWorld w(kSeed + static_cast<uint64_t>(i),
                 sim::LatencyProfile::profile_lus(), mode, 3, kClientsPerSite);
    auto workload = std::make_shared<wl::YcsbWorkload>(
        w.client_ptrs(), mix, kRecords, 10, (kSeed + static_cast<uint64_t>(i)) * 97);
    wl::DriverConfig cfg;
    cfg.clients = static_cast<int>(w.clients.size());
    cfg.warmup = sim::sec(5);
    cfg.measure = sim::sec(500);
    auto r = wl::run_closed_loop(w.sim, workload, cfg);
    out.throughput += r.throughput() / kSeeds;
    out.mean_ms += r.latency.mean_ms() / kSeeds;
    out.collision_pct +=
        (workload->operations() > 0
             ? 100.0 * static_cast<double>(workload->collisions()) /
                   static_cast<double>(workload->operations())
             : 0.0) /
        kSeeds;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Figure 9: YCSB R / UR / U over MUSIC vs MSCP (lUs, Zipfian, "
              "%d threads)\n", 3 * kClientsPerSite);
  std::printf("paper: MUSIC +6-20%% throughput, 0-20%% lower latency; ~5.5%% "
              "lock collisions\n");
  hr();
  std::printf("%-4s | %10s %10s %7s | %10s %10s %7s | %8s\n", "load",
              "MUSIC op/s", "lat ms", "coll%", "MSCP op/s", "lat ms", "coll%",
              "MU/MSCP");
  Csv csv("fig9.csv");
  csv.row("load,mode,ops,latency_ms,collision_pct");
  for (const auto& mix : {wl::YcsbMix::r(), wl::YcsbMix::ur(), wl::YcsbMix::u()}) {
    auto mu = run(core::PutMode::Quorum, mix);
    auto ms = run(core::PutMode::Lwt, mix);
    std::printf("%-4s | %10.1f %10.1f %6.1f%% | %10.1f %10.1f %6.1f%% | %7.2fx\n",
                mix.name.c_str(), mu.throughput, mu.mean_ms, mu.collision_pct,
                ms.throughput, ms.mean_ms, ms.collision_pct,
                mu.throughput / ms.throughput);
    csv.row(mix.name + ",MUSIC," + std::to_string(mu.throughput) + "," +
            std::to_string(mu.mean_ms) + "," + std::to_string(mu.collision_pct));
    csv.row(mix.name + ",MSCP," + std::to_string(ms.throughput) + "," +
            std::to_string(ms.mean_ms) + "," + std::to_string(ms.collision_pct));
  }
  hr();
  return 0;
}
