// bench_cluster: horizontal scaling of the sharded MUSIC cluster.
//
// The paper deploys MUSIC as ONE lock/data domain; the cluster layer
// (src/cluster/) shards the keyspace over N such domains behind one
// shard-aware client.  This bench measures what that buys: aggregate
// criticalPut sections/sec as the shard count sweeps 1 -> 64 under a fixed
// client population, paper-style methodology otherwise — closed loop,
// non-overlapping per-client key ranges (§VIII-a), 10B values — with a
// Zipfian(theta=0.99) hotspot inside every client's range.
//
// Topology: the co-located 1ms-RTT "local" profile, so the sweep isolates
// group *capacity* (each group's store replicas model 8 service workers at
// 190us/op — see ds::StoreConfig) rather than WAN round trips: with
// per-client key ranges there are no lock collisions, so throughput is
// service-capacity-bound and must grow monotonically with the group count
// until the closed loop itself saturates.  The harness ENFORCES
// monotonicity over 1 -> 16 (exit 1 on a regression); 32 and 64 are
// reported for the tail of the curve.
//
// Full sweep: 10^4 clients x 100 keys each (10^6-key space), shards
// {1,2,4,8,16,32,64}.  --smoke: 2000 clients, shards {1,4,16}, shorter
// windows — the CI perf gate (tools/check_perf.py vs
// bench/baseline/BENCH_cluster.json) runs this mode.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/client.h"
#include "cluster/cluster.h"
#include "common.h"
#include "workload/zipfian.h"

using namespace music;
using namespace music::bench;

namespace {

struct SweepConfig {
  int shards = 1;
  int clients = 10000;
  uint64_t keys_per_client = 100;
  double theta = 0.99;
  size_t value_size = 10;
  uint64_t seed = 1;
  sim::Duration warmup = sim::ms(500);
  sim::Duration measure = sim::sec(2);
};

/// One logical client's op: a full Listing 1 update section on a key drawn
/// Zipfian-hot from that client's OWN 100-key range ("u<cid>/k<rank>") —
/// the paper's non-overlapping-range methodology, so lock queues never
/// collide and the sweep measures capacity, not convoys.
class ClusterSweepWorkload : public wl::Workload {
 public:
  ClusterSweepWorkload(std::vector<std::unique_ptr<cluster::Client>> clients,
                       uint64_t keys_per_client, double theta,
                       size_t value_size, uint64_t seed)
      : clients_(std::move(clients)),
        zipf_(keys_per_client, theta),
        value_size_(value_size),
        rng_(seed) {}

  sim::Task<bool> run_once(int cid) override {
    auto& c = *clients_[static_cast<size_t>(cid) % clients_.size()];
    // Built stepwise: GCC 12 -Werror=restrict mis-fires on literal +
    // to_string rvalue concats inside coroutine frames (see CdbWorld).
    Key key = "u";
    key += std::to_string(cid);
    key += "/k";
    key += std::to_string(zipf_.next(rng_));
    auto ref = co_await c.create_lock_ref(key);
    if (!ref.ok()) co_return false;
    auto acq = co_await c.acquire_lock_blocking(key, ref.value());
    if (!acq.ok()) {
      co_await c.remove_lock_ref(key, ref.value());
      co_return false;
    }
    // Tiny payload, cost-modelled at the spec size (see common::Value).
    bool ok = (co_await c.critical_put(key, ref.value(),
                                       Value("v", value_size_)))
                  .ok();
    co_await c.release_lock(key, ref.value());
    co_return ok;
  }

  const cluster::ClusterClientStats& client_stats(size_t i) const {
    return clients_[i]->stats();
  }
  size_t num_clients() const { return clients_.size(); }

 private:
  std::vector<std::unique_ptr<cluster::Client>> clients_;
  wl::Zipfian zipf_;
  size_t value_size_;
  sim::Rng rng_;
};

struct SweepCell {
  CellResult cell;
  uint64_t critical_puts = 0;       // cluster-wide, all groups
  uint64_t admitted = 0;            // ops through the epoch gate
  uint64_t wrong_shard_retries = 0; // client-side re-routes
  double p50_ms = 0;
  double p99_ms = 0;
};

SweepCell run_one(const SweepConfig& cfg) {
  WallTimer wall;
  sim::Simulation sim(cfg.seed);
  sim::NetworkConfig nc;
  nc.profile = sim::LatencyProfile::uniform(3, 1.0, 0.2);  // "local"
  sim::Network net(sim, nc);

  cluster::ClusterConfig cc;
  cc.shards = cfg.shards;
  // Pre-size for the hot head of every client's range; the Zipfian tail
  // rarely materialises inside the window, so rehashing stays off the
  // measured path.
  cc.store.expected_keys = 1 << 15;
  cc.music.holder_timeout = sim::sec(8);
  cc.music.fd_interval = sim::sec(2);
  cluster::Cluster cluster(sim, net, cc);

  std::vector<std::unique_ptr<cluster::Client>> clients;
  clients.reserve(static_cast<size_t>(cfg.clients));
  for (int i = 0; i < cfg.clients; ++i) {
    clients.push_back(std::make_unique<cluster::Client>(cluster, i % 3));
  }
  auto w = std::make_shared<ClusterSweepWorkload>(
      std::move(clients), cfg.keys_per_client, cfg.theta, cfg.value_size,
      cfg.seed ^ 0xC1A57E12ull);

  wl::DriverConfig dcfg;
  dcfg.clients = cfg.clients;
  dcfg.warmup = cfg.warmup;
  dcfg.measure = cfg.measure;
  dcfg.drain = sim::sec(5);
  // 10^4 clients complete millions of sections: reservoir-subsample the
  // latencies (throughput stays exact; see wl::Samples).
  dcfg.max_latency_samples = 1 << 16;
  dcfg.latency_sample_seed = cfg.seed * 0x9E3779B97F4A7C15ull +
                             static_cast<uint64_t>(cfg.shards);

  SweepCell out;
  out.cell.run = wl::run_closed_loop(sim, w, dcfg);
  out.cell.events = sim.events_run();
  out.cell.wall_sec = wall.elapsed_sec();
  out.critical_puts = cluster.total_critical_puts();
  out.admitted = cluster.stats().admitted;
  for (size_t i = 0; i < w->num_clients(); ++i) {
    out.wrong_shard_retries += w->client_stats(i).wrong_shard_retries;
  }
  out.p50_ms = out.cell.run.latency.percentile_ms(50);
  out.p99_ms = out.cell.run.latency.percentile_ms(99);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::vector<int> shard_counts =
      smoke ? std::vector<int>{1, 4, 16}
            : std::vector<int>{1, 2, 4, 8, 16, 32, 64};
  SweepConfig base;
  if (smoke) {
    base.clients = 2000;
    base.warmup = sim::ms(500);
    base.measure = sim::sec(1);
  }

  BenchReport report("cluster");
  std::printf("Cluster scaling: criticalPut sections/sec vs shard count "
              "(%d clients, %llu-key ranges, Zipfian %.2f, local profile%s)\n",
              base.clients,
              static_cast<unsigned long long>(base.keys_per_client),
              base.theta, smoke ? ", --smoke" : "");
  std::printf("expected: monotonic growth 1 -> 16 shards (each group adds "
              "store service capacity)\n");
  hr();
  std::printf("%6s | %14s %8s | %8s %8s %8s | %10s %9s\n", "shards",
              "criticalPuts/s", "vs sh1", "mean ms", "p50 ms", "p99 ms",
              "puts", "Mev/s");

  std::vector<SweepConfig> configs;
  for (int s : shard_counts) {
    SweepConfig c = base;
    c.shards = s;
    configs.push_back(c);
  }
  auto cells = par::run_worlds(configs, run_one, bench_threads());

  Csv csv("cluster.csv");
  csv.row("shards,clients,critical_puts_per_sec,mean_ms,p50_ms,p99_ms,"
          "critical_puts_total,wrong_shard_retries,events,wall_sec");
  double sh1_rate = 0;
  std::vector<double> rates;
  for (size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& c = cells[i];
    int shards = shard_counts[i];
    double rate = c.cell.run.throughput();
    rates.push_back(rate);
    if (shards == 1) sh1_rate = rate;
    std::printf("%6d | %14.0f %7.2fx | %8.2f %8.2f %8.2f | %10llu %9.2f\n",
                shards, rate, sh1_rate > 0 ? rate / sh1_rate : 0.0,
                c.cell.run.latency.mean_ms(), c.p50_ms, c.p99_ms,
                static_cast<unsigned long long>(c.critical_puts),
                c.cell.events_per_sec() / 1e6);
    csv.row(std::to_string(shards) + "," + std::to_string(base.clients) +
            "," + std::to_string(rate) + "," +
            std::to_string(c.cell.run.latency.mean_ms()) + "," +
            std::to_string(c.p50_ms) + "," + std::to_string(c.p99_ms) + "," +
            std::to_string(c.critical_puts) + "," +
            std::to_string(c.wrong_shard_retries) + "," +
            std::to_string(c.cell.events) + "," +
            std::to_string(c.cell.wall_sec));
    std::string label = "cluster.sh" + std::to_string(shards);
    report.set(label + ".critical_puts_per_sec", rate);
    report.set(label + ".p99_ms", c.p99_ms);
    report.add_cell(label, c.cell);
  }
  hr();

  // The acceptance gate: throughput must not shrink as shards grow, up
  // through 16.  (32/64 ride the flattening tail as the closed loop runs
  // out of demand; they are reported, not gated.)
  bool monotonic = true;
  for (size_t i = 1; i < rates.size() && shard_counts[i] <= 16; ++i) {
    if (rates[i] <= rates[i - 1]) {
      std::printf("FAIL: criticalPuts/s fell %.0f -> %.0f going %d -> %d "
                  "shards\n", rates[i - 1], rates[i], shard_counts[i - 1],
                  shard_counts[i]);
      monotonic = false;
    }
  }
  size_t last_gated = 0;
  for (size_t i = 0; i < rates.size(); ++i) {
    if (shard_counts[i] <= 16) last_gated = i;
  }
  report.set("cluster.scaling_1_to_16", sh1_rate > 0
                                            ? rates[last_gated] / sh1_rate
                                            : 0.0);
  report.set("cluster.monotonic_1_to_16", monotonic ? 1.0 : 0.0);
  // At full scale the 1-shard world can be so oversubscribed that nothing
  // completes inside the measure window (sh1 rate 0): skip the ratio then.
  if (sh1_rate > 0) {
    std::printf("monotonic 1 -> %d shards: %s (x%.2f over single-group "
                "MUSIC)\n", shard_counts[last_gated],
                monotonic ? "yes" : "NO", rates[last_gated] / sh1_rate);
  } else {
    std::printf("monotonic 1 -> %d shards: %s (single-group MUSIC "
                "saturated: 0 completions in the measure window)\n",
                shard_counts[last_gated], monotonic ? "yes" : "NO");
  }
  return monotonic ? 0 : 1;
}
