// Pipelined critical sections: what batching Table I operations buys.
//
// The unbatched client pays one value-quorum WAN round trip PER criticalPut
// (§X-B4); the Session API ships the whole critical section body as one
// `batch` request, and the replica coalesces independent-key writes into a
// single quorum round — so x puts cost 1 round trip instead of x.  This
// bench proves the round-trip claim off the tracer (8 puts -> 1 RTT batched
// vs 8 unbatched), then sweeps batch size for end-to-end latency and
// closed-loop throughput, batched vs unbatched.
//
// `--smoke` runs the RTT proof plus one quick latency point and exits
// nonzero unless the batched path wins (CI tier-1 gate).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common.h"
#include "core/session.h"

using namespace music;
using namespace music::bench;

namespace {

constexpr uint64_t kSeed = 41;

/// One traced critical section of `n` independent-key criticalPuts through
/// the Session API.  Returns the rolled-up WAN round trips of the flush
/// (the "client.batch" root span) via the registry, or ~0 on failure.
uint64_t batched_put_rtts(int n) {
  MusicWorld w(kSeed, sim::LatencyProfile::profile_luseu(),
               core::PutMode::Quorum, 3, 1);
  ObsSession obs(w.sim);
  bool done = false;
  sim::spawn(w.sim, [](MusicWorld& world, int puts,
                       bool& d) -> sim::Task<void> {
    core::MusicClient& c = *world.clients.front();
    core::CriticalSection cs(c, "probe");
    auto acq = co_await cs.enter();
    if (!acq.ok()) co_return;
    core::Session s = cs.session();
    for (int i = 0; i < puts; ++i) {
      s.put("probe/" + std::to_string(i), Value("v"));
    }
    auto st = co_await s.flush();
    co_await cs.exit();
    d = st.ok();
  }(w, n, done));
  w.sim.run_until(sim::sec(60));
  if (!done) return ~uint64_t{0};
  return obs.metrics.counter("span.client.batch.rtts").value;
}

/// The same work through the unbatched client: `n` sequential criticalPuts
/// on the held key (the unbatched API checks the holder of the target key
/// itself, so a critical section can only write its own key).  Returns the
/// summed round trips of all "client.critical_put" spans (one quorum round
/// each in Quorum mode).
uint64_t unbatched_put_rtts(int n) {
  MusicWorld w(kSeed, sim::LatencyProfile::profile_luseu(),
               core::PutMode::Quorum, 3, 1);
  ObsSession obs(w.sim);
  bool done = false;
  sim::spawn(w.sim, [](MusicWorld& world, int puts,
                       bool& d) -> sim::Task<void> {
    core::MusicClient& c = *world.clients.front();
    auto ref = co_await c.create_lock_ref("probe");
    if (!ref.ok()) co_return;
    auto acq = co_await c.acquire_lock_blocking("probe", ref.value());
    if (!acq.ok()) co_return;
    bool ok = true;
    for (int i = 0; i < puts; ++i) {
      auto st = co_await c.critical_put("probe", ref.value(), Value("v"));
      ok = ok && st.ok();
    }
    co_await c.release_lock("probe", ref.value());
    d = ok;
  }(w, n, done));
  w.sim.run_until(sim::sec(60));
  if (!done) return ~uint64_t{0};
  return obs.metrics.counter("span.client.critical_put.rtts").value;
}

/// The acceptance check: 8 independent-key criticalPuts cost ONE value-quorum
/// WAN round trip batched vs eight unbatched.
bool check_batching_rtts() {
  const int n = 8;
  uint64_t batched = batched_put_rtts(n);
  uint64_t unbatched = unbatched_put_rtts(n);
  std::printf("WAN round trips for %d independent-key criticalPuts (lUsEu, "
              "Quorum mode, traced):\n", n);
  bool ok = batched == 1 && unbatched == static_cast<uint64_t>(n);
  std::printf("  batched (one Session flush)   expected 1  measured %llu\n",
              static_cast<unsigned long long>(batched));
  std::printf("  unbatched (sequential puts)   expected %d  measured %llu\n",
              n, static_cast<unsigned long long>(unbatched));
  std::printf("  %s\n", ok ? "ok" : "MISMATCH");
  return ok;
}

CellResult cs_latency(int batch, bool batched, int iters) {
  WallTimer wall;
  MusicWorld w(kSeed, sim::LatencyProfile::profile_lus(),
               core::PutMode::Quorum, 3, 1);
  std::shared_ptr<wl::Workload> workload;
  if (batched) {
    workload = std::make_shared<wl::MusicBatchCsWorkload>(w.client_ptrs(), "m",
                                                          batch, 10);
  } else {
    workload = std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(), "m",
                                                     batch, 10);
  }
  CellResult out;
  out.run = wl::run_sequential(w.sim, workload, iters, sim::sec(7200));
  out.events = w.sim.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

CellResult cs_throughput(int batch, bool batched) {
  WallTimer wall;
  MusicWorld w(kSeed, sim::LatencyProfile::profile_lus(),
               core::PutMode::Quorum, 3, 3);
  std::shared_ptr<wl::Workload> workload;
  if (batched) {
    workload = std::make_shared<wl::MusicBatchCsWorkload>(w.client_ptrs(), "m",
                                                          batch, 10);
  } else {
    workload = std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(), "m",
                                                     batch, 10);
  }
  wl::DriverConfig cfg;
  cfg.clients = 9;
  cfg.warmup = sim::sec(5);
  cfg.measure = sim::sec(30);
  CellResult out;
  out.run = wl::run_closed_loop(w.sim, workload, cfg);
  out.events = w.sim.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("pipelined critical sections: batched Session flush vs "
              "sequential Table I ops\n");
  hr();
  if (!check_batching_rtts()) return 1;
  hr();
  if (smoke) {
    // One quick latency point: the batched path must beat unbatched
    // end-to-end at batch size 8, not just on the RTT count.
    double ub = cs_latency(8, false, 4).run.latency.mean_ms();
    double b = cs_latency(8, true, 4).run.latency.mean_ms();
    std::printf("smoke latency, batch 8 (lUs): unbatched %.1f ms, batched "
                "%.1f ms\n", ub, b);
    if (!(b < ub)) {
      std::printf("smoke FAILED: batched latency is not lower\n");
      return 1;
    }
    std::printf("smoke ok\n");
    return 0;
  }
  BenchReport report("micro_batch");
  std::printf("%-6s | %12s %12s %7s | %11s %11s %7s\n", "batch",
              "unbat ms", "batch ms", "speedup", "unbat cs/s", "batch cs/s",
              "gain");
  Csv csv("micro_batch.csv");
  csv.row("batch,unbatched_ms,batched_ms,unbatched_cs_per_s,batched_cs_per_s");
  std::vector<int> xs{1, 2, 4, 8, 16};
  std::vector<std::function<CellResult()>> jobs;
  for (int x : xs) {
    jobs.push_back([x] { return cs_latency(x, false, 8); });
    jobs.push_back([x] { return cs_latency(x, true, 8); });
    jobs.push_back([x] { return cs_throughput(x, false); });
    jobs.push_back([x] { return cs_throughput(x, true); });
  }
  auto cells = run_cells(std::move(jobs));
  for (size_t i = 0; i < xs.size(); ++i) {
    int x = xs[i];
    double ub_ms = cells[i * 4].run.latency.mean_ms();
    double b_ms = cells[i * 4 + 1].run.latency.mean_ms();
    double ub_tp = cells[i * 4 + 2].run.throughput();
    double b_tp = cells[i * 4 + 3].run.throughput();
    std::printf("%-6d | %12.1f %12.1f %6.2fx | %11.1f %11.1f %6.2fx\n", x,
                ub_ms, b_ms, ub_ms / b_ms, ub_tp, b_tp, b_tp / ub_tp);
    csv.row(std::to_string(x) + "," + std::to_string(ub_ms) + "," +
            std::to_string(b_ms) + "," + std::to_string(ub_tp) + "," +
            std::to_string(b_tp));
    std::string base = "micro_batch.x";
    base += std::to_string(x);
    report.set(base + ".latency_speedup", ub_ms / b_ms);
    report.add_cell(base + ".unbatched_lat", cells[i * 4]);
    report.add_cell(base + ".batched_lat", cells[i * 4 + 1]);
    report.add_cell(base + ".unbatched_tp", cells[i * 4 + 2]);
    report.add_cell(base + ".batched_tp", cells[i * 4 + 3]);
  }
  hr();
  std::printf("a critical section costs create(4) + acquire(1) + puts + "
              "release(4) WAN RTTs; batching collapses the puts term from x "
              "to 1, so the speedup approaches (9+x)/10 as x grows.\n");
  return 0;
}
