// bench_scenarios: runs declarative scenario specs (scenarios/*.scn) as a
// cell-grid sweep — the eval-harness half of the scenario matrix.  The same
// binary doubles as the ctest family: --ctest caps the grid (1 seed, short
// windows) so `ctest -L scenario` stays tier-1 fast while the nightly job
// runs specs as written.
//
//   bench_scenarios [options] FILE.scn | DIR ...
//     --ctest            reduced grid: seeds<=1, warmup<=1s, measure<=3s
//     --threads N        worker threads (default MUSIC_BENCH_THREADS or all)
//     --seeds N          cap seeds per grid point
//     --base-seed N      override the spec's base_seed (ctest seed axis)
//     --warmup-sec S     cap warmup (fractional ok)
//     --measure-sec S    cap the measurement window
//     --max-cells N      truncate the expanded grid
//     --par-sites N      run music/mscp cells under PDES with N site-lane
//                        workers (opt-in; changes checksums vs classic but
//                        is worker-count invariant)
//     --out-dir D        where <scenario>.csv / <scenario>.html land
//
// MUSIC_SCENARIO_SEEDS overrides the seed cap (like MUSIC_FAULT_SEEDS for
// the fault matrix).  Exit: 0 all cells ok, 1 cell failures (oracle
// violation or world error), 2 spec parse/usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "obs/export.h"
#include "scenario/report.h"
#include "scenario/run.h"
#include "scenario/spec.h"

namespace music {
namespace {

struct Args {
  bool ctest = false;
  size_t threads = 0;
  int seeds = 0;
  uint64_t base_seed = 0;  // 0 = spec's own
  double warmup_sec = -1.0;
  double measure_sec = -1.0;
  size_t max_cells = 0;
  size_t par_sites = 0;
  std::string out_dir = ".";
  std::vector<std::string> inputs;
};

void usage() {
  std::fprintf(stderr,
               "usage: bench_scenarios [--ctest] [--threads N] [--seeds N] "
               "[--base-seed N]\n"
               "                       [--warmup-sec S] [--measure-sec S] "
               "[--max-cells N]\n"
               "                       [--par-sites N] [--out-dir D] "
               "FILE.scn|DIR ...\n");
}

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    double v = 0;
    if (arg == "--ctest") {
      a->ctest = true;
    } else if (arg == "--threads" && next(&v)) {
      a->threads = static_cast<size_t>(v);
    } else if (arg == "--seeds" && next(&v)) {
      a->seeds = static_cast<int>(v);
    } else if (arg == "--base-seed" && next(&v)) {
      a->base_seed = static_cast<uint64_t>(v);
    } else if (arg == "--warmup-sec" && next(&v)) {
      a->warmup_sec = v;
    } else if (arg == "--measure-sec" && next(&v)) {
      a->measure_sec = v;
    } else if (arg == "--max-cells" && next(&v)) {
      a->max_cells = static_cast<size_t>(v);
    } else if (arg == "--par-sites" && next(&v)) {
      a->par_sites = static_cast<size_t>(v);
    } else if (arg == "--out-dir") {
      if (i + 1 >= argc) return false;
      a->out_dir = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return false;
    } else {
      a->inputs.push_back(arg);
    }
  }
  return !a->inputs.empty();
}

/// FILE args pass through; DIR args expand to their *.scn files, sorted.
std::vector<std::string> collect_specs(const std::vector<std::string>& inputs) {
  std::vector<std::string> files;
  for (const std::string& in : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(in, ec)) {
      std::vector<std::string> found;
      for (const auto& e : std::filesystem::directory_iterator(in, ec)) {
        if (e.path().extension() == ".scn") found.push_back(e.path().string());
      }
      std::sort(found.begin(), found.end());
      files.insert(files.end(), found.begin(), found.end());
    } else {
      files.push_back(in);
    }
  }
  return files;
}

scn::RunOptions make_options(const Args& a) {
  scn::RunOptions opt;
  opt.threads = a.threads != 0 ? a.threads : bench::bench_threads();
  opt.max_seeds = a.seeds;
  if (a.warmup_sec >= 0) {
    opt.max_warmup = static_cast<sim::Duration>(a.warmup_sec * 1e6);
    if (opt.max_warmup == 0) opt.max_warmup = 1;  // 0 means "no cap"
  }
  if (a.measure_sec >= 0) {
    opt.max_measure = static_cast<sim::Duration>(a.measure_sec * 1e6);
  }
  opt.max_cells = a.max_cells;
  opt.par_sites = a.par_sites;
  if (a.ctest) {
    // Reduced grid for the tier-1 ctest family; explicit flags still win.
    if (opt.max_seeds == 0) opt.max_seeds = 1;
    if (opt.max_warmup == 0) opt.max_warmup = sim::sec(1);
    if (opt.max_measure == 0) opt.max_measure = sim::sec(3);
  }
  if (const char* env = std::getenv("MUSIC_SCENARIO_SEEDS")) {
    int v = std::atoi(env);
    if (v > 0) opt.max_seeds = v;
  }
  return opt;
}

int run_one(const std::string& path, const Args& args,
            const scn::RunOptions& opt) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot read\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  scn::Diag diag;
  auto spec = scn::ScenarioSpec::parse(buf.str(), &diag);
  if (!spec.has_value()) {
    std::fprintf(stderr, "%s:%d:%d: %s\n", path.c_str(), diag.line, diag.col,
                 diag.message.c_str());
    return 2;
  }
  if (args.base_seed != 0) spec->base_seed = args.base_seed;
  std::string invalid = scn::validate(*spec);
  if (!invalid.empty()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), invalid.c_str());
    return 2;
  }

  // Run against the reduced spec so the report's cell list matches the
  // cells that actually ran (run_sweep reduces identically).
  scn::ScenarioSpec effective = scn::reduced(*spec, opt);
  std::vector<scn::Cell> cells = scn::expand(effective);
  std::printf("== %s: %zu cells (%s)\n", effective.name.c_str(), cells.size(),
              path.c_str());
  if (opt.max_cells > 0 && cells.size() > opt.max_cells) {
    std::printf("   grid truncated to first %zu cells (--max-cells)\n",
                opt.max_cells);
  }
  bench::WallTimer timer;
  std::vector<scn::CellOutcome> outs = scn::run_sweep(effective, opt);

  int rc = 0;
  for (const scn::CellOutcome& o : outs) {
    std::printf("  %-32s %-4s %8llu ops %9.1f ops/s %8.2f ms  %5.1f wan/op\n",
                o.label.c_str(), o.ok ? "ok" : "FAIL",
                static_cast<unsigned long long>(o.run.completed),
                o.run.throughput(), o.run.latency.mean_ms(), o.wan_per_op());
    if (!o.ok) {
      rc = 1;
      std::fprintf(stderr, "FAIL %s: %s\n", o.label.c_str(), o.error.c_str());
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  std::string base = args.out_dir + "/" + effective.name;
  bool wrote = obs::write_file(base + ".csv", scn::sweep_csv(effective, outs));
  wrote = obs::write_file(base + ".html", scn::sweep_html(effective, outs)) &&
          wrote;
  size_t ok_cells = 0;
  for (const auto& o : outs) ok_cells += o.ok ? 1 : 0;
  std::printf("   %zu/%zu cells ok in %.1fs -> %s.{csv,html}%s\n", ok_cells,
              outs.size(), timer.elapsed_sec(), base.c_str(),
              wrote ? "" : " (write failed)");
  return rc;
}

}  // namespace
}  // namespace music

int main(int argc, char** argv) {
  music::Args args;
  if (!music::parse_args(argc, argv, &args)) {
    music::usage();
    return 2;
  }
  auto files = music::collect_specs(args.inputs);
  if (files.empty()) {
    std::fprintf(stderr, "no .scn files found\n");
    return 2;
  }
  auto opt = music::make_options(args);
  int rc = 0;
  for (const std::string& f : files) {
    int r = music::run_one(f, args, opt);
    if (r > rc) rc = r;
  }
  return rc;
}
