// §X-B4: the qualitative cost model behind Fig. 7.
//   Spanner/CockroachDB-style exclusive transactions: 2 consensus ops (C)
//   per state update                         -> total 2xC for x updates.
//   MUSIC: 2 consensus (create/release) + 1 quorum (synchFlag) + x quorum
//   puts                                     -> total 2C + (x+1)Q.
// With C ~ Q (a generous assumption for consensus), MUSIC approaches a 2x
// advantage as x grows.  This bench prints the analytic model next to the
// measured crossover from the simulator.
#include <cstdio>
#include <cstring>
#include <memory>

#include "common.h"

using namespace music;
using namespace music::bench;

namespace {

constexpr uint64_t kSeed = 77;

/// Inclusive WAN-round-trip count of the first finished root span named
/// `name` (the tracer rolls descendants' declared RTTs up to the root).
uint64_t root_rtts(const obs::Tracer& t, const char* name) {
  for (const auto& s : t.spans()) {
    if (s.parent == 0 && s.finished() && std::strcmp(s.name, name) == 0) {
      return s.rtts;
    }
  }
  return ~uint64_t{0};
}

/// Traces one uncontended critical section under lUsEu and asserts the
/// measured per-operation WAN round trips against the paper's cost table:
/// createLockRef and releaseLock are one LWT each (4 RTTs: prepare, read,
/// accept, commit), acquireLock is one quorum read of the synchFlag (1),
/// criticalPut in Quorum mode is one quorum round (1), criticalGet one (1).
bool check_rtt_counts() {
  MusicWorld w(kSeed, sim::LatencyProfile::profile_luseu(),
               core::PutMode::Quorum, 3, 1);
  ObsSession obs(w.sim);
  auto& cl = *w.clients.front();
  bool done = false;
  sim::spawn(w.sim, [](MusicWorld& world, core::MusicClient& c,
                       bool& d) -> sim::Task<void> {
    auto ref = co_await c.create_lock_ref("cost");
    co_await c.acquire_lock_blocking("cost", ref.value());
    co_await c.critical_put("cost", ref.value(), Value("v"));
    co_await c.critical_get("cost", ref.value());
    co_await c.release_lock("cost", ref.value());
    d = true;
    (void)world;
  }(w, cl, done));
  w.sim.run_until(sim::sec(60));
  if (!done) {
    std::printf("RTT check: critical section did not complete\n");
    return false;
  }
  struct Expect {
    const char* span;
    const char* table_row;
    uint64_t rtts;
  };
  const Expect table[] = {
      {"client.create_lock_ref", "createLockRef = 1 LWT", 4},
      {"client.acquire_lock", "acquireLock   = 1 quorum read", 1},
      {"client.critical_put", "criticalPut   = 1 quorum write", 1},
      {"client.critical_get", "criticalGet   = 1 quorum read", 1},
      {"client.release_lock", "releaseLock   = 1 LWT", 4},
  };
  bool ok = true;
  std::printf("measured WAN round trips per op (lUsEu, traced) vs SX-B4:\n");
  for (const Expect& e : table) {
    uint64_t got = root_rtts(obs.tracer, e.span);
    bool row_ok = got == e.rtts;
    ok = ok && row_ok;
    std::printf("  %-30s expected %llu  measured %llu  %s\n", e.table_row,
                static_cast<unsigned long long>(e.rtts),
                static_cast<unsigned long long>(got),
                row_ok ? "ok" : "MISMATCH");
  }
  return ok;
}

CellResult music_cs(int batch) {
  WallTimer wall;
  MusicWorld w(kSeed, sim::LatencyProfile::profile_lus(),
               core::PutMode::Quorum, 3, 1);
  auto workload =
      std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(), "m", batch, 10);
  CellResult out;
  out.run = wl::run_sequential(w.sim, workload, 8, sim::sec(7200));
  out.events = w.sim.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

CellResult cdb_cs(int batch) {
  WallTimer wall;
  CdbWorld w(kSeed, sim::LatencyProfile::profile_lus(), 1);
  auto workload =
      std::make_shared<wl::CdbCsWorkload>(w.client_ptrs(), "m", batch, 10);
  CellResult out;
  out.run = wl::run_sequential(w.sim, workload, 8, sim::sec(7200));
  out.events = w.sim.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

}  // namespace

int main() {
  BenchReport report("xb4");
  std::printf("SX-B4 cost model: MUSIC 2C+(x+1)Q vs exclusive-transactions "
              "2xC  (C = consensus, Q = quorum)\n");
  if (!check_rtt_counts()) return 1;
  hr();
  // Use the measured single-op costs as C and Q.
  double q_ms = 0, c_ms = 0;
  {
    MusicWorld w(kSeed, sim::LatencyProfile::profile_lus(),
                 core::PutMode::Quorum, 3, 1);
    auto& cl = *w.clients.front();
    bool done = false;
    sim::spawn(w.sim, [](MusicWorld& world, core::MusicClient& c, double& q,
                         double& cc, bool& d) -> sim::Task<void> {
      auto ref = co_await c.create_lock_ref("probe");
      co_await c.acquire_lock_blocking("probe", ref.value());
      sim::Time t0 = world.sim.now();
      co_await c.critical_put("probe", ref.value(), Value("v"));
      q = sim::to_ms(world.sim.now() - t0);
      t0 = world.sim.now();
      co_await c.release_lock("probe", ref.value());
      cc = sim::to_ms(world.sim.now() - t0);
      d = true;
    }(w, cl, q_ms, c_ms, done));
    w.sim.run_until(sim::sec(60));
    if (!done) return 1;
  }
  std::printf("measured primitives (lUs): Q = %.1f ms (quorum put), C = %.1f "
              "ms (consensus lock op)\n", q_ms, c_ms);
  hr();
  // The paper's generous assumption: C ~ Q, so MUSIC ~ (3+x)C vs 2xC and
  // the ratio approaches 2 as x grows.  The measured columns use the real
  // systems (MUSIC's C is a 4-RTT LWT; Cdb's consensus is a Raft round).
  std::printf("%-6s | %14s | %12s %12s %8s\n", "x", "paper 2x/(3+x)",
              "meas MUSIC", "meas Cdb", "ratio");
  Csv csv("xb4.csv");
  csv.row("x,paper_model_ratio,measured_music_ms,measured_cdb_ms");
  std::vector<int> xs{1, 3, 10, 30, 100};
  std::vector<std::function<CellResult()>> jobs;
  for (int x : xs) {
    jobs.push_back([x] { return music_cs(x); });
    jobs.push_back([x] { return cdb_cs(x); });
  }
  auto cells = run_cells(std::move(jobs));
  for (size_t i = 0; i < xs.size(); ++i) {
    int x = xs[i];
    double model_ratio = 2.0 * x / (3.0 + x);
    double meas_music = cells[i * 2].run.latency.mean_ms();
    double meas_cdb = cells[i * 2 + 1].run.latency.mean_ms();
    std::printf("%-6d | %13.2fx | %12.1f %12.1f %7.2fx\n", x, model_ratio,
                meas_music, meas_cdb, meas_cdb / meas_music);
    csv.row(std::to_string(x) + "," + std::to_string(model_ratio) + "," +
            std::to_string(meas_music) + "," + std::to_string(meas_cdb));
    std::string base = "xb4.x";
    base += std::to_string(x);
    report.set(base + ".model_ratio", model_ratio);
    report.add_cell(base + ".music", cells[i * 2]);
    report.add_cell(base + ".cdb", cells[i * 2 + 1]);
  }
  hr();
  std::printf("paper: ~2x for x >> 3 under C ~ Q; our measured Cdb consensus "
              "(~1 Raft RTT + fsyncs) is cheaper than MUSIC's 4-RTT LWT C, "
              "while MUSIC amortizes it — measured ratios land at 2-3.3x, "
              "inside the paper's 2-4x band (Fig. 7).\n");
  return 0;
}
