// Figure 6: MUSIC vs MSCP vs Zookeeper peak WRITE throughput (writes/s),
// lUs profile.
//   (a) batch size (writes per critical section) 10 -> 100 -> 1000, 10B
//   (b) data size 10B -> 1KB -> 16KB -> 256KB at batch 100
// Paper shapes: MUSIC's lock cost amortizes with batch size (throughput
// nearly doubles 10->1000) and beats Zookeeper 1.4-2.3x on (a) and
// 2.45-17.17x on (b); MUSIC beats MSCP 2-3.5x throughout.  Zookeeper's
// stable leader serializes every write (plus a per-commit fsync), which is
// what the data-size sweep exposes.
#include <cstdio>
#include <memory>

#include "common.h"

using namespace music;
using namespace music::bench;

namespace {

constexpr uint64_t kSeed = 13;

/// Writes/s for a MUSIC/MSCP critical section of `batch` puts.
double music_writes_per_sec(core::PutMode mode, int batch, size_t vsize) {
  MusicWorld w(kSeed, sim::LatencyProfile::profile_lus(), mode, 3, 86);
  auto workload = std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(),
                                                        "zk", batch, vsize);
  wl::DriverConfig cfg;
  cfg.clients = static_cast<int>(w.clients.size());
  cfg.warmup = sim::sec(5);
  // Long sections need a window that fits several of them.
  cfg.measure = batch >= 1000 ? sim::sec(600) : sim::sec(60);
  cfg.drain = sim::sec(150);
  auto r = wl::run_closed_loop(w.sim, workload, cfg);
  return r.throughput() * batch;  // sections/s -> writes/s
}

/// Writes/s for plain Zookeeper setData writes in batches of `batch`.
double zk_writes_per_sec(int batch, size_t vsize) {
  ZkWorld w(kSeed, sim::LatencyProfile::profile_lus(), 86);
  auto workload =
      std::make_shared<wl::ZkWriteWorkload>(w.client_ptrs(), "/z", batch, vsize);
  wl::DriverConfig cfg;
  cfg.clients = static_cast<int>(w.clients.size());
  cfg.warmup = sim::sec(5);
  cfg.measure = batch >= 1000 ? sim::sec(400) : sim::sec(60);
  cfg.drain = sim::sec(120);
  auto r = wl::run_closed_loop(w.sim, workload, cfg);
  return r.throughput() * batch;
}

}  // namespace

int main() {
  std::printf("Figure 6(a): write throughput vs batch size (writes/s), lUs, 10B\n");
  std::printf("paper: MUSIC 1.4-2.3x Zookeeper, 2-3.5x MSCP; MUSIC nearly "
              "doubles as the lock cost amortizes\n");
  hr();
  std::printf("%-8s %12s %12s %12s %10s %10s\n", "batch", "MUSIC", "MSCP",
              "Zookeeper", "MU/ZK", "MU/MSCP");
  Csv csv("fig6a.csv");
  csv.row("batch,music_wps,mscp_wps,zk_wps");
  for (int batch : {10, 100, 1000}) {
    double mu = music_writes_per_sec(core::PutMode::Quorum, batch, 10);
    double ms = music_writes_per_sec(core::PutMode::Lwt, batch, 10);
    double zk = zk_writes_per_sec(batch, 10);
    std::printf("%-8d %12.0f %12.0f %12.0f %9.2fx %9.2fx\n", batch, mu, ms,
                zk, mu / zk, mu / ms);
    csv.row(std::to_string(batch) + "," + std::to_string(mu) + "," +
            std::to_string(ms) + "," + std::to_string(zk));
  }
  hr();

  std::printf("\nFigure 6(b): write throughput vs data size (writes/s), "
              "batch=100, lUs\n");
  std::printf("paper: MUSIC 2.45-17.17x Zookeeper (gap grows with data "
              "size), 2-3.5x MSCP\n");
  hr();
  std::printf("%-8s %12s %12s %12s %10s %10s\n", "size", "MUSIC", "MSCP",
              "Zookeeper", "MU/ZK", "MU/MSCP");
  Csv csv_b("fig6b.csv");
  csv_b.row("bytes,music_wps,mscp_wps,zk_wps");
  for (size_t vsize : {size_t{10}, size_t{1024}, size_t{16 * 1024},
                       size_t{256 * 1024}}) {
    double mu = music_writes_per_sec(core::PutMode::Quorum, 100, vsize);
    double ms = music_writes_per_sec(core::PutMode::Lwt, 100, vsize);
    double zk = zk_writes_per_sec(100, vsize);
    std::printf("%-8s %12.0f %12.0f %12.0f %9.2fx %9.2fx\n",
                size_label(vsize).c_str(), mu, ms, zk, mu / zk, mu / ms);
    csv_b.row(std::to_string(vsize) + "," + std::to_string(mu) + "," +
              std::to_string(ms) + "," + std::to_string(zk));
  }
  hr();
  return 0;
}
