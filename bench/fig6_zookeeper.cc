// Figure 6: MUSIC vs MSCP vs Zookeeper peak WRITE throughput (writes/s),
// lUs profile.
//   (a) batch size (writes per critical section) 10 -> 100 -> 1000, 10B
//   (b) data size 10B -> 1KB -> 16KB -> 256KB at batch 100
// Paper shapes: MUSIC's lock cost amortizes with batch size (throughput
// nearly doubles 10->1000) and beats Zookeeper 1.4-2.3x on (a) and
// 2.45-17.17x on (b); MUSIC beats MSCP 2-3.5x throughout.  Zookeeper's
// stable leader serializes every write (plus a per-commit fsync), which is
// what the data-size sweep exposes.
//
// All 21 (system, batch/size) cells are independent seeded worlds fanned
// out via par::run_worlds; the batch=1000 cells dominate the sweep's
// wall-clock, so overlapping them with the rest is most of the win.
#include <cstdio>
#include <memory>

#include "common.h"

using namespace music;
using namespace music::bench;

namespace {

constexpr uint64_t kSeed = 13;

/// Writes/s for a MUSIC/MSCP critical section of `batch` puts.
CellResult music_writes(core::PutMode mode, int batch, size_t vsize) {
  WallTimer wall;
  MusicWorld w(kSeed, sim::LatencyProfile::profile_lus(), mode, 3, 86);
  auto workload = std::make_shared<wl::MusicCsWorkload>(w.client_ptrs(),
                                                        "zk", batch, vsize);
  wl::DriverConfig cfg;
  cfg.clients = static_cast<int>(w.clients.size());
  cfg.warmup = sim::sec(5);
  // Long sections need a window that fits several of them.
  cfg.measure = batch >= 1000 ? sim::sec(600) : sim::sec(60);
  cfg.drain = sim::sec(150);
  CellResult out;
  out.run = wl::run_closed_loop(w.sim, workload, cfg);
  out.events = w.sim.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

/// Writes/s for plain Zookeeper setData writes in batches of `batch`.
CellResult zk_writes(int batch, size_t vsize) {
  WallTimer wall;
  ZkWorld w(kSeed, sim::LatencyProfile::profile_lus(), 86);
  auto workload =
      std::make_shared<wl::ZkWriteWorkload>(w.client_ptrs(), "/z", batch, vsize);
  wl::DriverConfig cfg;
  cfg.clients = static_cast<int>(w.clients.size());
  cfg.warmup = sim::sec(5);
  cfg.measure = batch >= 1000 ? sim::sec(400) : sim::sec(60);
  cfg.drain = sim::sec(120);
  CellResult out;
  out.run = wl::run_closed_loop(w.sim, workload, cfg);
  out.events = w.sim.events_run();
  out.wall_sec = wall.elapsed_sec();
  return out;
}

/// sections/s -> writes/s.
double wps(const CellResult& c, int batch) {
  return c.run.throughput() * batch;
}

}  // namespace

int main() {
  BenchReport report("fig6");
  std::printf("Figure 6(a): write throughput vs batch size (writes/s), lUs, 10B\n");
  std::printf("paper: MUSIC 1.4-2.3x Zookeeper, 2-3.5x MSCP; MUSIC nearly "
              "doubles as the lock cost amortizes\n");
  hr();
  std::printf("%-8s %12s %12s %12s %10s %10s\n", "batch", "MUSIC", "MSCP",
              "Zookeeper", "MU/ZK", "MU/MSCP");
  Csv csv("fig6a.csv");
  csv.row("batch,music_wps,mscp_wps,zk_wps");
  std::vector<int> batches{10, 100, 1000};
  std::vector<std::function<CellResult()>> jobs;
  for (int batch : batches) {
    jobs.push_back(
        [batch] { return music_writes(core::PutMode::Quorum, batch, 10); });
    jobs.push_back(
        [batch] { return music_writes(core::PutMode::Lwt, batch, 10); });
    jobs.push_back([batch] { return zk_writes(batch, 10); });
  }
  auto cells = run_cells(std::move(jobs));
  for (size_t i = 0; i < batches.size(); ++i) {
    int batch = batches[i];
    double mu = wps(cells[i * 3], batch);
    double ms = wps(cells[i * 3 + 1], batch);
    double zk = wps(cells[i * 3 + 2], batch);
    std::printf("%-8d %12.0f %12.0f %12.0f %9.2fx %9.2fx\n", batch, mu, ms,
                zk, mu / zk, mu / ms);
    csv.row(std::to_string(batch) + "," + std::to_string(mu) + "," +
            std::to_string(ms) + "," + std::to_string(zk));
    std::string base = "fig6a.b";
    base += std::to_string(batch);
    report.set(base + ".music_wps", mu);
    report.add_cell(base + ".music", cells[i * 3]);
    report.add_cell(base + ".mscp", cells[i * 3 + 1]);
    report.add_cell(base + ".zk", cells[i * 3 + 2]);
  }
  hr();

  std::printf("\nFigure 6(b): write throughput vs data size (writes/s), "
              "batch=100, lUs\n");
  std::printf("paper: MUSIC 2.45-17.17x Zookeeper (gap grows with data "
              "size), 2-3.5x MSCP\n");
  hr();
  std::printf("%-8s %12s %12s %12s %10s %10s\n", "size", "MUSIC", "MSCP",
              "Zookeeper", "MU/ZK", "MU/MSCP");
  Csv csv_b("fig6b.csv");
  csv_b.row("bytes,music_wps,mscp_wps,zk_wps");
  std::vector<size_t> sizes{10, 1024, 16 * 1024, 256 * 1024};
  std::vector<std::function<CellResult()>> jobs_b;
  for (size_t vsize : sizes) {
    jobs_b.push_back(
        [vsize] { return music_writes(core::PutMode::Quorum, 100, vsize); });
    jobs_b.push_back(
        [vsize] { return music_writes(core::PutMode::Lwt, 100, vsize); });
    jobs_b.push_back([vsize] { return zk_writes(100, vsize); });
  }
  auto cells_b = run_cells(std::move(jobs_b));
  for (size_t i = 0; i < sizes.size(); ++i) {
    size_t vsize = sizes[i];
    double mu = wps(cells_b[i * 3], 100);
    double ms = wps(cells_b[i * 3 + 1], 100);
    double zk = wps(cells_b[i * 3 + 2], 100);
    std::printf("%-8s %12.0f %12.0f %12.0f %9.2fx %9.2fx\n",
                size_label(vsize).c_str(), mu, ms, zk, mu / zk, mu / ms);
    csv_b.row(std::to_string(vsize) + "," + std::to_string(mu) + "," +
              std::to_string(ms) + "," + std::to_string(zk));
    std::string base = "fig6b.";
    base += size_label(vsize);
    report.add_cell(base + ".music", cells_b[i * 3]);
    report.add_cell(base + ".mscp", cells_b[i * 3 + 1]);
    report.add_cell(base + ".zk", cells_b[i * 3 + 2]);
  }
  hr();
  return 0;
}
