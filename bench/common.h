// Shared plumbing for the benchmark harness: deployment builders matching
// the paper's methodology (§VIII-a) and table/CSV output helpers.
//
// Methodology mapping:
//   * 3 logical sites, WAN latencies from Table II       -> sim::Network
//   * Cassandra 3.11, 1 node/site (3-9 for Fig 4b), RF=3 -> ds::StoreCluster
//   * peak throughput: saturate with many client threads -> run_closed_loop
//   * mean latency: a single thread                      -> run_sequential
//   * non-overlapping key ranges per thread, 10B values  -> workloads
// Absolute numbers come from a simulator, not the authors' testbed; the
// SHAPE (who wins, by what factor) is the reproduction target.  Each bench
// prints the paper's reported values alongside for comparison.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/music.h"
#include "datastore/store.h"
#include "lockstore/lockstore.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "raftkv/txkv.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "workload/driver.h"
#include "workload/runners.h"
#include "workload/ycsb.h"
#include "zab/zab.h"

namespace music::bench {

/// Attaches a Tracer + MetricsRegistry to a simulation for one run and
/// exports both on dump().  Tracing stays off (and costs nothing) unless a
/// bench constructs one of these.
struct ObsSession {
  explicit ObsSession(sim::Simulation& sim) : sim_(sim) {
    tracer.set_registry(&metrics);
    sim_.set_tracer(&tracer);
  }
  ~ObsSession() { sim_.set_tracer(nullptr); }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Folds end-of-run simulation and network totals into the registry.
  void collect(sim::Network& net) {
    net.export_metrics(metrics);
    metrics.set("sim.events_run", sim_.events_run());
    metrics.set("sim.now_us", static_cast<uint64_t>(sim_.now()));
    metrics.set("trace.spans", tracer.spans().size());
    metrics.set("trace.dropped_spans", tracer.dropped_spans());
  }

  /// Folds one replica's MUSIC operation counters into the registry.
  void collect(const core::MusicStats& st, int site) {
    std::string p = "music.s" + std::to_string(site) + ".";
    metrics.set(p + "create_lock_ref", st.create_lock_ref);
    metrics.set(p + "acquire_attempts", st.acquire_attempts);
    metrics.set(p + "acquire_granted", st.acquire_granted);
    metrics.set(p + "synchronizations", st.synchronizations);
    metrics.set(p + "critical_puts", st.critical_puts);
    metrics.set(p + "critical_gets", st.critical_gets);
    metrics.set(p + "releases", st.releases);
    metrics.set(p + "forced_releases", st.forced_releases);
    metrics.set(p + "rejected_not_holder", st.rejected_not_holder);
    metrics.set(p + "rejected_expired", st.rejected_expired);
  }

  /// Writes the Chrome trace and/or metrics dump.  Empty path = skip.
  /// Metrics format follows the extension: ".csv" -> CSV, else JSON.
  bool dump(const std::string& trace_path, const std::string& metrics_path) {
    bool ok = true;
    if (!trace_path.empty()) {
      ok = obs::write_file(trace_path, obs::chrome_trace_json(tracer)) && ok;
    }
    if (!metrics_path.empty()) {
      bool csv = metrics_path.size() >= 4 &&
                 metrics_path.compare(metrics_path.size() - 4, 4, ".csv") == 0;
      ok = obs::write_file(metrics_path, csv ? obs::metrics_csv(metrics)
                                             : obs::metrics_json(metrics)) &&
           ok;
    }
    return ok;
  }

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;

 private:
  sim::Simulation& sim_;
};

/// A full MUSIC deployment with per-site clients.
struct MusicWorld {
  sim::Simulation sim;
  sim::Network net;
  ds::StoreCluster store;
  ls::LockStore locks;
  std::vector<std::unique_ptr<core::MusicReplica>> replicas;
  std::vector<std::unique_ptr<core::MusicClient>> clients;

  MusicWorld(uint64_t seed, const sim::LatencyProfile& profile,
             core::PutMode mode, int store_nodes, int clients_per_site,
             sim::Duration t_max_cs = sim::sec(3600))
      : sim(seed),
        net(sim,
            [&] {
              sim::NetworkConfig c;
              c.profile = profile;
              return c;
            }()),
        store(sim, net, ds::StoreConfig{}, node_sites(store_nodes)),
        locks(store) {
    core::MusicConfig mc;
    mc.put_mode = mode;
    mc.t_max_cs = t_max_cs;  // large: benches run long batch sections
    mc.holder_timeout = sim::sec(8);  // orphan-lockRef collection
    mc.fd_interval = sim::sec(2);
    for (int site = 0; site < 3; ++site) {
      replicas.push_back(
          std::make_unique<core::MusicReplica>(store, locks, mc, site));
      replicas.back()->start_failure_detector();
    }
    for (int site = 0; site < 3; ++site) {
      for (int i = 0; i < clients_per_site; ++i) {
        std::vector<core::MusicReplica*> prefs{
            replicas[static_cast<size_t>(site)].get()};
        for (int j = 0; j < 3; ++j) {
          if (j != site) prefs.push_back(replicas[static_cast<size_t>(j)].get());
        }
        clients.push_back(std::make_unique<core::MusicClient>(
            sim, net, prefs, core::ClientConfig{}, site));
      }
    }
  }

  std::vector<core::MusicClient*> client_ptrs() {
    std::vector<core::MusicClient*> v;
    v.reserve(clients.size());
    for (auto& c : clients) v.push_back(c.get());
    return v;
  }

  static std::vector<int> node_sites(int n) {
    std::vector<int> v;
    for (int i = 0; i < n; ++i) v.push_back(i % 3);
    return v;
  }
};

/// A Zookeeper deployment with per-site clients.
struct ZkWorld {
  sim::Simulation sim;
  sim::Network net;
  zab::ZabEnsemble ens;
  std::vector<std::unique_ptr<zab::ZkClient>> clients;

  ZkWorld(uint64_t seed, const sim::LatencyProfile& profile,
          int clients_per_site)
      : sim(seed),
        net(sim,
            [&] {
              sim::NetworkConfig c;
              c.profile = profile;
              return c;
            }()),
        ens(sim, net, zab::ZabConfig{}, {0, 1, 2}) {
    ens.start();
    for (int site = 0; site < 3; ++site) {
      for (int i = 0; i < clients_per_site; ++i) {
        clients.push_back(std::make_unique<zab::ZkClient>(ens, site));
      }
    }
  }

  std::vector<zab::ZkClient*> client_ptrs() {
    std::vector<zab::ZkClient*> v;
    for (auto& c : clients) v.push_back(c.get());
    return v;
  }
};

/// A CockroachDB-substitute deployment with per-site transaction clients.
struct CdbWorld {
  sim::Simulation sim;
  sim::Network net;
  raftkv::RaftCluster cluster;
  std::vector<std::unique_ptr<raftkv::TxClient>> clients;

  CdbWorld(uint64_t seed, const sim::LatencyProfile& profile,
           int clients_per_site)
      : sim(seed),
        net(sim,
            [&] {
              sim::NetworkConfig c;
              c.profile = profile;
              return c;
            }()),
        cluster(sim, net, raftkv::RaftConfig{}, {0, 1, 2}) {
    cluster.start();
    cluster.wait_for_leader();
    int id = 0;
    for (int site = 0; site < 3; ++site) {
      for (int i = 0; i < clients_per_site; ++i) {
        // Built stepwise: GCC 12 mis-fires -Werror=restrict on literal +
        // to_string rvalue concats once this ctor is inlined into callers.
        std::string name = "c";
        name += std::to_string(id++);
        clients.push_back(
            std::make_unique<raftkv::TxClient>(cluster, site, name));
      }
    }
  }

  std::vector<raftkv::TxClient*> client_ptrs() {
    std::vector<raftkv::TxClient*> v;
    for (auto& c : clients) v.push_back(c.get());
    return v;
  }
};

/// CSV sink: every bench writes its series next to the binary output.
class Csv {
 public:
  explicit Csv(const std::string& path) : f_(std::fopen(path.c_str(), "w")) {}
  ~Csv() {
    if (f_ != nullptr) std::fclose(f_);
  }
  Csv(const Csv&) = delete;
  Csv& operator=(const Csv&) = delete;

  void row(const std::string& line) {
    if (f_ != nullptr) std::fprintf(f_, "%s\n", line.c_str());
  }

 private:
  std::FILE* f_;
};

inline void hr() {
  std::printf("--------------------------------------------------------------------------------\n");
}

/// Human-readable bytes label (10B, 1KB, 256KB).
inline std::string size_label(size_t bytes) {
  if (bytes >= 1024 * 1024) return std::to_string(bytes / (1024 * 1024)) + "MB";
  if (bytes >= 1024) return std::to_string(bytes / 1024) + "KB";
  return std::to_string(bytes) + "B";
}

}  // namespace music::bench
