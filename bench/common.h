// Shared plumbing for the benchmark harness: deployment builders matching
// the paper's methodology (§VIII-a) and table/CSV output helpers.
//
// Methodology mapping:
//   * 3 logical sites, WAN latencies from Table II       -> sim::Network
//   * Cassandra 3.11, 1 node/site (3-9 for Fig 4b), RF=3 -> ds::StoreCluster
//   * peak throughput: saturate with many client threads -> run_closed_loop
//   * mean latency: a single thread                      -> run_sequential
//   * non-overlapping key ranges per thread, 10B values  -> workloads
// Absolute numbers come from a simulator, not the authors' testbed; the
// SHAPE (who wins, by what factor) is the reproduction target.  Each bench
// prints the paper's reported values alongside for comparison.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/client.h"
#include "core/music.h"
#include "datastore/store.h"
#include "lockstore/lockstore.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/par.h"
#include "raftkv/txkv.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "workload/driver.h"
#include "workload/runners.h"
#include "workload/ycsb.h"
#include "zab/zab.h"

namespace music::bench {

/// Host wall-clock stopwatch (NOT simulated time) for kernel-speed
/// reporting: how long a world took to execute, and how many simulated
/// events per host second the kernel sustained.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_sec() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One simulated world's bench outcome: the workload result plus how hard
/// the kernel worked for it (events executed, host wall-clock consumed).
struct CellResult {
  wl::RunResult run;
  uint64_t events = 0;
  double wall_sec = 0.0;

  double events_per_sec() const {
    return wall_sec > 0.0 ? static_cast<double>(events) / wall_sec : 0.0;
  }
};

/// Worker threads for bench sweeps: MUSIC_BENCH_THREADS if set (1 forces
/// sequential), else 0 = par::default_threads().
inline size_t bench_threads() {
  if (const char* env = std::getenv("MUSIC_BENCH_THREADS")) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 0;
}

/// Fans independent world thunks across the thread pool (see
/// par::run_worlds); results are in job order regardless of completion
/// order, so printed tables and CSVs are identical at any thread count.
inline std::vector<CellResult> run_cells(
    std::vector<std::function<CellResult()>> jobs) {
  return par::run_worlds(
      jobs, [](const std::function<CellResult()>& j) { return j(); },
      bench_threads());
}

/// Per-bench machine-readable report, written as BENCH_<name>.json next to
/// the binary output: a flat string -> number map plus the bench's total
/// wall-clock and aggregate kernel events/sec.  CI's perf-smoke job diffs
/// these against committed baselines.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}
  ~BenchReport() { write(); }
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void set(const std::string& key, double v) { entries_.emplace_back(key, v); }

  /// Records one world's kernel cost under `label`.*.
  void add_cell(const std::string& label, const CellResult& c) {
    set(label + ".wall_sec", c.wall_sec);
    set(label + ".events", static_cast<double>(c.events));
    set(label + ".events_per_sec", c.events_per_sec());
    total_events_ += c.events;
    total_world_wall_ += c.wall_sec;
  }

  bool write() {
    if (written_) return true;
    written_ = true;
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name_.c_str());
    std::fprintf(f, "  \"wall_sec_total\": %.6g,\n", timer_.elapsed_sec());
    std::fprintf(f, "  \"world_wall_sec_sum\": %.6g,\n", total_world_wall_);
    std::fprintf(f, "  \"events_total\": %.17g,\n",
                 static_cast<double>(total_events_));
    std::fprintf(f, "  \"events_per_sec_aggregate\": %.6g,\n",
                 total_world_wall_ > 0.0
                     ? static_cast<double>(total_events_) / total_world_wall_
                     : 0.0);
    std::fprintf(f, "  \"metrics\": {");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %.17g", i == 0 ? "" : ",",
                   entries_[i].first.c_str(), entries_[i].second);
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("[bench] wrote %s (wall %.2fs, %.2fM events/s aggregate)\n",
                path.c_str(), timer_.elapsed_sec(),
                total_world_wall_ > 0.0
                    ? static_cast<double>(total_events_) / total_world_wall_ /
                          1e6
                    : 0.0);
    return true;
  }

 private:
  std::string name_;
  WallTimer timer_;
  std::vector<std::pair<std::string, double>> entries_;
  uint64_t total_events_ = 0;
  double total_world_wall_ = 0.0;
  bool written_ = false;
};

/// Attaches a Tracer + MetricsRegistry to a simulation for one run and
/// exports both on dump().  Tracing stays off (and costs nothing) unless a
/// bench constructs one of these.
struct ObsSession {
  explicit ObsSession(sim::Simulation& sim) : sim_(sim) {
    tracer.set_registry(&metrics);
    sim_.set_tracer(&tracer);
  }
  ~ObsSession() { sim_.set_tracer(nullptr); }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Folds end-of-run simulation and network totals into the registry.
  void collect(sim::Network& net) {
    net.export_metrics(metrics);
    metrics.set("sim.events_run", sim_.events_run());
    metrics.set("sim.now_us", static_cast<uint64_t>(sim_.now()));
    metrics.set("trace.spans", tracer.spans().size());
    metrics.set("trace.dropped_spans", tracer.dropped_spans());
  }

  /// Folds one replica's MUSIC operation counters into the registry.
  void collect(const core::MusicStats& st, int site) {
    std::string p = "music.s" + std::to_string(site) + ".";
    metrics.set(p + "create_lock_ref", st.create_lock_ref);
    metrics.set(p + "acquire_attempts", st.acquire_attempts);
    metrics.set(p + "acquire_granted", st.acquire_granted);
    metrics.set(p + "synchronizations", st.synchronizations);
    metrics.set(p + "critical_puts", st.critical_puts);
    metrics.set(p + "critical_gets", st.critical_gets);
    metrics.set(p + "releases", st.releases);
    metrics.set(p + "forced_releases", st.forced_releases);
    metrics.set(p + "rejected_not_holder", st.rejected_not_holder);
    metrics.set(p + "rejected_expired", st.rejected_expired);
  }

  /// Writes the Chrome trace and/or metrics dump.  Empty path = skip.
  /// Metrics format follows the extension: ".csv" -> CSV, else JSON.
  bool dump(const std::string& trace_path, const std::string& metrics_path) {
    bool ok = true;
    if (!trace_path.empty()) {
      ok = obs::write_file(trace_path, obs::chrome_trace_json(tracer)) && ok;
    }
    if (!metrics_path.empty()) {
      bool csv = metrics_path.size() >= 4 &&
                 metrics_path.compare(metrics_path.size() - 4, 4, ".csv") == 0;
      ok = obs::write_file(metrics_path, csv ? obs::metrics_csv(metrics)
                                             : obs::metrics_json(metrics)) &&
           ok;
    }
    return ok;
  }

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;

 private:
  sim::Simulation& sim_;
};

/// A full MUSIC deployment with per-site clients.
struct MusicWorld {
  sim::Simulation sim;
  sim::Network net;
  ds::StoreCluster store;
  ls::LockStore locks;
  std::vector<std::unique_ptr<core::MusicReplica>> replicas;
  std::vector<std::unique_ptr<core::MusicClient>> clients;

  MusicWorld(uint64_t seed, const sim::LatencyProfile& profile,
             core::PutMode mode, int store_nodes, int clients_per_site,
             sim::Duration t_max_cs = sim::sec(3600))
      : sim(seed),
        net(sim,
            [&] {
              sim::NetworkConfig c;
              c.profile = profile;
              return c;
            }()),
        store(sim, net,
              [&] {
                ds::StoreConfig c;
                // Workload hint: per-client key ranges plus lock tables stay
                // comfortably under this; replicas pre-size their tables so
                // steady-state writes never rehash.
                c.expected_keys = 4096;
                return c;
              }(),
              node_sites(store_nodes)),
        locks(store) {
    core::MusicConfig mc;
    mc.put_mode = mode;
    mc.t_max_cs = t_max_cs;  // large: benches run long batch sections
    mc.holder_timeout = sim::sec(8);  // orphan-lockRef collection
    mc.fd_interval = sim::sec(2);
    for (int site = 0; site < 3; ++site) {
      replicas.push_back(
          std::make_unique<core::MusicReplica>(store, locks, mc, site));
      replicas.back()->start_failure_detector();
    }
    for (int site = 0; site < 3; ++site) {
      for (int i = 0; i < clients_per_site; ++i) {
        std::vector<core::MusicReplica*> prefs{
            replicas[static_cast<size_t>(site)].get()};
        for (int j = 0; j < 3; ++j) {
          if (j != site) prefs.push_back(replicas[static_cast<size_t>(j)].get());
        }
        clients.push_back(std::make_unique<core::MusicClient>(
            sim, net, prefs, core::ClientConfig{}, site));
      }
    }
  }

  std::vector<core::MusicClient*> client_ptrs() {
    std::vector<core::MusicClient*> v;
    v.reserve(clients.size());
    for (auto& c : clients) v.push_back(c.get());
    return v;
  }

  static std::vector<int> node_sites(int n) {
    std::vector<int> v;
    for (int i = 0; i < n; ++i) v.push_back(i % 3);
    return v;
  }
};

/// A Zookeeper deployment with per-site clients.
struct ZkWorld {
  sim::Simulation sim;
  sim::Network net;
  zab::ZabEnsemble ens;
  std::vector<std::unique_ptr<zab::ZkClient>> clients;

  ZkWorld(uint64_t seed, const sim::LatencyProfile& profile,
          int clients_per_site)
      : sim(seed),
        net(sim,
            [&] {
              sim::NetworkConfig c;
              c.profile = profile;
              return c;
            }()),
        ens(sim, net, zab::ZabConfig{}, {0, 1, 2}) {
    ens.start();
    for (int site = 0; site < 3; ++site) {
      for (int i = 0; i < clients_per_site; ++i) {
        clients.push_back(std::make_unique<zab::ZkClient>(ens, site));
      }
    }
  }

  std::vector<zab::ZkClient*> client_ptrs() {
    std::vector<zab::ZkClient*> v;
    for (auto& c : clients) v.push_back(c.get());
    return v;
  }
};

/// A CockroachDB-substitute deployment with per-site transaction clients.
struct CdbWorld {
  sim::Simulation sim;
  sim::Network net;
  raftkv::RaftCluster cluster;
  std::vector<std::unique_ptr<raftkv::TxClient>> clients;

  CdbWorld(uint64_t seed, const sim::LatencyProfile& profile,
           int clients_per_site)
      : sim(seed),
        net(sim,
            [&] {
              sim::NetworkConfig c;
              c.profile = profile;
              return c;
            }()),
        cluster(sim, net, raftkv::RaftConfig{}, {0, 1, 2}) {
    cluster.start();
    cluster.wait_for_leader();
    int id = 0;
    for (int site = 0; site < 3; ++site) {
      for (int i = 0; i < clients_per_site; ++i) {
        // Built stepwise: GCC 12 mis-fires -Werror=restrict on literal +
        // to_string rvalue concats once this ctor is inlined into callers.
        std::string name = "c";
        name += std::to_string(id++);
        clients.push_back(
            std::make_unique<raftkv::TxClient>(cluster, site, name));
      }
    }
  }

  std::vector<raftkv::TxClient*> client_ptrs() {
    std::vector<raftkv::TxClient*> v;
    for (auto& c : clients) v.push_back(c.get());
    return v;
  }
};

/// CSV sink: every bench writes its series next to the binary output.
class Csv {
 public:
  explicit Csv(const std::string& path) : f_(std::fopen(path.c_str(), "w")) {}
  ~Csv() {
    if (f_ != nullptr) std::fclose(f_);
  }
  Csv(const Csv&) = delete;
  Csv& operator=(const Csv&) = delete;

  void row(const std::string& line) {
    if (f_ != nullptr) std::fprintf(f_, "%s\n", line.c_str());
  }

 private:
  std::FILE* f_;
};

inline void hr() {
  std::printf("--------------------------------------------------------------------------------\n");
}

/// Human-readable bytes label (10B, 1KB, 256KB).
inline std::string size_label(size_t bytes) {
  if (bytes >= 1024 * 1024) return std::to_string(bytes / (1024 * 1024)) + "MB";
  if (bytes >= 1024) return std::to_string(bytes / 1024) + "KB";
  return std::to_string(bytes) + "B";
}

}  // namespace music::bench
