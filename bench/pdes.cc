// bench_pdes: intra-world scaling of the conservative PDES engine.
//
// One 64-group / 8-site sharded MUSIC world (every group's three replicas
// staggered round-robin across the sites, so work spreads over all eight
// site lanes), driven by 32 closed-loop clients, executed five ways: the
// classic single-threaded kernel, then PDES at 1/2/4/8 shard workers.
// Reported per config: kernel events/sec (simulated events per host
// second), plus two derived headlines —
//
//   parity_w1_vs_classic   single-worker PDES vs classic (target: >= 0.90,
//                          the windowed engine's bookkeeping should cost
//                          under 10%)
//   speedup_w8_vs_w1       8 workers vs 1 (target: >= 3.0 on >= 8 cores;
//                          skipped on smaller hosts, where the extra
//                          threads only add barrier overhead)
//
// Every PDES run must also produce the SAME workload fingerprint — the
// bench doubles as a determinism check; a mismatch exits nonzero.
//
//   bench_pdes [--smoke] [--tolerance F]
//     --smoke        short virtual window (CI)
//     --tolerance F  allowed parity shortfall (default 0.10)
//
// Writes BENCH_pdes.json; CI diffs events_per_sec_aggregate against
// bench/baseline/BENCH_pdes.json with tools/check_perf.py.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client.h"
#include "cluster/cluster.h"
#include "common.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace music {
namespace {

/// FNV-1a 64-bit over each client's op log; per-client logs folded in cid
/// order keep the fingerprint worker-count invariant.
struct Fnv {
  uint64_t h = 0xcbf29ce484222325ull;
  void mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
};

struct Outcome {
  uint64_t events = 0;
  double wall_sec = 0.0;
  uint64_t ops = 0;
  uint64_t fingerprint = 0;

  double events_per_sec() const {
    return wall_sec > 0.0 ? static_cast<double>(events) / wall_sec : 0.0;
  }
};

/// One client's closed loop: critical sections over its keys until the
/// virtual deadline.
sim::Task<void> client_loop(sim::Simulation& sim, cluster::Client& c,
                            std::vector<Key> keys, sim::Time deadline,
                            Fnv& log, uint64_t& ops) {
  size_t i = 0;
  while (sim.now() < deadline) {
    const Key& key = keys[i++ % keys.size()];
    auto ref = co_await c.create_lock_ref(key);
    if (!ref.ok()) continue;
    if (!(co_await c.acquire_lock_blocking(key, ref.value())).ok()) continue;
    (void)co_await c.critical_put(key, ref.value(), Value("v"));
    (void)co_await c.release_lock(key, ref.value());
    ++ops;
    log.mix(static_cast<uint64_t>(sim.now()));
  }
}

/// Keys owned by groups HOMED at `site` (probed deterministically): keeps
/// every shared group client single-lane under PDES, and is the sane
/// locality-aware placement anyway.
std::vector<Key> keys_homed_at(cluster::Cluster& cl, int site, int salt,
                               int want) {
  auto map = cl.snapshot();
  std::vector<Key> out;
  for (int i = salt; static_cast<int>(out.size()) < want && i < salt + 4096;
       ++i) {
    Key key = "k";
    key += std::to_string(i);
    int g = map->group_of(map->route(key));
    for (int k = 0; k < 3; ++k) {
      if (cl.home_site(g, k) == site) {
        out.push_back(key);
        break;
      }
    }
  }
  return out;
}

/// Builds and runs the 64-group world.  `pdes_workers` == 0 -> classic.
Outcome run_world(size_t pdes_workers, sim::Duration measure) {
  sim::Simulation sim(1);
  sim::NetworkConfig nc;
  nc.profile = sim::LatencyProfile::uniform(8, 40.0, 0.2);
  if (pdes_workers > 0) {
    sim::Simulation::PdesOptions po;
    po.sites = nc.profile.num_sites();
    po.workers = pdes_workers;
    po.lookahead = sim::Network::conservative_lookahead(nc);
    sim.enable_pdes(po);
  }
  sim::Network net(sim, nc);
  cluster::ClusterConfig cc;
  cc.shards = 64;
  cc.groups = 0;  // one group per shard
  cc.sites = 8;
  cluster::Cluster cl(sim, net, cc);

  constexpr int kClients = 32;
  std::vector<std::unique_ptr<cluster::Client>> clients;
  std::vector<Fnv> logs(kClients);
  std::vector<uint64_t> ops(kClients, 0);
  bench::WallTimer timer;
  for (int cid = 0; cid < kClients; ++cid) {
    int site = cid % 8;
    clients.push_back(std::make_unique<cluster::Client>(cl, site));
    sim::spawn(sim, client_loop(sim, *clients.back(),
                                keys_homed_at(cl, site, cid * 53, 4), measure,
                                logs[static_cast<size_t>(cid)],
                                ops[static_cast<size_t>(cid)]));
  }
  sim.run_until(measure);

  Outcome out;
  out.events = sim.events_run();
  out.wall_sec = timer.elapsed_sec();
  Fnv fp;
  for (int cid = 0; cid < kClients; ++cid) {
    out.ops += ops[static_cast<size_t>(cid)];
    fp.mix(logs[static_cast<size_t>(cid)].h);
    fp.mix(ops[static_cast<size_t>(cid)]);
  }
  fp.mix(out.events);
  out.fingerprint = fp.h;
  return out;
}

int run(bool smoke, double tolerance) {
  const sim::Duration measure = smoke ? sim::sec(20) : sim::sec(60);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("bench_pdes: 64 groups / 8 sites / 32 clients, %llds virtual"
              " (%u hardware threads)\n",
              static_cast<long long>(measure / 1'000'000), hw);
  std::printf("  %-10s %12s %9s %14s %8s\n", "config", "events", "wall_s",
              "events/sec", "ops");

  bench::BenchReport report("pdes");
  auto record = [&](const char* label, const Outcome& o) {
    bench::CellResult c;
    c.events = o.events;
    c.wall_sec = o.wall_sec;
    report.add_cell(label, c);
    std::printf("  %-10s %12llu %9.2f %14.0f %8llu\n", label,
                static_cast<unsigned long long>(o.events), o.wall_sec,
                o.events_per_sec(), static_cast<unsigned long long>(o.ops));
  };

  Outcome classic = run_world(0, measure);
  record("classic", classic);

  const size_t worker_configs[] = {1, 2, 4, 8};
  std::vector<Outcome> pdes;
  for (size_t w : worker_configs) {
    pdes.push_back(run_world(w, measure));
    std::string label = "pdes_w";
    label += std::to_string(w);
    record(label.c_str(), pdes.back());
  }

  int rc = 0;
  // Determinism: every PDES worker count must reproduce the same bits.
  for (size_t i = 1; i < pdes.size(); ++i) {
    if (pdes[i].fingerprint != pdes[0].fingerprint ||
        pdes[i].events != pdes[0].events) {
      std::printf("FAIL: pdes_w%zu fingerprint/events diverge from pdes_w1\n",
                  worker_configs[i]);
      rc = 1;
    }
  }

  double parity = classic.events_per_sec() > 0.0
                      ? pdes[0].events_per_sec() / classic.events_per_sec()
                      : 0.0;
  report.set("parity_w1_vs_classic", parity);
  std::printf("  parity  pdes_w1 / classic = %.3f (target >= %.2f)\n", parity,
              1.0 - tolerance);
  if (parity < 1.0 - tolerance) {
    std::printf("FAIL: single-worker PDES more than %.0f%% below classic\n",
                tolerance * 100.0);
    rc = 1;
  }

  double speedup = pdes[0].events_per_sec() > 0.0
                       ? pdes.back().events_per_sec() / pdes[0].events_per_sec()
                       : 0.0;
  report.set("speedup_w8_vs_w1", speedup);
  if (hw >= 8) {
    std::printf("  speedup pdes_w8 / pdes_w1 = %.2fx (target >= 3.0)\n",
                speedup);
    if (speedup < 3.0) {
      std::printf("FAIL: 8-worker speedup below 3x on a >= 8-core host\n");
      rc = 1;
    }
  } else {
    std::printf("  speedup pdes_w8 / pdes_w1 = %.2fx"
                " (gate skipped: %u hardware threads < 8)\n",
                speedup, hw);
  }
  return rc;
}

}  // namespace
}  // namespace music

int main(int argc, char** argv) {
  bool smoke = false;
  double tolerance = 0.10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: bench_pdes [--smoke] [--tolerance F]\n");
      return 2;
    }
  }
  return music::run(smoke, tolerance);
}
