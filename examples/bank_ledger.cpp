// A geo-distributed ledger on MUSIC's extension APIs: multi-key critical
// sections (§III-A's lexicographic-order extension) for atomic transfers
// between accounts, plus the atomic-structure recipes the paper's §II
// argues critical sections subsume (an AtomicCounter audit log).
//
// Three tellers at three sites transfer money concurrently; one teller
// crashes while HOLDING both account locks (before writing).  The failure
// detector collects its locks and the other tellers proceed; the invariant
// — the sum of all balances never changes — holds throughout.
//
// NOTE the deliberate design point, straight from §II: MUSIC checkpoints
// state with criticalPuts and has NO transactional rollback — a client that
// crashed between two puts would leave the first one as latest state.  A
// production ledger therefore writes an intent/journal record before
// touching balances (the homing service's job-state checkpointing is the
// same pattern); this example crashes the teller before its first put, the
// case MUSIC's locks handle by themselves.
//
// Build & run:  ./build/examples/bank_ledger

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/multikey.h"
#include "recipes/recipes.h"
#include "util_world_example.h"

using namespace music;

namespace {

constexpr int kAccounts = 4;
constexpr int kInitialBalance = 250;

Key account(int i) { return "acct-" + std::to_string(i); }

sim::Task<void> teller(ExampleWorld& w, core::MusicClient& c, int id,
                       sim::Time die_at, int transfers, int& completed) {
  recipes::AtomicCounter audit(c, "audit-log");
  sim::Rng rng(static_cast<uint64_t>(id) * 7919 + 13);
  for (int t = 0; t < transfers; ++t) {
    if (die_at > 0 && w.s.now() >= die_at) {
      std::printf("[t=%6.2f s] teller-%d CRASHED mid-shift\n",
                  sim::to_sec(w.s.now()), id);
      co_return;
    }
    int from = static_cast<int>(rng.next_u64() % kAccounts);
    int to = (from + 1 + static_cast<int>(rng.next_u64() % (kAccounts - 1))) %
             kAccounts;
    int amount = static_cast<int>(1 + rng.next_u64() % 50);

    core::MultiKeySection cs(c, {account(from), account(to)});
    auto st = co_await cs.acquire_all();
    if (!st.ok()) continue;
    if (die_at > 0 && w.s.now() >= die_at) {
      // Crash while holding both locks, before writing: the failure
      // detector preempts the orphaned section so other tellers proceed.
      std::printf("[t=%6.2f s] teller-%d CRASHED holding locks on %s,%s "
                  "(FD will preempt)\n",
                  sim::to_sec(w.s.now()), id, account(from).c_str(),
                  account(to).c_str());
      co_return;
    }
    auto gf = co_await cs.get(account(from));
    auto gt = co_await cs.get(account(to));
    if (gf.ok() && gt.ok()) {
      int bf = std::stoi(gf.value().data);
      int bt = std::stoi(gt.value().data);
      if (bf >= amount) {
        auto p1 = co_await cs.put(account(from), Value(std::to_string(bf - amount)));
        auto p2 = co_await cs.put(account(to), Value(std::to_string(bt + amount)));
        if (p1.ok() && p2.ok()) {
          co_await audit.add(1);
          ++completed;
          std::printf("[t=%6.2f s] teller-%d moved %3d: %s -> %s\n",
                      sim::to_sec(w.s.now()), id, amount, account(from).c_str(),
                      account(to).c_str());
        }
      }
    }
    co_await cs.release_all();
    co_await sim::sleep_for(w.s, rng.uniform_int(0, sim::ms(500)));
  }
}

}  // namespace

int main() {
  ExampleWorld w(/*seed=*/31, /*failure_detector=*/true);
  std::printf("Geo-distributed bank ledger: %d accounts x %d, 3 tellers, "
              "teller-0 crashes mid-transfer\n\n", kAccounts, kInitialBalance);

  // Initialize balances under one multi-key section.
  bool init_done = false;
  sim::spawn(w.s, [](ExampleWorld& world, bool& d) -> sim::Task<void> {
    std::vector<Key> keys;
    for (int i = 0; i < kAccounts; ++i) keys.push_back(account(i));
    core::MultiKeySection init(*world.clients[0], keys);
    co_await init.acquire_all();
    for (int i = 0; i < kAccounts; ++i) {
      co_await init.put(account(i), Value(std::to_string(kInitialBalance)));
    }
    co_await init.release_all();
    d = true;
  }(w, init_done));
  w.s.run_until(sim::sec(30));
  if (!init_done) return 1;

  int completed = 0;
  sim::spawn(w.s, teller(w, *w.clients[0], 0, sim::sec(40), 10, completed));
  sim::spawn(w.s, teller(w, *w.clients[1], 1, 0, 10, completed));
  sim::spawn(w.s, teller(w, *w.clients[2], 2, 0, 10, completed));
  w.s.run_until(sim::sec(300));

  // Audit: conservation of money, observed through a fresh section.
  int total = -1;
  bool audited = false;
  sim::spawn(w.s, [](ExampleWorld& world, int& sum, bool& d) -> sim::Task<void> {
    std::vector<Key> keys;
    for (int i = 0; i < kAccounts; ++i) keys.push_back(account(i));
    core::MultiKeySection cs(*world.clients[1], keys);
    auto st = co_await cs.acquire_all();
    if (!st.ok()) co_return;
    sum = 0;
    for (int i = 0; i < kAccounts; ++i) {
      auto g = co_await cs.get(account(i));
      if (g.ok()) sum += std::stoi(g.value().data);
    }
    co_await cs.release_all();
    recipes::AtomicCounter audit(*world.clients[1], "audit-log");
    auto n = co_await audit.get();
    std::printf("\naudit: %lld transfers logged, total balance %d "
                "(expected %d)\n",
                n.ok() ? static_cast<long long>(n.value()) : -1, sum,
                kAccounts * kInitialBalance);
    d = true;
  }(w, total, audited));
  w.s.run_until(sim::sec(400));

  bool ok = audited && total == kAccounts * kInitialBalance;
  std::printf("%s (completed transfers: %d)\n",
              ok ? "LEDGER CONSISTENT" : "LEDGER BROKEN", completed);
  return ok ? 0 : 1;
}
