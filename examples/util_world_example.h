// Shared deployment boilerplate for the examples: the Fig. 1 topology (3
// sites, one store node and one MUSIC replica per site) plus one client per
// site.
#pragma once

#include <memory>
#include <vector>

#include "core/client.h"
#include "core/music.h"
#include "datastore/store.h"
#include "lockstore/lockstore.h"
#include "sim/network.h"
#include "sim/simulation.h"

struct ExampleWorld {
  music::sim::Simulation s;
  music::sim::Network net;
  music::ds::StoreCluster store;
  music::ls::LockStore locks;
  std::vector<std::unique_ptr<music::core::MusicReplica>> replicas;
  std::vector<std::unique_ptr<music::core::MusicClient>> clients;

  explicit ExampleWorld(uint64_t seed, bool failure_detector = false)
      : s(seed),
        net(s,
            [] {
              music::sim::NetworkConfig c;
              c.profile = music::sim::LatencyProfile::profile_lus();
              return c;
            }()),
        store(s, net, music::ds::StoreConfig{}, {0, 1, 2}),
        locks(store) {
    music::core::MusicConfig mc;
    mc.holder_timeout = music::sim::sec(8);
    mc.fd_interval = music::sim::sec(2);
    for (int site = 0; site < 3; ++site) {
      replicas.push_back(std::make_unique<music::core::MusicReplica>(
          store, locks, mc, site));
      if (failure_detector) replicas.back()->start_failure_detector();
    }
    for (int site = 0; site < 3; ++site) {
      std::vector<music::core::MusicReplica*> prefs{
          replicas[static_cast<size_t>(site)].get()};
      for (int i = 0; i < 3; ++i) {
        if (i != site) prefs.push_back(replicas[static_cast<size_t>(i)].get());
      }
      clients.push_back(std::make_unique<music::core::MusicClient>(
          s, net, prefs, music::core::ClientConfig{}, site));
    }
  }
};
