// The Management Portal Service of §VII-b: active replication with
// failover, built on MUSIC ownership transfer.
//
// Each user's role updates must be processed from the latest state by
// exactly one back-end replica (the user's *owner*).  The owner holds a
// long-lived MUSIC lock on the userId; front-ends route requests to the
// owner (cached, refreshed via a lock-free get).  On owner failure, the
// next back end forcibly releases the old owner's lock, acquires its own,
// and updates the ownership record — the §VII-b own()/write() pseudo-code.
// Amortization: one createLockRef/acquireLock pair serves MANY criticalPuts
// (ownership transitions only on failure).
//
// Build & run:  ./build/examples/portal

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/music.h"
#include "datastore/store.h"
#include "lockstore/lockstore.h"
#include "sim/network.h"
#include "sim/simulation.h"

using namespace music;

namespace {

struct PortalWorld {
  sim::Simulation s{11};
  sim::Network net;
  ds::StoreCluster store;
  ls::LockStore locks;
  std::vector<std::unique_ptr<core::MusicReplica>> replicas;
  std::vector<std::unique_ptr<core::MusicClient>> clients;

  PortalWorld()
      : net(s, [] {
          sim::NetworkConfig c;
          c.profile = sim::LatencyProfile::profile_lus();
          return c;
        }()),
        store(s, net, ds::StoreConfig{}, {0, 1, 2}),
        locks(store) {
    for (int site = 0; site < 3; ++site) {
      replicas.push_back(std::make_unique<core::MusicReplica>(
          store, locks, core::MusicConfig{}, site));
    }
  }

  core::MusicClient& make_client(int site) {
    std::vector<core::MusicReplica*> prefs{replicas[static_cast<size_t>(site)].get()};
    for (int i = 0; i < 3; ++i) {
      if (i != site) prefs.push_back(replicas[static_cast<size_t>(i)].get());
    }
    clients.push_back(std::make_unique<core::MusicClient>(
        s, net, prefs, core::ClientConfig{}, site));
    return *clients.back();
  }
};

/// One Portal back-end replica.  Processes write(userID, role) requests in
/// a single thread (the §VII-b requirement) using its cached lockRef.
class PortalBackend {
 public:
  PortalBackend(PortalWorld& w, int site, std::string name)
      : w_(w), client_(w.make_client(site)), name_(std::move(name)) {}

  void crash() { alive_ = false; }
  bool alive() const { return alive_; }
  const std::string& name() const { return name_; }

  /// write(userID, role) at Portal back end P (§VII-b pseudo-code).
  sim::Task<Status> write(Key user, Value role) {
    if (!alive_) co_return OpStatus::Timeout;  // dead replicas do not reply
    Key owner_key = user + "-owner";
    auto owner = co_await client_.get(owner_key);
    bool must_own = false;
    LockRef old_ref = kNoLockRef;
    if (!owner.ok()) {
      must_own = true;  // only on initialization: first owner
    } else if (owner_of(owner.value()) != name_) {
      // Only on previous owner failure: transfer ownership.
      must_own = true;
      old_ref = ref_of(owner.value());
    }
    if (must_own) {
      if (old_ref != kNoLockRef) {
        co_await client_.forced_release(user, old_ref);
      }
      auto st = co_await own(user);
      if (!st.ok()) co_return st;
      std::printf("[t=%7.2f s] %s became owner of %s (lockRef %lld)\n",
                  sim::to_sec(w_.s.now()), name_.c_str(), user.c_str(),
                  static_cast<long long>(my_ref_[user]));
    }
    // The amortized fast path: one criticalPut per request, no locking.
    co_return co_await client_.critical_put(user, my_ref_[user], role);
  }

  sim::Task<Result<Value>> read(Key user) {
    if (!alive_) co_return Result<Value>::Err(OpStatus::Timeout);
    co_return co_await client_.critical_get(user, my_ref_[user]);
  }

 private:
  static std::string owner_of(const Value& v) {
    return v.data.substr(0, v.data.find('/'));
  }
  static LockRef ref_of(const Value& v) {
    return std::stoll(v.data.substr(v.data.find('/') + 1));
  }

  /// own(userID) at Portal back end P (§VII-b): called infrequently.
  sim::Task<Status> own(Key user) {
    auto ref = co_await client_.create_lock_ref(user);
    if (!ref.ok()) co_return ref.status();
    auto acq = co_await client_.acquire_lock_blocking(user, ref.value());
    if (!acq.ok()) co_return acq;
    my_ref_[user] = ref.value();
    // put(userID-owner, (P, lockRef)); no locks needed.
    co_return co_await client_.put(
        user + "-owner", Value(name_ + "/" + std::to_string(ref.value())));
  }

  PortalWorld& w_;
  core::MusicClient& client_;
  std::string name_;
  bool alive_ = true;
  std::map<Key, LockRef> my_ref_;
};

/// Portal REST front end (§VII-b): routes each request to the user's owner,
/// retrying at the next-closest back end when the owner fails to respond.
sim::Task<Status> front_end_write(PortalWorld& /*w*/,
                                  std::vector<PortalBackend*> backends,
                                  Key user, Value role) {
  for (PortalBackend* b : backends) {
    if (!b->alive()) continue;  // "owner fails to respond": next closest
    auto st = co_await b->write(user, role);
    if (st.ok()) co_return st;
  }
  co_return OpStatus::Timeout;
}

sim::Task<void> scenario(PortalWorld& w, std::vector<PortalBackend*> backends,
                         int& failures) {
  const Key user = "alice";
  // A stream of role updates; each must hit exactly one backend and apply
  // to the latest state.
  const char* roles[] = {"viewer", "editor", "admin"};
  for (int i = 0; i < 3; ++i) {
    auto st = co_await front_end_write(w, backends, user, Value(roles[i]));
    if (!st.ok()) ++failures;
    std::printf("[t=%7.2f s] front-end applied role '%s' -> %s\n",
                sim::to_sec(w.s.now()), roles[i],
                st.ok() ? "OK" : "FAILED");
  }
  auto before = co_await backends[0]->read(user);
  std::printf("[t=%7.2f s] role before failover: %s\n", sim::to_sec(w.s.now()),
              before.ok() ? before.value().data.c_str() : "?");

  // The owner crashes.  The next request transfers ownership: forced
  // release + own() at the next-closest backend, which resumes from the
  // LATEST role state.
  std::printf("[t=%7.2f s] *** %s crashes ***\n", sim::to_sec(w.s.now()),
              backends[0]->name().c_str());
  backends[0]->crash();

  auto st = co_await front_end_write(w, backends, user, Value("auditor"));
  if (!st.ok()) ++failures;
  std::printf("[t=%7.2f s] front-end applied role 'auditor' after failover -> %s\n",
              sim::to_sec(w.s.now()), st.ok() ? "OK" : "FAILED");

  auto after = co_await backends[1]->read(user);
  std::printf("[t=%7.2f s] role after failover:  %s (latest state preserved)\n",
              sim::to_sec(w.s.now()),
              after.ok() ? after.value().data.c_str() : "?");
  if (!after.ok() || after.value().data != "auditor") ++failures;
}

}  // namespace

int main() {
  PortalWorld w;
  std::printf("Management Portal Service (SVII-b): active replication with "
              "MUSIC ownership failover\n\n");
  PortalBackend b0(w, 0, "backend-sd");   // San Diego
  PortalBackend b1(w, 1, "backend-kc");   // Kansas City
  PortalBackend b2(w, 2, "backend-nc");   // North Carolina
  std::vector<PortalBackend*> backends{&b0, &b1, &b2};

  int failures = 0;
  sim::spawn(w.s, scenario(w, backends, failures));
  w.s.run_until(sim::sec(120));
  std::printf("\n%s\n", failures == 0 ? "PORTAL SCENARIO OK" : "FAILURES SEEN");
  return failures == 0 ? 0 : 1;
}
