// Quickstart: the paper's Listing 1, verbatim, against a simulated 3-site
// deployment (Fig. 1).
//
//   lockRef = createLockRef(key);
//   while (acquireLock(key, lockRef) != true) skip;
//   v1 = criticalGet(key, lockRef);
//   v2 = v1 + 1;
//   criticalPut(key, lockRef, v2);
//   releaseLock(key, lockRef);
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>
#include <vector>

#include "core/client.h"
#include "core/music.h"
#include "datastore/store.h"
#include "lockstore/lockstore.h"
#include "sim/network.h"
#include "sim/simulation.h"

using namespace music;

namespace {

sim::Task<void> listing1(sim::Simulation& s, core::MusicClient& client) {
  const Key key = "counter";

  // Seed the counter with a (non-ECF) initialization write.
  co_await client.put(key, Value("0"));

  for (int round = 0; round < 3; ++round) {
    // lockRef = createLockRef(key);
    auto lock_ref = co_await client.create_lock_ref(key);
    if (!lock_ref.ok()) {
      std::printf("createLockRef failed: %s\n",
                  std::string(to_string(lock_ref.status())).c_str());
      co_return;
    }
    std::printf("[t=%7.1f ms] created lockRef %lld\n", sim::to_ms(s.now()),
                static_cast<long long>(lock_ref.value()));

    // while (acquireLock(key, lockRef) != true) skip;
    auto acquired = co_await client.acquire_lock_blocking(key, lock_ref.value());
    if (!acquired.ok()) co_return;
    std::printf("[t=%7.1f ms] entered critical section\n", sim::to_ms(s.now()));

    // v1 = criticalGet(key, lockRef);   // guaranteed the true value
    auto v1 = co_await client.critical_get(key, lock_ref.value());
    int value = v1.ok() ? std::stoi(v1.value().data) : 0;

    // v2 = v1 + 1;  criticalPut(key, lockRef, v2);
    auto put = co_await client.critical_put(key, lock_ref.value(),
                                            Value(std::to_string(value + 1)));
    if (!put.ok()) co_return;
    std::printf("[t=%7.1f ms] %d -> %d (guaranteed true value)\n",
                sim::to_ms(s.now()), value, value + 1);

    // releaseLock(key, lockRef);
    co_await client.release_lock(key, lock_ref.value());
    std::printf("[t=%7.1f ms] exited critical section\n\n", sim::to_ms(s.now()));
  }

  auto final_value = co_await client.get(key);
  std::printf("final counter: %s\n",
              final_value.ok() ? final_value.value().data.c_str() : "?");
}

}  // namespace

int main() {
  // A 3-site deployment on the paper's lUs latency profile
  // (Ohio / N. California / Oregon, Table II).
  sim::Simulation s(/*seed=*/2026);
  sim::NetworkConfig net_cfg;
  net_cfg.profile = sim::LatencyProfile::profile_lus();
  sim::Network net(s, net_cfg);

  ds::StoreCluster store(s, net, ds::StoreConfig{}, {0, 1, 2});
  ls::LockStore locks(store);

  std::vector<std::unique_ptr<core::MusicReplica>> replicas;
  for (int site = 0; site < 3; ++site) {
    replicas.push_back(
        std::make_unique<core::MusicReplica>(store, locks, core::MusicConfig{}, site));
  }

  // A client at site 0, preferring its local MUSIC replica.
  core::MusicClient client(
      s, net, {replicas[0].get(), replicas[1].get(), replicas[2].get()},
      core::ClientConfig{}, /*site=*/0);

  std::printf("MUSIC quickstart on the '%s' profile "
              "(RTTs: S1-S2 53.79ms, S1-S3 72.14ms, S2-S3 24.2ms)\n\n",
              net_cfg.profile.name.c_str());
  sim::spawn(s, listing1(s, client));
  s.run_until(sim::sec(60));
  return 0;
}
