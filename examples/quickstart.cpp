// Quickstart: the paper's Listing 1 against a simulated 3-site deployment
// (Fig. 1), three ways:
//
//   round 0 — the raw Table I calls, verbatim from Listing 1:
//     lockRef = createLockRef(key);
//     while (acquireLock(key, lockRef) != true) skip;
//     v1 = criticalGet(key, lockRef);
//     v2 = v1 + 1;
//     criticalPut(key, lockRef, v2);
//     releaseLock(key, lockRef);
//
//   round 1 — the CriticalSection handle (RAII: a dropped handle releases
//     the lock in the background).
//
//   round 2 — a pipelined Session: the counter bump, an audit record and a
//     read-back ship as ONE batched request; the independent writes cost a
//     single quorum round trip instead of one per put.
//
// Exits non-zero if any round fails or the final counter is wrong.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>
#include <vector>

#include "core/client.h"
#include "core/music.h"
#include "core/session.h"
#include "datastore/store.h"
#include "lockstore/lockstore.h"
#include "sim/network.h"
#include "sim/simulation.h"

using namespace music;

namespace {

bool g_ok = false;

sim::Task<void> round0_listing1(sim::Simulation& s, core::MusicClient& client,
                                const Key& key) {
  // lockRef = createLockRef(key);
  auto lock_ref = co_await client.create_lock_ref(key);
  if (!lock_ref.ok()) co_return;
  std::printf("[t=%7.1f ms] created lockRef %lld\n", sim::to_ms(s.now()),
              static_cast<long long>(lock_ref.value()));

  // while (acquireLock(key, lockRef) != true) skip;
  auto acquired = co_await client.acquire_lock_blocking(key, lock_ref.value());
  if (!acquired.ok()) co_return;
  std::printf("[t=%7.1f ms] entered critical section\n", sim::to_ms(s.now()));

  // v1 = criticalGet(key, lockRef);   // guaranteed the true value
  auto v1 = co_await client.critical_get(key, lock_ref.value());
  int value = v1.ok() ? std::stoi(v1.value().data) : 0;

  // v2 = v1 + 1;  criticalPut(key, lockRef, v2);
  auto put = co_await client.critical_put(key, lock_ref.value(),
                                          Value(std::to_string(value + 1)));
  if (!put.ok()) co_return;
  std::printf("[t=%7.1f ms] %d -> %d (guaranteed true value)\n",
              sim::to_ms(s.now()), value, value + 1);

  // releaseLock(key, lockRef);
  co_await client.release_lock(key, lock_ref.value());
  std::printf("[t=%7.1f ms] exited critical section\n\n", sim::to_ms(s.now()));
}

sim::Task<void> round1_handle(sim::Simulation& s, core::MusicClient& client,
                              const Key& key) {
  // The same section through the RAII handle: enter() runs
  // createLockRef + the acquire loop; exit() releases.  If the handle goes
  // out of scope while held, the release happens in the background.
  core::CriticalSection cs(client, key);
  auto acq = co_await cs.enter();
  if (!acq.ok()) co_return;
  std::printf("[t=%7.1f ms] entered via CriticalSection (lockRef %lld)\n",
              sim::to_ms(s.now()), static_cast<long long>(cs.ref()));
  auto v1 = co_await cs.get();
  int value = v1.ok() ? std::stoi(v1.value().data) : 0;
  auto put = co_await cs.put(Value(std::to_string(value + 1)));
  if (!put.ok()) co_return;
  std::printf("[t=%7.1f ms] %d -> %d via handle\n", sim::to_ms(s.now()), value,
              value + 1);
  co_await cs.exit();
  std::printf("[t=%7.1f ms] exited via handle\n\n", sim::to_ms(s.now()));
}

sim::Task<void> round2_session(sim::Simulation& s, core::MusicClient& client,
                               const Key& key) {
  core::CriticalSection cs(client, key);
  auto acq = co_await cs.enter();
  if (!acq.ok()) co_return;
  auto v1 = co_await cs.get();
  int value = v1.ok() ? std::stoi(v1.value().data) : 0;

  // The counter bump, an audit record and a read-back, batched: one wire
  // request, and the two independent-key puts share one quorum round trip.
  core::Session batch = cs.session();
  batch.put(Value(std::to_string(value + 1)));
  batch.put(key + "-audit", Value("bumped"));
  batch.get();
  auto st = co_await batch.flush();
  if (!st.ok()) co_return;
  std::printf("[t=%7.1f ms] %d -> %s via one batched flush (%zu ops)\n",
              sim::to_ms(s.now()), value, batch.results()[2].value.data.c_str(),
              batch.results().size());
  co_await cs.exit();
  std::printf("[t=%7.1f ms] exited; audit row written alongside\n\n",
              sim::to_ms(s.now()));
}

sim::Task<void> quickstart(sim::Simulation& s, core::MusicClient& client) {
  const Key key = "counter";
  // Seed the counter with a (non-ECF) initialization write.
  co_await client.put(key, Value("0"));

  co_await round0_listing1(s, client, key);
  co_await round1_handle(s, client, key);
  co_await round2_session(s, client, key);

  auto final_value = co_await client.get(key);
  auto audit = co_await client.get(key + "-audit");
  std::printf("final counter: %s, audit: %s\n",
              final_value.ok() ? final_value.value().data.c_str() : "?",
              audit.ok() ? audit.value().data.c_str() : "?");
  // Self-check: three rounds, each incremented exactly once, audit present.
  g_ok = final_value.ok() && final_value.value().data == "3" && audit.ok() &&
         audit.value().data == "bumped";
}

}  // namespace

int main() {
  // A 3-site deployment on the paper's lUs latency profile
  // (Ohio / N. California / Oregon, Table II).
  sim::Simulation s(/*seed=*/2026);
  sim::NetworkConfig net_cfg;
  net_cfg.profile = sim::LatencyProfile::profile_lus();
  sim::Network net(s, net_cfg);

  ds::StoreCluster store(s, net, ds::StoreConfig{}, {0, 1, 2});
  ls::LockStore locks(store);

  std::vector<std::unique_ptr<core::MusicReplica>> replicas;
  for (int site = 0; site < 3; ++site) {
    replicas.push_back(
        std::make_unique<core::MusicReplica>(store, locks, core::MusicConfig{}, site));
  }

  // A client at site 0, preferring its local MUSIC replica.
  core::MusicClient client(
      s, net, {replicas[0].get(), replicas[1].get(), replicas[2].get()},
      core::ClientConfig{}, /*site=*/0);

  std::printf("MUSIC quickstart on the '%s' profile "
              "(RTTs: S1-S2 53.79ms, S1-S3 72.14ms, S2-S3 24.2ms)\n\n",
              net_cfg.profile.name.c_str());
  sim::spawn(s, quickstart(s, client));
  s.run_until(sim::sec(60));
  if (!g_ok) {
    std::printf("FAILED: counter or audit row did not end at expected state\n");
    return 1;
  }
  return 0;
}
