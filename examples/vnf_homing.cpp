// The VNF Homing Service of §VII-a: a multi-site job scheduler where worker
// pools at every site vie for homing jobs, process them exclusively from
// their latest state, and survive worker failures mid-job.
//
// Structure (Fig. 3): Client API replicas insert jobs into MUSIC with put();
// workers iterate jobs with getAllKeys, lock one with a MUSIC critical
// section, and step it through the execution states of Fig. 3(b):
//   PENDING -> TEMPLATE_RESOLVED -> CANDIDATES_FOUND -> SOLUTION_FOUND -> DONE
// If a worker dies mid-job, the failure detector preempts its lock and
// another worker resumes the job *from its latest state* — no work redone.
//
// Build & run:  ./build/examples/vnf_homing

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/music.h"
#include "core/session.h"
#include "datastore/store.h"
#include "lockstore/lockstore.h"
#include "sim/network.h"
#include "sim/simulation.h"

using namespace music;

namespace {

// The homing pipeline of Fig. 3(b).  Values are "state|description".
const char* next_state(const std::string& s) {
  if (s == "PENDING") return "TEMPLATE_RESOLVED";
  if (s == "TEMPLATE_RESOLVED") return "CANDIDATES_FOUND";
  if (s == "CANDIDATES_FOUND") return "SOLUTION_FOUND";
  if (s == "SOLUTION_FOUND") return "DONE";
  return "DONE";
}

std::string state_of(const Value& v) {
  return v.data.substr(0, v.data.find('|'));
}

struct HomingWorld {
  sim::Simulation s{7};
  sim::NetworkConfig net_cfg;
  sim::Network net;
  ds::StoreCluster store;
  ls::LockStore locks;
  std::vector<std::unique_ptr<core::MusicReplica>> replicas;
  std::vector<std::unique_ptr<core::MusicClient>> clients;
  int jobs_done = 0;

  HomingWorld()
      : net_cfg([] {
          sim::NetworkConfig c;
          c.profile = sim::LatencyProfile::profile_lus();
          return c;
        }()),
        net(s, net_cfg),
        store(s, net, ds::StoreConfig{}, {0, 1, 2}),
        locks(store) {
    core::MusicConfig mc;
    mc.holder_timeout = sim::sec(12);  // failure detection for dead workers
    mc.fd_interval = sim::sec(2);
    for (int site = 0; site < 3; ++site) {
      replicas.push_back(std::make_unique<core::MusicReplica>(store, locks, mc, site));
    }
    for (auto& r : replicas) r->start_failure_detector();
  }

  core::MusicClient& make_client(int site) {
    std::vector<core::MusicReplica*> prefs{replicas[static_cast<size_t>(site)].get()};
    for (int i = 0; i < 3; ++i) {
      if (i != site) prefs.push_back(replicas[static_cast<size_t>(i)].get());
    }
    clients.push_back(std::make_unique<core::MusicClient>(
        s, net, prefs, core::ClientConfig{}, site));
    return *clients.back();
  }
};

/// Client API replica (§VII-a): receives homing requests, places them in
/// MUSIC with a lock-free put, then polls for DONE jobs and deletes them.
sim::Task<void> client_api(HomingWorld& w, core::MusicClient& c, int n_jobs) {
  for (int j = 0; j < n_jobs; ++j) {
    Key job_id = "job/" + std::to_string(j);
    std::string desc = "vnf-chain-" + std::to_string(j) + ";bw=10G;lat<20ms";
    co_await c.put(job_id, Value("PENDING|" + desc));
    std::printf("[t=%7.2f s] client-api submitted %s (%s)\n",
                sim::to_sec(w.s.now()), job_id.c_str(), desc.c_str());
    co_await sim::sleep_for(w.s, sim::sec(2));
  }
  // Poll for completed jobs and garbage-collect them (with locks: deletes
  // are critical operations on job state).
  while (w.jobs_done < n_jobs) {
    co_await sim::sleep_for(w.s, sim::sec(5));
    auto keys = co_await c.get_all_keys("job/");
    if (!keys.ok()) continue;
    for (const auto& job : keys.value()) {
      auto v = co_await c.get(job);
      if (v.ok() && state_of(v.value()) == "DONE") {
        auto body = [&](LockRef ref) -> sim::Task<Status> {
          co_return co_await c.critical_delete(job, ref);
        };
        auto st = co_await c.with_lock(job, body);
        if (st.ok()) {
          ++w.jobs_done;
          std::printf("[t=%7.2f s] client-api reaped %s (DONE)\n",
                      sim::to_sec(w.s.now()), job.c_str());
        }
      }
    }
  }
}

/// Worker (§VII-a pseudo-code): iterate jobs, lock an incomplete one, and
/// execute it in a critical section, checkpointing each state transition
/// with criticalPut so a successor can resume from the latest state.
sim::Task<void> worker(HomingWorld& w, core::MusicClient& c, int id,
                       sim::Time die_at) {
  while (w.s.now() < sim::sec(200)) {
    if (die_at > 0 && w.s.now() >= die_at) {
      std::printf("[t=%7.2f s] worker-%d CRASHED\n", sim::to_sec(w.s.now()), id);
      co_return;  // crash: lock left held; FD will preempt it
    }
    // jobs = getAllKeys(); pop each in submission order.
    auto keys = co_await c.get_all_keys("job/");
    if (!keys.ok() || keys.value().empty()) {
      co_await sim::sleep_for(w.s, sim::sec(1));
      continue;
    }
    for (const auto& job : keys.value()) {
      auto peeked = co_await c.get(job);  // lock-free read; may be stale
      if (!peeked.ok() || state_of(peeked.value()) == "DONE") continue;

      // Try to acquire exclusive access to the job.
      auto ref = co_await c.create_lock_ref(job);
      if (!ref.ok()) continue;
      auto acq = co_await c.acquire_lock_blocking(job, ref.value());
      if (!acq.ok()) {
        // Lost the race: evict our reference for timely garbage collection.
        co_await c.remove_lock_ref(job, ref.value());
        continue;
      }

      // executeJobInCriticalSection (§VII-a): progress from the LATEST
      // state — possibly mid-pipeline, checkpointed by a dead predecessor.
      auto st = co_await c.critical_get(job, ref.value());
      if (!st.ok() || state_of(st.value()) == "DONE") {
        // Vanished or already completed (the lock-free peek was stale,
        // which "has no impact on the correctness of the job scheduler").
        co_await c.release_lock(job, ref.value());
        continue;
      }
      std::string state = state_of(st.value());
      std::string desc = st.value().data.substr(st.value().data.find('|'));
      std::printf("[t=%7.2f s] worker-%d homing %s from state %s\n",
                  sim::to_sec(w.s.now()), id, job.c_str(), state.c_str());
      bool lost = false;
      while (state != "DONE" && !lost) {
        if (die_at > 0 && w.s.now() >= die_at) {
          std::printf("[t=%7.2f s] worker-%d CRASHED mid-job on %s (state %s)\n",
                      sim::to_sec(w.s.now()), id, job.c_str(), state.c_str());
          co_return;  // died holding the lock, job half done
        }
        // "Homing is a complex and time-consuming process": each stage
        // costs simulated solver time.
        co_await sim::sleep_for(w.s, sim::sec(2));
        state = next_state(state);
        auto put = co_await c.critical_put(job, ref.value(),
                                           Value(state + desc));
        if (!put.ok()) lost = true;  // preempted: another worker owns it now
      }
      if (!lost) {
        std::printf("[t=%7.2f s] worker-%d finished %s\n",
                    sim::to_sec(w.s.now()), id, job.c_str());
        co_await c.release_lock(job, ref.value());
      }
    }
  }
}

}  // namespace

int main() {
  HomingWorld w;
  std::printf("VNF Homing Service (Fig. 3) on 3 sites, profile %s\n",
              w.net_cfg.profile.name.c_str());
  std::printf("3 workers; worker-0 is scheduled to crash mid-job.\n\n");

  auto& api = w.make_client(0);
  constexpr int kJobs = 4;
  sim::spawn(w.s, client_api(w, api, kJobs));

  // Worker 0 crashes 9s in (mid-pipeline); workers 1 and 2 take over.
  sim::spawn(w.s, worker(w, w.make_client(0), 0, sim::sec(9)));
  sim::spawn(w.s, worker(w, w.make_client(1), 1, 0));
  sim::spawn(w.s, worker(w, w.make_client(2), 2, 0));

  w.s.run_until(sim::sec(240));
  std::printf("\ncompleted %d/%d jobs (worker crash included)\n", w.jobs_done,
              kJobs);
  uint64_t preemptions = 0;
  for (auto& r : w.replicas) preemptions += r->stats().forced_releases;
  std::printf("failure-detector preemptions: %llu\n",
              static_cast<unsigned long long>(preemptions));
  return w.jobs_done == kJobs ? 0 : 1;
}
